#!/usr/bin/env bash
# The static-analysis lane (ISSUE 9): Clang thread-safety build, clang-tidy,
# clang-format, shellcheck/pyflakes over the tooling, plus grep-based
# annotation-coverage checks that need no tools at all.
#
# Usage:
#   scripts/lint.sh                 # run what the machine has, skip the rest
#   scripts/lint.sh --require-tools # CI mode: a missing tool fails the lane
#
# Local toolboxes vary (the dev container ships only GCC), so each section
# gates on tool availability and reports what it skipped; CI installs the
# full set and passes --require-tools so nothing is silently skipped there.
set -euo pipefail

cd "$(dirname "$0")/.."

REQUIRE_TOOLS=0
if [[ "${1:-}" == "--require-tools" ]]; then
  REQUIRE_TOOLS=1
elif [[ -n "${1:-}" ]]; then
  echo "usage: $0 [--require-tools]" >&2
  exit 2
fi

SKIPPED=()
FAILED=0

have() { command -v "$1" >/dev/null 2>&1; }

skip() {
  echo "[lint] SKIP: $1 (missing: $2)"
  SKIPPED+=("$1")
}

section() { echo; echo "[lint] == $1 =="; }

# ---------------------------------------------------------------------------
# 1. Thread-safety build: all library targets under Clang with
#    -Werror=thread-safety (OSUM_LINT=ON). Tests/benches/examples are out of
#    scope — they use their own unannotated std::mutex fixtures by design.
# ---------------------------------------------------------------------------
section "clang -Werror=thread-safety build"
if have clang++ && have cmake; then
  cmake -B build-lint -S . \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_BUILD_TYPE=Release \
    -DOSUM_LINT=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DOSUM_BUILD_TESTS=OFF \
    -DOSUM_BUILD_BENCHMARKS=OFF \
    -DOSUM_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-lint -j "$(nproc)"
  echo "[lint] thread-safety build OK"
else
  skip "thread-safety build" "clang++/cmake"
fi

# ---------------------------------------------------------------------------
# 2. clang-tidy over src/ with the checked-in .clang-tidy (zero findings;
#    WarningsAsErrors promotes everything). Uses the compile database from
#    the lint build above, so it only runs when that build did.
# ---------------------------------------------------------------------------
section "clang-tidy"
if [[ -f build-lint/compile_commands.json ]] && have clang-tidy; then
  if have run-clang-tidy; then
    run-clang-tidy -p build-lint -quiet "src/.*\.cc$"
  else
    find src -name '*.cc' -print0 |
      xargs -0 -P "$(nproc)" -n 1 clang-tidy -p build-lint --quiet
  fi
  echo "[lint] clang-tidy OK"
else
  skip "clang-tidy" "clang-tidy (or no lint compile database)"
fi

# ---------------------------------------------------------------------------
# 3. clang-format check, changed-files mode: full-tree formatting predates
#    this lane, so only files this branch touches must be clean.
# ---------------------------------------------------------------------------
section "clang-format (changed files)"
if have clang-format && have git; then
  base="$(git merge-base origin/main HEAD 2>/dev/null ||
          git rev-parse HEAD~1 2>/dev/null || true)"
  if [[ -n "$base" ]]; then
    mapfile -t changed < <(git diff --name-only --diff-filter=d "$base" -- \
      'src/*.h' 'src/*.cc' 'tests/*.h' 'tests/*.cc')
  else
    mapfile -t changed < <(git ls-files 'src/*.h' 'src/*.cc')
  fi
  if ((${#changed[@]})); then
    clang-format --dry-run -Werror "${changed[@]}"
    echo "[lint] clang-format OK (${#changed[@]} files)"
  else
    echo "[lint] clang-format: no changed C++ files"
  fi
else
  skip "clang-format" "clang-format/git"
fi

# ---------------------------------------------------------------------------
# 4. Lint the tooling itself: shellcheck on the CI scripts, pyflakes (or
#    ruff) on the bench diff tool.
# ---------------------------------------------------------------------------
section "shellcheck"
if have shellcheck; then
  shellcheck scripts/ci.sh scripts/lint.sh
  echo "[lint] shellcheck OK"
else
  skip "shellcheck" "shellcheck"
fi

section "python lint"
if have ruff; then
  ruff check scripts/bench_diff.py
  echo "[lint] ruff OK"
elif python3 -c 'import pyflakes' 2>/dev/null; then
  python3 -m pyflakes scripts/bench_diff.py
  echo "[lint] pyflakes OK"
elif have python3; then
  # Floor: at least prove it parses.
  python3 -m py_compile scripts/bench_diff.py
  skip "python lint (py_compile floor only)" "ruff/pyflakes"
else
  skip "python lint" "python3"
fi

# ---------------------------------------------------------------------------
# 5. Annotation-coverage spot checks (no tools needed, never skipped):
#    every migrated concurrent file carries annotations, and no raw std
#    lock primitives remain in the migrated layers — a raw std::mutex is
#    invisible to the analysis, which is exactly how discipline erodes.
# ---------------------------------------------------------------------------
section "annotation coverage (grep)"
ANNOTATED_HEADERS=(
  src/util/thread_pool.h
  src/core/partials_memo.h
  src/serve/result_cache.h
  src/serve/query_service.h
  src/net/event_loop.h
  src/net/server.h
)
for f in "${ANNOTATED_HEADERS[@]}"; do
  if ! grep -q 'GUARDED_BY' "$f"; then
    echo "[lint] FAIL: $f has no GUARDED_BY annotations" >&2
    FAILED=1
  fi
done

# util/mutex.h is the one allowed home of the raw primitives (it wraps
# them); everything else in the migrated layers must use the wrappers.
if grep -rn --include='*.h' --include='*.cc' \
    -e 'std::mutex' -e 'std::condition_variable' \
    -e 'std::lock_guard' -e 'std::scoped_lock' \
    src/util/thread_pool.h src/util/thread_pool.cc \
    src/core/partials_memo.h src/core/partials_memo.cc src/serve src/net; then
  echo "[lint] FAIL: raw std lock primitives in migrated layers (use" \
       "util::Mutex/util::CondVar/util::MutexLock from util/mutex.h)" >&2
  FAILED=1
else
  echo "[lint] annotation coverage OK"
fi

# std::unique_lock is allowed only inside util/mutex.h's CondVar bridge.
if grep -rn --include='*.h' --include='*.cc' 'std::unique_lock' \
    src/util/thread_pool.h src/util/thread_pool.cc \
    src/core/partials_memo.h src/core/partials_memo.cc src/serve src/net; then
  echo "[lint] FAIL: std::unique_lock outside util/mutex.h" >&2
  FAILED=1
fi

# ---------------------------------------------------------------------------
echo
if ((${#SKIPPED[@]})); then
  echo "[lint] skipped sections: ${SKIPPED[*]}"
  if ((REQUIRE_TOOLS)); then
    echo "[lint] FAIL: --require-tools set but tools were missing" >&2
    FAILED=1
  fi
fi
if ((FAILED)); then
  echo "[lint] FAILED" >&2
  exit 1
fi
echo "[lint] all checks passed"
