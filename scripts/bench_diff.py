#!/usr/bin/env python3
"""Compare a fresh bench --json run against a checked-in baseline.

Both files are bench::JsonReport documents:

    {"bench": "<name>", "rows": [{"section": ..., "label": ...,
                                  "metric": ..., "value": ...}, ...]}

Rows are matched on (section, label, metric). For each matched row the
ratio fresh/baseline is reported, flagged when it falls outside the
tolerance band [1/(1+tol), 1+tol] in the metric's bad direction (QPS and
speedups regress downward, wall times and latencies regress upward;
unknown metrics flag both directions). Rows present on only one side are
reported as added/missing.

By default the script is a REPORT: it always exits 0, so CI can surface
perf drift without going red on a noisy container (the checked-in
baselines come from the reference container and a --tiny smoke run will
differ wildly — that mismatch is itself useful signal that the plumbing
works). Pass --strict to exit 1 when any row regresses, for dedicated
perf lanes. --gate-metrics REGEX narrows which metrics can *fail* a
strict run (every row is still reported): gating lanes use it to pin the
deterministic rows (hit rates, eviction/reject counts from seeded
replays) — with their own, typically near-zero --gate-tolerance — while
machine-speed-dependent timing rows stay report-only, because a baseline
recorded on one machine cannot gate another machine's wall-clock
numbers. A baseline row missing from the fresh run counts as a
regression (gated when its metric matches), so a renamed section cannot
silently turn the gate vacuous — and a gated row drifting out of band in
the GOOD direction also fails, because a deterministic row that changed
at all means the baseline must be regenerated.

Usage:
    scripts/bench_diff.py BASELINE.json FRESH.json [--tolerance 0.5]
                          [--strict] [--gate-metrics REGEX]
                          [--gate-tolerance 0.001]
"""

import argparse
import json
import re
import sys

# Metric-name fragments that tell us which direction is a regression.
HIGHER_IS_BETTER = ("qps", "speedup", "hit_rate")
LOWER_IS_BETTER = ("_ms", "_us", "wall", "latency", "mean", "p50", "p99",
                   "max")


def direction(metric: str) -> str:
    m = metric.lower()
    if any(tag in m for tag in HIGHER_IS_BETTER):
        return "higher"
    if any(tag in m for tag in LOWER_IS_BETTER):
        return "lower"
    return "both"


def load_rows(path: str) -> dict:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        key = (row["section"], row["label"], row["metric"])
        rows[key] = row["value"]
    return doc.get("bench", "?"), rows


def classify(key, base, fresh, tolerance):
    """Returns (ratio, verdict) where verdict is ok/regressed/improved."""
    if base is None or fresh is None:
        return None, "incomparable"
    if base == 0:
        # No ratio exists, but 0 -> nonzero is real drift, not noise: it
        # must be able to fail a gate (e.g. a deterministic reject-count
        # row silently coming alive), so classify it by direction.
        if fresh == 0:
            return None, "ok"
        return None, "improved" if direction(key[2]) == "higher" else \
            "regressed"
    ratio = fresh / base
    low, high = 1.0 / (1.0 + tolerance), 1.0 + tolerance
    within = low <= ratio <= high
    if within:
        return ratio, "ok"
    better = direction(key[2])
    if better == "higher":
        return ratio, "regressed" if ratio < low else "improved"
    if better == "lower":
        return ratio, "regressed" if ratio > high else "improved"
    return ratio, "regressed"  # unknown metric: any drift is suspect


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff a fresh bench --json run against a baseline.")
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("fresh", help="fresh --json output")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed relative drift per row "
                             "(0.5 = ±50%%; default %(default)s)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any row regresses "
                             "(default: report only, always exit 0)")
    parser.add_argument("--gate-metrics", metavar="REGEX", default=None,
                        help="with --strict, only rows whose metric name "
                             "matches this regex can fail the run; other "
                             "regressions are reported but not fatal")
    parser.add_argument("--gate-tolerance", type=float, default=None,
                        help="tolerance applied to --gate-metrics rows "
                             "(default: same as --tolerance); gating lanes "
                             "pin deterministic rows near-exactly, e.g. "
                             "0.001")
    args = parser.parse_args()
    if args.gate_tolerance is not None and args.gate_metrics is None:
        parser.error("--gate-tolerance requires --gate-metrics (it applies "
                     "only to gated rows)")
    gate_re = re.compile(args.gate_metrics) if args.gate_metrics else None
    gate_tol = (args.gate_tolerance if args.gate_tolerance is not None
                else args.tolerance)

    base_name, base = load_rows(args.baseline)
    fresh_name, fresh = load_rows(args.fresh)
    if base_name != fresh_name:
        print(f"note: comparing different benches: "
              f"{base_name!r} vs {fresh_name!r}")

    regressed = improved = ok = gated_regressed = 0
    print(f"bench_diff: {args.fresh} vs baseline {args.baseline} "
          f"(tolerance ±{args.tolerance * 100:.0f}%)")
    header = f"{'section/label/metric':58} {'baseline':>12} " \
             f"{'fresh':>12} {'ratio':>7}  verdict"
    print(header)
    print("-" * len(header))
    for key in sorted(set(base) | set(fresh)):
        name = "/".join(key)
        gated = gate_re is None or gate_re.search(key[2])
        if key not in fresh:
            # A baseline row the fresh run no longer produces is a
            # regression (a renamed section or dropped metric must not
            # silently turn a strict gate vacuous).
            regressed += 1
            if gated:
                gated_regressed += 1
            verdict = "missing" if gated else "missing (ungated)"
            print(f"{name:58} {base[key]:12.4g} {'-':>12} {'-':>7}  "
                  f"{verdict}  <--")
            continue
        if key not in base:
            print(f"{name:58} {'-':>12} {fresh[key]:12.4g} {'-':>7}  added")
            continue
        ratio, verdict = classify(key, base[key], fresh[key],
                                  gate_tol if gated else args.tolerance)
        ratio_s = f"{ratio:7.2f}" if ratio is not None else "      -"
        shown = verdict
        if verdict == "regressed":
            regressed += 1
            if gated:
                gated_regressed += 1
            else:
                shown = "regressed (ungated)"
        elif verdict == "improved":
            improved += 1
            # A gated (deterministic) row drifting in ANY direction means
            # the baseline no longer describes the build — "better" is
            # still a gate failure until the baseline is regenerated.
            if gate_re is not None and gated:
                gated_regressed += 1
                shown = "improved (gating: regenerate baseline)"
        else:
            ok += 1
        flag = "" if verdict == "ok" else "  <--"
        print(f"{name:58} {base[key]:12.4g} {fresh[key]:12.4g} "
              f"{ratio_s}  {shown}{flag}")

    print(f"\nsummary: {ok} within band, {improved} improved, "
          f"{regressed} regressed"
          + (f" ({gated_regressed} gating)" if gate_re is not None else ""))
    if args.strict and (gated_regressed if gate_re is not None
                        else regressed) > 0:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
