#!/usr/bin/env python3
"""Compare a fresh bench --json run against a checked-in baseline.

Both files are bench::JsonReport documents:

    {"bench": "<name>", "rows": [{"section": ..., "label": ...,
                                  "metric": ..., "value": ...}, ...]}

Rows are matched on (section, label, metric). For each matched row the
ratio fresh/baseline is reported, flagged when it falls outside the
tolerance band [1/(1+tol), 1+tol] in the metric's bad direction (QPS and
speedups regress downward, wall times and latencies regress upward;
unknown metrics flag both directions). Rows present on only one side are
reported as added/missing.

By default the script is a REPORT: it always exits 0, so CI can surface
perf drift without going red on a noisy container (the checked-in
baselines come from the reference container and a --tiny smoke run will
differ wildly — that mismatch is itself useful signal that the plumbing
works). Pass --strict to exit 1 when any row regresses, for dedicated
perf lanes.

Usage:
    scripts/bench_diff.py BASELINE.json FRESH.json [--tolerance 0.5]
                          [--strict]
"""

import argparse
import json
import sys

# Metric-name fragments that tell us which direction is a regression.
HIGHER_IS_BETTER = ("qps", "speedup", "hit_rate")
LOWER_IS_BETTER = ("_ms", "_us", "wall", "latency", "mean", "p50", "p99",
                   "max")


def direction(metric: str) -> str:
    m = metric.lower()
    if any(tag in m for tag in HIGHER_IS_BETTER):
        return "higher"
    if any(tag in m for tag in LOWER_IS_BETTER):
        return "lower"
    return "both"


def load_rows(path: str) -> dict:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        key = (row["section"], row["label"], row["metric"])
        rows[key] = row["value"]
    return doc.get("bench", "?"), rows


def classify(key, base, fresh, tolerance):
    """Returns (ratio, verdict) where verdict is ok/regressed/improved."""
    if base is None or fresh is None:
        return None, "incomparable"
    if base == 0:
        return None, "ok" if fresh == 0 else "incomparable"
    ratio = fresh / base
    low, high = 1.0 / (1.0 + tolerance), 1.0 + tolerance
    within = low <= ratio <= high
    if within:
        return ratio, "ok"
    better = direction(key[2])
    if better == "higher":
        return ratio, "regressed" if ratio < low else "improved"
    if better == "lower":
        return ratio, "regressed" if ratio > high else "improved"
    return ratio, "regressed"  # unknown metric: any drift is suspect


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff a fresh bench --json run against a baseline.")
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("fresh", help="fresh --json output")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed relative drift per row "
                             "(0.5 = ±50%%; default %(default)s)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any row regresses "
                             "(default: report only, always exit 0)")
    args = parser.parse_args()

    base_name, base = load_rows(args.baseline)
    fresh_name, fresh = load_rows(args.fresh)
    if base_name != fresh_name:
        print(f"note: comparing different benches: "
              f"{base_name!r} vs {fresh_name!r}")

    regressed = improved = ok = 0
    print(f"bench_diff: {args.fresh} vs baseline {args.baseline} "
          f"(tolerance ±{args.tolerance * 100:.0f}%)")
    header = f"{'section/label/metric':58} {'baseline':>12} " \
             f"{'fresh':>12} {'ratio':>7}  verdict"
    print(header)
    print("-" * len(header))
    for key in sorted(set(base) | set(fresh)):
        name = "/".join(key)
        if key not in fresh:
            print(f"{name:58} {base[key]:12.4g} {'-':>12} {'-':>7}  missing")
            continue
        if key not in base:
            print(f"{name:58} {'-':>12} {fresh[key]:12.4g} {'-':>7}  added")
            continue
        ratio, verdict = classify(key, base[key], fresh[key], args.tolerance)
        ratio_s = f"{ratio:7.2f}" if ratio is not None else "      -"
        flag = "" if verdict == "ok" else "  <--"
        print(f"{name:58} {base[key]:12.4g} {fresh[key]:12.4g} "
              f"{ratio_s}  {verdict}{flag}")
        if verdict == "regressed":
            regressed += 1
        elif verdict == "improved":
            improved += 1
        else:
            ok += 1

    print(f"\nsummary: {ok} within band, {improved} improved, "
          f"{regressed} regressed")
    if args.strict and regressed > 0:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
