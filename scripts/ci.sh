#!/usr/bin/env bash
# Tier-1 verification in both shipping configurations:
#   1. Release            — the configuration benchmarks are run in
#   2. Debug + sanitizers — ASan/UBSan catch what optimized builds hide
# Usage: scripts/ci.sh            (JOBS=<n> to override parallelism)
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

run_config() {
  local dir="$1"
  shift
  echo "==== configuring ${dir} ($*) ===="
  cmake -B "${dir}" -S . "$@"
  cmake --build "${dir}" -j "${JOBS}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_config build-release -DCMAKE_BUILD_TYPE=Release
run_config build-asan -DCMAKE_BUILD_TYPE=Debug -DOSUM_SANITIZE=ON
echo "==== ci.sh: all configurations green ===="
