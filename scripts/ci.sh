#!/usr/bin/env bash
# Tier-1 verification in the three shipping configurations:
#   1. Release            — the configuration benchmarks are run in
#   2. Debug + ASan/UBSan — catches what optimized builds hide
#   3. Debug + TSan       — proves the concurrent query path (QueryBatch
#      over a shared SearchContext), the serving layer (QueryService +
#      sharded ResultCache) and the TCP front end (net::Server event loop
#      vs pool workers) race on nothing; runs the search-, serve- and
#      net-labeled suites, which include the concurrency/stampede stress
#      aggregates (labeled search;slow / serve;slow).
# The release lane also smokes the bench `--json` output mode (bench_cache
# runs at --tiny sizes and its JSON must parse; the bench itself exits
# nonzero if the >=10x hot-hit speedup gate fails or the long-tail
# admission gate fails), diffs that run against the checked-in baseline as
# a NON-FATAL report (scripts/bench_diff.py — tiny-vs-reference numbers
# differ by design; the report proves the diff plumbing), and smokes the
# api wire format: `osum_cli query --wire json` must produce a document
# Python's json module parses.
#
# Dedicated full-size perf lane (opt-in): OSUM_PERF_LANE=1 scripts/ci.sh
# builds Release only, runs bench_cache at FULL size and gates hard with
# scripts/bench_diff.py --strict against the checked-in baseline — then
# exits without rerunning the test lanes (the default invocation owns
# those; CI wires the perf lane as a separate job). Only the
# deterministic rows (hit rates, evictions, admission rejects — the
# seeded single-threaded long-tail replay makes them machine-independent)
# can fail the gate, and they gate near-exactly (--gate-metrics with
# --gate-tolerance 0.001); timing rows from a different-machine baseline
# stay a visible drift report, never a spurious red. A gated row going
# missing also fails (the gate cannot be silently emptied).
# Usage: scripts/ci.sh            (JOBS=<n> to override parallelism)
#        scripts/ci.sh lint       (static-analysis lane; see scripts/lint.sh)
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

# The static-analysis lane: Clang thread-safety build, clang-tidy,
# clang-format, shellcheck/pyflakes. --require-tools makes a missing tool a
# failure — CI installs the full set, so nothing is silently skipped there.
if [[ "${1:-}" == "lint" ]]; then
  exec ./scripts/lint.sh --require-tools
fi

if [[ "${OSUM_PERF_LANE:-0}" == "1" ]]; then
  echo "==== perf lane: full-size bench_cache vs baseline (--strict) ===="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "${JOBS}" --target bench_cache bench_net
  perf_json="build-release/bench_cache_perf.json"
  build-release/bench/bench_cache --json "${perf_json}"
  python3 scripts/bench_diff.py bench/baselines/bench_cache.json \
          "${perf_json}" --strict \
          --gate-metrics 'hit_rate|evictions|admission_rejects' \
          --gate-tolerance 0.001
  echo "==== perf lane: full-size bench_net vs baseline (--strict) ===="
  # The request/response counts are seeded and machine-independent: the
  # same box-independent totals every run, so they gate near-exactly.
  # Latency/QPS rows from a different-machine baseline stay report-only.
  net_json="build-release/bench_net_perf.json"
  build-release/bench/bench_net --json "${net_json}"
  python3 scripts/bench_diff.py bench/baselines/bench_net.json \
          "${net_json}" --strict \
          --gate-metrics 'requests_sent|responses_ok|garbage_sent|malformed_rejects|valid_ok|frames_in|responses_out|malformed_frames|dropped_responses|sheds_at_admission|sheds_at_dequeue|responses_deadline_exceeded' \
          --gate-tolerance 0.001
  # DP hot-path gate (ISSUE 10): bench_micro's --json mode is a seeded,
  # single-threaded workload, so the arena-allocation and partials-reuse
  # rows are machine-independent and gate near-exactly. The target only
  # exists when google-benchmark is installed; skipping on machines
  # without it is explicit, never a silent compile-failure swallow.
  if cmake --build build-release --target help | grep -q 'bench_micro'; then
    echo "==== perf lane: full-size bench_micro vs baseline (--strict) ===="
    cmake --build build-release -j "${JOBS}" --target bench_micro
    micro_json="build-release/bench_micro_perf.json"
    build-release/bench/bench_micro --json "${micro_json}"
    python3 scripts/bench_diff.py bench/baselines/bench_micro.json \
            "${micro_json}" --strict \
            --gate-metrics 'dp_queries|dp_operations|dp_allocations|dp_bytes_reserved|partials_reused|partials_misses|partials_inserts|partials_entries' \
            --gate-tolerance 0.001
  else
    echo "==== perf lane: bench_micro skipped (google-benchmark not found) ===="
  fi
  echo "==== perf lane green ===="
  exit 0
fi

# run_config <build-dir> <ctest extra args...> -- <cmake args...>
run_config() {
  local dir="$1"
  shift
  local ctest_args=()
  while [[ "$1" != "--" ]]; do
    ctest_args+=("$1")
    shift
  done
  shift
  echo "==== configuring ${dir} ($*) ===="
  cmake -B "${dir}" -S . "$@"
  cmake --build "${dir}" -j "${JOBS}"
  # --no-tests=error: a label filter matching nothing must fail the lane,
  # not pass it vacuously.
  ctest --test-dir "${dir}" --output-on-failure --no-tests=error \
        -j "${JOBS}" "${ctest_args[@]+"${ctest_args[@]}"}"
}

run_config build-release -- -DCMAKE_BUILD_TYPE=Release

# Bench JSON smoke: tiny sizes, but the output must be well-formed JSON
# (python parses it strictly) and the bench's own speedup gate must pass —
# a missing/malformed file fails the lane, mirroring --no-tests=error.
echo "==== bench --json smoke (bench_cache --tiny) ===="
smoke_json="build-release/bench_cache_smoke.json"
build-release/bench/bench_cache --tiny --json "${smoke_json}"
python3 -m json.tool "${smoke_json}" > /dev/null
echo "bench JSON smoke ok: ${smoke_json}"

# DP hot-path smoke: bench_micro's deterministic --json mode exits
# nonzero if shared-scratch DP or the partials memo ever diverges from
# the fresh compute, or if the overlap workload gets zero reuse. Guarded
# on the binary: the target is absent without google-benchmark.
if [[ -x build-release/bench/bench_micro ]]; then
  echo "==== dp hot-path smoke (bench_micro --tiny --json) ===="
  micro_smoke_json="build-release/bench_micro_smoke.json"
  build-release/bench/bench_micro --tiny --json "${micro_smoke_json}"
  python3 -m json.tool "${micro_smoke_json}" > /dev/null
  echo "dp hot-path smoke ok: ${micro_smoke_json}"
else
  echo "==== dp hot-path smoke skipped (no bench_micro binary) ===="
fi

# TCP front-end smoke: bench_net drives a real server over loopback
# sockets at --tiny sizes — it exits nonzero on any lost response,
# unrejected garbage frame or dirty drain, and its JSON must parse.
echo "==== net smoke (bench_net --tiny --json) ===="
net_smoke_json="build-release/bench_net_smoke.json"
build-release/bench/bench_net --tiny --json "${net_smoke_json}"
python3 -m json.tool "${net_smoke_json}" > /dev/null
echo "net smoke ok: ${net_smoke_json}"

# Non-fatal perf-drift report: --tiny numbers are not comparable to the
# reference-container baseline, but the diff proves rows match up and the
# tolerance plumbing works. Dedicated perf lanes run this with --strict on
# full-size output instead.
echo "==== bench_diff report (non-fatal, tiny vs reference baseline) ===="
python3 scripts/bench_diff.py bench/baselines/bench_cache.json \
        "${smoke_json}" || echo "bench_diff reported issues (non-fatal)"

# Wire-format smoke: the CLI's canonical JSON response must parse with a
# strict parser. The CLI prints a build banner first, so parse from the
# first '{'.
echo "==== api wire smoke (osum_cli query --wire json) ===="
wire_out="build-release/cli_wire_smoke.out"
build-release/examples/osum_cli "build dblp; query --wire json faloutsos 6" \
        > "${wire_out}"
python3 - "${wire_out}" <<'PY'
import json, sys
text = open(sys.argv[1], encoding="utf-8").read()
doc = json.loads(text[text.index("{"):])
assert doc["kind"] == "query_response" and doc["v"] == 1, doc
assert doc["status"]["code"] == 0 and doc["results"], doc["status"]
print(f"wire smoke ok: {len(doc['results'])} result(s), "
      f"status {doc['status']['code']}")
PY

run_config build-asan -- -DCMAKE_BUILD_TYPE=Debug -DOSUM_SANITIZE=address
# Benches and examples are never executed under TSan; skip their
# instrumented compile.
run_config build-tsan -L 'search|serve|net' -- \
           -DCMAKE_BUILD_TYPE=Debug -DOSUM_SANITIZE=thread \
           -DOSUM_BUILD_BENCHMARKS=OFF -DOSUM_BUILD_EXAMPLES=OFF
echo "==== ci.sh: all configurations green ===="
