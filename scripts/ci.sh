#!/usr/bin/env bash
# Tier-1 verification in the three shipping configurations:
#   1. Release            — the configuration benchmarks are run in
#   2. Debug + ASan/UBSan — catches what optimized builds hide
#   3. Debug + TSan       — proves the concurrent query path (QueryBatch
#      over a shared SearchContext) races on nothing; runs the search-
#      labeled suites, which include the concurrency stress aggregate
#      (labeled search;slow).
# Usage: scripts/ci.sh            (JOBS=<n> to override parallelism)
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

# run_config <build-dir> <ctest extra args...> -- <cmake args...>
run_config() {
  local dir="$1"
  shift
  local ctest_args=()
  while [[ "$1" != "--" ]]; do
    ctest_args+=("$1")
    shift
  done
  shift
  echo "==== configuring ${dir} ($*) ===="
  cmake -B "${dir}" -S . "$@"
  cmake --build "${dir}" -j "${JOBS}"
  # --no-tests=error: a label filter matching nothing must fail the lane,
  # not pass it vacuously.
  ctest --test-dir "${dir}" --output-on-failure --no-tests=error \
        -j "${JOBS}" "${ctest_args[@]+"${ctest_args[@]}"}"
}

run_config build-release -- -DCMAKE_BUILD_TYPE=Release
run_config build-asan -- -DCMAKE_BUILD_TYPE=Debug -DOSUM_SANITIZE=address
# Benches and examples are never executed under TSan; skip their
# instrumented compile.
run_config build-tsan -L search -- \
           -DCMAKE_BUILD_TYPE=Debug -DOSUM_SANITIZE=thread \
           -DOSUM_BUILD_BENCHMARKS=OFF -DOSUM_BUILD_EXAMPLES=OFF
echo "==== ci.sh: all configurations green ===="
