// Differential fuzz of the exact size-l back ends (ISSUE 10 bug sweep):
// SizeLDp (flat tree-knapsack) vs SizeLDpEnumerate (the paper's literal
// combination enumeration) vs SizeLBruteForce (the oracle), on seeded
// random monotone and non-monotone trees across an l sweep. The two DPs
// must agree with the oracle on optimal importance and return valid
// selections; DP and Enumerate must agree exactly (same tie-breaking), and
// running through a shared DpScratch must be byte-identical to fresh
// allocations — the arena refactor's central claim.
//
// Any divergence this sweep ever finds gets pinned below as a named
// regression test (PR 6/7 style). The sweep itself found none against the
// flat rewrite.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/dp_internal.h"
#include "core/multi_l.h"
#include "core/size_l.h"
#include "tree_fixtures.h"
#include "util/rng.h"

namespace osum {
namespace {

using core::DpScratch;
using core::OsTree;
using core::Selection;
using core::SizeLStats;
using testing::RandomMonotoneTree;
using testing::RandomTree;

// Brute force is exponential: keep the oracle trees tiny but vary shape
// heavily through the seed sweep.
constexpr size_t kSeeds = 200;
constexpr size_t kMaxOracleNodes = 14;

size_t TreeSize(uint64_t seed) { return 2 + seed % (kMaxOracleNodes - 1); }

void ExpectSameSelection(const Selection& a, const Selection& b,
                         const char* what, uint64_t seed, size_t l) {
  EXPECT_EQ(a.nodes, b.nodes) << what << " seed=" << seed << " l=" << l;
  EXPECT_DOUBLE_EQ(a.importance, b.importance)
      << what << " seed=" << seed << " l=" << l;
}

void DifferentialSweep(bool monotone) {
  DpScratch shared;  // one scratch across the whole sweep: maximal reuse
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    util::Rng rng(seed * (monotone ? 7919 : 104729));
    const size_t n = TreeSize(seed);
    OsTree os = monotone ? RandomMonotoneTree(&rng, n) : RandomTree(&rng, n);
    for (size_t l = 1; l <= n + 1; ++l) {
      SCOPED_TRACE(::testing::Message() << (monotone ? "monotone" : "random")
                                        << " seed=" << seed << " n=" << n
                                        << " l=" << l);
      Selection oracle = core::SizeLBruteForce(os, l);
      Selection dp = core::SizeLDp(os, l);
      Selection dp_shared = core::SizeLDp(os, l, &shared);
      SizeLStats enum_stats;
      Selection en = core::SizeLDpEnumerate(os, l, /*op_budget=*/50'000'000,
                                            &shared, &enum_stats);
      ASSERT_FALSE(enum_stats.aborted);

      // Exact back ends agree with the oracle on the optimum...
      EXPECT_DOUBLE_EQ(dp.importance, oracle.importance);
      EXPECT_DOUBLE_EQ(en.importance, oracle.importance);
      // ...and return valid selections of min(l, n) nodes.
      EXPECT_TRUE(core::IsValidSelection(os, dp, l));
      EXPECT_TRUE(core::IsValidSelection(os, en, l));
      EXPECT_TRUE(core::IsValidSelection(os, oracle, l));
      // Scratch reuse is invisible in results.
      ExpectSameSelection(dp, dp_shared, "dp fresh vs shared scratch", seed,
                          l);
    }
  }
}

TEST(DpDifferential, RandomTreesAllBackEndsAgree) {
  DifferentialSweep(/*monotone=*/false);
}

TEST(DpDifferential, MonotoneTreesAllBackEndsAgree) {
  DifferentialSweep(/*monotone=*/true);
}

// Larger trees are out of the oracle's reach, but DP vs Enumerate must
// still agree exactly wherever the enumeration finishes within budget —
// and both through one shared scratch.
TEST(DpDifferential, MediumTreesDpMatchesEnumerateWhereItFinishes) {
  DpScratch shared;
  size_t finished = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    util::Rng rng(seed);
    const size_t n = 20 + seed % 60;
    OsTree os = seed % 2 == 0 ? RandomMonotoneTree(&rng, n)
                              : RandomTree(&rng, n);
    for (size_t l : {size_t{1}, size_t{2}, size_t{5}, size_t{8}}) {
      SCOPED_TRACE(::testing::Message() << "seed=" << seed << " n=" << n
                                        << " l=" << l);
      Selection dp = core::SizeLDp(os, l, &shared);
      EXPECT_TRUE(core::IsValidSelection(os, dp, l));
      SizeLStats enum_stats;
      Selection en = core::SizeLDpEnumerate(os, l, /*op_budget=*/2'000'000,
                                            &shared, &enum_stats);
      if (enum_stats.aborted) continue;  // combination blow-up: skip, count
      ++finished;
      ExpectSameSelection(dp, en, "dp vs enumerate", seed, l);
    }
  }
  // The sweep must actually compare things, not skip everything.
  EXPECT_GT(finished, 100u);
}

// SizeLDpAll (one table pass, every l) must match per-l SizeLDp runs —
// the multi-l path shares the same flat tables.
TEST(DpDifferential, MultiLMatchesPerLRuns) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    util::Rng rng(seed * 31);
    const size_t n = 5 + seed % 40;
    OsTree os = RandomTree(&rng, n);
    std::vector<Selection> all = core::SizeLDpAll(os, n);
    ASSERT_EQ(all.size(), n);
    for (size_t l = 1; l <= n; ++l) {
      SCOPED_TRACE(::testing::Message() << "seed=" << seed << " l=" << l);
      ExpectSameSelection(all[l - 1], core::SizeLDp(os, l), "multi-l vs dp",
                          seed, l);
    }
  }
}

}  // namespace
}  // namespace osum
