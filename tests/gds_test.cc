// Tests for G_DS construction (expert + automatic), affinity (Equation 1)
// and the max/mmax statistics annotations.
#include <gtest/gtest.h>

#include "datasets/dblp.h"
#include "gds/affinity.h"
#include "gds/gds.h"

namespace osum::gds {
namespace {

using datasets::BuildDblp;
using datasets::Dblp;
using datasets::DblpAuthorGds;
using datasets::DblpConfig;
using rel::FkDirection;

DblpConfig TinyConfig() {
  DblpConfig c;
  c.num_authors = 60;
  c.num_papers = 200;
  c.num_conferences = 6;
  return c;
}

TEST(GdsBuilder, AuthorGdsShape) {
  Dblp d = BuildDblp(TinyConfig());
  Gds gds = DblpAuthorGds(d);
  // Figure 2: Author -> Paper -> {Co-Author, Year -> Conference,
  // PaperCites, PaperCitedBy} = 7 nodes.
  EXPECT_EQ(gds.size(), 7u);
  EXPECT_EQ(gds.root().label, "Author");
  EXPECT_EQ(gds.root_relation(), d.author);
  ASSERT_EQ(gds.root().children.size(), 1u);
  const GdsNode& paper = gds.node(gds.root().children[0]);
  EXPECT_EQ(paper.label, "Paper");
  EXPECT_DOUBLE_EQ(paper.affinity, 0.92);
  EXPECT_EQ(paper.children.size(), 4u);
  EXPECT_EQ(gds.MaxDepth(), 3);  // Conference under Year
}

TEST(GdsBuilder, CoAuthorExcludesOrigin) {
  Dblp d = BuildDblp(TinyConfig());
  Gds gds = DblpAuthorGds(d);
  const GdsNode& paper = gds.node(gds.root().children[0]);
  bool found = false;
  for (GdsNodeId c : paper.children) {
    const GdsNode& n = gds.node(c);
    if (n.label == "Co-Author") {
      found = true;
      EXPECT_TRUE(n.exclude_origin);
      EXPECT_EQ(n.relation, d.author);
    } else {
      EXPECT_FALSE(n.exclude_origin) << n.label;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GdsBuilder, ThetaPrunesLowAffinityNodes) {
  Dblp d = BuildDblp(TinyConfig());
  Gds strict = DblpAuthorGds(d, /*theta=*/0.8);
  // theta=0.8 keeps Author, Paper (.92), Co-Author (.82), Year (.83) only.
  EXPECT_EQ(strict.size(), 4u);
  Gds loose = DblpAuthorGds(d, /*theta=*/0.0);
  EXPECT_EQ(loose.size(), 7u);
}

TEST(GdsStatistics, MaxAndMmaxAnnotations) {
  Dblp d = BuildDblp(TinyConfig());
  datasets::ApplyDblpScores(&d, 1, 0.85);
  Gds gds = DblpAuthorGds(d);
  ASSERT_TRUE(gds.annotated());

  const GdsNode& root = gds.root();
  const GdsNode& paper = gds.node(root.children[0]);
  // max(R_i) = relation max importance x affinity.
  EXPECT_DOUBLE_EQ(paper.max_ri,
                   d.db.relation(d.paper).max_importance() * 0.92);
  // Root's mmax covers the whole subtree; it is at least Paper's max.
  EXPECT_GE(root.mmax_ri, paper.max_ri);
  // Paper's mmax covers its children but not itself.
  double child_max = 0.0;
  for (GdsNodeId c : paper.children) {
    child_max = std::max(child_max, gds.node(c).max_ri);
  }
  EXPECT_DOUBLE_EQ(paper.mmax_ri, child_max);
  // Leaves have mmax = 0.
  for (GdsNodeId c : paper.children) {
    if (gds.node(c).children.empty()) {
      EXPECT_DOUBLE_EQ(gds.node(c).mmax_ri, 0.0) << gds.node(c).label;
    }
  }
}

TEST(GdsStatistics, ToStringRendersTree) {
  Dblp d = BuildDblp(TinyConfig());
  datasets::ApplyDblpScores(&d, 1, 0.85);
  Gds gds = DblpAuthorGds(d);
  std::string s = gds.ToString(d.db);
  EXPECT_NE(s.find("Author"), std::string::npos);
  EXPECT_NE(s.find("Co-Author"), std::string::npos);
  EXPECT_NE(s.find("(0.92)"), std::string::npos);
}

TEST(Affinity, EdgeFactorInUnitInterval) {
  Dblp d = BuildDblp(TinyConfig());
  AffinityWeights w;
  for (const graph::LinkType& lt : d.links.links()) {
    for (FkDirection dir : {FkDirection::kForward, FkDirection::kBackward}) {
      rel::RelationId src = dir == FkDirection::kForward ? lt.a : lt.b;
      double f = EdgeAffinityFactor(d.db, d.links, src, lt.id, dir, w);
      EXPECT_GT(f, 0.0) << lt.name;
      EXPECT_LE(f, 1.0) << lt.name;
    }
  }
}

TEST(Affinity, MToOneEdgesBeatHighFanoutEdges) {
  Dblp d = BuildDblp(TinyConfig());
  AffinityWeights w;
  // Paper -> Year (M:1, backward on paper_year) should have higher factor
  // than Year -> Paper (high fan-out forward).
  double m_to_1 = EdgeAffinityFactor(d.db, d.links, d.paper,
                                     d.link_paper_year,
                                     FkDirection::kBackward, w);
  double fan_out = EdgeAffinityFactor(d.db, d.links, d.year,
                                      d.link_paper_year,
                                      FkDirection::kForward, w);
  EXPECT_GT(m_to_1, fan_out);
}

TEST(AutoGds, BuildsRootedTreeRespectingTheta) {
  Dblp d = BuildDblp(TinyConfig());
  GdsAutoOptions options;
  options.theta = 0.6;
  options.max_depth = 3;
  Gds gds = BuildGdsAuto(d.db, d.links, d.author, "Author", options);
  EXPECT_GE(gds.size(), 2u);  // at least Author -> Paper
  EXPECT_EQ(gds.root_relation(), d.author);
  for (size_t i = 0; i < gds.size(); ++i) {
    const GdsNode& n = gds.node(static_cast<GdsNodeId>(i));
    EXPECT_GE(n.affinity, i == 0 ? 1.0 : options.theta) << n.label;
    EXPECT_LE(n.depth, options.max_depth);
    if (n.parent != kNoGdsNode) {
      // Equation 1: child affinity = factor x parent affinity, factor <= 1.
      EXPECT_LE(n.affinity, gds.node(n.parent).affinity + 1e-12);
    }
  }
}

TEST(AutoGds, HigherThetaNeverGrowsTheTree) {
  Dblp d = BuildDblp(TinyConfig());
  GdsAutoOptions loose, strict;
  loose.theta = 0.5;
  strict.theta = 0.75;
  Gds g_loose = BuildGdsAuto(d.db, d.links, d.author, "Author", loose);
  Gds g_strict = BuildGdsAuto(d.db, d.links, d.author, "Author", strict);
  EXPECT_LE(g_strict.size(), g_loose.size());
}

TEST(AutoGds, DepthCapIsHard) {
  Dblp d = BuildDblp(TinyConfig());
  GdsAutoOptions options;
  options.theta = 0.0;  // no affinity pruning: only the depth cap stops it
  options.max_depth = 2;
  Gds gds = BuildGdsAuto(d.db, d.links, d.author, "Author", options);
  EXPECT_LE(gds.MaxDepth(), 2);
  EXPECT_GT(gds.size(), 3u);
}

}  // namespace
}  // namespace osum::gds
