// Tests for the Section 7 future-work extensions: multi-l DP, the size-l
// solution-space (stability) analysis, budget-driven l selection, OS JSON
// export and summary-importance result ranking.
#include <gtest/gtest.h>

#include "core/multi_l.h"
#include "core/os_backend.h"
#include "core/os_export.h"
#include "core/os_generator.h"
#include "core/word_budget.h"
#include "datasets/dblp.h"
#include "search/engine.h"
#include "tree_fixtures.h"
#include "util/string_util.h"

namespace osum::core {
namespace {

using osum::testing::MakeTree;
using osum::testing::PaperFigure4Tree;
using osum::testing::PaperFigure5Tree;
using osum::testing::RandomTree;

// --------------------------------------------------------------- SizeLDpAll

TEST(SizeLDpAll, MatchesPerLRunsInImportance) {
  util::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    OsTree os = RandomTree(&rng, 5 + rng.NextU64(60));
    size_t max_l = std::min<size_t>(os.size(), 20);
    std::vector<Selection> all = SizeLDpAll(os, max_l);
    ASSERT_EQ(all.size(), max_l);
    for (size_t l = 1; l <= max_l; ++l) {
      Selection single = SizeLDp(os, l);
      EXPECT_NEAR(all[l - 1].importance, single.importance, 1e-9)
          << "trial=" << trial << " l=" << l;
      EXPECT_TRUE(IsValidSelection(os, all[l - 1], l));
    }
  }
}

TEST(SizeLDpAll, PaperFigure5AtAllL) {
  OsTree os = PaperFigure5Tree();
  std::vector<Selection> all = SizeLDpAll(os, 14);
  ASSERT_EQ(all.size(), 14u);
  EXPECT_DOUBLE_EQ(all[4].importance, 240);  // l=5: {1,5,6,12,14}
  EXPECT_DOUBLE_EQ(all[13].importance, os.TotalImportance());
}

TEST(SizeLDpAll, ClampsAtTreeSize) {
  OsTree os = MakeTree({{-1, 1}, {0, 2}});
  std::vector<Selection> all = SizeLDpAll(os, 10);
  EXPECT_EQ(all.size(), 2u);
}

TEST(SizeLDpAll, EmptyInputs) {
  OsTree empty;
  EXPECT_TRUE(SizeLDpAll(empty, 5).empty());
  OsTree os = MakeTree({{-1, 1}});
  EXPECT_TRUE(SizeLDpAll(os, 0).empty());
}

// ---------------------------------------------------------------- stability

TEST(LStability, DetectsNonIncrementalStep) {
  // root(10) with children a(9), b(5); b has child c(5.5).
  //   l=2: {root, a} (19).  l=3: {root, a, b} (24)?  or {root,b,c} = 20.5.
  //   So S_2 ⊂ S_3 here. Make a case where the optimum switches branches:
  //   root(1): child x(10); child y(6)-z(12).
  //   l=2: {root, x} = 11.  l=3: {root, y, z} = 19 > {root, x, y} = 17 —
  //   the optimum drops x entirely.
  OsTree os = MakeTree({{-1, 1}, {0, 10}, {0, 6}, {2, 12}});
  std::vector<LStabilityPoint> points = AnalyzeLStability(os, 3);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[1].l, 2u);
  EXPECT_FALSE(points[1].is_incremental);  // S_2 = {0,1}, S_3 = {0,2,3}
  EXPECT_EQ(points[1].overlap, 1u);        // only the root survives
}

TEST(LStability, MonotoneTreesAreFullyIncremental) {
  util::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    OsTree os = osum::testing::RandomMonotoneTree(&rng, 30);
    auto points = AnalyzeLStability(os, 15);
    // On monotone trees the optimum is the top-l set, which grows by one
    // element per l; every step is incremental.
    EXPECT_DOUBLE_EQ(IncrementalFraction(points), 1.0) << "trial=" << trial;
  }
}

TEST(ChooseL, StopsAtDiminishingReturns) {
  // One heavy child, then a sea of negligible ones: the chooser should
  // stop right after the heavy tuple.
  OsTree os;
  os.AddRoot(0, 0, 0, 100.0);
  os.AddChild(kOsRoot, 0, 0, 1, 90.0);
  for (int i = 2; i < 30; ++i) {
    os.AddChild(kOsRoot, 0, 0, static_cast<rel::TupleId>(i), 0.5);
  }
  size_t l = ChooseLByMarginalGain(os, 29);
  EXPECT_EQ(l, 2u);
}

TEST(ChooseL, TakesEverythingWhenGainsStayHigh) {
  // Uniform weights: every added tuple contributes exactly the running
  // average, so the chooser runs to max_l.
  OsTree os;
  os.AddRoot(0, 0, 0, 10.0);
  for (int i = 1; i < 12; ++i) {
    os.AddChild(kOsRoot, 0, 0, static_cast<rel::TupleId>(i), 10.0);
  }
  EXPECT_EQ(ChooseLByMarginalGain(os, 12), 12u);
}

TEST(ChooseL, AtLeastOneAndHandlesEmpty) {
  OsTree empty;
  EXPECT_EQ(ChooseLByMarginalGain(empty, 10), 0u);
  OsTree os = MakeTree({{-1, 5.0}});
  EXPECT_EQ(ChooseLByMarginalGain(os, 10), 1u);
}

TEST(LStability, RatiosWithinBounds) {
  util::Rng rng(78);
  OsTree os = RandomTree(&rng, 200);
  for (const auto& p : AnalyzeLStability(os, 50)) {
    EXPECT_GE(p.overlap_ratio, 0.0);
    EXPECT_LE(p.overlap_ratio, 1.0);
    EXPECT_GE(p.overlap, 1u);  // the root is always shared
  }
}

}  // namespace
}  // namespace osum::core

namespace osum {
namespace {

struct ExtFixture {
  datasets::Dblp d;
  gds::Gds gds;
  core::DataGraphBackend backend;
  core::OsTree os;

  ExtFixture()
      : d(MakeDblp()),
        gds(datasets::DblpAuthorGds(d)),
        backend(d.db, d.links, d.data_graph),
        os(core::GenerateCompleteOs(d.db, gds, &backend, 0)) {}

  static datasets::Dblp MakeDblp() {
    datasets::DblpConfig c;
    c.num_authors = 120;
    c.num_papers = 400;
    c.num_conferences = 8;
    datasets::Dblp d = datasets::BuildDblp(c);
    datasets::ApplyDblpScores(&d, 1, 0.85);
    return d;
  }
};

// ------------------------------------------------------------- word budget

TEST(WordBudget, NodeCostsMatchRenderedWords) {
  ExtFixture f;
  auto costs = core::NodeBudgetCosts(f.d.db, f.os, core::BudgetUnit::kWords);
  ASSERT_EQ(costs.size(), f.os.size());
  // Root is an author name: two or three words.
  EXPECT_GE(costs[0], 2u);
  EXPECT_LE(costs[0], 4u);
  // Spot-check one node against its rendering.
  const core::OsNode& n = f.os.node(1);
  size_t words = util::TokenizeWords(
                     f.d.db.relation(n.relation).RenderValues(n.tuple))
                     .size();
  EXPECT_EQ(costs[1], words);
}

TEST(WordBudget, AttributeCosts) {
  ExtFixture f;
  auto costs =
      core::NodeBudgetCosts(f.d.db, f.os, core::BudgetUnit::kAttributes);
  // Author has exactly one display attribute.
  EXPECT_EQ(costs[0], 1u);
}

TEST(WordBudget, SelectionFitsBudget) {
  ExtFixture f;
  for (uint64_t budget : {20u, 50u, 120u}) {
    auto result = core::SizeLByBudget(f.d.db, f.os, budget,
                                      core::BudgetUnit::kWords,
                                      core::SizeLAlgorithm::kTopPathMemo);
    EXPECT_LE(result.cost, budget) << "budget=" << budget;
    EXPECT_EQ(result.selection.nodes.size(), result.l);
    EXPECT_TRUE(core::IsValidSelection(f.os, result.selection, result.l));
  }
}

TEST(WordBudget, LargerBudgetNeverShrinksL) {
  ExtFixture f;
  size_t prev_l = 0;
  for (uint64_t budget : {10u, 30u, 80u, 200u, 500u}) {
    auto result = core::SizeLByBudget(f.d.db, f.os, budget,
                                      core::BudgetUnit::kWords,
                                      core::SizeLAlgorithm::kBottomUp);
    EXPECT_GE(result.l, prev_l) << "budget=" << budget;
    prev_l = result.l;
  }
}

TEST(WordBudget, TinyBudgetStillReturnsRoot) {
  ExtFixture f;
  auto result =
      core::SizeLByBudget(f.d.db, f.os, 1, core::BudgetUnit::kWords,
                          core::SizeLAlgorithm::kDp);
  EXPECT_EQ(result.l, 1u);
  EXPECT_EQ(result.selection.nodes,
            (std::vector<core::OsNodeId>{core::kOsRoot}));
}

TEST(WordBudget, WholeOsFitsWhenBudgetHuge) {
  ExtFixture f;
  auto result = core::SizeLByBudget(f.d.db, f.os, 100'000'000,
                                    core::BudgetUnit::kWords,
                                    core::SizeLAlgorithm::kBottomUp);
  EXPECT_EQ(result.l, f.os.size());
}

// -------------------------------------------------------------- JSON export

TEST(OsJson, EscapesSpecials) {
  EXPECT_EQ(core::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(core::JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(OsJson, RendersSelectedSubtree) {
  ExtFixture f;
  core::Selection sel = core::SizeLDp(f.os, 8);
  std::string json = core::RenderOsJson(f.d.db, f.gds, f.os, &sel.nodes);
  EXPECT_NE(json.find("\"label\": \"Author\""), std::string::npos);
  EXPECT_NE(json.find("Christos Faloutsos"), std::string::npos);
  // Selected subtree has exactly 8 nodes = 8 "label" keys.
  size_t labels = 0;
  for (size_t pos = json.find("\"label\""); pos != std::string::npos;
       pos = json.find("\"label\"", pos + 1)) {
    ++labels;
  }
  EXPECT_EQ(labels, 8u);
}

TEST(OsJson, CompactModeHasNoNewlines) {
  ExtFixture f;
  core::Selection sel = core::SizeLDp(f.os, 3);
  std::string json =
      core::RenderOsJson(f.d.db, f.gds, f.os, &sel.nodes, /*pretty=*/false);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(OsJson, EmptyTreeAndMissingRoot) {
  ExtFixture f;
  core::OsTree empty;
  EXPECT_EQ(core::RenderOsJson(f.d.db, f.gds, empty), "null");
  std::vector<core::OsNodeId> no_root{1, 2};
  EXPECT_EQ(core::RenderOsJson(f.d.db, f.gds, f.os, &no_root), "null");
}

// ------------------------------------------------------------ result ranking

TEST(SummaryRanking, OrdersBySizeLImportance) {
  ExtFixture f;
  search::SizeLSearchEngine engine(f.d.db, &f.backend);
  engine.RegisterSubject(f.d.author, datasets::DblpAuthorGds(f.d));
  engine.BuildIndex();

  search::QueryOptions options;
  options.l = 10;
  options.ranking = search::ResultRanking::kSummaryImportance;
  auto results = engine.Query("Faloutsos", options);
  ASSERT_EQ(results.size(), 3u);
  for (size_t i = 0; i + 1 < results.size(); ++i) {
    EXPECT_GE(results[i].selection.importance,
              results[i + 1].selection.importance);
  }
}

TEST(SummaryRanking, TruncatesAfterRanking) {
  ExtFixture f;
  search::SizeLSearchEngine engine(f.d.db, &f.backend);
  engine.RegisterSubject(f.d.author, datasets::DblpAuthorGds(f.d));
  engine.BuildIndex();

  search::QueryOptions options;
  options.l = 6;
  options.max_results = 1;
  options.ranking = search::ResultRanking::kSummaryImportance;
  auto top1 = engine.Query("Faloutsos", options);
  ASSERT_EQ(top1.size(), 1u);

  options.max_results = 3;
  auto top3 = engine.Query("Faloutsos", options);
  ASSERT_EQ(top3.size(), 3u);
  // The retained result is the global best, not just the best of a
  // pre-truncated subject list.
  EXPECT_DOUBLE_EQ(top1[0].selection.importance,
                   top3[0].selection.importance);
}

}  // namespace
}  // namespace osum
