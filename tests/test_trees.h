// Shared OS-tree fixtures for algorithm tests: the paper's worked examples
// (Figures 4, 5 and 6) and random-tree generators for property tests.
#ifndef OSUM_TESTS_TEST_TREES_H_
#define OSUM_TESTS_TEST_TREES_H_

#include <utility>
#include <vector>

#include "core/os_tree.h"
#include "util/rng.h"

namespace osum::testing {

/// Builds an OsTree from (parent, weight) pairs; entry 0 is the root and
/// must have parent -1. Node ids equal entry indices. G_DS ids/relations
/// are dummies — the size-l algorithms only look at the tree shape and
/// local importance.
inline core::OsTree MakeTree(
    const std::vector<std::pair<int, double>>& spec) {
  core::OsTree os;
  for (size_t i = 0; i < spec.size(); ++i) {
    const auto& [parent, weight] = spec[i];
    if (parent < 0) {
      os.AddRoot(0, 0, static_cast<rel::TupleId>(i), weight);
    } else {
      os.AddChild(parent, 0, 0, static_cast<rel::TupleId>(i), weight);
    }
  }
  return os;
}

// The paper numbers nodes 1..14; our arenas are 0-based, so paper node k is
// arena node k-1 in all three fixtures below.

/// Figure 4 (DP example): optimal size-4 OS is {1,4,5,6} (paper ids).
inline core::OsTree PaperFigure4Tree() {
  return MakeTree({
      {-1, 30},  // 1 (root)
      {0, 20},   // 2
      {0, 11},   // 3
      {0, 31},   // 4
      {0, 80},   // 5
      {0, 35},   // 6
      {2, 10},   // 7  (child of 3)
      {2, 15},   // 8  (child of 3)
      {2, 5},    // 9  (child of 3)
      {3, 13},   // 10 (child of 4)
      {3, 30},   // 11 (child of 4)
      {5, 12},   // 12 (child of 6)
      {10, 60},  // 13 (child of 11)
      {11, 40},  // 14 (child of 12)
  });
}

/// Figures 5 and 6 share one tree shape:
/// 1 -> {2,3,4,5,6}; 2 -> {7,8}; 3 -> {9}; 4 -> {10}; 5 -> {11};
/// 6 -> {12}; 11 -> {13}; 12 -> {14}. They differ in node 12's weight.
inline core::OsTree PaperFigure56Tree(double weight12) {
  return MakeTree({
      {-1, 30},       // 1 (root)
      {0, 20},        // 2
      {0, 11},        // 3
      {0, 31},        // 4
      {0, 80},        // 5
      {0, 35},        // 6
      {1, 10},        // 7  (child of 2)
      {1, 15},        // 8  (child of 2)
      {2, 5},         // 9  (child of 3)
      {3, 13},        // 10 (child of 4)
      {4, 30},        // 11 (child of 5)
      {5, weight12},  // 12 (child of 6)
      {10, 60},       // 13 (child of 11)
      {11, 40},       // 14 (child of 12)
  });
}

/// Figure 5 (Bottom-Up example): node 12 weighs 55. Bottom-Up's size-5 OS
/// is {1,5,6,11,13} (importance 235) while the optimum is {1,5,6,12,14}
/// (importance 240).
inline core::OsTree PaperFigure5Tree() { return PaperFigure56Tree(55); }

/// Figure 6 (Update Top-Path-l example): node 12 weighs 12. Top-Path's
/// size-5 OS is {1,5,6,11,13}; its size-3 OS is {1,5,11} while the optimum
/// is {1,5,6}.
inline core::OsTree PaperFigure6Tree() { return PaperFigure56Tree(12); }

/// Converts paper node ids (1-based) to an arena selection for EXPECTs.
inline std::vector<core::OsNodeId> PaperIds(std::vector<int> ids) {
  std::vector<core::OsNodeId> out;
  out.reserve(ids.size());
  for (int id : ids) out.push_back(id - 1);
  return out;
}

/// Random tree with `n` nodes; each node's parent is drawn among earlier
/// nodes (biased toward recent ones to get realistic depth). Weights are
/// uniform in [0, 100).
inline core::OsTree RandomTree(util::Rng* rng, size_t n,
                               double recency_bias = 0.7) {
  core::OsTree os;
  os.AddRoot(0, 0, 0, rng->NextDouble() * 100.0);
  for (size_t i = 1; i < n; ++i) {
    size_t parent;
    if (i == 1 || rng->NextBernoulli(1.0 - recency_bias)) {
      parent = rng->NextU64(i);
    } else {
      size_t window = std::max<size_t>(1, i / 3);
      parent = i - 1 - rng->NextU64(window);
    }
    os.AddChild(static_cast<core::OsNodeId>(parent), 0, 0,
                static_cast<rel::TupleId>(i), rng->NextDouble() * 100.0);
  }
  return os;
}

/// Random tree whose local importances decrease monotonically with depth —
/// the Lemma 2 / Lemma 3 precondition.
inline core::OsTree RandomMonotoneTree(util::Rng* rng, size_t n) {
  core::OsTree os;
  os.AddRoot(0, 0, 0, 100.0);
  std::vector<double> weight{100.0};
  for (size_t i = 1; i < n; ++i) {
    size_t parent = rng->NextU64(i);
    double w = weight[parent] * rng->NextDouble(0.3, 1.0);
    weight.push_back(w);
    os.AddChild(static_cast<core::OsNodeId>(parent), 0, 0,
                static_cast<rel::TupleId>(i), w);
  }
  return os;
}

}  // namespace osum::testing

#endif  // OSUM_TESTS_TEST_TREES_H_
