// Core-only test fixtures: the paper's worked-example OS trees (Figures 4,
// 5 and 6), random-tree generators for property tests, and golden
// comparators for OS trees / selections. Pure osum::core — suites that only
// exercise the size-l algorithms link this without dragging in datasets.
// Database-backed fixtures live in db_fixtures.h.
#ifndef OSUM_TESTS_TREE_FIXTURES_H_
#define OSUM_TESTS_TREE_FIXTURES_H_

#include <cstddef>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/os_tree.h"
#include "core/size_l.h"
#include "util/rng.h"

namespace osum::testing {

// --------------------------------------------------------------- OS trees

/// Builds an OsTree from (parent, weight) pairs; entry 0 is the root and
/// must have parent -1. Node ids equal entry indices. G_DS ids/relations
/// are dummies — the size-l algorithms only look at the tree shape and
/// local importance.
core::OsTree MakeTree(const std::vector<std::pair<int, double>>& spec);

// The paper numbers nodes 1..14; our arenas are 0-based, so paper node k is
// arena node k-1 in all three fixtures below.

/// Figure 4 (DP example): optimal size-4 OS is {1,4,5,6} (paper ids).
core::OsTree PaperFigure4Tree();

/// Figures 5 and 6 share one tree shape:
/// 1 -> {2,3,4,5,6}; 2 -> {7,8}; 3 -> {9}; 4 -> {10}; 5 -> {11};
/// 6 -> {12}; 11 -> {13}; 12 -> {14}. They differ in node 12's weight.
core::OsTree PaperFigure56Tree(double weight12);

/// Figure 5 (Bottom-Up example): node 12 weighs 55. Bottom-Up's size-5 OS
/// is {1,5,6,11,13} (importance 235) while the optimum is {1,5,6,12,14}
/// (importance 240).
core::OsTree PaperFigure5Tree();

/// Figure 6 (Update Top-Path-l example): node 12 weighs 12. Top-Path's
/// size-5 OS is {1,5,6,11,13}; its size-3 OS is {1,5,11} while the optimum
/// is {1,5,6}.
core::OsTree PaperFigure6Tree();

/// Converts paper node ids (1-based) to an arena selection for EXPECTs.
std::vector<core::OsNodeId> PaperIds(std::vector<int> ids);

/// Random tree with `n` nodes; each node's parent is drawn among earlier
/// nodes (biased toward recent ones to get realistic depth). Weights are
/// uniform in [0, 100).
core::OsTree RandomTree(util::Rng* rng, size_t n, double recency_bias = 0.7);

/// Random tree whose local importances decrease monotonically with depth —
/// the Lemma 2 / Lemma 3 precondition.
core::OsTree RandomMonotoneTree(util::Rng* rng, size_t n);

// ------------------------------------------------------ golden comparators

/// Structural equality of two OS trees: same node count and, node by node,
/// same parent, depth and local importance. Use as
/// `EXPECT_TRUE(SameTree(got, want))`; the failure message pinpoints the
/// first differing node.
::testing::AssertionResult SameTree(const core::OsTree& got,
                                    const core::OsTree& want);

/// Golden comparator for size-l results: the selection must equal the given
/// paper node ids (1-based, in ascending arena order) and, when
/// `want_importance` is non-negative, sum to exactly that importance.
::testing::AssertionResult SelectionIsPaperIds(const core::Selection& got,
                                               std::vector<int> want_paper_ids,
                                               double want_importance = -1.0);

}  // namespace osum::testing

#endif  // OSUM_TESTS_TREE_FIXTURES_H_
