// Cross-module integration tests: the full paper pipeline on both
// databases, plus statistical versions of the paper's Section 6 claims.
#include <gtest/gtest.h>

#include "core/os_backend.h"
#include "core/os_generator.h"
#include "core/size_l.h"
#include "datasets/dblp.h"
#include "datasets/tpch.h"
#include "eval/evaluator.h"
#include "db_fixtures.h"
#include "util/rng.h"

namespace osum {
namespace {

using datasets::DblpAuthorGds;
using datasets::DblpPaperGds;
using datasets::TpchCustomerGds;
using datasets::TpchSupplierGds;
using osum::testing::MediumDblpConfig;
using osum::testing::MediumTpchConfig;
using osum::testing::ScoredDblp;
using osum::testing::ScoredTpch;

TEST(IntegrationDblp, GreedyQualityOnRealOss) {
  ScoredDblp f(MediumDblpConfig());
  gds::Gds gds = DblpAuthorGds(f.d);

  double bu_ratio = 0.0, tp_ratio = 0.0;
  int count = 0;
  for (rel::TupleId tds = 0; tds < 10; ++tds) {
    core::OsTree os = core::GenerateCompleteOs(f.d.db, gds, &f.backend, tds);
    if (os.size() < 30) continue;
    for (size_t l : {10u, 30u}) {
      core::Selection opt = core::SizeLDp(os, l);
      bu_ratio += core::SizeLBottomUp(os, l).importance / opt.importance;
      tp_ratio += core::SizeLTopPath(os, l).importance / opt.importance;
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  // Figure 9: both greedies stay high; Top-Path dominates Bottom-Up.
  EXPECT_GT(bu_ratio / count, 0.80);
  EXPECT_GT(tp_ratio / count, 0.90);
  EXPECT_GE(tp_ratio, bu_ratio - 1e-9);
}

TEST(IntegrationDblp, PaperOssAreNearMonotoneSoBottomUpIsOptimal) {
  // Section 6.2: "for Paper OSs all methods achieved 100% quality" because
  // monotonicity (Lemma 2) holds on the Paper G_DS. Our synthetic scores
  // approximate this; require near-optimality rather than exactness.
  ScoredDblp f(MediumDblpConfig());
  gds::Gds gds = DblpPaperGds(f.d);
  double ratio = 0.0;
  int count = 0;
  for (rel::TupleId tds = 0; tds < 10; ++tds) {
    core::OsTree os = core::GenerateCompleteOs(f.d.db, gds, &f.backend, tds);
    if (os.size() < 15) continue;
    core::Selection opt = core::SizeLDp(os, 10);
    ratio += core::SizeLBottomUp(os, 10).importance / opt.importance;
    ++count;
  }
  ASSERT_GT(count, 0);
  EXPECT_GT(ratio / count, 0.95);
}

TEST(IntegrationDblp, Lemma3PrelimContainsOptimumOnMonotoneOs) {
  // Construct monotone importance explicitly: give every relation a base
  // score with a small deterministic jitter such that affinity-scaled
  // local importance strictly decreases with G_DS depth (the Lemma 2/3
  // precondition the paper observed on Paper OSs).
  ScoredDblp f(MediumDblpConfig());  // annotate + sort once
  datasets::Dblp& d = f.d;
  auto jittered = [](const rel::Relation& r, double base, uint64_t seed) {
    util::Rng rng(seed);
    std::vector<double> imp(r.num_tuples());
    for (double& v : imp) v = base * (1.0 + 0.04 * rng.NextDouble());
    return imp;
  };
  // Paper G_DS affinities: Author .90, Cites .77, Year .83, Conf .78.
  // Bases: root Paper ~10 dominates Author (5*.90 <= 4.7), cited/citing
  // papers (10.4*.77 <= 8.1) and Year (5*.83 <= 4.4); Year dominates
  // Conference (4*.78 <= 3.3). Monotone with margin.
  d.db.relation(d.paper).SetImportance(
      jittered(d.db.relation(d.paper), 10.0, 1));
  d.db.relation(d.author).SetImportance(
      jittered(d.db.relation(d.author), 5.0, 2));
  d.db.relation(d.year).SetImportance(
      jittered(d.db.relation(d.year), 5.0, 3));
  d.db.relation(d.conference).SetImportance(
      jittered(d.db.relation(d.conference), 4.0, 4));
  d.db.SortIndexesByImportance();
  d.data_graph.SortNeighborsByImportance(d.db);

  gds::Gds gds = DblpPaperGds(d);
  int monotone_checked = 0;
  for (rel::TupleId tds = 0; tds < 20; ++tds) {
    core::OsTree complete =
        core::GenerateCompleteOs(d.db, gds, &f.backend, tds);
    if (complete.size() < 12) continue;
    ASSERT_TRUE(complete.IsMonotone()) << "tds=" << tds;
    ++monotone_checked;
    size_t l = 8;
    core::OsTree prelim =
        core::GeneratePrelimOs(d.db, gds, &f.backend, tds, l);
    core::Selection opt_complete = core::SizeLDp(complete, l);
    core::Selection opt_prelim = core::SizeLDp(prelim, l);
    EXPECT_NEAR(opt_prelim.importance, opt_complete.importance, 1e-6)
        << "tds=" << tds;
  }
  EXPECT_GT(monotone_checked, 0);
}

TEST(IntegrationDblp, PrelimReducesExtractionAcrossSubjects) {
  ScoredDblp f(MediumDblpConfig());
  gds::Gds gds = DblpAuthorGds(f.d);
  uint64_t complete_nodes = 0, prelim_nodes = 0;
  for (rel::TupleId tds = 0; tds < 10; ++tds) {
    complete_nodes +=
        core::GenerateCompleteOs(f.d.db, gds, &f.backend, tds).size();
    prelim_nodes +=
        core::GeneratePrelimOs(f.d.db, gds, &f.backend, tds, 10).size();
  }
  // Figure 10f: prelim-10 is ~10% of the complete OS size on Supplier; on
  // DBLP authors expect at least a 2x reduction.
  EXPECT_LT(prelim_nodes * 2, complete_nodes);
}

TEST(IntegrationTpch, FullPipelineOnBothGdss) {
  ScoredTpch f(MediumTpchConfig());
  for (const gds::Gds& gds : {TpchCustomerGds(f.t), TpchSupplierGds(f.t)}) {
    for (rel::TupleId tds = 0; tds < 4; ++tds) {
      core::OsTree os =
          core::GenerateCompleteOs(f.t.db, gds, &f.backend, tds);
      ASSERT_GT(os.size(), 1u);
      for (size_t l : {5u, 15u}) {
        core::Selection opt = core::SizeLDp(os, l);
        EXPECT_TRUE(core::IsValidSelection(os, opt, l));
        core::Selection bu = core::SizeLBottomUp(os, l);
        core::Selection tp = core::SizeLTopPathMemo(os, l);
        EXPECT_LE(bu.importance, opt.importance + 1e-9);
        EXPECT_LE(tp.importance, opt.importance + 1e-9);
        EXPECT_GT(tp.importance, 0.6 * opt.importance);
      }
    }
  }
}

TEST(IntegrationTpch, PrelimDefinition2OnTpch) {
  ScoredTpch f(MediumTpchConfig());
  gds::Gds gds = TpchSupplierGds(f.t);
  for (rel::TupleId tds = 0; tds < 4; ++tds) {
    size_t l = 10;
    core::OsTree complete =
        core::GenerateCompleteOs(f.t.db, gds, &f.backend, tds);
    core::OsTree prelim =
        core::GeneratePrelimOs(f.t.db, gds, &f.backend, tds, l);
    std::vector<double> all, got;
    for (const core::OsNode& n : complete.nodes()) {
      all.push_back(n.local_importance);
    }
    for (const core::OsNode& n : prelim.nodes()) {
      got.push_back(n.local_importance);
    }
    std::sort(all.begin(), all.end(), std::greater<>());
    std::sort(got.begin(), got.end(), std::greater<>());
    if (all.size() > l) all.resize(l);
    ASSERT_GE(got.size(), all.size());
    for (size_t i = 0; i < all.size(); ++i) {
      EXPECT_GE(got[i], all[i] - 1e-9) << "tds=" << tds << " rank=" << i;
    }
  }
}

TEST(IntegrationEffectiveness, DefaultSettingBeatsNoise) {
  // Micro version of Figure 8: scores from the default setting should
  // align with simulated evaluators far better than inverted scores do.
  ScoredDblp f(MediumDblpConfig());
  gds::Gds gds = DblpAuthorGds(f.d);
  core::OsTree os = core::GenerateCompleteOs(f.d.db, gds, &f.backend, 0);
  std::vector<double> ref = eval::NodeScores(os);

  eval::EvaluatorPanel panel(eval::DblpEvaluatorConfig(5));
  size_t l = 15;
  core::Selection ours = core::SizeLDp(os, l);
  // Adversarial scoring: invert the reference ordering.
  std::vector<double> inverted(ref.size());
  double mx = *std::max_element(ref.begin(), ref.end());
  for (size_t i = 0; i < ref.size(); ++i) inverted[i] = mx - ref[i] + 1.0;
  core::Selection bad = core::SizeLDp(eval::ReweightOs(os, inverted), l);

  double ours_eff = 0.0, bad_eff = 0.0;
  for (size_t e = 0; e < panel.size(); ++e) {
    core::Selection ideal = panel.IdealSizeL(os, gds, ref, e, l);
    ours_eff += eval::Effectiveness(ours, ideal, l);
    bad_eff += eval::Effectiveness(bad, ideal, l);
  }
  EXPECT_GT(ours_eff, bad_eff + 1.0);  // clearly better, not marginal
}

}  // namespace
}  // namespace osum
