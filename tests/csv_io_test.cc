// Tests for database CSV persistence: quoting, NULL round-trips, whole
// database save/load equality and error handling.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "datasets/dblp.h"
#include "datasets/tpch.h"
#include "relational/csv_io.h"

namespace osum::rel {
namespace {

std::string TempDir(const char* tag) {
  std::string dir = std::filesystem::temp_directory_path() /
                    ("osum_csv_test_" + std::string(tag));
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(CsvQuoteTest, PlainFieldsUntouched) {
  EXPECT_EQ(CsvQuote("hello"), "hello");
  EXPECT_EQ(CsvQuote("42"), "42");
}

TEST(CsvQuoteTest, SpecialsQuoted) {
  EXPECT_EQ(CsvQuote("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvQuote(""), "\"\"");
}

TEST(CsvParse, RoundTripsFields) {
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  ASSERT_TRUE(CsvParseLine("a,\"b,c\",\"d\"\"e\",", &fields, &quoted));
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
  EXPECT_EQ(fields[3], "");
  EXPECT_FALSE(quoted[0]);
  EXPECT_TRUE(quoted[1]);
  EXPECT_FALSE(quoted[3]);
}

TEST(CsvParse, RejectsUnterminatedQuote) {
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  EXPECT_FALSE(CsvParseLine("\"open", &fields, &quoted));
}

TEST(RelationCsv, RoundTripWithNullsAndCommas) {
  Schema schema({{"name", ValueType::kString, true},
                 {"price", ValueType::kDouble, true},
                 {"ref", ValueType::kInt, false}});
  Relation original(0, "T", schema, false);
  original.Append({Value{std::string("plain")}, Value{1.5}, Value{int64_t{7}}});
  original.Append({Value{std::string("with, comma")}, Value{}, Value{}});
  original.Append({Value{std::string("")}, Value{-2.25}, Value{int64_t{0}}});

  std::stringstream buffer;
  WriteRelationCsv(original, buffer);
  Relation loaded(0, "T", schema, false);
  ASSERT_TRUE(ReadRelationCsv(buffer, &loaded));
  ASSERT_EQ(loaded.num_tuples(), 3u);
  EXPECT_EQ(loaded.StringValue(1, 0), "with, comma");
  EXPECT_EQ(TypeOf(loaded.value(1, 1)), ValueType::kNull);
  EXPECT_EQ(TypeOf(loaded.value(1, 2)), ValueType::kNull);
  EXPECT_EQ(loaded.StringValue(2, 0), "");  // empty string, not NULL
  EXPECT_DOUBLE_EQ(loaded.NumericValue(2, 1), -2.25);
}

TEST(RelationCsv, RejectsWrongHeader) {
  Schema schema({{"x", ValueType::kInt, true}});
  Relation r(0, "T", schema, false);
  std::stringstream in("y\n1\n");
  EXPECT_FALSE(ReadRelationCsv(in, &r));
}

TEST(RelationCsv, RejectsNonNumericInIntColumn) {
  Schema schema({{"x", ValueType::kInt, true}});
  Relation r(0, "T", schema, false);
  std::stringstream in("x\nnotanumber\n");
  EXPECT_FALSE(ReadRelationCsv(in, &r));
}

TEST(DatabaseCsv, FullDblpRoundTrip) {
  datasets::DblpConfig config;
  config.num_authors = 60;
  config.num_papers = 150;
  config.num_conferences = 5;
  datasets::Dblp d = datasets::BuildDblp(config);

  std::string dir = TempDir("dblp");
  ASSERT_TRUE(SaveDatabaseCsv(d.db, dir));
  auto loaded = LoadDatabaseCsv(dir);
  ASSERT_TRUE(loaded.has_value());

  ASSERT_EQ(loaded->num_relations(), d.db.num_relations());
  ASSERT_EQ(loaded->num_foreign_keys(), d.db.num_foreign_keys());
  EXPECT_EQ(loaded->TotalTuples(), d.db.TotalTuples());
  for (RelationId r = 0; r < d.db.num_relations(); ++r) {
    const Relation& a = d.db.relation(r);
    const Relation& b = loaded->relation(r);
    ASSERT_EQ(a.name(), b.name());
    ASSERT_EQ(a.num_tuples(), b.num_tuples());
    EXPECT_EQ(a.is_junction(), b.is_junction());
    // Spot-check a few tuples per relation cell-by-cell.
    for (TupleId t = 0; t < std::min<TupleId>(5, a.num_tuples()); ++t) {
      for (ColumnId c = 0; c < a.schema().num_columns(); ++c) {
        EXPECT_EQ(ToString(a.value(t, c)), ToString(b.value(t, c)))
            << a.name() << " t=" << t << " c=" << c;
      }
    }
  }
  // Indexes were rebuilt: joins answer immediately.
  EXPECT_FALSE(loaded->Children(0, 0).empty() &&
               d.db.Children(0, 0).size() > 0);
  std::filesystem::remove_all(dir);
}

TEST(DatabaseCsv, FullTpchRoundTrip) {
  // TPC-H twin of FullDblpRoundTrip: 8 relations, no junctions, doubles in
  // every monetary column — exercises the numeric formatting paths the
  // DBLP schema barely touches.
  datasets::TpchConfig config;
  config.num_customers = 40;
  config.num_suppliers = 6;
  config.num_parts = 50;
  config.mean_orders_per_customer = 4.0;
  datasets::Tpch t = datasets::BuildTpch(config);

  std::string dir = TempDir("tpch");
  ASSERT_TRUE(SaveDatabaseCsv(t.db, dir));
  auto loaded = LoadDatabaseCsv(dir);
  ASSERT_TRUE(loaded.has_value());

  ASSERT_EQ(loaded->num_relations(), t.db.num_relations());
  ASSERT_EQ(loaded->num_foreign_keys(), t.db.num_foreign_keys());
  EXPECT_EQ(loaded->TotalTuples(), t.db.TotalTuples());
  for (RelationId r = 0; r < t.db.num_relations(); ++r) {
    const Relation& a = t.db.relation(r);
    const Relation& b = loaded->relation(r);
    ASSERT_EQ(a.name(), b.name());
    ASSERT_EQ(a.num_tuples(), b.num_tuples());
    EXPECT_EQ(a.is_junction(), b.is_junction());
    for (TupleId tu = 0; tu < std::min<TupleId>(5, a.num_tuples()); ++tu) {
      for (ColumnId c = 0; c < a.schema().num_columns(); ++c) {
        EXPECT_EQ(ToString(a.value(tu, c)), ToString(b.value(tu, c)))
            << a.name() << " t=" << tu << " c=" << c;
      }
    }
  }
  // The reloaded database answers the Customer->Orders join like the
  // original (indexes rebuilt by the loader).
  ForeignKeyId order_cust = 0;
  bool found_order_cust = false;
  for (ForeignKeyId fk = 0; fk < t.db.num_foreign_keys(); ++fk) {
    if (t.db.foreign_key(fk).child == t.orders &&
        t.db.foreign_key(fk).parent == t.customer) {
      order_cust = fk;
      found_order_cust = true;
    }
  }
  ASSERT_TRUE(found_order_cust);
  for (TupleId c = 0; c < 5; ++c) {
    auto a = t.db.Children(order_cust, c);
    auto b = loaded->Children(order_cust, c);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "customer " << c;
  }
  std::filesystem::remove_all(dir);
}

TEST(DatabaseCsv, LoadFailsOnMissingDir) {
  EXPECT_FALSE(LoadDatabaseCsv("/nonexistent/osum_dir_42").has_value());
}

TEST(DatabaseCsv, LoadFailsOnCorruptCatalog) {
  std::string dir = TempDir("corrupt");
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/catalog.txt") << "gibberish here\n";
  EXPECT_FALSE(LoadDatabaseCsv(dir).has_value());
  std::filesystem::remove_all(dir);
}

TEST(DatabaseCsv, LoadFailsOnMissingRelationFile) {
  std::string dir = TempDir("missingrel");
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/catalog.txt")
      << "relation T entity\ncolumn T x int display\n";
  EXPECT_FALSE(LoadDatabaseCsv(dir).has_value());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace osum::rel
