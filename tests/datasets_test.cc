// Tests for the DBLP and TPC-H generators: schema wiring, determinism,
// skew, scoring presets and the published G_DS presets.
#include <gtest/gtest.h>

#include "core/os_backend.h"
#include "core/os_generator.h"
#include "datasets/dblp.h"
#include "datasets/settings.h"
#include "datasets/tpch.h"
#include "db_fixtures.h"

namespace osum::datasets {
namespace {

// The exact cardinalities (150 authors, 600 papers, ...) are asserted by the
// schema tests; the configs live in db_fixtures so integration-style suites
// reuse them.
using osum::testing::SmallDblpConfig;
using osum::testing::SmallTpchConfig;

TEST(DblpGen, SchemaAndCardinalities) {
  Dblp d = BuildDblp(SmallDblpConfig());
  EXPECT_EQ(d.db.num_relations(), 6u);
  EXPECT_EQ(d.db.relation(d.author).num_tuples(), 150u);
  EXPECT_EQ(d.db.relation(d.paper).num_tuples(), 600u);
  EXPECT_GT(d.db.relation(d.writes).num_tuples(), 600u);  // >=1 author each
  EXPECT_GT(d.db.relation(d.cites).num_tuples(), 0u);
  EXPECT_TRUE(d.db.relation(d.writes).is_junction());
  EXPECT_TRUE(d.db.relation(d.cites).is_junction());
  // Links: Writes, Cites + paper_year + year_conference.
  EXPECT_EQ(d.links.num_links(), 4u);
}

TEST(DblpGen, FaloutsosBrothersSeeded) {
  Dblp d = BuildDblp(SmallDblpConfig());
  const rel::Relation& authors = d.db.relation(d.author);
  EXPECT_EQ(authors.StringValue(0, 0), "Christos Faloutsos");
  EXPECT_EQ(authors.StringValue(1, 0), "Michalis Faloutsos");
  EXPECT_EQ(authors.StringValue(2, 0), "Petros Faloutsos");
}

TEST(DblpGen, DeterministicForSameSeed) {
  Dblp a = BuildDblp(SmallDblpConfig());
  Dblp b = BuildDblp(SmallDblpConfig());
  ASSERT_EQ(a.db.relation(a.writes).num_tuples(),
            b.db.relation(b.writes).num_tuples());
  ASSERT_EQ(a.db.relation(a.cites).num_tuples(),
            b.db.relation(b.cites).num_tuples());
  // Spot-check a few tuples.
  for (rel::TupleId t : {0u, 5u, 99u}) {
    EXPECT_EQ(a.db.relation(a.paper).StringValue(t, 0),
              b.db.relation(b.paper).StringValue(t, 0));
  }
}

TEST(DblpGen, DifferentSeedDiffers) {
  DblpConfig c = SmallDblpConfig();
  Dblp a = BuildDblp(c);
  c.seed = 999;
  Dblp b = BuildDblp(c);
  EXPECT_NE(a.db.relation(a.writes).num_tuples(),
            b.db.relation(b.writes).num_tuples());
}

TEST(DblpGen, ProductivityIsSkewed) {
  Dblp d = BuildDblp(SmallDblpConfig());
  // Author 0 (Zipf rank 0) writes far more papers than a mid-rank author.
  auto papers_of = [&](rel::TupleId author) {
    core::DataGraphBackend backend(d.db, d.links, d.data_graph);
    std::vector<rel::TupleId> out;
    backend.Fetch(d.link_writes, rel::FkDirection::kForward, author, &out);
    return out.size();
  };
  EXPECT_GT(papers_of(0), 4 * papers_of(100) + 4);
}

TEST(DblpGen, CitationsAcyclicByConstruction) {
  Dblp d = BuildDblp(SmallDblpConfig());
  const rel::Relation& cites = d.db.relation(d.cites);
  for (rel::TupleId t = 0; t < cites.num_tuples(); ++t) {
    int64_t citing = cites.IntValue(t, 0);
    int64_t cited = cites.IntValue(t, 1);
    EXPECT_LT(cited, citing);  // only earlier papers are cited
  }
}

TEST(DblpGen, ScoreSettingsProducePositiveScores) {
  Dblp d = BuildDblp(SmallDblpConfig());
  for (const ScoreSetting& s : kScoreSettings) {
    auto result = ApplyDblpScores(&d, s.ga, s.damping);
    EXPECT_GT(result.iterations, 0) << s.name;
    const rel::Relation& papers = d.db.relation(d.paper);
    ASSERT_TRUE(papers.has_importance());
    EXPECT_GT(papers.max_importance(), 0.0) << s.name;
  }
}

TEST(DblpGen, Ga1CitedPapersOutrankUncited) {
  Dblp d = BuildDblp(SmallDblpConfig());
  ApplyDblpScores(&d, 1, 0.85);
  // Paper 0 is the most-cited (Zipf target rank 0); the last paper cannot
  // be cited by anyone (no later papers exist).
  const rel::Relation& papers = d.db.relation(d.paper);
  EXPECT_GT(papers.importance(0),
            papers.importance(papers.num_tuples() - 1));
}

TEST(DblpGen, AuthorOsSizesHaveHeavyTail) {
  Dblp d = BuildDblp(SmallDblpConfig());
  ApplyDblpScores(&d, 1, 0.85);
  gds::Gds gds = DblpAuthorGds(d);
  core::DataGraphBackend backend(d.db, d.links, d.data_graph);
  size_t size0 =
      core::GenerateCompleteOs(d.db, gds, &backend, 0).size();
  size_t size_mid =
      core::GenerateCompleteOs(d.db, gds, &backend, 120).size();
  EXPECT_GT(size0, 100u);
  EXPECT_GT(size0, 5 * size_mid);
}

TEST(TpchGen, SchemaAndCardinalities) {
  Tpch t = BuildTpch(SmallTpchConfig());
  EXPECT_EQ(t.db.num_relations(), 8u);
  EXPECT_EQ(t.db.relation(t.region).num_tuples(), 5u);
  EXPECT_EQ(t.db.relation(t.nation).num_tuples(), 25u);
  EXPECT_EQ(t.db.relation(t.customer).num_tuples(), 120u);
  EXPECT_EQ(t.db.relation(t.partsupp).num_tuples(), 160u * 4);
  EXPECT_GT(t.db.relation(t.orders).num_tuples(), 120u);
  EXPECT_GT(t.db.relation(t.lineitem).num_tuples(),
            t.db.relation(t.orders).num_tuples());
  // No junctions: 8 direct FK links.
  EXPECT_EQ(t.links.num_links(), 8u);
}

TEST(TpchGen, TotalpriceIsSumOfLineitems) {
  Tpch t = BuildTpch(SmallTpchConfig());
  const rel::Relation& orders = t.db.relation(t.orders);
  const rel::Relation& lineitems = t.db.relation(t.lineitem);
  // Check a few orders: totalprice == sum of extendedprice of lineitems.
  rel::ForeignKeyId li_order_fk = 6;  // lineitem_order (7th declared)
  for (rel::TupleId o : {0u, 3u, 10u}) {
    double sum = 0.0;
    for (rel::TupleId li : t.db.Children(li_order_fk, o)) {
      sum += lineitems.NumericValue(li, t.col_li_extendedprice);
    }
    EXPECT_NEAR(orders.NumericValue(o, t.col_order_totalprice), sum, 1e-6);
  }
}

TEST(TpchGen, PartsuppDistinctSuppliersPerPart) {
  Tpch t = BuildTpch(SmallTpchConfig());
  const rel::Relation& ps = t.db.relation(t.partsupp);
  // For part 0, the supplier ids of its partsupps are distinct.
  std::set<int64_t> suppliers;
  for (rel::TupleId p = 0; p < ps.num_tuples(); ++p) {
    if (ps.IntValue(p, 0) != 0) continue;
    EXPECT_TRUE(suppliers.insert(ps.IntValue(p, 1)).second);
  }
  EXPECT_EQ(suppliers.size(), 4u);
}

TEST(TpchGen, ValueRankRewardsValueOverCount) {
  Tpch t = BuildTpch(SmallTpchConfig());
  ApplyTpchScores(&t, 1, 0.85);
  // Rank correlation check in aggregate: the top-importance customer has
  // above-average total order value.
  const rel::Relation& customers = t.db.relation(t.customer);
  const rel::Relation& orders = t.db.relation(t.orders);
  std::vector<double> value_of(customers.num_tuples(), 0.0);
  for (rel::TupleId o = 0; o < orders.num_tuples(); ++o) {
    value_of[static_cast<size_t>(orders.IntValue(o, 0))] +=
        orders.NumericValue(o, t.col_order_totalprice);
  }
  rel::TupleId best = 0;
  for (rel::TupleId c = 1; c < customers.num_tuples(); ++c) {
    if (customers.importance(c) > customers.importance(best)) best = c;
  }
  double mean_value = 0.0;
  for (double v : value_of) mean_value += v;
  mean_value /= static_cast<double>(value_of.size());
  EXPECT_GT(value_of[best], mean_value);
}

TEST(TpchGen, CustomerGdsMatchesPaperEnumeration) {
  Tpch t = BuildTpch(SmallTpchConfig());
  gds::Gds gds = TpchCustomerGds(t, 0.7);
  // Section 2.1: Customer G_DS(0.7) = {Customer, Nation, Region, Order,
  // Lineitem, Partsupp}.
  EXPECT_EQ(gds.size(), 6u);
  std::set<std::string> labels;
  for (size_t i = 0; i < gds.size(); ++i) {
    labels.insert(gds.node(static_cast<gds::GdsNodeId>(i)).label);
  }
  EXPECT_EQ(labels, (std::set<std::string>{"Customer", "Nation", "Region",
                                           "Order", "Lineitem",
                                           "Partsupp"}));
  // With a lower theta, Parts and the Supplier replicas appear too.
  gds::Gds loose = TpchCustomerGds(t, 0.5);
  EXPECT_GT(loose.size(), gds.size());
}

TEST(TpchGen, SupplierOsLargerThanCustomerOs) {
  Tpch t = BuildTpch(SmallTpchConfig());
  ApplyTpchScores(&t, 1, 0.85);
  core::DataGraphBackend backend(t.db, t.links, t.data_graph);
  gds::Gds cgds = TpchCustomerGds(t);
  gds::Gds sgds = TpchSupplierGds(t);
  size_t csum = 0, ssum = 0;
  for (rel::TupleId i = 0; i < 5; ++i) {
    csum += core::GenerateCompleteOs(t.db, cgds, &backend, i).size();
    ssum += core::GenerateCompleteOs(t.db, sgds, &backend, i).size();
  }
  // Figure 9: Aver|OS| Customer ~176 vs Supplier ~1341.
  EXPECT_GT(ssum, 2 * csum);
}

TEST(TpchGen, DeterministicForSameSeed) {
  Tpch a = BuildTpch(SmallTpchConfig());
  Tpch b = BuildTpch(SmallTpchConfig());
  EXPECT_EQ(a.db.relation(a.lineitem).num_tuples(),
            b.db.relation(b.lineitem).num_tuples());
  EXPECT_DOUBLE_EQ(
      a.db.relation(a.orders).NumericValue(0, a.col_order_totalprice),
      b.db.relation(b.orders).NumericValue(0, b.col_order_totalprice));
}

TEST(Settings, FourSettingsExposed) {
  EXPECT_EQ(kScoreSettings.size(), 4u);
  EXPECT_STREQ(kDefaultSetting.name, "GA1-d1");
  EXPECT_DOUBLE_EQ(kDefaultSetting.damping, 0.85);
}

}  // namespace
}  // namespace osum::datasets
