// Unit tests for the embedded relational engine.
#include <gtest/gtest.h>

#include "relational/database.h"

namespace osum::rel {
namespace {

Database MakeAuthorPaperDb() {
  // Author (2 tuples) 1:M Paper (4 tuples).
  Database db;
  Schema author_schema({{"name", ValueType::kString, true}});
  Schema paper_schema({{"title", ValueType::kString, true},
                       {"author_id", ValueType::kInt, false}});
  RelationId author = db.AddRelation("Author", author_schema);
  RelationId paper = db.AddRelation("Paper", paper_schema);
  db.AddForeignKey("paper_author", paper, 1, author);

  db.relation(author).Append({Value{std::string("Ann")}});
  db.relation(author).Append({Value{std::string("Bob")}});
  db.relation(paper).Append({Value{std::string("P0")}, Value{int64_t{0}}});
  db.relation(paper).Append({Value{std::string("P1")}, Value{int64_t{0}}});
  db.relation(paper).Append({Value{std::string("P2")}, Value{int64_t{1}}});
  db.relation(paper).Append({Value{std::string("P3")}, Value{int64_t{0}}});
  db.BuildIndexes();
  return db;
}

TEST(Value, TypeAndToString) {
  EXPECT_EQ(TypeOf(Value{}), ValueType::kNull);
  EXPECT_EQ(TypeOf(Value{int64_t{3}}), ValueType::kInt);
  EXPECT_EQ(TypeOf(Value{2.5}), ValueType::kDouble);
  EXPECT_EQ(TypeOf(Value{std::string("x")}), ValueType::kString);
  EXPECT_EQ(ToString(Value{}), "NULL");
  EXPECT_EQ(ToString(Value{int64_t{42}}), "42");
  EXPECT_EQ(ToString(Value{std::string("SIGCOMM")}), "SIGCOMM");
}

TEST(Value, AsNumeric) {
  EXPECT_DOUBLE_EQ(AsNumeric(Value{int64_t{3}}), 3.0);
  EXPECT_DOUBLE_EQ(AsNumeric(Value{2.5}), 2.5);
  EXPECT_DOUBLE_EQ(AsNumeric(Value{std::string("x")}), 0.0);
  EXPECT_DOUBLE_EQ(AsNumeric(Value{}), 0.0);
}

TEST(Schema, LookupAndOrder) {
  Schema s({{"a", ValueType::kInt, true}, {"b", ValueType::kString, false}});
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.GetColumn("b"), 1u);
  EXPECT_FALSE(s.FindColumn("missing").has_value());
  EXPECT_FALSE(s.column(1).display);
}

TEST(Relation, AppendAndAccess) {
  Relation r(0, "T", Schema({{"x", ValueType::kInt, true},
                             {"y", ValueType::kDouble, true}}),
             false);
  TupleId t0 = r.Append({Value{int64_t{1}}, Value{0.5}});
  TupleId t1 = r.Append({Value{int64_t{2}}, Value{1.5}});
  EXPECT_EQ(r.num_tuples(), 2u);
  EXPECT_EQ(r.IntValue(t0, 0), 1);
  EXPECT_DOUBLE_EQ(r.NumericValue(t1, 1), 1.5);
}

TEST(Relation, SetValueOverwrites) {
  Relation r(0, "T", Schema({{"x", ValueType::kDouble, true}}), false);
  TupleId t = r.Append({Value{0.0}});
  r.SetValue(t, 0, Value{7.5});
  EXPECT_DOUBLE_EQ(r.NumericValue(t, 0), 7.5);
}

TEST(Relation, ImportanceAnnotation) {
  Relation r(0, "T", Schema({{"x", ValueType::kInt, true}}), false);
  r.Append({Value{int64_t{0}}});
  r.Append({Value{int64_t{1}}});
  EXPECT_FALSE(r.has_importance());
  EXPECT_DOUBLE_EQ(r.importance(0), 0.0);
  r.SetImportance({1.5, 4.5});
  EXPECT_TRUE(r.has_importance());
  EXPECT_DOUBLE_EQ(r.importance(1), 4.5);
  EXPECT_DOUBLE_EQ(r.max_importance(), 4.5);
}

TEST(Relation, RenderSkipsHiddenColumns) {
  Relation r(0, "Paper", Schema({{"title", ValueType::kString, true},
                                 {"fk", ValueType::kInt, false}}),
             false);
  TupleId t = r.Append({Value{std::string("A Title")}, Value{int64_t{9}}});
  EXPECT_EQ(r.RenderTuple(t), "Paper: A Title");
}

TEST(Database, ForwardJoin) {
  Database db = MakeAuthorPaperDb();
  auto kids = db.Children(0, 0);
  EXPECT_EQ(kids.size(), 3u);  // P0, P1, P3
  auto kids1 = db.Children(0, 1);
  ASSERT_EQ(kids1.size(), 1u);
  EXPECT_EQ(kids1[0], 2u);
}

TEST(Database, BackwardJoin) {
  Database db = MakeAuthorPaperDb();
  auto parent = db.Parent(0, 2);
  ASSERT_TRUE(parent.has_value());
  EXPECT_EQ(*parent, 1u);
}

TEST(Database, NullFkHasNoParent) {
  Database db;
  RelationId a = db.AddRelation("A", Schema({{"x", ValueType::kInt, true}}));
  RelationId b = db.AddRelation(
      "B", Schema({{"a_id", ValueType::kInt, false}}));
  db.AddForeignKey("b_a", b, 0, a);
  db.relation(a).Append({Value{int64_t{0}}});
  db.relation(b).Append({Value{}});  // NULL reference
  db.BuildIndexes();
  EXPECT_FALSE(db.Parent(0, 0).has_value());
  EXPECT_TRUE(db.Children(0, 0).empty());
}

TEST(Database, TopImportanceAccessPath) {
  Database db = MakeAuthorPaperDb();
  db.relation(0).SetImportance({1.0, 1.0});
  db.relation(1).SetImportance({5.0, 9.0, 3.0, 7.0});
  db.SortIndexesByImportance();
  // Author 0's papers by importance: P1 (9), P3 (7), P0 (5).
  auto top2 = db.ChildrenTopImportance(0, 0, 2, 0.0);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], 1u);
  EXPECT_EQ(top2[1], 3u);
  // Threshold cuts the tail even when limit allows more.
  auto above6 = db.ChildrenTopImportance(0, 0, 10, 6.0);
  EXPECT_EQ(above6.size(), 2u);
  // Threshold above everything -> empty, but still counted as a SELECT.
  uint64_t before = db.io_stats().select_calls;
  auto none = db.ChildrenTopImportance(0, 0, 10, 100.0);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(db.io_stats().select_calls, before + 1);
}

TEST(Database, IoStatsCounting) {
  Database db = MakeAuthorPaperDb();
  db.io_stats().Reset();
  db.Children(0, 0);
  db.Parent(0, 0);
  EXPECT_EQ(db.io_stats().select_calls, 2u);
  EXPECT_EQ(db.io_stats().tuples_read, 4u);  // 3 children + 1 parent
}

TEST(Database, FkStats) {
  Database db = MakeAuthorPaperDb();
  FkStats stats = db.GetFkStats(0);
  EXPECT_EQ(stats.child_count, 4u);
  EXPECT_EQ(stats.max_fanout, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_fanout, 2.0);  // 4 papers over 2 authors
}

TEST(Database, GetRelationByName) {
  Database db = MakeAuthorPaperDb();
  EXPECT_EQ(db.GetRelationId("Paper"), 1u);
  EXPECT_EQ(db.GetRelation("Author").num_tuples(), 2u);
}

TEST(Database, TotalTuples) {
  Database db = MakeAuthorPaperDb();
  EXPECT_EQ(db.TotalTuples(), 6u);
}

}  // namespace
}  // namespace osum::rel
