// End-to-end parameterized sweep: every (score setting x algorithm x l)
// combination on a shared DBLP instance must produce valid, optimal-bounded
// size-l OSs through the public search API. Guards the whole pipeline
// against configuration-dependent regressions.
#include <cctype>

#include <gtest/gtest.h>

#include "core/os_backend.h"
#include "datasets/dblp.h"
#include "datasets/settings.h"
#include "search/engine.h"

namespace osum {
namespace {

struct SweepCase {
  int setting_index;  // into datasets::kScoreSettings
  core::SizeLAlgorithm algorithm;
  size_t l;
};

// Shared, lazily-built DBLP instances per setting (building per test-case
// would dominate runtime).
class PipelineSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  struct Instance {
    datasets::Dblp d;
    std::unique_ptr<core::DataGraphBackend> backend;
    std::unique_ptr<search::SizeLSearchEngine> engine;
  };

  static Instance* GetInstance(int setting_index) {
    static std::array<std::unique_ptr<Instance>, 4> cache;
    auto& slot = cache[setting_index];
    if (!slot) {
      slot = std::make_unique<Instance>();
      datasets::DblpConfig config;
      config.num_authors = 150;
      config.num_papers = 500;
      config.num_conferences = 8;
      slot->d = datasets::BuildDblp(config);
      const datasets::ScoreSetting& s =
          datasets::kScoreSettings[setting_index];
      datasets::ApplyDblpScores(&slot->d, s.ga, s.damping);
      slot->backend = std::make_unique<core::DataGraphBackend>(
          slot->d.db, slot->d.links, slot->d.data_graph);
      slot->engine = std::make_unique<search::SizeLSearchEngine>(
          slot->d.db, slot->backend.get());
      slot->engine->RegisterSubject(slot->d.author,
                                    datasets::DblpAuthorGds(slot->d));
      slot->engine->RegisterSubject(slot->d.paper,
                                    datasets::DblpPaperGds(slot->d));
      slot->engine->BuildIndex();
    }
    return slot.get();
  }
};

TEST_P(PipelineSweepTest, QueryYieldsValidNearOptimalSelections) {
  const SweepCase c = GetParam();
  Instance* inst = GetInstance(c.setting_index);

  search::QueryOptions options;
  options.l = c.l;
  options.algorithm = c.algorithm;
  auto results = inst->engine->Query("faloutsos", options);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    ASSERT_TRUE(core::IsValidSelection(r.os, r.selection, c.l));
    // Sandwich: greedy <= optimal on the same (prelim) OS, and positive.
    core::Selection opt = core::SizeLDp(r.os, c.l);
    EXPECT_LE(r.selection.importance, opt.importance + 1e-9);
    EXPECT_GT(r.selection.importance, 0.0);
    // Greedy quality never catastrophically bad on this data.
    EXPECT_GT(r.selection.importance, 0.5 * opt.importance);
  }
}

std::vector<SweepCase> MakeCases() {
  std::vector<SweepCase> cases;
  for (int s = 0; s < 4; ++s) {
    for (auto algo :
         {core::SizeLAlgorithm::kDp, core::SizeLAlgorithm::kBottomUp,
          core::SizeLAlgorithm::kTopPath,
          core::SizeLAlgorithm::kTopPathMemo}) {
      for (size_t l : {5u, 15u, 30u}) {
        cases.push_back(SweepCase{s, algo, l});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, PipelineSweepTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name = datasets::kScoreSettings[info.param.setting_index]
                             .name;
      name += "_";
      name += core::AlgorithmName(info.param.algorithm);
      name += "_l" + std::to_string(info.param.l);
      // gtest parameterized names must be alphanumeric/underscore only.
      std::string sanitized;
      for (char ch : name) {
        sanitized += std::isalnum(static_cast<unsigned char>(ch))
                         ? ch
                         : '_';
      }
      return sanitized;
    });

}  // namespace
}  // namespace osum
