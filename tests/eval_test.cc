// Tests for the evaluation harness: simulated evaluators, effectiveness
// metric and the static-snippet baseline.
#include <gtest/gtest.h>

#include "core/os_backend.h"
#include "core/os_generator.h"
#include "datasets/dblp.h"
#include "db_fixtures.h"
#include "eval/evaluator.h"
#include "eval/snippet.h"
#include "tree_fixtures.h"

namespace osum::eval {
namespace {

using datasets::DblpAuthorGds;
using osum::testing::MakeTree;
using osum::testing::ScoredDblp;
using osum::testing::SmallDblpConfig;

struct EvalFixture {
  ScoredDblp scored;
  gds::Gds gds;
  core::OsTree os;  // Christos's complete OS under GA1-d1

  EvalFixture() : scored(SmallDblpConfig()) {
    gds = DblpAuthorGds(scored.d);
    os = core::GenerateCompleteOs(scored.d.db, gds, &scored.backend, 0);
  }
};

TEST(Evaluator, Deterministic) {
  EvalFixture f;
  EvaluatorPanel panel(DblpEvaluatorConfig(3));
  std::vector<double> ref = NodeScores(f.os);
  auto a = panel.IdealSizeL(f.os, f.gds, ref, 0, 10);
  auto b = panel.IdealSizeL(f.os, f.gds, ref, 0, 10);
  EXPECT_EQ(a.nodes, b.nodes);
}

TEST(Evaluator, DifferentEvaluatorsDisagreeSomewhat) {
  EvalFixture f;
  EvaluatorPanel panel(DblpEvaluatorConfig(4));
  std::vector<double> ref = NodeScores(f.os);
  auto a = panel.IdealSizeL(f.os, f.gds, ref, 0, 15);
  auto b = panel.IdealSizeL(f.os, f.gds, ref, 1, 15);
  EXPECT_NE(a.nodes, b.nodes);  // noise differs per evaluator
  // But they broadly agree: the reference signal dominates.
  EXPECT_GE(OverlapCount(a, b), 5u);
}

TEST(Evaluator, IdealSelectionIsValidAndKeepsRoot) {
  EvalFixture f;
  EvaluatorPanel panel(DblpEvaluatorConfig(2));
  std::vector<double> ref = NodeScores(f.os);
  for (size_t l : {5u, 20u}) {
    auto sel = panel.IdealSizeL(f.os, f.gds, ref, 1, l);
    EXPECT_TRUE(core::IsValidSelection(f.os, sel, l));
  }
}

TEST(Evaluator, PaperBiasShowsInSelections) {
  EvalFixture f;
  EvaluatorPanel panel(DblpEvaluatorConfig(6));
  std::vector<double> ref = NodeScores(f.os);
  size_t paper_picks = 0, conference_picks = 0;
  for (size_t e = 0; e < panel.size(); ++e) {
    auto sel = panel.IdealSizeL(f.os, f.gds, ref, e, 10);
    for (core::OsNodeId id : sel.nodes) {
      const std::string& label = f.gds.node(f.os.node(id).gds_node).label;
      paper_picks += label == "Paper";
      conference_picks += label == "Conference";
    }
  }
  // Section 6.1: papers first, conferences only in larger summaries.
  EXPECT_GT(paper_picks, conference_picks);
}

TEST(Effectiveness, BoundsAndIdentity) {
  EvalFixture f;
  core::Selection sel = core::SizeLDp(f.os, 10);
  EXPECT_DOUBLE_EQ(Effectiveness(sel, sel, 10), 1.0);
  core::Selection empty;
  EXPECT_DOUBLE_EQ(Effectiveness(sel, empty, 10), 0.0);
}

TEST(Effectiveness, OverlapCountsSharedNodes) {
  core::Selection a, b;
  a.nodes = {0, 1, 2, 5};
  b.nodes = {0, 2, 6, 9};
  EXPECT_EQ(OverlapCount(a, b), 2u);
  EXPECT_DOUBLE_EQ(Effectiveness(a, b, 4), 0.5);
}

TEST(ReweightOsTest, PreservesShapeChangesWeights) {
  core::OsTree os = MakeTree({{-1, 1}, {0, 2}, {0, 3}});
  core::OsTree r = ReweightOs(os, {10, 20, 30});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r.node(1).local_importance, 20);
  EXPECT_EQ(r.node(1).parent, 0);
  EXPECT_EQ(r.node(2).parent, 0);
}

TEST(Snippet, FirstThreeTuplesPlusRoot) {
  core::OsTree os =
      MakeTree({{-1, 5}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 6}});
  core::Selection s = StaticSnippet(os, 3);
  EXPECT_EQ(s.nodes, (std::vector<core::OsNodeId>{0, 1, 2, 3}));
}

TEST(Snippet, ShuffledOrderStillRootFirst) {
  core::OsTree os =
      MakeTree({{-1, 5}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 6}});
  core::Selection s = StaticSnippet(os, 3, /*shuffle_seed=*/77);
  EXPECT_EQ(s.nodes.size(), 4u);
  EXPECT_EQ(s.nodes[0], core::kOsRoot);
}

TEST(Snippet, SmallOsReturnsEverything) {
  core::OsTree os = MakeTree({{-1, 5}, {0, 1}});
  core::Selection s = StaticSnippet(os, 3);
  EXPECT_EQ(s.nodes.size(), 2u);
}

TEST(Snippet, SnippetMissesEvaluatorPicks) {
  // The Section 6.1 comparative result: a static 3-tuple snippet finds
  // approximately zero of the evaluators' size-5 tuples on large OSs.
  EvalFixture f;
  EvaluatorPanel panel(DblpEvaluatorConfig(4));
  std::vector<double> ref = NodeScores(f.os);
  double total_overlap = 0;
  for (size_t e = 0; e < panel.size(); ++e) {
    auto ideal = panel.IdealSizeL(f.os, f.gds, ref, e, 5);
    auto snip = StaticSnippet(f.os, 3, /*shuffle_seed=*/e + 1);
    // Exclude the root (both always contain it; the paper counts tuples).
    total_overlap += static_cast<double>(OverlapCount(ideal, snip)) - 1.0;
  }
  EXPECT_LE(total_overlap / static_cast<double>(panel.size()), 1.0);
}

}  // namespace
}  // namespace osum::eval
