// Unit tests for link-type derivation (junction collapsing) and the data
// graph.
#include <gtest/gtest.h>

#include "graph/data_graph.h"
#include "graph/link_types.h"

namespace osum::graph {
namespace {

using rel::Database;
using rel::FkDirection;
using rel::Schema;
using rel::Value;
using rel::ValueType;

// DBLP-in-miniature: Author, Paper, Year + Writes (M:N junction) and Cites
// (self M:N junction).
struct MiniDblp {
  Database db;
  rel::RelationId author, paper, year, writes, cites;
};

MiniDblp MakeMiniDblp() {
  MiniDblp m;
  m.author = m.db.AddRelation("Author",
                              Schema({{"name", ValueType::kString, true}}));
  m.paper = m.db.AddRelation("Paper",
                             Schema({{"title", ValueType::kString, true},
                                     {"year_id", ValueType::kInt, false}}));
  m.year =
      m.db.AddRelation("Year", Schema({{"year", ValueType::kInt, true}}));
  m.writes = m.db.AddRelation("Writes",
                              Schema({{"author_id", ValueType::kInt, false},
                                      {"paper_id", ValueType::kInt, false}}),
                              /*is_junction=*/true);
  m.cites = m.db.AddRelation("Cites",
                             Schema({{"citing", ValueType::kInt, false},
                                     {"cited", ValueType::kInt, false}}),
                             /*is_junction=*/true);
  m.db.AddForeignKey("paper_year", m.paper, 1, m.year);
  m.db.AddForeignKey("writes_author", m.writes, 0, m.author);
  m.db.AddForeignKey("writes_paper", m.writes, 1, m.paper);
  m.db.AddForeignKey("cites_citing", m.cites, 0, m.paper);
  m.db.AddForeignKey("cites_cited", m.cites, 1, m.paper);

  // Authors: a0, a1. Years: y0. Papers: p0 (a0, a1), p1 (a0). p1 cites p0.
  m.db.relation(m.author).Append({Value{std::string("a0")}});
  m.db.relation(m.author).Append({Value{std::string("a1")}});
  m.db.relation(m.year).Append({Value{int64_t{1999}}});
  m.db.relation(m.paper).Append(
      {Value{std::string("p0")}, Value{int64_t{0}}});
  m.db.relation(m.paper).Append(
      {Value{std::string("p1")}, Value{int64_t{0}}});
  m.db.relation(m.writes).Append({Value{int64_t{0}}, Value{int64_t{0}}});
  m.db.relation(m.writes).Append({Value{int64_t{1}}, Value{int64_t{0}}});
  m.db.relation(m.writes).Append({Value{int64_t{0}}, Value{int64_t{1}}});
  m.db.relation(m.cites).Append({Value{int64_t{1}}, Value{int64_t{0}}});
  m.db.BuildIndexes();
  return m;
}

TEST(LinkSchema, CollapsesJunctions) {
  MiniDblp m = MakeMiniDblp();
  LinkSchema links = LinkSchema::Build(m.db);
  // Writes, Cites (junctions) + paper_year (direct) = 3 links.
  EXPECT_EQ(links.num_links(), 3u);
  const LinkType& writes = links.link(links.GetLink("Writes"));
  EXPECT_TRUE(writes.via_junction);
  EXPECT_EQ(writes.a, m.author);
  EXPECT_EQ(writes.b, m.paper);
  const LinkType& py = links.link(links.GetLink("paper_year"));
  EXPECT_FALSE(py.via_junction);
  EXPECT_EQ(py.a, m.year);   // parent side
  EXPECT_EQ(py.b, m.paper);  // child side
}

TEST(LinkSchema, SelfJunctionLink) {
  MiniDblp m = MakeMiniDblp();
  LinkSchema links = LinkSchema::Build(m.db);
  const LinkType& cites = links.link(links.GetLink("Cites"));
  EXPECT_TRUE(cites.via_junction);
  EXPECT_EQ(cites.a, m.paper);
  EXPECT_EQ(cites.b, m.paper);
  EXPECT_EQ(RoleName(cites, FkDirection::kForward), "Cites");
  EXPECT_EQ(RoleName(cites, FkDirection::kBackward), "Cites_by");
}

TEST(LinkSchema, LinksOfRelation) {
  MiniDblp m = MakeMiniDblp();
  LinkSchema links = LinkSchema::Build(m.db);
  // Paper touches Writes, Cites, paper_year.
  EXPECT_EQ(links.LinksOf(m.paper).size(), 3u);
  EXPECT_EQ(links.LinksOf(m.author).size(), 1u);
}

TEST(DataGraph, NodeNumberingSkipsJunctions) {
  MiniDblp m = MakeMiniDblp();
  LinkSchema links = LinkSchema::Build(m.db);
  DataGraph g = DataGraph::Build(m.db, links);
  // 2 authors + 2 papers + 1 year = 5 entity nodes (junction tuples are
  // edges, not nodes).
  EXPECT_EQ(g.num_nodes(), 5u);
  NodeId a0 = g.node(m.author, 0);
  EXPECT_EQ(g.RelationOf(a0), m.author);
  EXPECT_EQ(g.TupleOf(a0), 0u);
}

TEST(DataGraph, JunctionNeighbors) {
  MiniDblp m = MakeMiniDblp();
  LinkSchema links = LinkSchema::Build(m.db);
  DataGraph g = DataGraph::Build(m.db, links);
  LinkTypeId writes = links.GetLink("Writes");
  // a0 wrote p0 and p1.
  auto papers = g.Neighbors(g.node(m.author, 0), writes,
                            FkDirection::kForward);
  EXPECT_EQ(papers.size(), 2u);
  // p0 written by a0 and a1.
  auto authors = g.Neighbors(g.node(m.paper, 0), writes,
                             FkDirection::kBackward);
  EXPECT_EQ(authors.size(), 2u);
}

TEST(DataGraph, SelfLinkDirections) {
  MiniDblp m = MakeMiniDblp();
  LinkSchema links = LinkSchema::Build(m.db);
  DataGraph g = DataGraph::Build(m.db, links);
  LinkTypeId cites = links.GetLink("Cites");
  // p1 cites p0: forward from p1 reaches p0.
  auto cited = g.Neighbors(g.node(m.paper, 1), cites, FkDirection::kForward);
  ASSERT_EQ(cited.size(), 1u);
  EXPECT_EQ(g.TupleOf(cited[0]), 0u);
  // p0 is cited by p1.
  auto citing = g.Neighbors(g.node(m.paper, 0), cites,
                            FkDirection::kBackward);
  ASSERT_EQ(citing.size(), 1u);
  EXPECT_EQ(g.TupleOf(citing[0]), 1u);
  // And the reverse queries are empty.
  EXPECT_TRUE(g.Neighbors(g.node(m.paper, 0), cites, FkDirection::kForward)
                  .empty());
}

TEST(DataGraph, DirectLinkBothDirections) {
  MiniDblp m = MakeMiniDblp();
  LinkSchema links = LinkSchema::Build(m.db);
  DataGraph g = DataGraph::Build(m.db, links);
  LinkTypeId py = links.GetLink("paper_year");
  // Year y0 -> both papers (forward).
  EXPECT_EQ(g.Neighbors(g.node(m.year, 0), py, FkDirection::kForward).size(),
            2u);
  // Paper p0 -> its year (backward).
  auto y = g.Neighbors(g.node(m.paper, 0), py, FkDirection::kBackward);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_EQ(g.RelationOf(y[0]), m.year);
}

TEST(DataGraph, WrongSourceRelationYieldsEmpty) {
  MiniDblp m = MakeMiniDblp();
  LinkSchema links = LinkSchema::Build(m.db);
  DataGraph g = DataGraph::Build(m.db, links);
  LinkTypeId py = links.GetLink("paper_year");
  // Forward from a Paper node (papers are the b side) is empty.
  EXPECT_TRUE(g.Neighbors(g.node(m.paper, 0), py, FkDirection::kForward)
                  .empty());
}

TEST(DataGraph, EdgeCountAndMemory) {
  MiniDblp m = MakeMiniDblp();
  LinkSchema links = LinkSchema::Build(m.db);
  DataGraph g = DataGraph::Build(m.db, links);
  // 3 writes + 1 cites + 2 paper_year = 6 logical edges.
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_GT(g.ApproxMemoryBytes(), 0u);
}

TEST(DataGraph, SortNeighborsByImportance) {
  MiniDblp m = MakeMiniDblp();
  LinkSchema links = LinkSchema::Build(m.db);
  DataGraph g = DataGraph::Build(m.db, links);
  m.db.relation(m.author).SetImportance({1.0, 2.0});
  m.db.relation(m.paper).SetImportance({1.0, 5.0});
  m.db.relation(m.year).SetImportance({1.0});
  g.SortNeighborsByImportance(m.db);
  EXPECT_TRUE(g.neighbors_sorted());
  // a0's papers now come p1 (5.0) before p0 (1.0).
  auto papers = g.Neighbors(g.node(m.author, 0), links.GetLink("Writes"),
                            FkDirection::kForward);
  ASSERT_EQ(papers.size(), 2u);
  EXPECT_EQ(g.TupleOf(papers[0]), 1u);
  EXPECT_EQ(g.TupleOf(papers[1]), 0u);
}

}  // namespace
}  // namespace osum::graph
