// Model-checked property harness for serve::ResultCache.
//
// A straight-line, single-threaded reference model reimplements the
// cache's documented semantics — LRU recency and eviction, entry/byte
// budgets, epoch-prefixed keys, TTL + negative-TTL lazy/sweep expiry, and
// the doorkeeper admission filter — in ~100 lines of obviously-correct
// code. Seeded random op sequences (get / insert / clock-advance / sweep /
// clear / bump-epoch) then run against BOTH implementations and every
// observable must match exactly after every step: hit/miss outcomes,
// returned values, admission decisions, expiry attribution, eviction
// counts, and occupancy. LRU order is verified observationally: under
// tight budgets any order divergence changes a later eviction victim and
// therefore a later hit/miss outcome.
//
// Time comes from a FakeClock, so every TTL/window behavior is exercised
// deterministically with zero sleeps; the whole harness is single-
// threaded and deterministic per (config, seed). It carries the `serve`
// label, so the TSan CI lane runs it too (trivially clean — it exists to
// prove the policy logic, while serve_cache_test's stress suites prove
// the locking).
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/clock.h"
#include "serve/result_cache.h"
#include "util/rng.h"

namespace osum::serve {
namespace {

/// What the model predicts for one cache interaction.
struct ModelOutcome {
  bool hit = false;       // served from the committed table
  size_t approx = 0;      // value observable: CachedResult::approx_bytes
  bool negative = false;  // value observable: results.empty()
};

/// The reference model: one shard, no locks, no futures — just the
/// documented policy semantics, written linearly.
class ModelCache {
 public:
  ModelCache(size_t max_entries, size_t max_bytes,
             const CachePolicyOptions& policy, size_t max_tracked)
      : max_entries_(max_entries),
        max_bytes_(max_bytes),
        policy_(policy),
        max_tracked_(max_tracked) {}

  void set_now(uint64_t now_micros) { now_ = now_micros; }

  std::optional<ModelOutcome> Lookup(const std::string& key) {
    auto it = Find(InternalKey(key));
    if (it == lru_.end()) return std::nullopt;
    if (EraseIfExpired(it)) return std::nullopt;
    lru_.splice(lru_.begin(), lru_, it);
    ++hits;
    if (it->negative) ++negative_hits;
    return ModelOutcome{true, it->approx, it->negative};
  }

  ModelOutcome GetOrCompute(const std::string& key, size_t approx,
                            bool negative) {
    std::string ikey = InternalKey(key);
    auto it = Find(ikey);
    if (it != lru_.end() && !EraseIfExpired(it)) {
      lru_.splice(lru_.begin(), lru_, it);
      ++hits;
      if (it->negative) ++negative_hits;
      return ModelOutcome{true, it->approx, it->negative};
    }
    ++misses;
    if (!AdmitOrRecordSighting(ikey)) {
      ++admission_rejects;
    } else {
      uint64_t ttl =
          negative ? policy_.negative_ttl_micros : policy_.ttl_micros;
      lru_.push_front(Entry{ikey, approx, approx + ikey.size(),
                            ttl == 0 ? 0 : now_ + ttl, negative});
      bytes_ += lru_.front().bytes;
      while (lru_.size() > 1 &&
             (lru_.size() > max_entries_ || bytes_ > max_bytes_)) {
        bytes_ -= lru_.back().bytes;
        lru_.pop_back();
        ++evictions;
      }
    }
    return ModelOutcome{false, approx, negative};
  }

  size_t SweepExpired() {
    size_t swept = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
      auto next = std::next(it);
      if (EraseIfExpired(it)) ++swept;
      it = next;
    }
    while (policy_.admission_window_micros != 0 && !sightings_.empty() &&
           now_ >= sightings_.back().seen + policy_.admission_window_micros) {
      sightings_.pop_back();
    }
    return swept;
  }

  void Clear() {
    lru_.clear();
    bytes_ = 0;
  }

  void BumpEpoch() {
    ++epoch;
    Clear();
  }

  // Observables compared against CacheMetrics after every op.
  uint64_t hits = 0, negative_hits = 0, misses = 0, evictions = 0;
  uint64_t ttl_expiries = 0, negative_ttl_expiries = 0;
  uint64_t admission_rejects = 0;
  uint64_t epoch = 0;
  size_t entries() const { return lru_.size(); }
  size_t bytes() const { return bytes_; }
  size_t tracked_sightings() const { return sightings_.size(); }

 private:
  struct Entry {
    std::string ikey;
    size_t approx = 0;
    size_t bytes = 0;
    uint64_t deadline = 0;
    bool negative = false;
  };
  struct Sighting {
    std::string ikey;
    uint64_t seen = 0;
  };

  std::string InternalKey(const std::string& key) const {
    std::string ikey = std::to_string(epoch);
    ikey += '\x1d';
    ikey += key;
    return ikey;
  }

  std::list<Entry>::iterator Find(const std::string& ikey) {
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->ikey == ikey) return it;
    }
    return lru_.end();
  }

  bool EraseIfExpired(std::list<Entry>::iterator it) {
    if (it->deadline == 0 || now_ < it->deadline) return false;
    (it->negative ? negative_ttl_expiries : ttl_expiries)++;
    // Expiry re-seeds the doorkeeper (the cache does the same): the
    // erased key's first recompute is re-admitted.
    if (policy_.admission_enabled) RecordSighting(it->ikey);
    bytes_ -= it->bytes;
    lru_.erase(it);
    return true;
  }

  void RecordSighting(const std::string& ikey) {
    for (auto it = sightings_.begin(); it != sightings_.end(); ++it) {
      if (it->ikey != ikey) continue;
      it->seen = now_;
      sightings_.splice(sightings_.begin(), sightings_, it);
      return;
    }
    sightings_.push_front(Sighting{ikey, now_});
    if (sightings_.size() > max_tracked_) sightings_.pop_back();
  }

  bool AdmitOrRecordSighting(const std::string& ikey) {
    if (!policy_.admission_enabled) return true;
    for (auto it = sightings_.begin(); it != sightings_.end(); ++it) {
      if (it->ikey != ikey) continue;
      if (policy_.admission_window_micros == 0 ||  // 0 = never ages
          now_ < it->seen + policy_.admission_window_micros) {
        sightings_.erase(it);
        return true;
      }
      break;  // aged out: fall through to record/refresh + reject
    }
    RecordSighting(ikey);
    return false;
  }

  const size_t max_entries_;
  const size_t max_bytes_;
  const CachePolicyOptions policy_;
  const size_t max_tracked_;
  uint64_t now_ = 0;
  std::list<Entry> lru_;
  std::list<Sighting> sightings_;
  size_t bytes_ = 0;
};

/// A payload whose two observables (approx_bytes, negative) the harness
/// can predict. Positive payloads carry one default-constructed result so
/// CachedResult::negative() is false.
CachedResult Payload(size_t approx, bool negative) {
  CachedResult r;
  if (!negative) r.results.emplace_back();
  r.approx_bytes = approx;
  return r;
}

struct HarnessConfig {
  const char* name;
  size_t max_entries;
  size_t max_bytes;
  CachePolicyOptions policy;
};

/// Runs `ops` random operations for one (config, seed) pair, checking
/// every observable after every operation.
void RunSequence(const HarnessConfig& config, uint64_t seed, int ops) {
  SCOPED_TRACE(std::string(config.name) + " seed=" + std::to_string(seed));
  auto clock = std::make_shared<FakeClock>();
  ResultCacheOptions options;
  options.num_shards = 1;  // global LRU: the model is single-sharded
  options.max_entries = config.max_entries;
  options.max_bytes = config.max_bytes;
  options.policy = config.policy;
  options.clock = clock;
  ResultCache cache(options);

  size_t max_tracked = config.policy.admission_max_tracked != 0
                           ? config.policy.admission_max_tracked
                           : std::max<size_t>(8 * config.max_entries, 64);
  ModelCache model(config.max_entries, config.max_bytes, config.policy,
                   max_tracked);
  model.set_now(clock->NowMicros());

  util::Rng rng(seed);
  // Key universe small enough to collide constantly; mixed lengths so the
  // byte budget charges differ per key.
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) {
    std::string key = "q";  // GCC 12 -Wrestrict dislikes `"" + str`
    key += std::to_string(i);
    keys.push_back(std::move(key));
  }
  keys.push_back("a-deliberately-longer-canonical-key");
  keys.push_back("x");
  // Clock deltas straddle every policy boundary: within TTL, at TTL, past
  // the window, and tiny nudges.
  const uint64_t deltas[] = {1,   50,  100, 250,  251, 400,
                             500, 501, 999, 1000, 1001, 5000};

  auto check_counters = [&](const char* when) {
    CacheMetrics m = cache.metrics();
    ASSERT_EQ(m.hits, model.hits) << when;
    ASSERT_EQ(m.negative_hits, model.negative_hits) << when;
    ASSERT_EQ(m.misses, model.misses) << when;
    ASSERT_EQ(m.evictions, model.evictions) << when;
    ASSERT_EQ(m.ttl_expiries, model.ttl_expiries) << when;
    ASSERT_EQ(m.negative_ttl_expiries, model.negative_ttl_expiries) << when;
    ASSERT_EQ(m.admission_rejects, model.admission_rejects) << when;
    ASSERT_EQ(m.entries, model.entries()) << when;
    ASSERT_EQ(m.approx_bytes, model.bytes()) << when;
    ASSERT_EQ(m.tracked_sightings, model.tracked_sightings()) << when;
    ASSERT_EQ(m.epoch, model.epoch) << when;
    // Single-threaded: the concurrency-only counters must stay zero.
    ASSERT_EQ(m.coalesced_waits, 0u) << when;
    ASSERT_EQ(m.discarded_inserts, 0u) << when;
  };

  for (int op = 0; op < ops; ++op) {
    std::string op_trace = "op ";  // GCC 12 -Wrestrict dislikes `"" + str`
    op_trace += std::to_string(op);
    SCOPED_TRACE(op_trace);
    uint64_t dice = rng.NextU64(100);
    if (dice < 45) {
      // GetOrCompute with a fresh payload; the model predicts whether the
      // compute runs and which value comes back.
      const std::string& key = keys[rng.NextU64(keys.size())];
      size_t approx = 25 + 25 * rng.NextU64(12);
      bool negative = rng.NextU64(4) == 0;
      ModelOutcome expected = model.GetOrCompute(key, approx, negative);
      bool computed = false;
      ResultPtr got = cache.GetOrCompute(key, [&] {
        computed = true;
        return Payload(approx, negative);
      });
      ASSERT_NE(got, nullptr);
      ASSERT_EQ(computed, !expected.hit) << "admission/expiry divergence";
      ASSERT_EQ(got->approx_bytes, expected.approx);
      ASSERT_EQ(got->negative(), expected.negative);
    } else if (dice < 70) {
      const std::string& key = keys[rng.NextU64(keys.size())];
      std::optional<ModelOutcome> expected = model.Lookup(key);
      ResultPtr got = cache.Lookup(key);
      ASSERT_EQ(got != nullptr, expected.has_value());
      if (expected.has_value()) {
        ASSERT_EQ(got->approx_bytes, expected->approx);
        ASSERT_EQ(got->negative(), expected->negative);
      }
    } else if (dice < 85) {
      clock->AdvanceMicros(deltas[rng.NextU64(std::size(deltas))]);
      model.set_now(clock->NowMicros());
    } else if (dice < 91) {
      ASSERT_EQ(cache.SweepExpired(), model.SweepExpired());
    } else if (dice < 96) {
      cache.Clear();
      model.Clear();
    } else {
      cache.BumpEpoch();
      model.BumpEpoch();
    }
    ASSERT_NO_FATAL_FAILURE(check_counters("after op"));
  }

  // Closing pass: probing every key in a fixed order is order-sensitive
  // (each hit re-sorts the LRU), so any residual order divergence the
  // random walk missed surfaces here.
  for (const std::string& key : keys) {
    std::optional<ModelOutcome> expected = model.Lookup(key);
    ResultPtr got = cache.Lookup(key);
    ASSERT_EQ(got != nullptr, expected.has_value()) << key;
  }
  ASSERT_NO_FATAL_FAILURE(check_counters("final"));
}

/// TTLs chosen so the clock deltas above cross them often: positive 1000,
/// negative 250, admission window 500.
CachePolicyOptions FullPolicy() {
  CachePolicyOptions p;
  p.ttl_micros = 1000;
  p.negative_ttl_micros = 250;
  p.admission_enabled = true;
  p.admission_window_micros = 500;
  return p;
}

TEST(ResultCachePropertyHarness, LegacyPolicyMatchesModel) {
  // No TTLs, no admission: the seed-era contract (LRU + budgets + epochs)
  // must be bit-compatible with the model.
  HarnessConfig config{"legacy", 6, 1500, CachePolicyOptions{}};
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunSequence(config, seed, 1200);
  }
}

TEST(ResultCachePropertyHarness, TtlOnlyMatchesModel) {
  CachePolicyOptions p;
  p.ttl_micros = 1000;
  p.negative_ttl_micros = 250;
  HarnessConfig config{"ttl-only", 8, 1u << 20, p};
  for (uint64_t seed = 11; seed <= 18; ++seed) {
    RunSequence(config, seed, 1200);
  }
}

TEST(ResultCachePropertyHarness, AdmissionOnlyMatchesModel) {
  CachePolicyOptions p;
  p.admission_enabled = true;
  p.admission_window_micros = 500;
  p.admission_max_tracked = 4;  // tiny: the sighting-cap path runs hot
  HarnessConfig config{"admission-only", 8, 1u << 20, p};
  for (uint64_t seed = 21; seed <= 28; ++seed) {
    RunSequence(config, seed, 1200);
  }
}

TEST(ResultCachePropertyHarness, FullPolicyTightBudgetsMatchesModel) {
  // Everything on at once, with budgets tight enough that eviction,
  // expiry and admission interact on nearly every insert.
  HarnessConfig config{"full-tight", 4, 700, FullPolicy()};
  for (uint64_t seed = 31; seed <= 42; ++seed) {
    RunSequence(config, seed, 1500);
  }
}

TEST(ResultCachePropertyHarness, FullPolicyRoomyBudgetsMatchesModel) {
  HarnessConfig config{"full-roomy", 64, 1u << 20, FullPolicy()};
  for (uint64_t seed = 51; seed <= 58; ++seed) {
    RunSequence(config, seed, 1200);
  }
}

TEST(ResultCachePropertyHarness, ZeroWindowAdmissionMatchesModel) {
  // window 0 = sightings never age out (bounded by the cap alone); with
  // TTLs on so the expiry re-seed path also runs against this setting.
  CachePolicyOptions p;
  p.ttl_micros = 1000;
  p.negative_ttl_micros = 250;
  p.admission_enabled = true;
  p.admission_window_micros = 0;
  p.admission_max_tracked = 4;
  HarnessConfig config{"zero-window", 6, 1500, p};
  for (uint64_t seed = 61; seed <= 68; ++seed) {
    RunSequence(config, seed, 1200);
  }
}

}  // namespace
}  // namespace osum::serve
