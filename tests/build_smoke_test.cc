// One include + one call per layer library. This suite exists so that a
// layering regression (a lib dropping out of the build, an include graph
// cycle, a link-order break) fails a named test instead of only a link step.
#include <gtest/gtest.h>

#include "core/size_l.h"
#include "datasets/dblp.h"
#include "eval/snippet.h"
#include "gds/gds.h"
#include "graph/link_types.h"
#include "importance/object_rank.h"
#include "relational/database.h"
#include "db_fixtures.h"
#include "search/inverted_index.h"
#include "tree_fixtures.h"
#include "util/string_util.h"

namespace osum {
namespace {

// Layer: datasets (osum_datasets) — also supplies the db for layers below.
datasets::Dblp& SmokeDblp() {
  static datasets::Dblp d =
      datasets::BuildDblp(osum::testing::SmallDblpConfig());
  return d;
}

TEST(BuildSmoke, UtilLayer) { EXPECT_EQ(util::ToLower("Size-L OS"), "size-l os"); }

TEST(BuildSmoke, RelationalLayer) {
  EXPECT_EQ(SmokeDblp().db.num_relations(), 6u);
}

TEST(BuildSmoke, GraphLayer) {
  graph::LinkSchema links = graph::LinkSchema::Build(SmokeDblp().db);
  EXPECT_GT(links.num_links(), 0u);
}

TEST(BuildSmoke, GdsLayer) {
  gds::Gds gds = datasets::DblpAuthorGds(SmokeDblp());
  EXPECT_EQ(gds.root_relation(), SmokeDblp().author);
  EXPECT_GE(gds.MaxDepth(), 1);
}

TEST(BuildSmoke, ImportanceLayer) {
  datasets::Dblp& d = SmokeDblp();
  importance::AuthorityGraph ga(d.links.num_links());
  importance::ObjectRankResult r =
      importance::ComputeObjectRank(d.db, d.links, d.data_graph, ga);
  EXPECT_GT(r.scores.size(), 0u);
}

TEST(BuildSmoke, CoreLayer) {
  core::OsTree os = osum::testing::MakeTree({{-1, 3}, {0, 2}, {0, 1}});
  core::Selection s = core::SizeLDp(os, 2);
  EXPECT_EQ(s.nodes.size(), 2u);
}

TEST(BuildSmoke, SearchLayer) {
  datasets::Dblp& d = SmokeDblp();
  search::InvertedIndex index =
      search::InvertedIndex::Build(d.db, {d.author, d.paper});
  EXPECT_GT(index.num_terms(), 0u);
}

TEST(BuildSmoke, EvalLayer) {
  core::OsTree os =
      osum::testing::MakeTree({{-1, 3}, {0, 2}, {0, 1}, {1, 5}});
  core::Selection snippet = eval::StaticSnippet(os, 2);
  EXPECT_LE(snippet.nodes.size(), 3u);
}

TEST(BuildSmoke, DatasetsLayer) {
  EXPECT_GT(SmokeDblp().db.relation(SmokeDblp().paper).num_tuples(), 0u);
}

}  // namespace
}  // namespace osum
