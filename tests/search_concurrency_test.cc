// Concurrency guarantees of the search layer: QueryBatch over a shared
// immutable SearchContext must be byte-identical to serial Query execution
// on both join back ends, and hammering one context from many threads must
// expose zero mutable shared state (run under TSan via
// `OSUM_SANITIZE=thread`, see scripts/ci.sh).
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/os_backend.h"
#include "db_fixtures.h"
#include "api/codec.h"
#include "search/search_context.h"
#include "util/thread_pool.h"

namespace osum::search {
namespace {

using osum::testing::ScoredDblp;
using osum::testing::ScoredTpch;
using osum::api::DeterministicResultText;
using osum::testing::SmallDblpConfig;
using osum::testing::SmallTpchConfig;

/// A deterministic DBLP keyword mix: prolific-author surnames (big OSs,
/// multiple hits per query) + title terms + a no-hit probe.
std::vector<std::string> DblpMix(const datasets::Dblp& d) {
  std::vector<std::string> mix;
  for (rel::TupleId t = 0; t < 12; ++t) {
    std::string name = d.db.relation(d.author).StringValue(t, 0);
    mix.push_back(name.substr(name.rfind(' ') + 1));
  }
  mix.insert(mix.end(), {"faloutsos", "christos faloutsos", "databases",
                         "mining", "power law", "nosuchkeywordanywhere"});
  return mix;
}

SearchContext BuildDblpContext(const datasets::Dblp& d,
                               core::OsBackend* backend) {
  std::vector<SearchContext::Subject> subjects;
  subjects.push_back({d.author, datasets::DblpAuthorGds(d)});
  subjects.push_back({d.paper, datasets::DblpPaperGds(d)});
  return SearchContext::Build(d.db, backend, std::move(subjects));
}

void ExpectBatchMatchesSerial(const SearchContext& ctx,
                              const std::vector<std::string>& mix,
                              const QueryOptions& options) {
  std::vector<std::string> serial;
  serial.reserve(mix.size());
  for (const std::string& q : mix) {
    serial.push_back(DeterministicResultText(ctx.Query(q, options)));
  }

  for (size_t threads : {2u, 4u, 8u}) {
    auto batch = ctx.QueryBatch(mix, options, threads);
    ASSERT_EQ(batch.size(), mix.size()) << threads << " threads";
    for (size_t i = 0; i < mix.size(); ++i) {
      EXPECT_EQ(DeterministicResultText(batch[i]), serial[i])
          << "query \"" << mix[i] << "\" diverged at " << threads
          << " threads";
    }
  }
}

TEST(QueryBatchEquivalence, DataGraphBackendDblp) {
  ScoredDblp f(SmallDblpConfig());
  SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryOptions options;
  options.l = 12;
  options.max_results = 4;
  ExpectBatchMatchesSerial(ctx, DblpMix(f.d), options);
}

TEST(QueryBatchEquivalence, DatabaseBackendDblp) {
  ScoredDblp f(SmallDblpConfig());
  // Latency 0: the simulated round-trip only burns wall clock and must not
  // affect results.
  core::DatabaseBackend backend(f.d.db, f.d.links, /*per_select_micros=*/0.0);
  SearchContext ctx = BuildDblpContext(f.d, &backend);
  QueryOptions options;
  options.l = 10;
  options.max_results = 3;
  options.algorithm = core::SizeLAlgorithm::kDp;
  ExpectBatchMatchesSerial(ctx, DblpMix(f.d), options);
}

TEST(QueryBatchEquivalence, BothBackendsAgreeOnTpch) {
  ScoredTpch f(SmallTpchConfig());
  core::DatabaseBackend sql(f.t.db, f.t.links, /*per_select_micros=*/0.0);
  std::vector<SearchContext::Subject> subjects;
  subjects.push_back({f.t.customer, datasets::TpchCustomerGds(f.t)});
  subjects.push_back({f.t.supplier, datasets::TpchSupplierGds(f.t)});
  std::vector<SearchContext::Subject> subjects2 = subjects;
  SearchContext graph_ctx =
      SearchContext::Build(f.t.db, &f.backend, std::move(subjects));
  SearchContext sql_ctx =
      SearchContext::Build(f.t.db, &sql, std::move(subjects2));

  std::vector<std::string> mix;
  for (rel::TupleId c = 0; c < 8; ++c) {
    mix.push_back(f.t.db.relation(f.t.customer).StringValue(c, 0));
  }
  mix.push_back(f.t.db.relation(f.t.supplier).StringValue(0, 0));

  QueryOptions options;
  options.l = 8;
  options.max_results = 2;
  ExpectBatchMatchesSerial(graph_ctx, mix, options);
  ExpectBatchMatchesSerial(sql_ctx, mix, options);
  // The back ends themselves must agree tuple-for-tuple (importance-sorted
  // access paths make OS generation backend-independent).
  auto a = graph_ctx.QueryBatch(mix, options, size_t{4});
  auto b = sql_ctx.QueryBatch(mix, options, size_t{4});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(DeterministicResultText(a[i]), DeterministicResultText(b[i]))
        << "query " << mix[i];
  }
}

TEST(QueryBatchEquivalence, DegenerateBatches) {
  ScoredDblp f(SmallDblpConfig());
  SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  EXPECT_TRUE(ctx.QueryBatch({}, {}, size_t{4}).empty());
  std::vector<std::string> one{"faloutsos"};
  // More threads than queries clamps to the batch size.
  auto batch = ctx.QueryBatch(one, {}, size_t{16});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(DeterministicResultText(batch[0]),
            DeterministicResultText(ctx.Query("faloutsos")));
}

TEST(QueryBatchEquivalence, SummaryRankingMatchesSerial) {
  ScoredDblp f(SmallDblpConfig());
  SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryOptions options;
  options.l = 8;
  options.max_results = 5;
  options.ranking = ResultRanking::kSummaryImportance;
  ExpectBatchMatchesSerial(ctx, DblpMix(f.d), options);
}

// The TSan canary: many threads hammer ONE shared context through the
// DatabaseBackend (whose access paths also bump the shared
// rel::Database::io_stats counters) while each thread re-verifies its
// results against a precomputed golden. Any non-atomic mutable state on the
// query path is a data race here; ~8 threads on the same structures give
// TSan dense interleavings. Labeled slow: runtime is ~seconds under TSan.
TEST(SearchConcurrencyStress, SharedContextSharedBackend) {
  ScoredDblp f(SmallDblpConfig());
  core::DatabaseBackend backend(f.d.db, f.d.links, /*per_select_micros=*/0.0);
  SearchContext ctx = BuildDblpContext(f.d, &backend);
  const std::vector<std::string> mix = DblpMix(f.d);
  QueryOptions options;
  options.l = 10;
  options.max_results = 3;

  std::vector<std::string> golden;
  golden.reserve(mix.size());
  for (const std::string& q : mix) {
    golden.push_back(DeterministicResultText(ctx.Query(q, options)));
  }

  constexpr size_t kThreads = 8;
  constexpr int kRounds = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      // Stagger starting offsets so threads collide on different queries.
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < mix.size(); ++i) {
          size_t q = (i + w) % mix.size();
          if (DeterministicResultText(ctx.Query(mix[q], options)) !=
              golden[q]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Accounting survived the stampede: counters aggregated every SELECT.
  EXPECT_GT(backend.stats().select_calls, 0u);
  EXPECT_GT(f.d.db.io_stats().Snapshot().select_calls, 0u);
}

// Same canary through the pool path: overlapping QueryBatch calls on one
// context (the pool is stressed too — many small batches churn the queue).
TEST(SearchConcurrencyStress, ConcurrentBatchesOnOneContext) {
  ScoredDblp f(SmallDblpConfig());
  SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  const std::vector<std::string> mix = DblpMix(f.d);
  QueryOptions options;
  options.l = 8;
  options.max_results = 2;

  std::vector<std::string> golden;
  golden.reserve(mix.size());
  for (const std::string& q : mix) {
    golden.push_back(DeterministicResultText(ctx.Query(q, options)));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> drivers;
  for (size_t w = 0; w < 4; ++w) {
    drivers.emplace_back([&] {
      util::ThreadPool pool(3);
      for (int round = 0; round < 2; ++round) {
        auto batch = ctx.QueryBatch(mix, options, pool);
        for (size_t i = 0; i < mix.size(); ++i) {
          if (DeterministicResultText(batch[i]) != golden[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace osum::search
