// Unit tests for osum::util — RNG determinism, distributions, summaries,
// string helpers, the table printer, the thread-pool primitives and the
// annotated mutex/condvar wrappers behind the lint lane.
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/mutex.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace osum::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextU64(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, BoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextU64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, LogNormalPositive) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.NextLogNormal(0.0, 0.5), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(21);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // The forked stream should not mirror the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == child.NextU64();
  EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(Zipf, RankZeroMostFrequent) {
  Rng rng(41);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
}

TEST(Zipf, InRange) {
  Rng rng(43);
  ZipfSampler zipf(10, 0.7);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(zipf.Sample(&rng), 10u);
}

TEST(Zipf, SkewFollowsExponent) {
  Rng rng(47);
  ZipfSampler flat(50, 0.1), steep(50, 1.5);
  int flat_top = 0, steep_top = 0;
  for (int i = 0; i < 20000; ++i) {
    flat_top += flat.Sample(&rng) == 0;
    steep_top += steep.Sample(&rng) == 0;
  }
  EXPECT_GT(steep_top, flat_top * 3);
}

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double v : {4.0, 1.0, 3.0, 2.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
  EXPECT_DOUBLE_EQ(s.Median(), 2.5);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 4.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Median(), 0.0);
}

TEST(IoStats, DiffAndReset) {
  IoStats a{10, 100, 20};
  IoStats b{4, 40, 5};
  IoStats d = a - b;
  EXPECT_EQ(d.select_calls, 6u);
  EXPECT_EQ(d.tuples_read, 60u);
  EXPECT_EQ(d.index_probes, 15u);
  a.Reset();
  EXPECT_EQ(a.select_calls, 0u);
}

TEST(AtomicIoStats, CountSnapshotReset) {
  AtomicIoStats s;
  s.CountSelect(/*tuples=*/5, /*probes=*/1);
  s.CountSelect(/*tuples=*/0, /*probes=*/1);
  IoStats snap = s.Snapshot();
  EXPECT_EQ(snap.select_calls, 2u);
  EXPECT_EQ(snap.tuples_read, 5u);
  EXPECT_EQ(snap.index_probes, 2u);
  s.Reset();
  EXPECT_EQ(s.Snapshot().select_calls, 0u);
}

TEST(AtomicIoStats, ConcurrentCountsDontDropIncrements) {
  AtomicIoStats s;
  constexpr int kThreads = 4, kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&s] {
      for (int i = 0; i < kPerThread; ++i) s.CountSelect(2, 1);
    });
  }
  for (std::thread& t : threads) t.join();
  IoStats snap = s.Snapshot();
  EXPECT_EQ(snap.select_calls, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(snap.tuples_read, uint64_t{kThreads} * kPerThread * 2);
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor drains the queue before joining
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, SubmitWithFutureReturnsValuesAndExceptions) {
  ThreadPool pool(2);
  std::future<int> value = pool.SubmitWithFuture([] { return 41 + 1; });
  EXPECT_EQ(value.get(), 42);

  std::future<void> done = pool.SubmitWithFuture([] {});
  done.get();  // completes without value

  // Unlike Submit, futures carry exceptions to the caller.
  std::future<int> boom = pool.SubmitWithFuture(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(boom.get(), std::runtime_error);
}

TEST(ThreadPool, StopDrainsQueuedTasksAndIsIdempotent) {
  std::atomic<int> ran{0};
  ThreadPool pool(2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Stop();  // blocks until the queue drained and the workers joined
  EXPECT_EQ(ran.load(), 20);
  pool.Stop();  // second call is a no-op
  EXPECT_EQ(ran.load(), 20);
}  // destructor after Stop is also a no-op

TEST(ThreadPool, SubmitAfterStopIsRejectedNotDropped) {
  ThreadPool pool(2);
  pool.Stop();
  std::atomic<bool> ran{false};
  // The defined post-stop contract: the task is refused (and destroyed
  // unrun), never silently enqueued behind workers that already exited.
  EXPECT_FALSE(pool.Submit([&ran] { ran.store(true); }));
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPool, SubmitWithFutureAfterStopRunsInline) {
  ThreadPool pool(2);
  pool.Stop();
  // Futures must always resolve — post-stop the task runs on the calling
  // thread, values and exceptions included.
  std::future<int> value = pool.SubmitWithFuture([] { return 7; });
  EXPECT_EQ(value.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(value.get(), 7);
  std::future<int> boom = pool.SubmitWithFuture(
      []() -> int { throw std::runtime_error("inline failure"); });
  EXPECT_THROW(boom.get(), std::runtime_error);
}

TEST(ParallelFor, RunsSeriallyOnStoppedPool) {
  ThreadPool pool(3);
  pool.Stop();
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(&pool, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(&pool, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
  // Degenerate sizes.
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "n=0 must not invoke fn"; });
  std::atomic<int> one{0};
  ParallelFor(&pool, 1, [&one](size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(ToLower("FaLouTsos"), "faloutsos");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtil, TokenizeWords) {
  auto tokens = TokenizeWords("On Power-law Relationships of the Internet");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[0], "on");
  EXPECT_EQ(tokens[1], "power");
  EXPECT_EQ(tokens[2], "law");
  EXPECT_EQ(tokens[6], "internet");
}

TEST(StringUtil, TokenizeEmptyAndPunctuation) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("--- !!! ...").empty());
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtil, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(12.5), "12.5");
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(StartsWith("prelim-l", "prelim"));
  EXPECT_FALSE(StartsWith("os", "osum"));
}


TEST(Mutex, LockUnlockExcludes) {
  Mutex mu;
  mu.Lock();
  // A held (non-reentrant) mutex refuses TryLock from another thread.
  std::thread prober([&] { EXPECT_FALSE(mu.TryLock()); });
  prober.join();
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(Mutex, MutexLockIsScoped) {
  Mutex mu;
  {
    MutexLock lock(mu);
    std::thread prober([&] { EXPECT_FALSE(mu.TryLock()); });
    prober.join();
  }
  // Scope exit released it.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(Mutex, GuardsCrossThreadIncrements) {
  Mutex mu;
  int counter = 0;  // deliberately not atomic: the mutex is the guard
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(CondVar, WaitWithPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVar, WaitUntilTimesOutAndReportsIt) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  // Nothing ever notifies: WaitUntil must return false at the deadline
  // (and reacquire the mutex — the guarded read below proves it compiles
  // under the analysis).
  bool signaled = cv.WaitUntil(
      mu, std::chrono::steady_clock::now() + std::chrono::milliseconds(5));
  EXPECT_FALSE(signaled);
}

TEST(ThreadRole, HandoffBetweenThreads) {
  ThreadRole role;  // bound to this (constructing) thread
  EXPECT_TRUE(role.HeldByCurrentThread());
  std::thread other([&] {
    EXPECT_FALSE(role.HeldByCurrentThread());
    role.BindToCurrentThread();
    EXPECT_TRUE(role.HeldByCurrentThread());
    role.AssertHeld();
  });
  other.join();
  // The join is the synchronization point for taking the role back.
  EXPECT_FALSE(role.HeldByCurrentThread());
  role.BindToCurrentThread();
  role.AssertHeld();
}

// Compile-time misuse smoke for the lint lane. This block is the negative
// test of the thread-safety analysis: flip `#if 0` to `#if 1` and build
// with clang under -DOSUM_LINT=ON (scripts/lint.sh) — every statement
// below must fail to compile with a -Wthread-safety error. It stays
// disabled here because GCC (the default test toolchain) would compile it
// happily: the macros are no-ops there, which is exactly why the lint
// lane exists.
#if 0
TEST(Mutex, CompileTimeMisuseSmoke) {
  struct Guarded {
    Mutex mu;
    int value GUARDED_BY(mu) = 0;
  } g;
  g.value = 1;        // error: writing GUARDED_BY field without the lock
  g.mu.Lock();        // error at scope end: mutex still held
}
#endif

TEST(TablePrinter, AlignedOutput) {
  TablePrinter t({"l", "value"});
  t.AddRow({"5", "0.9"});
  t.AddRow("10", {0.75});
  std::ostringstream os;
  t.Print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("| l "), std::string::npos);
  EXPECT_NE(s.find("0.75"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace osum::util
