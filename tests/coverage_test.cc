// Cross-cutting coverage: ablation toggles, backend accounting, automatic
// G_DS on TPC-H, rendering, role names, evaluator configs, and assorted
// edge cases not owned by a single module test.
#include <gtest/gtest.h>

#include "core/os_backend.h"
#include "core/os_generator.h"
#include "core/size_l.h"
#include "datasets/dblp.h"
#include "datasets/tpch.h"
#include "db_fixtures.h"
#include "eval/evaluator.h"
#include "gds/affinity.h"
#include "search/engine.h"
#include "util/timer.h"

namespace osum {
namespace {

using osum::testing::ScoredDblp;
using osum::testing::ScoredTpch;
using osum::testing::SmallDblpConfig;
using osum::testing::SmallTpchConfig;

// ------------------------------------------------ avoidance-condition toggles

TEST(PrelimToggles, DisablingConditionsNeverShrinksTheTree) {
  ScoredDblp f(SmallDblpConfig());
  datasets::Dblp& d = f.d;
  gds::Gds gds = datasets::DblpAuthorGds(d);
  core::DataGraphBackend& backend = f.backend;
  core::OsGenOptions both, no_ac1, no_ac2, none;
  no_ac1.prelim_use_ac1 = false;
  no_ac2.prelim_use_ac2 = false;
  none.prelim_use_ac1 = none.prelim_use_ac2 = false;
  for (rel::TupleId tds : {0u, 4u}) {
    size_t s_both =
        core::GeneratePrelimOs(d.db, gds, &backend, tds, 10, both).size();
    size_t s_no1 =
        core::GeneratePrelimOs(d.db, gds, &backend, tds, 10, no_ac1).size();
    size_t s_no2 =
        core::GeneratePrelimOs(d.db, gds, &backend, tds, 10, no_ac2).size();
    size_t s_none =
        core::GeneratePrelimOs(d.db, gds, &backend, tds, 10, none).size();
    size_t s_complete =
        core::GenerateCompleteOs(d.db, gds, &backend, tds).size();
    EXPECT_LE(s_both, s_no2);
    EXPECT_LE(s_both, s_no1);
    EXPECT_EQ(s_none, s_complete);  // no conditions = Algorithm 5
    EXPECT_LE(s_no1, s_complete);
    EXPECT_LE(s_no2, s_complete);
  }
}

TEST(PrelimToggles, AllVariantsContainTopL) {
  ScoredDblp f(SmallDblpConfig());
  datasets::Dblp& d = f.d;
  gds::Gds gds = datasets::DblpAuthorGds(d);
  core::DataGraphBackend& backend = f.backend;
  const size_t l = 8;
  core::OsTree complete = core::GenerateCompleteOs(d.db, gds, &backend, 0);
  std::vector<double> top;
  for (const core::OsNode& n : complete.nodes()) {
    top.push_back(n.local_importance);
  }
  std::sort(top.begin(), top.end(), std::greater<>());
  top.resize(std::min(top.size(), l));

  for (bool ac1 : {true, false}) {
    for (bool ac2 : {true, false}) {
      core::OsGenOptions options;
      options.prelim_use_ac1 = ac1;
      options.prelim_use_ac2 = ac2;
      core::OsTree prelim =
          core::GeneratePrelimOs(d.db, gds, &backend, 0, l, options);
      std::vector<double> got;
      for (const core::OsNode& n : prelim.nodes()) {
        got.push_back(n.local_importance);
      }
      std::sort(got.begin(), got.end(), std::greater<>());
      ASSERT_GE(got.size(), top.size());
      for (size_t i = 0; i < top.size(); ++i) {
        EXPECT_GE(got[i], top[i] - 1e-9) << "ac1=" << ac1 << " ac2=" << ac2;
      }
    }
  }
}

// ---------------------------------------------------- backend accounting

TEST(BackendAccounting, DatabaseBackendLatencyIsSimulated) {
  ScoredDblp f(SmallDblpConfig());
  datasets::Dblp& d = f.d;
  gds::Gds gds = datasets::DblpAuthorGds(d);
  core::DatabaseBackend slow(d.db, d.links, /*per_select_micros=*/200.0);
  core::DatabaseBackend fast(d.db, d.links, /*per_select_micros=*/0.0);
  util::WallTimer timer;
  core::GenerateCompleteOs(d.db, gds, &slow, 5);
  double slow_ms = timer.ElapsedMillis();
  timer.Reset();
  core::GenerateCompleteOs(d.db, gds, &fast, 5);
  double fast_ms = timer.ElapsedMillis();
  EXPECT_GT(slow_ms, fast_ms * 3);
}

TEST(BackendAccounting, StatsResetWorks) {
  ScoredDblp f(SmallDblpConfig());
  datasets::Dblp& d = f.d;
  gds::Gds gds = datasets::DblpAuthorGds(d);
  core::DataGraphBackend& backend = f.backend;
  core::GenerateCompleteOs(d.db, gds, &backend, 0);
  EXPECT_GT(backend.stats().select_calls, 0u);
  backend.ResetStats();
  EXPECT_EQ(backend.stats().select_calls, 0u);
}

TEST(BackendAccounting, FetchTopCountsEmptyResults) {
  ScoredDblp f(SmallDblpConfig());
  datasets::Dblp& d = f.d;
  core::DataGraphBackend& backend = f.backend;
  std::vector<rel::TupleId> out;
  backend.ResetStats();
  // Threshold above any importance: empty result, still one SELECT
  // (the Section 5.3 caveat).
  backend.FetchTop(d.link_writes, rel::FkDirection::kForward, 0, 10, 1e18,
                   &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(backend.stats().select_calls, 1u);
}

// ----------------------------------------------------- automatic G_DS, TPC-H

TEST(AutoGdsTpch, CustomerTreealizationFindsCoreRelations) {
  ScoredTpch f(SmallTpchConfig());
  datasets::Tpch& t = f.t;
  gds::GdsAutoOptions options;
  options.theta = 0.55;
  options.max_depth = 4;
  gds::Gds gds =
      gds::BuildGdsAuto(t.db, t.links, t.customer, "Customer", options);
  std::set<std::string> relations;
  for (size_t i = 0; i < gds.size(); ++i) {
    relations.insert(
        t.db.relation(gds.node(static_cast<gds::GdsNodeId>(i)).relation)
            .name());
  }
  // The Figure 12 backbone must be discovered automatically.
  EXPECT_TRUE(relations.count("Customer"));
  EXPECT_TRUE(relations.count("Nation"));
  EXPECT_TRUE(relations.count("Order"));
  EXPECT_TRUE(relations.count("Lineitem"));
}

TEST(AutoGdsTpch, GeneratesUsableOss) {
  ScoredTpch f(SmallTpchConfig());
  datasets::Tpch& t = f.t;
  gds::GdsAutoOptions options;
  options.theta = 0.6;
  gds::Gds gds =
      gds::BuildGdsAuto(t.db, t.links, t.customer, "Customer", options);
  gds.AnnotateStatistics(t.db);
  core::OsTree os = core::GenerateCompleteOs(t.db, gds, &f.backend, 3);
  EXPECT_GT(os.size(), 3u);
  core::Selection s = core::SizeLDp(os, 5);
  EXPECT_TRUE(core::IsValidSelection(os, s, 5));
}

// ----------------------------------------------------------- rendering

TEST(Rendering, SelectionRenderListsOnlySelected) {
  ScoredDblp f(SmallDblpConfig());
  datasets::Dblp& d = f.d;
  gds::Gds gds = datasets::DblpAuthorGds(d);
  core::DataGraphBackend& backend = f.backend;
  core::OsTree os = core::GenerateCompleteOs(d.db, gds, &backend, 0);
  core::Selection sel = core::SizeLDp(os, 6);
  std::string text = os.Render(d.db, gds, &sel.nodes);
  EXPECT_EQ(static_cast<size_t>(std::count(text.begin(), text.end(), '\n')),
            6u);
  std::string full = os.Render(d.db, gds);
  EXPECT_EQ(static_cast<size_t>(std::count(full.begin(), full.end(), '\n')),
            os.size());
}

TEST(Rendering, DepthShownAsDots) {
  ScoredDblp f(SmallDblpConfig());
  datasets::Dblp& d = f.d;
  gds::Gds gds = datasets::DblpAuthorGds(d);
  core::DataGraphBackend& backend = f.backend;
  core::OsTree os = core::GenerateCompleteOs(d.db, gds, &backend, 3);
  std::string text = os.Render(d.db, gds);
  EXPECT_EQ(text.rfind("Author:", 0), 0u);          // root: no dots
  EXPECT_NE(text.find("\n..Paper:"), std::string::npos);  // depth 1
}

// ------------------------------------------------------------- role names

TEST(RoleNames, DirectSelfFkDisambiguates) {
  rel::Database db;
  rel::Schema schema({{"name", rel::ValueType::kString, true},
                      {"boss", rel::ValueType::kInt, false}});
  rel::RelationId employee = db.AddRelation("Employee", schema);
  db.AddForeignKey("manages", employee, 1, employee);
  db.relation(employee).Append({rel::Value{std::string("ceo")},
                                rel::Value{}});
  db.relation(employee).Append({rel::Value{std::string("dev")},
                                rel::Value{int64_t{0}}});
  db.BuildIndexes();
  graph::LinkSchema links = graph::LinkSchema::Build(db);
  const graph::LinkType& lt = links.link(links.GetLink("manages"));
  EXPECT_EQ(graph::RoleName(lt, rel::FkDirection::kForward),
            "manages_children");
  EXPECT_EQ(graph::RoleName(lt, rel::FkDirection::kBackward),
            "manages_parent");
  // And the data graph handles the self edge.
  graph::DataGraph g = graph::DataGraph::Build(db, links);
  auto reports = g.Neighbors(g.node(employee, 0), lt.id,
                             rel::FkDirection::kForward);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(g.TupleOf(reports[0]), 1u);
}

// ------------------------------------------------------ evaluator configs

TEST(EvaluatorConfigs, TpchPanelDeterministicAndDistinct) {
  ScoredTpch f(SmallTpchConfig());
  datasets::Tpch& t = f.t;
  gds::Gds gds = datasets::TpchCustomerGds(t);
  core::DataGraphBackend& backend = f.backend;
  // Largest OS among the first customers: the panel needs enough nodes for
  // distinct size-10 picks regardless of the fixture's cardinalities.
  core::OsTree os;
  for (rel::TupleId c = 0; c < 20; ++c) {
    core::OsTree candidate = core::GenerateCompleteOs(t.db, gds, &backend, c);
    if (candidate.size() > os.size()) os = std::move(candidate);
  }
  ASSERT_GT(os.size(), 20u);
  eval::EvaluatorPanel panel(eval::TpchEvaluatorConfig(4));
  std::vector<double> ref = eval::NodeScores(os);
  auto a0 = panel.IdealSizeL(os, gds, ref, 0, 10);
  auto a0_again = panel.IdealSizeL(os, gds, ref, 0, 10);
  auto a1 = panel.IdealSizeL(os, gds, ref, 1, 10);
  EXPECT_EQ(a0.nodes, a0_again.nodes);
  EXPECT_TRUE(core::IsValidSelection(os, a1, 10));
}

// --------------------------------------------------------------- misc core

TEST(MiscCore, StarTreeSelectsTopChildren) {
  // Root with 50 children of increasing weight: size-l must take the
  // heaviest l-1 children.
  core::OsTree os;
  os.AddRoot(0, 0, 0, 1.0);
  for (int i = 1; i <= 50; ++i) {
    os.AddChild(core::kOsRoot, 0, 0, static_cast<rel::TupleId>(i),
                static_cast<double>(i));
  }
  for (auto algo : {core::SizeLAlgorithm::kDp, core::SizeLAlgorithm::kBottomUp,
                    core::SizeLAlgorithm::kTopPath}) {
    core::Selection s = core::RunSizeL(algo, os, 6);
    EXPECT_DOUBLE_EQ(s.importance, 1.0 + 50 + 49 + 48 + 47 + 46)
        << core::AlgorithmName(algo);
  }
}

TEST(MiscCore, EqualWeightsAreDeterministic) {
  core::OsTree os;
  os.AddRoot(0, 0, 0, 5.0);
  for (int i = 1; i <= 10; ++i) {
    os.AddChild(core::kOsRoot, 0, 0, static_cast<rel::TupleId>(i), 5.0);
  }
  core::Selection a = core::SizeLBottomUp(os, 4);
  core::Selection b = core::SizeLBottomUp(os, 4);
  EXPECT_EQ(a.nodes, b.nodes);
  core::Selection c = core::SizeLTopPath(os, 4);
  core::Selection d = core::SizeLTopPathMemo(os, 4);
  EXPECT_EQ(c.nodes, d.nodes);
}

TEST(MiscCore, SearchEngineOnTpch) {
  ScoredTpch f(SmallTpchConfig());
  datasets::Tpch& t = f.t;
  search::SizeLSearchEngine engine(t.db, &f.backend);
  engine.RegisterSubject(t.customer, datasets::TpchCustomerGds(t));
  engine.RegisterSubject(t.supplier, datasets::TpchSupplierGds(t));
  engine.BuildIndex();
  auto results = engine.Query("customer#42");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].subject.relation, t.customer);
  EXPECT_EQ(results[0].subject.tuple, 42u);
}

}  // namespace
}  // namespace osum
