// Exact serialization of search results, shared by the concurrency and
// serving-layer suites: two result lists serialize identically iff they
// are byte-identical (every field of every node/selection, doubles in
// hexfloat), so EXPECT_EQ on these strings is the headline equivalence
// invariant for both QueryBatch-vs-serial and cache-hit-vs-recompute.
#ifndef OSUM_TESTS_RESULT_SERIALIZER_H_
#define OSUM_TESTS_RESULT_SERIALIZER_H_

#include <sstream>
#include <string>
#include <vector>

#include "search/search_context.h"

namespace osum::testing {

inline std::string Serialize(
    const std::vector<search::QueryResult>& results) {
  std::ostringstream out;
  out << std::hexfloat;
  for (const search::QueryResult& r : results) {
    out << "subject " << r.subject.relation << ':' << r.subject.tuple << '@'
        << r.subject_importance << '\n';
    out << "os";
    for (size_t i = 0; i < r.os.size(); ++i) {
      const core::OsNode& n = r.os.node(static_cast<core::OsNodeId>(i));
      out << ' ' << n.parent << '/' << n.gds_node << '/' << n.relation << '/'
          << n.tuple << '/' << n.depth << '/' << n.local_importance;
    }
    out << "\nselection " << r.selection.importance;
    for (core::OsNodeId id : r.selection.nodes) out << ' ' << id;
    out << '\n';
  }
  return out.str();
}

}  // namespace osum::testing

#endif  // OSUM_TESTS_RESULT_SERIALIZER_H_
