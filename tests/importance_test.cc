// Tests for ObjectRank / ValueRank: authority flow semantics, damping
// behaviour, value-aware splitting and the value-biased base vector.
#include <gtest/gtest.h>

#include "graph/data_graph.h"
#include "importance/object_rank.h"

namespace osum::importance {
namespace {

using rel::Database;
using rel::FkDirection;
using rel::Schema;
using rel::Value;
using rel::ValueType;

// A citation chain: p2 -> p1 -> p0 (p0 is the most cited).
struct CiteDb {
  Database db;
  rel::RelationId paper, cites;
  graph::LinkSchema links;
  graph::DataGraph graph;
  graph::LinkTypeId link_cites;
};

CiteDb MakeCiteDb() {
  CiteDb c;
  c.paper = c.db.AddRelation("Paper",
                             Schema({{"title", ValueType::kString, true}}));
  c.cites = c.db.AddRelation("Cites",
                             Schema({{"citing", ValueType::kInt, false},
                                     {"cited", ValueType::kInt, false}}),
                             /*is_junction=*/true);
  c.db.AddForeignKey("cites_citing", c.cites, 0, c.paper);
  c.db.AddForeignKey("cites_cited", c.cites, 1, c.paper);
  for (int i = 0; i < 3; ++i) {
    c.db.relation(c.paper).Append({Value{"p" + std::to_string(i)}});
  }
  c.db.relation(c.cites).Append({Value{int64_t{2}}, Value{int64_t{1}}});
  c.db.relation(c.cites).Append({Value{int64_t{1}}, Value{int64_t{0}}});
  c.db.BuildIndexes();
  c.links = graph::LinkSchema::Build(c.db);
  c.link_cites = c.links.GetLink("Cites");
  c.graph = graph::DataGraph::Build(c.db, c.links);
  return c;
}

TEST(ObjectRank, CitedPapersGainAuthority) {
  CiteDb c = MakeCiteDb();
  AuthorityGraph ga(c.links.num_links());
  ga.SetRate(c.link_cites, FkDirection::kForward, {0.7, std::nullopt});
  ga.SetRate(c.link_cites, FkDirection::kBackward, {0.0, std::nullopt});
  auto result = ComputeObjectRank(c.db, c.links, c.graph, ga);
  double s0 = result.scores[c.graph.node(c.paper, 0)];
  double s1 = result.scores[c.graph.node(c.paper, 1)];
  double s2 = result.scores[c.graph.node(c.paper, 2)];
  // Authority flows along citations: most-cited p0 wins, p2 gets nothing.
  EXPECT_GT(s0, s1);
  EXPECT_GT(s1, s2);
}

TEST(ObjectRank, ZeroRateMeansNoFlow) {
  CiteDb c = MakeCiteDb();
  AuthorityGraph ga(c.links.num_links());  // all rates zero
  auto result = ComputeObjectRank(c.db, c.links, c.graph, ga);
  // No flow: all scores equal the (uniform) base.
  double s0 = result.scores[c.graph.node(c.paper, 0)];
  double s1 = result.scores[c.graph.node(c.paper, 1)];
  double s2 = result.scores[c.graph.node(c.paper, 2)];
  EXPECT_NEAR(s0, s1, 1e-9);
  EXPECT_NEAR(s1, s2, 1e-9);
}

TEST(ObjectRank, LowDampingFlattensScores) {
  CiteDb c = MakeCiteDb();
  AuthorityGraph ga(c.links.num_links());
  ga.SetRate(c.link_cites, FkDirection::kForward, {0.7, std::nullopt});
  ObjectRankOptions d_high, d_low;
  d_high.damping = 0.99;
  d_low.damping = 0.10;
  auto high = ComputeObjectRank(c.db, c.links, c.graph, ga, d_high);
  auto low = ComputeObjectRank(c.db, c.links, c.graph, ga, d_low);
  auto spread = [&](const std::vector<double>& s) {
    double mx = *std::max_element(s.begin(), s.end());
    double mn = *std::min_element(s.begin(), s.end());
    return mx / std::max(mn, 1e-12);
  };
  // d2=0.10 produces near-uniform scores; d3=0.99 exaggerates authority.
  EXPECT_GT(spread(high.scores), spread(low.scores) * 2);
}

TEST(ObjectRank, ConvergesAndReportsIterations) {
  CiteDb c = MakeCiteDb();
  AuthorityGraph ga(c.links.num_links());
  ga.SetRate(c.link_cites, FkDirection::kForward, {0.7, std::nullopt});
  auto result = ComputeObjectRank(c.db, c.links, c.graph, ga);
  EXPECT_GT(result.iterations, 1);
  EXPECT_LT(result.final_delta, 1e-7);
}

TEST(ObjectRank, MeanScaleNormalization) {
  CiteDb c = MakeCiteDb();
  AuthorityGraph ga(c.links.num_links());
  ga.SetRate(c.link_cites, FkDirection::kForward, {0.7, std::nullopt});
  ObjectRankOptions options;
  options.mean_scale = 10.0;
  auto result = ComputeObjectRank(c.db, c.links, c.graph, ga, options);
  double sum = 0.0;
  for (double s : result.scores) sum += s;
  EXPECT_NEAR(sum / static_cast<double>(result.scores.size()), 10.0, 1e-9);
}

TEST(ObjectRank, AnnotateImportanceCopiesScores) {
  CiteDb c = MakeCiteDb();
  AuthorityGraph ga(c.links.num_links());
  ga.SetRate(c.link_cites, FkDirection::kForward, {0.7, std::nullopt});
  auto result = RankAndAnnotate(&c.db, c.links, &c.graph, ga);
  const rel::Relation& papers = c.db.relation(c.paper);
  ASSERT_TRUE(papers.has_importance());
  EXPECT_DOUBLE_EQ(papers.importance(0),
                   result.scores[c.graph.node(c.paper, 0)]);
  // Access paths are now importance-sorted.
  EXPECT_TRUE(c.graph.neighbors_sorted());
}

// --- ValueRank: customers with high-value orders should outrank customers
// --- with many low-value orders.
struct ShopDb {
  Database db;
  rel::RelationId customer, orders;
  rel::ColumnId col_total = 0;
  graph::LinkSchema links;
  graph::DataGraph graph;
  graph::LinkTypeId link_oc;
};

ShopDb MakeShopDb() {
  ShopDb s;
  s.customer = s.db.AddRelation(
      "Customer", Schema({{"name", ValueType::kString, true}}));
  Schema orders_schema({{"customer_id", ValueType::kInt, false},
                        {"totalprice", ValueType::kDouble, true}});
  s.col_total = orders_schema.GetColumn("totalprice");
  s.orders = s.db.AddRelation("Order", orders_schema);
  s.db.AddForeignKey("order_customer", s.orders, 0, s.customer);
  // c0: five $10 orders. c1: three $100 orders.
  s.db.relation(s.customer).Append({Value{std::string("c0")}});
  s.db.relation(s.customer).Append({Value{std::string("c1")}});
  for (int i = 0; i < 5; ++i) {
    s.db.relation(s.orders).Append({Value{int64_t{0}}, Value{10.0}});
  }
  for (int i = 0; i < 3; ++i) {
    s.db.relation(s.orders).Append({Value{int64_t{1}}, Value{100.0}});
  }
  s.db.BuildIndexes();
  s.links = graph::LinkSchema::Build(s.db);
  s.link_oc = s.links.GetLink("order_customer");
  s.graph = graph::DataGraph::Build(s.db, s.links);
  return s;
}

TEST(ValueRank, HighValueOrdersBeatManyCheapOrders) {
  ShopDb s = MakeShopDb();
  AuthorityGraph ga(s.links.num_links());
  // Orders push authority to their customer; order importance itself is
  // driven by the value-biased base vector (the S_i of Figure 13b).
  ga.SetRate(s.link_oc, FkDirection::kBackward, {0.5, std::nullopt});
  ga.SetBaseValueBias(s.orders, s.col_total, 0.9);
  auto result = ComputeObjectRank(s.db, s.links, s.graph, ga);
  double c0 = result.scores[s.graph.node(s.customer, 0)];
  double c1 = result.scores[s.graph.node(s.customer, 1)];
  EXPECT_GT(c1, c0);  // 3 x $100 beats 5 x $10
}

TEST(ValueRank, PlainObjectRankPrefersManyOrders) {
  ShopDb s = MakeShopDb();
  AuthorityGraph ga(s.links.num_links());
  ga.SetRate(s.link_oc, FkDirection::kBackward, {0.5, std::nullopt});
  // Without value bias (G_A2 style), more orders -> more authority.
  auto result = ComputeObjectRank(s.db, s.links, s.graph, ga);
  double c0 = result.scores[s.graph.node(s.customer, 0)];
  double c1 = result.scores[s.graph.node(s.customer, 1)];
  EXPECT_GT(c0, c1);
}

TEST(ValueRank, ValueProportionalSplitting) {
  ShopDb s = MakeShopDb();
  AuthorityGraph ga(s.links.num_links());
  // Customer -> Orders with value-proportional split: within c1's orders,
  // raise one order's price and it should absorb more authority.
  s.db.relation(s.orders).SetValue(7, s.col_total, Value{1000.0});
  ga.SetRate(s.link_oc, FkDirection::kForward, {0.5, s.col_total});
  auto result = ComputeObjectRank(s.db, s.links, s.graph, ga);
  double cheap = result.scores[s.graph.node(s.orders, 5)];
  double pricey = result.scores[s.graph.node(s.orders, 7)];
  EXPECT_GT(pricey, cheap);
}

TEST(AuthorityGraphTest, UsesValuesDetection) {
  ShopDb s = MakeShopDb();
  AuthorityGraph plain(s.links.num_links());
  EXPECT_FALSE(plain.uses_values());
  AuthorityGraph with_split(s.links.num_links());
  with_split.SetRate(s.link_oc, FkDirection::kForward, {0.5, s.col_total});
  EXPECT_TRUE(with_split.uses_values());
  AuthorityGraph with_bias(s.links.num_links());
  with_bias.SetBaseValueBias(s.orders, s.col_total, 0.5);
  EXPECT_TRUE(with_bias.uses_values());
}

}  // namespace
}  // namespace osum::importance
