// ResultCache unit behavior: LRU recency and eviction order, byte-budget
// enforcement, epoch invalidation, exception safety, the cache policy
// (doorkeeper admission, TTL + negative-TTL expiry on a FakeClock — zero
// sleeps), and the stampede guarantee (N concurrent misses for one key =>
// exactly 1 compute, preserved across TTL expiry) — the stress tests
// double as the TSan canary for the serving layer (run via scripts/ci.sh's
// thread-sanitizer lane, label serve;slow).
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/clock.h"
#include "serve/result_cache.h"

namespace osum::serve {
namespace {

/// A dummy payload of a chosen budget weight. Results stay empty — the
/// cache treats such values as *negative* answers, which is exactly what
/// the legacy LRU/budget tests want: no TTLs are configured there, so
/// negativity is inert.
CachedResult Payload(size_t approx_bytes) {
  CachedResult r;
  r.approx_bytes = approx_bytes;
  return r;
}

/// A positive payload: one (default) result, so negative() is false.
CachedResult PositivePayload(size_t approx_bytes) {
  CachedResult r;
  r.results.emplace_back();
  r.approx_bytes = approx_bytes;
  return r;
}

/// Single-shard options so LRU order is global and deterministic.
ResultCacheOptions OneShard(size_t max_entries, size_t max_bytes) {
  ResultCacheOptions o;
  o.num_shards = 1;
  o.max_entries = max_entries;
  o.max_bytes = max_bytes;
  return o;
}

TEST(ResultCacheLru, RecencyOrderGovernsEviction) {
  ResultCache cache(OneShard(/*max_entries=*/3, /*max_bytes=*/1 << 30));
  auto put = [&](const std::string& key) {
    cache.GetOrCompute(key, [] { return Payload(1); });
  };
  put("a");
  put("b");
  put("c");
  // Refresh "a": it must now outlive "b" when "d" overflows the cap.
  EXPECT_NE(cache.Lookup("a"), nullptr);
  put("d");

  EXPECT_EQ(cache.Lookup("b"), nullptr);  // LRU victim
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_NE(cache.Lookup("d"), nullptr);
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.entries, 3u);
  EXPECT_EQ(m.evictions, 1u);
  EXPECT_EQ(m.misses, 4u);
}

TEST(ResultCacheLru, HitRefreshesRecencyViaGetOrCompute) {
  ResultCache cache(OneShard(3, 1 << 30));
  for (const char* k : {"a", "b", "c"}) {
    cache.GetOrCompute(k, [] { return Payload(1); });
  }
  // GetOrCompute hit path must refresh recency just like Lookup.
  cache.GetOrCompute("a", [] {
    ADD_FAILURE() << "hit must not recompute";
    return Payload(1);
  });
  cache.GetOrCompute("d", [] { return Payload(1); });
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
}

TEST(ResultCacheBudget, BytesEvictOldestUntilUnderCap) {
  // Entry weight = approx_bytes + internal key size; internal keys are the
  // 2-byte caller keys plus the 2-byte epoch prefix "0\x1d" here.
  ResultCache cache(OneShard(/*max_entries=*/64, /*max_bytes=*/1000));
  cache.GetOrCompute("k1", [] { return Payload(396); });  // 400
  cache.GetOrCompute("k2", [] { return Payload(396); });  // 800
  EXPECT_EQ(cache.metrics().approx_bytes, 800u);
  EXPECT_EQ(cache.metrics().evictions, 0u);

  cache.GetOrCompute("k3", [] { return Payload(396); });  // 1200 -> evict k1
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.approx_bytes, 800u);
  EXPECT_EQ(m.entries, 2u);
  EXPECT_EQ(m.evictions, 1u);
  EXPECT_EQ(cache.Lookup("k1"), nullptr);
  EXPECT_NE(cache.Lookup("k2"), nullptr);
  EXPECT_NE(cache.Lookup("k3"), nullptr);
}

TEST(ResultCacheBudget, OversizedEntrySurvivesItsOwnInsertOnly) {
  ResultCache cache(OneShard(64, 1000));
  cache.GetOrCompute("k1", [] { return Payload(398); });
  cache.GetOrCompute("xl", [] { return Payload(5000); });
  // The oversized entry evicted everything else but is itself kept (the
  // just-inserted entry is never its own victim).
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.entries, 1u);
  EXPECT_NE(cache.Lookup("xl"), nullptr);
  // The next insert evicts it.
  cache.GetOrCompute("k2", [] { return Payload(398); });
  EXPECT_EQ(cache.Lookup("xl"), nullptr);
  EXPECT_NE(cache.Lookup("k2"), nullptr);
}

TEST(ResultCacheEpoch, BumpInvalidatesCommittedEntries) {
  ResultCache cache(OneShard(64, 1 << 30));
  ResultPtr v1 = cache.GetOrCompute("q", [] { return Payload(7); });
  EXPECT_NE(cache.Lookup("q"), nullptr);

  EXPECT_EQ(cache.BumpEpoch(), 1u);
  EXPECT_EQ(cache.epoch(), 1u);
  EXPECT_EQ(cache.Lookup("q"), nullptr);
  EXPECT_EQ(cache.metrics().entries, 0u);

  // Recompute under the new epoch produces a distinct cached object.
  ResultPtr v2 = cache.GetOrCompute("q", [] { return Payload(7); });
  EXPECT_NE(v1.get(), v2.get());
  EXPECT_EQ(cache.metrics().misses, 2u);
}

TEST(ResultCacheEpoch, InFlightComputeAcrossBumpIsDiscardedNotServed) {
  ResultCache cache(OneShard(64, 1 << 30));
  // The epoch moves while the compute is in flight: the caller still gets
  // its freshly computed value, but nothing is published.
  ResultPtr v = cache.GetOrCompute("q", [&] {
    cache.BumpEpoch();
    return Payload(7);
  });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->approx_bytes, 7u);
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.entries, 0u);
  EXPECT_EQ(m.discarded_inserts, 1u);
  EXPECT_EQ(cache.Lookup("q"), nullptr);
}

TEST(ResultCacheErrors, ComputeExceptionPropagatesAndCachesNothing) {
  ResultCache cache(OneShard(64, 1 << 30));
  EXPECT_THROW(cache.GetOrCompute(
                   "q",
                   []() -> CachedResult {
                     throw std::runtime_error("backend down");
                   }),
               std::runtime_error);
  EXPECT_EQ(cache.metrics().entries, 0u);
  // The in-flight slot was cleaned up: the key is computable again.
  ResultPtr v = cache.GetOrCompute("q", [] { return Payload(1); });
  EXPECT_NE(v, nullptr);
}

TEST(ResultCacheSharding, KeysSpreadAndCapsHoldAcrossShards) {
  ResultCacheOptions o;
  o.num_shards = 4;
  o.max_entries = 16;  // 4 per shard
  o.max_bytes = 1 << 30;
  ResultCache cache(o);
  for (int i = 0; i < 200; ++i) {
    cache.GetOrCompute("key-" + std::to_string(i),
                       [] { return Payload(1); });
  }
  CacheMetrics m = cache.metrics();
  EXPECT_LE(m.entries, 16u);
  EXPECT_GT(m.entries, 4u);  // more than one shard got traffic
  EXPECT_EQ(m.misses, 200u);
  EXPECT_EQ(m.evictions, 200u - m.entries);
}

/// Single-shard options with a policy and an injected FakeClock.
ResultCacheOptions PolicyShard(CachePolicyOptions policy,
                               std::shared_ptr<FakeClock> clock,
                               size_t max_entries = 64) {
  ResultCacheOptions o;
  o.num_shards = 1;
  o.max_entries = max_entries;
  o.max_bytes = 1 << 30;
  o.policy = policy;
  o.clock = std::move(clock);
  return o;
}

TEST(ResultCacheTtl, PositiveEntryExpiresLazilyAtDeadline) {
  auto clock = std::make_shared<FakeClock>();
  CachePolicyOptions policy;
  policy.ttl_micros = 1000;
  ResultCache cache(PolicyShard(policy, clock));

  cache.GetOrCompute("q", [] { return PositivePayload(7); });
  clock->AdvanceMicros(999);  // alive strictly less than the TTL
  EXPECT_NE(cache.Lookup("q"), nullptr);
  clock->AdvanceMicros(1);  // now == deadline: expired
  EXPECT_EQ(cache.Lookup("q"), nullptr);
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.ttl_expiries, 1u);
  EXPECT_EQ(m.negative_ttl_expiries, 0u);
  EXPECT_EQ(m.entries, 0u);
  // The expired key recomputes (a fresh miss), with a fresh deadline.
  bool computed = false;
  cache.GetOrCompute("q", [&] {
    computed = true;
    return PositivePayload(7);
  });
  EXPECT_TRUE(computed);
  EXPECT_EQ(cache.metrics().misses, 2u);
}

TEST(ResultCacheTtl, NegativeEntriesUseTheShorterNegativeTtl) {
  auto clock = std::make_shared<FakeClock>();
  CachePolicyOptions policy;
  policy.ttl_micros = 1000;
  policy.negative_ttl_micros = 100;
  ResultCache cache(PolicyShard(policy, clock));

  cache.GetOrCompute("pos", [] { return PositivePayload(5); });
  cache.GetOrCompute("neg", [] { return Payload(5); });  // OK-empty
  clock->AdvanceMicros(100);
  // The negative entry is gone; the positive one has 900us to live.
  EXPECT_EQ(cache.Lookup("neg"), nullptr);
  EXPECT_NE(cache.Lookup("pos"), nullptr);
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.negative_ttl_expiries, 1u);
  EXPECT_EQ(m.ttl_expiries, 0u);
  // A hit on a live negative entry is attributed as a negative hit.
  cache.GetOrCompute("neg", [] { return Payload(5); });
  EXPECT_NE(cache.Lookup("neg"), nullptr);
  EXPECT_EQ(cache.metrics().negative_hits, 1u);
}

TEST(ResultCacheTtl, ZeroTtlMeansEntriesNeverExpire) {
  auto clock = std::make_shared<FakeClock>();
  ResultCache cache(PolicyShard(CachePolicyOptions{}, clock));
  cache.GetOrCompute("q", [] { return PositivePayload(3); });
  clock->AdvanceMicros(1ull << 40);  // ~2 weeks of fake time
  EXPECT_NE(cache.Lookup("q"), nullptr);
  EXPECT_EQ(cache.metrics().ttl_expiries, 0u);
}

TEST(ResultCacheTtl, SweepErasesExpiredAndAttributesByKind) {
  auto clock = std::make_shared<FakeClock>();
  CachePolicyOptions policy;
  policy.ttl_micros = 1000;
  policy.negative_ttl_micros = 100;
  ResultCache cache(PolicyShard(policy, clock));

  cache.GetOrCompute("pos1", [] { return PositivePayload(5); });
  cache.GetOrCompute("pos2", [] { return PositivePayload(5); });
  cache.GetOrCompute("neg1", [] { return Payload(5); });
  clock->AdvanceMicros(100);
  EXPECT_EQ(cache.SweepExpired(), 1u);  // just the negative
  clock->AdvanceMicros(900);
  EXPECT_EQ(cache.SweepExpired(), 2u);  // both positives hit 1000
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.ttl_expiries, 2u);
  EXPECT_EQ(m.negative_ttl_expiries, 1u);
  EXPECT_EQ(m.entries, 0u);
  EXPECT_EQ(m.approx_bytes, 0u);
  EXPECT_EQ(m.evictions, 0u);  // expiry is not eviction
}

TEST(ResultCacheAdmission, SecondSightingWithinWindowAdmits) {
  auto clock = std::make_shared<FakeClock>();
  CachePolicyOptions policy;
  policy.admission_enabled = true;
  policy.admission_window_micros = 1000;
  ResultCache cache(PolicyShard(policy, clock));

  // First sighting: computed, returned, NOT cached.
  ResultPtr first = cache.GetOrCompute("q", [] { return PositivePayload(9); });
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->approx_bytes, 9u);
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.admission_rejects, 1u);
  EXPECT_EQ(m.entries, 0u);
  EXPECT_EQ(m.tracked_sightings, 1u);
  EXPECT_EQ(cache.Lookup("q"), nullptr);

  // Second sighting within the window: admitted (and the sighting is
  // consumed).
  clock->AdvanceMicros(999);
  bool computed = false;
  cache.GetOrCompute("q", [&] {
    computed = true;
    return PositivePayload(9);
  });
  EXPECT_TRUE(computed);  // admission caches the result; it can't conjure it
  m = cache.metrics();
  EXPECT_EQ(m.entries, 1u);
  EXPECT_EQ(m.tracked_sightings, 0u);
  EXPECT_NE(cache.Lookup("q"), nullptr);
}

TEST(ResultCacheAdmission, SightingOutsideWindowRefreshesAndRejectsAgain) {
  auto clock = std::make_shared<FakeClock>();
  CachePolicyOptions policy;
  policy.admission_enabled = true;
  policy.admission_window_micros = 1000;
  ResultCache cache(PolicyShard(policy, clock));

  cache.GetOrCompute("q", [] { return PositivePayload(1); });
  clock->AdvanceMicros(1000);  // the sighting just aged out
  cache.GetOrCompute("q", [] { return PositivePayload(1); });
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.admission_rejects, 2u);
  EXPECT_EQ(m.entries, 0u);
  EXPECT_EQ(m.tracked_sightings, 1u);  // refreshed, not duplicated
  // The refresh restarted the window: a sighting inside it now admits.
  clock->AdvanceMicros(500);
  cache.GetOrCompute("q", [] { return PositivePayload(1); });
  EXPECT_EQ(cache.metrics().entries, 1u);
}

TEST(ResultCacheAdmission, ZeroWindowMeansSightingsNeverAgeOut) {
  // Matches the TTL convention (0 = no time limit) — a zero window must
  // NOT mean "reject everything forever".
  auto clock = std::make_shared<FakeClock>();
  CachePolicyOptions policy;
  policy.admission_enabled = true;
  policy.admission_window_micros = 0;
  ResultCache cache(PolicyShard(policy, clock));

  cache.GetOrCompute("q", [] { return PositivePayload(1); });
  clock->AdvanceMicros(1ull << 40);  // ~2 weeks later...
  cache.GetOrCompute("q", [] { return PositivePayload(1); });
  EXPECT_EQ(cache.metrics().entries, 1u);  // ...the 2nd sighting admits
  EXPECT_NE(cache.Lookup("q"), nullptr);
  // And the sweep never prunes timeless sightings.
  cache.GetOrCompute("r", [] { return PositivePayload(1); });
  clock->AdvanceMicros(1ull << 40);
  EXPECT_EQ(cache.SweepExpired(), 0u);
  EXPECT_EQ(cache.metrics().tracked_sightings, 1u);
}

TEST(ResultCacheAdmission, BypassKnobAdmitsEverything) {
  auto clock = std::make_shared<FakeClock>();
  ResultCache cache(PolicyShard(CachePolicyOptions{}, clock));  // disabled
  cache.GetOrCompute("q", [] { return PositivePayload(1); });
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.admission_rejects, 0u);
  EXPECT_EQ(m.entries, 1u);
  EXPECT_EQ(m.tracked_sightings, 0u);
}

TEST(ResultCacheAdmission, SightingCapEvictsOldestRecorded) {
  auto clock = std::make_shared<FakeClock>();
  CachePolicyOptions policy;
  policy.admission_enabled = true;
  policy.admission_window_micros = 1'000'000;
  policy.admission_max_tracked = 2;
  ResultCache cache(PolicyShard(policy, clock));

  cache.GetOrCompute("a", [] { return PositivePayload(1); });
  clock->AdvanceMicros(1);
  cache.GetOrCompute("b", [] { return PositivePayload(1); });
  clock->AdvanceMicros(1);
  cache.GetOrCompute("c", [] { return PositivePayload(1); });  // evicts a's
  EXPECT_EQ(cache.metrics().tracked_sightings, 2u);  // {c, b}
  // "b" kept its sighting: admitted. "a" lost its (evicted as the oldest
  // recorded): rejected and re-recorded — which in turn evicts "c".
  cache.GetOrCompute("b", [] { return PositivePayload(1); });
  EXPECT_EQ(cache.metrics().entries, 1u);
  EXPECT_NE(cache.Lookup("b"), nullptr);
  cache.GetOrCompute("a", [] { return PositivePayload(1); });
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.entries, 1u);  // "a" still not admitted
  EXPECT_EQ(m.admission_rejects, 4u);  // a, b, c, a
}

TEST(ResultCacheAdmission, SweepPrunesAgedOutSightings) {
  auto clock = std::make_shared<FakeClock>();
  CachePolicyOptions policy;
  policy.admission_enabled = true;
  policy.admission_window_micros = 1000;
  ResultCache cache(PolicyShard(policy, clock));

  cache.GetOrCompute("a", [] { return PositivePayload(1); });
  clock->AdvanceMicros(600);
  cache.GetOrCompute("b", [] { return PositivePayload(1); });
  clock->AdvanceMicros(400);  // a's sighting is 1000 old; b's is 400 old
  EXPECT_EQ(cache.SweepExpired(), 0u);  // no cache entries to expire...
  EXPECT_EQ(cache.metrics().tracked_sightings, 1u);  // ...but a's pruned
}

TEST(ResultCacheAdmission, ExpiredHotKeyReadmitsOnFirstRecompute) {
  auto clock = std::make_shared<FakeClock>();
  CachePolicyOptions policy;
  policy.admission_enabled = true;
  policy.admission_window_micros = 10'000;
  policy.ttl_micros = 1000;
  ResultCache cache(PolicyShard(policy, clock));

  // Two sightings admit the key; then its TTL elapses.
  cache.GetOrCompute("q", [] { return PositivePayload(3); });
  cache.GetOrCompute("q", [] { return PositivePayload(3); });
  EXPECT_EQ(cache.metrics().entries, 1u);
  clock->AdvanceMicros(1000);

  // The expiry left a sighting, so ONE recompute restores the entry —
  // a hot key does not pay the doorkeeper toll once per TTL period.
  bool computed = false;
  cache.GetOrCompute("q", [&] {
    computed = true;
    return PositivePayload(3);
  });
  EXPECT_TRUE(computed);
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.entries, 1u);
  EXPECT_EQ(m.ttl_expiries, 1u);
  EXPECT_EQ(m.admission_rejects, 1u);  // only the original first sighting
  EXPECT_NE(cache.Lookup("q"), nullptr);

  // Same via the sweep path: expire, sweep, recompute once -> cached.
  clock->AdvanceMicros(1000);
  EXPECT_EQ(cache.SweepExpired(), 1u);
  EXPECT_EQ(cache.metrics().tracked_sightings, 1u);
  cache.GetOrCompute("q", [] { return PositivePayload(3); });
  EXPECT_EQ(cache.metrics().entries, 1u);
  EXPECT_EQ(cache.metrics().admission_rejects, 1u);
}

TEST(ResultCacheEpoch, BumpInvalidatesRegardlessOfRemainingTtl) {
  auto clock = std::make_shared<FakeClock>();
  CachePolicyOptions policy;
  policy.ttl_micros = 1'000'000;  // a whole fake second of validity
  ResultCache cache(PolicyShard(policy, clock));

  cache.GetOrCompute("q", [] { return PositivePayload(7); });
  EXPECT_NE(cache.Lookup("q"), nullptr);
  cache.BumpEpoch();
  // TTL had 999+ms to go; the epoch barrier wins anyway.
  EXPECT_EQ(cache.Lookup("q"), nullptr);
  bool computed = false;
  cache.GetOrCompute("q", [&] {
    computed = true;
    return PositivePayload(7);
  });
  EXPECT_TRUE(computed);
}

// The stampede guarantee, hammered: kThreads concurrent misses for the
// SAME key must coalesce onto exactly one compute. The sleep inside the
// compute keeps every other thread in the in-flight window, and the run
// under TSan proves the lock/future discipline is race-free.
TEST(ResultCacheStress, StampedeCoalescesToOneCompute) {
  ResultCache cache(ResultCacheOptions{});
  constexpr size_t kThreads = 8;
  std::atomic<int> computes{0};
  std::atomic<int> ready{0};
  std::vector<ResultPtr> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      // Rough rendezvous so the misses really are concurrent.
      ready.fetch_add(1);
      while (ready.load() < static_cast<int>(kThreads)) {
        std::this_thread::yield();
      }
      got[w] = cache.GetOrCompute("hot-key", [&] {
        computes.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return Payload(42);
      });
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(computes.load(), 1);
  for (size_t w = 1; w < kThreads; ++w) {
    // Everyone observes the one published object.
    EXPECT_EQ(got[w].get(), got[0].get());
  }
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.hits + m.coalesced_waits, kThreads - 1);
}

// Many keys x many threads: coalescing per key, no cross-key interference,
// caps enforced concurrently.
TEST(ResultCacheStress, ConcurrentMixedKeys) {
  ResultCacheOptions o;
  o.num_shards = 4;
  o.max_entries = 64;
  o.max_bytes = 1 << 30;
  ResultCache cache(o);
  constexpr size_t kThreads = 8;
  constexpr int kKeys = 16;
  constexpr int kRounds = 40;
  std::vector<std::atomic<int>> computes(kKeys);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        int k = static_cast<int>((round + w) % kKeys);
        ResultPtr v = cache.GetOrCompute("key-" + std::to_string(k), [&] {
          computes[k].fetch_add(1);
          return Payload(static_cast<size_t>(k));
        });
        if (v->approx_bytes != static_cast<size_t>(k)) {
          ADD_FAILURE() << "value for key " << k << " corrupted";
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Capacity (64) exceeds the key count, so nothing is ever evicted and
  // each key is computed exactly once no matter the interleaving.
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(computes[k].load(), 1) << "key " << k;
  }
  EXPECT_EQ(cache.metrics().misses, static_cast<uint64_t>(kKeys));
}

// Stampede coalescing across TTL expiry (the ISSUE 5 acceptance clause):
// when an entry expires, N concurrent callers must trigger exactly ONE
// recompute — the first erases the stale entry and computes, the rest
// coalesce onto its in-flight future. Run for a positive and a negative
// entry (distinct TTLs), under TSan in CI.
TEST(ResultCacheStress, ExpiredEntryRecomputesExactlyOnce) {
  auto clock = std::make_shared<FakeClock>();
  CachePolicyOptions policy;
  policy.ttl_micros = 1000;
  policy.negative_ttl_micros = 100;
  ResultCacheOptions options;
  options.policy = policy;
  options.clock = clock;
  ResultCache cache(options);

  struct Case {
    const char* key;
    bool negative;
  };
  for (const Case& c : {Case{"pos-key", false}, Case{"neg-key", true}}) {
    auto make = [&] {
      return c.negative ? Payload(11) : PositivePayload(11);
    };
    cache.GetOrCompute(c.key, make);
    EXPECT_NE(cache.Lookup(c.key), nullptr) << c.key;
    clock->AdvanceMicros(1000);  // past both TTLs
    constexpr size_t kThreads = 8;
    std::atomic<int> computes{0};
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (size_t w = 0; w < kThreads; ++w) {
      threads.emplace_back([&] {
        ready.fetch_add(1);
        while (ready.load() < static_cast<int>(kThreads)) {
          std::this_thread::yield();
        }
        ResultPtr got = cache.GetOrCompute(c.key, [&] {
          computes.fetch_add(1);
          // Hold the in-flight window open so late arrivals coalesce.
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          return make();
        });
        if (got == nullptr || got->negative() != c.negative) {
          ADD_FAILURE() << "bad value for " << c.key;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(computes.load(), 1) << c.key;
  }
  CacheMetrics m = cache.metrics();
  // Per case: insert-miss + exactly one expiry recompute-miss.
  EXPECT_EQ(m.misses, 4u);
  EXPECT_EQ(m.ttl_expiries, 1u);
  EXPECT_EQ(m.negative_ttl_expiries, 1u);
  EXPECT_EQ(m.entries, 2u);  // both keys live again under fresh deadlines
}

}  // namespace
}  // namespace osum::serve
