// ResultCache unit behavior: LRU recency and eviction order, byte-budget
// enforcement, epoch invalidation, exception safety, and the stampede
// guarantee (N concurrent misses for one key => exactly 1 compute) — the
// stress tests double as the TSan canary for the serving layer (run via
// scripts/ci.sh's thread-sanitizer lane, label serve;slow).
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/result_cache.h"

namespace osum::serve {
namespace {

/// A dummy payload of a chosen budget weight (results stay empty — the
/// cache never looks inside its values).
CachedResult Payload(size_t approx_bytes) {
  CachedResult r;
  r.approx_bytes = approx_bytes;
  return r;
}

/// Single-shard options so LRU order is global and deterministic.
ResultCacheOptions OneShard(size_t max_entries, size_t max_bytes) {
  ResultCacheOptions o;
  o.num_shards = 1;
  o.max_entries = max_entries;
  o.max_bytes = max_bytes;
  return o;
}

TEST(ResultCacheLru, RecencyOrderGovernsEviction) {
  ResultCache cache(OneShard(/*max_entries=*/3, /*max_bytes=*/1 << 30));
  auto put = [&](const std::string& key) {
    cache.GetOrCompute(key, [] { return Payload(1); });
  };
  put("a");
  put("b");
  put("c");
  // Refresh "a": it must now outlive "b" when "d" overflows the cap.
  EXPECT_NE(cache.Lookup("a"), nullptr);
  put("d");

  EXPECT_EQ(cache.Lookup("b"), nullptr);  // LRU victim
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_NE(cache.Lookup("d"), nullptr);
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.entries, 3u);
  EXPECT_EQ(m.evictions, 1u);
  EXPECT_EQ(m.misses, 4u);
}

TEST(ResultCacheLru, HitRefreshesRecencyViaGetOrCompute) {
  ResultCache cache(OneShard(3, 1 << 30));
  for (const char* k : {"a", "b", "c"}) {
    cache.GetOrCompute(k, [] { return Payload(1); });
  }
  // GetOrCompute hit path must refresh recency just like Lookup.
  cache.GetOrCompute("a", [] {
    ADD_FAILURE() << "hit must not recompute";
    return Payload(1);
  });
  cache.GetOrCompute("d", [] { return Payload(1); });
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
}

TEST(ResultCacheBudget, BytesEvictOldestUntilUnderCap) {
  // Entry weight = approx_bytes + internal key size; internal keys are the
  // 2-byte caller keys plus the 2-byte epoch prefix "0\x1d" here.
  ResultCache cache(OneShard(/*max_entries=*/64, /*max_bytes=*/1000));
  cache.GetOrCompute("k1", [] { return Payload(396); });  // 400
  cache.GetOrCompute("k2", [] { return Payload(396); });  // 800
  EXPECT_EQ(cache.metrics().approx_bytes, 800u);
  EXPECT_EQ(cache.metrics().evictions, 0u);

  cache.GetOrCompute("k3", [] { return Payload(396); });  // 1200 -> evict k1
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.approx_bytes, 800u);
  EXPECT_EQ(m.entries, 2u);
  EXPECT_EQ(m.evictions, 1u);
  EXPECT_EQ(cache.Lookup("k1"), nullptr);
  EXPECT_NE(cache.Lookup("k2"), nullptr);
  EXPECT_NE(cache.Lookup("k3"), nullptr);
}

TEST(ResultCacheBudget, OversizedEntrySurvivesItsOwnInsertOnly) {
  ResultCache cache(OneShard(64, 1000));
  cache.GetOrCompute("k1", [] { return Payload(398); });
  cache.GetOrCompute("xl", [] { return Payload(5000); });
  // The oversized entry evicted everything else but is itself kept (the
  // just-inserted entry is never its own victim).
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.entries, 1u);
  EXPECT_NE(cache.Lookup("xl"), nullptr);
  // The next insert evicts it.
  cache.GetOrCompute("k2", [] { return Payload(398); });
  EXPECT_EQ(cache.Lookup("xl"), nullptr);
  EXPECT_NE(cache.Lookup("k2"), nullptr);
}

TEST(ResultCacheEpoch, BumpInvalidatesCommittedEntries) {
  ResultCache cache(OneShard(64, 1 << 30));
  ResultPtr v1 = cache.GetOrCompute("q", [] { return Payload(7); });
  EXPECT_NE(cache.Lookup("q"), nullptr);

  EXPECT_EQ(cache.BumpEpoch(), 1u);
  EXPECT_EQ(cache.epoch(), 1u);
  EXPECT_EQ(cache.Lookup("q"), nullptr);
  EXPECT_EQ(cache.metrics().entries, 0u);

  // Recompute under the new epoch produces a distinct cached object.
  ResultPtr v2 = cache.GetOrCompute("q", [] { return Payload(7); });
  EXPECT_NE(v1.get(), v2.get());
  EXPECT_EQ(cache.metrics().misses, 2u);
}

TEST(ResultCacheEpoch, InFlightComputeAcrossBumpIsDiscardedNotServed) {
  ResultCache cache(OneShard(64, 1 << 30));
  // The epoch moves while the compute is in flight: the caller still gets
  // its freshly computed value, but nothing is published.
  ResultPtr v = cache.GetOrCompute("q", [&] {
    cache.BumpEpoch();
    return Payload(7);
  });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->approx_bytes, 7u);
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.entries, 0u);
  EXPECT_EQ(m.discarded_inserts, 1u);
  EXPECT_EQ(cache.Lookup("q"), nullptr);
}

TEST(ResultCacheErrors, ComputeExceptionPropagatesAndCachesNothing) {
  ResultCache cache(OneShard(64, 1 << 30));
  EXPECT_THROW(cache.GetOrCompute(
                   "q",
                   []() -> CachedResult {
                     throw std::runtime_error("backend down");
                   }),
               std::runtime_error);
  EXPECT_EQ(cache.metrics().entries, 0u);
  // The in-flight slot was cleaned up: the key is computable again.
  ResultPtr v = cache.GetOrCompute("q", [] { return Payload(1); });
  EXPECT_NE(v, nullptr);
}

TEST(ResultCacheSharding, KeysSpreadAndCapsHoldAcrossShards) {
  ResultCacheOptions o;
  o.num_shards = 4;
  o.max_entries = 16;  // 4 per shard
  o.max_bytes = 1 << 30;
  ResultCache cache(o);
  for (int i = 0; i < 200; ++i) {
    cache.GetOrCompute("key-" + std::to_string(i),
                       [] { return Payload(1); });
  }
  CacheMetrics m = cache.metrics();
  EXPECT_LE(m.entries, 16u);
  EXPECT_GT(m.entries, 4u);  // more than one shard got traffic
  EXPECT_EQ(m.misses, 200u);
  EXPECT_EQ(m.evictions, 200u - m.entries);
}

// The stampede guarantee, hammered: kThreads concurrent misses for the
// SAME key must coalesce onto exactly one compute. The sleep inside the
// compute keeps every other thread in the in-flight window, and the run
// under TSan proves the lock/future discipline is race-free.
TEST(ResultCacheStress, StampedeCoalescesToOneCompute) {
  ResultCache cache(ResultCacheOptions{});
  constexpr size_t kThreads = 8;
  std::atomic<int> computes{0};
  std::atomic<int> ready{0};
  std::vector<ResultPtr> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      // Rough rendezvous so the misses really are concurrent.
      ready.fetch_add(1);
      while (ready.load() < static_cast<int>(kThreads)) {
        std::this_thread::yield();
      }
      got[w] = cache.GetOrCompute("hot-key", [&] {
        computes.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return Payload(42);
      });
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(computes.load(), 1);
  for (size_t w = 1; w < kThreads; ++w) {
    // Everyone observes the one published object.
    EXPECT_EQ(got[w].get(), got[0].get());
  }
  CacheMetrics m = cache.metrics();
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.hits + m.coalesced_waits, kThreads - 1);
}

// Many keys x many threads: coalescing per key, no cross-key interference,
// caps enforced concurrently.
TEST(ResultCacheStress, ConcurrentMixedKeys) {
  ResultCacheOptions o;
  o.num_shards = 4;
  o.max_entries = 64;
  o.max_bytes = 1 << 30;
  ResultCache cache(o);
  constexpr size_t kThreads = 8;
  constexpr int kKeys = 16;
  constexpr int kRounds = 40;
  std::vector<std::atomic<int>> computes(kKeys);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        int k = static_cast<int>((round + w) % kKeys);
        ResultPtr v = cache.GetOrCompute("key-" + std::to_string(k), [&] {
          computes[k].fetch_add(1);
          return Payload(static_cast<size_t>(k));
        });
        if (v->approx_bytes != static_cast<size_t>(k)) {
          ADD_FAILURE() << "value for key " << k << " corrupted";
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Capacity (64) exceeds the key count, so nothing is ever evicted and
  // each key is computed exactly once no matter the interleaving.
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(computes[k].load(), 1) << "key " << k;
  }
  EXPECT_EQ(cache.metrics().misses, static_cast<uint64_t>(kKeys));
}

}  // namespace
}  // namespace osum::serve
