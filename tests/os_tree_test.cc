// Tests for the OS tree arena, selection validation and materialization.
#include <gtest/gtest.h>

#include "core/os_tree.h"
#include "tree_fixtures.h"

namespace osum::core {
namespace {

using osum::testing::MakeTree;
using osum::testing::PaperFigure4Tree;

TEST(OsTree, BfsInvariantParentBeforeChild) {
  OsTree os = PaperFigure4Tree();
  for (size_t i = 1; i < os.size(); ++i) {
    EXPECT_LT(os.node(static_cast<OsNodeId>(i)).parent,
              static_cast<OsNodeId>(i));
  }
}

TEST(OsTree, DepthsAndChildren) {
  OsTree os = MakeTree({{-1, 1}, {0, 1}, {1, 1}, {1, 1}});
  EXPECT_EQ(os.node(0).depth, 0);
  EXPECT_EQ(os.node(1).depth, 1);
  EXPECT_EQ(os.node(2).depth, 2);
  EXPECT_EQ(os.node(1).children.size(), 2u);
  EXPECT_EQ(os.MaxDepth(), 2);
  EXPECT_EQ(os.CountLeaves(), 2u);
}

TEST(OsTree, TotalImportance) {
  OsTree os = MakeTree({{-1, 1.5}, {0, 2.5}});
  EXPECT_DOUBLE_EQ(os.TotalImportance(), 4.0);
}

TEST(OsTree, MonotoneDetection) {
  EXPECT_TRUE(MakeTree({{-1, 10}, {0, 5}, {1, 5}}).IsMonotone());
  EXPECT_FALSE(MakeTree({{-1, 10}, {0, 5}, {1, 7}}).IsMonotone());
}

TEST(Selection, ValidSelectionRules) {
  OsTree os = PaperFigure4Tree();
  Selection ok;
  ok.nodes = {0, 3, 4, 5};  // root + three children
  EXPECT_TRUE(IsValidSelection(os, ok, 4));

  Selection missing_root;
  missing_root.nodes = {1, 2, 3, 4};
  EXPECT_FALSE(IsValidSelection(os, missing_root, 4));

  Selection disconnected;
  disconnected.nodes = {0, 1, 2, 12};  // 12's parent (10) missing
  EXPECT_FALSE(IsValidSelection(os, disconnected, 4));

  Selection wrong_size;
  wrong_size.nodes = {0, 1};
  EXPECT_FALSE(IsValidSelection(os, wrong_size, 4));

  Selection duplicate;
  duplicate.nodes = {0, 1, 1, 2};
  EXPECT_FALSE(IsValidSelection(os, duplicate, 4));
}

TEST(Selection, ImportanceSum) {
  OsTree os = MakeTree({{-1, 1}, {0, 2}, {0, 4}});
  EXPECT_DOUBLE_EQ(SelectionImportance(os, {0, 2}), 5.0);
}

TEST(Materialize, ExtractsConnectedSubtree) {
  OsTree os = PaperFigure4Tree();
  Selection sel;
  sel.nodes = {0, 3, 10, 12};  // paper ids 1, 4, 11, 13 (a chain + root)
  OsTree sub = MaterializeSelection(os, sel);
  // Golden: the chain 1 -> 4 -> 11 -> 13 (paper ids) with its weights.
  EXPECT_TRUE(osum::testing::SameTree(
      sub, MakeTree({{-1, 30}, {0, 31}, {1, 30}, {2, 60}})));
}

TEST(Materialize, EmptySelectionYieldsEmptyTree) {
  OsTree os = PaperFigure4Tree();
  Selection sel;
  OsTree sub = MaterializeSelection(os, sel);
  EXPECT_TRUE(sub.empty());
}

}  // namespace
}  // namespace osum::core
