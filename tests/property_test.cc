// Deeper randomized property sweeps tying the exact algorithms together:
// SizeLDpAll vs brute force at every l, enumeration-DP agreement, greedy
// sandwich bounds, and structural invariants under adversarial weights.
#include <gtest/gtest.h>

#include "core/multi_l.h"
#include "core/size_l.h"
#include "tree_fixtures.h"

namespace osum::core {
namespace {

using osum::testing::MakeTree;
using osum::testing::RandomMonotoneTree;
using osum::testing::RandomTree;

struct AllLParam {
  uint64_t seed;
  size_t n;
};

class AllLPropertyTest : public ::testing::TestWithParam<AllLParam> {};

TEST_P(AllLPropertyTest, DpAllMatchesBruteForceAtEveryL) {
  const AllLParam p = GetParam();
  util::Rng rng(p.seed);
  OsTree os = RandomTree(&rng, p.n);
  std::vector<Selection> all = SizeLDpAll(os, p.n);
  ASSERT_EQ(all.size(), p.n);
  for (size_t l = 1; l <= p.n; ++l) {
    Selection oracle = SizeLBruteForce(os, l);
    EXPECT_NEAR(all[l - 1].importance, oracle.importance, 1e-9)
        << "n=" << p.n << " l=" << l;
    EXPECT_TRUE(IsValidSelection(os, all[l - 1], l));
  }
}

TEST_P(AllLPropertyTest, EnumerationAgreesWhereItFinishes) {
  const AllLParam p = GetParam();
  util::Rng rng(p.seed ^ 0xABCD);
  OsTree os = RandomTree(&rng, p.n);
  for (size_t l = 1; l <= p.n; l += 2) {
    SizeLStats st;
    Selection e = SizeLDpEnumerate(os, l, 20'000'000, &st);
    if (st.aborted) continue;
    Selection k = SizeLDp(os, l);
    EXPECT_NEAR(e.importance, k.importance, 1e-9) << "l=" << l;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallTrees, AllLPropertyTest,
    ::testing::Values(AllLParam{11, 4}, AllLParam{12, 7}, AllLParam{13, 10},
                      AllLParam{14, 13}, AllLParam{15, 16},
                      AllLParam{16, 18}),
    [](const ::testing::TestParamInfo<AllLParam>& info) {
      return "n" + std::to_string(info.param.n) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(GreedySandwich, BottomUpNeverBeatsTopPathOnMonotoneTrees) {
  // On monotone trees both are optimal (Lemma 2 for Bottom-Up; Top-Path
  // picks root-paths of decreasing AI), so they must agree in importance.
  util::Rng rng(21);
  for (int trial = 0; trial < 25; ++trial) {
    OsTree os = RandomMonotoneTree(&rng, 5 + rng.NextU64(60));
    for (size_t l : {2u, 5u, 9u}) {
      double bu = SizeLBottomUp(os, l).importance;
      double tp = SizeLTopPath(os, l).importance;
      double opt = SizeLDp(os, l).importance;
      EXPECT_NEAR(bu, opt, 1e-9) << trial;
      EXPECT_LE(tp, opt + 1e-9) << trial;
    }
  }
}

TEST(AdversarialWeights, ZeroWeightsEverywhere) {
  util::Rng rng(22);
  OsTree os;
  os.AddRoot(0, 0, 0, 0.0);
  for (size_t i = 1; i < 30; ++i) {
    os.AddChild(static_cast<OsNodeId>(rng.NextU64(i)), 0, 0,
                static_cast<rel::TupleId>(i), 0.0);
  }
  for (auto algo : {SizeLAlgorithm::kDp, SizeLAlgorithm::kBottomUp,
                    SizeLAlgorithm::kTopPath, SizeLAlgorithm::kTopPathMemo}) {
    Selection s = RunSizeL(algo, os, 10);
    EXPECT_TRUE(IsValidSelection(os, s, 10)) << AlgorithmName(algo);
    EXPECT_DOUBLE_EQ(s.importance, 0.0) << AlgorithmName(algo);
  }
}

TEST(AdversarialWeights, HugeAndTinyMagnitudesMix) {
  OsTree os = MakeTree({{-1, 1e-12},
                        {0, 1e12},
                        {0, 1e-12},
                        {1, 5e11},
                        {2, 1e12}});
  // Optimal size-3: root + node1 + max(node3, via node2 chain to node4
  // needs node2). {0,1,3} = 1.5e12+eps vs {0,2,4} = 1e12+eps.
  Selection s = SizeLDp(os, 3);
  EXPECT_EQ(s.nodes, (std::vector<OsNodeId>{0, 1, 3}));
}

TEST(AdversarialWeights, DeepChainVsWideStar) {
  // A long heavy chain competes with a wide shallow star; DP must weigh
  // connectivity cost correctly at each l.
  OsTree os;
  os.AddRoot(0, 0, 0, 1.0);
  // star children weights 10
  for (int i = 0; i < 5; ++i) {
    os.AddChild(kOsRoot, 0, 0, static_cast<rel::TupleId>(1 + i), 10.0);
  }
  // chain of weights 2, 2, 2, 100
  OsNodeId prev = os.AddChild(kOsRoot, 0, 0, 6, 2.0);
  prev = os.AddChild(prev, 0, 0, 7, 2.0);
  prev = os.AddChild(prev, 0, 0, 8, 2.0);
  os.AddChild(prev, 0, 0, 9, 100.0);
  // l=3: two star children (21) beat chain prefix (5).
  EXPECT_DOUBLE_EQ(SizeLDp(os, 3).importance, 21.0);
  // l=5: root + 4 stars = 41 vs chain {root,6,7,8,9} = 107. All methods
  // must switch to the chain: DP by optimality, Bottom-Up because the
  // star leaves (10) are pruned before the heavy chain leaf (100), and
  // Top-Path because the chain has the highest average importance.
  EXPECT_DOUBLE_EQ(SizeLDp(os, 5).importance, 107.0);
  EXPECT_DOUBLE_EQ(SizeLBottomUp(os, 5).importance, 107.0);
  EXPECT_DOUBLE_EQ(SizeLTopPath(os, 5).importance, 107.0);
}

TEST(SelectionInvariants, AllAlgorithmsKeepBfsSortedNodeIds) {
  util::Rng rng(23);
  OsTree os = RandomTree(&rng, 120);
  for (auto algo : {SizeLAlgorithm::kDp, SizeLAlgorithm::kBottomUp,
                    SizeLAlgorithm::kTopPath, SizeLAlgorithm::kTopPathMemo}) {
    Selection s = RunSizeL(algo, os, 25);
    EXPECT_TRUE(std::is_sorted(s.nodes.begin(), s.nodes.end()))
        << AlgorithmName(algo);
    EXPECT_DOUBLE_EQ(s.importance, SelectionImportance(os, s.nodes))
        << AlgorithmName(algo);
  }
}

TEST(SelectionInvariants, StatsNeverAbortExceptEnumerate) {
  util::Rng rng(24);
  OsTree os = RandomTree(&rng, 300);
  for (auto algo : {SizeLAlgorithm::kDp, SizeLAlgorithm::kBottomUp,
                    SizeLAlgorithm::kTopPath, SizeLAlgorithm::kTopPathMemo,
                    SizeLAlgorithm::kBruteForce}) {
    if (algo == SizeLAlgorithm::kBruteForce && os.size() > 25) continue;
    SizeLStats st;
    RunSizeL(algo, os, 12, &st);
    EXPECT_FALSE(st.aborted) << AlgorithmName(algo);
  }
}

}  // namespace
}  // namespace osum::core
