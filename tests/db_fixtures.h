// Database-backed test fixtures: the canonical synthetic-database configs
// and scored dataset + backend bundles shared by the integration-style
// suites. Links osum::datasets — core-only suites should use
// tree_fixtures.h instead so they stay free of dataset dependencies.
#ifndef OSUM_TESTS_DB_FIXTURES_H_
#define OSUM_TESTS_DB_FIXTURES_H_

#include "core/os_backend.h"
#include "datasets/dblp.h"
#include "datasets/tpch.h"

namespace osum::testing {

/// The cardinalities the suites have always used: Small fits unit tests
/// (datasets_test asserts these exact counts), Medium feeds the
/// integration-style statistical claims.
datasets::DblpConfig SmallDblpConfig();
datasets::DblpConfig MediumDblpConfig();
datasets::TpchConfig SmallTpchConfig();
datasets::TpchConfig MediumTpchConfig();

/// BuildDblp + ApplyDblpScores + a DataGraphBackend bound to the result —
/// the preamble repeated by every integration-style test. Immovable because
/// `backend` holds references into `d`.
struct ScoredDblp {
  explicit ScoredDblp(const datasets::DblpConfig& config, int ga = 1,
                      double damping = 0.85);
  ScoredDblp(const ScoredDblp&) = delete;
  ScoredDblp& operator=(const ScoredDblp&) = delete;

  datasets::Dblp d;
  core::DataGraphBackend backend;
};

/// TPC-H twin of ScoredDblp.
struct ScoredTpch {
  explicit ScoredTpch(const datasets::TpchConfig& config, int ga = 1,
                      double damping = 0.85);
  ScoredTpch(const ScoredTpch&) = delete;
  ScoredTpch& operator=(const ScoredTpch&) = delete;

  datasets::Tpch t;
  core::DataGraphBackend backend;
};

}  // namespace osum::testing

#endif  // OSUM_TESTS_DB_FIXTURES_H_
