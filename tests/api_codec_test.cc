// Wire codec guarantees: binary and JSON round trips are byte-identical
// (property-tested over real query results from both join back ends, plus
// empty and error responses), the v1 binary layout is pinned by a
// checked-in golden blob, hostile bytes decode to typed kCodecError
// statuses (never crashes), and the request/response API path produces
// responses byte-identical to the legacy SearchContext::Query output on
// DBLP and TPC-H.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/codec.h"
#include "api/query.h"
#include "core/os_backend.h"
#include "db_fixtures.h"
#include "search/search_context.h"
#include "util/rng.h"

namespace osum::api {
namespace {

using osum::testing::ScoredDblp;
using osum::testing::ScoredTpch;
using osum::testing::SmallDblpConfig;
using osum::testing::SmallTpchConfig;

search::SearchContext BuildDblpContext(const datasets::Dblp& d,
                                       core::OsBackend* backend) {
  std::vector<search::SearchContext::Subject> subjects;
  subjects.push_back({d.author, datasets::DblpAuthorGds(d)});
  subjects.push_back({d.paper, datasets::DblpPaperGds(d)});
  return search::SearchContext::Build(d.db, backend, std::move(subjects));
}

search::SearchContext BuildTpchContext(const datasets::Tpch& t,
                                       core::OsBackend* backend) {
  std::vector<search::SearchContext::Subject> subjects;
  subjects.push_back({t.customer, datasets::TpchCustomerGds(t)});
  subjects.push_back({t.supplier, datasets::TpchSupplierGds(t)});
  return search::SearchContext::Build(t.db, backend, std::move(subjects));
}

/// The full round-trip property for one response:
///   binary: Decode(Encode(r)) re-encodes to the same bytes and
///           fingerprints identically;
///   JSON:   FromJson(ToJson(r)) reproduces the canonical document
///           byte-for-byte and binary-encodes to the same bytes.
void ExpectRoundTrips(const QueryResponse& response) {
  std::string bytes = EncodeResponse(response);
  StatusOr<QueryResponse> decoded = DecodeResponse(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(EncodeResponse(*decoded), bytes);
  EXPECT_EQ(DeterministicResponseText(*decoded),
            DeterministicResponseText(response));
  EXPECT_EQ(decoded->status, response.status);
  EXPECT_EQ(decoded->stats.cache_hit, response.stats.cache_hit);
  EXPECT_EQ(decoded->stats.epoch, response.stats.epoch);
  EXPECT_DOUBLE_EQ(decoded->stats.compute_micros,
                   response.stats.compute_micros);

  std::string json = ResponseToJson(response);
  StatusOr<QueryResponse> from_json = ResponseFromJson(json);
  ASSERT_TRUE(from_json.ok()) << from_json.status().ToString();
  EXPECT_EQ(ResponseToJson(*from_json), json);
  EXPECT_EQ(EncodeResponse(*from_json), bytes);
  EXPECT_EQ(DeterministicResponseText(*from_json),
            DeterministicResponseText(response));
}

void ExpectRequestRoundTrips(const QueryRequest& request) {
  std::string bytes = EncodeRequest(request);
  StatusOr<QueryRequest> decoded = DecodeRequest(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(EncodeRequest(*decoded), bytes);
  EXPECT_EQ(decoded->keywords(), request.keywords());
  EXPECT_EQ(decoded->options().CacheKeyFragment(),
            request.options().CacheKeyFragment());
  EXPECT_EQ(decoded->deadline_micros(), request.deadline_micros());

  std::string json = RequestToJson(request);
  StatusOr<QueryRequest> from_json = RequestFromJson(json);
  ASSERT_TRUE(from_json.ok()) << from_json.status().ToString();
  EXPECT_EQ(RequestToJson(*from_json), json);
  EXPECT_EQ(EncodeRequest(*from_json), bytes);
  EXPECT_EQ(from_json->deadline_micros(), request.deadline_micros());
}

TEST(RequestCodec, RoundTripsEveryKnobCombination) {
  const core::SizeLAlgorithm algorithms[] = {
      core::SizeLAlgorithm::kDp,          core::SizeLAlgorithm::kDpEnumerate,
      core::SizeLAlgorithm::kBottomUp,    core::SizeLAlgorithm::kTopPath,
      core::SizeLAlgorithm::kTopPathMemo, core::SizeLAlgorithm::kBruteForce};
  const ResultRanking rankings[] = {ResultRanking::kSubjectImportance,
                                    ResultRanking::kSummaryImportance};
  size_t l = 0;
  for (core::SizeLAlgorithm algorithm : algorithms) {
    for (ResultRanking ranking : rankings) {
      for (bool prelim : {false, true}) {
        ++l;
        ExpectRequestRoundTrips(QueryRequest("christos faloutsos")
                                    .WithL(l)
                                    .WithMaxResults(l * 3 + 1)
                                    .WithAlgorithm(algorithm)
                                    .WithPrelim(prelim)
                                    .WithRanking(ranking));
      }
    }
  }
  // Keywords that need JSON escaping survive both forms.
  ExpectRequestRoundTrips(QueryRequest("with \"quotes\" and \\slashes\\ \n"));
  ExpectRequestRoundTrips(QueryRequest(""));
}

TEST(RequestCodec, JsonToleratesWhitespaceAndFieldOrder) {
  StatusOr<QueryRequest> request = RequestFromJson(R"({
    "kind": "query_request",
    "use_prelim": false,
    "keywords": "mining graphs",
    "l": 12, "max_results": 4, "algorithm": 1, "ranking": 1,
    "v": 1
  })");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->keywords(), "mining graphs");
  EXPECT_EQ(request->options().l, 12u);
  EXPECT_EQ(request->options().algorithm, core::SizeLAlgorithm::kDpEnumerate);
  EXPECT_EQ(request->options().ranking, ResultRanking::kSummaryImportance);
  EXPECT_FALSE(request->options().use_prelim);
}

// -- Cross-version: the deadline revision (wire v2) ------------------------

/// v1 blobs stay byte-identical to the pre-deadline format; a deadline
/// flips the encoder to v2, which is exactly the v1 layout plus one
/// trailing u64. Pinning the layout here keeps "v1 consumers keep working"
/// an observable property rather than a comment.
TEST(RequestCodecV2, DeadlineSelectsTheWireVersion) {
  std::string v1 = EncodeRequest(QueryRequest("faloutsos").WithL(6));
  ASSERT_GE(v1.size(), 7u);
  EXPECT_EQ(static_cast<uint8_t>(v1[4]), kWireVersion);
  EXPECT_EQ(static_cast<uint8_t>(v1[5]), 0);  // u16 version, little-endian

  std::string v2 = EncodeRequest(
      QueryRequest("faloutsos").WithL(6).WithDeadlineMicros(2'500));
  EXPECT_EQ(static_cast<uint8_t>(v2[4]), kWireVersionDeadline);
  EXPECT_EQ(static_cast<uint8_t>(v2[5]), 0);
  ASSERT_EQ(v2.size(), v1.size() + 8);
  EXPECT_EQ(v2.substr(0, 4), v1.substr(0, 4));  // magic
  // Everything after the version — kind byte through ranking byte — is
  // unchanged; only the deadline is appended.
  EXPECT_EQ(v2.substr(6, v1.size() - 6), v1.substr(6));
}

TEST(RequestCodecV2, DeadlineRequestsRoundTripInBothForms) {
  ExpectRequestRoundTrips(
      QueryRequest("christos faloutsos").WithL(9).WithDeadlineMicros(1));
  ExpectRequestRoundTrips(QueryRequest("databases")
                              .WithL(4)
                              .WithMaxResults(7)
                              .WithAlgorithm(core::SizeLAlgorithm::kTopPathMemo)
                              .WithPrelim(true)
                              .WithRanking(ResultRanking::kSummaryImportance)
                              .WithDeadlineMicros(2'500'000));
  // Largest deadline both forms can carry (JSON shares the usual 2^53
  // integer precision limit).
  ExpectRequestRoundTrips(QueryRequest("mining").WithDeadlineMicros(
      (uint64_t{1} << 53) - 1));

  // Binary alone carries the full u64 range.
  QueryRequest max_deadline =
      QueryRequest("x").WithDeadlineMicros(UINT64_MAX);
  StatusOr<QueryRequest> decoded =
      DecodeRequest(EncodeRequest(max_deadline));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->deadline_micros(), UINT64_MAX);
}

/// The version-pinned encoder refuses combinations the version cannot
/// express — refusing beats silent truncation (a v1 peer that never sees
/// the deadline would happily compute past it).
TEST(RequestCodecV2, VersionPinnedEncoderRefusesWhatItCannotCarry) {
  QueryRequest plain = QueryRequest("faloutsos").WithL(6);
  QueryRequest with_deadline =
      QueryRequest("faloutsos").WithL(6).WithDeadlineMicros(2'500);

  // Pinning to the version the request naturally selects is byte-identical
  // to the auto-picking encoder.
  StatusOr<std::string> at_v1 = EncodeRequestAt(plain, kWireVersion);
  ASSERT_TRUE(at_v1.ok()) << at_v1.status().ToString();
  EXPECT_EQ(*at_v1, EncodeRequest(plain));
  StatusOr<std::string> at_v2 =
      EncodeRequestAt(with_deadline, kWireVersionDeadline);
  ASSERT_TRUE(at_v2.ok()) << at_v2.status().ToString();
  EXPECT_EQ(*at_v2, EncodeRequest(with_deadline));

  // v1 cannot carry a deadline.
  EXPECT_EQ(EncodeRequestAt(with_deadline, kWireVersion).status().code(),
            StatusCode::kCodecError);
  // v2 requires one, so every value has exactly one canonical encoding.
  EXPECT_EQ(EncodeRequestAt(plain, kWireVersionDeadline).status().code(),
            StatusCode::kCodecError);
  // Unknown versions are typed errors, not aborts.
  EXPECT_EQ(EncodeRequestAt(plain, 0).status().code(),
            StatusCode::kCodecError);
  EXPECT_EQ(EncodeRequestAt(plain, 3).status().code(),
            StatusCode::kCodecError);
  EXPECT_EQ(EncodeRequestAt(with_deadline, 999).status().code(),
            StatusCode::kCodecError);
}

TEST(RequestCodecV2, ZeroDeadlineOnTheV2WireIsRejected) {
  std::string v2 =
      EncodeRequest(QueryRequest("faloutsos").WithL(6).WithDeadlineMicros(1));
  // Zero the trailing u64: a v2 blob claiming "no deadline". That value
  // already has a v1 encoding, so accepting this would give it two wire
  // forms and break the canonical-decode invariant the sweeps enforce.
  for (size_t i = v2.size() - 8; i < v2.size(); ++i) v2[i] = '\0';
  EXPECT_EQ(DecodeRequest(v2).status().code(), StatusCode::kCodecError);
}

/// Every strict prefix of a v2 blob is a typed error. The interesting
/// length is size-8: a v2 header over an exactly-v1-shaped body, i.e. the
/// truncation that silently drops the deadline — the decoder must notice
/// the version promised eight more bytes.
TEST(RequestCodecV2, EveryTruncationOfADeadlineBlobIsACodecError) {
  std::string bytes = EncodeRequest(
      QueryRequest("christos faloutsos").WithL(9).WithDeadlineMicros(77));
  for (size_t len = 0; len < bytes.size(); ++len) {
    StatusOr<QueryRequest> decoded = DecodeRequest(bytes.substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kCodecError) << len;
  }
}

/// JSON mirrors the binary versioning rule exactly: the field travels on
/// v2 documents only, and must be present and nonzero there.
TEST(RequestCodecV2, JsonVersioningMirrorsTheBinaryRule) {
  StatusOr<QueryRequest> parsed = RequestFromJson(R"({
    "v": 2, "kind": "query_request", "keywords": "mining graphs",
    "l": 12, "max_results": 4, "algorithm": 1, "use_prelim": false,
    "ranking": 1, "deadline_micros": 2500
  })");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->deadline_micros(), 2'500u);
  EXPECT_EQ(parsed->keywords(), "mining graphs");

  // A v1 document must not smuggle the field in — silently dropping it
  // would be the JSON twin of the binary truncation bug.
  EXPECT_EQ(RequestFromJson(
                R"({"v":1,"kind":"query_request","keywords":"x","l":5,)"
                R"("max_results":10,"algorithm":0,"use_prelim":true,)"
                R"("ranking":0,"deadline_micros":7})")
                .status()
                .code(),
            StatusCode::kCodecError);
  // A v2 document without the field is incomplete...
  EXPECT_EQ(RequestFromJson(
                R"({"v":2,"kind":"query_request","keywords":"x","l":5,)"
                R"("max_results":10,"algorithm":0,"use_prelim":true,)"
                R"("ranking":0})")
                .status()
                .code(),
            StatusCode::kCodecError);
  // ...and a zero deadline belongs on v1, not v2.
  EXPECT_EQ(RequestFromJson(
                R"({"v":2,"kind":"query_request","keywords":"x","l":5,)"
                R"("max_results":10,"algorithm":0,"use_prelim":true,)"
                R"("ranking":0,"deadline_micros":0})")
                .status()
                .code(),
            StatusCode::kCodecError);
}

TEST(ResponseCodec, RoundTripsRealResultsFromTheDataGraphBackend) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  for (const char* keywords :
       {"faloutsos", "databases", "christos faloutsos", "mining"}) {
    QueryResponse response =
        ctx.Execute(QueryRequest(keywords).WithL(8).WithMaxResults(4));
    ASSERT_TRUE(response.ok());
    ExpectRoundTrips(response);
  }
  // The complete-OS path (l = 0) and summary ranking, for shape variety.
  ExpectRoundTrips(ctx.Execute(QueryRequest("faloutsos").WithL(0)));
  ExpectRoundTrips(ctx.Execute(
      QueryRequest("databases").WithL(6).WithRanking(
          ResultRanking::kSummaryImportance)));
}

TEST(ResponseCodec, RoundTripsRealResultsFromTheDatabaseBackend) {
  ScoredTpch f(SmallTpchConfig());
  core::DatabaseBackend backend(f.t.db, f.t.links, /*per_select_micros=*/0.0);
  search::SearchContext ctx = BuildTpchContext(f.t, &backend);
  const rel::Relation& customers = f.t.db.relation(f.t.customer);
  for (rel::TupleId t = 0; t < 3 && t < customers.num_tuples(); ++t) {
    QueryResponse response = ctx.Execute(
        QueryRequest(customers.StringValue(t, 0)).WithL(10).WithMaxResults(3));
    ASSERT_TRUE(response.ok());
    ExpectRoundTrips(response);
  }
}

TEST(ResponseCodec, RoundTripsEmptyAndErrorResponses) {
  // A genuine negative answer: OK status, zero results.
  QueryResponse empty = QueryResponse::Success(
      std::make_shared<ResultList>(),
      QueryStats{/*cache_hit=*/false, /*negative=*/true,
                 /*compute_micros=*/7.25, /*epoch=*/2});
  ExpectRoundTrips(empty);

  // Failures (results null) encode as zero results and stay failures.
  QueryStats stats;
  stats.compute_micros = 0.5;
  ExpectRoundTrips(QueryResponse::Failure(
      Status::BackendError("join failed: simulated outage"), stats));
  ExpectRoundTrips(QueryResponse::Failure(
      Status::InvalidArgument("empty keyword set"), QueryStats{}));
  ExpectRoundTrips(QueryResponse::Failure(Status::Internal("bug"),
                                          QueryStats{}));
}

/// The handcrafted response the golden blob pins. Never change this
/// function together with golden/query_response_v1.hex in one commit
/// unless you are deliberately revving the wire format.
QueryResponse GoldenResponse() {
  QueryResult first;
  first.subject = Hit{2, 7};
  first.subject_importance = 1.5;
  first.os.AddRoot(0, 2, 7, 1.5);
  first.os.AddChild(0, 1, 3, 11, 0.75);
  first.os.AddChild(0, 2, 4, 12, 0.5);
  first.os.AddChild(1, 3, 3, 13, 0.25);
  first.selection.nodes = {0, 1, 3};
  first.selection.importance = 2.5;

  QueryResult second;
  second.subject = Hit{4, 1};
  second.subject_importance = 0.125;
  second.os.AddRoot(0, 4, 1, 0.125);
  second.selection.nodes = {0};
  second.selection.importance = 0.125;

  auto results = std::make_shared<ResultList>();
  results->push_back(std::move(first));
  results->push_back(std::move(second));
  QueryStats stats;
  stats.cache_hit = true;
  stats.compute_micros = 123.5;
  stats.epoch = 4;
  return QueryResponse::Success(std::move(results), stats);
}

std::string ReadGoldenHex() {
  std::ifstream in(std::string(OSUM_GOLDEN_DIR) + "/query_response_v1.hex");
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string hex = buf.str();
  // Strip whitespace/newlines so the file can be line-wrapped.
  std::string out;
  for (char c : hex) {
    if (c != '\n' && c != '\r' && c != ' ' && c != '\t') out.push_back(c);
  }
  return out;
}

TEST(ResponseCodec, GoldenBlobPinsTheV1Format) {
  QueryResponse golden = GoldenResponse();
  std::string expected_hex = ReadGoldenHex();
  ASSERT_FALSE(expected_hex.empty())
      << "missing golden file " << OSUM_GOLDEN_DIR
      << "/query_response_v1.hex";
  // Encoding today must reproduce the blob encoded when v1 was frozen...
  EXPECT_EQ(ToHex(EncodeResponse(golden)), expected_hex)
      << "the v1 wire format changed; if intentional, bump kWireVersion";
  // ...and decoding the checked-in bytes must reproduce the value.
  StatusOr<std::string> bytes = FromHex(expected_hex);
  ASSERT_TRUE(bytes.ok());
  StatusOr<QueryResponse> decoded = DecodeResponse(*bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(DeterministicResponseText(*decoded),
            DeterministicResponseText(golden));
  EXPECT_TRUE(decoded->stats.cache_hit);
  EXPECT_EQ(decoded->stats.epoch, 4u);
}

TEST(ResponseCodec, EveryTruncationDecodesToCodecErrorNotACrash) {
  std::string bytes = EncodeResponse(GoldenResponse());
  for (size_t len = 0; len < bytes.size(); ++len) {
    StatusOr<QueryResponse> decoded =
        DecodeResponse(std::string_view(bytes).substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix of length " << len;
    EXPECT_EQ(decoded.status().code(), StatusCode::kCodecError);
  }
  // Same property for requests.
  std::string request_bytes = EncodeRequest(QueryRequest("faloutsos"));
  for (size_t len = 0; len < request_bytes.size(); ++len) {
    EXPECT_FALSE(
        DecodeRequest(std::string_view(request_bytes).substr(0, len)).ok());
  }
}

TEST(ResponseCodec, RejectsCorruptHeadersAndMalformedPayloads) {
  std::string good = EncodeResponse(GoldenResponse());

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_EQ(DecodeResponse(bad_magic).status().code(),
            StatusCode::kCodecError);

  std::string bad_version = good;
  bad_version[4] = 9;  // version u16 lives at offsets 4..5
  EXPECT_EQ(DecodeResponse(bad_version).status().code(),
            StatusCode::kCodecError);

  std::string bad_kind = good;
  bad_kind[6] = 7;
  EXPECT_EQ(DecodeResponse(bad_kind).status().code(),
            StatusCode::kCodecError);

  // A request parsed as a response (and vice versa) is a kind mismatch.
  EXPECT_FALSE(DecodeResponse(EncodeRequest(QueryRequest("x"))).ok());
  EXPECT_FALSE(DecodeRequest(good).ok());

  std::string trailing = good + "junk";
  EXPECT_EQ(DecodeResponse(trailing).status().code(),
            StatusCode::kCodecError);

  // Unknown status code byte (first payload byte after the 7-byte header).
  std::string bad_status = good;
  bad_status[7] = 99;
  EXPECT_EQ(DecodeResponse(bad_status).status().code(),
            StatusCode::kCodecError);

  // A *valid* non-OK status combined with results violates the
  // QueryResponse invariant ("results are empty whenever !ok()") — no
  // encoder produces such bytes and the decoder must not materialize them.
  std::string failure_with_results = good;
  failure_with_results[7] =
      static_cast<char>(StatusCode::kBackendError);
  EXPECT_EQ(DecodeResponse(failure_with_results).status().code(),
            StatusCode::kCodecError);

  // Unknown enum ids in requests.
  std::string request = EncodeRequest(QueryRequest("x"));
  std::string bad_algorithm = request;
  bad_algorithm[request.size() - 3] = 42;
  EXPECT_EQ(DecodeRequest(bad_algorithm).status().code(),
            StatusCode::kCodecError);
  std::string bad_ranking = request;
  bad_ranking[request.size() - 1] = 2;
  EXPECT_EQ(DecodeRequest(bad_ranking).status().code(),
            StatusCode::kCodecError);
}

/// The systematic upgrade of the hand-picked corruption cases above: a
/// seeded sweep of single-byte XOR flips, truncations, and combinations
/// over valid binary-v1 blobs. The hard property — enforced byte-by-byte
/// under the ASan lane — is that hostile bytes NEVER crash the decoder:
/// every mutation either fails with a typed kCodecError, or (a flip that
/// landed inside a value byte, e.g. a keyword character or a double) it
/// decodes — in which case the canonical codec must re-encode it to
/// exactly the mutated bytes, proving the decoder read precisely what was
/// on the wire and invented nothing.
template <typename T, typename DecodeFn, typename EncodeFn>
void SweepHostileMutations(const std::string& bytes, DecodeFn decode,
                           EncodeFn encode, uint64_t seed, int iterations) {
  util::Rng rng(seed);
  int rejected = 0;
  auto check = [&](const std::string& mutated, const char* what, int i) {
    StatusOr<T> decoded = decode(mutated);  // must not crash
    if (!decoded.ok()) {
      ++rejected;
      ASSERT_EQ(decoded.status().code(), StatusCode::kCodecError)
          << what << " iteration " << i;
    } else {
      ASSERT_EQ(encode(*decoded), mutated)
          << what << " iteration " << i
          << ": decoder accepted bytes it cannot reproduce";
    }
  };
  for (int i = 0; i < iterations; ++i) {
    // Single-byte flip (never a no-op: delta is nonzero).
    std::string flipped = bytes;
    size_t pos = static_cast<size_t>(rng.NextU64(flipped.size()));
    flipped[pos] = static_cast<char>(
        static_cast<uint8_t>(flipped[pos]) ^
        static_cast<uint8_t>(1 + rng.NextU64(255)));
    ASSERT_NO_FATAL_FAILURE(check(flipped, "flip", i));

    // Random truncation of the valid blob: always a decode error (the
    // exhaustive-prefix test already pins this for every length; here it
    // composes with the flip coverage below).
    std::string truncated =
        bytes.substr(0, static_cast<size_t>(rng.NextU64(bytes.size())));
    StatusOr<T> decoded_truncated = decode(truncated);
    ASSERT_FALSE(decoded_truncated.ok()) << "truncation iteration " << i;
    ASSERT_EQ(decoded_truncated.status().code(), StatusCode::kCodecError);

    // Flip + truncate: a flipped length field plus a matching truncation
    // is the classic heap-overread recipe — the reader must bounds-check.
    std::string both = flipped.substr(
        0, static_cast<size_t>(1 + rng.NextU64(flipped.size())));
    ASSERT_NO_FATAL_FAILURE(check(both, "flip+truncate", i));

    // Flip + garbage tail: trailing bytes must stay fatal even when the
    // payload itself was perturbed.
    std::string extended = flipped;
    extended.push_back(static_cast<char>(rng.NextU64(256)));
    ASSERT_NO_FATAL_FAILURE(check(extended, "flip+extend", i));
  }
  // The sweep must really be exercising the error paths, not vacuously
  // decoding everything.
  EXPECT_GT(rejected, iterations / 2);
}

TEST(ResponseCodec, HostileMutationSweepOverGoldenResponse) {
  SweepHostileMutations<QueryResponse>(
      EncodeResponse(GoldenResponse()),
      [](const std::string& b) { return DecodeResponse(b); },
      [](const QueryResponse& r) { return EncodeResponse(r); },
      /*seed=*/0xC0DEC0DE, /*iterations=*/1500);
}

TEST(ResponseCodec, HostileMutationSweepOverEmptyAndErrorResponses) {
  QueryResponse empty = QueryResponse::Success(
      std::make_shared<ResultList>(), QueryStats{});
  SweepHostileMutations<QueryResponse>(
      EncodeResponse(empty),
      [](const std::string& b) { return DecodeResponse(b); },
      [](const QueryResponse& r) { return EncodeResponse(r); },
      /*seed=*/0xBEEF, /*iterations=*/800);
  QueryResponse failure = QueryResponse::Failure(
      Status::BackendError("simulated outage"), QueryStats{});
  SweepHostileMutations<QueryResponse>(
      EncodeResponse(failure),
      [](const std::string& b) { return DecodeResponse(b); },
      [](const QueryResponse& r) { return EncodeResponse(r); },
      /*seed=*/0xFEED, /*iterations=*/800);
}

TEST(RequestCodec, HostileMutationSweepOverRequests) {
  SweepHostileMutations<QueryRequest>(
      EncodeRequest(QueryRequest("christos faloutsos").WithL(9)),
      [](const std::string& b) { return DecodeRequest(b); },
      [](const QueryRequest& r) { return EncodeRequest(r); },
      /*seed=*/0x5EED, /*iterations=*/1500);
}

/// Trailing bytes after a complete document are ALWAYS fatal — no
/// flip-dependent escape hatch like the sweep's flip+extend case. This is
/// the property the TCP front end leans on: framing delivers exact payload
/// boundaries, so any decoder that silently ignored a tail would mask
/// framing bugs (concatenated or mis-split documents) as valid traffic.
template <typename DecodeFn>
void SweepAppendedBytes(const std::string& bytes, DecodeFn decode,
                        uint64_t seed) {
  util::Rng rng(seed);
  for (int k = 1; k <= 64; ++k) {
    std::string extended = bytes;
    for (int j = 0; j < k; ++j) {
      extended.push_back(static_cast<char>(rng.NextU64(256)));
    }
    auto decoded = decode(extended);
    ASSERT_FALSE(decoded.ok()) << k << " appended bytes decoded";
    ASSERT_EQ(decoded.status().code(), StatusCode::kCodecError) << k;
  }
  // Two complete documents back to back — the classic deframing bug —
  // must not decode as the first document.
  auto doubled = decode(bytes + bytes);
  ASSERT_FALSE(doubled.ok());
  EXPECT_EQ(doubled.status().code(), StatusCode::kCodecError);
  // A single appended NUL (easy to produce with a sloppy buffer resize).
  EXPECT_EQ(decode(bytes + std::string(1, '\0')).status().code(),
            StatusCode::kCodecError);
}

TEST(ResponseCodec, AppendedBytesAreAlwaysFatal) {
  auto decode = [](const std::string& b) { return DecodeResponse(b); };
  SweepAppendedBytes(EncodeResponse(GoldenResponse()), decode,
                     /*seed=*/0x7A11);
  SweepAppendedBytes(
      EncodeResponse(QueryResponse::Success(std::make_shared<ResultList>(),
                                            QueryStats{})),
      decode, /*seed=*/0x7A12);
  SweepAppendedBytes(
      EncodeResponse(QueryResponse::Failure(
          Status::BackendError("simulated outage"), QueryStats{})),
      decode, /*seed=*/0x7A13);
}

TEST(RequestCodec, AppendedBytesAreAlwaysFatal) {
  auto decode = [](const std::string& b) { return DecodeRequest(b); };
  SweepAppendedBytes(EncodeRequest(QueryRequest("christos faloutsos")),
                     decode, /*seed=*/0x7A14);
  SweepAppendedBytes(
      EncodeRequest(QueryRequest("databases").WithL(40).WithMaxResults(8)),
      decode, /*seed=*/0x7A15);
}

/// The seeded sweep over deadline-carrying (v2) blobs. Flips over the
/// trailing u64 either land on another valid deadline (which must
/// re-encode byte-identically) or — when they zero it or clip the version
/// byte — must come back as typed kCodecError; truncations that shave the
/// deadline off a v2 header must never decode as a v1 request.
TEST(RequestCodecV2, HostileMutationSweepOverDeadlineRequests) {
  SweepHostileMutations<QueryRequest>(
      EncodeRequest(QueryRequest("christos faloutsos")
                        .WithL(9)
                        .WithDeadlineMicros(2'500'000)),
      [](const std::string& b) { return DecodeRequest(b); },
      [](const QueryRequest& r) { return EncodeRequest(r); },
      /*seed=*/0x5EED2, /*iterations=*/1500);
  // A single-byte deadline (1 µs) keeps seven of the trailing eight bytes
  // zero, so flips there concentrate on the valid/invalid boundary.
  SweepHostileMutations<QueryRequest>(
      EncodeRequest(QueryRequest("databases").WithL(4).WithDeadlineMicros(1)),
      [](const std::string& b) { return DecodeRequest(b); },
      [](const QueryRequest& r) { return EncodeRequest(r); },
      /*seed=*/0x5EED3, /*iterations=*/800);
}

TEST(RequestCodecV2, AppendedBytesAreAlwaysFatal) {
  auto decode = [](const std::string& b) { return DecodeRequest(b); };
  SweepAppendedBytes(EncodeRequest(QueryRequest("christos faloutsos")
                                       .WithL(9)
                                       .WithDeadlineMicros(2'500'000)),
                     decode, /*seed=*/0x7A16);
}

TEST(ResponseCodec, RejectsMalformedJson) {
  EXPECT_EQ(ResponseFromJson("").status().code(), StatusCode::kCodecError);
  EXPECT_FALSE(ResponseFromJson("{").ok());
  EXPECT_FALSE(ResponseFromJson("[1,2,3]").ok());
  EXPECT_FALSE(ResponseFromJson(R"({"v":1,"kind":"query_request"})").ok());
  EXPECT_FALSE(ResponseFromJson(R"({"v":2,"kind":"query_response"})").ok());
  EXPECT_FALSE(RequestFromJson(R"({"v":1,"kind":"query_request"})").ok())
      << "missing fields must not default silently";
  EXPECT_FALSE(
      RequestFromJson(
          R"({"v":1,"kind":"query_request","keywords":"x","l":1,)"
          R"("max_results":2,"algorithm":17,"use_prelim":true,"ranking":0})")
          .ok());
  // os nodes whose parent pointers do not form a BFS arena are rejected.
  EXPECT_FALSE(
      ResponseFromJson(
          R"({"v":1,"kind":"query_response",)"
          R"("status":{"code":0,"message":""},)"
          R"("stats":{"cache_hit":false,"compute_us":0,"epoch":0},)"
          R"("results":[{"subject":{"relation":0,"tuple":0},)"
          R"("importance":1,"os":[[-1,0,0,0,0,1],[5,0,0,1,1,1]],)"
          R"("selection":{"importance":1,"nodes":[0]}}]})")
          .ok());
}

// Numbers a double can hold but an integer field cannot (1e300, 1e999 ==
// inf, negatives, fractions) must come back as kCodecError — converting
// them blindly would be undefined behavior, not just wrong data.
TEST(ResponseCodec, RejectsOutOfRangeJsonIntegers) {
  auto response_with = [](std::string_view stats, std::string_view results) {
    return std::string(R"({"v":1,"kind":"query_response",)") +
           R"("status":{"code":0,"message":""},"stats":)" +
           std::string(stats) + R"(,"results":)" + std::string(results) + "}";
  };
  const std::string ok_stats =
      R"({"cache_hit":false,"compute_us":0,"epoch":0})";
  // Hostile epoch: 1e300 is integral and non-negative but far over 2^64.
  EXPECT_EQ(ResponseFromJson(response_with(
                                 R"({"cache_hit":false,"compute_us":0,)"
                                 R"("epoch":1e300})",
                                 "[]"))
                .status()
                .code(),
            StatusCode::kCodecError);
  // 1e999 overflows strtod to +inf; floor(inf) == inf must not pass.
  EXPECT_EQ(ResponseFromJson(response_with(
                                 R"({"cache_hit":false,"compute_us":0,)"
                                 R"("epoch":1e999})",
                                 "[]"))
                .status()
                .code(),
            StatusCode::kCodecError);
  // Hostile os-node tuple id and subject ids.
  EXPECT_FALSE(ResponseFromJson(response_with(
                                    ok_stats,
                                    R"([{"subject":{"relation":0,"tuple":0},)"
                                    R"("importance":1,)"
                                    R"("os":[[-1,0,0,1e300,0,1]],)"
                                    R"("selection":{"importance":1,)"
                                    R"("nodes":[0]}}])"))
                   .ok());
  EXPECT_FALSE(ResponseFromJson(response_with(
                                    ok_stats,
                                    R"([{"subject":{"relation":1e300,)"
                                    R"("tuple":0},"importance":1,)"
                                    R"("os":[[-1,0,0,0,0,1]],)"
                                    R"("selection":{"importance":1,)"
                                    R"("nodes":[0]}}])"))
                   .ok());
  // Fractional integers are also rejected.
  EXPECT_FALSE(RequestFromJson(
                   R"({"v":1,"kind":"query_request","keywords":"x",)"
                   R"("l":1.5,"max_results":2,"algorithm":0,)"
                   R"("use_prelim":true,"ranking":0})")
                   .ok());
  // JSON failure responses carrying results violate the response
  // invariant, mirroring the binary decoder.
  EXPECT_EQ(ResponseFromJson(
                std::string(R"({"v":1,"kind":"query_response",)") +
                R"("status":{"code":2,"message":"boom"},"stats":)" + ok_stats +
                R"(,"results":[{"subject":{"relation":0,"tuple":0},)"
                R"("importance":1,"os":[[-1,0,0,0,0,1]],)"
                R"("selection":{"importance":1,"nodes":[0]}}]})")
                .status()
                .code(),
            StatusCode::kCodecError);
}

TEST(Hex, RoundTripsAndRejectsGarbage) {
  std::string bytes("\x00\x7f\xff\x10 binary", 9);
  StatusOr<std::string> back = FromHex(ToHex(bytes));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, bytes);
  EXPECT_FALSE(FromHex("abc").ok());   // odd length
  EXPECT_FALSE(FromHex("zz").ok());    // non-hex
  EXPECT_TRUE(FromHex("AbCd").ok());   // case-insensitive
}

// The headline migration invariant (acceptance): a response produced via
// the request/response API is byte-identical to the legacy
// SearchContext::Query output — on both back ends, on both datasets.
TEST(ApiEquivalence, ExecuteMatchesLegacyQueryOnDblpBothBackends) {
  ScoredDblp f(SmallDblpConfig());
  core::DatabaseBackend db_backend(f.d.db, f.d.links,
                                   /*per_select_micros=*/0.0);
  search::SearchContext graph_ctx = BuildDblpContext(f.d, &f.backend);
  search::SearchContext db_ctx = BuildDblpContext(f.d, &db_backend);
  search::QueryOptions options;
  options.l = 9;
  options.max_results = 4;
  for (const search::SearchContext* ctx : {&graph_ctx, &db_ctx}) {
    for (const char* keywords : {"faloutsos", "databases", "nosuchkeyword"}) {
      QueryResponse response =
          ctx->Execute(QueryRequest(keywords).WithOptions(options));
      ASSERT_TRUE(response.ok());
      EXPECT_FALSE(response.stats.cache_hit);
      EXPECT_EQ(DeterministicResultText(response.result_list()),
                DeterministicResultText(ctx->Query(keywords, options)))
          << keywords;
    }
  }
}

TEST(ApiEquivalence, ExecuteMatchesLegacyQueryOnTpch) {
  ScoredTpch f(SmallTpchConfig());
  search::SearchContext ctx = BuildTpchContext(f.t, &f.backend);
  const rel::Relation& customers = f.t.db.relation(f.t.customer);
  for (rel::TupleId t = 0; t < 3 && t < customers.num_tuples(); ++t) {
    std::string keywords = customers.StringValue(t, 0);
    QueryResponse response =
        ctx.Execute(QueryRequest(keywords).WithL(10));
    ASSERT_TRUE(response.ok());
    search::QueryOptions options;
    options.l = 10;
    EXPECT_EQ(DeterministicResultText(response.result_list()),
              DeterministicResultText(ctx.Query(keywords, options)))
        << keywords;
  }
}

TEST(ApiEquivalence, ExecuteTurnsFailuresIntoStatuses) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  // Invalid request: typed error, not an exception or empty answer.
  QueryResponse invalid = ctx.Execute(QueryRequest(""));
  EXPECT_EQ(invalid.status.code(), StatusCode::kInvalidArgument);
  // A no-hit query is an OK empty answer — now distinguishable.
  QueryResponse miss = ctx.Execute(QueryRequest("zzzznosuchtoken"));
  EXPECT_TRUE(miss.ok());
  EXPECT_TRUE(miss.result_list().empty());
}

TEST(ApiEquivalence, ExecuteBatchMatchesSerialExecute) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  std::vector<QueryRequest> requests;
  for (const char* keywords : {"faloutsos", "databases", "mining", "",
                               "graphs", "faloutsos"}) {
    requests.push_back(QueryRequest(keywords).WithL(7).WithMaxResults(3));
  }
  std::vector<QueryResponse> batched = ctx.ExecuteBatch(requests, 4);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    QueryResponse serial = ctx.Execute(requests[i]);
    EXPECT_EQ(batched[i].status, serial.status) << i;
    EXPECT_EQ(DeterministicResultText(batched[i].result_list()),
              DeterministicResultText(serial.result_list()))
        << i;
  }
  // The empty-keyword request failed alone; its neighbors succeeded.
  EXPECT_EQ(batched[3].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(batched[2].ok());
}

}  // namespace
}  // namespace osum::api
