// Tests for the inverted index and the end-to-end size-l search engine.
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/os_backend.h"
#include "datasets/dblp.h"
#include "search/engine.h"
#include "search/inverted_index.h"
#include "search/search_context.h"

namespace osum::search {
namespace {

using datasets::ApplyDblpScores;
using datasets::BuildDblp;
using datasets::Dblp;
using datasets::DblpAuthorGds;
using datasets::DblpConfig;
using datasets::DblpPaperGds;

struct SearchFixture {
  Dblp d;
  core::DataGraphBackend backend;
  SizeLSearchEngine engine;

  SearchFixture()
      : d(MakeDblp()),
        backend(d.db, d.links, d.data_graph),
        engine(d.db, &backend) {
    engine.RegisterSubject(d.author, DblpAuthorGds(d));
    engine.RegisterSubject(d.paper, DblpPaperGds(d));
    engine.BuildIndex();
  }

  static Dblp MakeDblp() {
    DblpConfig c;
    c.num_authors = 200;
    c.num_papers = 800;
    c.num_conferences = 10;
    Dblp d = BuildDblp(c);
    ApplyDblpScores(&d, 1, 0.85);
    return d;
  }
};

TEST(InvertedIndex, SingleKeywordFindsAllFaloutsos) {
  SearchFixture f;
  InvertedIndex index = InvertedIndex::Build(f.d.db, {f.d.author});
  auto hits = index.SearchQuery("Faloutsos");
  EXPECT_EQ(hits.size(), 3u);  // the three brothers
  for (const Hit& h : hits) EXPECT_EQ(h.relation, f.d.author);
}

TEST(InvertedIndex, AndSemanticsNarrow) {
  SearchFixture f;
  InvertedIndex index = InvertedIndex::Build(f.d.db, {f.d.author});
  auto christos = index.SearchQuery("christos faloutsos");
  ASSERT_EQ(christos.size(), 1u);
  EXPECT_EQ(christos[0].tuple, 0u);
}

TEST(InvertedIndex, CaseInsensitive) {
  SearchFixture f;
  InvertedIndex index = InvertedIndex::Build(f.d.db, {f.d.author});
  EXPECT_EQ(index.SearchQuery("FALOUTSOS").size(), 3u);
}

TEST(InvertedIndex, MissingKeywordYieldsNothing) {
  SearchFixture f;
  InvertedIndex index = InvertedIndex::Build(f.d.db, {f.d.author});
  EXPECT_TRUE(index.SearchQuery("nonexistentkeyword").empty());
  EXPECT_TRUE(index.SearchQuery("").empty());
}

TEST(InvertedIndex, HiddenColumnsNotIndexed) {
  SearchFixture f;
  // Paper fk columns are hidden; only titles should be searchable.
  InvertedIndex index = InvertedIndex::Build(f.d.db, {f.d.paper});
  EXPECT_GT(index.num_terms(), 0u);
  auto hits = index.SearchQuery("databases");
  EXPECT_GT(hits.size(), 0u);
}

TEST(Engine, Q1ReturnsThreeRankedSizeLOss) {
  SearchFixture f;
  QueryOptions options;
  options.l = 15;
  auto results = f.engine.Query("Faloutsos", options);
  ASSERT_EQ(results.size(), 3u);
  // Ranked by global importance, descending.
  EXPECT_GE(results[0].subject_importance, results[1].subject_importance);
  EXPECT_GE(results[1].subject_importance, results[2].subject_importance);
  // Christos (most prolific by construction) ranks first.
  EXPECT_EQ(results[0].subject.tuple, 0u);
  for (const QueryResult& r : results) {
    EXPECT_TRUE(core::IsValidSelection(r.os, r.selection, options.l));
  }
}

TEST(Engine, SizeLSelectionRespectsL) {
  SearchFixture f;
  for (size_t l : {5u, 10u, 30u}) {
    QueryOptions options;
    options.l = l;
    auto results = f.engine.Query("christos faloutsos", options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].selection.nodes.size(),
              std::min(l, results[0].os.size()));
  }
}

TEST(Engine, CompleteOsWhenLZero) {
  SearchFixture f;
  QueryOptions options;
  options.l = 0;
  auto results = f.engine.Query("christos faloutsos", options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].selection.nodes.size(), results[0].os.size());
  EXPECT_GT(results[0].os.size(), 100u);  // Christos's OS is large
}

TEST(Engine, MaxResultsTruncates) {
  SearchFixture f;
  QueryOptions options;
  options.max_results = 2;
  auto results = f.engine.Query("Faloutsos", options);
  EXPECT_EQ(results.size(), 2u);
}

TEST(Engine, PrelimAndCompleteAgreeOnSelectionQuality) {
  SearchFixture f;
  QueryOptions with_prelim, without;
  with_prelim.l = without.l = 12;
  with_prelim.use_prelim = true;
  without.use_prelim = false;
  with_prelim.algorithm = without.algorithm = core::SizeLAlgorithm::kDp;
  auto a = f.engine.Query("christos faloutsos", with_prelim);
  auto b = f.engine.Query("christos faloutsos", without);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  // Prelim may lose a little quality but not much (Section 6.2: <= 4%).
  EXPECT_GE(a[0].selection.importance, 0.9 * b[0].selection.importance);
}

TEST(Engine, MultiSubjectSearchCoversPapers) {
  SearchFixture f;
  auto results = f.engine.Query("power law");
  EXPECT_GT(results.size(), 0u);
  bool has_paper = false;
  for (const QueryResult& r : results) {
    has_paper |= r.subject.relation == f.d.paper;
  }
  EXPECT_TRUE(has_paper);
}

TEST(Engine, RenderShowsSubjectAndIndentation) {
  SearchFixture f;
  QueryOptions options;
  options.l = 8;
  auto results = f.engine.Query("christos faloutsos", options);
  ASSERT_EQ(results.size(), 1u);
  std::string text = f.engine.Render(results[0]);
  EXPECT_NE(text.find("Author: Christos Faloutsos"), std::string::npos);
  EXPECT_NE(text.find("..Paper:"), std::string::npos);
}

TEST(Engine, RegisterSubjectAfterBuildIndexThrows) {
  // The documented foot-gun, now loud: re-registering would destroy the
  // live SearchContext under anyone who borrowed it (worker threads,
  // serve::QueryService), so the engine refuses.
  SearchFixture f;
  const SearchContext* before = &f.engine.context();
  EXPECT_THROW(f.engine.RegisterSubject(f.d.author, DblpAuthorGds(f.d)),
               std::logic_error);
  // The context survived untouched and still answers queries.
  EXPECT_EQ(&f.engine.context(), before);
  EXPECT_FALSE(f.engine.Query("faloutsos").empty());
}

TEST(SearchContext, TakeSubjectsFeedsAFreshBuild) {
  // The documented rebuild flow (see search_context.h): take the subjects
  // out of a context you are about to discard, extend the set, and Build a
  // fresh richer context from them.
  Dblp d = SearchFixture::MakeDblp();
  core::DataGraphBackend backend(d.db, d.links, d.data_graph);
  std::vector<SearchContext::Subject> subjects;
  subjects.push_back({d.author, DblpAuthorGds(d)});
  SearchContext old_ctx =
      SearchContext::Build(d.db, &backend, std::move(subjects));
  ASSERT_FALSE(old_ctx.Query("faloutsos").empty());

  std::vector<SearchContext::Subject> taken =
      std::move(old_ctx).TakeSubjects();
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].relation, d.author);
  // The drained context is left empty, as documented.
  EXPECT_THROW(old_ctx.GdsFor(d.author), std::out_of_range);

  taken.push_back({d.paper, DblpPaperGds(d)});
  SearchContext fresh =
      SearchContext::Build(d.db, &backend, std::move(taken));
  // The moved-out GDS still answers in the rebuilt context, and the
  // extension genuinely widened coverage to paper subjects.
  EXPECT_FALSE(fresh.Query("faloutsos").empty());
  bool has_paper = false;
  for (const QueryResult& r : fresh.Query("power law")) {
    has_paper |= r.subject.relation == d.paper;
  }
  EXPECT_TRUE(has_paper);
}

TEST(CanonicalQueryKey, NormalizesKeywordSetAndSeparatesOptions) {
  QueryOptions a;  // defaults
  // Case, order, duplicates and separators collapse onto one key.
  EXPECT_EQ(CanonicalQueryKey("Christos  Faloutsos", a),
            CanonicalQueryKey("faloutsos, christos CHRISTOS", a));
  // Distinct keyword sets split.
  EXPECT_NE(CanonicalQueryKey("christos", a),
            CanonicalQueryKey("christos faloutsos", a));
  // Every result-affecting knob splits the key.
  QueryOptions b = a;
  b.l = a.l + 1;
  EXPECT_NE(CanonicalQueryKey("x", a), CanonicalQueryKey("x", b));
  b = a;
  b.max_results = a.max_results + 1;
  EXPECT_NE(CanonicalQueryKey("x", a), CanonicalQueryKey("x", b));
  b = a;
  b.algorithm = core::SizeLAlgorithm::kBottomUp;
  EXPECT_NE(CanonicalQueryKey("x", a), CanonicalQueryKey("x", b));
  b = a;
  b.use_prelim = !a.use_prelim;
  EXPECT_NE(CanonicalQueryKey("x", a), CanonicalQueryKey("x", b));
  b = a;
  b.ranking = ResultRanking::kSummaryImportance;
  EXPECT_NE(CanonicalQueryKey("x", a), CanonicalQueryKey("x", b));
}

TEST(Engine, AlgorithmsAllProduceValidResults) {
  SearchFixture f;
  for (auto algo : {core::SizeLAlgorithm::kDp, core::SizeLAlgorithm::kBottomUp,
                    core::SizeLAlgorithm::kTopPath,
                    core::SizeLAlgorithm::kTopPathMemo}) {
    QueryOptions options;
    options.l = 10;
    options.algorithm = algo;
    auto results = f.engine.Query("Faloutsos", options);
    ASSERT_EQ(results.size(), 3u) << core::AlgorithmName(algo);
    for (const QueryResult& r : results) {
      EXPECT_TRUE(core::IsValidSelection(r.os, r.selection, options.l))
          << core::AlgorithmName(algo);
    }
  }
}

}  // namespace
}  // namespace osum::search
