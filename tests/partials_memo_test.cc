// core::PartialsMemo: the bounded, epoch-aware per-(subject, l) memo the
// search query path consults (ISSUE 10). Unit tests pin the LRU/byte
// budgets, the epoch discipline (a bump clears the memo AND kills
// in-flight inserts), and the disabled no-op mode; the integration tests
// pin the load-bearing claim — memo-on and memo-off query answers are
// byte-identical through DeterministicResultText, so the memo is
// observable only through its own counters.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/codec.h"
#include "core/partials_memo.h"
#include "db_fixtures.h"
#include "search/search_context.h"

namespace osum {
namespace {

using api::DeterministicResultText;
using core::PartialPtr;
using core::PartialsMemo;
using core::PartialsMemoMetrics;
using core::PartialsMemoOptions;
using core::PartialSynopsis;
using osum::testing::ScoredDblp;
using osum::testing::SmallDblpConfig;

PartialPtr MakePartial(size_t approx_bytes) {
  auto p = std::make_shared<PartialSynopsis>();
  p->approx_bytes = approx_bytes;
  return p;
}

// Built with += (not operator+) to sidestep a GCC 12 -Wrestrict false
// positive on short-string concatenation.
std::string NumberedKey(int i) {
  std::string key = "k";
  key += std::to_string(i);
  return key;
}

TEST(PartialsMemoTest, LookupReturnsTheInsertedValue) {
  PartialsMemo memo;
  uint64_t epoch = 99;
  EXPECT_EQ(memo.Lookup("k1", &epoch), nullptr);
  EXPECT_EQ(epoch, 0u);

  PartialPtr value = MakePartial(100);
  EXPECT_TRUE(memo.Insert("k1", value, epoch));
  EXPECT_EQ(memo.Lookup("k1"), value);

  PartialsMemoMetrics m = memo.metrics();
  EXPECT_EQ(m.hits, 1u);
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.inserts, 1u);
  EXPECT_EQ(m.entries, 1u);
  EXPECT_EQ(m.approx_bytes, 100u);
}

TEST(PartialsMemoTest, EntryBudgetEvictsLeastRecentlyUsed) {
  PartialsMemoOptions options;
  options.max_entries = 3;
  PartialsMemo memo(options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(memo.Insert(NumberedKey(i), MakePartial(10), 0));
  }
  PartialsMemoMetrics m = memo.metrics();
  EXPECT_EQ(m.entries, 3u);
  EXPECT_EQ(m.evictions, 2u);
  EXPECT_EQ(m.approx_bytes, 30u);
  // The two oldest are gone; the three youngest survive.
  EXPECT_EQ(memo.Lookup("k0"), nullptr);
  EXPECT_EQ(memo.Lookup("k1"), nullptr);
  EXPECT_NE(memo.Lookup("k2"), nullptr);
  EXPECT_NE(memo.Lookup("k3"), nullptr);
  EXPECT_NE(memo.Lookup("k4"), nullptr);
}

TEST(PartialsMemoTest, LookupRefreshesLruPosition) {
  PartialsMemoOptions options;
  options.max_entries = 2;
  PartialsMemo memo(options);
  ASSERT_TRUE(memo.Insert("old", MakePartial(10), 0));
  ASSERT_TRUE(memo.Insert("mid", MakePartial(10), 0));
  // Touch "old" so "mid" becomes the eviction victim.
  ASSERT_NE(memo.Lookup("old"), nullptr);
  ASSERT_TRUE(memo.Insert("new", MakePartial(10), 0));
  EXPECT_NE(memo.Lookup("old"), nullptr);
  EXPECT_EQ(memo.Lookup("mid"), nullptr);
  EXPECT_NE(memo.Lookup("new"), nullptr);
}

TEST(PartialsMemoTest, ByteBudgetEvictsButKeepsTheNewestEntry) {
  PartialsMemoOptions options;
  options.max_bytes = 100;
  PartialsMemo memo(options);
  ASSERT_TRUE(memo.Insert("a", MakePartial(60), 0));
  ASSERT_TRUE(memo.Insert("b", MakePartial(60), 0));  // evicts "a"
  PartialsMemoMetrics m = memo.metrics();
  EXPECT_EQ(m.entries, 1u);
  EXPECT_EQ(m.evictions, 1u);
  EXPECT_EQ(m.approx_bytes, 60u);
  EXPECT_EQ(memo.Lookup("a"), nullptr);

  // One oversized synopsis may exceed the whole budget, but the insert
  // must not be a self-defeating no-op: the newest entry always survives.
  ASSERT_TRUE(memo.Insert("huge", MakePartial(10'000), 0));
  m = memo.metrics();
  EXPECT_EQ(m.entries, 1u);
  EXPECT_NE(memo.Lookup("huge"), nullptr);
}

TEST(PartialsMemoTest, BumpEpochClearsEntriesAndKillsInFlightInserts) {
  PartialsMemo memo;
  uint64_t epoch = 0;
  memo.Lookup("k1", &epoch);  // miss; captures epoch 0
  ASSERT_TRUE(memo.Insert("k1", MakePartial(10), epoch));

  memo.BumpEpoch();
  PartialsMemoMetrics m = memo.metrics();
  EXPECT_EQ(m.entries, 0u);
  EXPECT_EQ(m.epoch, 1u);
  EXPECT_EQ(memo.Lookup("k1"), nullptr);

  // An insert computed against the pre-bump epoch must be discarded, not
  // resurrected: a stale partial can never decorate a post-rebind answer.
  EXPECT_FALSE(memo.Insert("k1", MakePartial(10), epoch));
  m = memo.metrics();
  EXPECT_EQ(m.entries, 0u);
  EXPECT_EQ(m.discarded_inserts, 1u);
  EXPECT_EQ(memo.Lookup("k1"), nullptr);
}

TEST(PartialsMemoTest, DuplicateInsertLosesToTheExistingEntry) {
  PartialsMemo memo;
  PartialPtr first = MakePartial(10);
  ASSERT_TRUE(memo.Insert("k", first, 0));
  EXPECT_FALSE(memo.Insert("k", MakePartial(10), 0));
  PartialsMemoMetrics m = memo.metrics();
  EXPECT_EQ(m.inserts, 1u);
  EXPECT_EQ(m.discarded_inserts, 1u);
  EXPECT_EQ(memo.Lookup("k"), first);
}

TEST(PartialsMemoTest, ConfigureShrinkEvictsDownToTheNewBudget) {
  PartialsMemo memo;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(memo.Insert(NumberedKey(i), MakePartial(10), 0));
  }
  PartialsMemoOptions smaller;
  smaller.max_entries = 2;
  memo.Configure(smaller);
  PartialsMemoMetrics m = memo.metrics();
  EXPECT_EQ(m.entries, 2u);
  EXPECT_EQ(m.evictions, 3u);
  EXPECT_NE(memo.Lookup("k4"), nullptr);
  EXPECT_EQ(memo.Lookup("k0"), nullptr);
}

TEST(PartialsMemoTest, DisabledMemoIsInert) {
  PartialsMemo memo;
  ASSERT_TRUE(memo.Insert("k", MakePartial(10), 0));

  PartialsMemoOptions off;
  off.enabled = false;
  memo.Configure(off);
  EXPECT_FALSE(memo.enabled());
  PartialsMemoMetrics m = memo.metrics();
  EXPECT_EQ(m.entries, 0u);  // disabling flushes

  // Lookups miss without counting, inserts are no-ops.
  EXPECT_EQ(memo.Lookup("k"), nullptr);
  EXPECT_FALSE(memo.Insert("k", MakePartial(10), 0));
  m = memo.metrics();
  EXPECT_EQ(m.misses, 0u);
  EXPECT_EQ(m.inserts, 1u);  // only the pre-disable insert
  EXPECT_EQ(m.entries, 0u);
}

// ---------------------------------------------------------------------------
// SearchContext integration: the memo must be invisible in results.

search::SearchContext BuildDblpContext(const datasets::Dblp& d,
                                       core::OsBackend* backend) {
  std::vector<search::SearchContext::Subject> subjects;
  subjects.push_back({d.author, datasets::DblpAuthorGds(d)});
  subjects.push_back({d.paper, datasets::DblpPaperGds(d)});
  return search::SearchContext::Build(d.db, backend, std::move(subjects));
}

TEST(PartialsMemoIntegration, MemoOnMatchesMemoOffByteForByte) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext with_memo = BuildDblpContext(f.d, &f.backend);
  search::SearchContext without_memo = BuildDblpContext(f.d, &f.backend);
  PartialsMemoOptions off;
  off.enabled = false;
  without_memo.partials_memo().Configure(off);

  search::QueryOptions options;
  options.l = 5;
  for (const char* keywords :
       {"databases", "faloutsos", "christos faloutsos"}) {
    SCOPED_TRACE(keywords);
    std::string golden =
        DeterministicResultText(without_memo.Query(keywords, options));
    // Cold pass populates the memo, warm pass serves from it — both must
    // match the memo-free context byte for byte.
    EXPECT_EQ(DeterministicResultText(with_memo.Query(keywords, options)),
              golden);
    EXPECT_EQ(DeterministicResultText(with_memo.Query(keywords, options)),
              golden);
  }
  PartialsMemoMetrics on = with_memo.partials_memo().metrics();
  EXPECT_GT(on.hits, 0u);
  EXPECT_GT(on.inserts, 0u);
  PartialsMemoMetrics offm = without_memo.partials_memo().metrics();
  EXPECT_EQ(offm.hits, 0u);
  EXPECT_EQ(offm.inserts, 0u);
}

TEST(PartialsMemoIntegration, OverlappingQueriesShareSubjectWork) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  search::QueryOptions options;
  options.l = 5;

  ctx.Query("faloutsos", options);
  PartialsMemoMetrics cold = ctx.partials_memo().metrics();
  EXPECT_GT(cold.inserts, 0u);
  EXPECT_EQ(cold.hits, 0u);

  // A different keyword set whose subject hits overlap reuses the
  // memoized per-subject synopses even though its result-cache key
  // differs. AND semantics make this query's hits a subset of the
  // previous one's, so every subject is already memoized.
  ASSERT_FALSE(ctx.Query("christos faloutsos", options).empty());
  PartialsMemoMetrics warm = ctx.partials_memo().metrics();
  EXPECT_GT(warm.hits, 0u);
}

TEST(PartialsMemoIntegration, BumpEpochForcesRecomputeWithIdenticalResults) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  search::QueryOptions options;
  options.l = 5;

  std::string golden = DeterministicResultText(ctx.Query("databases", options));
  PartialsMemoMetrics before = ctx.partials_memo().metrics();

  ctx.partials_memo().BumpEpoch();
  EXPECT_EQ(ctx.partials_memo().metrics().entries, 0u);

  // Post-bump the query recomputes (misses grow, no new hits) and the
  // answer is unchanged.
  EXPECT_EQ(DeterministicResultText(ctx.Query("databases", options)), golden);
  PartialsMemoMetrics after = ctx.partials_memo().metrics();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_GT(after.misses, before.misses);
}

TEST(PartialsMemoIntegration, DistinctLAndAlgorithmDoNotCollide) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);

  search::QueryOptions l5;
  l5.l = 5;
  search::QueryOptions l3 = l5;
  l3.l = 3;
  search::QueryOptions dp = l5;
  dp.algorithm = core::SizeLAlgorithm::kDp;

  // Golden answers from a memo-free context.
  search::SearchContext plain = BuildDblpContext(f.d, &f.backend);
  PartialsMemoOptions off;
  off.enabled = false;
  plain.partials_memo().Configure(off);

  // Warm every variant through one shared memo, then check each against
  // its own golden — a key collision would cross-contaminate.
  for (int pass = 0; pass < 2; ++pass) {
    EXPECT_EQ(DeterministicResultText(ctx.Query("databases", l5)),
              DeterministicResultText(plain.Query("databases", l5)));
    EXPECT_EQ(DeterministicResultText(ctx.Query("databases", l3)),
              DeterministicResultText(plain.Query("databases", l3)));
    EXPECT_EQ(DeterministicResultText(ctx.Query("databases", dp)),
              DeterministicResultText(plain.Query("databases", dp)));
  }
}

}  // namespace
}  // namespace osum
