// Tests for the size-l algorithms: the paper's worked examples (Figures
// 4-6), optimality lemmas, cross-algorithm equivalences, and randomized
// property sweeps against the brute-force oracle.
#include <algorithm>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/dp_internal.h"
#include "core/size_l.h"
#include "tree_fixtures.h"

namespace osum::core {
namespace {

using osum::testing::MakeTree;
using osum::testing::PaperFigure4Tree;
using osum::testing::PaperFigure5Tree;
using osum::testing::PaperFigure6Tree;
using osum::testing::RandomMonotoneTree;
using osum::testing::SelectionIsPaperIds;
using osum::testing::RandomTree;

// ------------------------------------------------------------ paper cases

TEST(SizeLDp, PaperFigure4OptimalSize4) {
  OsTree os = PaperFigure4Tree();
  Selection s = SizeLDp(os, 4);
  // S_{1,4} = {1,4,5,6}
  EXPECT_TRUE(SelectionIsPaperIds(s, {1, 4, 5, 6}, 30 + 31 + 80 + 35));
}

TEST(SizeLDp, PaperFigure4SubtreeClaims) {
  // The DP table in Figure 4 asserts S_{4,3} = {4,11,13}: verify by running
  // size-3 on the subtree rooted at paper node 4 = {4,10,11,13}.
  OsTree sub = MakeTree({{-1, 31}, {0, 13}, {0, 30}, {2, 60}});
  Selection s = SizeLDp(sub, 3);
  EXPECT_EQ(s.nodes, (std::vector<OsNodeId>{0, 2, 3}));
  EXPECT_DOUBLE_EQ(s.importance, 31 + 30 + 60);
}

TEST(SizeLBottomUp, PaperFigure5Size10) {
  OsTree os = PaperFigure5Tree();
  Selection s = SizeLBottomUp(os, 10);
  // Figure 5(c): nodes 9, 7, 3, 10 pruned.
  EXPECT_TRUE(SelectionIsPaperIds(s, {1, 2, 4, 5, 6, 8, 11, 12, 13, 14}));
}

TEST(SizeLBottomUp, PaperFigure5Size5SuboptimalAsDescribed) {
  OsTree os = PaperFigure5Tree();
  Selection greedy = SizeLBottomUp(os, 5);
  // Figure 5(d): Bottom-Up keeps {1,5,6,11,13} (importance 235)...
  EXPECT_TRUE(SelectionIsPaperIds(greedy, {1, 5, 6, 11, 13}, 235));
  // ... while the optimum is {1,5,6,12,14} (importance 240).
  Selection opt = SizeLDp(os, 5);
  EXPECT_TRUE(SelectionIsPaperIds(opt, {1, 5, 6, 12, 14}, 240));
}

TEST(SizeLTopPath, PaperFigure6Size5) {
  OsTree os = PaperFigure6Tree();
  Selection s = SizeLTopPath(os, 5);
  // Section 5.2 walkthrough: select path {1,5} (AI 55), then {11,13}
  // (AI 45 after the update), then node 6.
  EXPECT_TRUE(SelectionIsPaperIds(s, {1, 5, 6, 11, 13}));
}

TEST(SizeLTopPath, PaperFigure6Size3SuboptimalAsDescribed) {
  OsTree os = PaperFigure6Tree();
  Selection greedy = SizeLTopPath(os, 3);
  // "e.g. the size-3 OS will have nodes 1, 5 and 11 instead of 1, 5 and 6."
  EXPECT_TRUE(SelectionIsPaperIds(greedy, {1, 5, 11}));
  Selection opt = SizeLDp(os, 3);
  EXPECT_TRUE(SelectionIsPaperIds(opt, {1, 5, 6}));
}

// ------------------------------------------------------------- edge cases

TEST(SizeL, SingleNodeTree) {
  OsTree os = MakeTree({{-1, 7.0}});
  for (auto algo : {SizeLAlgorithm::kDp, SizeLAlgorithm::kBottomUp,
                    SizeLAlgorithm::kTopPath, SizeLAlgorithm::kTopPathMemo,
                    SizeLAlgorithm::kBruteForce}) {
    Selection s = RunSizeL(algo, os, 5);
    EXPECT_EQ(s.nodes, (std::vector<OsNodeId>{0})) << AlgorithmName(algo);
    EXPECT_DOUBLE_EQ(s.importance, 7.0) << AlgorithmName(algo);
  }
}

TEST(SizeL, LEqualsTreeSizeReturnsEverything) {
  OsTree os = PaperFigure4Tree();
  for (auto algo : {SizeLAlgorithm::kDp, SizeLAlgorithm::kBottomUp,
                    SizeLAlgorithm::kTopPath, SizeLAlgorithm::kTopPathMemo}) {
    Selection s = RunSizeL(algo, os, 14);
    EXPECT_EQ(s.nodes.size(), 14u) << AlgorithmName(algo);
    EXPECT_DOUBLE_EQ(s.importance, os.TotalImportance())
        << AlgorithmName(algo);
  }
}

TEST(SizeL, LLargerThanTreeClamps) {
  OsTree os = PaperFigure4Tree();
  Selection s = SizeLDp(os, 100);
  EXPECT_EQ(s.nodes.size(), 14u);
}

TEST(SizeL, LOneSelectsRootOnly) {
  OsTree os = PaperFigure5Tree();
  for (auto algo : {SizeLAlgorithm::kDp, SizeLAlgorithm::kBottomUp,
                    SizeLAlgorithm::kTopPath, SizeLAlgorithm::kTopPathMemo,
                    SizeLAlgorithm::kBruteForce}) {
    Selection s = RunSizeL(algo, os, 1);
    EXPECT_EQ(s.nodes, (std::vector<OsNodeId>{kOsRoot})) << AlgorithmName(algo);
  }
}

TEST(SizeL, ZeroLReturnsEmpty) {
  OsTree os = PaperFigure4Tree();
  EXPECT_TRUE(SizeLDp(os, 0).nodes.empty());
  EXPECT_TRUE(SizeLBottomUp(os, 0).nodes.empty());
  EXPECT_TRUE(SizeLTopPath(os, 0).nodes.empty());
}

TEST(SizeL, DeepChainMustTakeWholePath) {
  // A chain: any size-l OS is forced to the l top nodes even if deep nodes
  // are heavy — connectivity dominates importance (Definition 1).
  OsTree os = MakeTree({{-1, 1}, {0, 1}, {1, 1}, {2, 1000}});
  Selection s = SizeLDp(os, 2);
  EXPECT_EQ(s.nodes, (std::vector<OsNodeId>{0, 1}));
}

TEST(SizeL, ImportantButDisconnectedTupleExcluded) {
  // Section 3's Sellis/Roussopoulos example: a heavy node whose connector
  // is cheap may lose to a lighter but better-connected pair.
  //   root(58) -> paper(20) -> {sellis(43), roussopoulos(34)}
  // size-3 must be {root, paper, sellis}: roussopoulos (34 > 20) is
  // excluded because including it requires the paper tuple anyway.
  OsTree os = MakeTree({{-1, 58}, {0, 20}, {1, 43}, {1, 34}});
  Selection s = SizeLDp(os, 3);
  EXPECT_EQ(s.nodes, (std::vector<OsNodeId>{0, 1, 2}));
}

// ------------------------------------------------- equivalences & lemmas

TEST(SizeLDpEnumerate, MatchesKnapsackDpOnPaperTrees) {
  for (OsTree os : {PaperFigure4Tree(), PaperFigure5Tree(),
                    PaperFigure6Tree()}) {
    for (size_t l : {2, 3, 5, 8, 12}) {
      SizeLStats st;
      Selection a = SizeLDp(os, l);
      Selection b = SizeLDpEnumerate(os, l, 50'000'000, &st);
      ASSERT_FALSE(st.aborted);
      EXPECT_DOUBLE_EQ(a.importance, b.importance) << "l=" << l;
    }
  }
}

TEST(SizeLDpEnumerate, AbortsOnTinyBudget) {
  util::Rng rng(5);
  OsTree os = RandomTree(&rng, 200);
  SizeLStats st;
  Selection s = SizeLDpEnumerate(os, 30, /*op_budget=*/100, &st);
  EXPECT_TRUE(st.aborted);
  EXPECT_TRUE(s.nodes.empty());
}

TEST(SizeLTopPathMemo, MatchesPlainTopPath) {
  util::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    OsTree os = RandomTree(&rng, 3 + rng.NextU64(120));
    for (size_t l : {1, 3, 7, 15, 40}) {
      Selection plain = SizeLTopPath(os, l);
      Selection memo = SizeLTopPathMemo(os, l);
      EXPECT_EQ(plain.nodes, memo.nodes)
          << "trial=" << trial << " l=" << l << " n=" << os.size();
    }
  }
}

TEST(SizeLBottomUp, Lemma2OptimalOnMonotoneTrees) {
  util::Rng rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    OsTree os = RandomMonotoneTree(&rng, 4 + rng.NextU64(80));
    ASSERT_TRUE(os.IsMonotone());
    for (size_t l : {1, 2, 5, 10, 25}) {
      Selection greedy = SizeLBottomUp(os, l);
      Selection opt = SizeLDp(os, l);
      EXPECT_NEAR(greedy.importance, opt.importance, 1e-9)
          << "trial=" << trial << " l=" << l;
    }
  }
}

// ------------------------------------------------ property sweeps vs oracle

struct SweepParam {
  uint64_t seed;
  size_t n;
  size_t l;
};

class SizeLPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SizeLPropertyTest, DpMatchesBruteForceAndGreediesAreValid) {
  const SweepParam p = GetParam();
  util::Rng rng(p.seed);
  OsTree os = RandomTree(&rng, p.n);

  Selection oracle = SizeLBruteForce(os, p.l);
  Selection dp = SizeLDp(os, p.l);
  EXPECT_NEAR(dp.importance, oracle.importance, 1e-9);
  EXPECT_TRUE(IsValidSelection(os, dp, p.l));

  SizeLStats enum_stats;
  Selection dpe = SizeLDpEnumerate(os, p.l, 100'000'000, &enum_stats);
  ASSERT_FALSE(enum_stats.aborted);
  EXPECT_NEAR(dpe.importance, oracle.importance, 1e-9);

  for (auto algo : {SizeLAlgorithm::kBottomUp, SizeLAlgorithm::kTopPath,
                    SizeLAlgorithm::kTopPathMemo}) {
    Selection s = RunSizeL(algo, os, p.l);
    EXPECT_TRUE(IsValidSelection(os, s, p.l)) << AlgorithmName(algo);
    // Greedy never beats the optimum, and the optimum is positive.
    EXPECT_LE(s.importance, oracle.importance + 1e-9) << AlgorithmName(algo);
    EXPECT_GT(s.importance, 0.0) << AlgorithmName(algo);
  }
}

std::vector<SweepParam> MakeSweep() {
  std::vector<SweepParam> params;
  uint64_t seed = 1000;
  for (size_t n : {2, 3, 5, 8, 12, 16, 20}) {
    for (size_t l : {1, 2, 3, 5, 8, 12}) {
      if (l > n) continue;
      for (int rep = 0; rep < 3; ++rep) {
        params.push_back(SweepParam{seed++, n, l});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, SizeLPropertyTest,
                         ::testing::ValuesIn(MakeSweep()),
                         [](const ::testing::TestParamInfo<SweepParam>& info) {
                           return "n" + std::to_string(info.param.n) + "_l" +
                                  std::to_string(info.param.l) + "_s" +
                                  std::to_string(info.param.seed);
                         });

// Larger randomized consistency sweep (no oracle; DP as reference).
struct BigSweepParam {
  uint64_t seed;
  size_t n;
};

class SizeLBigTreeTest : public ::testing::TestWithParam<BigSweepParam> {};

TEST_P(SizeLBigTreeTest, GreedyQualityAndValidity) {
  const BigSweepParam p = GetParam();
  util::Rng rng(p.seed);
  OsTree os = RandomTree(&rng, p.n);
  for (size_t l : {5, 10, 20, 50}) {
    Selection opt = SizeLDp(os, l);
    EXPECT_TRUE(IsValidSelection(os, opt, l));
    for (auto algo : {SizeLAlgorithm::kBottomUp, SizeLAlgorithm::kTopPath,
                      SizeLAlgorithm::kTopPathMemo}) {
      Selection s = RunSizeL(algo, os, l);
      EXPECT_TRUE(IsValidSelection(os, s, l)) << AlgorithmName(algo);
      EXPECT_LE(s.importance, opt.importance + 1e-9) << AlgorithmName(algo);
      // On uniform random weights the greedies stay within a loose factor;
      // this guards against regressions that silently break selection.
      EXPECT_GT(s.importance, 0.25 * opt.importance) << AlgorithmName(algo);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomBigTrees, SizeLBigTreeTest,
    ::testing::Values(BigSweepParam{1, 150}, BigSweepParam{2, 400},
                      BigSweepParam{3, 800}, BigSweepParam{4, 1500},
                      BigSweepParam{5, 3000}),
    [](const ::testing::TestParamInfo<BigSweepParam>& info) {
      return "n" + std::to_string(info.param.n);
    });

// ---------------------------------------------- DP hot path (ISSUE 10)

// An l beyond the computed tables' budget must fail loudly in every build
// type — the old bare assert made Release silently reconstruct garbage.
TEST(DpInternal, ReconstructRejectsLBeyondTables) {
  OsTree os = PaperFigure4Tree();
  DpScratch scratch;
  const size_t L = 4;
  internal::DpTables tables = internal::ComputeDpTables(os, L, &scratch);
  EXPECT_THROW(internal::ReconstructDp(os, tables, L + 1),
               std::invalid_argument);
  EXPECT_THROW(internal::ReconstructDp(os, tables, 0), std::invalid_argument);
  // In-range l still works against the same tables.
  Selection ok = internal::ReconstructDp(os, tables, L);
  EXPECT_TRUE(IsValidSelection(os, ok, L));
}

// Regression (ISSUE 10): EnumState::Solve used to memoize `cell = value`
// even when the op budget aborted mid-Enumerate, poisoning the cell with a
// truncated-search value. An aborted run must report aborted + an empty
// (not wrong) selection, and the same scratch must then produce the exact
// answer on a full-budget rerun — nothing poisoned may survive.
TEST(SizeLDpEnumerate, AbortDoesNotPoisonTheMemo) {
  util::Rng rng(5);
  OsTree os = RandomTree(&rng, 200);
  Selection golden = SizeLDpEnumerate(os, 12, /*op_budget=*/50'000'000);
  ASSERT_FALSE(golden.nodes.empty());

  DpScratch scratch;
  for (uint64_t budget : {5u, 50u, 500u, 5000u}) {  // aborts mid-tree
    SizeLStats st;
    Selection s = SizeLDpEnumerate(os, 12, budget, &scratch, &st);
    ASSERT_TRUE(st.aborted) << "budget " << budget << " did not abort";
    EXPECT_TRUE(s.nodes.empty());
  }
  SizeLStats st;
  Selection after = SizeLDpEnumerate(os, 12, /*op_budget=*/50'000'000,
                                     &scratch, &st);
  EXPECT_FALSE(st.aborted);
  EXPECT_EQ(after.nodes, golden.nodes);
  EXPECT_DOUBLE_EQ(after.importance, golden.importance);
}

// The arena contract: a batch of same-shaped queries through one scratch
// stops allocating once warm — the O(1)-large-allocations claim.
TEST(DpScratchTest, BatchReusesArenaBlocks) {
  util::Rng rng(11);
  std::vector<OsTree> forest;
  for (int i = 0; i < 12; ++i) forest.push_back(RandomTree(&rng, 400));

  DpScratch scratch;
  Selection warm = SizeLDp(forest[0], 25, &scratch);
  EXPECT_TRUE(IsValidSelection(forest[0], warm, 25));
  const uint64_t warm_blocks = scratch.arena.block_allocations();
  const uint64_t warm_bytes = scratch.arena.bytes_reserved();
  EXPECT_GT(warm_blocks, 0u);

  for (const OsTree& os : forest) {
    Selection shared = SizeLDp(os, 25, &scratch);
    Selection fresh = SizeLDp(os, 25);
    EXPECT_EQ(shared.nodes, fresh.nodes);
    EXPECT_DOUBLE_EQ(shared.importance, fresh.importance);
  }
  // Same-shaped trees after warm-up: zero new blocks, zero new bytes.
  EXPECT_EQ(scratch.arena.block_allocations(), warm_blocks);
  EXPECT_EQ(scratch.arena.bytes_reserved(), warm_bytes);
}

// Stats sanity: operation counters reflect expected asymptotics loosely.
TEST(SizeLStatsTest, CountersPopulated) {
  util::Rng rng(7);
  OsTree os = RandomTree(&rng, 500);
  SizeLStats dp_stats, bu_stats, tp_stats;
  SizeLDp(os, 20, &dp_stats);
  SizeLBottomUp(os, 20, &bu_stats);
  SizeLTopPath(os, 20, &tp_stats);
  EXPECT_GT(dp_stats.operations, 0u);
  EXPECT_GT(bu_stats.operations, 0u);
  EXPECT_GT(tp_stats.operations, 0u);
  // Bottom-Up does at most one pop per pruned node plus re-pushes.
  EXPECT_LE(bu_stats.operations, 2u * os.size());
}

}  // namespace
}  // namespace osum::core
