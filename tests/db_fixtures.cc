#include "db_fixtures.h"

namespace osum::testing {

datasets::DblpConfig SmallDblpConfig() {
  datasets::DblpConfig c;
  c.num_authors = 150;
  c.num_papers = 600;
  c.num_conferences = 10;
  return c;
}

datasets::DblpConfig MediumDblpConfig() {
  datasets::DblpConfig c;
  c.num_authors = 400;
  c.num_papers = 1600;
  c.num_conferences = 16;
  return c;
}

datasets::TpchConfig SmallTpchConfig() {
  datasets::TpchConfig c;
  c.num_customers = 120;
  c.num_suppliers = 12;
  c.num_parts = 160;
  c.mean_orders_per_customer = 6.0;
  c.mean_lineitems_per_order = 3.0;
  return c;
}

datasets::TpchConfig MediumTpchConfig() {
  datasets::TpchConfig c;
  c.num_customers = 300;
  c.num_suppliers = 25;
  c.num_parts = 400;
  c.mean_orders_per_customer = 8.0;
  return c;
}

ScoredDblp::ScoredDblp(const datasets::DblpConfig& config, int ga,
                       double damping)
    : d(datasets::BuildDblp(config)), backend(d.db, d.links, d.data_graph) {
  datasets::ApplyDblpScores(&d, ga, damping);
}

ScoredTpch::ScoredTpch(const datasets::TpchConfig& config, int ga,
                       double damping)
    : t(datasets::BuildTpch(config)), backend(t.db, t.links, t.data_graph) {
  datasets::ApplyTpchScores(&t, ga, damping);
}

}  // namespace osum::testing
