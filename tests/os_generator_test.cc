// Tests for OS generation (Algorithm 5) and prelim-l generation
// (Algorithm 4): structure, back-end equivalence, the exclude-origin rule,
// depth caps, Definition 2 (top-l containment) and avoidance-condition
// accounting.
#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/os_backend.h"
#include "core/os_generator.h"
#include "core/size_l.h"
#include "datasets/dblp.h"

namespace osum::core {
namespace {

using datasets::ApplyDblpScores;
using datasets::BuildDblp;
using datasets::Dblp;
using datasets::DblpAuthorGds;
using datasets::DblpConfig;

struct Pipeline {
  Dblp d;
  gds::Gds author_gds;

  explicit Pipeline(DblpConfig config = {}) : d(BuildDblp(config)) {
    ApplyDblpScores(&d, 1, 0.85);
    author_gds = DblpAuthorGds(d);
  }
};

DblpConfig TinyConfig() {
  DblpConfig c;
  c.num_authors = 80;
  c.num_papers = 300;
  c.num_conferences = 8;
  c.mean_citations_per_paper = 4.0;
  return c;
}

// Canonical structural signature of an OS: sorted (gds node, relation,
// tuple, parent tuple) quadruples — order-independent comparison of trees.
std::vector<std::tuple<int, uint32_t, uint32_t, int64_t>> Signature(
    const OsTree& os) {
  std::vector<std::tuple<int, uint32_t, uint32_t, int64_t>> sig;
  sig.reserve(os.size());
  for (const OsNode& n : os.nodes()) {
    int64_t parent_tuple =
        n.parent == kNoOsNode ? -1 : os.node(n.parent).tuple;
    sig.emplace_back(n.gds_node, n.relation, n.tuple, parent_tuple);
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

TEST(OsGeneration, CompleteOsStructure) {
  Pipeline p(TinyConfig());
  DataGraphBackend backend(p.d.db, p.d.links, p.d.data_graph);
  OsTree os = GenerateCompleteOs(p.d.db, p.author_gds, &backend, 0);
  ASSERT_GT(os.size(), 1u);
  EXPECT_EQ(os.node(kOsRoot).relation, p.d.author);
  EXPECT_EQ(os.node(kOsRoot).tuple, 0u);
  // Max depth is bounded by the G_DS depth.
  EXPECT_LE(os.MaxDepth(), p.author_gds.MaxDepth());
  // Every node's G_DS spec matches its relation, and local importance is
  // global importance x affinity (Equation 3).
  for (const OsNode& n : os.nodes()) {
    const gds::GdsNode& spec = p.author_gds.node(n.gds_node);
    EXPECT_EQ(spec.relation, n.relation);
    EXPECT_DOUBLE_EQ(n.local_importance,
                     p.d.db.relation(n.relation).importance(n.tuple) *
                         spec.affinity);
  }
}

TEST(OsGeneration, CoAuthorsExcludeTheRootAuthor) {
  Pipeline p(TinyConfig());
  DataGraphBackend backend(p.d.db, p.d.links, p.d.data_graph);
  OsTree os = GenerateCompleteOs(p.d.db, p.author_gds, &backend, 0);
  size_t coauthor_nodes = 0;
  for (const OsNode& n : os.nodes()) {
    if (p.author_gds.node(n.gds_node).label != "Co-Author") continue;
    ++coauthor_nodes;
    // The paper's Example 4: "Co-Author(s)" never lists the subject.
    EXPECT_FALSE(n.relation == p.d.author && n.tuple == 0u);
  }
  EXPECT_GT(coauthor_nodes, 0u);
}

TEST(OsGeneration, DepthCapLimitsTree) {
  Pipeline p(TinyConfig());
  DataGraphBackend backend(p.d.db, p.d.links, p.d.data_graph);
  OsGenOptions options;
  options.max_depth = 1;
  OsTree os = GenerateCompleteOs(p.d.db, p.author_gds, &backend, 0, options);
  EXPECT_LE(os.MaxDepth(), 1);
  // Depth-1 OS = root + its papers only.
  for (const OsNode& n : os.nodes()) {
    if (n.parent == kNoOsNode) continue;
    EXPECT_EQ(p.author_gds.node(n.gds_node).label, "Paper");
  }
}

TEST(OsGeneration, MaxNodesSafetyValve) {
  Pipeline p(TinyConfig());
  DataGraphBackend backend(p.d.db, p.d.links, p.d.data_graph);
  OsGenOptions options;
  options.max_nodes = 10;
  OsTree os = GenerateCompleteOs(p.d.db, p.author_gds, &backend, 0, options);
  // BFS stops expanding after the cap; one final batch may overshoot by
  // the fan-out of the last expanded node.
  EXPECT_LT(os.size(), 2000u);
  EXPECT_GE(os.size(), 10u);
}

TEST(OsGeneration, DatabaseBackendMatchesDataGraphBackend) {
  Pipeline p(TinyConfig());
  DataGraphBackend mem(p.d.db, p.d.links, p.d.data_graph);
  DatabaseBackend sql(p.d.db, p.d.links, /*per_select_micros=*/0.0);
  for (rel::TupleId tds : {0u, 1u, 5u, 17u}) {
    OsTree a = GenerateCompleteOs(p.d.db, p.author_gds, &mem, tds);
    OsTree b = GenerateCompleteOs(p.d.db, p.author_gds, &sql, tds);
    EXPECT_EQ(a.size(), b.size()) << "tds=" << tds;
    EXPECT_EQ(Signature(a), Signature(b)) << "tds=" << tds;
  }
}

TEST(OsGeneration, BackendIoAccounting) {
  Pipeline p(TinyConfig());
  DatabaseBackend sql(p.d.db, p.d.links, /*per_select_micros=*/0.0);
  sql.ResetStats();
  OsTree os = GenerateCompleteOs(p.d.db, p.author_gds, &sql, 0);
  // Algorithm 5 issues one SELECT per (node, G_DS child) pair of expanded
  // nodes; at minimum one per non-root node's producing join.
  EXPECT_GT(sql.stats().select_calls, 0u);
  EXPECT_GE(sql.stats().tuples_read + 1, os.size());
}

// ---------------------------------------------------------------- prelim-l

TEST(PrelimOs, ContainsTopLTuples) {
  Pipeline p(TinyConfig());
  DataGraphBackend backend(p.d.db, p.d.links, p.d.data_graph);
  for (rel::TupleId tds : {0u, 1u, 2u, 9u}) {
    for (size_t l : {5u, 10u, 25u}) {
      OsTree complete =
          GenerateCompleteOs(p.d.db, p.author_gds, &backend, tds);
      OsTree prelim =
          GeneratePrelimOs(p.d.db, p.author_gds, &backend, tds, l);
      ASSERT_LE(prelim.size(), complete.size());

      // Definition 2: the prelim-l OS contains the l tuples with the
      // largest local importance. Compare score multisets.
      std::vector<double> all;
      for (const OsNode& n : complete.nodes()) {
        all.push_back(n.local_importance);
      }
      std::sort(all.begin(), all.end(), std::greater<>());
      if (all.size() > l) all.resize(l);

      std::vector<double> got;
      for (const OsNode& n : prelim.nodes()) {
        got.push_back(n.local_importance);
      }
      std::sort(got.begin(), got.end(), std::greater<>());
      ASSERT_GE(got.size(), all.size());
      for (size_t i = 0; i < all.size(); ++i) {
        EXPECT_GE(got[i], all[i] - 1e-9)
            << "tds=" << tds << " l=" << l << " rank=" << i;
      }
    }
  }
}

TEST(PrelimOs, IsSubtreeOfComplete) {
  Pipeline p(TinyConfig());
  DataGraphBackend backend(p.d.db, p.d.links, p.d.data_graph);
  OsTree complete = GenerateCompleteOs(p.d.db, p.author_gds, &backend, 0);
  OsTree prelim = GeneratePrelimOs(p.d.db, p.author_gds, &backend, 0, 10);
  auto complete_sig = Signature(complete);
  auto prelim_sig = Signature(prelim);
  // Every prelim entry appears in the complete OS.
  EXPECT_TRUE(std::includes(complete_sig.begin(), complete_sig.end(),
                            prelim_sig.begin(), prelim_sig.end()));
}

TEST(PrelimOs, AvoidanceConditionsFire) {
  Pipeline p(TinyConfig());
  DataGraphBackend backend(p.d.db, p.d.links, p.d.data_graph);
  PrelimStats stats;
  GeneratePrelimOs(p.d.db, p.author_gds, &backend, 0, 5, {}, &stats);
  // With l=5 on a large OS the cutoff rises quickly: both conditions must
  // trigger on this dataset.
  EXPECT_GT(stats.ac1_subtree_skips, 0u);
  EXPECT_GT(stats.ac2_limited_fetches, 0u);
  EXPECT_GT(stats.full_fetches, 0u);
}

TEST(PrelimOs, CheaperThanCompleteOnDatabaseBackend) {
  Pipeline p(TinyConfig());
  DatabaseBackend sql(p.d.db, p.d.links, /*per_select_micros=*/0.0);
  sql.ResetStats();
  OsTree complete = GenerateCompleteOs(p.d.db, p.author_gds, &sql, 0);
  uint64_t complete_reads = sql.stats().tuples_read;
  sql.ResetStats();
  OsTree prelim = GeneratePrelimOs(p.d.db, p.author_gds, &sql, 0, 10);
  uint64_t prelim_reads = sql.stats().tuples_read;
  EXPECT_LT(prelim.size(), complete.size());
  EXPECT_LT(prelim_reads, complete_reads);
}

TEST(PrelimOs, DpOnPrelimCloseToOptimal) {
  // Not guaranteed by theory (Definition 2 containment is of the top-l
  // set, not the optimal size-l OS), but on this data the paper's
  // observation "in most cases the prelim-l OS did contain the optimal
  // solution" should hold on average.
  Pipeline p(TinyConfig());
  DataGraphBackend backend(p.d.db, p.d.links, p.d.data_graph);
  double ratio_sum = 0.0;
  int count = 0;
  for (rel::TupleId tds = 0; tds < 8; ++tds) {
    size_t l = 10;
    OsTree complete =
        GenerateCompleteOs(p.d.db, p.author_gds, &backend, tds);
    OsTree prelim =
        GeneratePrelimOs(p.d.db, p.author_gds, &backend, tds, l);
    if (complete.size() <= l) continue;
    Selection opt = SizeLDp(complete, l);
    Selection pre = SizeLDp(prelim, l);
    ratio_sum += pre.importance / opt.importance;
    ++count;
  }
  ASSERT_GT(count, 0);
  EXPECT_GT(ratio_sum / count, 0.95);
}

TEST(PrelimOs, RespectsDepthCap) {
  Pipeline p(TinyConfig());
  DataGraphBackend backend(p.d.db, p.d.links, p.d.data_graph);
  OsGenOptions options;
  options.max_depth = 2;
  OsTree prelim =
      GeneratePrelimOs(p.d.db, p.author_gds, &backend, 0, 10, options);
  EXPECT_LE(prelim.MaxDepth(), 2);
}

TEST(PrelimOs, BackendsAgreeOnPrelim) {
  Pipeline p(TinyConfig());
  DataGraphBackend mem(p.d.db, p.d.links, p.d.data_graph);
  DatabaseBackend sql(p.d.db, p.d.links, /*per_select_micros=*/0.0);
  for (size_t l : {5u, 20u}) {
    OsTree a = GeneratePrelimOs(p.d.db, p.author_gds, &mem, 1, l);
    OsTree b = GeneratePrelimOs(p.d.db, p.author_gds, &sql, 1, l);
    EXPECT_EQ(Signature(a), Signature(b)) << "l=" << l;
  }
}

}  // namespace
}  // namespace osum::core
