// QueryService end-to-end: cached results must be byte-identical to
// uncached SearchContext::Query on both join back ends, the async paths
// (future + callback) must agree with the sync path, the batched path must
// be cache-aware, and rebinding a rebuilt context must invalidate — a
// stale context can never serve cached results.
#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/os_backend.h"
#include "db_fixtures.h"
#include "result_serializer.h"
#include "search/engine.h"
#include "serve/query_service.h"

namespace osum::serve {
namespace {

using osum::testing::ScoredDblp;
using osum::testing::Serialize;
using osum::testing::SmallDblpConfig;

search::SearchContext BuildDblpContext(const datasets::Dblp& d,
                                       core::OsBackend* backend) {
  std::vector<search::SearchContext::Subject> subjects;
  subjects.push_back({d.author, datasets::DblpAuthorGds(d)});
  subjects.push_back({d.paper, datasets::DblpPaperGds(d)});
  return search::SearchContext::Build(d.db, backend, std::move(subjects));
}

ServiceOptions SmallService() {
  ServiceOptions o;
  o.num_threads = 3;
  o.cache.num_shards = 2;
  return o;
}

/// The headline invariant on one backend: miss computes, hit returns the
/// same immutable object, both byte-identical to an uncached Query.
void ExpectHitMatchesRecompute(const search::SearchContext& ctx) {
  QueryService service(ctx, SmallService());
  search::QueryOptions options;
  options.l = 10;
  options.max_results = 4;

  const std::string query = "faloutsos";
  std::string golden = Serialize(ctx.Query(query, options));

  ResultPtr first = service.Query(query, options);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(Serialize(first->results), golden);
  EXPECT_EQ(service.metrics().cache.misses, 1u);

  ResultPtr second = service.Query(query, options);
  // A hit is the same immutable object, not a recompute.
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(Serialize(second->results), golden);
  Metrics m = service.metrics();
  EXPECT_EQ(m.cache.misses, 1u);
  EXPECT_EQ(m.cache.hits, 1u);
  EXPECT_EQ(m.queries, 2u);
  EXPECT_GT(first->approx_bytes, 0u);
}

TEST(QueryServiceEquivalence, HitMatchesRecomputeDataGraphBackend) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  ExpectHitMatchesRecompute(ctx);
}

TEST(QueryServiceEquivalence, HitMatchesRecomputeDatabaseBackend) {
  ScoredDblp f(SmallDblpConfig());
  core::DatabaseBackend backend(f.d.db, f.d.links, /*per_select_micros=*/0.0);
  search::SearchContext ctx = BuildDblpContext(f.d, &backend);
  ExpectHitMatchesRecompute(ctx);
}

TEST(QueryServiceEquivalence, KeywordNormalizationSharesOneEntry) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryService service(ctx, SmallService());
  ResultPtr a = service.Query("Christos  Faloutsos");
  ResultPtr b = service.Query("faloutsos christos");
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(service.metrics().cache.misses, 1u);
  // Different options are different entries.
  search::QueryOptions other;
  other.l = 7;
  ResultPtr c = service.Query("christos faloutsos", other);
  EXPECT_NE(c.get(), a.get());
  EXPECT_EQ(service.metrics().cache.misses, 2u);
}

TEST(QueryServiceAsync, FutureAndCallbackAgreeWithSync) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryService service(ctx, SmallService());
  search::QueryOptions options;
  options.l = 8;

  std::string golden = Serialize(ctx.Query("databases", options));

  std::future<ResultPtr> fut = service.SubmitAsync("databases", options);
  ResultPtr from_future = fut.get();
  ASSERT_NE(from_future, nullptr);
  EXPECT_EQ(Serialize(from_future->results), golden);

  std::promise<ResultPtr> delivered;
  service.Submit("databases", options,
                 [&](ResultPtr r) { delivered.set_value(std::move(r)); });
  ResultPtr from_callback = delivered.get_future().get();
  ASSERT_NE(from_callback, nullptr);
  EXPECT_EQ(Serialize(from_callback->results), golden);
  // The async paths share the cache: one compute total.
  EXPECT_EQ(service.metrics().cache.misses, 1u);
}

TEST(QueryServiceBatch, CacheAwareAndInputOrdered) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryService service(ctx, SmallService());
  search::QueryOptions options;
  options.l = 9;
  options.max_results = 3;

  // Duplicates on purpose: they must coalesce, not recompute.
  std::vector<std::string> queries = {"faloutsos", "databases", "mining",
                                      "faloutsos", "power law",
                                      "nosuchkeywordanywhere", "databases"};
  std::vector<ResultPtr> batch = service.QueryBatch(queries, options);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_NE(batch[i], nullptr) << queries[i];
    EXPECT_EQ(Serialize(batch[i]->results),
              Serialize(ctx.Query(queries[i], options)))
        << queries[i];
  }
  Metrics after_first = service.metrics();
  EXPECT_EQ(after_first.cache.misses, 5u);  // distinct queries only

  // Re-running the batch is pure hits — no new computes.
  std::vector<ResultPtr> again = service.QueryBatch(queries, options);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(again[i].get(), batch[i].get()) << queries[i];
  }
  EXPECT_EQ(service.metrics().cache.misses, 5u);
}

TEST(QueryServiceEpoch, RebindAfterRebuildNeverServesStaleResults) {
  ScoredDblp f(SmallDblpConfig());

  // Engine #1 registers only Author; its context misses paper subjects.
  search::SizeLSearchEngine engine1(f.d.db, &f.backend);
  engine1.RegisterSubject(f.d.author, datasets::DblpAuthorGds(f.d));
  engine1.BuildIndex();

  QueryService service(engine1.context(), SmallService());
  search::QueryOptions options;
  options.l = 8;
  options.max_results = 6;

  ResultPtr stale = service.Query("databases", options);
  std::string stale_bytes = Serialize(stale->results);

  // The context is rebuilt richer (Author + Paper) in a fresh engine —
  // the old engine would throw on re-registration (see search_test).
  search::SizeLSearchEngine engine2(f.d.db, &f.backend);
  engine2.RegisterSubject(f.d.author, datasets::DblpAuthorGds(f.d));
  engine2.RegisterSubject(f.d.paper, datasets::DblpPaperGds(f.d));
  engine2.BuildIndex();

  service.RebindContext(engine2.context());
  EXPECT_EQ(&service.context(), &engine2.context());
  EXPECT_EQ(service.metrics().cache.epoch, 1u);
  EXPECT_EQ(service.metrics().cache.entries, 0u);

  ResultPtr fresh = service.Query("databases", options);
  std::string fresh_bytes = Serialize(fresh->results);
  EXPECT_EQ(fresh_bytes, Serialize(engine2.context().Query("databases",
                                                           options)));
  // The richer context genuinely changes the answer, so serving the old
  // entry would have been observable — and did not happen.
  EXPECT_NE(fresh_bytes, stale_bytes);
  EXPECT_EQ(service.metrics().cache.misses, 2u);
}

TEST(QueryServiceMetrics, LatencyReservoirsPopulate) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryService service(ctx, SmallService());
  for (int i = 0; i < 3; ++i) service.Query("faloutsos");
  Metrics m = service.metrics();
  EXPECT_EQ(m.queries, 3u);
  EXPECT_EQ(m.latency_us.count(), 3u);
  EXPECT_EQ(m.miss_latency_us.count(), 1u);
  EXPECT_EQ(m.hit_latency_us.count(), 2u);
  EXPECT_GE(m.latency_us.Percentile(99.0), m.latency_us.Percentile(50.0));
  // Misses do strictly more work than hits on this dataset.
  EXPECT_GT(m.miss_latency_us.Max(), 0.0);
}

// TSan canary for the full serving stack: many driver threads hammer one
// service (sync + async + batch, overlapping keys) while the pool computes
// misses. Verifies every answer against precomputed goldens.
TEST(ServeConcurrencyStress, MixedTrafficOneService) {
  ScoredDblp f(SmallDblpConfig());
  core::DatabaseBackend backend(f.d.db, f.d.links, /*per_select_micros=*/0.0);
  search::SearchContext ctx = BuildDblpContext(f.d, &backend);
  ServiceOptions so;
  so.num_threads = 4;
  so.cache.num_shards = 4;
  so.cache.max_entries = 16;  // small: force concurrent eviction too
  QueryService service(ctx, so);

  search::QueryOptions options;
  options.l = 8;
  options.max_results = 3;
  std::vector<std::string> mix = {"faloutsos",  "databases", "mining",
                                  "power law",  "clustering", "graphs",
                                  "christos faloutsos", "streams"};
  std::vector<std::string> golden;
  golden.reserve(mix.size());
  for (const std::string& q : mix) {
    golden.push_back(Serialize(ctx.Query(q, options)));
  }

  std::atomic<int> mismatches{0};
  auto check = [&](size_t qi, const ResultPtr& r) {
    if (r == nullptr || Serialize(r->results) != golden[qi]) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  };

  constexpr size_t kDrivers = 4;
  constexpr int kRounds = 6;
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (size_t w = 0; w < kDrivers; ++w) {
    drivers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        size_t qi = (round + w) % mix.size();
        check(qi, service.Query(mix[qi], options));
        auto fut = service.SubmitAsync(mix[(qi + 1) % mix.size()], options);
        check((qi + 1) % mix.size(), fut.get());
        if (w == 0 && round == kRounds / 2) service.ClearCache();
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  Metrics m = service.metrics();
  EXPECT_EQ(m.queries,
            static_cast<uint64_t>(kDrivers) * kRounds * 2);
  EXPECT_EQ(m.cache.hits + m.cache.misses + m.cache.coalesced_waits,
            m.queries);
}

}  // namespace
}  // namespace osum::serve
