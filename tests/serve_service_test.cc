// QueryService end-to-end: cached results must be byte-identical to
// uncached SearchContext::Query on both join back ends, the async paths
// (future + callback) must agree with the sync path, the batched path must
// be cache-aware, and rebinding a rebuilt context must invalidate — a
// stale context can never serve cached results.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/os_backend.h"
#include "db_fixtures.h"
#include "api/codec.h"
#include "search/engine.h"
#include "serve/clock.h"
#include "serve/query_service.h"

namespace osum::serve {
namespace {

using osum::api::DeterministicResultText;
using osum::testing::ScoredDblp;
using osum::testing::ScoredTpch;
using osum::testing::SmallDblpConfig;
using osum::testing::SmallTpchConfig;

search::SearchContext BuildDblpContext(const datasets::Dblp& d,
                                       core::OsBackend* backend) {
  std::vector<search::SearchContext::Subject> subjects;
  subjects.push_back({d.author, datasets::DblpAuthorGds(d)});
  subjects.push_back({d.paper, datasets::DblpPaperGds(d)});
  return search::SearchContext::Build(d.db, backend, std::move(subjects));
}

ServiceOptions SmallService() {
  ServiceOptions o;
  o.num_threads = 3;
  o.cache.num_shards = 2;
  return o;
}

/// Delegating back end that can hold every join call on a gate (to keep a
/// query deterministically in flight) or fail it (to make Query throw) —
/// the levers the rebind-drain and batch-exception tests need.
class GatedBackend : public core::OsBackend {
 public:
  explicit GatedBackend(core::OsBackend* inner) : inner_(inner) {}

  const char* name() const override { return "gated"; }

  void Fetch(graph::LinkTypeId link, rel::FkDirection dir,
             rel::TupleId parent_tuple,
             std::vector<rel::TupleId>* out) override {
    Enter();
    inner_->Fetch(link, dir, parent_tuple, out);
  }
  void FetchTop(graph::LinkTypeId link, rel::FkDirection dir,
                rel::TupleId parent_tuple, size_t limit,
                double min_importance,
                std::vector<rel::TupleId>* out) override {
    Enter();
    inner_->FetchTop(link, dir, parent_tuple, limit, min_importance, out);
  }

  void FailJoins(bool fail) { fail_.store(fail); }
  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gate_closed_ = true;
  }
  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gate_closed_ = false;
    }
    cv_.notify_all();
  }
  /// Blocks until some join call is parked on the closed gate.
  void WaitUntilBlocked() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return waiting_ > 0; });
  }

 private:
  void Enter() {
    if (fail_.load()) throw std::runtime_error("injected join failure");
    std::unique_lock<std::mutex> lock(mu_);
    if (!gate_closed_) return;
    ++waiting_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return !gate_closed_; });
    --waiting_;
  }

  core::OsBackend* inner_;
  std::atomic<bool> fail_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  bool gate_closed_ = false;
  int waiting_ = 0;
};

/// Delegating back end that counts join calls — the witness the shedding
/// tests use to prove "answered kDeadlineExceeded WITHOUT backend work".
class CountingBackend : public core::OsBackend {
 public:
  explicit CountingBackend(core::OsBackend* inner) : inner_(inner) {}

  const char* name() const override { return "counting"; }

  void Fetch(graph::LinkTypeId link, rel::FkDirection dir,
             rel::TupleId parent_tuple,
             std::vector<rel::TupleId>* out) override {
    fetches_.fetch_add(1, std::memory_order_relaxed);
    inner_->Fetch(link, dir, parent_tuple, out);
  }
  void FetchTop(graph::LinkTypeId link, rel::FkDirection dir,
                rel::TupleId parent_tuple, size_t limit,
                double min_importance,
                std::vector<rel::TupleId>* out) override {
    fetches_.fetch_add(1, std::memory_order_relaxed);
    inner_->FetchTop(link, dir, parent_tuple, limit, min_importance, out);
  }

  uint64_t fetches() const {
    return fetches_.load(std::memory_order_relaxed);
  }

 private:
  core::OsBackend* inner_;
  std::atomic<uint64_t> fetches_{0};
};

/// The headline invariant on one backend: miss computes, hit returns the
/// same immutable object, both byte-identical to an uncached Query.
void ExpectHitMatchesRecompute(const search::SearchContext& ctx) {
  QueryService service(ctx, SmallService());
  search::QueryOptions options;
  options.l = 10;
  options.max_results = 4;

  const std::string query = "faloutsos";
  std::string golden = DeterministicResultText(ctx.Query(query, options));

  ResultPtr first = service.Query(query, options);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(DeterministicResultText(first->results), golden);
  EXPECT_EQ(service.metrics().cache.misses, 1u);

  ResultPtr second = service.Query(query, options);
  // A hit is the same immutable object, not a recompute.
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(DeterministicResultText(second->results), golden);
  Metrics m = service.metrics();
  EXPECT_EQ(m.cache.misses, 1u);
  EXPECT_EQ(m.cache.hits, 1u);
  EXPECT_EQ(m.queries, 2u);
  EXPECT_GT(first->approx_bytes, 0u);
}

TEST(QueryServiceEquivalence, HitMatchesRecomputeDataGraphBackend) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  ExpectHitMatchesRecompute(ctx);
}

TEST(QueryServiceEquivalence, HitMatchesRecomputeDatabaseBackend) {
  ScoredDblp f(SmallDblpConfig());
  core::DatabaseBackend backend(f.d.db, f.d.links, /*per_select_micros=*/0.0);
  search::SearchContext ctx = BuildDblpContext(f.d, &backend);
  ExpectHitMatchesRecompute(ctx);
}

TEST(QueryServiceEquivalence, KeywordNormalizationSharesOneEntry) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryService service(ctx, SmallService());
  ResultPtr a = service.Query("Christos  Faloutsos");
  ResultPtr b = service.Query("faloutsos christos");
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(service.metrics().cache.misses, 1u);
  // Different options are different entries.
  search::QueryOptions other;
  other.l = 7;
  ResultPtr c = service.Query("christos faloutsos", other);
  EXPECT_NE(c.get(), a.get());
  EXPECT_EQ(service.metrics().cache.misses, 2u);
}

TEST(QueryServiceAsync, FutureAndCallbackAgreeWithSync) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryService service(ctx, SmallService());
  search::QueryOptions options;
  options.l = 8;

  std::string golden = DeterministicResultText(ctx.Query("databases", options));

  std::future<ResultPtr> fut = service.SubmitAsync("databases", options);
  ResultPtr from_future = fut.get();
  ASSERT_NE(from_future, nullptr);
  EXPECT_EQ(DeterministicResultText(from_future->results), golden);

  std::promise<ResultPtr> delivered;
  service.Submit("databases", options,
                 [&](ResultPtr r) { delivered.set_value(std::move(r)); });
  ResultPtr from_callback = delivered.get_future().get();
  ASSERT_NE(from_callback, nullptr);
  EXPECT_EQ(DeterministicResultText(from_callback->results), golden);
  // The async paths share the cache: one compute total.
  EXPECT_EQ(service.metrics().cache.misses, 1u);
}

TEST(QueryServiceBatch, CacheAwareAndInputOrdered) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryService service(ctx, SmallService());
  search::QueryOptions options;
  options.l = 9;
  options.max_results = 3;

  // Duplicates on purpose: they must coalesce, not recompute.
  std::vector<std::string> queries = {"faloutsos", "databases", "mining",
                                      "faloutsos", "power law",
                                      "nosuchkeywordanywhere", "databases"};
  std::vector<ResultPtr> batch = service.QueryBatch(queries, options);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_NE(batch[i], nullptr) << queries[i];
    EXPECT_EQ(DeterministicResultText(batch[i]->results),
              DeterministicResultText(ctx.Query(queries[i], options)))
        << queries[i];
  }
  Metrics after_first = service.metrics();
  EXPECT_EQ(after_first.cache.misses, 5u);  // distinct queries only

  // Re-running the batch is pure hits — no new computes.
  std::vector<ResultPtr> again = service.QueryBatch(queries, options);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(again[i].get(), batch[i].get()) << queries[i];
  }
  EXPECT_EQ(service.metrics().cache.misses, 5u);
}

TEST(QueryServiceEpoch, RebindAfterRebuildNeverServesStaleResults) {
  ScoredDblp f(SmallDblpConfig());

  // Engine #1 registers only Author; its context misses paper subjects.
  search::SizeLSearchEngine engine1(f.d.db, &f.backend);
  engine1.RegisterSubject(f.d.author, datasets::DblpAuthorGds(f.d));
  engine1.BuildIndex();

  QueryService service(engine1.context(), SmallService());
  search::QueryOptions options;
  options.l = 8;
  options.max_results = 6;

  ResultPtr stale = service.Query("databases", options);
  std::string stale_bytes = DeterministicResultText(stale->results);

  // The context is rebuilt richer (Author + Paper) in a fresh engine —
  // the old engine would throw on re-registration (see search_test).
  search::SizeLSearchEngine engine2(f.d.db, &f.backend);
  engine2.RegisterSubject(f.d.author, datasets::DblpAuthorGds(f.d));
  engine2.RegisterSubject(f.d.paper, datasets::DblpPaperGds(f.d));
  engine2.BuildIndex();

  service.RebindContext(engine2.context());
  EXPECT_EQ(&service.context(), &engine2.context());
  EXPECT_EQ(service.metrics().cache.epoch, 1u);
  EXPECT_EQ(service.metrics().cache.entries, 0u);

  ResultPtr fresh = service.Query("databases", options);
  std::string fresh_bytes = DeterministicResultText(fresh->results);
  EXPECT_EQ(fresh_bytes, DeterministicResultText(
                             engine2.context().Query("databases", options)));
  // The richer context genuinely changes the answer, so serving the old
  // entry would have been observable — and did not happen.
  EXPECT_NE(fresh_bytes, stale_bytes);
  EXPECT_EQ(service.metrics().cache.misses, 2u);
}

// The partials-memo half of the rebind contract (ISSUE 10): rebinding
// flushes the memos on BOTH sides of the swap — the outgoing context (it
// may be rebound again later) and the incoming one (it may carry partials
// computed before the rebind) — and metrics() follows the bound context.
TEST(QueryServiceEpoch, RebindFlushesThePartialsMemo) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext old_ctx = BuildDblpContext(f.d, &f.backend);
  search::SearchContext new_ctx = BuildDblpContext(f.d, &f.backend);

  QueryService service(old_ctx, SmallService());
  search::QueryOptions options;
  options.l = 8;

  // Warm the bound context's memo through the service.
  service.Query("databases", options);
  Metrics before = service.metrics();
  EXPECT_GT(before.partials.inserts, 0u);
  EXPECT_GT(before.partials.entries, 0u);
  EXPECT_EQ(before.partials.epoch, 0u);

  // Seed the NEW context's memo before it is bound — rebind must flush
  // this side too, not just the outgoing one.
  new_ctx.Query("databases", options);
  ASSERT_GT(new_ctx.partials_memo().metrics().entries, 0u);

  service.RebindContext(new_ctx);

  core::PartialsMemoMetrics old_memo = old_ctx.partials_memo().metrics();
  EXPECT_EQ(old_memo.entries, 0u);
  EXPECT_EQ(old_memo.epoch, 1u);
  Metrics after = service.metrics();  // now snapshots new_ctx's memo
  EXPECT_EQ(after.partials.entries, 0u);
  EXPECT_EQ(after.partials.epoch, 1u);

  // Post-rebind queries recompute from scratch with unchanged answers.
  ResultPtr fresh = service.Query("databases", options);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(DeterministicResultText(fresh->results),
            DeterministicResultText(new_ctx.Query("databases", options)));
  EXPECT_GT(service.metrics().partials.misses, after.partials.misses);
}

// ServiceOptions::partials applies to the context bound at construction
// and to every context bound by RebindContext afterwards.
TEST(QueryServiceEpoch, PartialsOptionConfiguresEveryBoundContext) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx1 = BuildDblpContext(f.d, &f.backend);
  search::SearchContext ctx2 = BuildDblpContext(f.d, &f.backend);

  ServiceOptions o = SmallService();
  core::PartialsMemoOptions off;
  off.enabled = false;
  o.partials = off;
  QueryService service(ctx1, o);
  search::QueryOptions options;
  options.l = 8;

  service.Query("databases", options);
  EXPECT_EQ(service.metrics().partials.inserts, 0u);
  EXPECT_FALSE(ctx1.partials_memo().enabled());

  service.RebindContext(ctx2);
  EXPECT_FALSE(ctx2.partials_memo().enabled());
  service.Query("databases", options);
  EXPECT_EQ(service.metrics().partials.inserts, 0u);
}

// The lifetime half of the RebindContext contract: it must not return
// while a query is still executing against the old context, because the
// caller is entitled to destroy that context the moment it returns.
TEST(QueryServiceEpoch, RebindDrainsInFlightQueriesBeforeReturning) {
  ScoredDblp f(SmallDblpConfig());
  GatedBackend gated(&f.backend);
  auto old_ctx = std::make_unique<search::SearchContext>(
      BuildDblpContext(f.d, &gated));
  search::SearchContext new_ctx = BuildDblpContext(f.d, &f.backend);

  QueryService service(*old_ctx, SmallService());
  search::QueryOptions options;
  options.l = 8;

  gated.CloseGate();
  std::future<ResultPtr> inflight = service.SubmitAsync("databases", options);
  gated.WaitUntilBlocked();  // the miss has pinned old_ctx and is computing

  std::atomic<bool> rebound{false};
  std::thread rebinder([&] {
    service.RebindContext(new_ctx);
    rebound.store(true);
  });
  // While the old context is pinned, RebindContext must stay blocked.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(rebound.load());

  gated.OpenGate();
  rebinder.join();
  EXPECT_TRUE(rebound.load());
  // The query drained before RebindContext returned, so its future is
  // already satisfied and destroying the old context now is safe (the
  // sanitizer lanes would flag a use-after-free here otherwise).
  ResultPtr r = inflight.get();
  ASSERT_NE(r, nullptr);
  old_ctx.reset();

  EXPECT_EQ(&service.context(), &new_ctx);
  ResultPtr fresh = service.Query("databases", options);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(DeterministicResultText(fresh->results),
            DeterministicResultText(new_ctx.Query("databases", options)));
}

// A throwing miss inside the batch fan-out must surface on the calling
// thread (ParallelFor tasks themselves must not throw — an escaped
// exception would terminate the process), and must not poison the service.
TEST(QueryServiceBatch, MissExceptionRethrownOnCallingThread) {
  ScoredDblp f(SmallDblpConfig());
  GatedBackend gated(&f.backend);
  search::SearchContext ctx = BuildDblpContext(f.d, &gated);
  QueryService service(ctx, SmallService());
  search::QueryOptions options;
  options.l = 8;

  // Warm one key so the failing batch mixes cache hits with bad misses.
  ResultPtr warm = service.Query("faloutsos", options);
  ASSERT_NE(warm, nullptr);

  gated.FailJoins(true);
  std::vector<std::string> queries = {"faloutsos", "databases", "mining"};
  EXPECT_THROW(service.QueryBatch(queries, options), std::runtime_error);

  // Submit's contrasting convention: no future to carry the exception, so
  // the callback receives nullptr instead.
  std::promise<ResultPtr> delivered;
  service.Submit("power law", options,
                 [&](ResultPtr r) { delivered.set_value(std::move(r)); });
  EXPECT_EQ(delivered.get_future().get(), nullptr);

  // Failures cached nothing: once joins heal, the same batch succeeds and
  // still reuses the pre-failure entry.
  gated.FailJoins(false);
  std::vector<ResultPtr> batch = service.QueryBatch(queries, options);
  ASSERT_EQ(batch.size(), queries.size());
  EXPECT_EQ(batch[0].get(), warm.get());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_NE(batch[i], nullptr) << queries[i];
    EXPECT_EQ(DeterministicResultText(batch[i]->results),
              DeterministicResultText(ctx.Query(queries[i], options)))
        << queries[i];
  }
}

// The request/response surface: Execute must agree byte-for-byte with the
// legacy paths, share their cache, and report the cache outcome in stats.
TEST(QueryServiceApi, ExecuteMatchesLegacyAndReportsCacheOutcome) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryService service(ctx, SmallService());
  api::QueryRequest request =
      api::QueryRequest("faloutsos").WithL(10).WithMaxResults(4);
  search::QueryOptions options;
  options.l = 10;
  options.max_results = 4;
  std::string golden = DeterministicResultText(ctx.Query("faloutsos", options));

  api::QueryResponse first = service.Execute(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.stats.cache_hit);
  EXPECT_GT(first.stats.compute_micros, 0.0);
  EXPECT_EQ(first.stats.epoch, 0u);
  EXPECT_EQ(DeterministicResultText(first.result_list()), golden);

  api::QueryResponse second = service.Execute(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.stats.cache_hit);
  // A hit shares the same immutable list, zero-copy.
  EXPECT_EQ(second.results.get(), first.results.get());

  // The typed and legacy paths ride one cache: the legacy pointer wraps
  // the very list the response aliases.
  ResultPtr legacy = service.Query("faloutsos", options);
  EXPECT_EQ(&legacy->results, second.results.get());
  EXPECT_EQ(service.metrics().cache.misses, 1u);
}

TEST(QueryServiceApi, ExecuteMatchesRecomputeOnTpchDatabaseBackend) {
  ScoredTpch f(SmallTpchConfig());
  core::DatabaseBackend backend(f.t.db, f.t.links, /*per_select_micros=*/0.0);
  std::vector<search::SearchContext::Subject> subjects;
  subjects.push_back({f.t.customer, datasets::TpchCustomerGds(f.t)});
  subjects.push_back({f.t.supplier, datasets::TpchSupplierGds(f.t)});
  search::SearchContext ctx =
      search::SearchContext::Build(f.t.db, &backend, std::move(subjects));
  QueryService service(ctx, SmallService());

  std::string keywords = f.t.db.relation(f.t.customer).StringValue(0, 0);
  api::QueryResponse response =
      service.Execute(api::QueryRequest(keywords).WithL(10));
  ASSERT_TRUE(response.ok());
  search::QueryOptions options;
  options.l = 10;
  EXPECT_EQ(DeterministicResultText(response.result_list()),
            DeterministicResultText(ctx.Query(keywords, options)));
}

TEST(QueryServiceApi, InvalidAndFailingRequestsBecomeStatuses) {
  ScoredDblp f(SmallDblpConfig());
  GatedBackend gated(&f.backend);
  search::SearchContext ctx = BuildDblpContext(f.d, &gated);
  QueryService service(ctx, SmallService());

  api::QueryResponse invalid = service.Execute(api::QueryRequest(""));
  EXPECT_EQ(invalid.status.code(), api::StatusCode::kInvalidArgument);
  Metrics after_invalid = service.metrics();
  EXPECT_EQ(after_invalid.queries, 0u);  // rejected before the cache
  EXPECT_EQ(after_invalid.cache.misses, 0u);

  gated.FailJoins(true);
  api::QueryResponse failed = service.Execute(api::QueryRequest("databases"));
  EXPECT_EQ(failed.status.code(), api::StatusCode::kBackendError);
  EXPECT_TRUE(failed.result_list().empty());

  // The failure cached nothing: healing the backend recomputes...
  gated.FailJoins(false);
  api::QueryResponse healed = service.Execute(api::QueryRequest("databases"));
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed.stats.cache_hit);
  // ...and a no-hit query is an OK empty answer, no longer conflatable
  // with the kBackendError above.
  api::QueryResponse none =
      service.Execute(api::QueryRequest("nosuchkeywordanywhere"));
  EXPECT_TRUE(none.ok());
  EXPECT_TRUE(none.result_list().empty());
}

// The async-batch acceptance contract: SubmitBatchAsync returns while its
// misses are still computing — the submitting thread never blocks.
TEST(QueryServiceApi, SubmitBatchAsyncNeverBlocksTheSubmitter) {
  ScoredDblp f(SmallDblpConfig());
  GatedBackend gated(&f.backend);
  search::SearchContext ctx = BuildDblpContext(f.d, &gated);
  QueryService service(ctx, SmallService());
  search::QueryOptions options;
  options.l = 8;

  // Warm one key so the batch mixes a ready hit with gated misses.
  ResultPtr warm = service.Query("faloutsos", options);
  ASSERT_NE(warm, nullptr);

  gated.CloseGate();
  std::vector<api::QueryRequest> requests;
  for (const char* q : {"faloutsos", "databases", "", "mining"}) {
    requests.push_back(api::QueryRequest(q).WithOptions(options));
  }
  std::vector<std::future<api::QueryResponse>> futures =
      service.SubmitBatchAsync(std::move(requests));
  // Submission returned while every miss is parked on the closed gate.
  ASSERT_EQ(futures.size(), 4u);
  gated.WaitUntilBlocked();
  // The hit and the invalid request resolved at submission time; the
  // gated miss cannot be ready.
  EXPECT_EQ(futures[0].wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(futures[2].wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_NE(futures[1].wait_for(std::chrono::seconds(0)),
            std::future_status::ready);

  gated.OpenGate();
  api::QueryResponse hit = futures[0].get();
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.stats.cache_hit);
  EXPECT_EQ(hit.results.get(), &warm->results);  // zero-copy alias
  EXPECT_EQ(futures[2].get().status.code(),
            api::StatusCode::kInvalidArgument);
  api::QueryResponse miss = futures[1].get();
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.stats.cache_hit);
  EXPECT_EQ(DeterministicResultText(miss.result_list()),
            DeterministicResultText(ctx.Query("databases", options)));
  ASSERT_TRUE(futures[3].get().ok());
}

// Destruction-order regression: futures from SubmitBatchAsync may outlive
// the QueryService. The destructor must block until in-flight misses
// finish (pool_ is the last member, so it drains while cache/context are
// still alive), and the futures stay valid afterwards — their shared state
// is heap-owned, not service-owned. ASan/TSan turn any violation into a
// hard failure here.
TEST(QueryServiceApi, FuturesOutliveTheServiceWithoutUseAfterFree) {
  ScoredDblp f(SmallDblpConfig());
  GatedBackend gated(&f.backend);
  search::SearchContext ctx = BuildDblpContext(f.d, &gated);
  auto service = std::make_unique<QueryService>(ctx, SmallService());
  search::QueryOptions options;
  options.l = 8;

  gated.CloseGate();
  std::vector<api::QueryRequest> requests;
  for (const char* q : {"databases", "mining"}) {
    requests.push_back(api::QueryRequest(q).WithOptions(options));
  }
  std::vector<std::future<api::QueryResponse>> futures =
      service->SubmitBatchAsync(std::move(requests));
  gated.WaitUntilBlocked();

  // Tear the service down while both misses are parked on the gate.
  std::atomic<bool> destroyed{false};
  std::thread destroyer([&] {
    service.reset();
    destroyed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // The destructor is draining, not abandoning: it cannot finish while a
  // miss is still executing.
  EXPECT_FALSE(destroyed.load());

  gated.OpenGate();
  destroyer.join();
  EXPECT_TRUE(destroyed.load());

  // The service is gone; the futures still deliver real answers.
  for (std::future<api::QueryResponse>& future : futures) {
    api::QueryResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    EXPECT_FALSE(response.result_list().empty());
  }
}

// The callback twin of SubmitBatchAsync (the TCP front end's entry point):
// every request is answered exactly once, hits and invalids inline,
// misses on the pool.
TEST(QueryServiceApi, SubmitBatchAnswersEveryRequestExactlyOnce) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryService service(ctx, SmallService());
  search::QueryOptions options;
  options.l = 8;

  ResultPtr warm = service.Query("faloutsos", options);
  ASSERT_NE(warm, nullptr);

  std::vector<api::QueryRequest> requests;
  for (const char* q : {"faloutsos", "databases", "", "databases"}) {
    requests.push_back(api::QueryRequest(q).WithOptions(options));
  }
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> answered(requests.size(), 0);
  std::vector<api::QueryResponse> responses(requests.size());
  service.SubmitBatch(std::move(requests),
                      [&](size_t i, api::QueryResponse response) {
                        std::lock_guard<std::mutex> lock(mu);
                        ++answered[i];
                        responses[i] = std::move(response);
                        cv.notify_all();
                      });
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] {
      for (int count : answered) {
        if (count == 0) return false;
      }
      return true;
    }));
  }
  for (int count : answered) {
    EXPECT_EQ(count, 1);
  }
  EXPECT_TRUE(responses[0].ok());
  EXPECT_TRUE(responses[0].stats.cache_hit);
  EXPECT_EQ(responses[0].results.get(), &warm->results);
  EXPECT_TRUE(responses[1].ok());
  EXPECT_EQ(responses[2].status.code(), api::StatusCode::kInvalidArgument);
  EXPECT_TRUE(responses[3].ok());
  // The duplicate coalesced onto one computation: shared immutable list.
  EXPECT_EQ(responses[3].results.get(), responses[1].results.get());
  EXPECT_EQ(service.metrics().cache.misses, 2u);  // warm + "databases"
}

// ExecuteBatch (the blocking layer over SubmitBatchAsync) must stay
// byte-identical to serial execution and cache-aware across runs.
TEST(QueryServiceApi, ExecuteBatchMatchesSerialAndStaysCacheAware) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryService service(ctx, SmallService());
  search::QueryOptions options;
  options.l = 9;
  options.max_results = 3;

  std::vector<std::string> queries = {"faloutsos", "databases", "faloutsos",
                                      "nosuchkeywordanywhere"};
  std::vector<api::QueryRequest> requests;
  for (const std::string& q : queries) {
    requests.push_back(api::QueryRequest(q).WithOptions(options));
  }
  std::vector<api::QueryResponse> batch = service.ExecuteBatch(requests);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << queries[i];
    EXPECT_EQ(DeterministicResultText(batch[i].result_list()),
              DeterministicResultText(ctx.Query(queries[i], options)))
        << queries[i];
  }
  EXPECT_EQ(service.metrics().cache.misses, 3u);  // distinct queries only

  // Re-running is pure hits on the same immutable lists.
  std::vector<api::QueryResponse> again = service.ExecuteBatch(requests);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(again[i].stats.cache_hit) << queries[i];
    EXPECT_EQ(again[i].results.get(), batch[i].results.get()) << queries[i];
  }
  EXPECT_EQ(service.metrics().cache.misses, 3u);
}

TEST(QueryServiceApi, SubmitAsyncRequestAgreesWithExecute) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryService service(ctx, SmallService());
  api::QueryRequest request = api::QueryRequest("databases").WithL(8);

  api::QueryResponse from_future = service.SubmitAsync(request).get();
  ASSERT_TRUE(from_future.ok());
  api::QueryResponse direct = service.Execute(request);
  EXPECT_TRUE(direct.stats.cache_hit);  // one compute total
  EXPECT_EQ(from_future.results.get(), direct.results.get());
  EXPECT_EQ(service.metrics().cache.misses, 1u);
}

TEST(QueryServiceMetrics, LatencyReservoirsPopulate) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryService service(ctx, SmallService());
  for (int i = 0; i < 3; ++i) service.Query("faloutsos");
  Metrics m = service.metrics();
  EXPECT_EQ(m.queries, 3u);
  EXPECT_EQ(m.latency_us.count(), 3u);
  EXPECT_EQ(m.miss_latency_us.count(), 1u);
  EXPECT_EQ(m.hit_latency_us.count(), 2u);
  EXPECT_GE(m.latency_us.Percentile(99.0), m.latency_us.Percentile(50.0));
  // Misses do strictly more work than hits on this dataset.
  EXPECT_GT(m.miss_latency_us.Max(), 0.0);
}

// Negative answers (OK-empty) are first-class: flagged in QueryStats on
// both the miss and the hit, attributed in the cache counters and in the
// dedicated negative-hit latency reservoir.
TEST(QueryServicePolicy, NegativeHitsAttributedInStatsAndMetrics) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  QueryService service(ctx, SmallService());
  api::QueryRequest none = api::QueryRequest("nosuchkeywordanywhere");

  api::QueryResponse miss = service.Execute(none);
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss.stats.negative);
  EXPECT_FALSE(miss.stats.cache_hit);
  EXPECT_TRUE(miss.result_list().empty());

  api::QueryResponse hit = service.Execute(none);
  EXPECT_TRUE(hit.stats.cache_hit);
  EXPECT_TRUE(hit.stats.negative);

  api::QueryResponse positive = service.Execute(api::QueryRequest("faloutsos"));
  ASSERT_TRUE(positive.ok());
  EXPECT_FALSE(positive.stats.negative);

  Metrics m = service.metrics();
  EXPECT_EQ(m.cache.negative_hits, 1u);
  EXPECT_EQ(m.negative_hit_latency_us.count(), 1u);
  EXPECT_EQ(m.hit_latency_us.count(), 1u);  // the negative hit is a hit too
  EXPECT_EQ(m.cache.hits, 1u);
}

// The ISSUE 5 acceptance scenario end-to-end, on a fake clock with zero
// sleeps: an expired positive entry and an expired negative entry each
// recompute exactly once (stampede coalescing preserved across expiry),
// and after a context rebind no pre-bump value is served regardless of
// how much TTL it had left.
TEST(QueryServicePolicy, ExpiryRecomputesOnceAndRebindBeatsTtl) {
  ScoredDblp f(SmallDblpConfig());
  GatedBackend gated(&f.backend);
  search::SearchContext ctx = BuildDblpContext(f.d, &gated);

  auto clock = std::make_shared<FakeClock>();
  ServiceOptions so = SmallService();
  so.cache.clock = clock;
  so.cache.policy.ttl_micros = 1000;
  so.cache.policy.negative_ttl_micros = 100;
  // The partials memo would serve the post-expiry recompute without
  // touching the (gated) backend — correct, but it would decouple the
  // gate from the stampede this test proves. Disable it through the
  // service knob so the recompute demonstrably reaches the backend.
  core::PartialsMemoOptions no_partials;
  no_partials.enabled = false;
  so.partials = no_partials;
  QueryService service(ctx, so);

  search::QueryOptions options;
  options.l = 8;
  api::QueryRequest pos = api::QueryRequest("databases").WithOptions(options);
  api::QueryRequest neg =
      api::QueryRequest("nosuchkeywordanywhere").WithOptions(options);

  // Warm both at t=0: deadlines land at +1000 (positive) / +100 (negative).
  ASSERT_TRUE(service.Execute(pos).ok());
  ASSERT_TRUE(service.Execute(neg).ok());
  EXPECT_EQ(service.metrics().cache.misses, 2u);

  // t=100: only the negative entry expired. Concurrent re-queries must
  // produce exactly one recompute (the others coalesce or hit).
  clock->AdvanceMicros(100);
  EXPECT_TRUE(service.Execute(pos).stats.cache_hit) << "positive still live";
  {
    constexpr size_t kThreads = 4;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (size_t w = 0; w < kThreads; ++w) {
      threads.emplace_back([&] {
        api::QueryResponse r = service.Execute(neg);
        if (!r.ok() || !r.stats.negative) ADD_FAILURE() << "bad neg answer";
      });
    }
    for (std::thread& t : threads) t.join();
  }
  Metrics after_neg = service.metrics();
  EXPECT_EQ(after_neg.cache.misses, 3u);  // exactly one recompute
  EXPECT_EQ(after_neg.cache.negative_ttl_expiries, 1u);
  EXPECT_EQ(after_neg.cache.ttl_expiries, 0u);

  // t=1000: the positive entry expired. Hold the recompute on the gate so
  // the other callers are provably concurrent — still one compute.
  clock->AdvanceMicros(900);
  gated.CloseGate();
  std::vector<std::future<api::QueryResponse>> inflight;
  for (int i = 0; i < 3; ++i) inflight.push_back(service.SubmitAsync(pos));
  gated.WaitUntilBlocked();
  gated.OpenGate();
  for (auto& fut : inflight) {
    api::QueryResponse r = fut.get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(DeterministicResultText(r.result_list()),
              DeterministicResultText(ctx.Query("databases", options)));
  }
  Metrics after_pos = service.metrics();
  EXPECT_EQ(after_pos.cache.misses, 4u);  // exactly one recompute
  EXPECT_EQ(after_pos.cache.ttl_expiries, 1u);

  // Rebind invalidates instantly: the fresh positive entry had ~900us of
  // TTL left and is unservable anyway.
  search::SearchContext rebuilt = BuildDblpContext(f.d, &f.backend);
  service.RebindContext(rebuilt);
  api::QueryResponse after_rebind = service.Execute(pos);
  ASSERT_TRUE(after_rebind.ok());
  EXPECT_FALSE(after_rebind.stats.cache_hit);
  EXPECT_EQ(after_rebind.stats.epoch, 1u);
}

TEST(QueryServicePolicy, SweepExpiredCacheDropsOnlyExpiredEntries) {
  ScoredDblp f(SmallDblpConfig());
  search::SearchContext ctx = BuildDblpContext(f.d, &f.backend);
  auto clock = std::make_shared<FakeClock>();
  ServiceOptions so = SmallService();
  so.cache.clock = clock;
  so.cache.policy.ttl_micros = 1000;
  so.cache.policy.negative_ttl_micros = 100;
  QueryService service(ctx, so);

  ASSERT_TRUE(service.Execute(api::QueryRequest("databases")).ok());
  ASSERT_TRUE(
      service.Execute(api::QueryRequest("nosuchkeywordanywhere")).ok());
  EXPECT_EQ(service.SweepExpiredCache(), 0u);
  clock->AdvanceMicros(100);
  EXPECT_EQ(service.SweepExpiredCache(), 1u);  // the negative entry
  clock->AdvanceMicros(900);
  EXPECT_EQ(service.SweepExpiredCache(), 1u);  // the positive entry
  EXPECT_EQ(service.metrics().cache.entries, 0u);
}

/// Collects SubmitBatch callbacks and blocks until all have fired.
class BatchCollector {
 public:
  explicit BatchCollector(size_t n) : answered_(n, 0), responses_(n) {}

  std::function<void(size_t, api::QueryResponse)> Sink() {
    return [this](size_t i, api::QueryResponse response) {
      std::lock_guard<std::mutex> lock(mu_);
      ++answered_[i];
      responses_[i] = std::move(response);
      cv_.notify_all();
    };
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    ASSERT_TRUE(cv_.wait_for(lock, std::chrono::seconds(30), [&] {
      for (int count : answered_) {
        if (count == 0) return false;
      }
      return true;
    }));
  }
  const api::QueryResponse& response(size_t i) {
    std::lock_guard<std::mutex> lock(mu_);
    return responses_[i];
  }
  int answered(size_t i) {
    std::lock_guard<std::mutex> lock(mu_);
    return answered_[i];
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<int> answered_;
  std::vector<api::QueryResponse> responses_;
};

// A request whose budget is already spent on arrival is answered
// kDeadlineExceeded before the service spends anything on it — no cache
// lookup, no backend I/O — even when a cached answer exists. ("No time is
// spent on work nobody is waiting for", not "answer if cheap".)
TEST(QueryServiceOverload, ExpiredAtAdmissionShedsWithoutBackendWork) {
  ScoredDblp f(SmallDblpConfig());
  CountingBackend counting(&f.backend);
  search::SearchContext ctx = BuildDblpContext(f.d, &counting);
  auto clock = std::make_shared<FakeClock>();
  ServiceOptions so = SmallService();
  so.cache.clock = clock;
  QueryService service(ctx, so);
  search::QueryOptions options;
  options.l = 8;

  // Warm the key so "shed beats a ready cache hit" is what gets proven.
  ResultPtr warm = service.Query("databases", options);
  ASSERT_NE(warm, nullptr);
  uint64_t fetches_after_warm = counting.fetches();
  uint64_t hits_after_warm = service.metrics().cache.hits;

  std::vector<api::QueryRequest> requests;
  requests.push_back(api::QueryRequest("databases").WithOptions(options));
  std::vector<uint64_t> deadlines = {clock->NowMicros() - 1};
  BatchCollector collector(1);
  service.SubmitBatch(std::move(requests), std::move(deadlines),
                      collector.Sink());
  collector.Wait();

  EXPECT_EQ(collector.response(0).status.code(),
            api::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(collector.response(0).result_list().empty());
  EXPECT_EQ(counting.fetches(), fetches_after_warm);
  Metrics m = service.metrics();
  EXPECT_EQ(m.sheds_at_admission, 1u);
  EXPECT_EQ(m.sheds_at_dequeue, 0u);
  EXPECT_EQ(m.cache.hits, hits_after_warm);  // shed before the cache
  EXPECT_EQ(m.pending_misses, 0u);
}

// The pending-miss watermark sheds lowest-budget-first: when the pool
// backs up past max_pending_misses, the queued miss with the earliest
// absolute deadline is the victim — unless the newcomer's own budget is
// even lower, in which case it is shed inline instead.
TEST(QueryServiceOverload, WatermarkShedsLowestBudgetFirst) {
  ScoredDblp f(SmallDblpConfig());
  GatedBackend gated(&f.backend);
  search::SearchContext ctx = BuildDblpContext(f.d, &gated);
  auto clock = std::make_shared<FakeClock>();
  ServiceOptions so;
  so.num_threads = 1;  // one worker: everything behind the gate queues
  so.cache.num_shards = 2;
  so.cache.clock = clock;
  so.overload.max_pending_misses = 2;
  QueryService service(ctx, so);
  search::QueryOptions options;
  options.l = 8;
  const uint64_t now = clock->NowMicros();

  auto submit_one = [&](const char* q, uint64_t deadline,
                        BatchCollector* collector) {
    std::vector<api::QueryRequest> requests;
    requests.push_back(api::QueryRequest(q).WithOptions(options));
    service.SubmitBatch(std::move(requests), {deadline}, collector->Sink());
  };

  // Park the single worker on a deadline-less miss so subsequent misses
  // pile up as pending.
  gated.CloseGate();
  BatchCollector blocker(1);
  submit_one("faloutsos", 0, &blocker);
  gated.WaitUntilBlocked();  // worker busy; pending count is now exact

  BatchCollector early(1), late(1), mid(1), hopeless(1);
  submit_one("databases", now + 1'000, &early);  // pending #1
  submit_one("mining", now + 2'000, &late);      // pending #2 — watermark
  // Newcomer with more budget than the earliest pending: the earliest
  // ("databases") is the victim and the newcomer takes its place.
  submit_one("graphs", now + 1'500, &mid);
  // Newcomer with less budget than every pending miss: shed inline.
  submit_one("clustering", now + 500, &hopeless);
  EXPECT_EQ(hopeless.answered(0), 1);
  EXPECT_EQ(hopeless.response(0).status.code(),
            api::StatusCode::kDeadlineExceeded);

  gated.OpenGate();
  blocker.Wait();
  early.Wait();
  late.Wait();
  mid.Wait();

  EXPECT_TRUE(blocker.response(0).ok());
  EXPECT_EQ(early.response(0).status.code(),
            api::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(late.response(0).ok());
  EXPECT_TRUE(mid.response(0).ok());
  Metrics m = service.metrics();
  EXPECT_EQ(m.sheds_at_admission, 2u);  // "databases" victim + "clustering"
  EXPECT_EQ(m.sheds_at_dequeue, 0u);
  EXPECT_EQ(m.pending_misses, 0u);
}

// Deadline-less work has infinite budget: it is never displaced by a
// finite-budget newcomer — the newcomer is shed instead.
TEST(QueryServiceOverload, DeadlinelessWorkIsNeverTheWatermarkVictim) {
  ScoredDblp f(SmallDblpConfig());
  GatedBackend gated(&f.backend);
  search::SearchContext ctx = BuildDblpContext(f.d, &gated);
  auto clock = std::make_shared<FakeClock>();
  ServiceOptions so;
  so.num_threads = 1;
  so.cache.num_shards = 2;
  so.cache.clock = clock;
  so.overload.max_pending_misses = 1;
  QueryService service(ctx, so);
  search::QueryOptions options;
  options.l = 8;

  auto submit_one = [&](const char* q, uint64_t deadline,
                        BatchCollector* collector) {
    std::vector<api::QueryRequest> requests;
    requests.push_back(api::QueryRequest(q).WithOptions(options));
    service.SubmitBatch(std::move(requests), {deadline}, collector->Sink());
  };

  gated.CloseGate();
  BatchCollector blocker(1);
  submit_one("faloutsos", 0, &blocker);
  gated.WaitUntilBlocked();

  BatchCollector patient(1), newcomer(1);
  submit_one("databases", 0, &patient);  // deadline-less, fills watermark
  submit_one("mining", clock->NowMicros() + 1'000'000, &newcomer);
  EXPECT_EQ(newcomer.answered(0), 1);  // shed inline, generous budget or not
  EXPECT_EQ(newcomer.response(0).status.code(),
            api::StatusCode::kDeadlineExceeded);

  gated.OpenGate();
  blocker.Wait();
  patient.Wait();
  EXPECT_TRUE(blocker.response(0).ok());
  EXPECT_TRUE(patient.response(0).ok());
  EXPECT_EQ(service.metrics().sheds_at_admission, 1u);
}

// A miss whose budget expires while queued behind a busy pool is answered
// kDeadlineExceeded when dequeued, before compute: zero backend I/O for
// the expired request, counted as a dequeue shed. Also exercises the
// relative-budget SubmitBatch overload (the deadline here comes from
// request.deadline_micros, stamped against the service clock at entry).
TEST(QueryServiceOverload, ExpiredWhileQueuedShedsAtDequeueWithoutCompute) {
  ScoredDblp f(SmallDblpConfig());
  GatedBackend gated(&f.backend);
  CountingBackend counting(&gated);
  search::SearchContext ctx = BuildDblpContext(f.d, &counting);
  auto clock = std::make_shared<FakeClock>();
  ServiceOptions so;
  so.num_threads = 1;
  so.cache.num_shards = 2;
  so.cache.clock = clock;
  QueryService service(ctx, so);
  search::QueryOptions options;
  options.l = 8;

  gated.CloseGate();
  uint64_t fetches_before = counting.fetches();
  BatchCollector blocker(1);
  {
    std::vector<api::QueryRequest> requests;
    requests.push_back(api::QueryRequest("faloutsos").WithOptions(options));
    service.SubmitBatch(std::move(requests), blocker.Sink());
  }
  gated.WaitUntilBlocked();

  // Queue a miss with a 1ms budget via the RELATIVE overload, then burn
  // the budget while it waits behind the parked worker.
  BatchCollector doomed(1);
  {
    std::vector<api::QueryRequest> requests;
    requests.push_back(api::QueryRequest("databases")
                           .WithOptions(options)
                           .WithDeadlineMicros(1'000));
    service.SubmitBatch(std::move(requests), doomed.Sink());
  }
  clock->AdvanceMicros(2'000);
  gated.OpenGate();
  blocker.Wait();
  doomed.Wait();

  EXPECT_TRUE(blocker.response(0).ok());
  EXPECT_EQ(doomed.response(0).status.code(),
            api::StatusCode::kDeadlineExceeded);
  // The blocker's compute is the only backend traffic after the gate
  // opened: the expired miss never touched it.
  uint64_t blocker_fetches = counting.fetches() - fetches_before;
  EXPECT_GT(blocker_fetches, 0u);
  // A twin context over its own counter establishes exactly how many
  // fetches one uncached "faloutsos" compute costs.
  CountingBackend twin_counter(&f.backend);
  search::SearchContext twin_ctx = BuildDblpContext(f.d, &twin_counter);
  uint64_t twin_before = twin_counter.fetches();
  (void)twin_ctx.Query("faloutsos", options);
  EXPECT_EQ(blocker_fetches, twin_counter.fetches() - twin_before);

  Metrics m = service.metrics();
  EXPECT_EQ(m.sheds_at_dequeue, 1u);
  EXPECT_EQ(m.sheds_at_admission, 0u);
  EXPECT_EQ(m.pending_misses, 0u);
}

// Pins the exact report the CLI's `metrics` command prints (osum_cli
// delegates to FormatMetricsReport, so this is the CLI output-shape test
// the negative-hit counters needed).
TEST(MetricsReport, ShapePinnedForTheCli) {
  Metrics m;
  m.queries = 7;
  m.cache.hits = 4;
  m.cache.negative_hits = 1;
  m.cache.misses = 3;
  m.cache.coalesced_waits = 2;
  m.cache.entries = 3;
  m.cache.approx_bytes = 4096;
  m.cache.evictions = 5;
  m.cache.epoch = 2;
  m.cache.admission_rejects = 6;
  m.cache.tracked_sightings = 2;
  m.cache.ttl_expiries = 8;
  m.cache.negative_ttl_expiries = 9;
  m.sheds_at_admission = 3;
  m.sheds_at_dequeue = 1;
  m.pending_misses = 2;
  m.partials.hits = 12;
  m.partials.misses = 9;
  m.partials.inserts = 8;
  m.partials.discarded_inserts = 1;
  m.partials.evictions = 2;
  m.partials.entries = 6;
  m.partials.approx_bytes = 2048;
  m.partials.epoch = 1;
  for (double v : {1.0, 2.0, 4.0}) m.latency_us.Add(v);
  for (double v : {1.0, 2.0}) m.hit_latency_us.Add(v);
  m.miss_latency_us.Add(4.0);

  EXPECT_EQ(FormatMetricsReport(m),
            "queries 7 | hits 4 (1 negative), misses 3, coalesced 2 | "
            "entries 3 (~4096 bytes), evictions 5, epoch 2\n"
            "policy: admission rejects 6 (2 tracked), ttl expiries "
            "8 positive + 9 negative\n"
            "overload: sheds 3 at admission + 1 at dequeue, "
            "2 misses pending\n"
            "partials: hits 12, misses 9, inserts 8 (1 discarded), "
            "evictions 2 | entries 6 (~2048 bytes), epoch 1\n"
            "  latency      p50 2.0 us, p99 4.0 us, max 4.0 us\n"
            "    hits       p50 1.5 us, p99 2.0 us, max 2.0 us\n"
            "    neg hits   (no samples)\n"
            "    misses     p50 4.0 us, p99 4.0 us, max 4.0 us\n");
}

// TSan canary for the full serving stack: many driver threads hammer one
// service (sync + async + batch, overlapping keys) while the pool computes
// misses. Verifies every answer against precomputed goldens.
TEST(ServeConcurrencyStress, MixedTrafficOneService) {
  ScoredDblp f(SmallDblpConfig());
  core::DatabaseBackend backend(f.d.db, f.d.links, /*per_select_micros=*/0.0);
  search::SearchContext ctx = BuildDblpContext(f.d, &backend);
  ServiceOptions so;
  so.num_threads = 4;
  so.cache.num_shards = 4;
  so.cache.max_entries = 16;  // small: force concurrent eviction too
  QueryService service(ctx, so);

  search::QueryOptions options;
  options.l = 8;
  options.max_results = 3;
  std::vector<std::string> mix = {"faloutsos",  "databases", "mining",
                                  "power law",  "clustering", "graphs",
                                  "christos faloutsos", "streams"};
  std::vector<std::string> golden;
  golden.reserve(mix.size());
  for (const std::string& q : mix) {
    golden.push_back(DeterministicResultText(ctx.Query(q, options)));
  }

  std::atomic<int> mismatches{0};
  auto check = [&](size_t qi, const ResultPtr& r) {
    if (r == nullptr || DeterministicResultText(r->results) != golden[qi]) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  };
  auto check_response = [&](size_t qi, const api::QueryResponse& r) {
    if (!r.ok() || DeterministicResultText(r.result_list()) != golden[qi]) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  };

  constexpr size_t kDrivers = 4;
  constexpr int kRounds = 6;
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (size_t w = 0; w < kDrivers; ++w) {
    drivers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        size_t qi = (round + w) % mix.size();
        check(qi, service.Query(mix[qi], options));
        auto fut = service.SubmitAsync(mix[(qi + 1) % mix.size()], options);
        check((qi + 1) % mix.size(), fut.get());
        // The typed surface shares the same cache and pool: one Execute
        // and a two-request async batch per round.
        size_t ei = (qi + 2) % mix.size();
        check_response(
            ei, service.Execute(api::QueryRequest(mix[ei]).WithOptions(
                    options)));
        std::vector<api::QueryRequest> batch;
        batch.push_back(api::QueryRequest(mix[qi]).WithOptions(options));
        batch.push_back(
            api::QueryRequest(mix[(qi + 3) % mix.size()]).WithOptions(
                options));
        auto futures = service.SubmitBatchAsync(std::move(batch));
        check_response(qi, futures[0].get());
        check_response((qi + 3) % mix.size(), futures[1].get());
        if (w == 0 && round == kRounds / 2) service.ClearCache();
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  Metrics m = service.metrics();
  // 5 recorded queries per round: legacy sync + legacy async + Execute +
  // the 2-request async batch.
  EXPECT_EQ(m.queries,
            static_cast<uint64_t>(kDrivers) * kRounds * 5);
  EXPECT_EQ(m.cache.hits + m.cache.misses + m.cache.coalesced_waits,
            m.queries);
}

}  // namespace
}  // namespace osum::serve
