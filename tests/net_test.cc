// The TCP front end, end to end over real sockets: frame reassembly across
// pathological read boundaries, in-band rejection of well-framed garbage,
// connection drop on framing violations, response ordering under
// pipelining, backpressure against a slow reader (the outbound queue must
// stay bounded), and graceful drain — Shutdown must answer and flush every
// request it already accepted before the loop stops.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/codec.h"
#include "api/query.h"
#include "api/status.h"
#include "core/os_backend.h"
#include "db_fixtures.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "search/engine.h"
#include "serve/clock.h"
#include "serve/query_service.h"

namespace osum::net {
namespace {

using osum::api::DeterministicResponseText;
using osum::testing::ScoredDblp;
using osum::testing::SmallDblpConfig;

// ---- framing unit tests --------------------------------------------------

TEST(FrameReassembler, ReassemblesAcrossOneByteFeeds) {
  std::vector<std::string> payloads = {"alpha", "", "a longer third payload"};
  std::string stream;
  for (const std::string& p : payloads) stream += EncodeFrame(p);

  FrameReassembler frames;
  std::vector<std::string> got;
  for (char c : stream) {
    ASSERT_TRUE(frames.Feed(std::string_view(&c, 1)));
    while (std::optional<std::string> payload = frames.Next()) {
      got.push_back(*payload);
    }
  }
  EXPECT_EQ(got, payloads);
  EXPECT_EQ(frames.buffered_bytes(), 0u);
  EXPECT_FALSE(frames.poisoned());
}

TEST(FrameReassembler, SplitInsideTheLengthPrefix) {
  std::string frame = EncodeFrame("payload");
  FrameReassembler frames;
  // Two bytes of the u32 prefix only: no frame, no poisoning.
  ASSERT_TRUE(frames.Feed(std::string_view(frame.data(), 2)));
  EXPECT_FALSE(frames.Next().has_value());
  ASSERT_TRUE(frames.Feed(std::string_view(frame.data() + 2,
                                           frame.size() - 2)));
  std::optional<std::string> payload = frames.Next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "payload");
}

TEST(FrameReassembler, ManyFramesInOneFeed) {
  std::string stream = EncodeFrame("a") + EncodeFrame("bb") + EncodeFrame("c");
  FrameReassembler frames;
  ASSERT_TRUE(frames.Feed(stream));
  EXPECT_EQ(frames.Next().value_or("?"), "a");
  EXPECT_EQ(frames.Next().value_or("?"), "bb");
  EXPECT_EQ(frames.Next().value_or("?"), "c");
  EXPECT_FALSE(frames.Next().has_value());
}

TEST(FrameReassembler, OversizedPrefixPoisonsImmediately) {
  FrameReassembler frames(/*max_frame_bytes=*/1024);
  std::string huge = EncodeFrame(std::string(2048, 'x'));
  // The poisonous prefix is rejected as soon as it is complete — the
  // reassembler never buffers toward an impossible frame.
  EXPECT_FALSE(frames.Feed(std::string_view(huge.data(), 8)));
  EXPECT_TRUE(frames.poisoned());
  EXPECT_FALSE(frames.Next().has_value());
  EXPECT_FALSE(frames.Feed("more"));  // poisoned is permanent
  EXPECT_EQ(frames.buffered_bytes(), 0u);
}

TEST(FrameReassembler, OversizedPrefixBehindValidFrameStillPoisons) {
  FrameReassembler frames(/*max_frame_bytes=*/1024);
  std::string stream = EncodeFrame("ok") + EncodeFrame(std::string(4096, 'y'));
  frames.Feed(stream);  // returns false once the bad prefix is seen
  // The valid frame parsed before the violation is still delivered...
  std::optional<std::string> first = frames.Next();
  if (first.has_value()) {
    EXPECT_EQ(*first, "ok");
  }
  // ...but the stream is dead afterwards.
  EXPECT_TRUE(frames.poisoned());
  EXPECT_FALSE(frames.Next().has_value());
}

// ---- server fixtures -----------------------------------------------------

search::SearchContext BuildDblpContext(const datasets::Dblp& d,
                                       core::OsBackend* backend) {
  std::vector<search::SearchContext::Subject> subjects;
  subjects.push_back({d.author, datasets::DblpAuthorGds(d)});
  subjects.push_back({d.paper, datasets::DblpPaperGds(d)});
  return search::SearchContext::Build(d.db, backend, std::move(subjects));
}

serve::ServiceOptions SmallService() {
  serve::ServiceOptions o;
  o.num_threads = 3;
  o.cache.num_shards = 2;
  return o;
}

/// Delegating back end whose join calls can be parked on a gate — the
/// lever that keeps a request deterministically in flight while Shutdown
/// runs (same idiom as serve_service_test).
class GatedBackend : public core::OsBackend {
 public:
  explicit GatedBackend(core::OsBackend* inner) : inner_(inner) {}

  const char* name() const override { return "gated"; }

  void Fetch(graph::LinkTypeId link, rel::FkDirection dir,
             rel::TupleId parent_tuple,
             std::vector<rel::TupleId>* out) override {
    Enter();
    inner_->Fetch(link, dir, parent_tuple, out);
  }
  void FetchTop(graph::LinkTypeId link, rel::FkDirection dir,
                rel::TupleId parent_tuple, size_t limit,
                double min_importance,
                std::vector<rel::TupleId>* out) override {
    Enter();
    inner_->FetchTop(link, dir, parent_tuple, limit, min_importance, out);
  }

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gate_closed_ = true;
  }
  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gate_closed_ = false;
    }
    cv_.notify_all();
  }
  void WaitUntilBlocked() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return waiting_ > 0; });
  }

 private:
  void Enter() {
    std::unique_lock<std::mutex> lock(mu_);
    if (!gate_closed_) return;
    ++waiting_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return !gate_closed_; });
    --waiting_;
  }

  core::OsBackend* inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool gate_closed_ = false;
  int waiting_ = 0;
};

/// Delegating back end that counts join calls — the witness that shed
/// requests cost zero backend I/O.
class CountingBackend : public core::OsBackend {
 public:
  explicit CountingBackend(core::OsBackend* inner) : inner_(inner) {}

  const char* name() const override { return "counting"; }

  void Fetch(graph::LinkTypeId link, rel::FkDirection dir,
             rel::TupleId parent_tuple,
             std::vector<rel::TupleId>* out) override {
    fetches_.fetch_add(1, std::memory_order_relaxed);
    inner_->Fetch(link, dir, parent_tuple, out);
  }
  void FetchTop(graph::LinkTypeId link, rel::FkDirection dir,
                rel::TupleId parent_tuple, size_t limit,
                double min_importance,
                std::vector<rel::TupleId>* out) override {
    fetches_.fetch_add(1, std::memory_order_relaxed);
    inner_->FetchTop(link, dir, parent_tuple, limit, min_importance, out);
  }

  uint64_t fetches() const {
    return fetches_.load(std::memory_order_relaxed);
  }

 private:
  core::OsBackend* inner_;
  std::atomic<uint64_t> fetches_{0};
};

/// A bare kernel-level listener that never speaks the protocol — the prop
/// for the client-hang regression tests. The kernel completes handshakes
/// into the accept queue, so a Client can connect (and fill socket
/// buffers) without this listener ever reading or writing.
struct RawListener {
  int fd = -1;
  uint16_t port = 0;

  explicit RawListener(int backlog = 4) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, backlog) != 0) {
      ::close(fd);
      fd = -1;
      return;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      port = ntohs(addr.sin_port);
    }
  }
  ~RawListener() {
    if (fd >= 0) ::close(fd);
  }
  int Accept() { return ::accept(fd, nullptr, nullptr); }
};

/// One small DBLP database + engine context + service + running server.
struct ServerFixture {
  explicit ServerFixture(ServerOptions options = {},
                         core::OsBackend* backend_override = nullptr)
      : dblp(SmallDblpConfig()),
        context(BuildDblpContext(
            dblp.d, backend_override != nullptr ? backend_override
                                                : &dblp.backend)),
        service(context, SmallService()),
        server(&service, options) {
    api::Status status = server.Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
  }

  Client Connect() {
    api::StatusOr<Client> client =
        Client::Connect("127.0.0.1", server.port(), /*timeout_ms=*/30'000);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  ScoredDblp dblp;
  search::SearchContext context;
  serve::QueryService service;
  Server server;
};

api::QueryRequest SmallRequest(const std::string& keywords) {
  return api::QueryRequest(keywords).WithL(8).WithMaxResults(2);
}

// ---- server end-to-end ---------------------------------------------------

TEST(NetServer, RoundTripMatchesInProcessExecute) {
  ServerFixture fx;
  Client client = fx.Connect();

  api::QueryRequest request = SmallRequest("faloutsos");
  ASSERT_TRUE(client.Send(request).ok());
  api::StatusOr<api::QueryResponse> response = client.Receive();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->ok()) << response->status.ToString();
  // The socket adds transport, not semantics: byte-identical to the
  // in-process answer (stats excluded — DeterministicResponseText ignores
  // them by design).
  EXPECT_EQ(DeterministicResponseText(*response),
            DeterministicResponseText(fx.service.Execute(request)));

  ServerStats stats = fx.server.stats();
  EXPECT_EQ(stats.frames_in, 1u);
  EXPECT_EQ(stats.responses_out, 1u);
  EXPECT_EQ(stats.connections_accepted, 1u);
}

TEST(NetServer, PipelinedResponsesArriveInRequestOrder) {
  ServerFixture fx;
  Client client = fx.Connect();

  // A pipelined burst: two distinct queries, one invalid request (empty
  // keyword set) wedged between them, then a repeat of the first (a cache
  // hit answered inline while the misses may still be computing).
  std::vector<api::QueryRequest> requests = {
      SmallRequest("faloutsos"), api::QueryRequest(""),
      SmallRequest("databases"), SmallRequest("faloutsos")};
  for (const api::QueryRequest& r : requests) {
    ASSERT_TRUE(client.Send(r).ok());
  }

  std::vector<api::QueryResponse> responses;
  for (size_t i = 0; i < requests.size(); ++i) {
    api::StatusOr<api::QueryResponse> r = client.Receive();
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
    responses.push_back(*std::move(r));
  }
  // Order is the request order, whatever order the pool finished in.
  EXPECT_TRUE(responses[0].ok());
  EXPECT_EQ(responses[1].status.code(), api::StatusCode::kInvalidArgument);
  EXPECT_TRUE(responses[2].ok());
  EXPECT_TRUE(responses[3].ok());
  EXPECT_EQ(DeterministicResponseText(responses[0]),
            DeterministicResponseText(responses[3]));
  EXPECT_NE(DeterministicResponseText(responses[0]),
            DeterministicResponseText(responses[2]));
  EXPECT_EQ(fx.server.stats().frames_in, 4u);
  EXPECT_EQ(fx.server.stats().responses_out, 4u);
}

TEST(NetServer, MalformedPayloadIsAnsweredInBandAndStreamSurvives) {
  ServerFixture fx;
  Client client = fx.Connect();

  // Well-framed garbage: framing stays in sync, so the server answers
  // kCodecError in-band instead of dropping the connection.
  ASSERT_TRUE(client.SendPayload("this is not a codec document").ok());
  api::StatusOr<api::QueryResponse> rejected = client.Receive();
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->status.code(), api::StatusCode::kCodecError);
  EXPECT_TRUE(rejected->result_list().empty());

  // The same connection still serves real queries afterwards.
  ASSERT_TRUE(client.Send(SmallRequest("faloutsos")).ok());
  api::StatusOr<api::QueryResponse> served = client.Receive();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_TRUE(served->ok());

  ServerStats stats = fx.server.stats();
  EXPECT_EQ(stats.malformed_frames, 1u);
  EXPECT_EQ(stats.framing_violations, 0u);
  EXPECT_EQ(stats.frames_in, 2u);
}

TEST(NetServer, OversizedFramePrefixDropsTheConnection) {
  ServerOptions options;
  options.max_frame_bytes = 1024;
  ServerFixture fx(options);
  Client client = fx.Connect();

  // A prefix announcing 2 MiB on a 1 KiB server: resynchronization is
  // impossible, the only safe move is dropping the connection.
  ASSERT_TRUE(client.SendBytes(
      EncodeFrame(std::string(2 * 1024 * 1024, 'x'))).ok());
  api::StatusOr<api::QueryResponse> response = client.Receive();
  EXPECT_FALSE(response.ok());

  for (int i = 0; i < 200 && fx.server.stats().framing_violations == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ServerStats stats = fx.server.stats();
  EXPECT_EQ(stats.framing_violations, 1u);
  EXPECT_EQ(stats.connections_closed, 1u);
  EXPECT_EQ(stats.responses_out, 0u);
}

TEST(NetServer, SlowReaderIsBackpressuredNotBufferedWithoutBound) {
  ServerOptions options;
  options.outbound_high_watermark = 2 * 1024;  // pause reads almost at once
  options.outbound_hard_cap = 256u << 20;      // but never disconnect
  ServerFixture fx(options);
  Client client = fx.Connect();

  // Responses must dwarf what the kernel socket buffers can absorb or the
  // server never sees EAGAIN and never needs to pause reads. A duplicated
  // keyword canonicalizes to the same cache key as the single keyword —
  // fat ~2 KiB request frames, one computed response served from cache —
  // and l=40 with several results makes that one response heavyweight.
  api::QueryRequest request("faloutsos");
  request.WithL(40).WithMaxResults(8);
  std::string fat_keywords;
  for (int i = 0; i < 200; ++i) fat_keywords += "faloutsos ";
  api::QueryRequest fat_request = request;
  fat_request.WithKeywords(fat_keywords);
  ASSERT_EQ(fat_request.CacheKey(), request.CacheKey());

  const size_t response_bytes =
      api::EncodeResponse(fx.service.Execute(request)).size();
  ASSERT_GE(response_bytes, 256u) << "fixture response too small to "
                                     "overwhelm kernel buffering";
  // Enough pipelined copies that the response stream is ~32 MiB.
  const uint64_t kRequests =
      std::max<uint64_t>(2000, (32u << 20) / response_bytes);

  // Sent by a thread that never reads: once the server pauses reads, TCP
  // flow control backs the sender up and Send() itself blocks.
  std::thread sender([&client, &fat_request, kRequests] {
    for (uint64_t i = 0; i < kRequests; ++i) {
      if (!client.Send(fat_request).ok()) return;
    }
  });

  // Wait until the server's intake stalls: reads paused, queue bounded.
  uint64_t last = 0;
  int stable = 0;
  for (int i = 0; i < 600 && stable < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    uint64_t now = fx.server.stats().frames_in;
    stable = (now > 0 && now == last) ? stable + 1 : 0;
    last = now;
  }
  ServerStats stalled = fx.server.stats();
  EXPECT_GT(stalled.frames_in, 0u);
  EXPECT_LT(stalled.frames_in, kRequests)
      << "backpressure never paused reads";
  EXPECT_EQ(stalled.backpressure_closes, 0u);
  EXPECT_LE(stalled.max_queued_bytes, options.outbound_hard_cap);

  // Start draining: every request is eventually answered, none dropped.
  for (uint64_t i = 0; i < kRequests; ++i) {
    api::StatusOr<api::QueryResponse> response = client.Receive();
    ASSERT_TRUE(response.ok()) << i << ": " << response.status().ToString();
    EXPECT_TRUE(response->ok());
  }
  sender.join();
  ServerStats final_stats = fx.server.stats();
  EXPECT_EQ(final_stats.frames_in, kRequests);
  EXPECT_EQ(final_stats.responses_out, kRequests);
  EXPECT_EQ(final_stats.dropped_responses, 0u);
  EXPECT_EQ(final_stats.backpressure_closes, 0u);
  EXPECT_LE(final_stats.max_queued_bytes, options.outbound_hard_cap);
}

TEST(NetServer, GracefulShutdownDrainsInFlightRequests) {
  ScoredDblp dblp(SmallDblpConfig());
  GatedBackend gated(&dblp.backend);
  search::SearchContext context = BuildDblpContext(dblp.d, &gated);
  serve::QueryService service(context, SmallService());
  Server server(&service);
  ASSERT_TRUE(server.Start().ok());
  api::StatusOr<Client> client =
      Client::Connect("127.0.0.1", server.port(), /*timeout_ms=*/60'000);
  ASSERT_TRUE(client.ok());

  // Park a miss on the gate, then shut down while it is in flight.
  gated.CloseGate();
  api::QueryRequest request = SmallRequest("faloutsos");
  ASSERT_TRUE(client->Send(request).ok());
  gated.WaitUntilBlocked();

  std::atomic<bool> shutdown_done{false};
  bool drained = false;
  std::thread shutter([&] {
    drained = server.Shutdown();
    shutdown_done.store(true);
  });
  // Drain must wait for the in-flight answer, not abandon it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(shutdown_done.load());

  gated.OpenGate();
  // The response was computed, flushed and delivered before the close.
  api::StatusOr<api::QueryResponse> response = client->Receive();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->ok());
  shutter.join();
  EXPECT_TRUE(drained);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.responses_out, 1u);
  EXPECT_EQ(stats.dropped_responses, 0u);

  // The listener is gone: new connections are refused.
  EXPECT_FALSE(Client::Connect("127.0.0.1", server.port(),
                               /*timeout_ms=*/1000).ok());
}

TEST(NetServer, ShutdownIsIdempotentAndIdleShutdownIsFast) {
  ServerFixture fx;
  Client client = fx.Connect();  // an idle connection must not stall drain
  EXPECT_TRUE(fx.server.Shutdown());
  EXPECT_TRUE(fx.server.Shutdown());  // second call: remembered verdict
}

TEST(NetServer, StartupErrorsAreReportedNotFatal) {
  ScoredDblp dblp(SmallDblpConfig());
  search::SearchContext context = BuildDblpContext(dblp.d, &dblp.backend);
  serve::QueryService service(context, SmallService());
  ServerOptions options;
  options.bind_address = "not an address";
  Server server(&service, options);
  EXPECT_FALSE(server.Start().ok());
  // Destroying a never-started server is a no-op, not a hang.
}

// ---- per-connection fairness ---------------------------------------------

// A pipelining firehose must not starve an interactive connection: with
// round-robin dispatch and a bounded inflight window, the slow client's
// single miss is answered after a handful of firehose computes, not after
// the firehose's entire backlog. (Under the old drain-to-exhaustion
// dispatch the firehose's whole burst entered the pool queue first and
// this assertion fails by two orders of magnitude.)
TEST(NetFairness, FirehoseCannotStarveTheInteractiveConnection) {
  ScoredDblp dblp(SmallDblpConfig());
  GatedBackend gated(&dblp.backend);
  search::SearchContext context = BuildDblpContext(dblp.d, &gated);
  serve::ServiceOptions so;
  so.num_threads = 1;  // serial computes make "how many ran first" exact
  so.cache.num_shards = 2;
  serve::QueryService service(context, so);
  ServerOptions options;
  options.max_inflight_requests = 4;
  Server server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  auto connect = [&] {
    api::StatusOr<Client> c =
        Client::Connect("127.0.0.1", server.port(), /*timeout_ms=*/60'000);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(c).value();
  };
  Client firehose = connect();
  Client interactive = connect();

  // Park the pool, then flood: every firehose request is a distinct-key
  // miss (same keywords, different max_results), so nothing coalesces.
  constexpr uint64_t kFlood = 200;
  gated.CloseGate();
  for (uint64_t i = 0; i < kFlood; ++i) {
    ASSERT_TRUE(firehose
                    .Send(api::QueryRequest("faloutsos").WithL(8).WithMaxResults(
                        1 + i))
                    .ok());
  }
  // Wait until the flood is on the server (window-many dispatched, the
  // rest queued in the reassembler) before the interactive request shows
  // up — the worst case for the slow client.
  for (int i = 0; i < 600 && server.stats().frames_in < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(server.stats().frames_in, 4u);
  ASSERT_TRUE(interactive
                  .Send(api::QueryRequest("databases").WithL(8).WithMaxResults(
                      1000))
                  .ok());
  gated.OpenGate();

  api::StatusOr<api::QueryResponse> answer = interactive.Receive();
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer->ok()) << answer->status.ToString();
  // The interactive answer arrived while the firehose backlog was still
  // mostly unserved: it waited for at most a window's worth of computes
  // plus a couple of round-robin turns, not for kFlood of them.
  uint64_t served_first = server.stats().responses_out;
  EXPECT_LT(served_first, 32u)
      << "interactive request waited behind the firehose backlog";

  // Nothing is lost for the firehose either — every flooded request is
  // eventually answered, in order.
  for (uint64_t i = 0; i < kFlood; ++i) {
    api::StatusOr<api::QueryResponse> r = firehose.Receive();
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
    EXPECT_TRUE(r->ok());
  }
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_in, kFlood + 1);
  EXPECT_EQ(stats.responses_out, kFlood + 1);
  EXPECT_EQ(stats.dropped_responses, 0u);
}

// ---- overload end to end -------------------------------------------------

// The acceptance scenario: a firehose pipelines misses with tight
// deadlines while a well-behaved client uses a generous one. The tight
// budgets burn out while queued behind a parked pool; when the pool
// resumes, the expired requests are answered kDeadlineExceeded WITHOUT
// backend compute (pinned by backend I/O counters against a twin context)
// and the well-behaved request is answered normally. Every counter
// reconciles. Deadlines ride the v2 wire revision end to end.
TEST(NetOverload, TightDeadlinesShedWithoutComputeGenerousOnesSucceed) {
  ScoredDblp dblp(SmallDblpConfig());
  CountingBackend counting(&dblp.backend);
  GatedBackend gated(&counting);
  search::SearchContext context = BuildDblpContext(dblp.d, &gated);
  auto clock = std::make_shared<serve::FakeClock>();
  serve::ServiceOptions so;
  so.num_threads = 1;
  so.cache.num_shards = 2;
  so.cache.clock = clock;
  serve::QueryService service(context, so);
  Server server(&service);
  ASSERT_TRUE(server.Start().ok());
  auto connect = [&] {
    api::StatusOr<Client> c =
        Client::Connect("127.0.0.1", server.port(), /*timeout_ms=*/60'000);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(c).value();
  };
  Client firehose = connect();
  Client behaved = connect();

  // Park the single worker on a deadline-less blocker.
  gated.CloseGate();
  ASSERT_TRUE(firehose.Send(SmallRequest("faloutsos")).ok());
  gated.WaitUntilBlocked();
  uint64_t fetches_before = counting.fetches();

  // The firehose pipelines tight-deadline misses (distinct keys); they
  // must all be dispatched — deadline stamped against the fake clock —
  // before the budget burns.
  constexpr uint64_t kTight = 20;
  for (uint64_t i = 0; i < kTight; ++i) {
    ASSERT_TRUE(firehose
                    .Send(api::QueryRequest("databases")
                              .WithL(8)
                              .WithMaxResults(1 + i)
                              .WithDeadlineMicros(1'000))
                    .ok());
  }
  for (int i = 0; i < 1200 && server.stats().frames_in < kTight + 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.stats().frames_in, kTight + 1);
  // The well-behaved client's budget is generous enough to survive the
  // clock jump below.
  ASSERT_TRUE(behaved
                  .Send(api::QueryRequest("mining").WithL(8).WithMaxResults(
                      2).WithDeadlineMicros(60'000'000))
                  .ok());
  for (int i = 0; i < 1200 && server.stats().frames_in < kTight + 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.stats().frames_in, kTight + 2);

  // Burn the tight budgets while everything is queued, then resume.
  clock->AdvanceMicros(5'000);
  gated.OpenGate();

  api::StatusOr<api::QueryResponse> blocker = firehose.Receive();
  ASSERT_TRUE(blocker.ok()) << blocker.status().ToString();
  EXPECT_TRUE(blocker->ok());
  for (uint64_t i = 0; i < kTight; ++i) {
    api::StatusOr<api::QueryResponse> r = firehose.Receive();
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
    EXPECT_EQ(r->status.code(), api::StatusCode::kDeadlineExceeded) << i;
    EXPECT_TRUE(r->result_list().empty());
  }
  api::StatusOr<api::QueryResponse> ok = behaved.Receive();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok->ok()) << ok->status.ToString();

  // Backend I/O pinned: the blocker and the well-behaved request are the
  // only computes — a twin context priced both; the shed requests added
  // nothing.
  CountingBackend twin_counter(&dblp.backend);
  search::SearchContext twin = BuildDblpContext(dblp.d, &twin_counter);
  uint64_t twin_before = twin_counter.fetches();
  search::QueryOptions blocker_options;
  blocker_options.l = 8;
  blocker_options.max_results = 2;
  (void)twin.Query("faloutsos", blocker_options);
  (void)twin.Query("mining", blocker_options);
  EXPECT_EQ(counting.fetches() - fetches_before,
            twin_counter.fetches() - twin_before);

  // Every ledger reconciles: server, service, and the wire agree.
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_in, kTight + 2);
  EXPECT_EQ(stats.responses_out, kTight + 2);
  EXPECT_EQ(stats.responses_deadline_exceeded, kTight);
  EXPECT_EQ(stats.dropped_responses, 0u);
  serve::Metrics m = service.metrics();
  EXPECT_EQ(m.sheds_at_dequeue, kTight);
  EXPECT_EQ(m.sheds_at_admission, 0u);
  EXPECT_EQ(m.pending_misses, 0u);
}

// ---- half-close ----------------------------------------------------------

// CloseWrite racing in-flight pooled misses: the client pipelines a burst
// and half-closes before anything is answered. peer_closed_read is
// observed while most of the burst is still undispatched (tiny inflight
// window), and the server must answer every accepted request before it
// hangs up — closing on half-close with complete frames still queued in
// the reassembler would silently drop them.
TEST(NetServer, CloseWriteRacingInFlightMissesLosesNothing) {
  ScoredDblp dblp(SmallDblpConfig());
  GatedBackend gated(&dblp.backend);
  search::SearchContext context = BuildDblpContext(dblp.d, &gated);
  serve::ServiceOptions so;
  so.num_threads = 1;
  so.cache.num_shards = 2;
  serve::QueryService service(context, so);
  ServerOptions options;
  options.max_inflight_requests = 2;  // most of the burst stays undispatched
  Server server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  api::StatusOr<Client> client =
      Client::Connect("127.0.0.1", server.port(), /*timeout_ms=*/60'000);
  ASSERT_TRUE(client.ok());

  constexpr uint64_t kBurst = 50;
  gated.CloseGate();
  for (uint64_t i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client
                    ->Send(api::QueryRequest("faloutsos").WithL(8).WithMaxResults(
                        1 + i))
                    .ok());
  }
  client->CloseWrite();  // races the dispatch of the whole burst
  gated.WaitUntilBlocked();
  gated.OpenGate();

  for (uint64_t i = 0; i < kBurst; ++i) {
    api::StatusOr<api::QueryResponse> r = client->Receive();
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
    EXPECT_TRUE(r->ok()) << i;
  }
  // After the last answer the server closes its side.
  api::StatusOr<api::QueryResponse> eof = client->Receive();
  EXPECT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), api::StatusCode::kBackendError);

  for (int i = 0; i < 600 && server.stats().connections_closed < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_in, kBurst);
  EXPECT_EQ(stats.responses_out, kBurst);
  EXPECT_EQ(stats.dropped_responses, 0u);
  EXPECT_EQ(stats.connections_closed, 1u);
}

// ---- client timeout regressions ------------------------------------------

// Connecting to a peer that never completes the handshake must fail
// within the caller's timeout, not block on the kernel's minutes-long SYN
// retry schedule. A full accept queue reproduces this deterministically
// on loopback: with backlog 1 and an application that never accepts, the
// kernel drops further SYNs and the connecting side just retries — the
// old blocking connect() hung here until the retry schedule gave up.
TEST(NetClient, ConnectTimesOutWhenTheHandshakeNeverCompletes) {
  RawListener listener(/*backlog=*/1);
  ASSERT_GE(listener.fd, 0);
  std::vector<Client> parked;  // hold the accept-queue slots open
  api::Status last;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 32; ++i) {
    api::StatusOr<Client> client =
        Client::Connect("127.0.0.1", listener.port, /*timeout_ms=*/300);
    if (!client.ok()) {
      last = client.status();
      break;
    }
    parked.push_back(std::move(client).value());
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(last.code(), api::StatusCode::kDeadlineExceeded)
      << last.ToString();
  EXPECT_LT(elapsed.count(), 30'000) << "connect ignored its timeout";
}

// A server that accepts but never reads: once the kernel buffers fill,
// send() must time out (SO_SNDTIMEO) and surface kDeadlineExceeded — the
// old client never set a send timeout and hung here forever.
TEST(NetClient, SendToNonDrainingServerTimesOutInsteadOfHanging) {
  RawListener listener;
  ASSERT_GE(listener.fd, 0);
  api::StatusOr<Client> client =
      Client::Connect("127.0.0.1", listener.port, /*timeout_ms=*/300);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Flood until the socket buffers (client send + server receive) fill
  // and the timeout fires. A bounded number of 1 MiB writes is far more
  // than any default buffer pair holds.
  std::string chunk(1 << 20, 'x');
  api::Status status;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 1024; ++i) {
    status = client->SendBytes(chunk);
    if (!status.ok()) break;
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(status.code(), api::StatusCode::kDeadlineExceeded)
      << status.ToString();
  EXPECT_LT(elapsed.count(), 30'000) << "send ignored its timeout";
}

// The receive-side distinction: a mute server is a TIMEOUT
// (kDeadlineExceeded — the budget ran out, the server may still be
// working), a closed connection is a FAILURE (kBackendError). The old
// client reported both as kBackendError, making "retry elsewhere" and
// "give up" indistinguishable.
TEST(NetClient, ReceiveTimeoutAndServerCloseAreDistinctStatuses) {
  RawListener listener;
  ASSERT_GE(listener.fd, 0);
  api::StatusOr<Client> mute =
      Client::Connect("127.0.0.1", listener.port, /*timeout_ms=*/300);
  ASSERT_TRUE(mute.ok()) << mute.status().ToString();
  api::StatusOr<api::QueryResponse> timed_out = mute->Receive();
  EXPECT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), api::StatusCode::kDeadlineExceeded)
      << timed_out.status().ToString();

  RawListener second;  // fresh accept queue: its first connection is ours
  ASSERT_GE(second.fd, 0);
  api::StatusOr<Client> dropped =
      Client::Connect("127.0.0.1", second.port, /*timeout_ms=*/2'000);
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  int peer = second.Accept();
  ASSERT_GE(peer, 0);
  ::close(peer);  // server-side close, not a timeout
  api::StatusOr<api::QueryResponse> closed = dropped->Receive();
  EXPECT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), api::StatusCode::kBackendError)
      << closed.status().ToString();
}

}  // namespace
}  // namespace osum::net
