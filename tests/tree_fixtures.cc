#include "tree_fixtures.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace osum::testing {
namespace {

// EXPECT_DOUBLE_EQ-style tolerance so goldens written against computed
// (non-integer) importances don't fail on sub-ULP accumulation differences.
bool AlmostEqual(double a, double b) {
  return std::abs(a - b) <= 4 * DBL_EPSILON * std::max(std::abs(a), std::abs(b));
}

std::string FullPrecision(double v) {
  std::ostringstream out;
  out << std::setprecision(DBL_DIG + 2) << v;
  return out.str();
}

}  // namespace

core::OsTree MakeTree(const std::vector<std::pair<int, double>>& spec) {
  core::OsTree os;
  for (size_t i = 0; i < spec.size(); ++i) {
    const auto& [parent, weight] = spec[i];
    if (parent < 0) {
      os.AddRoot(0, 0, static_cast<rel::TupleId>(i), weight);
    } else {
      os.AddChild(parent, 0, 0, static_cast<rel::TupleId>(i), weight);
    }
  }
  return os;
}

core::OsTree PaperFigure4Tree() {
  return MakeTree({
      {-1, 30},  // 1 (root)
      {0, 20},   // 2
      {0, 11},   // 3
      {0, 31},   // 4
      {0, 80},   // 5
      {0, 35},   // 6
      {2, 10},   // 7  (child of 3)
      {2, 15},   // 8  (child of 3)
      {2, 5},    // 9  (child of 3)
      {3, 13},   // 10 (child of 4)
      {3, 30},   // 11 (child of 4)
      {5, 12},   // 12 (child of 6)
      {10, 60},  // 13 (child of 11)
      {11, 40},  // 14 (child of 12)
  });
}

core::OsTree PaperFigure56Tree(double weight12) {
  return MakeTree({
      {-1, 30},       // 1 (root)
      {0, 20},        // 2
      {0, 11},        // 3
      {0, 31},        // 4
      {0, 80},        // 5
      {0, 35},        // 6
      {1, 10},        // 7  (child of 2)
      {1, 15},        // 8  (child of 2)
      {2, 5},         // 9  (child of 3)
      {3, 13},        // 10 (child of 4)
      {4, 30},        // 11 (child of 5)
      {5, weight12},  // 12 (child of 6)
      {10, 60},       // 13 (child of 11)
      {11, 40},       // 14 (child of 12)
  });
}

core::OsTree PaperFigure5Tree() { return PaperFigure56Tree(55); }

core::OsTree PaperFigure6Tree() { return PaperFigure56Tree(12); }

std::vector<core::OsNodeId> PaperIds(std::vector<int> ids) {
  std::vector<core::OsNodeId> out;
  out.reserve(ids.size());
  for (int id : ids) out.push_back(id - 1);
  return out;
}

core::OsTree RandomTree(util::Rng* rng, size_t n, double recency_bias) {
  core::OsTree os;
  os.AddRoot(0, 0, 0, rng->NextDouble() * 100.0);
  for (size_t i = 1; i < n; ++i) {
    size_t parent;
    if (i == 1 || rng->NextBernoulli(1.0 - recency_bias)) {
      parent = rng->NextU64(i);
    } else {
      size_t window = std::max<size_t>(1, i / 3);
      parent = i - 1 - rng->NextU64(window);
    }
    os.AddChild(static_cast<core::OsNodeId>(parent), 0, 0,
                static_cast<rel::TupleId>(i), rng->NextDouble() * 100.0);
  }
  return os;
}

core::OsTree RandomMonotoneTree(util::Rng* rng, size_t n) {
  core::OsTree os;
  os.AddRoot(0, 0, 0, 100.0);
  std::vector<double> weight{100.0};
  for (size_t i = 1; i < n; ++i) {
    size_t parent = rng->NextU64(i);
    double w = weight[parent] * rng->NextDouble(0.3, 1.0);
    weight.push_back(w);
    os.AddChild(static_cast<core::OsNodeId>(parent), 0, 0,
                static_cast<rel::TupleId>(i), w);
  }
  return os;
}

::testing::AssertionResult SameTree(const core::OsTree& got,
                                    const core::OsTree& want) {
  if (got.size() != want.size()) {
    return ::testing::AssertionFailure()
           << "tree size " << got.size() << " != " << want.size();
  }
  for (size_t i = 0; i < got.size(); ++i) {
    const core::OsNode& g = got.node(static_cast<core::OsNodeId>(i));
    const core::OsNode& w = want.node(static_cast<core::OsNodeId>(i));
    if (g.parent != w.parent) {
      return ::testing::AssertionFailure()
             << "node " << i << ": parent " << g.parent << " != " << w.parent;
    }
    if (g.depth != w.depth) {
      return ::testing::AssertionFailure()
             << "node " << i << ": depth " << g.depth << " != " << w.depth;
    }
    if (!AlmostEqual(g.local_importance, w.local_importance)) {
      return ::testing::AssertionFailure()
             << "node " << i << ": importance "
             << FullPrecision(g.local_importance)
             << " != " << FullPrecision(w.local_importance);
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult SelectionIsPaperIds(const core::Selection& got,
                                               std::vector<int> want_paper_ids,
                                               double want_importance) {
  const std::vector<core::OsNodeId> want = PaperIds(std::move(want_paper_ids));
  if (got.nodes != want) {
    auto render = [](const std::vector<core::OsNodeId>& ids) {
      std::ostringstream out;
      out << "{";
      for (size_t i = 0; i < ids.size(); ++i) {
        out << (i ? "," : "") << ids[i] + 1;  // back to paper numbering
      }
      out << "}";
      return out.str();
    };
    return ::testing::AssertionFailure()
           << "selection (paper ids) " << render(got.nodes)
           << " != " << render(want);
  }
  if (want_importance >= 0.0 && !AlmostEqual(got.importance, want_importance)) {
    return ::testing::AssertionFailure()
           << "selection importance " << FullPrecision(got.importance)
           << " != " << FullPrecision(want_importance);
  }
  return ::testing::AssertionSuccess();
}

}  // namespace osum::testing
