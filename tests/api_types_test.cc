// The api layer's value types: Status/StatusOr semantics, the
// QueryRequest fluent builder + validation (the typed errors that replace
// the old silent failure modes), and the canonical cache key.
#include <string>

#include <gtest/gtest.h>

#include "api/query.h"
#include "api/status.h"

namespace osum::api {
namespace {

TEST(Status, DefaultIsOkAndCodesRoundTrip) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.ToString(), "ok");

  Status invalid = Status::InvalidArgument("bad l");
  EXPECT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(invalid.message(), "bad l");
  EXPECT_EQ(invalid.ToString(), "invalid_argument: bad l");

  EXPECT_EQ(Status::BackendError("x").code(), StatusCode::kBackendError);
  EXPECT_EQ(Status::CodecError("x").code(), StatusCode::kCodecError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_STREQ(StatusCodeName(StatusCode::kBackendError), "backend_error");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::InvalidArgument("a"), Status::InvalidArgument("a"));
  EXPECT_FALSE(Status::InvalidArgument("a") == Status::InvalidArgument("b"));
  EXPECT_FALSE(Status::InvalidArgument("a") == Status::BackendError("a"));
}

TEST(StatusOr, CarriesValueOrError) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(value.status().ok());
  EXPECT_EQ(*value, 42);

  StatusOr<int> error = Status::CodecError("truncated");
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kCodecError);
}

TEST(QueryRequest, BuilderSetsEveryKnob) {
  QueryRequest request = QueryRequest("faloutsos")
                             .WithL(7)
                             .WithMaxResults(3)
                             .WithAlgorithm(core::SizeLAlgorithm::kBottomUp)
                             .WithPrelim(false)
                             .WithRanking(ResultRanking::kSummaryImportance);
  EXPECT_EQ(request.keywords(), "faloutsos");
  EXPECT_EQ(request.options().l, 7u);
  EXPECT_EQ(request.options().max_results, 3u);
  EXPECT_EQ(request.options().algorithm, core::SizeLAlgorithm::kBottomUp);
  EXPECT_FALSE(request.options().use_prelim);
  EXPECT_EQ(request.options().ranking, ResultRanking::kSummaryImportance);
  // Defaults match the legacy QueryOptions defaults, so migrated callers
  // keep their behavior.
  QueryOptions defaults;
  EXPECT_EQ(QueryRequest("x").options().CacheKeyFragment(),
            defaults.CacheKeyFragment());
}

TEST(QueryRequest, ValidationTurnsSilentFailuresIntoTypedErrors) {
  EXPECT_TRUE(QueryRequest("faloutsos").Validate().ok());
  // l = 0 means "complete OS" and is valid.
  EXPECT_TRUE(QueryRequest("faloutsos").WithL(0).Validate().ok());

  // The old API answered these with an empty result list, indistinguishable
  // from "no data subject matches".
  EXPECT_EQ(QueryRequest("").Validate().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryRequest("  --- !!").Validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryRequest("x").WithMaxResults(0).Validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryRequest("x").WithL(kMaxSynopsisL + 1).Validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(QueryRequest("x").WithL(kMaxSynopsisL).Validate().ok());
}

TEST(QueryRequest, ValidatedKeyAgreesWithValidateAndCacheKey) {
  QueryRequest good = QueryRequest("Christos  Faloutsos").WithL(9);
  StatusOr<std::string> key = good.ValidatedKey();
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, good.CacheKey());

  StatusOr<std::string> bad = QueryRequest("??").ValidatedKey();
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(CanonicalKey, NormalizesKeywordSetAndSeparatesOptions) {
  QueryOptions options;
  EXPECT_EQ(CanonicalQueryKey("Christos  Faloutsos", options),
            CanonicalQueryKey("faloutsos christos", options));
  EXPECT_EQ(CanonicalQueryKey("a a b", options),
            CanonicalQueryKey("b a", options));
  QueryOptions other;
  other.l = 7;
  EXPECT_NE(CanonicalQueryKey("a", options), CanonicalQueryKey("a", other));
}

TEST(QueryResponse, EmptyAnswerIsDistinguishableFromFailure) {
  QueryResponse empty = QueryResponse::Success(
      std::make_shared<ResultList>(), QueryStats{});
  EXPECT_TRUE(empty.ok());
  EXPECT_TRUE(empty.result_list().empty());

  QueryResponse failed =
      QueryResponse::Failure(Status::BackendError("join failed"));
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(failed.result_list().empty());
  EXPECT_EQ(failed.status.code(), StatusCode::kBackendError);
  // result_list() tolerates the null results a Failure carries.
  EXPECT_EQ(failed.results, nullptr);
}

TEST(QueryResponse, StatsTravelWithTheResponse) {
  QueryStats stats;
  stats.cache_hit = true;
  stats.compute_micros = 12.5;
  stats.epoch = 3;
  QueryResponse r =
      QueryResponse::Success(std::make_shared<ResultList>(), stats);
  EXPECT_TRUE(r.stats.cache_hit);
  EXPECT_DOUBLE_EQ(r.stats.compute_micros, 12.5);
  EXPECT_EQ(r.stats.epoch, 3u);
}

}  // namespace
}  // namespace osum::api
