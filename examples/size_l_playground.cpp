// Algorithm playground: replays the paper's worked examples (Figures 4-6)
// and contrasts all size-l algorithms on them and on random trees.
//
// Useful for building intuition about when the greedy heuristics diverge
// from the optimum.
//
// Run:  ./size_l_playground
#include <cstdio>
#include <vector>

#include "core/size_l.h"
#include "util/rng.h"

namespace {

using namespace osum;

core::OsTree MakeTree(const std::vector<std::pair<int, double>>& spec) {
  core::OsTree os;
  for (size_t i = 0; i < spec.size(); ++i) {
    const auto& [parent, weight] = spec[i];
    if (parent < 0) {
      os.AddRoot(0, 0, static_cast<rel::TupleId>(i), weight);
    } else {
      os.AddChild(parent, 0, 0, static_cast<rel::TupleId>(i), weight);
    }
  }
  return os;
}

void Show(const char* label, const core::OsTree& os, size_t l) {
  std::printf("%s (n=%zu, l=%zu)\n", label, os.size(), l);
  for (auto algo :
       {core::SizeLAlgorithm::kDp, core::SizeLAlgorithm::kBottomUp,
        core::SizeLAlgorithm::kTopPath, core::SizeLAlgorithm::kTopPathMemo}) {
    core::SizeLStats stats;
    core::Selection s = core::RunSizeL(algo, os, l, &stats);
    std::printf("  %-14s Im(S)=%7.2f  ops=%-8llu nodes:",
                core::AlgorithmName(algo), s.importance,
                static_cast<unsigned long long>(stats.operations));
    for (core::OsNodeId id : s.nodes) std::printf(" %d", id + 1);
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Figure 4: DP finds S_{1,4} = {1,4,5,6}.
  core::OsTree fig4 = MakeTree({{-1, 30}, {0, 20}, {0, 11}, {0, 31},
                                {0, 80}, {0, 35}, {2, 10}, {2, 15},
                                {2, 5},  {3, 13}, {3, 30}, {5, 12},
                                {10, 60}, {11, 40}});
  Show("Figure 4 tree", fig4, 4);

  // Figure 5: Bottom-Up keeps {1,5,6,11,13} (235) vs optimal
  // {1,5,6,12,14} (240).
  core::OsTree fig5 = MakeTree({{-1, 30}, {0, 20}, {0, 11}, {0, 31},
                                {0, 80}, {0, 35}, {1, 10}, {1, 15},
                                {2, 5},  {3, 13}, {4, 30}, {5, 55},
                                {10, 60}, {11, 40}});
  Show("Figure 5 tree", fig5, 5);

  // Figure 6: Update Top-Path-l walkthrough (size 5 and the suboptimal
  // size-3 case).
  core::OsTree fig6 = MakeTree({{-1, 30}, {0, 20}, {0, 11}, {0, 31},
                                {0, 80}, {0, 35}, {1, 10}, {1, 15},
                                {2, 5},  {3, 13}, {4, 30}, {5, 12},
                                {10, 60}, {11, 40}});
  Show("Figure 6 tree", fig6, 5);
  Show("Figure 6 tree", fig6, 3);

  // A couple of random trees for contrast.
  util::Rng rng(2024);
  for (size_t n : {50u, 500u}) {
    core::OsTree os;
    os.AddRoot(0, 0, 0, rng.NextDouble() * 100);
    for (size_t i = 1; i < n; ++i) {
      os.AddChild(static_cast<core::OsNodeId>(rng.NextU64(i)), 0, 0,
                  static_cast<rel::TupleId>(i), rng.NextDouble() * 100);
    }
    char label[64];
    std::snprintf(label, sizeof(label), "random tree n=%zu", n);
    Show(label, os, 15);
  }
  return 0;
}
