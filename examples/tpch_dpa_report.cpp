// Data Protection Act subject-access reports over the TPC-H database.
//
// The paper's introduction motivates OSs with DPA subject access requests:
// "data controllers of organizations must extract data for a given DS from
// their databases and present it in an intelligible form". This example
// plays data controller for a trading database: given a customer (or
// supplier) name, it produces
//   1. the complete OS — the full DPA disclosure, and
//   2. a size-l OS — the executive summary a case handler reads first,
// and prints ValueRank-driven statistics that explain *why* the selected
// tuples are the important ones (high-value orders bubble up).
//
// Run:  ./tpch_dpa_report [customer_index] [l]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/os_backend.h"
#include "core/os_generator.h"
#include "core/size_l.h"
#include "datasets/tpch.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace osum;

  rel::TupleId customer = argc > 1
                              ? static_cast<rel::TupleId>(std::atoi(argv[1]))
                              : 7;
  size_t l = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 12;

  datasets::Tpch tpch = datasets::BuildTpch();
  datasets::ApplyTpchScores(&tpch, /*ga=*/1, /*damping=*/0.85);  // ValueRank
  if (customer >= tpch.db.relation(tpch.customer).num_tuples()) {
    std::fprintf(stderr, "customer index out of range (max %zu)\n",
                 tpch.db.relation(tpch.customer).num_tuples() - 1);
    return 1;
  }

  gds::Gds customer_gds = datasets::TpchCustomerGds(tpch);
  core::DataGraphBackend backend(tpch.db, tpch.links, tpch.data_graph);

  std::printf("== DPA subject access report: %s ==\n\n",
              tpch.db.relation(tpch.customer)
                  .RenderTuple(customer)
                  .c_str());

  // Complete disclosure.
  util::WallTimer timer;
  core::OsTree complete =
      core::GenerateCompleteOs(tpch.db, customer_gds, &backend, customer);
  std::printf("complete OS: %zu tuples, total importance %.2f (%.1f ms)\n",
              complete.size(), complete.TotalImportance(),
              timer.ElapsedMillis());

  // Executive summary via prelim-l + Update Top-Path-l.
  timer.Reset();
  core::OsTree prelim = core::GeneratePrelimOs(tpch.db, customer_gds,
                                               &backend, customer, l);
  core::Selection summary = core::SizeLTopPathMemo(prelim, l);
  std::printf("size-%zu OS from prelim-%zu (|prelim|=%zu): importance %.2f "
              "(%.1f ms)\n\n",
              l, l, prelim.size(), summary.importance,
              timer.ElapsedMillis());

  std::cout << "---- executive summary (size-" << l << " OS) ----\n"
            << prelim.Render(tpch.db, customer_gds, &summary.nodes) << "\n";

  // Explain the selection: the summary favors high-value orders.
  const rel::Relation& orders = tpch.db.relation(tpch.orders);
  double selected_value = 0.0, selected_orders = 0.0;
  double all_value = 0.0, all_orders = 0.0;
  for (const core::OsNode& n : complete.nodes()) {
    if (n.relation != tpch.orders) continue;
    all_value += orders.NumericValue(n.tuple, tpch.col_order_totalprice);
    all_orders += 1.0;
  }
  for (core::OsNodeId id : summary.nodes) {
    const core::OsNode& n = prelim.node(id);
    if (n.relation != tpch.orders) continue;
    selected_value +=
        orders.NumericValue(n.tuple, tpch.col_order_totalprice);
    selected_orders += 1.0;
  }
  if (selected_orders > 0 && all_orders > 0) {
    std::printf("ValueRank at work: summary orders average $%.0f vs $%.0f "
                "across all %d orders\n",
                selected_value / selected_orders, all_value / all_orders,
                static_cast<int>(all_orders));
  }

  // Same report for a supplier, size-l only.
  gds::Gds supplier_gds = datasets::TpchSupplierGds(tpch);
  rel::TupleId supplier = 3;
  core::OsTree sp = core::GeneratePrelimOs(tpch.db, supplier_gds, &backend,
                                           supplier, l);
  core::Selection ssum = core::SizeLTopPathMemo(sp, l);
  std::printf("\n== supplier spot-check: %s ==\n",
              tpch.db.relation(tpch.supplier).RenderTuple(supplier).c_str());
  std::cout << sp.Render(tpch.db, supplier_gds, &ssum.nodes);
  return 0;
}
