// osum_cli — a batch command processor over the library, the closest thing
// to "the product" a data controller would run.
//
// Commands (from argv, ';'-separated, or one per stdin line):
//   build dblp|tpch            build + rank the synthetic database
//   stats                      database and data-graph statistics
//   gds <relation>             print the annotated G_DS of a data subject
//   query <keywords> [l]       ranked size-l OSs (Example 5 format)
//   query --wire json|binary <keywords> [l]
//                              the full api::QueryResponse on the wire:
//                              canonical JSON document, or the v1 binary
//                              format as hex (pipe through `xxd -r -p`
//                              for raw bytes)
//   json <keywords> [l]        same, as JSON (first result only)
//   budget <keywords> <words>  word-budget summary (Section 7 future work)
//   serve <keywords> [l]       query via the serving layer; shows HIT/MISS
//                              (negative answers flagged "neg") and the
//                              observed latency (repeat a query to watch
//                              the result cache kick in)
//   policy [ttl=<s>] [neg_ttl=<s>] [admission=on|off] [window=<s>]
//                              show or set the cache policy (TTLs in
//                              seconds; 0 = never expire). Setting any
//                              knob restarts the serving layer with a
//                              fresh cache.
//   sweep                      erase expired cache entries now (the sweep
//                              half of lazy-plus-sweep expiry)
//   metrics                    serving-layer snapshot: hit/miss counters
//                              (negative hits split out), admission/TTL
//                              policy counters, cache occupancy, latency
//                              percentiles
//   serve-tcp [port|stop]      start the TCP front end on 127.0.0.1 (port
//                              0 = OS-assigned, printed on start) over the
//                              serving layer, or stop it (graceful drain:
//                              in-flight requests are answered first)
//   connect [deadline=<us>] <keywords...> [l]
//                              round-trip one query through the TCP front
//                              end over a real socket (length-prefixed
//                              binary frames) and print the served answer.
//                              deadline= attaches a relative time budget
//                              in microseconds (rides the v2 wire
//                              revision); an expired request is answered
//                              in-band with deadline_exceeded instead of
//                              burning pool time
//   save <dir>                 export the database as CSV + catalog
//   help
//
// Example:
//   ./osum_cli "build dblp; serve faloutsos 10; serve faloutsos 10; metrics"
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/codec.h"
#include "api/query.h"
#include "core/os_backend.h"
#include "core/os_export.h"
#include "core/word_budget.h"
#include "datasets/dblp.h"
#include "datasets/tpch.h"
#include "net/client.h"
#include "net/server.h"
#include "relational/csv_io.h"
#include "search/engine.h"
#include "serve/query_service.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace osum;

// Holds whichever database is currently loaded plus the derived artifacts.
struct Session {
  std::optional<datasets::Dblp> dblp;
  std::optional<datasets::Tpch> tpch;
  std::unique_ptr<core::DataGraphBackend> backend;
  std::unique_ptr<search::SizeLSearchEngine> engine;
  // Serving layer, created lazily on the first `serve` command and torn
  // down before the engine it borrows from whenever a new db is built.
  // The cache policy (`policy` command) survives rebuilds; the cache
  // contents do not.
  std::unique_ptr<serve::QueryService> service;
  serve::ServiceOptions serve_options;
  // TCP front end (`serve-tcp`) over `service`. Declared after it so the
  // server is destroyed first: it must drain its connections before the
  // QueryService it submits to can go away.
  std::unique_ptr<net::Server> tcp_server;

  serve::QueryService& Service() {
    if (!service) {
      service = std::make_unique<serve::QueryService>(engine->context(),
                                                      serve_options);
    }
    return *service;
  }

  const rel::Database* db() const {
    if (dblp.has_value()) return &dblp->db;
    if (tpch.has_value()) return &tpch->db;
    return nullptr;
  }

  bool BuildDblp() {
    tcp_server.reset();  // serves from `service`: drain it first
    service.reset();     // borrows the engine's context: drop it first
    dblp = datasets::BuildDblp();
    tpch.reset();
    datasets::ApplyDblpScores(&*dblp, 1, 0.85);
    backend = std::make_unique<core::DataGraphBackend>(dblp->db, dblp->links,
                                                       dblp->data_graph);
    engine = std::make_unique<search::SizeLSearchEngine>(dblp->db,
                                                         backend.get());
    engine->RegisterSubject(dblp->author, datasets::DblpAuthorGds(*dblp));
    engine->RegisterSubject(dblp->paper, datasets::DblpPaperGds(*dblp));
    engine->BuildIndex();
    std::printf("built DBLP: %llu tuples\n",
                static_cast<unsigned long long>(dblp->db.TotalTuples()));
    return true;
  }

  bool BuildTpch() {
    tcp_server.reset();  // serves from `service`: drain it first
    service.reset();     // borrows the engine's context: drop it first
    tpch = datasets::BuildTpch();
    dblp.reset();
    datasets::ApplyTpchScores(&*tpch, 1, 0.85);
    backend = std::make_unique<core::DataGraphBackend>(tpch->db, tpch->links,
                                                       tpch->data_graph);
    engine = std::make_unique<search::SizeLSearchEngine>(tpch->db,
                                                         backend.get());
    engine->RegisterSubject(tpch->customer,
                            datasets::TpchCustomerGds(*tpch));
    engine->RegisterSubject(tpch->supplier,
                            datasets::TpchSupplierGds(*tpch));
    engine->BuildIndex();
    std::printf("built TPC-H: %llu tuples\n",
                static_cast<unsigned long long>(tpch->db.TotalTuples()));
    return true;
  }
};

void PrintHelp() {
  std::puts(
      "commands:\n"
      "  build dblp|tpch            build + rank a synthetic database\n"
      "  stats                      database statistics\n"
      "  gds <relation>             print an annotated G_DS\n"
      "  query <keywords...> [l]    ranked size-l OSs\n"
      "  query --wire json|binary <keywords...> [l]\n"
      "                             full QueryResponse as a wire document\n"
      "  json <keywords...> [l]     first result as JSON\n"
      "  budget <keywords...> <w>   word-budget summary (~w words)\n"
      "  serve <keywords...> [l]    query via the serving layer (HIT/MISS +\n"
      "                             latency; repeat to watch the cache)\n"
      "  policy [ttl=<s>] [neg_ttl=<s>] [admission=on|off] [window=<s>]\n"
      "                             show or set the cache policy (restarts\n"
      "                             the serving layer when set)\n"
      "  sweep                      erase expired cache entries now\n"
      "  metrics                    serving-layer counters + latencies\n"
      "  serve-tcp [port|stop]      start/stop the TCP front end (graceful\n"
      "                             drain on stop)\n"
      "  connect [deadline=<us>] <keywords...> [l]\n"
      "                             round-trip a query over the TCP front\n"
      "                             end's socket; deadline= attaches a\n"
      "                             relative budget in microseconds (expired\n"
      "                             work is shed as deadline_exceeded)\n"
      "  save <dir>                 export database as CSV\n"
      "  help");
}

bool RequireDb(const Session& s) {
  if (s.db() == nullptr) {
    std::puts("error: no database loaded; run 'build dblp' first");
    return false;
  }
  return true;
}

// Splits trailing integer off a keyword list ("faloutsos 10" -> l=10).
std::pair<std::string, std::optional<size_t>> SplitTrailingNumber(
    const std::vector<std::string>& args, size_t from) {
  std::vector<std::string> words(args.begin() + from, args.end());
  std::optional<size_t> number;
  if (!words.empty()) {
    const std::string& last = words.back();
    if (!last.empty() &&
        last.find_first_not_of("0123456789") == std::string::npos) {
      number = static_cast<size_t>(std::stoull(last));
      words.pop_back();
    }
  }
  return {util::Join(words, " "), number};
}

void RunCommand(Session& session, const std::string& line) {
  std::istringstream ss(line);
  std::vector<std::string> args;
  std::string token;
  while (ss >> token) args.push_back(token);
  if (args.empty()) return;
  const std::string& cmd = args[0];

  if (cmd == "help") {
    PrintHelp();
    return;
  }
  if (cmd == "build") {
    if (args.size() < 2 || (args[1] != "dblp" && args[1] != "tpch")) {
      std::puts("usage: build dblp|tpch");
      return;
    }
    if (args[1] == "dblp") session.BuildDblp();
    else session.BuildTpch();
    return;
  }
  if (!RequireDb(session)) return;
  const rel::Database& db = *session.db();

  if (cmd == "stats") {
    std::printf("relations: %zu, foreign keys: %zu, tuples: %llu\n",
                db.num_relations(), db.num_foreign_keys(),
                static_cast<unsigned long long>(db.TotalTuples()));
    for (rel::RelationId r = 0; r < db.num_relations(); ++r) {
      const rel::Relation& rel = db.relation(r);
      std::printf("  %-12s %8zu tuples%s\n", rel.name().c_str(),
                  rel.num_tuples(), rel.is_junction() ? "  (junction)" : "");
    }
    return;
  }
  if (cmd == "gds") {
    if (args.size() < 2) {
      std::puts("usage: gds <relation>");
      return;
    }
    rel::RelationId r = db.GetRelationId(args[1]);
    std::cout << session.engine->GdsFor(r).ToString(db);
    return;
  }
  if (cmd == "serve") {
    auto [keywords, number] = SplitTrailingNumber(args, 1);
    if (keywords.empty()) {
      std::puts("usage: serve <keywords...> [l]");
      return;
    }
    // The typed surface reports the cache outcome itself — no more
    // diffing miss counters around the call.
    api::QueryResponse response = session.Service().Execute(
        api::QueryRequest(keywords).WithL(number.value_or(15)));
    if (!response.ok()) {
      std::printf("error: %s\n", response.status.ToString().c_str());
      return;
    }
    std::printf("[%s%s, %.1f us, epoch %llu] %zu result(s)\n",
                response.stats.cache_hit ? "HIT" : "MISS",
                response.stats.negative ? " neg" : "",
                response.stats.compute_micros,
                static_cast<unsigned long long>(response.stats.epoch),
                response.result_list().size());
    for (const auto& r : response.result_list()) {
      std::printf("  importance %.2f, |OS|=%zu, selection %zu node(s)\n",
                  r.subject_importance, r.os.size(), r.selection.nodes.size());
    }
    return;
  }
  if (cmd == "metrics") {
    if (session.service == nullptr) {
      std::puts("serving layer idle; run 'serve <keywords>' first");
      return;
    }
    // The report shape is pinned by MetricsReport.* in serve_service_test
    // — the CLI prints exactly what the library formats.
    std::fputs(serve::FormatMetricsReport(session.service->metrics()).c_str(),
               stdout);
    return;
  }
  if (cmd == "policy") {
    // Parse into a scratch copy and commit all-or-nothing: a rejected
    // command must not leave half-applied knobs latent in the session.
    serve::CachePolicyOptions staged = session.serve_options.cache.policy;
    bool changed = false;
    bool bad = false;
    for (size_t i = 1; i < args.size(); ++i) {
      const std::string& a = args[i];
      size_t eq = a.find('=');
      std::string k = a.substr(0, eq);
      std::string v = eq == std::string::npos ? "" : a.substr(eq + 1);
      auto seconds_to_micros = [&](uint64_t* out) {
        try {
          size_t consumed = 0;
          double seconds = std::stod(v, &consumed);
          // The whole value must parse ("5abc" is an error, not 5), and
          // NaN/inf/negatives/absurd values are rejected before the
          // uint64_t cast (out-of-range double->unsigned conversion is
          // UB). 1e12 seconds is ~31,000 years — anything larger is a
          // typo.
          if (consumed != v.size() || !std::isfinite(seconds) ||
              seconds < 0 || seconds > 1e12) {
            bad = true;
            return;
          }
          *out = static_cast<uint64_t>(seconds * 1e6);
          changed = true;
        } catch (...) {
          bad = true;
        }
      };
      if (k == "ttl") {
        seconds_to_micros(&staged.ttl_micros);
      } else if (k == "neg_ttl") {
        seconds_to_micros(&staged.negative_ttl_micros);
      } else if (k == "window") {
        seconds_to_micros(&staged.admission_window_micros);
      } else if (k == "admission" && (v == "on" || v == "off")) {
        staged.admission_enabled = v == "on";
        changed = true;
      } else {
        bad = true;
      }
    }
    if (bad) {
      std::puts(
          "usage: policy [ttl=<s>] [neg_ttl=<s>] [admission=on|off] "
          "[window=<s>]");
      return;
    }
    serve::CachePolicyOptions& p = session.serve_options.cache.policy;
    p = staged;
    if (changed) {
      session.tcp_server.reset();  // serves from the service being replaced
      session.service.reset();     // next `serve` gets the policy
    }
    std::printf("policy: ttl=%.3fs neg_ttl=%.3fs admission=%s window=%.3fs%s\n",
                static_cast<double>(p.ttl_micros) / 1e6,
                static_cast<double>(p.negative_ttl_micros) / 1e6,
                p.admission_enabled ? "on" : "off",
                static_cast<double>(p.admission_window_micros) / 1e6,
                changed ? " (serving layer restarted)" : "");
    return;
  }
  if (cmd == "sweep") {
    if (session.service == nullptr) {
      std::puts("serving layer idle; run 'serve <keywords>' first");
      return;
    }
    std::printf("swept %zu expired entr(ies)\n",
                session.service->SweepExpiredCache());
    return;
  }
  if (cmd == "query" || cmd == "json" || cmd == "budget") {
    size_t from = 1;
    std::string wire;
    if (cmd == "query" && args.size() > 1 && args[1] == "--wire") {
      if (args.size() < 3 || (args[2] != "json" && args[2] != "binary")) {
        std::puts("usage: query --wire json|binary <keywords...> [l]");
        return;
      }
      wire = args[2];
      from = 3;
    }
    auto [keywords, number] = SplitTrailingNumber(args, from);
    if (keywords.empty()) {
      std::printf("usage: %s <keywords...> [number]\n", cmd.c_str());
      return;
    }
    api::QueryRequest request(keywords);
    // budget needs the complete OS; l selects the synopsis otherwise.
    request.WithL(cmd == "budget" ? 0 : number.value_or(15));
    api::QueryResponse response = session.engine->Execute(request);
    if (!wire.empty()) {
      // The wire forms carry failures and empty answers as data.
      if (wire == "json") {
        std::cout << api::ResponseToJson(response) << "\n";
      } else {
        std::cout << api::ToHex(api::EncodeResponse(response)) << "\n";
      }
      return;
    }
    if (!response.ok()) {
      std::printf("error: %s\n", response.status.ToString().c_str());
      return;
    }
    const api::ResultList& results = response.result_list();
    if (results.empty()) {
      std::puts("no results");
      return;
    }
    if (cmd == "query") {
      for (const auto& r : results) {
        std::printf("[importance %.2f, |OS|=%zu]\n", r.subject_importance,
                    r.os.size());
        std::cout << session.engine->Render(r);
      }
    } else if (cmd == "json") {
      const auto& r = results[0];
      const gds::Gds& gds = session.engine->GdsFor(r.subject.relation);
      std::cout << core::RenderOsJson(db, gds, r.os, &r.selection.nodes);
    } else {  // budget
      uint64_t words = number.value_or(50);
      const auto& r = results[0];
      auto budgeted =
          core::SizeLByBudget(db, r.os, words, core::BudgetUnit::kWords,
                              core::SizeLAlgorithm::kTopPathMemo);
      std::printf("budget %llu words -> l=%zu (%llu words)\n",
                  static_cast<unsigned long long>(words), budgeted.l,
                  static_cast<unsigned long long>(budgeted.cost));
      const gds::Gds& gds = session.engine->GdsFor(r.subject.relation);
      std::cout << r.os.Render(db, gds, &budgeted.selection.nodes);
    }
    return;
  }
  if (cmd == "serve-tcp") {
    if (args.size() > 1 && args[1] == "stop") {
      if (session.tcp_server == nullptr) {
        std::puts("tcp server not running");
        return;
      }
      bool drained = session.tcp_server->Shutdown();
      net::ServerStats stats = session.tcp_server->stats();
      std::printf("tcp server stopped (%s): %llu frames in, %llu responses "
                  "out, %llu malformed, %llu dropped, %llu deadline "
                  "exceeded\n",
                  drained ? "drained" : "drain timed out",
                  static_cast<unsigned long long>(stats.frames_in),
                  static_cast<unsigned long long>(stats.responses_out),
                  static_cast<unsigned long long>(stats.malformed_frames),
                  static_cast<unsigned long long>(stats.dropped_responses),
                  static_cast<unsigned long long>(
                      stats.responses_deadline_exceeded));
      session.tcp_server.reset();
      return;
    }
    if (session.tcp_server != nullptr) {
      std::printf("tcp server already listening on 127.0.0.1:%u\n",
                  session.tcp_server->port());
      return;
    }
    net::ServerOptions options;
    if (args.size() > 1) {
      const std::string& p = args[1];
      if (p.find_first_not_of("0123456789") != std::string::npos ||
          p.size() > 5 || std::stoul(p) > 65535) {
        std::puts("usage: serve-tcp [port|stop]");
        return;
      }
      options.port = static_cast<uint16_t>(std::stoul(p));
    }
    auto server =
        std::make_unique<net::Server>(&session.Service(), options);
    if (api::Status status = server->Start(); !status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return;
    }
    session.tcp_server = std::move(server);
    std::printf("tcp server listening on 127.0.0.1:%u\n",
                session.tcp_server->port());
    return;
  }
  if (cmd == "connect") {
    if (session.tcp_server == nullptr) {
      std::puts("tcp server not running; run 'serve-tcp' first");
      return;
    }
    // Optional deadline=<micros> knob, position-independent among the
    // keywords; the rest of the line parses as before.
    uint64_t deadline_micros = 0;
    std::vector<std::string> rest = {args[0]};
    for (size_t i = 1; i < args.size(); ++i) {
      if (args[i].rfind("deadline=", 0) == 0) {
        std::string value = args[i].substr(9);
        if (value.empty() ||
            value.find_first_not_of("0123456789") != std::string::npos) {
          std::puts("usage: connect [deadline=<us>] <keywords...> [l]");
          return;
        }
        deadline_micros = std::stoull(value);
        continue;
      }
      rest.push_back(args[i]);
    }
    auto [keywords, number] = SplitTrailingNumber(rest, 1);
    if (keywords.empty()) {
      std::puts("usage: connect [deadline=<us>] <keywords...> [l]");
      return;
    }
    api::StatusOr<net::Client> client =
        net::Client::Connect("127.0.0.1", session.tcp_server->port());
    if (!client.ok()) {
      std::printf("error: %s\n", client.status().ToString().c_str());
      return;
    }
    util::WallTimer timer;
    if (api::Status sent = client->Send(api::QueryRequest(keywords)
                                            .WithL(number.value_or(15))
                                            .WithDeadlineMicros(
                                                deadline_micros));
        !sent.ok()) {
      std::printf("error: %s\n", sent.ToString().c_str());
      return;
    }
    api::StatusOr<api::QueryResponse> received = client->Receive();
    if (!received.ok()) {
      std::printf("error: %s\n", received.status().ToString().c_str());
      return;
    }
    double rtt_us = timer.ElapsedMicros();
    const api::QueryResponse& response = *received;
    if (!response.ok()) {
      std::printf("error (served in-band): %s\n",
                  response.status.ToString().c_str());
      return;
    }
    std::printf("[%s%s, rtt %.1f us over tcp] %zu result(s)\n",
                response.stats.cache_hit ? "HIT" : "MISS",
                response.stats.negative ? " neg" : "", rtt_us,
                response.result_list().size());
    for (const auto& r : response.result_list()) {
      std::printf("  importance %.2f, |OS|=%zu, selection %zu node(s)\n",
                  r.subject_importance, r.os.size(), r.selection.nodes.size());
    }
    return;
  }
  if (cmd == "save") {
    if (args.size() < 2) {
      std::puts("usage: save <dir>");
      return;
    }
    if (rel::SaveDatabaseCsv(db, args[1])) {
      std::printf("saved to %s\n", args[1].c_str());
    } else {
      std::printf("error: could not write %s\n", args[1].c_str());
    }
    return;
  }
  std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Session session;
  if (argc > 1) {
    // Commands come ';'-separated from argv.
    std::string joined;
    for (int i = 1; i < argc; ++i) {
      if (i > 1) joined += " ";
      joined += argv[i];
    }
    std::istringstream ss(joined);
    std::string command;
    while (std::getline(ss, command, ';')) RunCommand(session, command);
    return 0;
  }
  // Demo script when run without arguments.
  for (const char* cmd :
       {"build dblp", "stats", "gds Author", "query faloutsos 8",
        "budget faloutsos 40", "serve faloutsos 8", "serve faloutsos 8",
        "query --wire json faloutsos 5", "policy neg_ttl=60",
        "serve nosuchkeyword 8", "serve nosuchkeyword 8", "serve-tcp 0",
        "connect faloutsos 8", "connect deadline=60000000 faloutsos 8",
        "serve-tcp stop",
        "metrics"}) {
    std::printf("\n$ %s\n", cmd);
    RunCommand(session, cmd);
  }
  return 0;
}
