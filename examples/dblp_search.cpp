// Interactive-style keyword search over the synthetic DBLP database.
//
// Usage:
//   ./dblp_search                      # demo queries
//   ./dblp_search "power law" 10       # your own keywords and l
//   ./dblp_search faloutsos 20 dp      # choose the size-l algorithm
//
// Demonstrates the full public API surface: multiple data-subject
// relations (Author and Paper), prelim-l generation, algorithm choice and
// the Example-5 rendering.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/os_backend.h"
#include "datasets/dblp.h"
#include "search/engine.h"
#include "util/timer.h"

namespace {

osum::core::SizeLAlgorithm ParseAlgorithm(const char* name) {
  using osum::core::SizeLAlgorithm;
  if (std::strcmp(name, "dp") == 0) return SizeLAlgorithm::kDp;
  if (std::strcmp(name, "bottomup") == 0) return SizeLAlgorithm::kBottomUp;
  if (std::strcmp(name, "toppath") == 0) return SizeLAlgorithm::kTopPath;
  if (std::strcmp(name, "toppathmemo") == 0) {
    return SizeLAlgorithm::kTopPathMemo;
  }
  std::fprintf(stderr, "unknown algorithm '%s', using toppath\n", name);
  return SizeLAlgorithm::kTopPath;
}

void RunQuery(const osum::search::SizeLSearchEngine& engine,
              const std::string& keywords,
              const osum::search::QueryOptions& options) {
  osum::util::WallTimer timer;
  auto results = engine.Query(keywords, options);
  double ms = timer.ElapsedMillis();
  std::printf("\n>>> query \"%s\" (l=%zu, %s): %zu results in %.1f ms\n",
              keywords.c_str(), options.l,
              osum::core::AlgorithmName(options.algorithm), results.size(),
              ms);
  size_t rank = 1;
  for (const auto& r : results) {
    std::printf("\n#%zu  [importance %.2f, |OS|=%zu]\n", rank++,
                r.subject_importance, r.os.size());
    std::cout << engine.Render(r);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace osum;

  datasets::Dblp dblp = datasets::BuildDblp();
  datasets::ApplyDblpScores(&dblp, 1, 0.85);
  core::DataGraphBackend backend(dblp.db, dblp.links, dblp.data_graph);
  search::SizeLSearchEngine engine(dblp.db, &backend);
  engine.RegisterSubject(dblp.author, datasets::DblpAuthorGds(dblp));
  engine.RegisterSubject(dblp.paper, datasets::DblpPaperGds(dblp));
  engine.BuildIndex();

  search::QueryOptions options;
  options.l = 15;
  options.max_results = 3;

  if (argc > 1) {
    if (argc > 2) options.l = static_cast<size_t>(std::atoi(argv[2]));
    if (argc > 3) options.algorithm = ParseAlgorithm(argv[3]);
    RunQuery(engine, argv[1], options);
    return 0;
  }

  // Demo: an author query (Q1 of the paper), a paper-subject query and a
  // multi-keyword query.
  RunQuery(engine, "Faloutsos", options);
  options.l = 10;
  RunQuery(engine, "power law", options);
  options.l = 8;
  options.algorithm = core::SizeLAlgorithm::kDp;
  RunQuery(engine, "christos faloutsos", options);
  return 0;
}
