// Quickstart: the paper's running example end to end.
//
// Builds the synthetic DBLP database, ranks it with global ObjectRank
// (G_A1, d = 0.85), and answers the paper's Q1 ("Faloutsos") as a size-15
// OS query — reproducing Example 5: one concise, stand-alone synopsis per
// Faloutsos brother instead of Example 4's 1,000+-tuple full OS.
//
// Run:  ./quickstart
#include <cstdio>
#include <iostream>

#include "api/query.h"
#include "core/os_backend.h"
#include "datasets/dblp.h"
#include "search/engine.h"
#include "util/timer.h"

int main() {
  using namespace osum;

  std::cout << "== osum quickstart: size-l Object Summaries ==\n\n";

  // 1. Build the DBLP-shaped database (Figure 1 schema) and its data graph.
  util::WallTimer timer;
  datasets::Dblp dblp = datasets::BuildDblp();
  std::printf("built DBLP: %llu tuples, data graph %zu nodes / %zu edges "
              "(%.2fs)\n",
              static_cast<unsigned long long>(dblp.db.TotalTuples()),
              dblp.data_graph.num_nodes(), dblp.data_graph.num_edges(),
              timer.ElapsedSeconds());

  // 2. Global importance: ObjectRank with the paper's default setting.
  timer.Reset();
  auto rank = datasets::ApplyDblpScores(&dblp, /*ga=*/1, /*damping=*/0.85);
  std::printf("global ObjectRank: %d iterations (%.2fs)\n\n", rank.iterations,
              timer.ElapsedSeconds());

  // 3. Register data subjects with their G_DS (Figure 2) and index them.
  core::DataGraphBackend backend(dblp.db, dblp.links, dblp.data_graph);
  search::SizeLSearchEngine engine(dblp.db, &backend);
  engine.RegisterSubject(dblp.author, datasets::DblpAuthorGds(dblp));
  engine.RegisterSubject(dblp.paper, datasets::DblpPaperGds(dblp));
  engine.BuildIndex();

  std::cout << "Author G_DS (affinity, max, mmax annotations):\n"
            << engine.GdsFor(dblp.author).ToString(dblp.db) << "\n";

  // 4. Q1 = "Faloutsos" with l = 15 (the paper's Example 5), through the
  // public request/response contract: a fluent request in, a status-typed
  // response (ranked size-l OSs + compute metadata) out.
  api::QueryRequest q1 = api::QueryRequest("Faloutsos")
                             .WithL(15)
                             .WithAlgorithm(core::SizeLAlgorithm::kTopPath);
  api::QueryResponse response = engine.Execute(q1);
  if (!response.ok()) {
    std::printf("query failed: %s\n", response.status.ToString().c_str());
    return 1;
  }

  std::printf("Q1 \"Faloutsos\", l=%zu -> %zu size-l OSs (%.1f ms):\n\n",
              q1.options().l, response.result_list().size(),
              response.stats.compute_micros / 1e3);
  for (const auto& r : response.result_list()) {
    std::printf("--- |OS|=%zu tuples, size-%zu importance %.2f ---\n",
                r.os.size(), q1.options().l, r.selection.importance);
    std::cout << engine.Render(r) << "\n";
  }

  // 5. Contrast with the complete OS (Example 4): just report its size.
  api::QueryResponse complete =
      engine.Execute(api::QueryRequest("christos faloutsos").WithL(0));
  if (complete.ok() && !complete.result_list().empty()) {
    std::printf("(the complete OS for Christos has %zu tuples -- "
                "the size-15 OS above is the synopsis)\n",
                complete.result_list()[0].os.size());
  }
  return 0;
}
