// End-to-end size-l OS keyword search (the user-facing API of the paper's
// paradigm): keywords -> t_DS tuples -> (prelim-l) OS -> size-l OS, ranked.
#ifndef OSUM_SEARCH_ENGINE_H_
#define OSUM_SEARCH_ENGINE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/os_backend.h"
#include "core/os_generator.h"
#include "core/os_tree.h"
#include "core/size_l.h"
#include "gds/gds.h"
#include "search/inverted_index.h"

namespace osum::search {

/// One ranked answer: the data subject, its (partial) OS and the size-l
/// selection over it.
struct QueryResult {
  Hit subject;                // the t_DS tuple
  double subject_importance;  // global importance (ranking key)
  core::OsTree os;            // the OS the size-l was computed on
  core::Selection selection;  // the size-l OS
};

/// How result OSs are ranked against each other.
enum class ResultRanking {
  /// By the global importance of t_DS (cheap; computed before OS
  /// generation, so max_results caps the work).
  kSubjectImportance,
  /// By Im(S) of the computed size-l OS — the combined "size-l and top-k
  /// ranking of OSs" the paper poses as future work (Section 7). Requires
  /// computing every hit's size-l OS before truncating to max_results.
  kSummaryImportance,
};

/// Query-time knobs.
struct QueryOptions {
  /// l — the synopsis size. 0 means "return the complete OS".
  size_t l = 15;
  /// Maximum number of data subjects to report.
  size_t max_results = 10;
  core::SizeLAlgorithm algorithm = core::SizeLAlgorithm::kTopPath;
  /// Generate a prelim-l OS (Algorithm 4) instead of the complete OS.
  bool use_prelim = true;
  ResultRanking ranking = ResultRanking::kSubjectImportance;
};

/// The search engine: owns the inverted index over registered data-subject
/// relations and drives OS generation + size-l computation per hit.
class SizeLSearchEngine {
 public:
  /// `backend` must outlive the engine.
  SizeLSearchEngine(const rel::Database& db, core::OsBackend* backend);

  /// Registers a data-subject relation with its G_DS. The G_DS must be
  /// annotated (importance present) before prelim-l queries.
  void RegisterSubject(rel::RelationId relation, gds::Gds gds);

  /// Builds the inverted index over all registered subject relations.
  /// Call after the last RegisterSubject.
  void BuildIndex();

  /// Runs a keyword query; results ranked by subject global importance.
  std::vector<QueryResult> Query(std::string_view keywords,
                                 const QueryOptions& options = {}) const;

  /// Renders one result in the paper's Example 5 format.
  std::string Render(const QueryResult& result) const;

  const gds::Gds& GdsFor(rel::RelationId relation) const;

 private:
  const rel::Database& db_;
  core::OsBackend* backend_;
  std::unordered_map<rel::RelationId, gds::Gds> subjects_;
  std::vector<rel::RelationId> subject_order_;
  InvertedIndex index_;
  bool index_built_ = false;
};

}  // namespace osum::search

#endif  // OSUM_SEARCH_ENGINE_H_
