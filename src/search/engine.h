// End-to-end size-l OS keyword search (the user-facing API of the paper's
// paradigm): keywords -> t_DS tuples -> (prelim-l) OS -> size-l OS, ranked.
//
// SizeLSearchEngine is a thin registration facade over SearchContext (see
// search_context.h): RegisterSubject collects the G_DSs, BuildIndex freezes
// them into an immutable context, and Execute/ExecuteBatch (the public
// api::QueryRequest -> api::QueryResponse contract) plus the deprecated
// Query/QueryBatch shims delegate to its stateless query path. Use the
// engine for the build-then-query lifecycle; grab context() to share the
// frozen infrastructure across threads.
#ifndef OSUM_SEARCH_ENGINE_H_
#define OSUM_SEARCH_ENGINE_H_

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "search/search_context.h"

namespace osum::search {

/// The search engine: owns the subject registrations and the SearchContext
/// built from them, and drives OS generation + size-l computation per hit.
class SizeLSearchEngine {
 public:
  /// `db` and `backend` must outlive the engine.
  SizeLSearchEngine(const rel::Database& db, core::OsBackend* backend);

  /// Registers a data-subject relation with its G_DS. The G_DS must be
  /// annotated (importance present) before prelim-l queries. Throws
  /// std::logic_error if called after BuildIndex: the live SearchContext
  /// may be borrowed by worker threads or a serve::QueryService, and
  /// silently destroying it (the old behavior) left them dangling. To
  /// re-register, construct a fresh engine (and RebindContext any service
  /// borrowing the old context).
  void RegisterSubject(rel::RelationId relation, gds::Gds gds);

  /// Builds the inverted index over all registered subject relations and
  /// freezes the SearchContext. Call after the last RegisterSubject.
  void BuildIndex();

  /// The immutable context built by BuildIndex — share this (by reference)
  /// with worker threads or a serve::QueryService. Stays valid for the
  /// engine's lifetime: RegisterSubject refuses to run once a context
  /// exists, so the reference can never be invalidated under a borrower.
  const SearchContext& context() const;

  /// The public query contract (see SearchContext::Execute): typed Status
  /// errors instead of exceptions, per-query compute metadata, ranked
  /// size-l OSs byte-identical to the legacy Query path.
  api::QueryResponse Execute(const api::QueryRequest& request) const;

  /// Batched Execute over `num_threads` workers (0 = hardware
  /// concurrency); responses in input order, identical to serial
  /// execution, failures contained per response.
  std::vector<api::QueryResponse> ExecuteBatch(
      std::span<const api::QueryRequest> requests,
      size_t num_threads = 0) const;

  /// Deprecated shim over the request/response contract: runs a keyword
  /// query, results ranked by subject global importance. Backend failures
  /// propagate as exceptions. Prefer Execute.
  std::vector<QueryResult> Query(std::string_view keywords,
                                 const QueryOptions& options = {}) const;

  /// Deprecated shim: batched Query over `num_threads` workers (0 =
  /// hardware concurrency); per-query results in input order, identical to
  /// serial execution. Prefer ExecuteBatch, which contains per-query
  /// failures instead of terminating on a throwing worker.
  std::vector<std::vector<QueryResult>> QueryBatch(
      std::span<const std::string> queries, const QueryOptions& options = {},
      size_t num_threads = 0) const;

  /// Renders one result in the paper's Example 5 format.
  std::string Render(const QueryResult& result) const;

  const gds::Gds& GdsFor(rel::RelationId relation) const;

  /// Snapshot of the context's per-(subject, l) partials memo counters
  /// ("is the second reuse tier earning its memory?"). Requires
  /// BuildIndex.
  core::PartialsMemoMetrics partials_metrics() const {
    return context().partials_memo().metrics();
  }

 private:
  const rel::Database& db_;
  core::OsBackend* backend_;
  /// Registrations pending the next BuildIndex; moved into the context on
  /// build so each Gds is stored exactly once.
  std::vector<SearchContext::Subject> subjects_;
  std::optional<SearchContext> context_;
};

}  // namespace osum::search

#endif  // OSUM_SEARCH_ENGINE_H_
