// Immutable, shareable query infrastructure + the stateless query path.
//
// The paper's size-l OS engine is per-query parallel: a keyword query walks
// its own t_DS hits and OS trees against structures that never change at
// query time. SearchContext captures exactly that split — everything built
// once (database ref, registered G_DSs, inverted index, join back end) is
// frozen behind a const API, and Query/QueryBatch allocate all per-query
// state on their own stack. One context therefore serves any number of
// threads; QueryBatch fans a batch out over a util::ThreadPool and returns
// results in input order, byte-identical to running Query serially.
//
// Thread-safety contract (relied on by QueryBatch and enforced by
// search_concurrency_test):
//   - rel::Database, graph::DataGraph, gds::Gds, InvertedIndex: immutable
//     after their build/annotate phase.
//   - core::OsBackend: stateless apart from atomic I/O counters (see
//     os_backend.h).
//   - SearchContext itself: no non-const member functions after Build().
#ifndef OSUM_SEARCH_SEARCH_CONTEXT_H_
#define OSUM_SEARCH_SEARCH_CONTEXT_H_

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/os_backend.h"
#include "core/os_generator.h"
#include "core/os_tree.h"
#include "core/size_l.h"
#include "gds/gds.h"
#include "search/inverted_index.h"

namespace osum::util {
class ThreadPool;
}  // namespace osum::util

namespace osum::search {

/// One ranked answer: the data subject, its (partial) OS and the size-l
/// selection over it.
struct QueryResult {
  Hit subject;                // the t_DS tuple
  double subject_importance;  // global importance (ranking key)
  core::OsTree os;            // the OS the size-l was computed on
  core::Selection selection;  // the size-l OS
};

/// How result OSs are ranked against each other.
enum class ResultRanking {
  /// By the global importance of t_DS (cheap; computed before OS
  /// generation, so max_results caps the work).
  kSubjectImportance,
  /// By Im(S) of the computed size-l OS — the combined "size-l and top-k
  /// ranking of OSs" the paper poses as future work (Section 7). Requires
  /// computing every hit's size-l OS before truncating to max_results.
  kSummaryImportance,
};

/// Query-time knobs.
struct QueryOptions {
  /// l — the synopsis size. 0 means "return the complete OS".
  size_t l = 15;
  /// Maximum number of data subjects to report.
  size_t max_results = 10;
  core::SizeLAlgorithm algorithm = core::SizeLAlgorithm::kTopPath;
  /// Generate a prelim-l OS (Algorithm 4) instead of the complete OS.
  bool use_prelim = true;
  ResultRanking ranking = ResultRanking::kSubjectImportance;

  /// Canonical serialization of every result-affecting knob, for result
  /// caching (serve::ResultCache): two QueryOptions produce byte-identical
  /// Query output on the same context iff their fragments compare equal.
  /// New knobs MUST be added here or cached results go stale silently.
  std::string CacheKeyFragment() const;
};

/// Full cache identity of one (keywords, options) query against a frozen
/// context: the normalized keyword *set* (tokenized exactly like
/// InvertedIndex::SearchQuery, then sorted and deduplicated — AND semantics
/// make order and multiplicity irrelevant) joined with the options
/// fragment. "Christos  Faloutsos" and "faloutsos christos" share one key.
std::string CanonicalQueryKey(std::string_view keywords,
                              const QueryOptions& options);

/// The frozen query infrastructure. Build once, share freely.
class SearchContext {
 public:
  /// A data-subject relation with its (annotated) G_DS.
  struct Subject {
    rel::RelationId relation;
    gds::Gds gds;
  };

  /// Builds the inverted index over `subjects` — the only mutating phase.
  /// `db` and `backend` must outlive the context. Subjects keep their
  /// registration order for indexing; each relation may appear once.
  static SearchContext Build(const rel::Database& db, core::OsBackend* backend,
                             std::vector<Subject> subjects);

  // Movable (so owners can defer construction), not copyable: a context is
  // meant to be shared by reference, not duplicated.
  SearchContext(SearchContext&&) = default;
  SearchContext& operator=(SearchContext&&) = default;
  SearchContext(const SearchContext&) = delete;
  SearchContext& operator=(const SearchContext&) = delete;

  /// Runs one keyword query. All per-query state lives on this call's
  /// stack; safe to call concurrently from any number of threads.
  std::vector<QueryResult> Query(std::string_view keywords,
                                 const QueryOptions& options = {}) const;

  /// Executes `queries` across `num_threads` workers (0 = hardware
  /// concurrency; clamped to the batch size) and returns one result list
  /// per query, in input order. Deterministic: the output is identical to
  /// calling Query on each element serially.
  std::vector<std::vector<QueryResult>> QueryBatch(
      std::span<const std::string> queries, const QueryOptions& options = {},
      size_t num_threads = 0) const;

  /// QueryBatch over an existing pool (reused across batches; the caller
  /// keeps ownership — by-reference so a literal 0 thread count can never
  /// ambiguously select this overload). Must not be called from a task
  /// running on `pool` itself — the blocking fan-in would deadlock a fully
  /// occupied pool (see util::ParallelFor); nested batches need a second
  /// pool.
  std::vector<std::vector<QueryResult>> QueryBatch(
      std::span<const std::string> queries, const QueryOptions& options,
      util::ThreadPool& pool) const;

  /// Renders one result in the paper's Example 5 format.
  std::string Render(const QueryResult& result) const;

  const rel::Database& db() const { return *db_; }
  core::OsBackend* backend() const { return backend_; }
  const InvertedIndex& index() const { return index_; }
  const gds::Gds& GdsFor(rel::RelationId relation) const;

  /// Moves the registered subjects back out in registration order, leaving
  /// the context empty — the deliberate rebuild flow: take the subjects
  /// from a context you are about to discard, extend the set, Build a
  /// fresh one, and RebindContext any serve::QueryService borrowing the
  /// old context before destroying it.
  std::vector<Subject> TakeSubjects() &&;

 private:
  SearchContext(const rel::Database& db, core::OsBackend* backend)
      : db_(&db), backend_(backend) {}

  const rel::Database* db_;
  core::OsBackend* backend_;
  std::unordered_map<rel::RelationId, gds::Gds> subjects_;
  std::vector<rel::RelationId> subject_order_;
  InvertedIndex index_;
};

}  // namespace osum::search

#endif  // OSUM_SEARCH_SEARCH_CONTEXT_H_
