// Immutable, shareable query infrastructure + the stateless query path.
//
// The paper's size-l OS engine is per-query parallel: a keyword query walks
// its own t_DS hits and OS trees against structures that never change at
// query time. SearchContext captures exactly that split — everything built
// once (database ref, registered G_DSs, inverted index, join back end) is
// frozen behind a const API, and the query paths allocate all per-query
// state on their own stack. One context therefore serves any number of
// threads; the batch paths fan out over a util::ThreadPool and return
// results in input order, byte-identical to running serially.
//
// Two query surfaces share one compute path:
//   - Execute/ExecuteBatch — the public api::QueryRequest ->
//     api::QueryResponse contract: validation and backend failures come
//     back as typed Status codes (never exceptions), responses carry
//     compute-time metadata, and an empty answer is distinguishable from
//     an error. New code should use these.
//   - Query/QueryBatch — the raw compute primitives (string_view keywords
//     + QueryOptions, exceptions propagate). The serving layer's cache
//     compute callback and the legacy callers ride these; they are the
//     engine room, not the public contract.
//
// Thread-safety contract (relied on by the batch paths and enforced by
// search_concurrency_test):
//   - rel::Database, graph::DataGraph, gds::Gds, InvertedIndex: immutable
//     after their build/annotate phase.
//   - core::OsBackend: stateless apart from atomic I/O counters (see
//     os_backend.h).
//   - core::PartialsMemo: internally synchronized (one lock; see
//     partials_memo.h) — the one mutable structure the const query path
//     touches, and deliberately so: memo-on and memo-off answers are
//     byte-identical, so the memo is observable only through timing and
//     its own counters.
//   - SearchContext itself: no non-const member functions after Build().
#ifndef OSUM_SEARCH_SEARCH_CONTEXT_H_
#define OSUM_SEARCH_SEARCH_CONTEXT_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "api/query.h"
#include "core/os_backend.h"
#include "core/os_generator.h"
#include "core/os_tree.h"
#include "core/partials_memo.h"
#include "core/size_l.h"
#include "gds/gds.h"
#include "search/inverted_index.h"

namespace osum::util {
class ThreadPool;
}  // namespace osum::util

namespace osum::search {

// The result vocabulary moved to the api layer (it is the wire-encodable
// public contract; see api/query.h). These aliases keep osum::search
// spelling working for existing code.
using QueryResult = api::QueryResult;
using ResultRanking = api::ResultRanking;
using QueryOptions = api::QueryOptions;

// A using-declaration, not a wrapper: QueryOptions is api::QueryOptions,
// so ADL already finds the api function — a second overload would make
// every unqualified call ambiguous.
using api::CanonicalQueryKey;

/// The frozen query infrastructure. Build once, share freely.
class SearchContext {
 public:
  /// A data-subject relation with its (annotated) G_DS.
  struct Subject {
    rel::RelationId relation;
    gds::Gds gds;
  };

  /// Builds the inverted index over `subjects` — the only mutating phase.
  /// `db` and `backend` must outlive the context. Subjects keep their
  /// registration order for indexing; each relation may appear once.
  static SearchContext Build(const rel::Database& db, core::OsBackend* backend,
                             std::vector<Subject> subjects);

  // Movable (so owners can defer construction), not copyable: a context is
  // meant to be shared by reference, not duplicated.
  SearchContext(SearchContext&&) = default;
  SearchContext& operator=(SearchContext&&) = default;
  SearchContext(const SearchContext&) = delete;
  SearchContext& operator=(const SearchContext&) = delete;

  /// The public query contract: validates the request (empty keyword set,
  /// max_results == 0 and oversized l become kInvalidArgument), runs the
  /// compute path, and wraps backend exceptions as kBackendError. Never
  /// throws; response.stats carries the compute wall time (cache fields
  /// stay false/0 — this is the uncached path). Results are byte-identical
  /// to Query with the same arguments. Thread-safe like Query.
  api::QueryResponse Execute(const api::QueryRequest& request) const;

  /// Executes `requests` across `num_threads` workers (0 = hardware
  /// concurrency; clamped to the batch size); one response per request, in
  /// input order, each byte-identical to calling Execute serially.
  /// Per-request failures are per-response statuses — one bad request
  /// cannot sink the batch.
  std::vector<api::QueryResponse> ExecuteBatch(
      std::span<const api::QueryRequest> requests,
      size_t num_threads = 0) const;

  /// ExecuteBatch over an existing pool (reused across batches; the caller
  /// keeps ownership). Must not be called from a task running on `pool`
  /// itself — the blocking fan-in would deadlock a fully occupied pool
  /// (see util::ParallelFor); nested batches need a second pool.
  std::vector<api::QueryResponse> ExecuteBatch(
      std::span<const api::QueryRequest> requests,
      util::ThreadPool& pool) const;

  /// The raw compute primitive behind Execute: runs one keyword query,
  /// propagating backend exceptions. All per-query state lives on this
  /// call's stack; safe to call concurrently from any number of threads.
  std::vector<QueryResult> Query(std::string_view keywords,
                                 const QueryOptions& options = {}) const;

  /// Legacy batch over the raw primitive (exceptions terminate — Query
  /// throwing inside the fan-out violates the pool's no-throw contract).
  /// Prefer ExecuteBatch, which contains failures as per-response
  /// statuses. Deterministic: identical to calling Query serially.
  std::vector<std::vector<QueryResult>> QueryBatch(
      std::span<const std::string> queries, const QueryOptions& options = {},
      size_t num_threads = 0) const;

  /// QueryBatch over an existing pool (by-reference so a literal 0 thread
  /// count can never ambiguously select this overload). Same nested-batch
  /// caveat as the ExecuteBatch pool overload.
  std::vector<std::vector<QueryResult>> QueryBatch(
      std::span<const std::string> queries, const QueryOptions& options,
      util::ThreadPool& pool) const;

  /// Renders one result in the paper's Example 5 format.
  std::string Render(const QueryResult& result) const;

  const rel::Database& db() const { return *db_; }
  core::OsBackend* backend() const { return backend_; }
  const InvertedIndex& index() const { return index_; }
  const gds::Gds& GdsFor(rel::RelationId relation) const;

  /// The per-(subject, l) partials memo the query path consults (see
  /// partials_memo.h). Non-const through a const context because it is
  /// internally synchronized and invisible in results; the serving layer
  /// configures it and bumps its epoch on rebind.
  core::PartialsMemo& partials_memo() const { return *partials_memo_; }

  /// Moves the registered subjects back out in registration order, leaving
  /// the context empty — the deliberate rebuild flow: take the subjects
  /// from a context you are about to discard, extend the set, Build a
  /// fresh one, and RebindContext any serve::QueryService borrowing the
  /// old context before destroying it.
  std::vector<Subject> TakeSubjects() &&;

 private:
  SearchContext(const rel::Database& db, core::OsBackend* backend)
      : db_(&db), backend_(backend) {}

  const rel::Database* db_;
  core::OsBackend* backend_;
  std::unordered_map<rel::RelationId, gds::Gds> subjects_;
  std::vector<rel::RelationId> subject_order_;
  InvertedIndex index_;
  // shared_ptr, not value: keeps the context movable while the memo's
  // Mutex stays pinned in place for concurrent queries.
  std::shared_ptr<core::PartialsMemo> partials_memo_;
};

}  // namespace osum::search

#endif  // OSUM_SEARCH_SEARCH_CONTEXT_H_
