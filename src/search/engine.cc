#include "search/engine.h"

#include <algorithm>
#include <cassert>

namespace osum::search {

SizeLSearchEngine::SizeLSearchEngine(const rel::Database& db,
                                     core::OsBackend* backend)
    : db_(db), backend_(backend) {}

void SizeLSearchEngine::RegisterSubject(rel::RelationId relation,
                                        gds::Gds gds) {
  assert(gds.root_relation() == relation);
  subject_order_.push_back(relation);
  subjects_.emplace(relation, std::move(gds));
  index_built_ = false;
}

void SizeLSearchEngine::BuildIndex() {
  index_ = InvertedIndex::Build(db_, subject_order_);
  index_built_ = true;
}

const gds::Gds& SizeLSearchEngine::GdsFor(rel::RelationId relation) const {
  auto it = subjects_.find(relation);
  assert(it != subjects_.end());
  return it->second;
}

std::vector<QueryResult> SizeLSearchEngine::Query(
    std::string_view keywords, const QueryOptions& options) const {
  assert(index_built_ && "call BuildIndex() after registering subjects");
  std::vector<Hit> hits = index_.SearchQuery(keywords);

  // Pre-rank data subjects by global importance. Under subject ranking the
  // list is truncated here (cheap); under summary ranking every hit's
  // size-l OS must be computed first, so truncation happens at the end.
  std::sort(hits.begin(), hits.end(), [this](const Hit& a, const Hit& b) {
    double ia = db_.relation(a.relation).importance(a.tuple);
    double ib = db_.relation(b.relation).importance(b.tuple);
    if (ia != ib) return ia > ib;
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.tuple < b.tuple;
  });
  if (options.ranking == ResultRanking::kSubjectImportance &&
      hits.size() > options.max_results) {
    hits.resize(options.max_results);
  }

  std::vector<QueryResult> results;
  results.reserve(hits.size());
  for (const Hit& hit : hits) {
    const gds::Gds& gds = subjects_.at(hit.relation);
    QueryResult r;
    r.subject = hit;
    r.subject_importance = db_.relation(hit.relation).importance(hit.tuple);

    core::OsGenOptions gen;
    if (options.l > 0) {
      gen.max_depth = static_cast<int32_t>(options.l) - 1;  // footnote 1
    }
    if (options.l == 0) {
      r.os = core::GenerateCompleteOs(db_, gds, backend_, hit.tuple, gen);
      r.selection.nodes.resize(r.os.size());
      for (size_t i = 0; i < r.os.size(); ++i) {
        r.selection.nodes[i] = static_cast<core::OsNodeId>(i);
      }
      r.selection.importance = r.os.TotalImportance();
    } else {
      r.os = options.use_prelim
                 ? core::GeneratePrelimOs(db_, gds, backend_, hit.tuple,
                                          options.l, gen)
                 : core::GenerateCompleteOs(db_, gds, backend_, hit.tuple,
                                            gen);
      r.selection = core::RunSizeL(options.algorithm, r.os, options.l);
    }
    results.push_back(std::move(r));
  }

  if (options.ranking == ResultRanking::kSummaryImportance) {
    std::stable_sort(results.begin(), results.end(),
                     [](const QueryResult& a, const QueryResult& b) {
                       return a.selection.importance > b.selection.importance;
                     });
    if (results.size() > options.max_results) {
      results.resize(options.max_results);
    }
  }
  return results;
}

std::string SizeLSearchEngine::Render(const QueryResult& result) const {
  const gds::Gds& gds = subjects_.at(result.subject.relation);
  return result.os.Render(db_, gds, &result.selection.nodes);
}

}  // namespace osum::search
