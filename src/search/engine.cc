#include "search/engine.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace osum::search {

SizeLSearchEngine::SizeLSearchEngine(const rel::Database& db,
                                     core::OsBackend* backend)
    : db_(db), backend_(backend) {}

void SizeLSearchEngine::RegisterSubject(rel::RelationId relation,
                                        gds::Gds gds) {
  assert(gds.root_relation() == relation);
  if (context_.has_value()) {
    // The old behavior silently destroyed the live context, dangling any
    // thread (or serve::QueryService) that borrowed it via context().
    throw std::logic_error(
        "SizeLSearchEngine::RegisterSubject called after BuildIndex: the "
        "frozen SearchContext may be shared; build a new engine instead");
  }
  subjects_.push_back(SearchContext::Subject{relation, std::move(gds)});
}

void SizeLSearchEngine::BuildIndex() {
  if (context_.has_value() && subjects_.empty()) return;  // already current
  context_ = SearchContext::Build(db_, backend_, std::move(subjects_));
  subjects_.clear();
}

const SearchContext& SizeLSearchEngine::context() const {
  assert(context_.has_value() &&
         "call BuildIndex() after registering subjects");
  return *context_;
}

api::QueryResponse SizeLSearchEngine::Execute(
    const api::QueryRequest& request) const {
  assert(context_.has_value() &&
         "call BuildIndex() after registering subjects");
  if (!context_.has_value()) {
    return api::QueryResponse::Failure(api::Status::Internal(
        "SizeLSearchEngine::Execute called before BuildIndex"));
  }
  return context_->Execute(request);
}

std::vector<api::QueryResponse> SizeLSearchEngine::ExecuteBatch(
    std::span<const api::QueryRequest> requests, size_t num_threads) const {
  assert(context_.has_value() &&
         "call BuildIndex() after registering subjects");
  if (!context_.has_value()) {
    std::vector<api::QueryResponse> responses;
    responses.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      responses.push_back(api::QueryResponse::Failure(api::Status::Internal(
          "SizeLSearchEngine::ExecuteBatch called before BuildIndex")));
    }
    return responses;
  }
  return context_->ExecuteBatch(requests, num_threads);
}

std::vector<QueryResult> SizeLSearchEngine::Query(
    std::string_view keywords, const QueryOptions& options) const {
  assert(context_.has_value() &&
         "call BuildIndex() after registering subjects");
  if (!context_.has_value()) return {};  // NDEBUG: degrade to no hits
  return context_->Query(keywords, options);
}

std::vector<std::vector<QueryResult>> SizeLSearchEngine::QueryBatch(
    std::span<const std::string> queries, const QueryOptions& options,
    size_t num_threads) const {
  assert(context_.has_value() &&
         "call BuildIndex() after registering subjects");
  if (!context_.has_value()) {
    return std::vector<std::vector<QueryResult>>(queries.size());
  }
  return context_->QueryBatch(queries, options, num_threads);
}

std::string SizeLSearchEngine::Render(const QueryResult& result) const {
  // Context-free on purpose: rendering only needs the G_DS, so it works
  // both before BuildIndex (via subjects_) and after (via the context).
  return result.os.Render(db_, GdsFor(result.subject.relation),
                          &result.selection.nodes);
}

const gds::Gds& SizeLSearchEngine::GdsFor(rel::RelationId relation) const {
  if (context_.has_value()) return context_->GdsFor(relation);
  for (const SearchContext::Subject& s : subjects_) {
    if (s.relation == relation) return s.gds;
  }
  throw std::out_of_range(
      "SizeLSearchEngine::GdsFor: relation was never registered");
}

}  // namespace osum::search
