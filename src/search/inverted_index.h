// Keyword lookup: an inverted index over the text attributes of the data
// subject relations, used to locate t_DS tuples (the entry point of every
// OS keyword query).
#ifndef OSUM_SEARCH_INVERTED_INDEX_H_
#define OSUM_SEARCH_INVERTED_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "api/query.h"
#include "relational/database.h"

namespace osum::search {

/// A (relation, tuple) keyword hit. Defined in the api layer (it is part
/// of the wire-encodable result vocabulary); aliased here because the
/// index is where hits are born.
using Hit = api::Hit;

/// Word-level inverted index with AND query semantics: a tuple matches a
/// query iff every query keyword appears among the tokens of its display
/// string attributes ("Christos Faloutsos" matches queries "faloutsos" and
/// "christos faloutsos").
class InvertedIndex {
 public:
  /// Indexes the display string columns of `relations`.
  static InvertedIndex Build(const rel::Database& db,
                             const std::vector<rel::RelationId>& relations);

  /// AND query over tokenized keywords; hits are returned in (relation,
  /// tuple) order. An empty keyword list yields no hits.
  std::vector<Hit> Search(const std::vector<std::string>& keywords) const;

  /// Tokenizes `query` and delegates to Search.
  std::vector<Hit> SearchQuery(std::string_view query) const;

  size_t num_terms() const { return postings_.size(); }

 private:
  // Postings are sorted by (relation, tuple) and deduplicated.
  std::unordered_map<std::string, std::vector<Hit>> postings_;
};

}  // namespace osum::search

#endif  // OSUM_SEARCH_INVERTED_INDEX_H_
