#include "search/search_context.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace osum::search {

std::string QueryOptions::CacheKeyFragment() const {
  std::string out;
  out += "l=" + std::to_string(l);
  out += ";max=" + std::to_string(max_results);
  out += ";alg=" + std::to_string(static_cast<int>(algorithm));
  out += ";prelim=" + std::to_string(use_prelim ? 1 : 0);
  out += ";rank=" + std::to_string(static_cast<int>(ranking));
  return out;
}

std::string CanonicalQueryKey(std::string_view keywords,
                              const QueryOptions& options) {
  std::vector<std::string> tokens = util::TokenizeWords(keywords);
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  // 0x1f/0x1e cannot appear in tokens ([a-z0-9] only), so the key is
  // collision-free between keyword sets and against the options fragment.
  std::string key = util::Join(tokens, "\x1f");
  key += '\x1e';
  key += options.CacheKeyFragment();
  return key;
}

SearchContext SearchContext::Build(const rel::Database& db,
                                   core::OsBackend* backend,
                                   std::vector<Subject> subjects) {
  SearchContext ctx(db, backend);
  ctx.subject_order_.reserve(subjects.size());
  for (Subject& s : subjects) {
    assert(s.gds.root_relation() == s.relation);
    ctx.subject_order_.push_back(s.relation);
    bool inserted = ctx.subjects_.emplace(s.relation, std::move(s.gds)).second;
    assert(inserted && "each subject relation may be registered once");
    (void)inserted;
  }
  ctx.index_ = InvertedIndex::Build(db, ctx.subject_order_);
  return ctx;
}

const gds::Gds& SearchContext::GdsFor(rel::RelationId relation) const {
  // at(): an unregistered relation throws std::out_of_range determin-
  // istically instead of being release-mode UB.
  return subjects_.at(relation);
}

std::vector<SearchContext::Subject> SearchContext::TakeSubjects() && {
  std::vector<Subject> out;
  out.reserve(subject_order_.size());
  for (rel::RelationId r : subject_order_) {
    out.push_back(Subject{r, std::move(subjects_.at(r))});
  }
  subjects_.clear();
  subject_order_.clear();
  return out;
}

std::vector<QueryResult> SearchContext::Query(
    std::string_view keywords, const QueryOptions& options) const {
  std::vector<Hit> hits = index_.SearchQuery(keywords);

  // Pre-rank data subjects by global importance. Under subject ranking the
  // list is truncated here (cheap); under summary ranking every hit's
  // size-l OS must be computed first, so truncation happens at the end.
  std::sort(hits.begin(), hits.end(), [this](const Hit& a, const Hit& b) {
    double ia = db_->relation(a.relation).importance(a.tuple);
    double ib = db_->relation(b.relation).importance(b.tuple);
    if (ia != ib) return ia > ib;
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.tuple < b.tuple;
  });
  if (options.ranking == ResultRanking::kSubjectImportance &&
      hits.size() > options.max_results) {
    hits.resize(options.max_results);
  }

  std::vector<QueryResult> results;
  results.reserve(hits.size());
  for (const Hit& hit : hits) {
    const gds::Gds& gds = subjects_.at(hit.relation);
    QueryResult r;
    r.subject = hit;
    r.subject_importance = db_->relation(hit.relation).importance(hit.tuple);

    core::OsGenOptions gen;
    if (options.l > 0) {
      gen.max_depth = static_cast<int32_t>(options.l) - 1;  // footnote 1
    }
    if (options.l == 0) {
      r.os = core::GenerateCompleteOs(*db_, gds, backend_, hit.tuple, gen);
      r.selection.nodes.resize(r.os.size());
      for (size_t i = 0; i < r.os.size(); ++i) {
        r.selection.nodes[i] = static_cast<core::OsNodeId>(i);
      }
      r.selection.importance = r.os.TotalImportance();
    } else {
      r.os = options.use_prelim
                 ? core::GeneratePrelimOs(*db_, gds, backend_, hit.tuple,
                                          options.l, gen)
                 : core::GenerateCompleteOs(*db_, gds, backend_, hit.tuple,
                                            gen);
      r.selection = core::RunSizeL(options.algorithm, r.os, options.l);
    }
    results.push_back(std::move(r));
  }

  if (options.ranking == ResultRanking::kSummaryImportance) {
    std::stable_sort(results.begin(), results.end(),
                     [](const QueryResult& a, const QueryResult& b) {
                       return a.selection.importance > b.selection.importance;
                     });
    if (results.size() > options.max_results) {
      results.resize(options.max_results);
    }
  }
  return results;
}

std::vector<std::vector<QueryResult>> SearchContext::QueryBatch(
    std::span<const std::string> queries, const QueryOptions& options,
    util::ThreadPool& pool) const {
  std::vector<std::vector<QueryResult>> results(queries.size());
  util::ParallelFor(&pool, queries.size(),
                    [&](size_t i) { results[i] = Query(queries[i], options); });
  return results;
}

std::vector<std::vector<QueryResult>> SearchContext::QueryBatch(
    std::span<const std::string> queries, const QueryOptions& options,
    size_t num_threads) const {
  if (num_threads == 0) num_threads = util::ThreadPool::HardwareThreads();
  num_threads = std::min(num_threads, queries.size());
  if (num_threads <= 1) {
    // No pool for degenerate batches; same results by construction.
    std::vector<std::vector<QueryResult>> results;
    results.reserve(queries.size());
    for (const std::string& q : queries) results.push_back(Query(q, options));
    return results;
  }
  util::ThreadPool pool(num_threads);
  return QueryBatch(queries, options, pool);
}

std::string SearchContext::Render(const QueryResult& result) const {
  const gds::Gds& gds = subjects_.at(result.subject.relation);
  return result.os.Render(*db_, gds, &result.selection.nodes);
}

}  // namespace osum::search
