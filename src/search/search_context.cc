#include "search/search_context.h"

#include <algorithm>
#include <cassert>
#include <exception>
#include <memory>
#include <utility>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace osum::search {

namespace {

// The partials-memo key: exactly what determines the per-subject OS +
// selection — the subject identity, l (which also drives the generator's
// depth limit), and, when a selection actually runs (l > 0), the prelim
// mode and algorithm. Deliberately NOT QueryOptions::CacheKeyFragment():
// max_results and ranking rank *across* subjects and must not split the
// memo, or overlapping-keyword queries would stop sharing work.
std::string PartialsKey(const Hit& hit, const QueryOptions& options) {
  std::string key;
  key.reserve(32);
  key += 'r';
  key += std::to_string(hit.relation);
  key += 't';
  key += std::to_string(hit.tuple);
  key += 'l';
  key += std::to_string(options.l);
  if (options.l > 0) {
    key += options.use_prelim ? 'p' : 'c';
    key += 'a';
    key += std::to_string(static_cast<int>(options.algorithm));
  }
  return key;
}

}  // namespace

SearchContext SearchContext::Build(const rel::Database& db,
                                   core::OsBackend* backend,
                                   std::vector<Subject> subjects) {
  SearchContext ctx(db, backend);
  ctx.partials_memo_ = std::make_shared<core::PartialsMemo>();
  ctx.subject_order_.reserve(subjects.size());
  for (Subject& s : subjects) {
    assert(s.gds.root_relation() == s.relation);
    ctx.subject_order_.push_back(s.relation);
    bool inserted = ctx.subjects_.emplace(s.relation, std::move(s.gds)).second;
    assert(inserted && "each subject relation may be registered once");
    (void)inserted;
  }
  ctx.index_ = InvertedIndex::Build(db, ctx.subject_order_);
  return ctx;
}

const gds::Gds& SearchContext::GdsFor(rel::RelationId relation) const {
  // at(): an unregistered relation throws std::out_of_range determin-
  // istically instead of being release-mode UB.
  return subjects_.at(relation);
}

std::vector<SearchContext::Subject> SearchContext::TakeSubjects() && {
  std::vector<Subject> out;
  out.reserve(subject_order_.size());
  for (rel::RelationId r : subject_order_) {
    out.push_back(Subject{r, std::move(subjects_.at(r))});
  }
  subjects_.clear();
  subject_order_.clear();
  return out;
}

std::vector<QueryResult> SearchContext::Query(
    std::string_view keywords, const QueryOptions& options) const {
  std::vector<Hit> hits = index_.SearchQuery(keywords);

  // Pre-rank data subjects by global importance. Under subject ranking the
  // list is truncated here (cheap); under summary ranking every hit's
  // size-l OS must be computed first, so truncation happens at the end.
  std::sort(hits.begin(), hits.end(), [this](const Hit& a, const Hit& b) {
    double ia = db_->relation(a.relation).importance(a.tuple);
    double ib = db_->relation(b.relation).importance(b.tuple);
    if (ia != ib) return ia > ib;
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.tuple < b.tuple;
  });
  if (options.ranking == ResultRanking::kSubjectImportance &&
      hits.size() > options.max_results) {
    hits.resize(options.max_results);
  }

  std::vector<QueryResult> results;
  results.reserve(hits.size());
  // One scratch serves every hit of this query: after the first tree the
  // DP tables reuse the same arena blocks (see core::DpScratch).
  core::DpScratch scratch;
  core::PartialsMemo& memo = *partials_memo_;
  const bool use_memo = memo.enabled();
  for (const Hit& hit : hits) {
    const gds::Gds& gds = subjects_.at(hit.relation);
    QueryResult r;
    r.subject = hit;
    r.subject_importance = db_->relation(hit.relation).importance(hit.tuple);

    std::string memo_key;
    uint64_t memo_epoch = 0;
    if (use_memo) {
      memo_key = PartialsKey(hit, options);
      if (core::PartialPtr hit_partial = memo.Lookup(memo_key, &memo_epoch)) {
        // The memoized synopsis is exactly what the compute below would
        // produce for this (subject, options) — copying it keeps results
        // byte-identical to the memo-off path.
        r.os = hit_partial->os;
        r.selection = hit_partial->selection;
        results.push_back(std::move(r));
        continue;
      }
    }

    core::OsGenOptions gen;
    if (options.l > 0) {
      gen.max_depth = static_cast<int32_t>(options.l) - 1;  // footnote 1
    }
    if (options.l == 0) {
      r.os = core::GenerateCompleteOs(*db_, gds, backend_, hit.tuple, gen);
      r.selection.nodes.resize(r.os.size());
      for (size_t i = 0; i < r.os.size(); ++i) {
        r.selection.nodes[i] = static_cast<core::OsNodeId>(i);
      }
      r.selection.importance = r.os.TotalImportance();
    } else {
      r.os = options.use_prelim
                 ? core::GeneratePrelimOs(*db_, gds, backend_, hit.tuple,
                                          options.l, gen)
                 : core::GenerateCompleteOs(*db_, gds, backend_, hit.tuple,
                                            gen);
      r.selection = core::RunSizeL(options.algorithm, r.os, options.l,
                                   &scratch);
    }
    if (use_memo) {
      auto partial = std::make_shared<core::PartialSynopsis>();
      partial->os = r.os;
      partial->selection = r.selection;
      partial->approx_bytes = core::ApproxPartialBytes(*partial);
      memo.Insert(memo_key, std::move(partial), memo_epoch);
    }
    results.push_back(std::move(r));
  }

  if (options.ranking == ResultRanking::kSummaryImportance) {
    std::stable_sort(results.begin(), results.end(),
                     [](const QueryResult& a, const QueryResult& b) {
                       return a.selection.importance > b.selection.importance;
                     });
    if (results.size() > options.max_results) {
      results.resize(options.max_results);
    }
  }
  return results;
}

std::vector<std::vector<QueryResult>> SearchContext::QueryBatch(
    std::span<const std::string> queries, const QueryOptions& options,
    util::ThreadPool& pool) const {
  std::vector<std::vector<QueryResult>> results(queries.size());
  util::ParallelFor(&pool, queries.size(),
                    [&](size_t i) { results[i] = Query(queries[i], options); });
  return results;
}

std::vector<std::vector<QueryResult>> SearchContext::QueryBatch(
    std::span<const std::string> queries, const QueryOptions& options,
    size_t num_threads) const {
  if (num_threads == 0) num_threads = util::ThreadPool::HardwareThreads();
  num_threads = std::min(num_threads, queries.size());
  if (num_threads <= 1) {
    // No pool for degenerate batches; same results by construction.
    std::vector<std::vector<QueryResult>> results;
    results.reserve(queries.size());
    for (const std::string& q : queries) results.push_back(Query(q, options));
    return results;
  }
  util::ThreadPool pool(num_threads);
  return QueryBatch(queries, options, pool);
}

api::QueryResponse SearchContext::Execute(
    const api::QueryRequest& request) const {
  util::WallTimer timer;
  api::Status invalid = request.Validate();
  if (!invalid.ok()) {
    return api::QueryResponse::Failure(std::move(invalid));
  }
  api::QueryStats stats;  // uncached path: cache_hit false, epoch 0
  try {
    auto results = std::make_shared<api::ResultList>(
        Query(request.keywords(), request.options()));
    stats.compute_micros = timer.ElapsedMicros();
    return api::QueryResponse::Success(std::move(results), stats);
  } catch (const std::exception& e) {
    stats.compute_micros = timer.ElapsedMicros();
    return api::QueryResponse::Failure(api::Status::BackendError(e.what()),
                                       stats);
  }
}

std::vector<api::QueryResponse> SearchContext::ExecuteBatch(
    std::span<const api::QueryRequest> requests, util::ThreadPool& pool) const {
  std::vector<api::QueryResponse> responses(requests.size());
  // Execute never throws, so the fan-out honors ParallelFor's no-throw
  // contract by construction (unlike the legacy QueryBatch, where a
  // backend exception inside a task is fatal).
  util::ParallelFor(&pool, requests.size(),
                    [&](size_t i) { responses[i] = Execute(requests[i]); });
  return responses;
}

std::vector<api::QueryResponse> SearchContext::ExecuteBatch(
    std::span<const api::QueryRequest> requests, size_t num_threads) const {
  if (num_threads == 0) num_threads = util::ThreadPool::HardwareThreads();
  num_threads = std::min(num_threads, requests.size());
  if (num_threads <= 1) {
    // No pool for degenerate batches; same responses by construction.
    std::vector<api::QueryResponse> responses;
    responses.reserve(requests.size());
    for (const api::QueryRequest& r : requests) responses.push_back(Execute(r));
    return responses;
  }
  util::ThreadPool pool(num_threads);
  return ExecuteBatch(requests, pool);
}

std::string SearchContext::Render(const QueryResult& result) const {
  const gds::Gds& gds = subjects_.at(result.subject.relation);
  return result.os.Render(*db_, gds, &result.selection.nodes);
}

}  // namespace osum::search
