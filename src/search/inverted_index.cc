#include "search/inverted_index.h"

#include <algorithm>

#include "util/string_util.h"

namespace osum::search {

namespace {

bool HitLess(const Hit& a, const Hit& b) {
  if (a.relation != b.relation) return a.relation < b.relation;
  return a.tuple < b.tuple;
}

}  // namespace

InvertedIndex InvertedIndex::Build(
    const rel::Database& db, const std::vector<rel::RelationId>& relations) {
  InvertedIndex index;
  for (rel::RelationId r : relations) {
    const rel::Relation& relation = db.relation(r);
    const rel::Schema& schema = relation.schema();
    for (rel::TupleId t = 0; t < relation.num_tuples(); ++t) {
      for (rel::ColumnId c = 0; c < schema.num_columns(); ++c) {
        if (!schema.column(c).display ||
            schema.column(c).type != rel::ValueType::kString) {
          continue;
        }
        for (const std::string& token :
             util::TokenizeWords(relation.StringValue(t, c))) {
          index.postings_[token].push_back(Hit{r, t});
        }
      }
    }
  }
  for (auto& [term, hits] : index.postings_) {
    std::sort(hits.begin(), hits.end(), HitLess);
    hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  }
  return index;
}

std::vector<Hit> InvertedIndex::Search(
    const std::vector<std::string>& keywords) const {
  if (keywords.empty()) return {};
  std::vector<Hit> result;
  bool first = true;
  for (const std::string& kw : keywords) {
    auto it = postings_.find(util::ToLower(kw));
    if (it == postings_.end()) return {};
    if (first) {
      result = it->second;
      first = false;
      continue;
    }
    std::vector<Hit> merged;
    std::set_intersection(result.begin(), result.end(), it->second.begin(),
                          it->second.end(), std::back_inserter(merged),
                          HitLess);
    result = std::move(merged);
    if (result.empty()) break;
  }
  return result;
}

std::vector<Hit> InvertedIndex::SearchQuery(std::string_view query) const {
  return Search(util::TokenizeWords(query));
}

}  // namespace osum::search
