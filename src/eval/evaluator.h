// Simulated human evaluators for the effectiveness study (Section 6.1).
//
// The paper asked 11 DBLP authors and 8 professors/researchers to size-l
// OSs by hand and measured the overlap with the computed size-l OSs. We
// cannot convene a human panel, so we simulate one (see DESIGN.md,
// "Substitutions"): an evaluator's judgement is modeled as the *reference*
// local-importance signal (what a well-informed human values) distorted by
//   1. inter-relational bias — per-(evaluator, G_DS label) multipliers,
//      reproducing the observed behaviour that "evaluators first selected
//      important Paper tuples ... and then additional tuples such as
//      co-authors, year, conferences";
//   2. intra-relational log-normal noise — humans do not rank tuples
//      inside a relation exactly like ObjectRank does.
// The evaluator's "own" size-l OS is then the *optimal* size-l OS under
// the distorted scores (humans were explicitly instructed that the result
// must stay a connected, stand-alone synopsis).
//
// Effectiveness of a computed size-l OS = overlap with the evaluator's
// selection / l, which is simultaneously recall and precision (both sets
// have size l) — exactly the measure of Figure 8.
#ifndef OSUM_EVAL_EVALUATOR_H_
#define OSUM_EVAL_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/os_tree.h"
#include "core/size_l.h"
#include "gds/gds.h"

namespace osum::eval {

/// Panel configuration.
struct EvaluatorPanelConfig {
  uint64_t seed = 2011;
  size_t num_evaluators = 11;
  /// Sigma of the per-tuple log-normal score distortion.
  double noise_sigma = 0.35;
  /// Mean inter-relational bias per G_DS node label (multiplier applied to
  /// every tuple under that label). Labels absent from the map get 1.0.
  std::unordered_map<std::string, double> label_bias;
  /// Per-evaluator log-normal jitter applied on top of each label bias.
  double bias_jitter_sigma = 0.15;
};

/// The paper-motivated default biases for DBLP OSs (papers first, then
/// co-authors/years, conferences last).
EvaluatorPanelConfig DblpEvaluatorConfig(size_t num_evaluators = 11,
                                         uint64_t seed = 2011);

/// Default biases for TPC-H OSs (orders and partsupps carry the signal;
/// reference data like Nation/Region is picked late).
EvaluatorPanelConfig TpchEvaluatorConfig(size_t num_evaluators = 8,
                                         uint64_t seed = 1974);

/// A panel of simulated evaluators. Deterministic: evaluator e always
/// produces the same judgement for the same OS.
class EvaluatorPanel {
 public:
  explicit EvaluatorPanel(EvaluatorPanelConfig config);

  size_t size() const { return config_.num_evaluators; }

  /// The evaluator's distorted per-node scores for `os`, where
  /// `reference_li[i]` is the reference local importance of OS node i.
  std::vector<double> DistortedScores(const core::OsTree& os,
                                      const gds::Gds& gds,
                                      const std::vector<double>& reference_li,
                                      size_t evaluator) const;

  /// The evaluator's own size-l OS: optimal size-l under distorted scores.
  core::Selection IdealSizeL(const core::OsTree& os, const gds::Gds& gds,
                             const std::vector<double>& reference_li,
                             size_t evaluator, size_t l) const;

 private:
  EvaluatorPanelConfig config_;
};

/// Copies `os` with node-local importances replaced by `scores`.
core::OsTree ReweightOs(const core::OsTree& os,
                        const std::vector<double>& scores);

/// Local importances of all nodes of `os` as a vector (index = node id).
std::vector<double> NodeScores(const core::OsTree& os);

/// |A ∩ B| for two selections.
size_t OverlapCount(const core::Selection& a, const core::Selection& b);

/// Overlap / l — recall = precision of Figure 8.
double Effectiveness(const core::Selection& computed,
                     const core::Selection& ideal, size_t l);

}  // namespace osum::eval

#endif  // OSUM_EVAL_EVALUATOR_H_
