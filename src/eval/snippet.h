// The Google-Desktop-style static snippet baseline of Section 6.1's
// comparative evaluation.
//
// The paper stored each OS as an HTML file and let Google Desktop produce
// its snippet: "a small amount of words from the beginning of the file,
// combining static text ... and the first few tuples (up to three) from
// the OS (note that the order of nodes in an OS is random)". The baseline
// here reproduces that: the first up-to-3 tuples of the OS in document
// order (optionally shuffled first, to model the "random order" remark).
#ifndef OSUM_EVAL_SNIPPET_H_
#define OSUM_EVAL_SNIPPET_H_

#include <cstdint>

#include "core/os_tree.h"

namespace osum::eval {

/// The static snippet as a selection: the root (the page title line) plus
/// the first `max_tuples` non-root tuples in document order. When
/// `shuffle_seed` is nonzero the non-root order is randomized first,
/// modeling the random on-page tuple order of the exported OS.
core::Selection StaticSnippet(const core::OsTree& os, size_t max_tuples = 3,
                              uint64_t shuffle_seed = 0);

}  // namespace osum::eval

#endif  // OSUM_EVAL_SNIPPET_H_
