#include "eval/evaluator.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"

namespace osum::eval {

EvaluatorPanelConfig DblpEvaluatorConfig(size_t num_evaluators,
                                         uint64_t seed) {
  EvaluatorPanelConfig c;
  c.seed = seed;
  c.num_evaluators = num_evaluators;
  // Section 6.1: "evaluators first selected important Paper tuples to
  // include in the size-l OS and then additional tuples such as
  // co-authors, year, conferences (these were usually included in
  // summaries of larger sizes)". Noise calibrated so effectiveness lands
  // in the paper's 40-60% (l=5) to 75-90% (l=30) band.
  c.noise_sigma = 0.30;
  c.label_bias = {
      {"Paper", 1.60},      {"Co-Author", 0.95}, {"Author", 1.15},
      {"Year", 0.80},       {"Conference", 0.70}, {"PaperCites", 0.90},
      {"PaperCitedBy", 1.00},
  };
  return c;
}

EvaluatorPanelConfig TpchEvaluatorConfig(size_t num_evaluators,
                                         uint64_t seed) {
  EvaluatorPanelConfig c;
  c.seed = seed;
  c.num_evaluators = num_evaluators;
  // The TPC-H panel received descriptive statistics per tuple (order
  // value quantiles etc.), so their judgement tracks the ValueRank signal
  // closely: lower intra-relational noise than the DBLP panel.
  c.noise_sigma = 0.15;
  c.bias_jitter_sigma = 0.08;
  c.label_bias = {
      {"Order", 1.40},   {"Lineitem", 0.95}, {"Partsupp", 1.10},
      {"Parts", 0.90},   {"Supplier", 0.85}, {"Nation", 0.75},
      {"Region", 0.70},  {"Customer", 1.10},
  };
  return c;
}

EvaluatorPanel::EvaluatorPanel(EvaluatorPanelConfig config)
    : config_(std::move(config)) {}

std::vector<double> EvaluatorPanel::DistortedScores(
    const core::OsTree& os, const gds::Gds& gds,
    const std::vector<double>& reference_li, size_t evaluator) const {
  assert(reference_li.size() == os.size());
  assert(evaluator < config_.num_evaluators);
  // One deterministic stream per evaluator, independent of OS size.
  util::Rng evaluator_rng(config_.seed ^ (0x9E37u + evaluator * 1000003ULL));

  // Evaluator-specific label biases (mean bias x per-evaluator jitter).
  std::unordered_map<std::string, double> bias;
  for (const auto& [label, mean] : config_.label_bias) {
    bias[label] =
        mean * evaluator_rng.NextLogNormal(0.0, config_.bias_jitter_sigma);
  }

  std::vector<double> scores(os.size());
  for (size_t i = 0; i < os.size(); ++i) {
    const core::OsNode& node = os.node(i);
    const std::string& label = gds.node(node.gds_node).label;
    auto it = bias.find(label);
    double b = it == bias.end() ? 1.0 : it->second;
    double noise = evaluator_rng.NextLogNormal(0.0, config_.noise_sigma);
    scores[i] = reference_li[i] * b * noise;
  }
  // The root is the subject itself; every human keeps it (it is forced by
  // Definition 1 anyway, but give it top score for clarity).
  if (!scores.empty()) {
    scores[0] = std::max(scores[0], *std::max_element(scores.begin(),
                                                      scores.end()));
  }
  return scores;
}

core::Selection EvaluatorPanel::IdealSizeL(
    const core::OsTree& os, const gds::Gds& gds,
    const std::vector<double>& reference_li, size_t evaluator,
    size_t l) const {
  core::OsTree distorted =
      ReweightOs(os, DistortedScores(os, gds, reference_li, evaluator));
  return core::SizeLDp(distorted, l);
}

core::OsTree ReweightOs(const core::OsTree& os,
                        const std::vector<double>& scores) {
  assert(scores.size() == os.size());
  core::OsTree out;
  if (os.empty()) return out;
  const core::OsNode& root = os.node(core::kOsRoot);
  out.AddRoot(root.gds_node, root.relation, root.tuple, scores[0]);
  // BFS order of the source tree guarantees parents precede children.
  for (size_t i = 1; i < os.size(); ++i) {
    const core::OsNode& n = os.node(static_cast<core::OsNodeId>(i));
    core::OsNodeId id =
        out.AddChild(n.parent, n.gds_node, n.relation, n.tuple, scores[i]);
    assert(id == static_cast<core::OsNodeId>(i));
    (void)id;
  }
  return out;
}

std::vector<double> NodeScores(const core::OsTree& os) {
  std::vector<double> scores(os.size());
  for (size_t i = 0; i < os.size(); ++i) {
    scores[i] = os.node(static_cast<core::OsNodeId>(i)).local_importance;
  }
  return scores;
}

size_t OverlapCount(const core::Selection& a, const core::Selection& b) {
  // Selections are sorted ascending by construction.
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.nodes.size() && j < b.nodes.size()) {
    if (a.nodes[i] == b.nodes[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a.nodes[i] < b.nodes[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

double Effectiveness(const core::Selection& computed,
                     const core::Selection& ideal, size_t l) {
  if (l == 0) return 0.0;
  return static_cast<double>(OverlapCount(computed, ideal)) /
         static_cast<double>(l);
}

}  // namespace osum::eval
