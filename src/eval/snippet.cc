#include "eval/snippet.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace osum::eval {

core::Selection StaticSnippet(const core::OsTree& os, size_t max_tuples,
                              uint64_t shuffle_seed) {
  core::Selection sel;
  if (os.empty()) return sel;
  sel.nodes.push_back(core::kOsRoot);

  std::vector<core::OsNodeId> order(os.size() > 0 ? os.size() - 1 : 0);
  std::iota(order.begin(), order.end(), 1);
  if (shuffle_seed != 0) {
    util::Rng rng(shuffle_seed);
    rng.Shuffle(&order);
  }
  for (size_t i = 0; i < order.size() && sel.nodes.size() <= max_tuples;
       ++i) {
    sel.nodes.push_back(order[i]);
  }
  std::sort(sel.nodes.begin(), sel.nodes.end());
  sel.importance = core::SelectionImportance(os, sel.nodes);
  return sel;
}

}  // namespace osum::eval
