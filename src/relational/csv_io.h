// Database persistence: a portable on-disk format (one CSV per relation
// plus a plain-text catalog describing schemas, junction flags and foreign
// keys), so generated evaluation databases can be inspected, versioned or
// loaded into an external DBMS.
//
// Format:
//   <dir>/catalog.txt   — relation / column / fk declarations (see below)
//   <dir>/<Relation>.csv — header row of column names, RFC-4180-style
//                          quoting, NULL encoded as an empty unquoted field
//
// catalog.txt grammar (one declaration per line, '#' comments):
//   relation <name> <junction|entity>
//   column <relation> <name> <int|double|string> <display|hidden>
//   fk <name> <child_relation> <child_column> <parent_relation>
#ifndef OSUM_RELATIONAL_CSV_IO_H_
#define OSUM_RELATIONAL_CSV_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "relational/database.h"

namespace osum::rel {

/// Serializes one relation as CSV (header + rows) to `out`.
void WriteRelationCsv(const Relation& relation, std::ostream& out);

/// Parses CSV produced by WriteRelationCsv into `relation` (which must be
/// empty and have the matching schema). Returns false on malformed input.
bool ReadRelationCsv(std::istream& in, Relation* relation);

/// Writes the whole database (catalog + one CSV per relation) under `dir`
/// (created if needed). Returns false on I/O failure.
bool SaveDatabaseCsv(const Database& db, const std::string& dir);

/// Loads a database previously written by SaveDatabaseCsv. Indexes are
/// built before returning; importance annotations are not persisted.
/// Returns nullopt on parse or I/O failure (diagnostics on stderr).
std::optional<Database> LoadDatabaseCsv(const std::string& dir);

/// CSV field quoting helpers (exposed for tests).
std::string CsvQuote(const std::string& field);
bool CsvParseLine(const std::string& line, std::vector<std::string>* fields,
                  std::vector<bool>* quoted);

}  // namespace osum::rel

#endif  // OSUM_RELATIONAL_CSV_IO_H_
