#include "relational/csv_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace osum::rel {

namespace {

const char* TypeToken(ValueType t) {
  switch (t) {
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kNull:
      break;
  }
  return "string";
}

std::optional<ValueType> ParseType(const std::string& token) {
  if (token == "int") return ValueType::kInt;
  if (token == "double") return ValueType::kDouble;
  if (token == "string") return ValueType::kString;
  return std::nullopt;
}

// Doubles are round-tripped with %.17g so values survive save/load
// bit-exactly.
std::string SerializeValue(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(v));
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", std::get<double>(v));
      return buf;
    }
    case ValueType::kString:
      return std::get<std::string>(v);
  }
  return "";
}

}  // namespace

std::string CsvQuote(const std::string& field) {
  bool needs_quote = field.empty();
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

bool CsvParseLine(const std::string& line, std::vector<std::string>* fields,
                  std::vector<bool>* quoted) {
  fields->clear();
  quoted->clear();
  std::string cur;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"' && cur.empty() && !was_quoted) {
      in_quotes = true;
      was_quoted = true;
    } else if (c == ',') {
      fields->push_back(std::move(cur));
      quoted->push_back(was_quoted);
      cur.clear();
      was_quoted = false;
    } else {
      cur += c;
    }
  }
  if (in_quotes) return false;  // unterminated quote
  fields->push_back(std::move(cur));
  quoted->push_back(was_quoted);
  return true;
}

void WriteRelationCsv(const Relation& relation, std::ostream& out) {
  const Schema& schema = relation.schema();
  for (ColumnId c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out << ",";
    out << CsvQuote(schema.column(c).name);
  }
  out << "\n";
  for (TupleId t = 0; t < relation.num_tuples(); ++t) {
    for (ColumnId c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << ",";
      const Value& v = relation.value(t, c);
      if (TypeOf(v) == ValueType::kNull) {
        // NULL: empty unquoted field. Empty *strings* are written quoted
        // ("") so the two are distinguishable.
        continue;
      }
      std::string s = SerializeValue(v);
      if (TypeOf(v) == ValueType::kString && s.empty()) {
        out << "\"\"";
      } else {
        out << CsvQuote(s);
      }
    }
    out << "\n";
  }
}

bool ReadRelationCsv(std::istream& in, Relation* relation) {
  const Schema& schema = relation->schema();
  std::string line;
  if (!std::getline(in, line)) return false;  // header
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  if (!CsvParseLine(line, &fields, &quoted)) return false;
  if (fields.size() != schema.num_columns()) return false;
  for (ColumnId c = 0; c < schema.num_columns(); ++c) {
    if (fields[c] != schema.column(c).name) return false;
  }

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!CsvParseLine(line, &fields, &quoted)) return false;
    if (fields.size() != schema.num_columns()) return false;
    std::vector<Value> values(schema.num_columns());
    for (ColumnId c = 0; c < schema.num_columns(); ++c) {
      const std::string& f = fields[c];
      if (f.empty() && !quoted[c]) {
        values[c] = Value{};  // NULL
        continue;
      }
      try {
        switch (schema.column(c).type) {
          case ValueType::kInt:
            values[c] = Value{static_cast<int64_t>(std::stoll(f))};
            break;
          case ValueType::kDouble:
            values[c] = Value{std::stod(f)};
            break;
          default:
            values[c] = Value{f};
            break;
        }
      } catch (const std::exception&) {
        return false;  // non-numeric text in a numeric column
      }
    }
    relation->Append(std::move(values));
  }
  return true;
}

bool SaveDatabaseCsv(const Database& db, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  std::ofstream catalog(dir + "/catalog.txt");
  if (!catalog) return false;
  catalog << "# osum database catalog\n";
  for (RelationId r = 0; r < db.num_relations(); ++r) {
    const Relation& rel = db.relation(r);
    catalog << "relation " << rel.name() << " "
            << (rel.is_junction() ? "junction" : "entity") << "\n";
    for (const Column& c : rel.schema().columns()) {
      catalog << "column " << rel.name() << " " << c.name << " "
              << TypeToken(c.type) << " " << (c.display ? "display" : "hidden")
              << "\n";
    }
  }
  for (const ForeignKey& fk : db.foreign_keys()) {
    const Relation& child = db.relation(fk.child);
    catalog << "fk " << fk.name << " " << child.name() << " "
            << child.schema().column(fk.child_col).name << " "
            << db.relation(fk.parent).name() << "\n";
  }

  for (RelationId r = 0; r < db.num_relations(); ++r) {
    const Relation& rel = db.relation(r);
    std::ofstream out(dir + "/" + rel.name() + ".csv");
    if (!out) return false;
    WriteRelationCsv(rel, out);
  }
  return true;
}

std::optional<Database> LoadDatabaseCsv(const std::string& dir) {
  std::ifstream catalog(dir + "/catalog.txt");
  if (!catalog) {
    std::fprintf(stderr, "LoadDatabaseCsv: missing %s/catalog.txt\n",
                 dir.c_str());
    return std::nullopt;
  }

  // Two passes over the catalog: relations + columns first, then FKs.
  struct PendingRelation {
    std::string name;
    bool junction = false;
    Schema schema;
  };
  std::vector<PendingRelation> pending;
  struct PendingFk {
    std::string name, child, child_col, parent;
  };
  std::vector<PendingFk> fks;

  std::string line;
  while (std::getline(catalog, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    if (kind == "relation") {
      PendingRelation p;
      std::string flavor;
      ss >> p.name >> flavor;
      if (p.name.empty() || (flavor != "junction" && flavor != "entity")) {
        std::fprintf(stderr, "LoadDatabaseCsv: bad line '%s'\n",
                     line.c_str());
        return std::nullopt;
      }
      p.junction = flavor == "junction";
      pending.push_back(std::move(p));
    } else if (kind == "column") {
      std::string rel, name, type, vis;
      ss >> rel >> name >> type >> vis;
      auto parsed = ParseType(type);
      if (!parsed.has_value() || pending.empty() ||
          pending.back().name != rel || (vis != "display" && vis != "hidden")) {
        std::fprintf(stderr, "LoadDatabaseCsv: bad line '%s'\n",
                     line.c_str());
        return std::nullopt;
      }
      pending.back().schema.AddColumn(
          Column{name, *parsed, vis == "display"});
    } else if (kind == "fk") {
      PendingFk fk;
      ss >> fk.name >> fk.child >> fk.child_col >> fk.parent;
      fks.push_back(std::move(fk));
    } else {
      std::fprintf(stderr, "LoadDatabaseCsv: unknown declaration '%s'\n",
                   kind.c_str());
      return std::nullopt;
    }
  }

  Database db;
  for (PendingRelation& p : pending) {
    db.AddRelation(p.name, std::move(p.schema), p.junction);
  }
  for (const PendingFk& fk : fks) {
    RelationId child = db.GetRelationId(fk.child);
    RelationId parent = db.GetRelationId(fk.parent);
    auto col = db.relation(child).schema().FindColumn(fk.child_col);
    if (!col.has_value()) {
      std::fprintf(stderr, "LoadDatabaseCsv: fk column '%s' missing\n",
                   fk.child_col.c_str());
      return std::nullopt;
    }
    db.AddForeignKey(fk.name, child, *col, parent);
  }

  for (RelationId r = 0; r < db.num_relations(); ++r) {
    Relation& rel = db.relation(r);
    std::ifstream in(dir + "/" + rel.name() + ".csv");
    if (!in) {
      std::fprintf(stderr, "LoadDatabaseCsv: missing %s.csv\n",
                   rel.name().c_str());
      return std::nullopt;
    }
    if (!ReadRelationCsv(in, &rel)) {
      std::fprintf(stderr, "LoadDatabaseCsv: malformed %s.csv\n",
                   rel.name().c_str());
      return std::nullopt;
    }
  }
  db.BuildIndexes();
  return db;
}

}  // namespace osum::rel
