#include "relational/schema.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace osum::rel {

Schema::Schema(std::vector<Column> columns) {
  for (auto& c : columns) AddColumn(std::move(c));
}

ColumnId Schema::AddColumn(Column column) {
  ColumnId id = static_cast<ColumnId>(columns_.size());
  by_name_.emplace(column.name, id);
  columns_.push_back(std::move(column));
  return id;
}

std::optional<ColumnId> Schema::FindColumn(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

ColumnId Schema::GetColumn(const std::string& name) const {
  auto found = FindColumn(name);
  if (!found.has_value()) {
    std::fprintf(stderr, "Schema::GetColumn: no column named '%s'\n",
                 name.c_str());
    std::abort();
  }
  return *found;
}

}  // namespace osum::rel
