// A relation (table): schema + row-major tuple storage + per-tuple global
// importance annotation.
#ifndef OSUM_RELATIONAL_RELATION_H_
#define OSUM_RELATIONAL_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace osum::rel {

/// Index of a relation within its database.
using RelationId = uint32_t;

/// Tuple identifier — the implicit primary key. Tuples are append-only and
/// identified by their row index; foreign-key columns store the referenced
/// tuple's TupleId as an int64 value.
using TupleId = uint32_t;

inline constexpr TupleId kInvalidTuple = static_cast<TupleId>(-1);

/// A table. Storage is a flat row-major Value vector (rows * columns),
/// giving O(1) attribute access with one indirection and keeping related
/// attributes adjacent in memory.
class Relation {
 public:
  Relation(RelationId id, std::string name, Schema schema, bool is_junction);

  RelationId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Junction relations exist purely to encode M:N relationships (e.g. the
  /// DBLP Writes and Cites tables). The G_DS treealization collapses them:
  /// they never appear as OS nodes, matching the paper's DBLP G_DS where
  /// "Co-Author" is a direct child of Paper.
  bool is_junction() const { return is_junction_; }

  size_t num_tuples() const { return num_tuples_; }

  /// Appends a tuple; `values` must match the schema arity. Returns its id.
  TupleId Append(std::vector<Value> values);

  /// Attribute access.
  const Value& value(TupleId t, ColumnId c) const {
    return cells_[static_cast<size_t>(t) * schema_.num_columns() + c];
  }

  /// In-place attribute update (used by loaders that backfill aggregates,
  /// e.g. Orders.totalprice from its Lineitems). Must not change FK columns
  /// after BuildIndexes().
  void SetValue(TupleId t, ColumnId c, Value v) {
    cells_[static_cast<size_t>(t) * schema_.num_columns() + c] = std::move(v);
  }

  /// Convenience typed accessors (caller must know the type).
  int64_t IntValue(TupleId t, ColumnId c) const;
  double NumericValue(TupleId t, ColumnId c) const;
  const std::string& StringValue(TupleId t, ColumnId c) const;

  /// Global importance Im(t) of each tuple (ObjectRank / ValueRank score).
  /// Zero until annotated via SetImportance().
  double importance(TupleId t) const {
    return importance_.empty() ? 0.0 : importance_[t];
  }
  void SetImportance(std::vector<double> importance);
  bool has_importance() const { return !importance_.empty(); }

  /// Maximum Im(t) over the relation — the global statistic behind the
  /// paper's max(R_i) annotation (Section 5.3).
  double max_importance() const { return max_importance_; }

  /// Renders tuple `t` as "Relation: v1, v2, ..." over display columns.
  std::string RenderTuple(TupleId t) const;

  /// Renders only the display attribute values, comma-separated.
  std::string RenderValues(TupleId t) const;

 private:
  RelationId id_;
  std::string name_;
  Schema schema_;
  bool is_junction_;
  size_t num_tuples_ = 0;
  std::vector<Value> cells_;
  std::vector<double> importance_;
  double max_importance_ = 0.0;
};

}  // namespace osum::rel

#endif  // OSUM_RELATIONAL_RELATION_H_
