#include "relational/database.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace osum::rel {

RelationId Database::AddRelation(std::string name, Schema schema,
                                 bool is_junction) {
  assert(!indexes_built_);
  RelationId id = static_cast<RelationId>(relations_.size());
  relations_by_name_.emplace(name, id);
  relations_.push_back(std::make_unique<Relation>(id, std::move(name),
                                                  std::move(schema),
                                                  is_junction));
  fks_of_child_.emplace_back();
  fks_of_parent_.emplace_back();
  return id;
}

ForeignKeyId Database::AddForeignKey(std::string name, RelationId child,
                                     ColumnId child_col, RelationId parent) {
  assert(!indexes_built_);
  assert(child < relations_.size());
  assert(parent < relations_.size());
  assert(child_col < relations_[child]->schema().num_columns());
  ForeignKeyId id = static_cast<ForeignKeyId>(fks_.size());
  fks_.push_back(ForeignKey{id, std::move(name), child, child_col, parent});
  fks_of_child_[child].push_back(id);
  fks_of_parent_[parent].push_back(id);
  return id;
}

RelationId Database::GetRelationId(const std::string& name) const {
  auto it = relations_by_name_.find(name);
  if (it == relations_by_name_.end()) {
    std::fprintf(stderr, "Database: no relation named '%s'\n", name.c_str());
    std::abort();
  }
  return it->second;
}

Relation& Database::GetRelation(const std::string& name) {
  return *relations_[GetRelationId(name)];
}

const Relation& Database::GetRelation(const std::string& name) const {
  return *relations_[GetRelationId(name)];
}

uint64_t Database::TotalTuples() const {
  uint64_t total = 0;
  for (const auto& r : relations_) total += r->num_tuples();
  return total;
}

void Database::BuildIndexes() {
  assert(!indexes_built_);
  indexes_.resize(fks_.size());
  for (const ForeignKey& fk : fks_) {
    JoinIndex& idx = indexes_[fk.id];
    const Relation& child = *relations_[fk.child];
    const Relation& parent = *relations_[fk.parent];
    idx.postings.assign(parent.num_tuples(), {});
    for (TupleId t = 0; t < child.num_tuples(); ++t) {
      const Value& v = child.value(t, fk.child_col);
      if (TypeOf(v) == ValueType::kNull) continue;
      int64_t p = std::get<int64_t>(v);
      assert(p >= 0 && static_cast<uint64_t>(p) < parent.num_tuples());
      idx.postings[static_cast<size_t>(p)].push_back(t);
    }
  }
  indexes_built_ = true;
}

void Database::SortIndexesByImportance() {
  assert(indexes_built_);
  for (const ForeignKey& fk : fks_) {
    const Relation& child = *relations_[fk.child];
    assert(child.has_importance());
    for (auto& posting : indexes_[fk.id].postings) {
      std::sort(posting.begin(), posting.end(),
                [&child](TupleId a, TupleId b) {
                  double ia = child.importance(a);
                  double ib = child.importance(b);
                  if (ia != ib) return ia > ib;
                  return a < b;  // deterministic tie-break
                });
    }
  }
  indexes_sorted_ = true;
}

FkStats Database::GetFkStats(ForeignKeyId fk) const {
  assert(indexes_built_);
  const JoinIndex& idx = indexes_[fk];
  FkStats stats;
  uint64_t parents_with_children = 0;
  for (const auto& posting : idx.postings) {
    stats.child_count += posting.size();
    stats.max_fanout = std::max<uint64_t>(stats.max_fanout, posting.size());
    if (!posting.empty()) ++parents_with_children;
  }
  stats.avg_fanout =
      parents_with_children == 0
          ? 0.0
          : static_cast<double>(stats.child_count) /
                static_cast<double>(parents_with_children);
  return stats;
}

std::span<const TupleId> Database::Children(ForeignKeyId fk,
                                            TupleId parent_tuple) const {
  assert(indexes_built_);
  const auto& posting = indexes_[fk].postings[parent_tuple];
  io_stats_.CountSelect(posting.size(), 1);
  return {posting.data(), posting.size()};
}

std::vector<TupleId> Database::ChildrenTopImportance(
    ForeignKeyId fk, TupleId parent_tuple, size_t limit,
    double min_importance) const {
  assert(indexes_built_);
  assert(indexes_sorted_ &&
         "ChildrenTopImportance requires SortIndexesByImportance()");
  const Relation& child = *relations_[fks_[fk].child];
  const auto& posting = indexes_[fk].postings[parent_tuple];
  std::vector<TupleId> out;
  for (TupleId t : posting) {
    if (out.size() >= limit) break;
    if (child.importance(t) <= min_importance) break;  // sorted descending
    out.push_back(t);
  }
  // Costs a SELECT even when the result is empty (Section 5.3 caveat).
  io_stats_.CountSelect(out.size(), 1);
  return out;
}

std::optional<TupleId> Database::Parent(ForeignKeyId fk,
                                        TupleId child_tuple) const {
  assert(indexes_built_);
  const ForeignKey& f = fks_[fk];
  const Value& v = relations_[f.child]->value(child_tuple, f.child_col);
  if (TypeOf(v) == ValueType::kNull) {
    io_stats_.CountSelect(0, 1);
    return std::nullopt;
  }
  io_stats_.CountSelect(1, 1);
  return static_cast<TupleId>(std::get<int64_t>(v));
}

}  // namespace osum::rel
