// Relation schemas: ordered, named, typed columns.
#ifndef OSUM_RELATIONAL_SCHEMA_H_
#define OSUM_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/value.h"

namespace osum::rel {

/// Index of a column within its relation.
using ColumnId = uint32_t;

/// A single column definition.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
  /// Columns flagged as `display` participate in tuple rendering and in the
  /// keyword inverted index (the paper's attribute-affinity θ' selection:
  /// only attributes relevant to the DS are shown in an OS).
  bool display = true;
};

/// An ordered set of columns with by-name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Appends a column; returns its ColumnId.
  ColumnId AddColumn(Column column);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(ColumnId id) const { return columns_[id]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Finds a column by name; nullopt if absent.
  std::optional<ColumnId> FindColumn(const std::string& name) const;

  /// Finds a column by name; aborts if absent. For schema wiring in
  /// generators where the column is known to exist.
  ColumnId GetColumn(const std::string& name) const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, ColumnId> by_name_;
};

}  // namespace osum::rel

#endif  // OSUM_RELATIONAL_SCHEMA_H_
