#include "relational/value.h"

#include "util/string_util.h"

namespace osum::rel {

ValueType TypeOf(const Value& v) {
  return static_cast<ValueType>(v.index());
}

std::string ToString(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(v));
    case ValueType::kDouble:
      return util::FormatDouble(std::get<double>(v), 2);
    case ValueType::kString:
      return std::get<std::string>(v);
  }
  return "?";
}

const char* TypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

double AsNumeric(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kInt:
      return static_cast<double>(std::get<int64_t>(v));
    case ValueType::kDouble:
      return std::get<double>(v);
    default:
      return 0.0;
  }
}

}  // namespace osum::rel
