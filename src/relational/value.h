// Typed attribute values for the embedded relational engine.
#ifndef OSUM_RELATIONAL_VALUE_H_
#define OSUM_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace osum::rel {

/// Attribute type tags. The engine is deliberately small: the paper's two
/// evaluation databases (DBLP, TPC-H) only need NULLs, integers, decimals
/// and strings.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
};

/// A single attribute value. monostate encodes SQL NULL.
using Value = std::variant<std::monostate, int64_t, double, std::string>;

/// Runtime type of `v`.
ValueType TypeOf(const Value& v);

/// Human-readable rendering ("NULL", "42", "3.14", "SIGCOMM").
std::string ToString(const Value& v);

/// Printable name of a type tag ("int", "double", ...).
const char* TypeName(ValueType t);

/// Numeric view of a value: ints and doubles convert, everything else is 0.
/// Used by ValueRank's value-scaling functions f(value).
double AsNumeric(const Value& v);

}  // namespace osum::rel

#endif  // OSUM_RELATIONAL_VALUE_H_
