// Foreign-key metadata.
#ifndef OSUM_RELATIONAL_FOREIGN_KEY_H_
#define OSUM_RELATIONAL_FOREIGN_KEY_H_

#include <cstdint>
#include <string>

#include "relational/relation.h"
#include "relational/schema.h"

namespace osum::rel {

/// Index of a foreign key within its database.
using ForeignKeyId = uint32_t;

/// Direction of traversal along a foreign key.
enum class FkDirection : uint8_t {
  /// parent -> children (1:M fan-out; e.g. Customer -> Orders).
  kForward,
  /// child -> parent (M:1; e.g. Orders -> Customer, cardinality <= 1).
  kBackward,
};

/// Flips a traversal direction.
inline FkDirection Reverse(FkDirection d) {
  return d == FkDirection::kForward ? FkDirection::kBackward
                                    : FkDirection::kForward;
}

/// A declared foreign key: `child.child_col` references the implicit primary
/// key (TupleId) of `parent`. NULL child values encode absent references.
struct ForeignKey {
  ForeignKeyId id = 0;
  std::string name;       // e.g. "paper_year", "writes_author"
  RelationId child = 0;   // referencing relation
  ColumnId child_col = 0; // referencing column (ValueType::kInt, stores TupleId)
  RelationId parent = 0;  // referenced relation
};

}  // namespace osum::rel

#endif  // OSUM_RELATIONAL_FOREIGN_KEY_H_
