#include "relational/relation.h"

#include <algorithm>
#include <cassert>

namespace osum::rel {

Relation::Relation(RelationId id, std::string name, Schema schema,
                   bool is_junction)
    : id_(id),
      name_(std::move(name)),
      schema_(std::move(schema)),
      is_junction_(is_junction) {}

TupleId Relation::Append(std::vector<Value> values) {
  assert(values.size() == schema_.num_columns());
  TupleId t = static_cast<TupleId>(num_tuples_);
  cells_.insert(cells_.end(), std::make_move_iterator(values.begin()),
                std::make_move_iterator(values.end()));
  ++num_tuples_;
  return t;
}

int64_t Relation::IntValue(TupleId t, ColumnId c) const {
  const Value& v = value(t, c);
  assert(TypeOf(v) == ValueType::kInt);
  return std::get<int64_t>(v);
}

double Relation::NumericValue(TupleId t, ColumnId c) const {
  return AsNumeric(value(t, c));
}

const std::string& Relation::StringValue(TupleId t, ColumnId c) const {
  const Value& v = value(t, c);
  assert(TypeOf(v) == ValueType::kString);
  return std::get<std::string>(v);
}

void Relation::SetImportance(std::vector<double> importance) {
  assert(importance.size() == num_tuples_);
  importance_ = std::move(importance);
  max_importance_ = importance_.empty()
                        ? 0.0
                        : *std::max_element(importance_.begin(),
                                            importance_.end());
}

std::string Relation::RenderTuple(TupleId t) const {
  std::string out = name_;
  out += ": ";
  out += RenderValues(t);
  return out;
}

std::string Relation::RenderValues(TupleId t) const {
  std::string out;
  bool first = true;
  for (ColumnId c = 0; c < schema_.num_columns(); ++c) {
    if (!schema_.column(c).display) continue;
    if (!first) out += ", ";
    first = false;
    out += ToString(value(t, c));
  }
  return out;
}

}  // namespace osum::rel
