// The embedded relational database: catalog, foreign keys, hash-free
// FK join indexes and the SQL-shaped access paths that Algorithms 4/5 of the
// paper issue ("SELECT * FROM Ri WHERE tj.ID=Ri.ID", "SELECT * TOP l ...").
//
// This substrate replaces the MySQL instance the paper ran against; see
// DESIGN.md ("Substitutions"). Every access path bumps util::IoStats so the
// cost model of Section 5.3 is measurable.
#ifndef OSUM_RELATIONAL_DATABASE_H_
#define OSUM_RELATIONAL_DATABASE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/foreign_key.h"
#include "relational/relation.h"
#include "util/stats.h"

namespace osum::rel {

/// Per-foreign-key cardinality statistics, used by the affinity metrics
/// (Eq. 1's connectivity/cardinality terms).
struct FkStats {
  double avg_fanout = 0.0;  // average children per referenced parent tuple
  uint64_t max_fanout = 0;
  uint64_t child_count = 0;  // non-NULL references
};

/// A database: a catalog of relations plus declared foreign keys and their
/// join indexes.
///
/// Lifecycle: AddRelation/AddForeignKey + Relation::Append, then
/// BuildIndexes() once loading is complete. After global importance scores
/// are annotated (Relation::SetImportance), call SortIndexesByImportance()
/// so the TOP-l access path (Avoidance Condition 2) can stream children in
/// descending importance order, as a DBMS would via an index on the
/// importance attribute.
class Database {
 public:
  Database() = default;

  // Not copyable (owns large storage); movable.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Registers a relation; returns its id.
  RelationId AddRelation(std::string name, Schema schema,
                         bool is_junction = false);

  /// Declares that `child.child_col` references `parent`'s primary key.
  ForeignKeyId AddForeignKey(std::string name, RelationId child,
                             ColumnId child_col, RelationId parent);

  size_t num_relations() const { return relations_.size(); }
  size_t num_foreign_keys() const { return fks_.size(); }

  Relation& relation(RelationId id) { return *relations_[id]; }
  const Relation& relation(RelationId id) const { return *relations_[id]; }

  /// By-name lookup; aborts if missing (loader bugs fail fast).
  RelationId GetRelationId(const std::string& name) const;
  Relation& GetRelation(const std::string& name);
  const Relation& GetRelation(const std::string& name) const;

  const ForeignKey& foreign_key(ForeignKeyId id) const { return fks_[id]; }
  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }

  /// Foreign keys incident to a relation (as child or as parent).
  const std::vector<ForeignKeyId>& FksOfChild(RelationId r) const {
    return fks_of_child_[r];
  }
  const std::vector<ForeignKeyId>& FksOfParent(RelationId r) const {
    return fks_of_parent_[r];
  }

  /// Total number of tuples across all relations.
  uint64_t TotalTuples() const;

  /// Builds the FK join indexes. Must be called after loading and before
  /// any access-path call.
  void BuildIndexes();
  bool indexes_built() const { return indexes_built_; }

  /// Re-orders each forward index's posting lists by descending tuple
  /// importance. Requires importance annotations on all child relations.
  void SortIndexesByImportance();

  /// Cardinality statistics for a foreign key (after BuildIndexes).
  FkStats GetFkStats(ForeignKeyId fk) const;

  // --- Access paths (the engine's "SQL"). Each call counts as one logical
  // --- SELECT statement in IoStats, mirroring one JDBC round-trip.

  /// SELECT * FROM child WHERE child.fk = parent_tuple
  /// (forward 1:M join; Algorithm 5 line 6 / Algorithm 4 line 12).
  std::span<const TupleId> Children(ForeignKeyId fk, TupleId parent_tuple) const;

  /// SELECT * TOP `limit` FROM child WHERE child.fk = parent_tuple
  ///   AND importance > min_importance ORDER BY importance DESC
  /// (Algorithm 4 line 10, Avoidance Condition 2). Requires
  /// SortIndexesByImportance(). Note: this still costs one SELECT even when
  /// it returns nothing — the Section 5.3 cost caveat.
  std::vector<TupleId> ChildrenTopImportance(ForeignKeyId fk,
                                             TupleId parent_tuple,
                                             size_t limit,
                                             double min_importance) const;

  /// SELECT parent FROM child WHERE child.id = t (M:1 navigation).
  /// Returns nullopt for NULL references.
  std::optional<TupleId> Parent(ForeignKeyId fk, TupleId child_tuple) const;

  /// Mutable I/O accounting (reset before a measured region; read after).
  /// Atomic so concurrent queries over a shared database may race only on
  /// accounting, never on data: all access paths are const and read-only
  /// once BuildIndexes()/SortIndexesByImportance() have run.
  util::AtomicIoStats& io_stats() const { return io_stats_; }

 private:
  struct JoinIndex {
    // postings[p] = children tuple ids whose FK references parent tuple p.
    std::vector<std::vector<TupleId>> postings;
  };

  std::vector<std::unique_ptr<Relation>> relations_;
  std::unordered_map<std::string, RelationId> relations_by_name_;
  std::vector<ForeignKey> fks_;
  std::vector<std::vector<ForeignKeyId>> fks_of_child_;
  std::vector<std::vector<ForeignKeyId>> fks_of_parent_;
  std::vector<JoinIndex> indexes_;
  bool indexes_built_ = false;
  bool indexes_sorted_ = false;
  mutable util::AtomicIoStats io_stats_;
};

}  // namespace osum::rel

#endif  // OSUM_RELATIONAL_DATABASE_H_
