// The tuple-level data graph: one node per entity tuple, one edge per
// foreign-key pair / junction tuple.
//
// This is the in-memory index of the paper's Section 6.3: "our data-graph
// nodes correspond to the database tuples and edges to tuple relationships
// (through their primary and foreign keys). The data-graph is only an index
// and does not contain actual data as nodes capture only keys and global
// importance." It serves two masters:
//   * ObjectRank / ValueRank power iteration (src/importance), and
//   * the fast OS-generation back end (src/core), which the paper showed is
//     ~65x faster than issuing SQL per join (0.2s vs 12.9s for Supplier).
#ifndef OSUM_GRAPH_DATA_GRAPH_H_
#define OSUM_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/link_types.h"
#include "relational/database.h"

namespace osum::graph {

/// Global node id across all entity relations.
using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Compressed adjacency of the whole database, grouped by (link type,
/// direction). Junction relations are collapsed into edges.
class DataGraph {
 public:
  /// Builds the graph by scanning every FK column once. O(total tuples).
  static DataGraph Build(const rel::Database& db, const LinkSchema& links);

  size_t num_nodes() const { return static_cast<size_t>(num_nodes_); }
  size_t num_edges() const { return num_edges_; }

  /// Node numbering. Only entity (non-junction) relations have nodes.
  NodeId node(rel::RelationId r, rel::TupleId t) const {
    return rel_offset_[r] + t;
  }
  rel::RelationId RelationOf(NodeId n) const { return rel_of_node_[n]; }
  rel::TupleId TupleOf(NodeId n) const {
    return n - rel_offset_[rel_of_node_[n]];
  }

  /// Neighbors of `n` along link `lt` in direction `dir`. `n` must belong
  /// to the source relation of that (lt, dir) pair (link.a for kForward,
  /// link.b for kBackward); returns an empty span otherwise.
  std::span<const NodeId> Neighbors(NodeId n, LinkTypeId lt,
                                    rel::FkDirection dir) const;

  /// Out-degree of `n` along (lt, dir); 0 if n is not on the source side.
  size_t Degree(NodeId n, LinkTypeId lt, rel::FkDirection dir) const {
    return Neighbors(n, lt, dir).size();
  }

  /// Global importance of a node (reads the relation annotation).
  double Importance(const rel::Database& db, NodeId n) const {
    return db.relation(RelationOf(n)).importance(TupleOf(n));
  }

  /// Re-orders every adjacency list by descending neighbor importance
  /// (deterministic tie-break on node id). Needed by the data-graph back
  /// end of Avoidance Condition 2; call after importance annotation.
  void SortNeighborsByImportance(const rel::Database& db);
  bool neighbors_sorted() const { return sorted_; }

  /// Approximate resident size, for the Section 6.3 data-graph size report.
  uint64_t ApproxMemoryBytes() const;

 private:
  // One CSR per (link, direction). Source tuples are rows of the source
  // relation; targets are global NodeIds.
  struct Csr {
    rel::RelationId source_rel = 0;
    std::vector<uint32_t> offsets;  // size = source tuples + 1
    std::vector<NodeId> targets;
  };

  const Csr& csr(LinkTypeId lt, rel::FkDirection dir) const {
    return dir == rel::FkDirection::kForward ? forward_[lt] : backward_[lt];
  }

  NodeId num_nodes_ = 0;
  size_t num_edges_ = 0;
  bool sorted_ = false;
  std::vector<NodeId> rel_offset_;          // per relation (junction: unused)
  std::vector<rel::RelationId> rel_of_node_;
  std::vector<Csr> forward_;
  std::vector<Csr> backward_;
};

}  // namespace osum::graph

#endif  // OSUM_GRAPH_DATA_GRAPH_H_
