// Link types: the logical relationship edges of the database schema.
//
// The paper's machinery (G_DS treealization, authority transfer graphs,
// data-graph traversal) reasons about *relationships between entity
// relations* — Paper-Author, Paper-cites-Paper — not about the physical
// junction tables that encode M:N relationships. A LinkType is that logical
// edge: either a direct foreign key between two entity relations, or an M:N
// relationship realized through a junction relation (a relation flagged
// is_junction with exactly two foreign keys). Junction tuples never appear
// as data-graph nodes or OS nodes, which matches the paper's DBLP G_DS
// where Co-Author is a direct child of Paper.
#ifndef OSUM_GRAPH_LINK_TYPES_H_
#define OSUM_GRAPH_LINK_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/database.h"

namespace osum::graph {

/// Index of a link type within a LinkSchema.
using LinkTypeId = uint32_t;

/// A logical schema edge between entity relations `a` and `b`.
///
/// Orientation convention:
///  - direct FK link: `a` is the referenced (parent / "1") side, `b` the
///    referencing (child / "M") side; traversing kForward goes a -> b
///    (fan-out), kBackward goes b -> a (at most one).
///  - junction link: `a` = parent of fk_a, `b` = parent of fk_b; kForward
///    goes a -> b through the junction, kBackward goes b -> a. For a
///    self-relationship such as Cites (a = b = Paper, fk_a = citing side,
///    fk_b = cited side) kForward is "cites" and kBackward is "cited by".
struct LinkType {
  LinkTypeId id = 0;
  std::string name;
  rel::RelationId a = 0;
  rel::RelationId b = 0;
  bool via_junction = false;
  /// Direct link: the FK (child = b references parent = a). Junction link:
  /// fk_a references `a`, fk_b references `b`; both FKs are on `junction`.
  rel::ForeignKeyId fk_a = 0;
  rel::ForeignKeyId fk_b = 0;
  rel::RelationId junction = 0;  // meaningful iff via_junction
};

/// Names one traversal role of a link ("cites" / "cited_by", "writes" /
/// "written_by"). Used to label replicated G_DS nodes.
std::string RoleName(const LinkType& lt, rel::FkDirection dir);

/// The set of logical links derived from a database's foreign keys.
class LinkSchema {
 public:
  /// Derives link types from `db`: every FK whose endpoints are both entity
  /// relations becomes a direct link; every junction relation (exactly two
  /// FKs, flagged is_junction) becomes one M:N link. FKs that merely attach
  /// a junction to its endpoints are consumed by the junction link.
  /// Junction relations with a FK count other than two are a schema error.
  static LinkSchema Build(const rel::Database& db);

  size_t num_links() const { return links_.size(); }
  const LinkType& link(LinkTypeId id) const { return links_[id]; }
  const std::vector<LinkType>& links() const { return links_; }

  /// Links incident to relation `r` (as either endpoint). A self link
  /// (a == b == r) appears once.
  const std::vector<LinkTypeId>& LinksOf(rel::RelationId r) const {
    return links_of_[r];
  }

  /// Lookup by name; aborts if absent (used when wiring G_A presets).
  LinkTypeId GetLink(const std::string& name) const;

  /// Endpoint of `lt` on the far side when standing at `from_side_a`.
  static rel::RelationId OtherEnd(const LinkType& lt, bool from_side_a) {
    return from_side_a ? lt.b : lt.a;
  }

 private:
  std::vector<LinkType> links_;
  std::vector<std::vector<LinkTypeId>> links_of_;
};

}  // namespace osum::graph

#endif  // OSUM_GRAPH_LINK_TYPES_H_
