#include "graph/data_graph.h"

#include <algorithm>
#include <cassert>

namespace osum::graph {

namespace {

// Builds a CSR from (source tuple, target node) pairs via counting sort.
void BuildCsr(size_t source_tuples,
              const std::vector<std::pair<rel::TupleId, NodeId>>& edges,
              std::vector<uint32_t>* offsets, std::vector<NodeId>* targets) {
  offsets->assign(source_tuples + 1, 0);
  for (const auto& [s, t] : edges) (*offsets)[s + 1]++;
  for (size_t i = 1; i <= source_tuples; ++i) (*offsets)[i] += (*offsets)[i - 1];
  targets->resize(edges.size());
  std::vector<uint32_t> cursor(offsets->begin(), offsets->end() - 1);
  for (const auto& [s, t] : edges) (*targets)[cursor[s]++] = t;
}

}  // namespace

DataGraph DataGraph::Build(const rel::Database& db, const LinkSchema& links) {
  DataGraph g;
  g.rel_offset_.assign(db.num_relations(), 0);

  NodeId next = 0;
  for (rel::RelationId r = 0; r < db.num_relations(); ++r) {
    const rel::Relation& rel = db.relation(r);
    if (rel.is_junction()) {
      g.rel_offset_[r] = kInvalidNode;
      continue;
    }
    g.rel_offset_[r] = next;
    next += static_cast<NodeId>(rel.num_tuples());
  }
  g.num_nodes_ = next;
  g.rel_of_node_.resize(next);
  for (rel::RelationId r = 0; r < db.num_relations(); ++r) {
    const rel::Relation& rel = db.relation(r);
    if (rel.is_junction()) continue;
    for (rel::TupleId t = 0; t < rel.num_tuples(); ++t) {
      g.rel_of_node_[g.rel_offset_[r] + t] = r;
    }
  }

  g.forward_.resize(links.num_links());
  g.backward_.resize(links.num_links());

  for (const LinkType& lt : links.links()) {
    std::vector<std::pair<rel::TupleId, NodeId>> fwd_edges;  // a-tuple -> b-node
    std::vector<std::pair<rel::TupleId, NodeId>> bwd_edges;  // b-tuple -> a-node

    if (!lt.via_junction) {
      const rel::ForeignKey& fk = db.foreign_key(lt.fk_a);
      const rel::Relation& child = db.relation(fk.child);  // = lt.b
      for (rel::TupleId c = 0; c < child.num_tuples(); ++c) {
        const rel::Value& v = child.value(c, fk.child_col);
        if (rel::TypeOf(v) == rel::ValueType::kNull) continue;
        rel::TupleId p = static_cast<rel::TupleId>(std::get<int64_t>(v));
        fwd_edges.emplace_back(p, g.node(lt.b, c));
        bwd_edges.emplace_back(c, g.node(lt.a, p));
      }
    } else {
      const rel::ForeignKey& fa = db.foreign_key(lt.fk_a);
      const rel::ForeignKey& fb = db.foreign_key(lt.fk_b);
      const rel::Relation& junction = db.relation(lt.junction);
      for (rel::TupleId j = 0; j < junction.num_tuples(); ++j) {
        const rel::Value& va = junction.value(j, fa.child_col);
        const rel::Value& vb = junction.value(j, fb.child_col);
        if (rel::TypeOf(va) == rel::ValueType::kNull ||
            rel::TypeOf(vb) == rel::ValueType::kNull) {
          continue;
        }
        rel::TupleId ta = static_cast<rel::TupleId>(std::get<int64_t>(va));
        rel::TupleId tb = static_cast<rel::TupleId>(std::get<int64_t>(vb));
        fwd_edges.emplace_back(ta, g.node(lt.b, tb));
        bwd_edges.emplace_back(tb, g.node(lt.a, ta));
      }
    }

    Csr& fwd = g.forward_[lt.id];
    fwd.source_rel = lt.a;
    BuildCsr(db.relation(lt.a).num_tuples(), fwd_edges, &fwd.offsets,
             &fwd.targets);
    Csr& bwd = g.backward_[lt.id];
    bwd.source_rel = lt.b;
    BuildCsr(db.relation(lt.b).num_tuples(), bwd_edges, &bwd.offsets,
             &bwd.targets);
    g.num_edges_ += fwd_edges.size();
  }
  return g;
}

std::span<const NodeId> DataGraph::Neighbors(NodeId n, LinkTypeId lt,
                                             rel::FkDirection dir) const {
  const Csr& c = csr(lt, dir);
  if (rel_of_node_[n] != c.source_rel) return {};
  rel::TupleId t = TupleOf(n);
  uint32_t begin = c.offsets[t];
  uint32_t end = c.offsets[t + 1];
  return {c.targets.data() + begin, end - begin};
}

void DataGraph::SortNeighborsByImportance(const rel::Database& db) {
  auto sort_csr = [&](Csr& c) {
    size_t rows = c.offsets.size() - 1;
    for (size_t row = 0; row < rows; ++row) {
      auto begin = c.targets.begin() + c.offsets[row];
      auto end = c.targets.begin() + c.offsets[row + 1];
      std::sort(begin, end, [&](NodeId x, NodeId y) {
        double ix = Importance(db, x);
        double iy = Importance(db, y);
        if (ix != iy) return ix > iy;
        return x < y;
      });
    }
  };
  for (auto& c : forward_) sort_csr(c);
  for (auto& c : backward_) sort_csr(c);
  sorted_ = true;
}

uint64_t DataGraph::ApproxMemoryBytes() const {
  uint64_t bytes = rel_of_node_.size() * sizeof(rel::RelationId) +
                   rel_offset_.size() * sizeof(NodeId);
  for (const auto& c : forward_) {
    bytes += c.offsets.size() * sizeof(uint32_t) +
             c.targets.size() * sizeof(NodeId);
  }
  for (const auto& c : backward_) {
    bytes += c.offsets.size() * sizeof(uint32_t) +
             c.targets.size() * sizeof(NodeId);
  }
  return bytes;
}

}  // namespace osum::graph
