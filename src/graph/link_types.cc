#include "graph/link_types.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace osum::graph {

std::string RoleName(const LinkType& lt, rel::FkDirection dir) {
  if (!lt.via_junction && lt.a == lt.b) {
    // Self FK (e.g. Employee.manager_id). Disambiguate by direction.
    return lt.name + (dir == rel::FkDirection::kForward ? "_children"
                                                        : "_parent");
  }
  if (lt.via_junction && lt.a == lt.b) {
    // Self M:N (Cites): forward follows fk_a -> fk_b ("cites"), backward the
    // reverse ("cited_by").
    return lt.name + (dir == rel::FkDirection::kForward ? "" : "_by");
  }
  return lt.name;
}

LinkSchema LinkSchema::Build(const rel::Database& db) {
  LinkSchema schema;
  schema.links_of_.resize(db.num_relations());

  // FKs attached to junction relations are consumed below.
  std::vector<bool> fk_consumed(db.num_foreign_keys(), false);

  for (rel::RelationId r = 0; r < db.num_relations(); ++r) {
    const rel::Relation& rel = db.relation(r);
    if (!rel.is_junction()) continue;
    const auto& fks = db.FksOfChild(r);
    if (fks.size() != 2) {
      std::fprintf(stderr,
                   "LinkSchema: junction relation '%s' must have exactly two "
                   "foreign keys, found %zu\n",
                   rel.name().c_str(), fks.size());
      std::abort();
    }
    const rel::ForeignKey& fa = db.foreign_key(fks[0]);
    const rel::ForeignKey& fb = db.foreign_key(fks[1]);
    assert(!db.relation(fa.parent).is_junction());
    assert(!db.relation(fb.parent).is_junction());
    LinkType lt;
    lt.id = static_cast<LinkTypeId>(schema.links_.size());
    lt.name = rel.name();
    lt.a = fa.parent;
    lt.b = fb.parent;
    lt.via_junction = true;
    lt.fk_a = fa.id;
    lt.fk_b = fb.id;
    lt.junction = r;
    fk_consumed[fa.id] = true;
    fk_consumed[fb.id] = true;
    schema.links_.push_back(lt);
  }

  for (const rel::ForeignKey& fk : db.foreign_keys()) {
    if (fk_consumed[fk.id]) continue;
    if (db.relation(fk.child).is_junction() ||
        db.relation(fk.parent).is_junction()) {
      std::fprintf(stderr,
                   "LinkSchema: foreign key '%s' touches a junction relation "
                   "but was not consumed by a junction link\n",
                   fk.name.c_str());
      std::abort();
    }
    LinkType lt;
    lt.id = static_cast<LinkTypeId>(schema.links_.size());
    lt.name = fk.name;
    lt.a = fk.parent;
    lt.b = fk.child;
    lt.via_junction = false;
    lt.fk_a = fk.id;
    lt.fk_b = fk.id;
    schema.links_.push_back(lt);
  }

  for (const LinkType& lt : schema.links_) {
    schema.links_of_[lt.a].push_back(lt.id);
    if (lt.b != lt.a) schema.links_of_[lt.b].push_back(lt.id);
  }
  return schema;
}

LinkTypeId LinkSchema::GetLink(const std::string& name) const {
  for (const LinkType& lt : links_) {
    if (lt.name == name) return lt.id;
  }
  std::fprintf(stderr, "LinkSchema: no link named '%s'\n", name.c_str());
  std::abort();
}

}  // namespace osum::graph
