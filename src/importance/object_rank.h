// Global ObjectRank / ValueRank: power iteration over the data graph.
//
// Computes the *global* ObjectRank of every tuple (the query-independent
// variant the paper uses for Im(t_i), Section 2.2/3.2): the stationary
// distribution of a random surfer that with probability d follows an
// authority-transfer edge and with probability 1-d teleports to the base
// vector. ValueRank reuses the same iteration with value-aware splitting
// and a value-biased base vector (see AuthorityGraph).
#ifndef OSUM_IMPORTANCE_OBJECT_RANK_H_
#define OSUM_IMPORTANCE_OBJECT_RANK_H_

#include <vector>

#include "graph/data_graph.h"
#include "importance/authority_graph.h"

namespace osum::importance {

/// Power-iteration parameters.
struct ObjectRankOptions {
  /// Damping factor d. The paper evaluates d1=0.85 (default), d2=0.10,
  /// d3=0.99.
  double damping = 0.85;
  /// Convergence threshold on the L1 delta between iterations.
  double epsilon = 1e-8;
  /// Iteration cap (authority graphs with total out-rate > 1 on a cycle
  /// could diverge; the cap keeps the computation bounded either way).
  int max_iterations = 60;
  /// Final scores are rescaled so the mean score is `mean_scale`. Scores in
  /// the paper's figures are O(1)..O(10); scaling is cosmetic — every size-l
  /// algorithm is scale-invariant.
  double mean_scale = 10.0;
};

/// Result of a ranking run.
struct ObjectRankResult {
  /// Scores indexed by DataGraph NodeId.
  std::vector<double> scores;
  int iterations = 0;
  double final_delta = 0.0;
};

/// Runs global ObjectRank / ValueRank.
ObjectRankResult ComputeObjectRank(const rel::Database& db,
                                   const graph::LinkSchema& links,
                                   const graph::DataGraph& graph,
                                   const AuthorityGraph& authority,
                                   const ObjectRankOptions& options = {});

/// Copies node scores into per-relation importance annotations
/// (Relation::SetImportance) for all entity relations.
void AnnotateImportance(rel::Database* db, const graph::DataGraph& graph,
                        const std::vector<double>& scores);

/// Convenience: rank then annotate then sort all access paths by importance
/// (Database::SortIndexesByImportance + DataGraph::SortNeighborsByImportance).
ObjectRankResult RankAndAnnotate(rel::Database* db,
                                 const graph::LinkSchema& links,
                                 graph::DataGraph* graph,
                                 const AuthorityGraph& authority,
                                 const ObjectRankOptions& options = {});

}  // namespace osum::importance

#endif  // OSUM_IMPORTANCE_OBJECT_RANK_H_
