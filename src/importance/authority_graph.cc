#include "importance/authority_graph.h"

namespace osum::importance {

void AuthorityGraph::SetRate(graph::LinkTypeId lt, rel::FkDirection dir,
                             TransferRate r) {
  (dir == rel::FkDirection::kForward ? forward_[lt] : backward_[lt]) = r;
}

void AuthorityGraph::SetRate(const graph::LinkSchema& links,
                             const std::string& link_name,
                             rel::FkDirection dir, TransferRate r) {
  SetRate(links.GetLink(link_name), dir, r);
}

void AuthorityGraph::SetBaseValueBias(rel::RelationId r,
                                      rel::ColumnId value_col, double weight) {
  base_biases_.push_back(BaseBias{r, value_col, weight});
}

bool AuthorityGraph::uses_values() const {
  if (!base_biases_.empty()) return true;
  for (const auto& t : forward_) {
    if (t.value_col.has_value()) return true;
  }
  for (const auto& t : backward_) {
    if (t.value_col.has_value()) return true;
  }
  return false;
}

}  // namespace osum::importance
