#include "importance/object_rank.h"

#include <cassert>
#include <cmath>

namespace osum::importance {

namespace {

// Per-relation normalizer for f(value): value / max(value), clamped to >= 0.
struct ValueNormalizer {
  const rel::Relation* relation = nullptr;
  rel::ColumnId col = 0;
  double max_value = 0.0;

  ValueNormalizer(const rel::Relation& r, rel::ColumnId c)
      : relation(&r), col(c) {
    for (rel::TupleId t = 0; t < r.num_tuples(); ++t) {
      max_value = std::max(max_value, r.NumericValue(t, c));
    }
  }

  double operator()(rel::TupleId t) const {
    if (max_value <= 0.0) return 0.0;
    double v = relation->NumericValue(t, col);
    return v > 0.0 ? v / max_value : 0.0;
  }
};

}  // namespace

ObjectRankResult ComputeObjectRank(const rel::Database& db,
                                   const graph::LinkSchema& links,
                                   const graph::DataGraph& graph,
                                   const AuthorityGraph& authority,
                                   const ObjectRankOptions& options) {
  const size_t n = graph.num_nodes();
  ObjectRankResult result;
  result.scores.assign(n, 0.0);
  if (n == 0) return result;

  // --- Base (teleport) vector, optionally value-biased (ValueRank).
  std::vector<double> base(n, 1.0);
  for (const auto& bias : authority.base_biases()) {
    const rel::Relation& r = db.relation(bias.relation);
    ValueNormalizer f(r, bias.value_col);
    for (rel::TupleId t = 0; t < r.num_tuples(); ++t) {
      base[graph.node(bias.relation, t)] =
          (1.0 - bias.weight) + bias.weight * f(t);
    }
  }
  double base_sum = 0.0;
  for (double b : base) base_sum += b;
  for (double& b : base) b /= base_sum;

  // Precompute value normalizers for value-splitting edges (ValueRank).
  std::vector<std::optional<ValueNormalizer>> fwd_norm(links.num_links());
  std::vector<std::optional<ValueNormalizer>> bwd_norm(links.num_links());
  for (const graph::LinkType& lt : links.links()) {
    const TransferRate& ft = authority.rate(lt.id, rel::FkDirection::kForward);
    if (ft.value_col.has_value()) {
      fwd_norm[lt.id].emplace(db.relation(lt.b), *ft.value_col);
    }
    const TransferRate& bt =
        authority.rate(lt.id, rel::FkDirection::kBackward);
    if (bt.value_col.has_value()) {
      bwd_norm[lt.id].emplace(db.relation(lt.a), *bt.value_col);
    }
  }

  std::vector<double> current(base);  // start from the base distribution
  std::vector<double> next(n, 0.0);

  const double d = options.damping;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (size_t i = 0; i < n; ++i) next[i] = (1.0 - d) * base[i];

    for (const graph::LinkType& lt : links.links()) {
      for (rel::FkDirection dir :
           {rel::FkDirection::kForward, rel::FkDirection::kBackward}) {
        const TransferRate& tr = authority.rate(lt.id, dir);
        if (tr.rate <= 0.0) continue;
        rel::RelationId src_rel =
            dir == rel::FkDirection::kForward ? lt.a : lt.b;
        const rel::Relation& src = db.relation(src_rel);

        // Optional value-proportional splitting (precomputed normalizer).
        const std::optional<ValueNormalizer>& f =
            dir == rel::FkDirection::kForward ? fwd_norm[lt.id]
                                              : bwd_norm[lt.id];

        for (rel::TupleId s = 0; s < src.num_tuples(); ++s) {
          graph::NodeId sn = graph.node(src_rel, s);
          auto targets = graph.Neighbors(sn, lt.id, dir);
          if (targets.empty()) continue;
          double mass = d * tr.rate * current[sn];
          if (mass <= 0.0) continue;
          if (!f.has_value()) {
            double share = mass / static_cast<double>(targets.size());
            for (graph::NodeId t : targets) next[t] += share;
          } else {
            double total = 0.0;
            for (graph::NodeId t : targets) total += (*f)(graph.TupleOf(t));
            if (total <= 0.0) {
              double share = mass / static_cast<double>(targets.size());
              for (graph::NodeId t : targets) next[t] += share;
            } else {
              for (graph::NodeId t : targets) {
                next[t] += mass * (*f)(graph.TupleOf(t)) / total;
              }
            }
          }
        }
      }
    }

    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) delta += std::abs(next[i] - current[i]);
    current.swap(next);
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (delta < options.epsilon) break;
  }

  // Rescale so the mean score equals options.mean_scale.
  double sum = 0.0;
  for (double v : current) sum += v;
  double scale =
      sum > 0.0 ? options.mean_scale * static_cast<double>(n) / sum : 1.0;
  for (double& v : current) v *= scale;
  result.scores = std::move(current);
  return result;
}

void AnnotateImportance(rel::Database* db, const graph::DataGraph& graph,
                        const std::vector<double>& scores) {
  assert(scores.size() == graph.num_nodes());
  for (rel::RelationId r = 0; r < db->num_relations(); ++r) {
    rel::Relation& rel = db->relation(r);
    if (rel.is_junction()) continue;
    std::vector<double> imp(rel.num_tuples());
    for (rel::TupleId t = 0; t < rel.num_tuples(); ++t) {
      imp[t] = scores[graph.node(r, t)];
    }
    rel.SetImportance(std::move(imp));
  }
}

ObjectRankResult RankAndAnnotate(rel::Database* db,
                                 const graph::LinkSchema& links,
                                 graph::DataGraph* graph,
                                 const AuthorityGraph& authority,
                                 const ObjectRankOptions& options) {
  ObjectRankResult result =
      ComputeObjectRank(*db, links, *graph, authority, options);
  AnnotateImportance(db, *graph, result.scores);
  // Junction relations never carry scores; give them zero annotations so
  // the access-path sorting precondition (importance on all children) holds.
  for (rel::RelationId r = 0; r < db->num_relations(); ++r) {
    rel::Relation& rel = db->relation(r);
    if (rel.is_junction()) {
      rel.SetImportance(std::vector<double>(rel.num_tuples(), 0.0));
    }
  }
  db->SortIndexesByImportance();
  graph->SortNeighborsByImportance(*db);
  return result;
}

}  // namespace osum::importance
