// Authority Transfer Schema Graph (G_A) — ObjectRank's control surface.
//
// ObjectRank [Balmin et al., VLDB'04] observes that mapping a database to a
// plain graph mis-models authority flow: a paper citing many papers should
// not gain authority from doing so, while being cited should confer it.
// G_A annotates every directed schema edge with an authority transfer rate
// α(e); the per-tuple transfer is α(e) split among the edge instances.
//
// ValueRank [Fakas & Cai, DBRank'09] extends this to databases without
// citation-like semantics (e.g. TPC-H) by letting tuple *values* steer the
// flow: a $100 order should channel more authority than a $10 one. We model
// that with two knobs (see TransferRate): value-proportional splitting
// among siblings and a value-scaled share of the random-surfer base vector.
#ifndef OSUM_IMPORTANCE_AUTHORITY_GRAPH_H_
#define OSUM_IMPORTANCE_AUTHORITY_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/link_types.h"
#include "relational/database.h"

namespace osum::importance {

/// How authority flows along one directed logical edge (link, direction).
struct TransferRate {
  /// α(e): the fraction of a tuple's authority pushed along this edge type
  /// each iteration (before splitting among instances).
  double rate = 0.0;
  /// If set, the split among target tuples is proportional to
  /// f(target.value_col) instead of uniform — ValueRank's "0.5*f(TotalPrice)"
  /// style edges (Figure 13b). The column must be numeric and belong to the
  /// *target* relation of this directed edge.
  std::optional<rel::ColumnId> value_col;
};

/// The G_A: transfer rates for both directions of every link type, plus the
/// ValueRank base-vector configuration.
class AuthorityGraph {
 public:
  explicit AuthorityGraph(size_t num_links)
      : forward_(num_links), backward_(num_links) {}

  /// Sets the rate of (lt, dir).
  void SetRate(graph::LinkTypeId lt, rel::FkDirection dir, TransferRate r);

  /// Convenience for presets: uses link name lookup.
  void SetRate(const graph::LinkSchema& links, const std::string& link_name,
               rel::FkDirection dir, TransferRate r);

  const TransferRate& rate(graph::LinkTypeId lt, rel::FkDirection dir) const {
    return dir == rel::FkDirection::kForward ? forward_[lt] : backward_[lt];
  }

  /// ValueRank: blend the random-surfer base vector with per-tuple values.
  /// A relation registered here contributes base mass proportional to
  /// (1 - weight) + weight * f(value_col) instead of uniformly. f is the
  /// relation-local normalization value / max(value).
  void SetBaseValueBias(rel::RelationId r, rel::ColumnId value_col,
                        double weight);

  struct BaseBias {
    rel::RelationId relation;
    rel::ColumnId value_col;
    double weight;
  };
  const std::vector<BaseBias>& base_biases() const { return base_biases_; }

  /// True if any ValueRank feature (value splitting or base bias) is used.
  bool uses_values() const;

 private:
  std::vector<TransferRate> forward_;
  std::vector<TransferRate> backward_;
  std::vector<BaseBias> base_biases_;
};

}  // namespace osum::importance

#endif  // OSUM_IMPORTANCE_AUTHORITY_GRAPH_H_
