// The size-l OS algorithms (Problem 1: find a connected, root-containing
// l-node subtree of an OS with maximum total local importance).
//
//  * SizeLDp          — exact optimum via bottom-up tree-knapsack merging
//                       (Algorithm 1's recurrence; polynomial realization).
//  * SizeLDpEnumerate — the paper's literal DP: at every node, enumerate
//                       *all combinations* of children and node counts
//                       (exponential in l; kept for fidelity + ablation).
//  * SizeLBottomUp    — Algorithm 2: iteratively prune the cheapest leaf
//                       (O(n log n); optimal under monotonicity, Lemma 2).
//  * SizeLTopPath     — Algorithm 3: repeatedly graft the path with the
//                       highest average importance per tuple AI(p_i).
//  * SizeLTopPathMemo — Algorithm 3 with the paper's s(v) optimization
//                       (per-subtree best candidates kept in a heap);
//                       returns identical selections, faster updates.
//  * SizeLBruteForce  — exhaustive connected-subtree enumeration (oracle
//                       for property tests; only viable for tiny OSs).
//
// All functions return selections that satisfy Definition 1 and pick
// min(l, |OS|) nodes. Results are deterministic: ties are broken on node
// ids.
#ifndef OSUM_CORE_SIZE_L_H_
#define OSUM_CORE_SIZE_L_H_

#include <cstdint>
#include <optional>

#include "core/arena.h"
#include "core/os_tree.h"

namespace osum::core {

/// Caller-owned scratch for the DP back ends (SizeLDp / SizeLDpEnumerate /
/// SizeLDpAll). Holds the bump arena that backs the flattened DP tables;
/// pass one scratch to a batch of calls and after warm-up every tree reuses
/// the same blocks, so the batch performs O(1) large allocations instead of
/// O(nodes) small ones. Not thread-safe — one scratch per worker thread,
/// one call at a time. Each call Reset()s the arena, so tables built
/// through a scratch are invalidated by the next call that uses it.
struct DpScratch {
  Arena arena;
};

/// Operation counters reported by the algorithms (used by the efficiency
/// benches to explain scaling behaviour).
struct SizeLStats {
  /// Algorithm-specific unit of work: DP cell merges, heap operations,
  /// path-update node touches, or enumeration steps.
  uint64_t operations = 0;
  /// True if the run aborted because it exceeded an operation budget
  /// (only SizeLDpEnumerate does this; mirrors the paper stopping DP runs
  /// after 30 minutes).
  bool aborted = false;
};

/// Exact optimum (Algorithm 1 semantics). O(n * l^2) worst case.
Selection SizeLDp(const OsTree& os, size_t l, SizeLStats* stats = nullptr);

/// SizeLDp against a reusable scratch: identical selection, but all table
/// storage comes from `scratch->arena` (reset on entry, reused across
/// calls).
Selection SizeLDp(const OsTree& os, size_t l, DpScratch* scratch,
                  SizeLStats* stats = nullptr);

/// The paper's literal combination-enumeration DP. Aborts (returns an
/// empty selection with stats->aborted = true) once `op_budget` elementary
/// steps are exceeded.
Selection SizeLDpEnumerate(const OsTree& os, size_t l, uint64_t op_budget,
                           SizeLStats* stats = nullptr);

/// SizeLDpEnumerate against a reusable scratch (same contract as the
/// SizeLDp scratch overload).
Selection SizeLDpEnumerate(const OsTree& os, size_t l, uint64_t op_budget,
                           DpScratch* scratch, SizeLStats* stats = nullptr);

/// Greedy Bottom-Up Pruning (Algorithm 2). O(n log n).
Selection SizeLBottomUp(const OsTree& os, size_t l,
                        SizeLStats* stats = nullptr);

/// Greedy Update Top-Path-l (Algorithm 3), plain O(n*l) variant.
Selection SizeLTopPath(const OsTree& os, size_t l,
                       SizeLStats* stats = nullptr);

/// Algorithm 3 with the s(v) subtree-best optimization (Section 5.2).
/// Produces the same selection as SizeLTopPath.
Selection SizeLTopPathMemo(const OsTree& os, size_t l,
                           SizeLStats* stats = nullptr);

/// Exhaustive oracle; enumerates every candidate size-l OS. Exponential —
/// use only with tiny trees (tests cap |OS| around 25).
Selection SizeLBruteForce(const OsTree& os, size_t l,
                          SizeLStats* stats = nullptr);

/// Identifier for benchmarking / dispatch.
enum class SizeLAlgorithm {
  kDp,
  kDpEnumerate,
  kBottomUp,
  kTopPath,
  kTopPathMemo,
  kBruteForce,
};

const char* AlgorithmName(SizeLAlgorithm a);

/// Uniform dispatch (enumerate uses a default budget of 200M steps).
Selection RunSizeL(SizeLAlgorithm a, const OsTree& os, size_t l,
                   SizeLStats* stats = nullptr);

/// RunSizeL with a reusable scratch. The DP back ends draw their tables
/// from it; the greedy algorithms ignore it (their per-call state is
/// already O(n) flat vectors).
Selection RunSizeL(SizeLAlgorithm a, const OsTree& os, size_t l,
                   DpScratch* scratch, SizeLStats* stats = nullptr);

}  // namespace osum::core

#endif  // OSUM_CORE_SIZE_L_H_
