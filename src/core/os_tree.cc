#include "core/os_tree.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_set>

namespace osum::core {

OsNodeId OsTree::AddRoot(gds::GdsNodeId gds_node, rel::RelationId relation,
                         rel::TupleId tuple, double local_importance) {
  assert(nodes_.empty());
  OsNode n;
  n.parent = kNoOsNode;
  n.gds_node = gds_node;
  n.relation = relation;
  n.tuple = tuple;
  n.local_importance = local_importance;
  n.depth = 0;
  nodes_.push_back(std::move(n));
  return kOsRoot;
}

OsNodeId OsTree::AddChild(OsNodeId parent, gds::GdsNodeId gds_node,
                          rel::RelationId relation, rel::TupleId tuple,
                          double local_importance) {
  assert(parent >= 0 && static_cast<size_t>(parent) < nodes_.size());
  OsNodeId id = static_cast<OsNodeId>(nodes_.size());
  OsNode n;
  n.parent = parent;
  n.gds_node = gds_node;
  n.relation = relation;
  n.tuple = tuple;
  n.local_importance = local_importance;
  n.depth = nodes_[parent].depth + 1;
  nodes_[parent].children.push_back(id);
  nodes_.push_back(std::move(n));
  return id;
}

double OsTree::TotalImportance() const {
  double sum = 0.0;
  for (const OsNode& n : nodes_) sum += n.local_importance;
  return sum;
}

int32_t OsTree::MaxDepth() const {
  int32_t d = 0;
  for (const OsNode& n : nodes_) d = std::max(d, n.depth);
  return d;
}

size_t OsTree::CountLeaves() const {
  size_t leaves = 0;
  for (const OsNode& n : nodes_) {
    if (n.children.empty()) ++leaves;
  }
  return leaves;
}

bool OsTree::IsMonotone() const {
  for (const OsNode& n : nodes_) {
    if (n.parent == kNoOsNode) continue;
    if (n.local_importance > nodes_[n.parent].local_importance) return false;
  }
  return true;
}

std::string OsTree::Render(const rel::Database& db, const gds::Gds& gds,
                           const std::vector<OsNodeId>* selection) const {
  std::unordered_set<OsNodeId> keep;
  if (selection != nullptr) keep.insert(selection->begin(), selection->end());
  auto selected = [&](OsNodeId id) {
    return selection == nullptr || keep.count(id) > 0;
  };

  std::string out;
  // DFS in child order so a node's subtree renders beneath it.
  std::vector<OsNodeId> stack;
  if (!nodes_.empty() && selected(kOsRoot)) stack.push_back(kOsRoot);
  while (!stack.empty()) {
    OsNodeId id = stack.back();
    stack.pop_back();
    const OsNode& n = nodes_[id];
    out += std::string(static_cast<size_t>(n.depth) * 2, '.');
    out += gds.node(n.gds_node).label;
    out += ": ";
    out += db.relation(n.relation).RenderValues(n.tuple);
    out += "\n";
    // Push children reversed to render them in insertion order.
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      if (selected(*it)) stack.push_back(*it);
    }
  }
  return out;
}

bool IsValidSelection(const OsTree& os, const Selection& sel, size_t l) {
  if (sel.nodes.size() != std::min(l, os.size())) return false;
  std::unordered_set<OsNodeId> in(sel.nodes.begin(), sel.nodes.end());
  if (in.size() != sel.nodes.size()) return false;  // duplicates
  if (in.count(kOsRoot) == 0) return false;         // must contain t_DS
  for (OsNodeId id : sel.nodes) {
    if (id < 0 || static_cast<size_t>(id) >= os.size()) return false;
    OsNodeId p = os.node(id).parent;
    if (p != kNoOsNode && in.count(p) == 0) return false;  // connectivity
  }
  return true;
}

double SelectionImportance(const OsTree& os,
                           const std::vector<OsNodeId>& nodes) {
  double sum = 0.0;
  for (OsNodeId id : nodes) sum += os.node(id).local_importance;
  return sum;
}

OsTree MaterializeSelection(const OsTree& os, const Selection& sel) {
  std::unordered_set<OsNodeId> keep(sel.nodes.begin(), sel.nodes.end());
  OsTree out;
  if (os.empty() || keep.count(kOsRoot) == 0) return out;

  std::vector<OsNodeId> remap(os.size(), kNoOsNode);
  const OsNode& root = os.node(kOsRoot);
  remap[kOsRoot] =
      out.AddRoot(root.gds_node, root.relation, root.tuple,
                  root.local_importance);
  // BFS so parents are materialized before children.
  std::deque<OsNodeId> queue{kOsRoot};
  while (!queue.empty()) {
    OsNodeId id = queue.front();
    queue.pop_front();
    for (OsNodeId c : os.node(id).children) {
      if (keep.count(c) == 0) continue;
      const OsNode& n = os.node(c);
      remap[c] = out.AddChild(remap[id], n.gds_node, n.relation, n.tuple,
                              n.local_importance);
      queue.push_back(c);
    }
  }
  return out;
}

}  // namespace osum::core
