// Budget-driven selection of l — the paper's Section 7 future work:
//
//   "the selection of an appropriate value for l is an interesting
//    problem; a natural approach is to select l based on the amount of
//    attributes or words it will result, e.g. 20 attributes or 50 words."
//
// A size-l OS's rendered footprint depends on *which* tuples are picked
// (papers have long titles, years are one token), so the problem is not
// just inverting a formula: we search over l, running the chosen size-l
// algorithm per probe, for the largest synopsis whose rendered cost fits
// the budget. Costs are monotone in l for a fixed algorithm only
// approximately (different l can select different tuples), so the search
// walks down from the first overshoot to guarantee a fitting result.
#ifndef OSUM_CORE_WORD_BUDGET_H_
#define OSUM_CORE_WORD_BUDGET_H_

#include <cstdint>

#include "core/os_tree.h"
#include "core/size_l.h"
#include "gds/gds.h"

namespace osum::core {

/// What to count against the budget.
enum class BudgetUnit {
  kWords,       // whitespace-delimited tokens of the rendered values
  kAttributes,  // displayed attribute values
};

/// Per-node rendered cost of `os` under `unit`.
std::vector<uint32_t> NodeBudgetCosts(const rel::Database& db,
                                      const OsTree& os, BudgetUnit unit);

/// Result of a budgeted selection.
struct BudgetedSelection {
  Selection selection;
  size_t l = 0;        // the l that was chosen
  uint64_t cost = 0;   // rendered cost of the selection
};

/// Finds the largest l whose size-l OS (computed by `algorithm`) fits
/// within `budget` units, and returns that selection. If even l=1 (the
/// root alone) exceeds the budget, returns the root anyway — a synopsis
/// is never empty (`cost` then reports the overshoot).
BudgetedSelection SizeLByBudget(const rel::Database& db, const OsTree& os,
                                uint64_t budget, BudgetUnit unit,
                                SizeLAlgorithm algorithm);

}  // namespace osum::core

#endif  // OSUM_CORE_WORD_BUDGET_H_
