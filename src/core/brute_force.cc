// Exhaustive enumeration of candidate size-l OSs (Definition 1) — the
// oracle used by property tests to certify the DP and bound the greedies.
#include <algorithm>
#include <vector>

#include "core/size_l.h"

namespace osum::core {

namespace {

struct BruteState {
  const OsTree* os;
  size_t target;
  uint64_t ops = 0;
  std::vector<OsNodeId> current;
  double current_importance = 0.0;
  std::vector<OsNodeId> best;
  double best_importance = -1.0;

  // Connected-subtree enumeration: `frontier` holds candidate nodes (all
  // children of already-chosen nodes, each considered once). At position
  // `idx` we either skip the candidate forever or take it (appending its
  // children to the frontier). Every root-containing connected subtree is
  // produced exactly once.
  void Recurse(std::vector<OsNodeId>* frontier, size_t idx) {
    ++ops;
    if (current.size() == target) {
      if (current_importance > best_importance) {
        best_importance = current_importance;
        best = current;
      }
      return;
    }
    if (idx >= frontier->size()) return;
    // Prune: even taking every remaining frontier candidate and all their
    // descendants cannot be worse than... (we only prune on count): the
    // frontier can still grow, so no count-based prune is safe except when
    // the whole remaining tree is too small; skip for clarity (oracle use).
    // Option A: skip candidate idx.
    Recurse(frontier, idx + 1);
    // Option B: take candidate idx.
    OsNodeId v = (*frontier)[idx];
    current.push_back(v);
    current_importance += os->node(v).local_importance;
    size_t added = 0;
    for (OsNodeId c : os->node(v).children) {
      frontier->push_back(c);
      ++added;
    }
    Recurse(frontier, idx + 1);
    frontier->resize(frontier->size() - added);
    current_importance -= os->node(v).local_importance;
    current.pop_back();
  }
};

}  // namespace

Selection SizeLBruteForce(const OsTree& os, size_t l, SizeLStats* stats) {
  Selection result;
  if (os.empty() || l == 0) return result;
  const size_t L = std::min<size_t>(l, os.size());

  BruteState st;
  st.os = &os;
  st.target = L;
  st.current.push_back(kOsRoot);
  st.current_importance = os.node(kOsRoot).local_importance;
  std::vector<OsNodeId> frontier(os.node(kOsRoot).children);
  st.Recurse(&frontier, 0);

  result.nodes = st.best;
  std::sort(result.nodes.begin(), result.nodes.end());
  result.importance = SelectionImportance(os, result.nodes);
  if (stats != nullptr) stats->operations = st.ops;
  return result;
}

}  // namespace osum::core
