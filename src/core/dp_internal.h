// Internal: the tree-knapsack DP tables shared by SizeLDp (single l) and
// SizeLDpAll (all l from one pass). Not part of the public API.
#ifndef OSUM_CORE_DP_INTERNAL_H_
#define OSUM_CORE_DP_INTERNAL_H_

#include <cstdint>
#include <vector>

#include "core/os_tree.h"

namespace osum::core::internal {

inline constexpr double kDpNegInf = -1e300;

/// Bottom-up knapsack tables for budget L.
struct DpTables {
  int32_t L = 0;
  /// cap[v] = min(L - depth(v), |subtree(v)|): max nodes selectable from
  /// v's subtree in any root-connected solution through v.
  std::vector<int32_t> cap;
  /// best[v][i], i in [0, cap[v]]: max importance of an i-node connected
  /// subtree rooted at v (i >= 1 includes v); best[v][0] = 0.
  std::vector<std::vector<double>> best;
  /// Children of v with cap >= 1, in child order (merge order).
  std::vector<std::vector<OsNodeId>> usable_children;
  /// picks[v][t][m]: nodes assigned to usable child t of v when m nodes
  /// total are spread over children [0..t]. Drives reconstruction.
  std::vector<std::vector<std::vector<int32_t>>> picks;
  uint64_t operations = 0;
};

/// Runs the bottom-up merge for budget L = min(l, |os|).
DpTables ComputeDpTables(const OsTree& os, size_t l);

/// Reconstructs the optimal selection of exactly `l` nodes (l <= L) from
/// the tables. Requires best[root][l] to be finite, which holds whenever
/// l <= |os| because the whole tree is one feasible subtree.
Selection ReconstructDp(const OsTree& os, const DpTables& tables, size_t l);

}  // namespace osum::core::internal

#endif  // OSUM_CORE_DP_INTERNAL_H_
