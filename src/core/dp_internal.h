// Internal: the tree-knapsack DP tables shared by SizeLDp (single l) and
// SizeLDpAll (all l from one pass). Not part of the public API.
//
// Flat structure-of-arrays layout: every table is one contiguous buffer in
// the owning DpScratch's arena, addressed through per-node offset spans
// computed from cap[] in a single prefix-sum pass. A DpTables value is a
// *view* — it borrows arena storage and is invalidated by the next call
// that reuses the scratch.
#ifndef OSUM_CORE_DP_INTERNAL_H_
#define OSUM_CORE_DP_INTERNAL_H_

#include <cstddef>
#include <cstdint>

#include "core/os_tree.h"
#include "core/size_l.h"

namespace osum::core::internal {

inline constexpr double kDpNegInf = -1e300;

/// Bottom-up knapsack tables for budget L, flattened.
struct DpTables {
  int32_t n = 0;
  int32_t L = 0;
  /// cap[v] = min(L - depth(v), |subtree(v)|): max nodes selectable from
  /// v's subtree in any root-connected solution through v.
  const int32_t* cap = nullptr;  // [n]
  /// best row of v: cap[v] + 1 cells at best_off[v] (absent if cap[v] <= 0).
  /// best[v][i], i in [0, cap[v]]: max importance of an i-node connected
  /// subtree rooted at v (i >= 1 includes v); best[v][0] = 0.
  const double* best = nullptr;
  const size_t* best_off = nullptr;  // [n]
  /// Children of v with cap >= 1, in child order (merge order):
  /// children[child_off[v] .. child_off[v + 1]).
  const OsNodeId* children = nullptr;
  const size_t* child_off = nullptr;  // [n + 1]
  /// picks row (v, t): cap[v] cells at picks_off[v] + t * cap[v];
  /// cell m = nodes assigned to usable child t of v when m + 1 nodes total
  /// go through v (m spread over children [0..t]). Drives reconstruction.
  const int32_t* picks = nullptr;
  const size_t* picks_off = nullptr;  // [n]
  uint64_t operations = 0;

  double BestAt(OsNodeId v, int32_t i) const { return best[best_off[v] + i]; }
};

/// Runs the bottom-up merge for budget L = min(l, |os|). Table storage
/// comes from `scratch->arena` (reset on entry).
DpTables ComputeDpTables(const OsTree& os, size_t l, DpScratch* scratch);

/// Reconstructs the optimal selection of exactly `l` nodes (l <= L) from
/// the tables. Throws std::invalid_argument if l is outside [1, L] and
/// std::logic_error if the tables are internally inconsistent — malformed
/// input must fail loudly in Release builds, not yield a garbage selection.
Selection ReconstructDp(const OsTree& os, const DpTables& tables, size_t l);

}  // namespace osum::core::internal

#endif  // OSUM_CORE_DP_INTERNAL_H_
