// Exact size-l algorithms: tree-knapsack DP and the paper's literal
// combination-enumeration DP (Algorithm 1).
//
// Both back ends run on flat structure-of-arrays tables bump-allocated
// from a caller-owned DpScratch (see arena.h): per-node rows live in
// single contiguous buffers addressed by offset spans prefix-summed from
// cap[]. The merge arithmetic and tie-breaking are unchanged from the
// vector-of-vectors implementation — selections are byte-identical, which
// the differential suite pins.
#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/dp_internal.h"
#include "core/size_l.h"

namespace osum::core {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Subtree sizes via reverse BFS-order scan (children have larger indices),
// into arena storage.
int32_t* SubtreeSizes(const OsTree& os, Arena* arena) {
  const OsNodeId n = static_cast<OsNodeId>(os.size());
  int32_t* size = arena->AllocateArray<int32_t>(n);
  std::fill_n(size, n, 1);
  for (OsNodeId v = n - 1; v > 0; --v) {
    size[os.node(v).parent] += size[v];
  }
  return size;
}

}  // namespace

namespace internal {

DpTables ComputeDpTables(const OsTree& os, size_t l, DpScratch* scratch) {
  Arena& arena = scratch->arena;
  arena.Reset();

  DpTables t;
  const int32_t n = static_cast<int32_t>(os.size());
  t.n = n;
  t.L = static_cast<int32_t>(std::min<size_t>(l, os.size()));

  int32_t* subtree = SubtreeSizes(os, &arena);

  // cap[v]: max nodes selectable from v's subtree in any solution through
  // v = min(L - depth(v), |subtree(v)|). Nodes at depth >= L can never
  // appear (the root path alone would exceed L) — the paper's footnote 1.
  int32_t* cap = arena.AllocateArray<int32_t>(n);
  for (OsNodeId v = 0; v < n; ++v) {
    cap[v] = std::min(t.L - os.node(v).depth, subtree[v]);
  }

  // One prefix-sum pass over cap[] sizes every table and fixes every
  // node's offset span. Nodes with cap <= 0 get empty rows.
  size_t* best_off = arena.AllocateArray<size_t>(n);
  size_t* child_off = arena.AllocateArray<size_t>(n + 1);
  size_t* picks_off = arena.AllocateArray<size_t>(n);
  size_t best_total = 0;
  size_t child_total = 0;
  size_t picks_total = 0;
  for (OsNodeId v = 0; v < n; ++v) {
    best_off[v] = best_total;
    child_off[v] = child_total;
    picks_off[v] = picks_total;
    if (cap[v] <= 0) continue;
    size_t usable = 0;
    for (OsNodeId c : os.node(v).children) {
      usable += cap[c] >= 1 ? 1 : 0;
    }
    best_total += static_cast<size_t>(cap[v]) + 1;
    child_total += usable;
    picks_total += usable * static_cast<size_t>(cap[v]);
  }
  child_off[n] = child_total;

  double* best = arena.AllocateArray<double>(best_total);
  OsNodeId* children = arena.AllocateArray<OsNodeId>(child_total);
  int32_t* picks = arena.AllocateArray<int32_t>(picks_total);
  // Knapsack working rows, shared by every node (budget <= L - 1).
  double* r = arena.AllocateArray<double>(t.L + 1);
  double* nr = arena.AllocateArray<double>(t.L + 1);

  for (OsNodeId v = n - 1; v >= 0; --v) {
    if (cap[v] <= 0) continue;
    const OsNode& node = os.node(v);
    const int32_t budget = cap[v] - 1;  // nodes available for children

    OsNodeId* vkids = children + child_off[v];
    size_t nkids = 0;
    for (OsNodeId c : node.children) {
      if (cap[c] >= 1) vkids[nkids++] = c;
    }

    // Knapsack merge over children: r[m] = best importance using m nodes
    // from the first t children.
    std::fill_n(r, budget + 1, kDpNegInf);
    r[0] = 0.0;
    int32_t reach = 0;  // nodes reachable from children merged so far
    for (size_t c_idx = 0; c_idx < nkids; ++c_idx) {
      OsNodeId c = vkids[c_idx];
      reach = std::min(budget, reach + cap[c]);
      std::fill_n(nr, budget + 1, kDpNegInf);
      int32_t* pick =
          picks + picks_off[v] + c_idx * static_cast<size_t>(cap[v]);
      std::fill_n(pick, budget + 1, 0);
      const double* cbest = best + best_off[c];
      for (int32_t m = 0; m <= reach; ++m) {
        // j nodes to child c, m - j to earlier children.
        int32_t jmax = std::min(m, cap[c]);
        for (int32_t j = 0; j <= jmax; ++j) {
          ++t.operations;
          double prev = r[m - j];
          if (prev <= kDpNegInf) continue;
          double cand = prev + (j > 0 ? cbest[j] : 0.0);
          if (cand > nr[m]) {
            nr[m] = cand;
            pick[m] = j;
          }
        }
      }
      std::swap(r, nr);
    }

    double* vbest = best + best_off[v];
    vbest[0] = 0.0;
    for (int32_t i = 1; i <= cap[v]; ++i) {
      vbest[i] = r[i - 1] > kDpNegInf ? node.local_importance + r[i - 1]
                                      : kDpNegInf;
    }
  }

  t.cap = cap;
  t.best = best;
  t.best_off = best_off;
  t.children = children;
  t.child_off = child_off;
  t.picks = picks;
  t.picks_off = picks_off;
  return t;
}

namespace {

[[noreturn]] void ThrowCorruptTables(const char* what) {
  throw std::logic_error(what);
}

}  // namespace

Selection ReconstructDp(const OsTree& os, const DpTables& tables, size_t l) {
  Selection result;
  // Real checks, not assert: a malformed request or table must fail loudly
  // in Release builds instead of silently yielding a garbage selection.
  // Each check is one branch per selected node — noise next to the merge.
  if (l < 1 || l > static_cast<size_t>(tables.L)) {
    throw std::invalid_argument(
        "ReconstructDp: l must be in [1, L] for the computed tables");
  }
  const int32_t target = static_cast<int32_t>(l);
  if (tables.n <= 0 || tables.cap[kOsRoot] < target ||
      !(tables.BestAt(kOsRoot, target) > kDpNegInf)) {
    ThrowCorruptTables("ReconstructDp: best[root][l] is not finite");
  }
  std::vector<std::pair<OsNodeId, int32_t>> stack{{kOsRoot, target}};
  while (!stack.empty()) {
    auto [v, i] = stack.back();
    stack.pop_back();
    if (i < 1 || i > tables.cap[v]) {
      ThrowCorruptTables(
          "ReconstructDp: picks assign a child more nodes than its cap");
    }
    result.nodes.push_back(v);
    int32_t m = i - 1;
    const size_t row = tables.picks_off[v];
    const size_t width = static_cast<size_t>(tables.cap[v]);
    for (size_t t = tables.child_off[v + 1] - tables.child_off[v]; t-- > 0;) {
      int32_t j = tables.picks[row + t * width + m];
      if (j > 0) stack.push_back({tables.children[tables.child_off[v] + t], j});
      m -= j;
    }
    if (m != 0) {
      ThrowCorruptTables(
          "ReconstructDp: picks row does not account for every node");
    }
  }
  std::sort(result.nodes.begin(), result.nodes.end());
  result.importance = SelectionImportance(os, result.nodes);
  return result;
}

}  // namespace internal

Selection SizeLDp(const OsTree& os, size_t l, DpScratch* scratch,
                  SizeLStats* stats) {
  Selection result;
  if (os.empty() || l == 0) return result;
  internal::DpTables tables =
      internal::ComputeDpTables(os, std::min(l, os.size()), scratch);
  result = internal::ReconstructDp(os, tables, std::min(l, os.size()));
  if (stats != nullptr) stats->operations = tables.operations;
  return result;
}

Selection SizeLDp(const OsTree& os, size_t l, SizeLStats* stats) {
  DpScratch scratch;
  return SizeLDp(os, l, &scratch, stats);
}

namespace {

// State for the literal enumeration DP. All tables are flat arena spans;
// "unset" memo cells are NaN because kNegInf is a legitimate memoized
// value (an infeasible state) that no computation can confuse with unset.
struct EnumState {
  const OsTree* os;
  int32_t L;
  uint64_t op_budget;
  uint64_t ops = 0;
  bool aborted = false;
  const int32_t* cap = nullptr;        // [n]
  const OsNodeId* children = nullptr;  // usable children, flat
  const size_t* child_off = nullptr;   // [n + 1]
  // memo row of v: cap[v] + 1 cells at memo_off[v]; memo[v][i] = best
  // importance of an i-node subtree rooted at v, NaN while unset.
  double* memo = nullptr;
  const size_t* memo_off = nullptr;  // [n]
  // memo_choice row (v, i): the per-child node counts of the best
  // combination — nc(v) cells at choice_off[v] + i * nc(v).
  int32_t* memo_choice = nullptr;
  const size_t* choice_off = nullptr;  // [n]

  size_t NumChildren(OsNodeId v) const {
    return child_off[v + 1] - child_off[v];
  }

  double Solve(OsNodeId v, int32_t i);
  // Enumerates all assignments of `remaining` nodes to children [t..] of v;
  // returns the best total and fills `counts` (sized to children) with the
  // best assignment found from this position.
  double Enumerate(OsNodeId v, size_t t, int32_t remaining,
                   std::vector<int32_t>* counts,
                   std::vector<int32_t>* best_counts);
};

double EnumState::Solve(OsNodeId v, int32_t i) {
  if (aborted) return kNegInf;
  if (i <= 0 || i > cap[v]) return kNegInf;
  double& cell = memo[memo_off[v] + static_cast<size_t>(i)];
  if (!std::isnan(cell)) return cell;
  if (++ops > op_budget) {
    aborted = true;
    return kNegInf;
  }
  double w = os->node(v).local_importance;
  double value;
  const size_t nc = NumChildren(v);
  std::vector<int32_t> best_counts(nc, 0);
  if (i == 1) {
    value = w;
  } else {
    std::vector<int32_t> counts(nc, 0);
    double sub = Enumerate(v, 0, i - 1, &counts, &best_counts);
    value = sub == kNegInf ? kNegInf : w + sub;
  }
  if (aborted) {
    // The op budget tripped mid-Enumerate: `value` reflects a truncated
    // search, and memoizing it would poison this state — a later consult
    // would misreport a feasible state as infeasible (or suboptimal).
    // Abort paths leave the cell unset.
    return kNegInf;
  }
  cell = value;
  std::copy(best_counts.begin(), best_counts.end(),
            memo_choice + choice_off[v] + static_cast<size_t>(i) * nc);
  return value;
}

double EnumState::Enumerate(OsNodeId v, size_t t, int32_t remaining,
                            std::vector<int32_t>* counts,
                            std::vector<int32_t>* best_counts) {
  if (aborted) return kNegInf;
  ++ops;
  if (ops > op_budget) {
    aborted = true;
    return kNegInf;
  }
  const size_t nc = NumChildren(v);
  if (t == nc) {
    if (remaining != 0) return kNegInf;
    *best_counts = *counts;
    return 0.0;
  }
  OsNodeId c = children[child_off[v] + t];
  double best_total = kNegInf;
  std::vector<int32_t> local_best;
  // The literal "all combinations" loop: every split of `remaining` between
  // this child and the rest.
  for (int32_t j = 0; j <= std::min(remaining, cap[c]); ++j) {
    double childv = j > 0 ? Solve(c, j) : 0.0;
    if (childv == kNegInf) continue;
    (*counts)[t] = j;
    std::vector<int32_t> rest_best;
    double restv = Enumerate(v, t + 1, remaining - j, counts, &rest_best);
    (*counts)[t] = 0;
    if (restv == kNegInf) continue;
    if (childv + restv > best_total) {
      best_total = childv + restv;
      local_best = std::move(rest_best);
      local_best[t] = j;
    }
  }
  if (best_total != kNegInf) *best_counts = std::move(local_best);
  return best_total;
}

}  // namespace

Selection SizeLDpEnumerate(const OsTree& os, size_t l, uint64_t op_budget,
                           DpScratch* scratch, SizeLStats* stats) {
  Selection result;
  if (os.empty() || l == 0) return result;
  Arena& arena = scratch->arena;
  arena.Reset();
  const int32_t n = static_cast<int32_t>(os.size());
  const int32_t L = static_cast<int32_t>(std::min<size_t>(l, os.size()));

  EnumState st;
  st.os = &os;
  st.L = L;
  st.op_budget = op_budget;

  int32_t* subtree = SubtreeSizes(os, &arena);
  int32_t* cap = arena.AllocateArray<int32_t>(n);
  for (OsNodeId v = 0; v < n; ++v) {
    cap[v] = std::min(L - os.node(v).depth, subtree[v]);
    if (cap[v] < 0) cap[v] = 0;
  }

  size_t* child_off = arena.AllocateArray<size_t>(n + 1);
  size_t* memo_off = arena.AllocateArray<size_t>(n);
  size_t* choice_off = arena.AllocateArray<size_t>(n);
  size_t child_total = 0;
  size_t memo_total = 0;
  size_t choice_total = 0;
  for (OsNodeId v = 0; v < n; ++v) {
    child_off[v] = child_total;
    memo_off[v] = memo_total;
    choice_off[v] = choice_total;
    size_t usable = 0;
    for (OsNodeId c : os.node(v).children) {
      usable += cap[c] >= 1 ? 1 : 0;
    }
    child_total += usable;
    memo_total += static_cast<size_t>(cap[v]) + 1;
    choice_total += (static_cast<size_t>(cap[v]) + 1) * usable;
  }
  child_off[n] = child_total;

  OsNodeId* children = arena.AllocateArray<OsNodeId>(child_total);
  for (OsNodeId v = 0; v < n; ++v) {
    OsNodeId* vkids = children + child_off[v];
    size_t k = 0;
    for (OsNodeId c : os.node(v).children) {
      if (cap[c] >= 1) vkids[k++] = c;
    }
  }
  double* memo = arena.AllocateArray<double>(memo_total);
  std::fill_n(memo, memo_total, std::numeric_limits<double>::quiet_NaN());
  int32_t* memo_choice = arena.AllocateArray<int32_t>(choice_total);

  st.cap = cap;
  st.children = children;
  st.child_off = child_off;
  st.memo = memo;
  st.memo_off = memo_off;
  st.memo_choice = memo_choice;
  st.choice_off = choice_off;

  double value = st.Solve(kOsRoot, L);
  if (stats != nullptr) {
    stats->operations = st.ops;
    stats->aborted = st.aborted;
  }
  if (st.aborted || value == kNegInf) return result;

  std::vector<std::pair<OsNodeId, int32_t>> stack{{kOsRoot, L}};
  while (!stack.empty()) {
    auto [v, i] = stack.back();
    stack.pop_back();
    result.nodes.push_back(v);
    const size_t nc = st.NumChildren(v);
    const int32_t* counts =
        st.memo_choice + st.choice_off[v] + static_cast<size_t>(i) * nc;
    for (size_t t = 0; t < nc; ++t) {
      if (counts[t] > 0) {
        stack.push_back({st.children[st.child_off[v] + t], counts[t]});
      }
    }
  }
  std::sort(result.nodes.begin(), result.nodes.end());
  result.importance = SelectionImportance(os, result.nodes);
  return result;
}

Selection SizeLDpEnumerate(const OsTree& os, size_t l, uint64_t op_budget,
                           SizeLStats* stats) {
  DpScratch scratch;
  return SizeLDpEnumerate(os, l, op_budget, &scratch, stats);
}

}  // namespace osum::core
