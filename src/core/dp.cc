// Exact size-l algorithms: tree-knapsack DP and the paper's literal
// combination-enumeration DP (Algorithm 1).
#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "core/dp_internal.h"
#include "core/size_l.h"

namespace osum::core {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Subtree sizes via reverse BFS-order scan (children have larger indices).
std::vector<int32_t> SubtreeSizes(const OsTree& os) {
  std::vector<int32_t> size(os.size(), 1);
  for (OsNodeId v = static_cast<OsNodeId>(os.size()) - 1; v > 0; --v) {
    size[os.node(v).parent] += size[v];
  }
  return size;
}

}  // namespace

namespace internal {

DpTables ComputeDpTables(const OsTree& os, size_t l) {
  DpTables t;
  const int32_t n = static_cast<int32_t>(os.size());
  t.L = static_cast<int32_t>(std::min<size_t>(l, os.size()));

  std::vector<int32_t> subtree = SubtreeSizes(os);

  // cap[v]: max nodes selectable from v's subtree in any solution through
  // v = min(L - depth(v), |subtree(v)|). Nodes at depth >= L can never
  // appear (the root path alone would exceed L) — the paper's footnote 1.
  t.cap.assign(n, 0);
  for (OsNodeId v = 0; v < n; ++v) {
    t.cap[v] = std::min(t.L - os.node(v).depth, subtree[v]);
  }

  t.best.resize(n);
  t.usable_children.resize(n);
  t.picks.resize(n);

  for (OsNodeId v = n - 1; v >= 0; --v) {
    if (t.cap[v] <= 0) continue;
    const OsNode& node = os.node(v);
    const int32_t budget = t.cap[v] - 1;  // nodes available for children

    for (OsNodeId c : node.children) {
      if (t.cap[c] >= 1) t.usable_children[v].push_back(c);
    }

    // Knapsack merge over children: r[m] = best importance using m nodes
    // from the first t children.
    std::vector<double> r(budget + 1, kDpNegInf);
    r[0] = 0.0;
    t.picks[v].resize(t.usable_children[v].size());
    int32_t reach = 0;  // nodes reachable from children merged so far
    for (size_t c_idx = 0; c_idx < t.usable_children[v].size(); ++c_idx) {
      OsNodeId c = t.usable_children[v][c_idx];
      reach = std::min(budget, reach + t.cap[c]);
      std::vector<double> nr(budget + 1, kDpNegInf);
      std::vector<int32_t>& pick = t.picks[v][c_idx];
      pick.assign(budget + 1, 0);
      for (int32_t m = 0; m <= reach; ++m) {
        // j nodes to child c, m - j to earlier children.
        int32_t jmax = std::min(m, t.cap[c]);
        for (int32_t j = 0; j <= jmax; ++j) {
          ++t.operations;
          double prev = r[m - j];
          if (prev <= kDpNegInf) continue;
          double cand = prev + (j > 0 ? t.best[c][j] : 0.0);
          if (cand > nr[m]) {
            nr[m] = cand;
            pick[m] = j;
          }
        }
      }
      r.swap(nr);
    }

    t.best[v].assign(t.cap[v] + 1, kDpNegInf);
    t.best[v][0] = 0.0;
    for (int32_t i = 1; i <= t.cap[v]; ++i) {
      if (r[i - 1] > kDpNegInf) {
        t.best[v][i] = node.local_importance + r[i - 1];
      }
    }
  }
  return t;
}

Selection ReconstructDp(const OsTree& os, const DpTables& tables, size_t l) {
  Selection result;
  const int32_t target = static_cast<int32_t>(l);
  assert(target >= 1 && target <= tables.L);
  assert(tables.best[kOsRoot][target] > kDpNegInf);
  std::vector<std::pair<OsNodeId, int32_t>> stack{{kOsRoot, target}};
  while (!stack.empty()) {
    auto [v, i] = stack.back();
    stack.pop_back();
    result.nodes.push_back(v);
    int32_t m = i - 1;
    for (size_t t = tables.usable_children[v].size(); t-- > 0;) {
      int32_t j = tables.picks[v][t][m];
      if (j > 0) stack.push_back({tables.usable_children[v][t], j});
      m -= j;
    }
    assert(m == 0);
  }
  std::sort(result.nodes.begin(), result.nodes.end());
  result.importance = SelectionImportance(os, result.nodes);
  return result;
}

}  // namespace internal

Selection SizeLDp(const OsTree& os, size_t l, SizeLStats* stats) {
  Selection result;
  if (os.empty() || l == 0) return result;
  internal::DpTables tables =
      internal::ComputeDpTables(os, std::min(l, os.size()));
  result = internal::ReconstructDp(os, tables, std::min(l, os.size()));
  if (stats != nullptr) stats->operations = tables.operations;
  return result;
}

namespace {

// State for the literal enumeration DP.
struct EnumState {
  const OsTree* os;
  int32_t L;
  uint64_t op_budget;
  uint64_t ops = 0;
  bool aborted = false;
  std::vector<int32_t> cap;
  std::vector<std::vector<OsNodeId>> usable_children;
  // memo[v][i]: best importance of an i-node subtree rooted at v, or unset.
  std::vector<std::vector<std::optional<double>>> memo;
  // memo_choice[v][i]: the per-child node counts of the best combination.
  std::vector<std::vector<std::vector<int32_t>>> memo_choice;

  double Solve(OsNodeId v, int32_t i);
  // Enumerates all assignments of `remaining` nodes to children [t..] of v;
  // returns the best total and fills `counts` (sized to children) with the
  // best assignment found from this position.
  double Enumerate(OsNodeId v, size_t t, int32_t remaining,
                   std::vector<int32_t>* counts,
                   std::vector<int32_t>* best_counts);
};

double EnumState::Solve(OsNodeId v, int32_t i) {
  if (aborted) return kNegInf;
  if (i <= 0 || i > cap[v]) return kNegInf;
  auto& cell = memo[v][i];
  if (cell.has_value()) return *cell;
  if (++ops > op_budget) {
    aborted = true;
    return kNegInf;
  }
  double w = os->node(v).local_importance;
  double value;
  std::vector<int32_t> best_counts(usable_children[v].size(), 0);
  if (i == 1) {
    value = w;
  } else {
    std::vector<int32_t> counts(usable_children[v].size(), 0);
    double sub = Enumerate(v, 0, i - 1, &counts, &best_counts);
    value = sub == kNegInf ? kNegInf : w + sub;
  }
  cell = value;
  memo_choice[v][i] = std::move(best_counts);
  return value;
}

double EnumState::Enumerate(OsNodeId v, size_t t, int32_t remaining,
                            std::vector<int32_t>* counts,
                            std::vector<int32_t>* best_counts) {
  if (aborted) return kNegInf;
  ++ops;
  if (ops > op_budget) {
    aborted = true;
    return kNegInf;
  }
  const auto& children = usable_children[v];
  if (t == children.size()) {
    if (remaining != 0) return kNegInf;
    *best_counts = *counts;
    return 0.0;
  }
  OsNodeId c = children[t];
  double best_total = kNegInf;
  std::vector<int32_t> local_best;
  // The literal "all combinations" loop: every split of `remaining` between
  // this child and the rest.
  for (int32_t j = 0; j <= std::min(remaining, cap[c]); ++j) {
    double childv = j > 0 ? Solve(c, j) : 0.0;
    if (childv == kNegInf) continue;
    (*counts)[t] = j;
    std::vector<int32_t> rest_best;
    double restv = Enumerate(v, t + 1, remaining - j, counts, &rest_best);
    (*counts)[t] = 0;
    if (restv == kNegInf) continue;
    if (childv + restv > best_total) {
      best_total = childv + restv;
      local_best = std::move(rest_best);
      local_best[t] = j;
    }
  }
  if (best_total != kNegInf) *best_counts = std::move(local_best);
  return best_total;
}

}  // namespace

Selection SizeLDpEnumerate(const OsTree& os, size_t l, uint64_t op_budget,
                           SizeLStats* stats) {
  Selection result;
  if (os.empty() || l == 0) return result;
  const int32_t n = static_cast<int32_t>(os.size());
  const int32_t L = static_cast<int32_t>(std::min<size_t>(l, os.size()));

  EnumState st;
  st.os = &os;
  st.L = L;
  st.op_budget = op_budget;
  std::vector<int32_t> subtree = SubtreeSizes(os);
  st.cap.resize(n);
  st.usable_children.resize(n);
  st.memo.resize(n);
  st.memo_choice.resize(n);
  for (OsNodeId v = 0; v < n; ++v) {
    st.cap[v] = std::min(L - os.node(v).depth, subtree[v]);
    if (st.cap[v] < 0) st.cap[v] = 0;
    st.memo[v].resize(st.cap[v] + 1);
    st.memo_choice[v].resize(st.cap[v] + 1);
    for (OsNodeId c : os.node(v).children) {
      if (std::min(L - os.node(c).depth, subtree[c]) >= 1) {
        st.usable_children[v].push_back(c);
      }
    }
  }

  double value = st.Solve(kOsRoot, L);
  if (stats != nullptr) {
    stats->operations = st.ops;
    stats->aborted = st.aborted;
  }
  if (st.aborted || value == kNegInf) return result;

  std::vector<std::pair<OsNodeId, int32_t>> stack{{kOsRoot, L}};
  while (!stack.empty()) {
    auto [v, i] = stack.back();
    stack.pop_back();
    result.nodes.push_back(v);
    const auto& counts = st.memo_choice[v][i];
    for (size_t t = 0; t < counts.size(); ++t) {
      if (counts[t] > 0) stack.push_back({st.usable_children[v][t], counts[t]});
    }
  }
  std::sort(result.nodes.begin(), result.nodes.end());
  result.importance = SelectionImportance(os, result.nodes);
  return result;
}

}  // namespace osum::core
