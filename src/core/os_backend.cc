#include "core/os_backend.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace osum::core {

namespace {

rel::RelationId SourceRelation(const graph::LinkType& lt,
                               rel::FkDirection dir) {
  return dir == rel::FkDirection::kForward ? lt.a : lt.b;
}

}  // namespace

// ---------------------------------------------------------------- DataGraph

DataGraphBackend::DataGraphBackend(const rel::Database& db,
                                   const graph::LinkSchema& links,
                                   const graph::DataGraph& graph)
    : db_(db), links_(links), graph_(graph) {}

void DataGraphBackend::Fetch(graph::LinkTypeId link, rel::FkDirection dir,
                             rel::TupleId parent_tuple,
                             std::vector<rel::TupleId>* out) {
  out->clear();
  const graph::LinkType& lt = links_.link(link);
  graph::NodeId n = graph_.node(SourceRelation(lt, dir), parent_tuple);
  auto targets = graph_.Neighbors(n, link, dir);
  out->reserve(targets.size());
  for (graph::NodeId t : targets) out->push_back(graph_.TupleOf(t));
  stats_.CountSelect(targets.size(), 1);
}

void DataGraphBackend::FetchTop(graph::LinkTypeId link, rel::FkDirection dir,
                                rel::TupleId parent_tuple, size_t limit,
                                double min_importance,
                                std::vector<rel::TupleId>* out) {
  out->clear();
  assert(graph_.neighbors_sorted() &&
         "FetchTop requires DataGraph::SortNeighborsByImportance");
  const graph::LinkType& lt = links_.link(link);
  rel::RelationId target_rel = dir == rel::FkDirection::kForward ? lt.b : lt.a;
  const rel::Relation& target = db_.relation(target_rel);
  graph::NodeId n = graph_.node(SourceRelation(lt, dir), parent_tuple);
  auto targets = graph_.Neighbors(n, link, dir);
  for (graph::NodeId t : targets) {
    if (out->size() >= limit) break;
    rel::TupleId tuple = graph_.TupleOf(t);
    if (target.importance(tuple) <= min_importance) break;  // sorted desc
    out->push_back(tuple);
  }
  stats_.CountSelect(out->size(), 1);
}

// ----------------------------------------------------------------- Database

DatabaseBackend::DatabaseBackend(const rel::Database& db,
                                 const graph::LinkSchema& links,
                                 double per_select_micros)
    : db_(db), links_(links), per_select_micros_(per_select_micros) {}

void DatabaseBackend::SimulateLatency() {
  if (per_select_micros_ <= 0.0) return;
  auto until = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::duration<double, std::micro>(
                       per_select_micros_));
  while (std::chrono::steady_clock::now() < until) {
    // busy-wait: a sleep would be descheduled for far longer than a few
    // tens of microseconds and distort the simulated round-trip.
  }
}

void DatabaseBackend::Fetch(graph::LinkTypeId link, rel::FkDirection dir,
                            rel::TupleId parent_tuple,
                            std::vector<rel::TupleId>* out) {
  out->clear();
  const graph::LinkType& lt = links_.link(link);
  SimulateLatency();
  if (!lt.via_junction) {
    if (dir == rel::FkDirection::kForward) {
      // SELECT * FROM child WHERE child.fk = parent_tuple
      auto children = db_.Children(lt.fk_a, parent_tuple);
      out->assign(children.begin(), children.end());
    } else {
      auto parent = db_.Parent(lt.fk_a, parent_tuple);
      if (parent.has_value()) out->push_back(*parent);
    }
  } else {
    // SELECT target.* FROM junction JOIN target ... — one statement; the
    // junction hop is part of the same join.
    rel::ForeignKeyId src_fk =
        dir == rel::FkDirection::kForward ? lt.fk_a : lt.fk_b;
    rel::ForeignKeyId dst_fk =
        dir == rel::FkDirection::kForward ? lt.fk_b : lt.fk_a;
    const rel::ForeignKey& dst = db_.foreign_key(dst_fk);
    const rel::Relation& junction = db_.relation(lt.junction);
    auto junction_tuples = db_.Children(src_fk, parent_tuple);
    out->reserve(junction_tuples.size());
    for (rel::TupleId j : junction_tuples) {
      const rel::Value& v = junction.value(j, dst.child_col);
      if (rel::TypeOf(v) == rel::ValueType::kNull) continue;
      out->push_back(static_cast<rel::TupleId>(std::get<int64_t>(v)));
    }
    // Return targets in descending importance order (matching the
    // importance-sorted data-graph adjacency) so OS generation is
    // deterministic and backend-independent.
    rel::RelationId target_rel =
        dir == rel::FkDirection::kForward ? lt.b : lt.a;
    const rel::Relation& target = db_.relation(target_rel);
    if (target.has_importance()) {
      std::sort(out->begin(), out->end(),
                [&target](rel::TupleId a, rel::TupleId b) {
                  double ia = target.importance(a);
                  double ib = target.importance(b);
                  if (ia != ib) return ia > ib;
                  return a < b;
                });
    }
  }
  stats_.CountSelect(out->size(), 0);
}

void DatabaseBackend::FetchTop(graph::LinkTypeId link, rel::FkDirection dir,
                               rel::TupleId parent_tuple, size_t limit,
                               double min_importance,
                               std::vector<rel::TupleId>* out) {
  out->clear();
  const graph::LinkType& lt = links_.link(link);
  SimulateLatency();
  rel::RelationId target_rel = dir == rel::FkDirection::kForward ? lt.b : lt.a;
  const rel::Relation& target = db_.relation(target_rel);
  if (!lt.via_junction && dir == rel::FkDirection::kForward) {
    // SELECT * TOP limit ... AND importance > min ORDER BY importance DESC.
    // Only the SELECT is counted here: the delegated access path already
    // books the tuples in db_.io_stats(), and the backend-level
    // tuples_read has never included this path (kept for baseline
    // comparability of the I/O metrics).
    *out = db_.ChildrenTopImportance(lt.fk_a, parent_tuple, limit,
                                     min_importance);
    stats_.CountSelect(0, 0);
    return;
  }
  if (!lt.via_junction) {
    auto parent = db_.Parent(lt.fk_a, parent_tuple);
    if (parent.has_value() && limit > 0 &&
        target.importance(*parent) > min_importance) {
      out->push_back(*parent);
    }
    // Avoidance Condition 2 pays the SELECT even for 0 rows.
    stats_.CountSelect(out->size(), 0);
    return;
  }
  // Junction: the DBMS would evaluate the ordered, limited join in one
  // statement; we materialize the join then apply ORDER BY / TOP.
  rel::ForeignKeyId src_fk =
      dir == rel::FkDirection::kForward ? lt.fk_a : lt.fk_b;
  rel::ForeignKeyId dst_fk =
      dir == rel::FkDirection::kForward ? lt.fk_b : lt.fk_a;
  const rel::ForeignKey& dst = db_.foreign_key(dst_fk);
  const rel::Relation& junction = db_.relation(lt.junction);
  auto junction_tuples = db_.Children(src_fk, parent_tuple);
  std::vector<rel::TupleId> candidates;
  candidates.reserve(junction_tuples.size());
  for (rel::TupleId j : junction_tuples) {
    const rel::Value& v = junction.value(j, dst.child_col);
    if (rel::TypeOf(v) == rel::ValueType::kNull) continue;
    rel::TupleId t = static_cast<rel::TupleId>(std::get<int64_t>(v));
    if (target.importance(t) > min_importance) candidates.push_back(t);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&target](rel::TupleId a, rel::TupleId b) {
              double ia = target.importance(a);
              double ib = target.importance(b);
              if (ia != ib) return ia > ib;
              return a < b;
            });
  if (candidates.size() > limit) candidates.resize(limit);
  stats_.CountSelect(candidates.size(), 0);
  *out = std::move(candidates);
}

}  // namespace osum::core
