// OS export: JSON rendering of (partial) Object Summaries for downstream
// tooling (UIs, the DPA-report use case of the paper's introduction).
#ifndef OSUM_CORE_OS_EXPORT_H_
#define OSUM_CORE_OS_EXPORT_H_

#include <string>

#include "core/os_tree.h"
#include "gds/gds.h"

namespace osum::core {

/// Renders the OS (or, if `selection` is non-null, the selected subtree)
/// as a JSON document:
///
/// {
///   "label": "Author",
///   "relation": "Author",
///   "importance": 58.0,
///   "values": {"name": "Christos Faloutsos"},
///   "children": [ ... ]
/// }
///
/// Attribute values come from display columns only, matching the rendered
/// text format. Strings are JSON-escaped; NULLs become null.
std::string RenderOsJson(const rel::Database& db, const gds::Gds& gds,
                         const OsTree& os,
                         const std::vector<OsNodeId>* selection = nullptr,
                         bool pretty = true);

/// Escapes a string for inclusion in a JSON document (exposed for tests).
std::string JsonEscape(const std::string& s);

}  // namespace osum::core

#endif  // OSUM_CORE_OS_EXPORT_H_
