#include "core/word_budget.h"

#include <algorithm>

#include "util/string_util.h"

namespace osum::core {

namespace {

uint64_t SelectionCost(const std::vector<uint32_t>& costs,
                       const Selection& sel) {
  uint64_t total = 0;
  for (OsNodeId id : sel.nodes) total += costs[id];
  return total;
}

}  // namespace

std::vector<uint32_t> NodeBudgetCosts(const rel::Database& db,
                                      const OsTree& os, BudgetUnit unit) {
  std::vector<uint32_t> costs(os.size(), 0);
  for (size_t i = 0; i < os.size(); ++i) {
    const OsNode& n = os.node(static_cast<OsNodeId>(i));
    const rel::Relation& r = db.relation(n.relation);
    if (unit == BudgetUnit::kAttributes) {
      uint32_t attrs = 0;
      for (const rel::Column& c : r.schema().columns()) attrs += c.display;
      costs[i] = attrs;
    } else {
      costs[i] = static_cast<uint32_t>(
          util::TokenizeWords(r.RenderValues(n.tuple)).size());
    }
  }
  return costs;
}

BudgetedSelection SizeLByBudget(const rel::Database& db, const OsTree& os,
                                uint64_t budget, BudgetUnit unit,
                                SizeLAlgorithm algorithm) {
  BudgetedSelection result;
  if (os.empty()) return result;
  std::vector<uint32_t> costs = NodeBudgetCosts(db, os, unit);

  // Exponential probe upward to bracket the budget, then binary search for
  // the largest fitting l; a final downward walk guards against the mild
  // non-monotonicity of cost in l.
  const size_t n = os.size();
  auto cost_at = [&](size_t l, Selection* out) {
    *out = RunSizeL(algorithm, os, l);
    return SelectionCost(costs, *out);
  };

  Selection sel;
  size_t lo = 1;
  uint64_t lo_cost = cost_at(1, &sel);
  if (lo_cost > budget) {
    // Even the root alone overshoots: return it (never empty).
    result.selection = std::move(sel);
    result.l = 1;
    result.cost = lo_cost;
    return result;
  }
  Selection lo_sel = sel;

  size_t hi = 1;
  while (hi < n) {
    hi = std::min(n, hi * 2);
    uint64_t c = cost_at(hi, &sel);
    if (c > budget) break;
    lo = hi;
    lo_cost = c;
    lo_sel = sel;
    if (hi == n) {
      result.selection = std::move(lo_sel);
      result.l = lo;
      result.cost = lo_cost;
      return result;  // whole OS fits
    }
  }

  // Binary search in (lo, hi): lo fits, hi overshoots.
  size_t bad = hi;
  while (lo + 1 < bad) {
    size_t mid = lo + (bad - lo) / 2;
    uint64_t c = cost_at(mid, &sel);
    if (c <= budget) {
      lo = mid;
      lo_cost = c;
      lo_sel = sel;
    } else {
      bad = mid;
    }
  }

  result.selection = std::move(lo_sel);
  result.l = lo;
  result.cost = lo_cost;
  return result;
}

}  // namespace osum::core
