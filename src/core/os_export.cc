#include "core/os_export.h"

#include <cstdio>
#include <unordered_set>

#include "util/string_util.h"

namespace osum::core {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void AppendValueJson(const rel::Value& v, std::string* out) {
  switch (rel::TypeOf(v)) {
    case rel::ValueType::kNull:
      *out += "null";
      break;
    case rel::ValueType::kInt:
      *out += std::to_string(std::get<int64_t>(v));
      break;
    case rel::ValueType::kDouble:
      *out += util::FormatDouble(std::get<double>(v), 6);
      break;
    case rel::ValueType::kString:
      *out += "\"" + JsonEscape(std::get<std::string>(v)) + "\"";
      break;
  }
}

struct JsonWriter {
  const rel::Database& db;
  const gds::Gds& gds;
  const OsTree& os;
  const std::unordered_set<OsNodeId>* keep;
  bool pretty;
  std::string out;

  bool Selected(OsNodeId id) const {
    return keep == nullptr || keep->count(id) > 0;
  }

  void Indent(int depth) {
    if (pretty) out.append(static_cast<size_t>(depth) * 2, ' ');
  }

  void Newline() {
    if (pretty) out += "\n";
  }

  void Emit(OsNodeId id, int depth) {
    const OsNode& n = os.node(id);
    const rel::Relation& rel = db.relation(n.relation);

    Indent(depth);
    out += "{";
    Newline();
    Indent(depth + 1);
    out += "\"label\": \"" + JsonEscape(gds.node(n.gds_node).label) + "\",";
    Newline();
    Indent(depth + 1);
    out += "\"relation\": \"" + JsonEscape(rel.name()) + "\",";
    Newline();
    Indent(depth + 1);
    out += "\"importance\": " + util::FormatDouble(n.local_importance, 6) +
           ",";
    Newline();
    Indent(depth + 1);
    out += "\"values\": {";
    bool first = true;
    const rel::Schema& schema = rel.schema();
    for (rel::ColumnId c = 0; c < schema.num_columns(); ++c) {
      if (!schema.column(c).display) continue;
      if (!first) out += ", ";
      first = false;
      out += "\"" + JsonEscape(schema.column(c).name) + "\": ";
      AppendValueJson(rel.value(n.tuple, c), &out);
    }
    out += "},";
    Newline();
    Indent(depth + 1);
    out += "\"children\": [";
    bool first_child = true;
    for (OsNodeId c : n.children) {
      if (!Selected(c)) continue;
      if (!first_child) out += ",";
      first_child = false;
      Newline();
      Emit(c, depth + 2);
    }
    if (!first_child) {
      Newline();
      Indent(depth + 1);
    }
    out += "]";
    Newline();
    Indent(depth);
    out += "}";
  }
};

}  // namespace

std::string RenderOsJson(const rel::Database& db, const gds::Gds& gds,
                         const OsTree& os,
                         const std::vector<OsNodeId>* selection,
                         bool pretty) {
  if (os.empty()) return "null";
  std::unordered_set<OsNodeId> keep;
  if (selection != nullptr) keep.insert(selection->begin(), selection->end());
  JsonWriter writer{db, gds, os,
                    selection == nullptr ? nullptr : &keep, pretty, {}};
  if (selection != nullptr && keep.count(kOsRoot) == 0) return "null";
  writer.Emit(kOsRoot, 0);
  if (pretty) writer.out += "\n";
  return std::move(writer.out);
}

}  // namespace osum::core
