// A bounded, epoch-aware memo of per-(subject, l) DP synopses — the
// second, finer-grained reuse tier beside serve::ResultCache.
//
// Size-l OSs score independently per subject, so two queries whose keyword
// sets overlap recompute identical per-subject work even though their
// result-cache keys differ. The memo factors that sharing out: the search
// query path looks a (subject, l, algorithm, prelim) key up before
// generating the OS and running the DP, and inserts the finished synopsis
// on a miss. Entries are immutable shared_ptrs — a hit copies the exact
// trees a fresh compute would have produced, so memo-on and memo-off
// results are byte-identical (pinned through DeterministicResultText).
//
// Epochs mirror the result cache's invalidation discipline: the serving
// layer bumps the epoch on RebindContext, which atomically clears the memo
// and causes in-flight inserts (computed against the old binding) to be
// discarded rather than resurrected — a stale partial can never decorate a
// post-rebind answer.
#ifndef OSUM_CORE_PARTIALS_MEMO_H_
#define OSUM_CORE_PARTIALS_MEMO_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/os_tree.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace osum::core {

/// One memoized per-(subject, l) unit of query work: the generated OS tree
/// and the size-l selection computed on it. Immutable once published.
struct PartialSynopsis {
  OsTree os;
  Selection selection;
  /// Set by the publisher (see ApproxPartialBytes); charged against the
  /// memo's byte budget.
  size_t approx_bytes = 0;
};

using PartialPtr = std::shared_ptr<const PartialSynopsis>;

/// Rough heap footprint of a synopsis, for the byte budget.
size_t ApproxPartialBytes(const PartialSynopsis& p);

/// Sizing knob (serve::ServiceOptions forwards this to the bound
/// context's memo).
struct PartialsMemoOptions {
  /// Master switch: disabled means Lookup always misses (uncounted) and
  /// Insert is a no-op — the query path behaves exactly as if the memo
  /// did not exist.
  bool enabled = true;
  size_t max_entries = 4096;
  size_t max_bytes = size_t{32} << 20;
};

/// Point-in-time counters. Monotonic except entries/approx_bytes
/// (current occupancy) and epoch.
struct PartialsMemoMetrics {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  /// Completed computations whose insert was dropped because the epoch
  /// moved since their lookup, or because another thread filled the key
  /// first.
  uint64_t discarded_inserts = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  uint64_t approx_bytes = 0;
  uint64_t epoch = 0;
};

/// Thread-safe LRU memo. One lock — entries are shared_ptr copies, so the
/// critical sections are pointer moves and list splices, never tree
/// copies or DP work.
class PartialsMemo {
 public:
  explicit PartialsMemo(PartialsMemoOptions options = {});

  PartialsMemo(const PartialsMemo&) = delete;
  PartialsMemo& operator=(const PartialsMemo&) = delete;

  /// Returns the memoized synopsis and marks it most-recently used, or
  /// nullptr on a miss. `epoch_out` (if non-null) receives the epoch
  /// observed under the lock — pass it back to Insert so a rebind between
  /// lookup and insert invalidates the computation.
  PartialPtr Lookup(const std::string& key, uint64_t* epoch_out = nullptr);

  /// Publishes a computed synopsis. Discarded (returns false) if the memo
  /// is disabled, the epoch moved since `epoch_at_lookup`, or the key was
  /// filled meanwhile. Evicts LRU entries over budget.
  bool Insert(const std::string& key, PartialPtr value,
              uint64_t epoch_at_lookup);

  /// Invalidation: clears every entry and advances the epoch so in-flight
  /// inserts against the old generation are discarded.
  void BumpEpoch();

  /// Applies a new sizing configuration (evicting down if it shrank).
  void Configure(const PartialsMemoOptions& options);

  bool enabled() const;
  PartialsMemoMetrics metrics() const;

 private:
  struct Entry {
    std::string key;
    PartialPtr value;
    size_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  void EvictOverBudget() REQUIRES(mu_);

  mutable util::Mutex mu_;
  PartialsMemoOptions options_ GUARDED_BY(mu_);
  /// Front = most recently used.
  LruList lru_ GUARDED_BY(mu_);
  /// Keys view into lru_ (string_view borrows the entry's own key).
  std::unordered_map<std::string_view, LruList::iterator> index_
      GUARDED_BY(mu_);
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
  size_t bytes_ GUARDED_BY(mu_) = 0;
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t inserts_ GUARDED_BY(mu_) = 0;
  uint64_t discarded_inserts_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
};

}  // namespace osum::core

#endif  // OSUM_CORE_PARTIALS_MEMO_H_
