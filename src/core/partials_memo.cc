#include "core/partials_memo.h"

#include <utility>

namespace osum::core {

size_t ApproxPartialBytes(const PartialSynopsis& p) {
  size_t bytes = sizeof(PartialSynopsis);
  bytes += p.os.size() * sizeof(OsNode);
  for (size_t v = 0; v < p.os.size(); ++v) {
    bytes += p.os.node(static_cast<OsNodeId>(v)).children.capacity() *
             sizeof(OsNodeId);
  }
  bytes += p.selection.nodes.capacity() * sizeof(OsNodeId);
  return bytes;
}

PartialsMemo::PartialsMemo(PartialsMemoOptions options)
    : options_(options) {}

PartialPtr PartialsMemo::Lookup(const std::string& key, uint64_t* epoch_out) {
  util::MutexLock lock(mu_);
  if (epoch_out != nullptr) *epoch_out = epoch_;
  if (!options_.enabled) return nullptr;
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

bool PartialsMemo::Insert(const std::string& key, PartialPtr value,
                          uint64_t epoch_at_lookup) {
  if (value == nullptr) return false;
  util::MutexLock lock(mu_);
  if (!options_.enabled) return false;
  if (epoch_at_lookup != epoch_ || index_.count(key) != 0) {
    // Computed against a rebound context, or lost the race to another
    // thread computing the same key — either way the existing state wins.
    ++discarded_inserts_;
    return false;
  }
  size_t bytes = value->approx_bytes;
  lru_.push_front(Entry{key, std::move(value), bytes});
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
  bytes_ += bytes;
  ++inserts_;
  EvictOverBudget();
  return true;
}

void PartialsMemo::BumpEpoch() {
  util::MutexLock lock(mu_);
  ++epoch_;
  index_.clear();
  lru_.clear();
  bytes_ = 0;
}

void PartialsMemo::Configure(const PartialsMemoOptions& options) {
  util::MutexLock lock(mu_);
  options_ = options;
  if (!options_.enabled) {
    index_.clear();
    lru_.clear();
    bytes_ = 0;
    return;
  }
  EvictOverBudget();
}

bool PartialsMemo::enabled() const {
  util::MutexLock lock(mu_);
  return options_.enabled;
}

PartialsMemoMetrics PartialsMemo::metrics() const {
  util::MutexLock lock(mu_);
  PartialsMemoMetrics m;
  m.hits = hits_;
  m.misses = misses_;
  m.inserts = inserts_;
  m.discarded_inserts = discarded_inserts_;
  m.evictions = evictions_;
  m.entries = lru_.size();
  m.approx_bytes = bytes_;
  m.epoch = epoch_;
  return m;
}

void PartialsMemo::EvictOverBudget() {
  // Never evicts the most recent entry: one oversized synopsis may briefly
  // exceed the byte budget, but an insert must not be a self-defeating
  // no-op (mirrors serve::ResultCache).
  while (lru_.size() > 1 && (lru_.size() > options_.max_entries ||
                             bytes_ > options_.max_bytes)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(std::string_view(victim.key));
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace osum::core
