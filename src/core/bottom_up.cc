// Bottom-Up Pruning (Algorithm 2): iteratively remove the current leaf with
// the smallest local importance until only l nodes remain.
#include <algorithm>
#include <queue>
#include <vector>

#include "core/size_l.h"

namespace osum::core {

Selection SizeLBottomUp(const OsTree& os, size_t l, SizeLStats* stats) {
  Selection result;
  if (os.empty() || l == 0) return result;
  const int32_t n = static_cast<int32_t>(os.size());
  uint64_t ops = 0;

  if (static_cast<size_t>(n) <= l) {
    result.nodes.resize(n);
    for (int32_t i = 0; i < n; ++i) result.nodes[i] = i;
    result.importance = os.TotalImportance();
    if (stats != nullptr) stats->operations = 0;
    return result;
  }

  // Min-heap of current leaves by (importance asc, id desc): equal scores
  // prune the later (deeper in BFS order) node first, deterministically.
  struct Entry {
    double importance;
    OsNodeId id;
  };
  struct Cmp {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.importance != b.importance) return a.importance > b.importance;
      return a.id < b.id;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Cmp> pq;

  std::vector<int32_t> live_children(n, 0);
  for (const OsNode& node : os.nodes()) {
    if (node.parent != kNoOsNode) ++live_children[node.parent];
  }
  for (OsNodeId v = 0; v < n; ++v) {
    if (live_children[v] == 0 && v != kOsRoot) {
      pq.push(Entry{os.node(v).local_importance, v});
    }
  }

  std::vector<bool> alive(n, true);
  size_t remaining = static_cast<size_t>(n);
  while (remaining > l) {
    Entry top = pq.top();
    pq.pop();
    ++ops;
    alive[top.id] = false;
    --remaining;
    OsNodeId p = os.node(top.id).parent;
    if (--live_children[p] == 0 && p != kOsRoot) {
      pq.push(Entry{os.node(p).local_importance, p});
      ++ops;
    }
  }

  result.nodes.reserve(l);
  for (OsNodeId v = 0; v < n; ++v) {
    if (alive[v]) result.nodes.push_back(v);
  }
  result.importance = SelectionImportance(os, result.nodes);
  if (stats != nullptr) stats->operations = ops;
  return result;
}

}  // namespace osum::core
