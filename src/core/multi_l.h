// Multi-l computation and the size-l solution-space analysis the paper
// lists as future work (Section 7):
//
//   "it is observed that, in the general case, optimal size-l OSs for
//    different l could be very different. This prevents the incremental
//    computation of a size-l OS from the optimal size-(l-1) OS ... In the
//    future, we plan to experimentally analyze the space of optimal
//    size-l OSs and identify potential similarities among them."
//
// SizeLDpAll amortizes that analysis: one bottom-up knapsack pass already
// holds the optimal value for *every* budget at every node, so the optima
// for all l in [1, max_l] are reconstructed from a single DP table —
// far cheaper than max_l independent runs. AnalyzeLStability quantifies
// the (non-)incrementality: for each l, how much of the optimal size-l OS
// survives in the optimal size-(l+1) OS.
#ifndef OSUM_CORE_MULTI_L_H_
#define OSUM_CORE_MULTI_L_H_

#include <vector>

#include "core/os_tree.h"

namespace osum::core {

/// Optimal size-l OSs for every l in [1, min(max_l, |OS|)], from one DP
/// pass. result[i] is the optimum for l = i + 1; each equals SizeLDp(os,
/// i + 1) in importance (tie-broken identically).
std::vector<Selection> SizeLDpAll(const OsTree& os, size_t max_l);

/// One point of the solution-space analysis.
struct LStabilityPoint {
  size_t l = 0;              // compares optimal size-l vs size-(l+1)
  size_t overlap = 0;        // |S_l ∩ S_{l+1}|
  double overlap_ratio = 0;  // overlap / l
  bool is_incremental = false;  // S_l ⊂ S_{l+1} (overlap == l)
};

/// Compares consecutive optima for l = 1 .. max_l-1.
std::vector<LStabilityPoint> AnalyzeLStability(const OsTree& os,
                                               size_t max_l);

/// Fraction of consecutive steps that were incremental (S_l ⊂ S_{l+1}).
double IncrementalFraction(const std::vector<LStabilityPoint>& points);

/// Automatic l selection by diminishing returns (a second reading of the
/// Section 7 "selection of an appropriate value for l" direction, next to
/// word budgets): grow l while each added tuple still contributes at
/// least `drop_ratio` of the current average importance per tuple, i.e.
/// pick the largest l <= max_l with
///   Im(S_l) - Im(S_{l-1}) >= drop_ratio * Im(S_{l-1}) / (l-1).
/// Computed from one SizeLDpAll pass. Returns at least 1.
size_t ChooseLByMarginalGain(const OsTree& os, size_t max_l,
                             double drop_ratio = 0.25);

}  // namespace osum::core

#endif  // OSUM_CORE_MULTI_L_H_
