// Join back ends for OS generation.
//
// The paper evaluates two ways of materializing an OS (Section 6.3): via a
// precomputed in-memory data graph (fast; 0.2s for a Supplier OS) or
// directly from the database with one SQL statement per join (12.9s). Both
// are modeled here behind a common interface so Algorithms 4 and 5 are
// written once. Each back end reports its logical I/O through util::IoStats.
#ifndef OSUM_CORE_OS_BACKEND_H_
#define OSUM_CORE_OS_BACKEND_H_

#include <vector>

#include "graph/data_graph.h"
#include "graph/link_types.h"
#include "relational/database.h"
#include "util/stats.h"

namespace osum::core {

/// Abstract join provider: fetch the tuples joining to `parent_tuple`
/// through a logical link in a given direction.
///
/// Thread-safety contract: both concrete back ends are immutable after
/// construction apart from the I/O counters, which are atomic. Fetch and
/// FetchTop only read the database / data graph (themselves read-only once
/// built), so one back end instance may serve concurrent queries — the
/// contract search::SearchContext relies on. Implementations adding real
/// mutable state (caches, connections) must synchronize it themselves.
class OsBackend {
 public:
  virtual ~OsBackend() = default;

  virtual const char* name() const = 0;

  /// Full join: all neighbor tuples (Algorithm 5 line 6).
  virtual void Fetch(graph::LinkTypeId link, rel::FkDirection dir,
                     rel::TupleId parent_tuple,
                     std::vector<rel::TupleId>* out) = 0;

  /// Bounded join for Avoidance Condition 2 (Algorithm 4 line 10):
  /// up to `limit` neighbor tuples with global importance strictly greater
  /// than `min_importance`, in descending importance order. Counts one
  /// logical SELECT even when it returns nothing.
  virtual void FetchTop(graph::LinkTypeId link, rel::FkDirection dir,
                        rel::TupleId parent_tuple, size_t limit,
                        double min_importance,
                        std::vector<rel::TupleId>* out) = 0;

  /// Snapshot of the logical I/O issued by this back end since the last
  /// Reset (aggregated across all threads when queries run concurrently).
  util::IoStats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

 protected:
  util::AtomicIoStats stats_;
};

/// In-memory data-graph back end (the paper's fast path). Requires
/// DataGraph::SortNeighborsByImportance for FetchTop.
class DataGraphBackend : public OsBackend {
 public:
  DataGraphBackend(const rel::Database& db, const graph::LinkSchema& links,
                   const graph::DataGraph& graph);

  const char* name() const override { return "data-graph"; }
  void Fetch(graph::LinkTypeId link, rel::FkDirection dir,
             rel::TupleId parent_tuple,
             std::vector<rel::TupleId>* out) override;
  void FetchTop(graph::LinkTypeId link, rel::FkDirection dir,
                rel::TupleId parent_tuple, size_t limit,
                double min_importance,
                std::vector<rel::TupleId>* out) override;

 private:
  const rel::Database& db_;
  const graph::LinkSchema& links_;
  const graph::DataGraph& graph_;
};

/// Database back end: issues one logical SQL statement per join against the
/// relational engine, including a simulated per-statement latency so the
/// data-graph vs database cost ratio of Figure 10(f) is reproducible on an
/// in-process engine (a JDBC/MySQL round-trip is not free even when the
/// buffer pool is warm). The default of 8us/statement lands near the
/// paper's ~65x data-graph advantage. Set `per_select_micros` to 0 to
/// disable.
class DatabaseBackend : public OsBackend {
 public:
  DatabaseBackend(const rel::Database& db, const graph::LinkSchema& links,
                  double per_select_micros = 8.0);

  const char* name() const override { return "database"; }
  void Fetch(graph::LinkTypeId link, rel::FkDirection dir,
             rel::TupleId parent_tuple,
             std::vector<rel::TupleId>* out) override;
  void FetchTop(graph::LinkTypeId link, rel::FkDirection dir,
                rel::TupleId parent_tuple, size_t limit,
                double min_importance,
                std::vector<rel::TupleId>* out) override;

 private:
  void SimulateLatency();

  const rel::Database& db_;
  const graph::LinkSchema& links_;
  double per_select_micros_;
};

}  // namespace osum::core

#endif  // OSUM_CORE_OS_BACKEND_H_
