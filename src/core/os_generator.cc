#include "core/os_generator.h"

#include <cassert>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

namespace osum::core {

namespace {

// Shared BFS state: fields of the current OS node needed while appending
// children (the arena may reallocate during insertion).
struct Frame {
  OsNodeId os_node;
  gds::GdsNodeId gds_node;
  rel::TupleId tuple;
  rel::TupleId grandparent_tuple;  // kInvalidTuple when absent
  int32_t depth;
};

Frame MakeFrame(const OsTree& os, OsNodeId id) {
  const OsNode& n = os.node(id);
  rel::TupleId grand = rel::kInvalidTuple;
  if (n.parent != kNoOsNode) grand = os.node(n.parent).tuple;
  return Frame{id, n.gds_node, n.tuple, grand, n.depth};
}

}  // namespace

OsTree GenerateCompleteOs(const rel::Database& db, const gds::Gds& gds,
                          OsBackend* backend, rel::TupleId tds,
                          const OsGenOptions& options) {
  OsTree os;
  const gds::GdsNode& root_spec = gds.root();
  const rel::Relation& root_rel = db.relation(root_spec.relation);
  os.AddRoot(gds::kGdsRoot, root_spec.relation, tds,
             root_rel.importance(tds) * root_spec.affinity);

  std::deque<OsNodeId> queue{kOsRoot};
  std::vector<rel::TupleId> fetched;
  while (!queue.empty()) {
    Frame cur = MakeFrame(os, queue.front());
    queue.pop_front();
    if (cur.depth >= options.max_depth) continue;
    if (os.size() >= options.max_nodes) break;

    for (gds::GdsNodeId child_spec_id : gds.node(cur.gds_node).children) {
      const gds::GdsNode& spec = gds.node(child_spec_id);
      backend->Fetch(spec.via_link, spec.via_dir, cur.tuple, &fetched);
      const rel::Relation& child_rel = db.relation(spec.relation);
      for (rel::TupleId t : fetched) {
        if (spec.exclude_origin && t == cur.grandparent_tuple) continue;
        OsNodeId id = os.AddChild(cur.os_node, child_spec_id, spec.relation,
                                  t, child_rel.importance(t) * spec.affinity);
        queue.push_back(id);
      }
    }
  }
  return os;
}

OsTree GeneratePrelimOs(const rel::Database& db, const gds::Gds& gds,
                        OsBackend* backend, rel::TupleId tds, size_t l,
                        const OsGenOptions& options, PrelimStats* stats) {
  assert(gds.annotated() &&
         "GeneratePrelimOs requires Gds::AnnotateStatistics");
  OsTree os;
  const gds::GdsNode& root_spec = gds.root();
  const rel::Relation& root_rel = db.relation(root_spec.relation);
  double root_li = root_rel.importance(tds) * root_spec.affinity;
  os.AddRoot(gds::kGdsRoot, root_spec.relation, tds, root_li);

  // top-l PQ: min-heap over the l largest local importances seen so far.
  // largest-l is its minimum once full, else 0 (Algorithm 4 lines 20-23).
  std::priority_queue<double, std::vector<double>, std::greater<>> top_l;
  auto observe = [&](double li) {
    double largest_l = top_l.size() == l ? top_l.top() : 0.0;
    if (top_l.size() < l || li > largest_l) {
      top_l.push(li);
      if (top_l.size() > l) top_l.pop();
    }
  };
  auto largest_l = [&]() { return top_l.size() == l ? top_l.top() : 0.0; };
  observe(root_li);

  std::deque<OsNodeId> queue{kOsRoot};
  std::vector<rel::TupleId> fetched;
  while (!queue.empty()) {
    Frame cur = MakeFrame(os, queue.front());
    queue.pop_front();
    if (cur.depth >= options.max_depth) continue;
    if (os.size() >= options.max_nodes) break;

    for (gds::GdsNodeId child_spec_id : gds.node(cur.gds_node).children) {
      const gds::GdsNode& spec = gds.node(child_spec_id);
      const double cutoff = largest_l();

      // Avoidance Condition 1: the sub-tree rooted at R_i is fruitless —
      // neither R_i's tuples nor any descendant's can beat largest-l.
      // Requires no I/O at all (max/mmax live on the annotated G_DS).
      if (options.prelim_use_ac1 && cutoff >= spec.max_ri &&
          cutoff >= spec.mmax_ri) {
        if (stats != nullptr) ++stats->ac1_subtree_skips;
        continue;
      }

      const rel::Relation& child_rel = db.relation(spec.relation);
      if (options.prelim_use_ac2 && cutoff >= spec.mmax_ri) {
        // Avoidance Condition 2: R_i is fruitful-l — descendants are dead,
        // so only tuples that can enter the top-l matter: TOP l with
        // li > largest-l, i.e. Im > largest-l / Af(R_i).
        // Request one extra when the origin tuple may need filtering.
        size_t limit = l + (spec.exclude_origin ? 1 : 0);
        backend->FetchTop(spec.via_link, spec.via_dir, cur.tuple, limit,
                          cutoff / spec.affinity, &fetched);
        if (stats != nullptr) ++stats->ac2_limited_fetches;
      } else {
        backend->Fetch(spec.via_link, spec.via_dir, cur.tuple, &fetched);
        if (stats != nullptr) ++stats->full_fetches;
      }

      for (rel::TupleId t : fetched) {
        if (spec.exclude_origin && t == cur.grandparent_tuple) continue;
        double li = child_rel.importance(t) * spec.affinity;
        OsNodeId id =
            os.AddChild(cur.os_node, child_spec_id, spec.relation, t, li);
        queue.push_back(id);
        observe(li);
      }
    }
  }
  return os;
}

}  // namespace osum::core
