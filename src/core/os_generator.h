// OS generation: Algorithm 5 (complete OS) and Algorithm 4 (prelim-l OS
// with the two avoidance conditions of Section 5.3).
#ifndef OSUM_CORE_OS_GENERATOR_H_
#define OSUM_CORE_OS_GENERATOR_H_

#include <cstdint>
#include <limits>

#include "core/os_backend.h"
#include "core/os_tree.h"
#include "gds/gds.h"

namespace osum::core {

/// Generation knobs shared by both algorithms.
struct OsGenOptions {
  /// Depth cap. For size-l workloads pass `l - 1`: tuples at distance >= l
  /// from t_DS can never be part of a connected size-l OS (the paper's
  /// footnote 1). Default: unbounded (full OS).
  int32_t max_depth = std::numeric_limits<int32_t>::max();
  /// Safety valve against runaway GDSs: generation stops expanding once
  /// the tree reaches this many nodes.
  size_t max_nodes = 10'000'000;
  /// Ablation switches for Algorithm 4 (ignored by GenerateCompleteOs):
  /// disable Avoidance Condition 1 (fruitless sub-tree skipping) and/or 2
  /// (TOP-l limited fetches) to measure what each contributes.
  bool prelim_use_ac1 = true;
  bool prelim_use_ac2 = true;
};

/// Statistics of a prelim-l generation run (avoidance-condition hits).
struct PrelimStats {
  uint64_t ac1_subtree_skips = 0;   // fruitless G_DS sub-trees avoided
  uint64_t ac2_limited_fetches = 0; // fruitful-l joins served via TOP-l
  uint64_t full_fetches = 0;        // unrestricted joins
};

/// Algorithm 5: breadth-first traversal of the G_DS from t_DS, materializing
/// every joining tuple. The local importance of each node is
/// Im(t) * Af(R_i) (Equation 3).
OsTree GenerateCompleteOs(const rel::Database& db, const gds::Gds& gds,
                          OsBackend* backend, rel::TupleId tds,
                          const OsGenOptions& options = {});

/// Algorithm 4: generates a prelim-l OS — a partial OS guaranteed to
/// contain the l tuples of the complete OS with the largest local
/// importance (Definition 2) — using Avoidance Conditions 1 and 2.
/// Requires Gds::AnnotateStatistics (max/mmax) and importance-sorted access
/// paths in the back end.
OsTree GeneratePrelimOs(const rel::Database& db, const gds::Gds& gds,
                        OsBackend* backend, rel::TupleId tds, size_t l,
                        const OsGenOptions& options = {},
                        PrelimStats* stats = nullptr);

}  // namespace osum::core

#endif  // OSUM_CORE_OS_GENERATOR_H_
