// Bump allocation for the DP hot path.
//
// The size-l DP used to build its tables node-at-a-time through the global
// allocator (a vector-of-vectors per table); profiling showed the hot path
// dominated by allocator traffic, not knapsack arithmetic. Arena replaces
// that with block-granular bump allocation: Reset() rewinds to the start of
// the block list without releasing memory, so a batch of queries driven
// through one arena performs O(1) large allocations total instead of
// O(nodes) small ones per tree.
//
// Deliberately minimal: trivially-destructible element types only (nothing
// is ever destroyed, only rewound), single-threaded (one arena per worker,
// see DpScratch in size_l.h), and instrumented — block_allocations() /
// bytes_reserved() are cumulative, machine-independent counters that
// bench_micro turns into perf-lane gate rows.
#ifndef OSUM_CORE_ARENA_H_
#define OSUM_CORE_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace osum::core {

/// A growable bump allocator over a list of geometrically growing blocks.
/// Allocate() bumps within the current block and falls through to the next
/// (or a fresh, larger) block on overflow; Reset() rewinds to offset zero
/// keeping every block, so steady-state reuse allocates nothing.
class Arena {
 public:
  static constexpr size_t kDefaultFirstBlockBytes = size_t{64} * 1024;

  explicit Arena(size_t first_block_bytes = kDefaultFirstBlockBytes)
      : next_block_bytes_(first_block_bytes > 0 ? first_block_bytes
                                                : kDefaultFirstBlockBytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `count` Ts. The pointer stays valid until
  /// the next Reset(). count == 0 returns a distinct, aligned, dereference-
  /// forbidden pointer (never nullptr) so empty spans need no special case.
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  void* Allocate(size_t bytes, size_t align) {
    // Blocks come from operator new[], so their base satisfies any
    // fundamental alignment; aligning the offset is enough.
    while (true) {
      if (block_ < blocks_.size()) {
        size_t at = AlignUp(offset_, align);
        if (at + bytes <= blocks_[block_].size) {
          offset_ = at + bytes;
          bytes_used_peak_ =
              std::max<uint64_t>(bytes_used_peak_, UsedThroughCurrentBlock());
          return blocks_[block_].data.get() + at;
        }
        // Advance into the next (strictly larger) block; the stranded tail
        // of this one is reclaimed by the next Reset().
        ++block_;
        offset_ = 0;
        continue;
      }
      AddBlock(bytes + align);
    }
  }

  /// Rewinds to the start of the block list; keeps all blocks.
  void Reset() {
    block_ = 0;
    offset_ = 0;
  }

  /// Cumulative count of blocks ever requested from the global allocator
  /// (never decreases, not reset by Reset()). The bench-gated measure of
  /// "large allocations per batch".
  uint64_t block_allocations() const { return blocks_.size(); }

  /// Total bytes currently held across all blocks.
  uint64_t bytes_reserved() const { return bytes_reserved_; }

  /// High-water mark of live bytes handed out between Resets (alignment
  /// padding and stranded block tails included).
  uint64_t bytes_used_peak() const { return bytes_used_peak_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };

  static size_t AlignUp(size_t at, size_t align) {
    return (at + align - 1) & ~(align - 1);
  }

  size_t UsedThroughCurrentBlock() const {
    size_t used = offset_;
    for (size_t b = 0; b < block_; ++b) used += blocks_[b].size;
    return used;
  }

  void AddBlock(size_t min_bytes) {
    size_t size = next_block_bytes_;
    while (size < min_bytes) size *= 2;
    next_block_bytes_ = size * 2;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    bytes_reserved_ += size;
    block_ = blocks_.size() - 1;
    offset_ = 0;
  }

  std::vector<Block> blocks_;
  size_t block_ = 0;   // index of the block being bumped
  size_t offset_ = 0;  // bump offset within blocks_[block_]
  size_t next_block_bytes_;
  uint64_t bytes_reserved_ = 0;
  uint64_t bytes_used_peak_ = 0;
};

}  // namespace osum::core

#endif  // OSUM_CORE_ARENA_H_
