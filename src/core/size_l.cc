#include "core/size_l.h"

namespace osum::core {

const char* AlgorithmName(SizeLAlgorithm a) {
  switch (a) {
    case SizeLAlgorithm::kDp:
      return "DP";
    case SizeLAlgorithm::kDpEnumerate:
      return "DP-Enumerate";
    case SizeLAlgorithm::kBottomUp:
      return "Bottom-Up";
    case SizeLAlgorithm::kTopPath:
      return "Top-Path";
    case SizeLAlgorithm::kTopPathMemo:
      return "Top-Path-Memo";
    case SizeLAlgorithm::kBruteForce:
      return "Brute-Force";
  }
  return "?";
}

Selection RunSizeL(SizeLAlgorithm a, const OsTree& os, size_t l,
                   DpScratch* scratch, SizeLStats* stats) {
  switch (a) {
    case SizeLAlgorithm::kDp:
      return SizeLDp(os, l, scratch, stats);
    case SizeLAlgorithm::kDpEnumerate:
      return SizeLDpEnumerate(os, l, /*op_budget=*/200'000'000, scratch,
                              stats);
    case SizeLAlgorithm::kBottomUp:
      return SizeLBottomUp(os, l, stats);
    case SizeLAlgorithm::kTopPath:
      return SizeLTopPath(os, l, stats);
    case SizeLAlgorithm::kTopPathMemo:
      return SizeLTopPathMemo(os, l, stats);
    case SizeLAlgorithm::kBruteForce:
      return SizeLBruteForce(os, l, stats);
  }
  return {};
}

Selection RunSizeL(SizeLAlgorithm a, const OsTree& os, size_t l,
                   SizeLStats* stats) {
  DpScratch scratch;
  return RunSizeL(a, os, l, &scratch, stats);
}

}  // namespace osum::core
