// Update Top-Path-l (Algorithm 3): repeatedly select the path with the
// largest average importance per tuple AI(p_i), add it to the size-l OS,
// and re-root the children of selected nodes.
//
// Two variants share the selection semantics:
//  * SizeLTopPath     — plain: after each selection the affected subtrees
//    are re-scanned and the global argmax is found by a full O(n) sweep.
//  * SizeLTopPathMemo — the Section 5.2 optimization: each forest root
//    caches its best descendant s(v); roots live in a max-heap, and a path
//    selection only recomputes the subtrees that were actually re-rooted.
// Both produce identical selections (ties broken on smaller node id).
#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

#include "core/size_l.h"

namespace osum::core {

namespace {

// Loop invariants that used to be bare asserts. They can only fire on
// corrupt internal state, but if they ever do, Release builds must fail
// loudly instead of silently returning a garbage selection (same
// discipline as internal::ReconstructDp).
void CheckTopPathInvariant(bool ok, const char* what) {
  if (!ok) throw std::logic_error(what);
}

// Returns the node ids of the path from the root of `x`'s current tree down
// to `x` (top-first). A node's current tree root is its highest unselected
// ancestor — selections always consume root-paths, so unselected ancestors
// of an unselected node are exactly its current tree.
std::vector<OsNodeId> CurrentPath(const OsTree& os,
                                  const std::vector<bool>& selected,
                                  OsNodeId x) {
  std::vector<OsNodeId> path;
  for (OsNodeId v = x; v != kNoOsNode && !selected[v]; v = os.node(v).parent) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

Selection SizeLTopPath(const OsTree& os, size_t l, SizeLStats* stats) {
  Selection result;
  if (os.empty() || l == 0) return result;
  const int32_t n = static_cast<int32_t>(os.size());
  const size_t L = std::min<size_t>(l, os.size());
  uint64_t ops = 0;

  // path_sum/path_len: sum of local importance and node count of the path
  // from the node's *current tree root* to the node, inclusive.
  std::vector<double> path_sum(n);
  std::vector<int32_t> path_len(n);
  for (OsNodeId v = 0; v < n; ++v) {  // BFS order: parent precedes child
    const OsNode& node = os.node(v);
    if (node.parent == kNoOsNode) {
      path_sum[v] = node.local_importance;
      path_len[v] = 1;
    } else {
      path_sum[v] = path_sum[node.parent] + node.local_importance;
      path_len[v] = path_len[node.parent] + 1;
    }
  }

  std::vector<bool> selected(n, false);
  size_t selected_count = 0;

  while (selected_count < L) {
    // Global argmax of AI among unselected nodes; smaller id wins ties.
    OsNodeId best = kNoOsNode;
    double best_ai = -1.0;
    for (OsNodeId v = 0; v < n; ++v) {
      if (selected[v]) continue;
      ++ops;
      double ai = path_sum[v] / static_cast<double>(path_len[v]);
      if (ai > best_ai) {
        best_ai = ai;
        best = v;
      }
    }
    CheckTopPathInvariant(best != kNoOsNode,
                          "SizeLTopPath: no candidate while budget remains");

    std::vector<OsNodeId> path = CurrentPath(os, selected, best);
    size_t take = std::min(path.size(), L - selected_count);
    // Only the first `take` nodes (the top of the path) stay connected to
    // the already-selected part.
    for (size_t i = 0; i < take; ++i) {
      selected[path[i]] = true;
      ++selected_count;
    }

    // Re-root: every unselected child of a newly selected node becomes the
    // root of its own tree; recompute path aggregates in its subtree.
    for (size_t i = 0; i < take; ++i) {
      for (OsNodeId c : os.node(path[i]).children) {
        if (selected[c]) continue;
        // BFS from c with c as path start.
        std::vector<OsNodeId> stack{c};
        path_sum[c] = os.node(c).local_importance;
        path_len[c] = 1;
        while (!stack.empty()) {
          OsNodeId u = stack.back();
          stack.pop_back();
          ++ops;
          for (OsNodeId w : os.node(u).children) {
            if (selected[w]) continue;
            path_sum[w] = path_sum[u] + os.node(w).local_importance;
            path_len[w] = path_len[u] + 1;
            stack.push_back(w);
          }
        }
      }
    }
  }

  for (OsNodeId v = 0; v < n; ++v) {
    if (selected[v]) result.nodes.push_back(v);
  }
  result.importance = SelectionImportance(os, result.nodes);
  if (stats != nullptr) stats->operations = ops;
  return result;
}

Selection SizeLTopPathMemo(const OsTree& os, size_t l, SizeLStats* stats) {
  Selection result;
  if (os.empty() || l == 0) return result;
  const int32_t n = static_cast<int32_t>(os.size());
  const size_t L = std::min<size_t>(l, os.size());
  uint64_t ops = 0;

  std::vector<double> path_sum(n);
  std::vector<int32_t> path_len(n);
  std::vector<bool> selected(n, false);

  // Heap of forest roots keyed by the AI of their best descendant s(v).
  // Entries are invalidated lazily via `root_version`.
  struct Entry {
    double ai;
    OsNodeId best;   // s(v): best descendant in the root's subtree
    OsNodeId root;
    uint64_t version;
  };
  struct Cmp {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.ai != b.ai) return a.ai < b.ai;          // max-heap on AI
      return a.best > b.best;                        // smaller id wins
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Cmp> heap;
  std::vector<uint64_t> root_version(n, 0);
  uint64_t version_counter = 0;

  // (Re)computes path aggregates in the subtree rooted at r (r is a tree
  // root: its path starts at itself) and pushes its best candidate.
  auto root_subtree = [&](OsNodeId r) {
    path_sum[r] = os.node(r).local_importance;
    path_len[r] = 1;
    OsNodeId best = r;
    double best_ai = path_sum[r];
    std::vector<OsNodeId> stack{r};
    while (!stack.empty()) {
      OsNodeId u = stack.back();
      stack.pop_back();
      ++ops;
      for (OsNodeId w : os.node(u).children) {
        if (selected[w]) continue;
        path_sum[w] = path_sum[u] + os.node(w).local_importance;
        path_len[w] = path_len[u] + 1;
        double ai = path_sum[w] / static_cast<double>(path_len[w]);
        double cur_best = best_ai;
        if (ai > cur_best || (ai == cur_best && w < best)) {
          best_ai = ai;
          best = w;
        }
        stack.push_back(w);
      }
    }
    root_version[r] = ++version_counter;
    heap.push(Entry{best_ai, best, r, root_version[r]});
  };

  root_subtree(kOsRoot);
  size_t selected_count = 0;

  while (selected_count < L) {
    CheckTopPathInvariant(
        !heap.empty(), "SizeLTopPathMemo: heap empty while budget remains");
    Entry top = heap.top();
    heap.pop();
    if (selected[top.root] || root_version[top.root] != top.version) {
      continue;  // stale
    }
    std::vector<OsNodeId> path = CurrentPath(os, selected, top.best);
    CheckTopPathInvariant(
        path.front() == top.root,
        "SizeLTopPathMemo: candidate path detached from its root");
    size_t take = std::min(path.size(), L - selected_count);
    for (size_t i = 0; i < take; ++i) {
      selected[path[i]] = true;
      ++selected_count;
    }
    for (size_t i = 0; i < take; ++i) {
      for (OsNodeId c : os.node(path[i]).children) {
        if (!selected[c]) root_subtree(c);
      }
    }
  }

  for (OsNodeId v = 0; v < n; ++v) {
    if (selected[v]) result.nodes.push_back(v);
  }
  result.importance = SelectionImportance(os, result.nodes);
  if (stats != nullptr) stats->operations = ops;
  return result;
}

}  // namespace osum::core
