#include "core/multi_l.h"

#include <algorithm>

#include "core/dp_internal.h"
#include "core/size_l.h"

namespace osum::core {

std::vector<Selection> SizeLDpAll(const OsTree& os, size_t max_l) {
  std::vector<Selection> result;
  if (os.empty() || max_l == 0) return result;
  const size_t L = std::min(max_l, os.size());
  DpScratch scratch;
  internal::DpTables tables = internal::ComputeDpTables(os, L, &scratch);
  result.reserve(L);
  for (size_t l = 1; l <= L; ++l) {
    result.push_back(internal::ReconstructDp(os, tables, l));
  }
  return result;
}

std::vector<LStabilityPoint> AnalyzeLStability(const OsTree& os,
                                               size_t max_l) {
  std::vector<LStabilityPoint> points;
  std::vector<Selection> optima = SizeLDpAll(os, max_l);
  for (size_t i = 0; i + 1 < optima.size(); ++i) {
    const auto& a = optima[i].nodes;      // size l = i + 1, sorted
    const auto& b = optima[i + 1].nodes;  // size l + 1, sorted
    size_t overlap = 0;
    size_t x = 0, y = 0;
    while (x < a.size() && y < b.size()) {
      if (a[x] == b[y]) {
        ++overlap;
        ++x;
        ++y;
      } else if (a[x] < b[y]) {
        ++x;
      } else {
        ++y;
      }
    }
    LStabilityPoint p;
    p.l = i + 1;
    p.overlap = overlap;
    p.overlap_ratio =
        static_cast<double>(overlap) / static_cast<double>(p.l);
    p.is_incremental = overlap == p.l;
    points.push_back(p);
  }
  return points;
}

size_t ChooseLByMarginalGain(const OsTree& os, size_t max_l,
                             double drop_ratio) {
  std::vector<Selection> optima = SizeLDpAll(os, max_l);
  if (optima.empty()) return 0;
  size_t l = 1;
  while (l < optima.size()) {
    double current = optima[l - 1].importance;
    double gain = optima[l].importance - current;
    double average = current / static_cast<double>(l);
    if (gain < drop_ratio * average) break;
    ++l;
  }
  return l;
}

double IncrementalFraction(const std::vector<LStabilityPoint>& points) {
  if (points.empty()) return 0.0;
  size_t incremental = 0;
  for (const LStabilityPoint& p : points) incremental += p.is_incremental;
  return static_cast<double>(incremental) /
         static_cast<double>(points.size());
}

}  // namespace osum::core
