// The Object Summary (OS) tree — the query result unit of the OS keyword
// search paradigm (Section 2.1).
//
// An OS is a tree of tuples: the data-subject tuple t_DS is the root and
// tuples joining to it through the G_DS edges are descendants. Nodes carry
// the *local importance* Im(OS, t_i) = Im(t_i) * Af(t_i) (Equation 3) that
// all size-l algorithms maximize over.
//
// Representation: an index-based arena in BFS order. The BFS-order
// invariant (parent index < child index) is load-bearing — the DP and the
// statistics pass iterate the vector backwards to visit children before
// parents without recursion.
#ifndef OSUM_CORE_OS_TREE_H_
#define OSUM_CORE_OS_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gds/gds.h"
#include "relational/database.h"

namespace osum::core {

/// Index of a node within an OsTree.
using OsNodeId = int32_t;

inline constexpr OsNodeId kOsRoot = 0;
inline constexpr OsNodeId kNoOsNode = -1;

/// One tuple occurrence in an OS. The same database tuple may appear in
/// several OS nodes (a co-author on many papers), by design: the tree
/// replicates context.
struct OsNode {
  OsNodeId parent = kNoOsNode;
  /// The G_DS node that produced this OS node (root node for t_DS).
  gds::GdsNodeId gds_node = gds::kGdsRoot;
  rel::RelationId relation = 0;
  rel::TupleId tuple = 0;
  /// Im(OS, t_i) = Im(t_i) * Af(R_i).
  double local_importance = 0.0;
  int32_t depth = 0;
  std::vector<OsNodeId> children;
};

/// The OS tree arena.
class OsTree {
 public:
  OsTree() = default;

  /// Creates the root node (t_DS). Must be the first insertion.
  OsNodeId AddRoot(gds::GdsNodeId gds_node, rel::RelationId relation,
                   rel::TupleId tuple, double local_importance);

  /// Appends a child; parent must already exist (BFS discipline).
  OsNodeId AddChild(OsNodeId parent, gds::GdsNodeId gds_node,
                    rel::RelationId relation, rel::TupleId tuple,
                    double local_importance);

  bool empty() const { return nodes_.empty(); }
  size_t size() const { return nodes_.size(); }
  const OsNode& node(OsNodeId id) const { return nodes_[id]; }
  const std::vector<OsNode>& nodes() const { return nodes_; }

  /// Sum of local importance over all nodes.
  double TotalImportance() const;

  /// Maximum node depth.
  int32_t MaxDepth() const;

  /// Number of leaf nodes.
  size_t CountLeaves() const;

  /// True when every node's local importance is <= its parent's — the
  /// monotonicity precondition of Lemma 2 / Lemma 3.
  bool IsMonotone() const;

  /// Renders the OS in the paper's Example 4/5 style: one line per tuple,
  /// depth shown as leading dots, "Label: attribute values".
  /// If `selection` is non-null, only listed nodes are rendered (they must
  /// form a connected root-containing subtree).
  std::string Render(const rel::Database& db, const gds::Gds& gds,
                     const std::vector<OsNodeId>* selection = nullptr) const;

 private:
  std::vector<OsNode> nodes_;
};

/// A candidate size-l OS: node ids selected from an OsTree (Definition 1).
struct Selection {
  std::vector<OsNodeId> nodes;  // ascending order
  double importance = 0.0;      // Im(S) = sum of local importances (Eq. 2)
};

/// Validates Definition 1: `sel` contains the root, node ids are unique and
/// in range, and every selected node's parent is selected (connectivity).
bool IsValidSelection(const OsTree& os, const Selection& sel, size_t l);

/// Recomputes Im(S) from the tree (Equation 2).
double SelectionImportance(const OsTree& os, const std::vector<OsNodeId>& nodes);

/// Extracts the selected subtree as a standalone OsTree (BFS order).
OsTree MaterializeSelection(const OsTree& os, const Selection& sel);

}  // namespace osum::core

#endif  // OSUM_CORE_OS_TREE_H_
