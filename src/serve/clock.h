// Injectable time source for the serving layer's cache policies.
//
// Every time-based behavior in serve (entry TTLs, negative-result TTLs,
// the admission filter's sliding window) reads the clock through this
// interface, so tests drive expiry with a FakeClock and zero sleeps: a
// policy that can only be observed by waiting is a policy that cannot be
// model-checked. Production uses the process-wide SystemClock (steady,
// monotonic — wall-clock jumps must not mass-expire a cache).
#ifndef OSUM_SERVE_CLOCK_H_
#define OSUM_SERVE_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace osum::serve {

/// Monotonic microsecond time source. Implementations must be
/// thread-safe: the cache reads the clock under per-shard locks from
/// every serving thread.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Microseconds since an arbitrary fixed origin; never decreases.
  virtual uint64_t NowMicros() const = 0;
};

/// The production clock: std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  uint64_t NowMicros() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Shared instance for the default-constructed cache (the clock is
  /// stateless; one is plenty).
  static std::shared_ptr<const SystemClock> Instance() {
    static std::shared_ptr<const SystemClock> instance =
        std::make_shared<const SystemClock>();
    return instance;
  }
};

/// Test clock: starts at an arbitrary nonzero origin (so "0 micros" never
/// aliases a real timestamp) and only moves when told to. Advancing is
/// atomic and may race with readers — monotonicity is preserved.
class FakeClock : public Clock {
 public:
  explicit FakeClock(uint64_t start_micros = 1'000'000)
      : now_micros_(start_micros) {}

  uint64_t NowMicros() const override {
    return now_micros_.load(std::memory_order_acquire);
  }

  void AdvanceMicros(uint64_t delta) {
    now_micros_.fetch_add(delta, std::memory_order_acq_rel);
  }
  void AdvanceSeconds(uint64_t seconds) {
    AdvanceMicros(seconds * 1'000'000ull);
  }

 private:
  std::atomic<uint64_t> now_micros_;
};

}  // namespace osum::serve

#endif  // OSUM_SERVE_CLOCK_H_
