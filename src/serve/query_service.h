// The async query-serving layer: a frozen SearchContext fronted by a
// thread pool and a stampede-safe result cache.
//
// QueryService is what a production deployment would put between user
// traffic and the engine. The public contract is the api layer's
// request/response pair:
//   - Execute(QueryRequest) -> QueryResponse — cache-aware synchronous
//     query; validation and backend failures come back as typed Status
//     codes, and response.stats reports cache hit/miss, wall time and the
//     cache epoch.
//   - SubmitAsync(QueryRequest) -> future<QueryResponse> — same answer,
//     computed on the service's pool.
//   - SubmitBatchAsync(requests) -> one future per request. Fully async:
//     cache hits resolve immediately, misses fan out over the shared pool,
//     and the submitting thread never blocks — the composition point for
//     an event-loop/RPC front end. Duplicate misses within (and across)
//     batches coalesce onto one computation.
// Every path shares one ResultCache keyed by api::CanonicalQueryKey, so
// skewed workloads — the realistic shape of keyword traffic — collapse
// onto one computation per distinct (keyword set, options) pair.
//
// The string-based overloads (Query / SubmitAsync / Submit / QueryBatch)
// are deprecated shims over the same machinery: they keep the historical
// exception-throwing, ResultPtr-returning contract. QueryBatch is
// reimplemented on top of the per-query-future fan-out and stays
// byte-identical to serial execution.
//
// Lifetime and threading contract:
//   - The service *borrows* its SearchContext; the caller keeps it alive
//     (SizeLSearchEngine::RegisterSubject now throws after BuildIndex
//     precisely so a borrowed context cannot be destroyed under a
//     service). All public methods are thread-safe.
//   - When the context is rebuilt, call RebindContext(new_ctx) BEFORE
//     destroying the old one: it swaps the pointer, bumps the cache
//     epoch, and blocks until every in-flight query still executing
//     against the old context has finished — once it returns, the old
//     context is unreferenced by the service and no result computed
//     against it is ever served, so the caller may destroy it.
//   - Callbacks passed to Submit run on worker threads and must not throw
//     (util::ThreadPool contract). They must not block on QueryBatch or on
//     SubmitBatchAsync futures (a blocked worker can deadlock a fully
//     occupied pool); Execute, Query and SubmitAsync are safe from
//     callbacks.
#ifndef OSUM_SERVE_QUERY_SERVICE_H_
#define OSUM_SERVE_QUERY_SERVICE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/query.h"
#include "search/search_context.h"
#include "serve/clock.h"
#include "serve/metrics.h"
#include "serve/result_cache.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace osum::serve {

/// Overload-control knobs. The service converts each request's relative
/// `deadline_micros` budget into an absolute deadline at admission (via
/// the same injectable Clock the cache policies use) and sheds work that
/// cannot be answered in time — before it ever touches the backend.
struct OverloadOptions {
  /// High watermark on pooled misses (admitted but not yet computing).
  /// When an arriving miss finds this many already pending, the
  /// lowest-budget request (earliest absolute deadline; deadline-less
  /// work has infinite budget and is never the victim over finite-budget
  /// work) is shed with kDeadlineExceeded. 0 = unlimited.
  size_t max_pending_misses = 0;
};

struct ServiceOptions {
  /// Worker threads for the async paths and batch misses. 0 = hardware
  /// concurrency.
  size_t num_threads = 0;
  ResultCacheOptions cache;
  OverloadOptions overload;
  /// Sizing knob for the bound context's per-(subject, l) partials memo
  /// (the finer-grained reuse tier under the result cache; see
  /// core/partials_memo.h). Applied to the context at construction and to
  /// every context passed to RebindContext; nullopt leaves each context's
  /// own configuration untouched.
  std::optional<core::PartialsMemoOptions> partials;
  /// Per-outcome latency reservoir size (most recent samples kept).
  size_t latency_window = 4096;
};

class QueryService {
 public:
  /// `context` must outlive the service (or be swapped out via
  /// RebindContext before it dies).
  explicit QueryService(const search::SearchContext& context,
                        ServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Cache-aware synchronous query — the public contract every other
  /// entry point rides on. Hit: the shared immutable cached result list,
  /// zero-copy. Miss: computes inline (coalescing concurrent misses for
  /// the same key), publishes, returns. Invalid requests and backend
  /// failures come back as non-OK statuses (nothing is cached for
  /// either); result bytes are identical to SearchContext::Query with the
  /// same arguments.
  api::QueryResponse Execute(const api::QueryRequest& request);

  /// Async submission of one request: runs on the service's pool; the
  /// future resolves to the same value Execute would return (it never
  /// carries an exception).
  std::future<api::QueryResponse> SubmitAsync(api::QueryRequest request);

  /// The fully async batch: one future per request, in input order.
  /// Never blocks the submitting thread — cache hits (and invalid
  /// requests) resolve immediately, misses fan out over the shared pool
  /// with duplicates coalesced. Futures are independent: consume them in
  /// any order, or drop them (the computations still populate the cache).
  std::vector<std::future<api::QueryResponse>> SubmitBatchAsync(
      std::vector<api::QueryRequest> requests);

  /// Callback twin of SubmitBatchAsync, for event-loop front ends
  /// (net::Server) that cannot block on futures: identical fan-out —
  /// invalid requests and cache hits are answered inline on the
  /// submitting thread, misses run on the pool with duplicates coalesced
  /// — but each answer is delivered as on_done(index, response) instead
  /// of a future. on_done may therefore run on the submitting thread or
  /// on a worker; it must not throw and must not block on other batched
  /// QueryService calls. Every request is answered exactly once: if the
  /// pool has already stopped (service teardown), the miss is answered
  /// inline with kInternal rather than dropped.
  void SubmitBatch(std::vector<api::QueryRequest> requests,
                   std::function<void(size_t, api::QueryResponse)> on_done);

  /// Deadline-aware SubmitBatch: `deadlines_micros[i]` is the ABSOLUTE
  /// deadline of requests[i] on this service's clock() (0 = none) — the
  /// wire front end stamps `now + request.deadline_micros()` at decode
  /// time, so time spent queued in the front end counts against the
  /// budget. An expired request is answered kDeadlineExceeded at
  /// admission without touching the cache or backend
  /// (metrics().sheds_at_admission); a miss whose deadline expires while
  /// queued behind the pool is answered the same way when dequeued,
  /// before compute (metrics().sheds_at_dequeue). The plain SubmitBatch
  /// overload derives deadlines from each request's relative budget at
  /// entry and forwards here.
  void SubmitBatch(std::vector<api::QueryRequest> requests,
                   std::vector<uint64_t> deadlines_micros,
                   std::function<void(size_t, api::QueryResponse)> on_done);

  /// Blocking batch over SubmitBatchAsync: responses in input order.
  /// Per-request failures are per-response statuses. Must not be called
  /// from a worker callback (see header note).
  std::vector<api::QueryResponse> ExecuteBatch(
      std::vector<api::QueryRequest> requests);

  /// Deprecated shim: cache-aware synchronous query with the historical
  /// contract — backend failures propagate as exceptions. Prefer Execute.
  ResultPtr Query(std::string_view keywords,
                  const search::QueryOptions& options = {});

  /// Deprecated shim: async submission with the historical contract (the
  /// future rethrows query exceptions). Prefer SubmitAsync(QueryRequest).
  std::future<ResultPtr> SubmitAsync(std::string keywords,
                                     search::QueryOptions options = {});

  /// Fire-and-forget: `callback` is invoked on a worker thread with the
  /// result, or with nullptr if the query threw (there is no future to
  /// carry the exception). The callback must not throw and must not block
  /// on other QueryService batched calls.
  void Submit(std::string keywords, search::QueryOptions options,
              std::function<void(ResultPtr)> callback);

  /// Deprecated shim, reimplemented over the per-query-future fan-out:
  /// cache-aware batch, results in input order, byte-identical to serial
  /// execution. Hits are answered inline from the cache; misses run on
  /// the pool (duplicates within the batch coalesce onto one
  /// computation). Blocks until every answer is ready. If any miss
  /// computation throws, the remaining misses still run and the first
  /// exception (in input order) is rethrown on the calling thread. Must
  /// not be called from a worker callback. Prefer ExecuteBatch /
  /// SubmitBatchAsync.
  std::vector<ResultPtr> QueryBatch(std::span<const std::string> queries,
                                    const search::QueryOptions& options = {});

  /// Atomically redirects future queries to `context`, invalidates the
  /// cache, and drains: blocks until every in-flight query still executing
  /// against the previous context has finished. Once this returns, the
  /// previous context is unreferenced by the service and no cached result
  /// computed against it can be served; the caller may then destroy it.
  void RebindContext(const search::SearchContext& context);

  /// Drops cached entries without invalidating (memory relief).
  void ClearCache() { cache_.Clear(); }

  /// Maintenance tick for the cache policy: erases expired entries and
  /// prunes stale doorkeeper sightings (see ResultCache::SweepExpired).
  /// Returns the number of entries erased. Optional — lazy expiry already
  /// guarantees expired entries are never served.
  size_t SweepExpiredCache() { return cache_.SweepExpired(); }

  /// The currently bound context. The reference itself is not pinned —
  /// it stays valid only under the caller's own lifetime coordination
  /// (no concurrent RebindContext-then-destroy).
  const search::SearchContext& context() const {
    util::MutexLock lock(context_mu_);
    return *binding_->ctx;
  }
  size_t num_threads() const { return pool_.size(); }

  /// The time source deadlines are measured against: options.cache.clock,
  /// or the shared SystemClock when none was injected. Front ends stamp
  /// absolute deadlines (`clock()->NowMicros() + budget`) on this clock so
  /// service-side expiry checks compare like with like.
  const std::shared_ptr<const Clock>& clock() const { return clock_; }

  /// Counters + latency reservoir snapshot (see serve/metrics.h).
  Metrics metrics() const;

 private:
  /// The bound context plus the number of queries currently executing
  /// against it (both guarded by context_mu_). Queries pin the binding
  /// for the duration of a compute; RebindContext retires a binding only
  /// after its pins drain to zero, so "the caller may destroy the old
  /// context once RebindContext returns" is safe, not just documented.
  struct Binding {
    const search::SearchContext* ctx = nullptr;
    size_t pins = 0;
  };

  /// RAII pin on the currently bound context: between construction and
  /// destruction the pinned context cannot be retired by RebindContext,
  /// so it is safe to query even while a rebind is in progress.
  class PinnedContext {
   public:
    explicit PinnedContext(QueryService* service);
    ~PinnedContext();
    PinnedContext(const PinnedContext&) = delete;
    PinnedContext& operator=(const PinnedContext&) = delete;
    const search::SearchContext* operator->() const { return binding_->ctx; }

   private:
    QueryService* const service_;
    Binding* binding_;
  };

  /// Fixed-capacity reservoir of the most recent samples (guarded by
  /// latency_mu_); keeps metrics() bounded under sustained traffic.
  struct LatencyRing {
    std::vector<double> samples;
    size_t next = 0;

    void Add(double v, size_t window);
    util::Summary Snapshot() const;
  };

  /// The one cache-aware compute path every entry point rides: hit,
  /// coalesced wait, or inline compute under a context pin. `key` is the
  /// precomputed canonical key (canonicalized exactly once per query —
  /// callers thread it through). Records hit/miss latency on success
  /// (negative answers attributed separately); compute exceptions
  /// propagate (and nothing is recorded or cached).
  ResultPtr ComputeCached(std::string_view keywords,
                          const search::QueryOptions& options,
                          const std::string& key, bool* computed_out);

  /// Status-typed wrapper over ComputeCached for a pre-validated request;
  /// never throws (the future-based paths rely on that).
  api::QueryResponse ExecuteWithKey(const api::QueryRequest& request,
                                    const std::string& key);

  /// One admitted-but-not-started pooled miss. Lives in the pending
  /// registry between admission and dequeue so the watermark shedder can
  /// pick a victim by deadline; all fields are guarded by pending_mu_
  /// (by convention — tickets are shared heap objects, so the analysis
  /// cannot bind their fields to the service's mutex; every access site
  /// is inside a pending_mu_ critical section in this file).
  struct MissTicket {
    uint64_t deadline = 0;  // absolute micros; 0 = no deadline
    bool shed = false;      // victim of a watermark shed (already counted)
    bool in_queue = false;  // registered in deadline_queue_
    std::multimap<uint64_t, std::shared_ptr<MissTicket>>::iterator it;
  };

  /// Why a pooled miss was not computed (BeginMiss result).
  enum class MissGate {
    kProceed,
    kShedByWatermark,   // admission-time victim; counted there
    kExpiredInQueue,    // deadline passed while queued; counts at dequeue
  };

  /// Admission side of the watermark: registers the miss as pending, or
  /// sheds lowest-budget-first when max_pending_misses is hit. Returns
  /// false when the NEW request is the victim (caller answers
  /// kDeadlineExceeded inline); the admission-expiry check is the
  /// caller's, before the cache lookup.
  bool AdmitMiss(uint64_t deadline, std::shared_ptr<MissTicket>* ticket_out)
      EXCLUDES(pending_mu_);

  /// Dequeue side: unregisters the ticket and re-checks the budget.
  MissGate BeginMiss(const std::shared_ptr<MissTicket>& ticket)
      EXCLUDES(pending_mu_);

  /// Rolls back AdmitMiss when the pool rejected the task (teardown).
  void AbandonMiss(const std::shared_ptr<MissTicket>& ticket)
      EXCLUDES(pending_mu_);

  /// The kDeadlineExceeded response for a shed request.
  api::QueryResponse ShedResponse(const char* why);

  void RecordLatency(bool hit, bool negative, double micros)
      EXCLUDES(latency_mu_);

  const ServiceOptions options_;
  const std::shared_ptr<const Clock> clock_;

  /// Pending pooled misses: count of everything admitted-not-started plus
  /// a deadline-ordered index of the deadline-carrying subset (the
  /// watermark shedder's victim queue). Shed counters live here too; all
  /// guarded by pending_mu_.
  mutable util::Mutex pending_mu_;
  size_t pending_misses_ GUARDED_BY(pending_mu_) = 0;
  std::multimap<uint64_t, std::shared_ptr<MissTicket>> deadline_queue_
      GUARDED_BY(pending_mu_);
  uint64_t sheds_at_admission_ GUARDED_BY(pending_mu_) = 0;
  uint64_t sheds_at_dequeue_ GUARDED_BY(pending_mu_) = 0;

  mutable util::Mutex context_mu_;
  mutable util::CondVar context_cv_;  // signaled when pins hit 0
  std::unique_ptr<Binding> binding_ GUARDED_BY(context_mu_)
      PT_GUARDED_BY(context_mu_);

  ResultCache cache_;

  mutable util::Mutex latency_mu_;
  uint64_t queries_ GUARDED_BY(latency_mu_) = 0;
  LatencyRing all_latency_ GUARDED_BY(latency_mu_);
  LatencyRing hit_latency_ GUARDED_BY(latency_mu_);
  LatencyRing negative_hit_latency_ GUARDED_BY(latency_mu_);
  LatencyRing miss_latency_ GUARDED_BY(latency_mu_);

  // Last member on purpose: destroyed first, so the pool drains queued
  // tasks (which touch cache_/context_/latency rings) while the rest of
  // the service is still alive.
  util::ThreadPool pool_;
};

}  // namespace osum::serve

#endif  // OSUM_SERVE_QUERY_SERVICE_H_
