// The async query-serving layer: a frozen SearchContext fronted by a
// thread pool and a stampede-safe result cache.
//
// QueryService is what a production deployment would put between user
// traffic and the engine: callers submit keyword queries and get futures
// (SubmitAsync), fire-and-forget callbacks (Submit), or cache-aware
// synchronous/batched answers (Query / QueryBatch). Every path shares one
// ResultCache keyed by search::CanonicalQueryKey, so skewed workloads —
// the realistic shape of keyword traffic — collapse onto one computation
// per distinct (keyword set, options) pair.
//
// Lifetime and threading contract:
//   - The service *borrows* its SearchContext; the caller keeps it alive
//     (SizeLSearchEngine::RegisterSubject now throws after BuildIndex
//     precisely so a borrowed context cannot be destroyed under a
//     service). All public methods are thread-safe.
//   - When the context is rebuilt, call RebindContext(new_ctx) BEFORE
//     destroying the old one: it swaps the pointer, bumps the cache
//     epoch, and blocks until every in-flight query still executing
//     against the old context has finished — once it returns, the old
//     context is unreferenced by the service and no result computed
//     against it is ever served, so the caller may destroy it.
//   - Callbacks passed to Submit run on worker threads and must not throw
//     (util::ThreadPool contract). They must not call QueryBatch (its
//     blocking fan-in would deadlock a fully occupied pool); Query and
//     SubmitAsync are safe from callbacks.
#ifndef OSUM_SERVE_QUERY_SERVICE_H_
#define OSUM_SERVE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "search/search_context.h"
#include "serve/metrics.h"
#include "serve/result_cache.h"
#include "util/thread_pool.h"

namespace osum::serve {

struct ServiceOptions {
  /// Worker threads for SubmitAsync/Submit/QueryBatch. 0 = hardware
  /// concurrency.
  size_t num_threads = 0;
  ResultCacheOptions cache;
  /// Per-outcome latency reservoir size (most recent samples kept).
  size_t latency_window = 4096;
};

class QueryService {
 public:
  /// `context` must outlive the service (or be swapped out via
  /// RebindContext before it dies).
  explicit QueryService(const search::SearchContext& context,
                        ServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Cache-aware synchronous query — the path every other entry point
  /// rides on. Hit: shared pointer to the cached immutable result list.
  /// Miss: computes inline (coalescing concurrent misses for the same
  /// key), publishes, returns. Results are byte-identical to
  /// SearchContext::Query with the same arguments.
  ResultPtr Query(std::string_view keywords,
                  const search::QueryOptions& options = {});

  /// Async submission: the query runs on the service's pool; the future
  /// resolves to the same value Query would return.
  std::future<ResultPtr> SubmitAsync(std::string keywords,
                                     search::QueryOptions options = {});

  /// Fire-and-forget: `callback` is invoked on a worker thread with the
  /// result, or with nullptr if the query threw (there is no future to
  /// carry the exception). The callback must not throw and must not block
  /// on other QueryService batched calls.
  void Submit(std::string keywords, search::QueryOptions options,
              std::function<void(ResultPtr)> callback);

  /// Cache-aware batch, results in input order: hits are answered inline
  /// from the cache, misses fan out over the pool (duplicates within the
  /// batch coalesce onto one computation). Blocks until every answer is
  /// ready. If any miss computation throws, the remaining misses still run
  /// and the first exception is rethrown on the calling thread. Must not
  /// be called from a worker callback (see header note).
  std::vector<ResultPtr> QueryBatch(std::span<const std::string> queries,
                                    const search::QueryOptions& options = {});

  /// Atomically redirects future queries to `context`, invalidates the
  /// cache, and drains: blocks until every in-flight query still executing
  /// against the previous context has finished. Once this returns, the
  /// previous context is unreferenced by the service and no cached result
  /// computed against it can be served; the caller may then destroy it.
  void RebindContext(const search::SearchContext& context);

  /// Drops cached entries without invalidating (memory relief).
  void ClearCache() { cache_.Clear(); }

  /// The currently bound context. The reference itself is not pinned —
  /// it stays valid only under the caller's own lifetime coordination
  /// (no concurrent RebindContext-then-destroy).
  const search::SearchContext& context() const {
    std::lock_guard<std::mutex> lock(context_mu_);
    return *binding_->ctx;
  }
  size_t num_threads() const { return pool_.size(); }

  /// Counters + latency reservoir snapshot (see serve/metrics.h).
  Metrics metrics() const;

 private:
  /// The bound context plus the number of queries currently executing
  /// against it (both guarded by context_mu_). Queries pin the binding
  /// for the duration of a compute; RebindContext retires a binding only
  /// after its pins drain to zero, so "the caller may destroy the old
  /// context once RebindContext returns" is safe, not just documented.
  struct Binding {
    const search::SearchContext* ctx = nullptr;
    size_t pins = 0;
  };

  /// RAII pin on the currently bound context: between construction and
  /// destruction the pinned context cannot be retired by RebindContext,
  /// so it is safe to query even while a rebind is in progress.
  class PinnedContext {
   public:
    explicit PinnedContext(QueryService* service);
    ~PinnedContext();
    PinnedContext(const PinnedContext&) = delete;
    PinnedContext& operator=(const PinnedContext&) = delete;
    const search::SearchContext* operator->() const { return binding_->ctx; }

   private:
    QueryService* const service_;
    Binding* binding_;
  };

  /// Fixed-capacity reservoir of the most recent samples (guarded by
  /// latency_mu_); keeps metrics() bounded under sustained traffic.
  struct LatencyRing {
    std::vector<double> samples;
    size_t next = 0;

    void Add(double v, size_t window);
    util::Summary Snapshot() const;
  };

  void RecordLatency(bool hit, double micros);

  const ServiceOptions options_;

  mutable std::mutex context_mu_;
  mutable std::condition_variable context_cv_;  // signaled when pins hit 0
  std::unique_ptr<Binding> binding_;

  ResultCache cache_;

  mutable std::mutex latency_mu_;
  uint64_t queries_ = 0;
  LatencyRing all_latency_;
  LatencyRing hit_latency_;
  LatencyRing miss_latency_;

  // Last member on purpose: destroyed first, so the pool drains queued
  // tasks (which touch cache_/context_/latency rings) while the rest of
  // the service is still alive.
  util::ThreadPool pool_;
};

}  // namespace osum::serve

#endif  // OSUM_SERVE_QUERY_SERVICE_H_
