#include "serve/metrics.h"

#include <cstdio>

namespace osum::serve {

std::string FormatMetricsReport(const Metrics& m) {
  char buf[256];
  std::string out;
  auto append = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  append("queries %llu | hits %llu (%llu negative), misses %llu, "
         "coalesced %llu | entries %llu (~%llu bytes), evictions %llu, "
         "epoch %llu\n",
         static_cast<unsigned long long>(m.queries),
         static_cast<unsigned long long>(m.cache.hits),
         static_cast<unsigned long long>(m.cache.negative_hits),
         static_cast<unsigned long long>(m.cache.misses),
         static_cast<unsigned long long>(m.cache.coalesced_waits),
         static_cast<unsigned long long>(m.cache.entries),
         static_cast<unsigned long long>(m.cache.approx_bytes),
         static_cast<unsigned long long>(m.cache.evictions),
         static_cast<unsigned long long>(m.cache.epoch));
  append("policy: admission rejects %llu (%llu tracked), ttl expiries "
         "%llu positive + %llu negative\n",
         static_cast<unsigned long long>(m.cache.admission_rejects),
         static_cast<unsigned long long>(m.cache.tracked_sightings),
         static_cast<unsigned long long>(m.cache.ttl_expiries),
         static_cast<unsigned long long>(m.cache.negative_ttl_expiries));
  append("overload: sheds %llu at admission + %llu at dequeue, "
         "%llu misses pending\n",
         static_cast<unsigned long long>(m.sheds_at_admission),
         static_cast<unsigned long long>(m.sheds_at_dequeue),
         static_cast<unsigned long long>(m.pending_misses));
  append("partials: hits %llu, misses %llu, inserts %llu "
         "(%llu discarded), evictions %llu | entries %llu (~%llu bytes), "
         "epoch %llu\n",
         static_cast<unsigned long long>(m.partials.hits),
         static_cast<unsigned long long>(m.partials.misses),
         static_cast<unsigned long long>(m.partials.inserts),
         static_cast<unsigned long long>(m.partials.discarded_inserts),
         static_cast<unsigned long long>(m.partials.evictions),
         static_cast<unsigned long long>(m.partials.entries),
         static_cast<unsigned long long>(m.partials.approx_bytes),
         static_cast<unsigned long long>(m.partials.epoch));
  auto line = [&](const char* label, const util::Summary& s) {
    if (s.count() == 0) {
      append("  %-12s (no samples)\n", label);
    } else {
      append("  %-12s p50 %.1f us, p99 %.1f us, max %.1f us\n", label,
             s.Percentile(50.0), s.Percentile(99.0), s.Max());
    }
  };
  line("latency", m.latency_us);
  line("  hits", m.hit_latency_us);
  line("  neg hits", m.negative_hit_latency_us);
  line("  misses", m.miss_latency_us);
  return out;
}

}  // namespace osum::serve
