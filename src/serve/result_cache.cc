#include "serve/result_cache.h"

#include <bit>
#include <utility>

namespace osum::serve {
namespace {

// Entry-count / byte budgets are per shard; give every shard at least
// room for one entry so a cache is never vacuously empty.
size_t PerShard(size_t total, size_t shards) {
  size_t per = total / shards;
  return per == 0 ? 1 : per;
}

}  // namespace

size_t ApproxResultBytes(const std::vector<search::QueryResult>& results) {
  size_t bytes = sizeof(CachedResult) +
                 results.capacity() * sizeof(search::QueryResult);
  for (const search::QueryResult& r : results) {
    bytes += r.os.size() * sizeof(core::OsNode);
    for (const core::OsNode& n : r.os.nodes()) {
      bytes += n.children.size() * sizeof(core::OsNodeId);
    }
    bytes += r.selection.nodes.size() * sizeof(core::OsNodeId);
  }
  return bytes;
}

ResultCache::ResultCache(ResultCacheOptions options)
    : num_shards_(std::bit_ceil(std::max<size_t>(options.num_shards, 1))),
      max_entries_per_shard_(PerShard(std::max<size_t>(options.max_entries, 1),
                                      num_shards_)),
      max_bytes_per_shard_(PerShard(std::max<size_t>(options.max_bytes, 1),
                                    num_shards_)) {
  shards_.reserve(num_shards_);
  for (size_t i = 0; i < num_shards_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string ResultCache::InternalKey(uint64_t epoch,
                                     const std::string& key) const {
  // 0x1d separates the epoch prefix from the caller key (which itself uses
  // only 0x1e/0x1f as separators, see search::CanonicalQueryKey).
  std::string ikey = std::to_string(epoch);
  ikey += '\x1d';
  ikey += key;
  return ikey;
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& internal_key) {
  size_t h = std::hash<std::string_view>{}(internal_key);
  return *shards_[h & (num_shards_ - 1)];
}

void ResultCache::EvictOverBudget(Shard* shard) {
  while (shard->lru.size() > 1 &&
         (shard->lru.size() > max_entries_per_shard_ ||
          shard->bytes > max_bytes_per_shard_)) {
    const Entry& victim = shard->lru.back();
    shard->bytes -= victim.bytes;
    shard->map.erase(std::string_view(victim.key));
    shard->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

ResultPtr ResultCache::Lookup(const std::string& key) {
  std::string ikey = InternalKey(epoch(), key);
  Shard& shard = ShardFor(ikey);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(std::string_view(ikey));
  if (it == shard.map.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

ResultPtr ResultCache::GetOrCompute(
    const std::string& key, const std::function<CachedResult()>& compute) {
  const uint64_t epoch_at_start = epoch();
  std::string ikey = InternalKey(epoch_at_start, key);
  Shard& shard = ShardFor(ikey);

  std::shared_ptr<std::promise<ResultPtr>> promise;
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    auto it = shard.map.find(std::string_view(ikey));
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->value;
    }
    auto inflight = shard.inflight.find(ikey);
    if (inflight != shard.inflight.end()) {
      // Someone else is computing this key right now; wait for their
      // result outside the lock. The computing thread is guaranteed to be
      // actively running `compute` (it is never queued), so this wait
      // always makes progress even from thread-pool workers.
      std::shared_future<ResultPtr> future = inflight->second;
      coalesced_waits_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      return future.get();
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    promise = std::make_shared<std::promise<ResultPtr>>();
    shard.inflight.emplace(ikey, promise->get_future().share());
  }

  ResultPtr value;
  try {
    value = std::make_shared<const CachedResult>(compute());
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.inflight.erase(ikey);
    }
    promise->set_exception(std::current_exception());
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.inflight.erase(ikey);
    // Publish only if the epoch still matches (a context rebuild must not
    // resurrect results computed against the old context) and nobody
    // filled the key meanwhile (cannot normally happen — coalescing — but
    // cheap to keep watertight).
    if (epoch_.load(std::memory_order_acquire) == epoch_at_start &&
        shard.map.find(std::string_view(ikey)) == shard.map.end()) {
      size_t entry_bytes = value->approx_bytes + ikey.size();
      shard.lru.push_front(Entry{std::move(ikey), value, entry_bytes});
      shard.map.emplace(std::string_view(shard.lru.front().key),
                        shard.lru.begin());
      shard.bytes += entry_bytes;
      EvictOverBudget(&shard);
    } else {
      discarded_inserts_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  promise->set_value(value);
  return value;
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
}

uint64_t ResultCache::BumpEpoch() {
  uint64_t next = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Old-epoch entries are unreachable already (epoch-prefixed keys); the
  // clear releases their memory.
  Clear();
  return next;
}

CacheMetrics ResultCache::metrics() const {
  CacheMetrics m;
  m.hits = hits_.load(std::memory_order_relaxed);
  m.misses = misses_.load(std::memory_order_relaxed);
  m.coalesced_waits = coalesced_waits_.load(std::memory_order_relaxed);
  m.evictions = evictions_.load(std::memory_order_relaxed);
  m.discarded_inserts = discarded_inserts_.load(std::memory_order_relaxed);
  m.epoch = epoch();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    m.entries += shard->lru.size();
    m.approx_bytes += shard->bytes;
  }
  return m;
}

}  // namespace osum::serve
