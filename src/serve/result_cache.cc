#include "serve/result_cache.h"

#include <algorithm>
#include <bit>
#include <optional>
#include <utility>

#include "util/mutex.h"

namespace osum::serve {
namespace {

// Entry-count / byte budgets are per shard; give every shard at least
// room for one entry so a cache is never vacuously empty.
size_t PerShard(size_t total, size_t shards) {
  size_t per = total / shards;
  return per == 0 ? 1 : per;
}

}  // namespace

size_t ApproxResultBytes(const std::vector<search::QueryResult>& results) {
  size_t bytes = sizeof(CachedResult) +
                 results.capacity() * sizeof(search::QueryResult);
  for (const search::QueryResult& r : results) {
    bytes += r.os.size() * sizeof(core::OsNode);
    for (const core::OsNode& n : r.os.nodes()) {
      bytes += n.children.size() * sizeof(core::OsNodeId);
    }
    bytes += r.selection.nodes.size() * sizeof(core::OsNodeId);
  }
  return bytes;
}

ResultCache::ResultCache(ResultCacheOptions options)
    : num_shards_(std::bit_ceil(std::max<size_t>(options.num_shards, 1))),
      max_entries_per_shard_(PerShard(std::max<size_t>(options.max_entries, 1),
                                      num_shards_)),
      max_bytes_per_shard_(PerShard(std::max<size_t>(options.max_bytes, 1),
                                    num_shards_)),
      policy_(options.policy),
      max_tracked_per_shard_(
          options.policy.admission_max_tracked != 0
              ? options.policy.admission_max_tracked
              : std::max<size_t>(8 * max_entries_per_shard_, 64)),
      clock_(options.clock != nullptr ? std::move(options.clock)
                                      : SystemClock::Instance()) {
  shards_.reserve(num_shards_);
  for (size_t i = 0; i < num_shards_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string ResultCache::InternalKey(uint64_t epoch,
                                     const std::string& key) const {
  // 0x1d separates the epoch prefix from the caller key (which itself uses
  // only 0x1e/0x1f as separators, see search::CanonicalQueryKey).
  std::string ikey = std::to_string(epoch);
  ikey += '\x1d';
  ikey += key;
  return ikey;
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& internal_key) {
  size_t h = std::hash<std::string_view>{}(internal_key);
  return *shards_[h & (num_shards_ - 1)];
}

void ResultCache::EvictOverBudget(Shard* shard) {
  while (shard->lru.size() > 1 &&
         (shard->lru.size() > max_entries_per_shard_ ||
          shard->bytes > max_bytes_per_shard_)) {
    const Entry& victim = shard->lru.back();
    shard->bytes -= victim.bytes;
    shard->map.erase(std::string_view(victim.key));
    shard->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ResultCache::EraseIfExpired(Shard* shard, Lru::iterator it) {
  // Deadline check before the clock read: in the default no-TTL
  // configuration every entry has deadline 0 and the hot hit path never
  // pays a steady_clock call under the shard lock.
  if (it->deadline == 0) return false;
  return EraseExpiredAt(shard, it, clock_->NowMicros());
}

bool ResultCache::EraseExpiredAt(Shard* shard, Lru::iterator it,
                                 uint64_t now) {
  if (it->deadline == 0 || now < it->deadline) return false;
  (it->value->negative() ? negative_ttl_expiries_ : ttl_expiries_)
      .fetch_add(1, std::memory_order_relaxed);
  // An expired key already proved itself cache-worthy (it was admitted
  // once); leave a sighting so its first recompute re-admits immediately.
  // Without this, admission+TTL together would doorkeeper-reject every
  // hot key once per TTL period, doubling the expensive misses the cache
  // exists to amortize. (LRU evictions deliberately do NOT get this:
  // budget pressure means the key must re-earn its slot.)
  if (policy_.admission_enabled) RecordSighting(shard, it->key, now);
  shard->bytes -= it->bytes;
  shard->map.erase(std::string_view(it->key));
  shard->lru.erase(it);
  return true;
}

void ResultCache::RecordSighting(Shard* shard, const std::string& ikey,
                                 uint64_t now) {
  auto it = shard->sighting_map.find(std::string_view(ikey));
  if (it != shard->sighting_map.end()) {
    it->second->seen_micros = now;
    shard->sightings.splice(shard->sightings.begin(), shard->sightings,
                            it->second);
    return;
  }
  shard->sightings.push_front(Sighting{ikey, now});
  shard->sighting_map.emplace(std::string_view(shard->sightings.front().key),
                              shard->sightings.begin());
  if (shard->sightings.size() > max_tracked_per_shard_) {
    shard->sighting_map.erase(std::string_view(shard->sightings.back().key));
    shard->sightings.pop_back();
  }
}

bool ResultCache::AdmitOrRecordSighting(Shard* shard, const std::string& ikey,
                                        uint64_t now) {
  if (!policy_.admission_enabled) return true;
  auto it = shard->sighting_map.find(std::string_view(ikey));
  if (it != shard->sighting_map.end() &&
      (policy_.admission_window_micros == 0 ||  // 0 = sightings never age
       now < it->second->seen_micros + policy_.admission_window_micros)) {
    // Second sighting within the window: admit, consuming the record.
    // (Map entry first: its string_view key aliases the list node.)
    SightingList::iterator sighting = it->second;
    shard->sighting_map.erase(it);
    shard->sightings.erase(sighting);
    return true;
  }
  // First sighting, or one that aged out of the window: record/refresh
  // and reject.
  RecordSighting(shard, ikey, now);
  return false;
}

uint64_t ResultCache::DeadlineFor(const CachedResult& value,
                                  uint64_t now) const {
  uint64_t ttl =
      value.negative() ? policy_.negative_ttl_micros : policy_.ttl_micros;
  return ttl == 0 ? 0 : now + ttl;
}

ResultPtr ResultCache::Lookup(const std::string& key) {
  std::string ikey = InternalKey(epoch(), key);
  Shard& shard = ShardFor(ikey);
  util::MutexLock lock(shard.mu);
  auto it = shard.map.find(std::string_view(ikey));
  if (it == shard.map.end()) return nullptr;
  if (EraseIfExpired(&shard, it->second)) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (it->second->value->negative()) {
    negative_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second->value;
}

ResultPtr ResultCache::GetOrCompute(
    const std::string& key, const std::function<CachedResult()>& compute) {
  const uint64_t epoch_at_start = epoch();
  std::string ikey = InternalKey(epoch_at_start, key);
  Shard& shard = ShardFor(ikey);

  std::shared_ptr<std::promise<ResultPtr>> promise;
  // Set inside the lock scope, waited on after it: the coalesced path must
  // block outside the shard lock, and a scoped MutexLock (unlike the old
  // hand-unlocked unique_lock) makes that ordering structural.
  std::optional<std::shared_future<ResultPtr>> wait_on;
  {
    util::MutexLock lock(shard.mu);
    auto it = shard.map.find(std::string_view(ikey));
    if (it != shard.map.end() &&
        !EraseIfExpired(&shard, it->second)) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (it->second->value->negative()) {
        negative_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      return it->second->value;
    }
    // Either never cached or just lazily expired — both are misses, and
    // both coalesce onto whoever computes the key first.
    auto inflight = shard.inflight.find(ikey);
    if (inflight != shard.inflight.end()) {
      // Someone else is computing this key right now; wait for their
      // result outside the lock. The computing thread is guaranteed to be
      // actively running `compute` (it is never queued), so this wait
      // always makes progress even from thread-pool workers.
      coalesced_waits_.fetch_add(1, std::memory_order_relaxed);
      wait_on = inflight->second;
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      promise = std::make_shared<std::promise<ResultPtr>>();
      shard.inflight.emplace(ikey, promise->get_future().share());
    }
  }
  if (wait_on) return wait_on->get();

  ResultPtr value;
  try {
    value = std::make_shared<const CachedResult>(compute());
  } catch (...) {
    {
      util::MutexLock lock(shard.mu);
      shard.inflight.erase(ikey);
    }
    promise->set_exception(std::current_exception());
    throw;
  }

  {
    util::MutexLock lock(shard.mu);
    shard.inflight.erase(ikey);
    // Publish only if the epoch still matches (a context rebuild must not
    // resurrect results computed against the old context), nobody filled
    // the key meanwhile (cannot normally happen — coalescing — but cheap
    // to keep watertight), and the admission policy accepts the key (a
    // first-sighted key is recorded, returned, and not cached).
    if (epoch_.load(std::memory_order_acquire) != epoch_at_start ||
        shard.map.find(std::string_view(ikey)) != shard.map.end()) {
      discarded_inserts_.fetch_add(1, std::memory_order_relaxed);
    } else {
      uint64_t now = clock_->NowMicros();
      if (!AdmitOrRecordSighting(&shard, ikey, now)) {
        admission_rejects_.fetch_add(1, std::memory_order_relaxed);
      } else {
        size_t entry_bytes = value->approx_bytes + ikey.size();
        uint64_t deadline = DeadlineFor(*value, now);
        shard.lru.push_front(
            Entry{std::move(ikey), value, entry_bytes, deadline});
        shard.map.emplace(std::string_view(shard.lru.front().key),
                          shard.lru.begin());
        shard.bytes += entry_bytes;
        EvictOverBudget(&shard);
      }
    }
  }
  promise->set_value(value);
  return value;
}

size_t ResultCache::SweepExpired() {
  size_t swept = 0;
  for (auto& shard_ptr : shards_) {
    // A reference local keeps the held capability (`shard.mu`) and the
    // helpers' REQUIRES(shard->mu) textually identical for the analysis.
    Shard& shard = *shard_ptr;
    util::MutexLock lock(shard.mu);
    uint64_t now = clock_->NowMicros();
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      auto next = std::next(it);
      // Reuse the one clock read for the whole shard — a full sweep must
      // not pay a steady_clock call per entry under the lock.
      if (EraseExpiredAt(&shard, it, now)) ++swept;
      it = next;
    }
    // Sightings age out back-to-front: the list is ordered by recording
    // time, so pruning stops at the first still-in-window record. A zero
    // window means sightings never age (only the cap bounds them).
    while (policy_.admission_window_micros != 0 && !shard.sightings.empty() &&
           now >= shard.sightings.back().seen_micros +
                      policy_.admission_window_micros) {
      shard.sighting_map.erase(std::string_view(shard.sightings.back().key));
      shard.sightings.pop_back();
    }
  }
  return swept;
}

void ResultCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    util::MutexLock lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
}

uint64_t ResultCache::BumpEpoch() {
  uint64_t next = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Old-epoch entries are unreachable already (epoch-prefixed keys); the
  // clear releases their memory. Old-epoch sightings are likewise
  // unreachable and age out via the cap and SweepExpired.
  Clear();
  return next;
}

CacheMetrics ResultCache::metrics() const {
  CacheMetrics m;
  m.hits = hits_.load(std::memory_order_relaxed);
  m.negative_hits = negative_hits_.load(std::memory_order_relaxed);
  m.misses = misses_.load(std::memory_order_relaxed);
  m.coalesced_waits = coalesced_waits_.load(std::memory_order_relaxed);
  m.evictions = evictions_.load(std::memory_order_relaxed);
  m.discarded_inserts = discarded_inserts_.load(std::memory_order_relaxed);
  m.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  m.ttl_expiries = ttl_expiries_.load(std::memory_order_relaxed);
  m.negative_ttl_expiries =
      negative_ttl_expiries_.load(std::memory_order_relaxed);
  m.epoch = epoch();
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    util::MutexLock lock(shard.mu);
    m.entries += shard.lru.size();
    m.approx_bytes += shard.bytes;
    m.tracked_sightings += shard.sightings.size();
  }
  return m;
}

}  // namespace osum::serve
