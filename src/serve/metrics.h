// Observability snapshots for the serving layer.
//
// Counters answer "is the cache earning its memory?" (hit rate, coalesced
// stampedes, eviction pressure) and the latency summaries answer "what do
// callers actually experience?" — split by hit/miss because the two
// populations differ by orders of magnitude (a hit is a mutex + pointer
// copy; a miss is full OS generation, ~65x more expensive still on the
// database back end, paper Figure 10(f)).
#ifndef OSUM_SERVE_METRICS_H_
#define OSUM_SERVE_METRICS_H_

#include <cstdint>

#include "util/stats.h"

namespace osum::serve {

/// Point-in-time counters of one ResultCache. Monotonic except
/// entries/bytes (current occupancy) and epoch.
struct CacheMetrics {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Lookups that found another thread already computing the same key and
  /// waited for its result instead of recomputing (stampede protection).
  uint64_t coalesced_waits = 0;
  uint64_t evictions = 0;
  /// Completed computations whose insert was discarded because the epoch
  /// moved (context rebuilt) or the key was already filled meanwhile.
  uint64_t discarded_inserts = 0;
  /// Current occupancy.
  uint64_t entries = 0;
  uint64_t approx_bytes = 0;
  /// Invalidation epoch (bumped by ResultCache::BumpEpoch).
  uint64_t epoch = 0;
};

/// Snapshot of one QueryService: cache counters + per-query wall latency
/// (microseconds) observed at the service boundary, overall and split by
/// cache outcome. Latency summaries are bounded reservoirs (most recent
/// samples), so Percentile stays O(window log window).
struct Metrics {
  CacheMetrics cache;
  uint64_t queries = 0;
  util::Summary latency_us;       // all queries
  util::Summary hit_latency_us;   // served from cache (incl. coalesced)
  util::Summary miss_latency_us;  // computed by this call
};

}  // namespace osum::serve

#endif  // OSUM_SERVE_METRICS_H_
