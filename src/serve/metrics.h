// Observability snapshots for the serving layer.
//
// Counters answer "is the cache earning its memory?" (hit rate, coalesced
// stampedes, eviction pressure, admission rejects, TTL expiries) and the
// latency summaries answer "what do callers actually experience?" — split
// by hit/miss because the two populations differ by orders of magnitude (a
// hit is a mutex + pointer copy; a miss is full OS generation, ~65x more
// expensive still on the database back end, paper Figure 10(f)), with
// negative hits attributed separately so "we answer 'no results' fast" is
// distinguishable from "we answer real results fast".
#ifndef OSUM_SERVE_METRICS_H_
#define OSUM_SERVE_METRICS_H_

#include <cstdint>
#include <string>

#include "core/partials_memo.h"
#include "util/stats.h"

namespace osum::serve {

/// Point-in-time counters of one ResultCache. Monotonic except
/// entries/bytes/tracked_sightings (current occupancy) and epoch.
struct CacheMetrics {
  uint64_t hits = 0;
  /// The subset of hits whose cached value was a negative (OK-empty)
  /// answer — the entries the negative TTL governs.
  uint64_t negative_hits = 0;
  uint64_t misses = 0;
  /// Lookups that found another thread already computing the same key and
  /// waited for its result instead of recomputing (stampede protection).
  uint64_t coalesced_waits = 0;
  uint64_t evictions = 0;
  /// Completed computations whose insert was discarded because the epoch
  /// moved (context rebuilt) or the key was already filled meanwhile.
  uint64_t discarded_inserts = 0;
  /// Computed results the doorkeeper declined to cache (first sighting
  /// within the admission window — the long-tail filter at work).
  uint64_t admission_rejects = 0;
  /// Positive entries erased because their TTL elapsed (lazily or by
  /// SweepExpired).
  uint64_t ttl_expiries = 0;
  /// Negative (OK-empty) entries erased because the negative TTL elapsed.
  uint64_t negative_ttl_expiries = 0;
  /// Current occupancy.
  uint64_t entries = 0;
  uint64_t approx_bytes = 0;
  /// Doorkeeper sightings currently remembered (admission bookkeeping).
  uint64_t tracked_sightings = 0;
  /// Invalidation epoch (bumped by ResultCache::BumpEpoch).
  uint64_t epoch = 0;
};

/// Snapshot of one QueryService: cache counters + per-query wall latency
/// (microseconds) observed at the service boundary, overall and split by
/// cache outcome. Latency summaries are bounded reservoirs (most recent
/// samples), so Percentile stays O(window log window).
struct Metrics {
  CacheMetrics cache;
  /// The bound context's per-(subject, l) partials memo — the reuse tier
  /// under the result cache (core/partials_memo.h). Context-owned, not
  /// service-owned: rebinds swap which memo is being reported.
  core::PartialsMemoMetrics partials;
  uint64_t queries = 0;
  /// Overload control (see OverloadOptions): requests answered
  /// kDeadlineExceeded at admission — budget already spent on arrival, or
  /// evicted lowest-budget-first by the pending-miss watermark — and at
  /// dequeue (budget expired while queued behind the pool). Neither ever
  /// touched the backend.
  uint64_t sheds_at_admission = 0;
  uint64_t sheds_at_dequeue = 0;
  /// Pooled misses admitted but not yet computing (current occupancy —
  /// the quantity the watermark bounds).
  uint64_t pending_misses = 0;
  util::Summary latency_us;           // all queries
  util::Summary hit_latency_us;       // served from cache (incl. coalesced)
  util::Summary negative_hit_latency_us;  // hits that were OK-empty answers
  util::Summary miss_latency_us;      // computed by this call
};

/// The human-readable snapshot `osum_cli metrics` prints — one counters
/// line, one policy line, then per-outcome latency percentiles. Lives in
/// the library (not the CLI) so its shape is pinned by a unit test.
std::string FormatMetricsReport(const Metrics& m);

}  // namespace osum::serve

#endif  // OSUM_SERVE_METRICS_H_
