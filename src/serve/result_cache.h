// Sharded, stampede-safe LRU cache of ranked query results.
//
// The serving-layer answer to skewed keyword workloads: whole ranked result
// lists are cached behind canonical (keyword set, options) keys
// (search::CanonicalQueryKey), so a repeated query costs a mutex + a
// shared_ptr copy instead of OS generation + size-l computation — on the
// database back end a ~65x-amplified saving (paper Figure 10(f)). Design:
//   - Values are immutable shared_ptr<const CachedResult>: a hit hands the
//     caller a reference into the cache that stays valid after eviction,
//     so no copying and no lifetime coupling.
//   - Shards (power of two, independently mutexed) keep the hot path
//     contention-free; keys are partitioned by hash, LRU order and budgets
//     are per shard.
//   - Capacity is bounded twice: entry count and approximate bytes
//     (CachedResult::approx_bytes + key size). Either limit evicts from
//     the shard's LRU tail. The entry just inserted is never evicted by
//     its own insert, so one oversized result can transiently exceed the
//     byte budget (and is then evicted by the next insert).
//   - Stampede protection: concurrent GetOrCompute misses for one key
//     coalesce onto a single computation via a per-key in-flight
//     shared_future. The computing caller runs `compute` inline on its own
//     thread (never queued), so waiters can always make progress — safe
//     even when every waiter is a thread-pool worker.
//   - Invalidation: Clear drops memory; BumpEpoch is the correctness
//     barrier for context rebuilds. Internal keys are epoch-prefixed, so
//     post-bump lookups can never see pre-bump values or join pre-bump
//     in-flight computations; completed stale computations are discarded
//     at insert time. After BumpEpoch returns, no value produced under an
//     older epoch is ever served.
#ifndef OSUM_SERVE_RESULT_CACHE_H_
#define OSUM_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "search/search_context.h"
#include "serve/metrics.h"

namespace osum::serve {

/// One immutable cached answer: the ranked result list plus its estimated
/// heap footprint (what the byte budget charges).
struct CachedResult {
  std::vector<search::QueryResult> results;
  size_t approx_bytes = 0;
};

/// How results travel through the serving layer: shared, const, detached
/// from the cache's own lifetime bookkeeping.
using ResultPtr = std::shared_ptr<const CachedResult>;

/// Conservative heap-footprint estimate of a result list (QueryResult
/// shells + OS node arenas + children lists + selections), for
/// CachedResult::approx_bytes.
size_t ApproxResultBytes(const std::vector<search::QueryResult>& results);

struct ResultCacheOptions {
  /// Rounded up to a power of two; minimum 1. Use 1 in tests that assert
  /// global LRU order.
  size_t num_shards = 8;
  /// Whole-cache entry cap, split evenly across shards (minimum 1 each).
  size_t max_entries = 1024;
  /// Whole-cache approximate-byte cap, split evenly across shards.
  size_t max_bytes = 64ull << 20;
};

class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});

  // Shards hold mutexes and in-flight futures; the cache is a fixture, not
  // a value.
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The serving hot path. Returns the cached value for `key` (refreshing
  /// its recency), joins an in-flight computation of the same key, or runs
  /// `compute` inline and publishes the result. `compute` may throw — the
  /// exception propagates to this caller and to every coalesced waiter,
  /// and nothing is cached.
  ResultPtr GetOrCompute(const std::string& key,
                         const std::function<CachedResult()>& compute);

  /// Pure lookup: the cached value (counts a hit, refreshes recency) or
  /// nullptr. Counts no miss and never joins in-flight computations — the
  /// cheap first pass of the batched path.
  ResultPtr Lookup(const std::string& key);

  /// Drops every committed entry (memory relief, not invalidation:
  /// computations already in flight may still publish afterwards).
  void Clear();

  /// Invalidation barrier: advances the epoch and drops every committed
  /// entry. Once this returns, values produced under older epochs are
  /// unreachable (epoch-prefixed keys) and their late inserts are
  /// discarded. Returns the new epoch.
  uint64_t BumpEpoch();

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  CacheMetrics metrics() const;

 private:
  struct Entry {
    std::string key;  // epoch-prefixed internal key
    ResultPtr value;
    size_t bytes = 0;  // approx_bytes + key size
  };
  using Lru = std::list<Entry>;

  struct Shard {
    std::mutex mu;
    Lru lru;  // front = most recently used
    std::unordered_map<std::string_view, Lru::iterator> map;
    std::unordered_map<std::string, std::shared_future<ResultPtr>> inflight;
    size_t bytes = 0;
  };

  std::string InternalKey(uint64_t epoch, const std::string& key) const;
  Shard& ShardFor(const std::string& internal_key);
  /// Caller holds shard.mu. Evicts from the LRU tail until both per-shard
  /// budgets hold, never touching the front (most recent) entry.
  void EvictOverBudget(Shard* shard);

  const size_t num_shards_;
  const size_t max_entries_per_shard_;
  const size_t max_bytes_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> epoch_{0};

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> coalesced_waits_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> discarded_inserts_{0};
};

}  // namespace osum::serve

#endif  // OSUM_SERVE_RESULT_CACHE_H_
