// Sharded, stampede-safe LRU cache of ranked query results, with a
// byte-budget-aware cache *policy*: doorkeeper admission, per-entry TTLs
// and negative-result TTLs.
//
// The serving-layer answer to skewed keyword workloads: whole ranked result
// lists are cached behind canonical (keyword set, options) keys
// (search::CanonicalQueryKey), so a repeated query costs a mutex + a
// shared_ptr copy instead of OS generation + size-l computation — on the
// database back end a ~65x-amplified saving (paper Figure 10(f)). Design:
//   - Values are immutable shared_ptr<const CachedResult>: a hit hands the
//     caller a reference into the cache that stays valid after eviction,
//     so no copying and no lifetime coupling.
//   - Shards (power of two, independently mutexed) keep the hot path
//     contention-free; keys are partitioned by hash, LRU order, budgets
//     and the admission doorkeeper are per shard.
//   - Capacity is bounded twice: entry count and approximate bytes
//     (CachedResult::approx_bytes + key size). Either limit evicts from
//     the shard's LRU tail. The entry just inserted is never evicted by
//     its own insert, so one oversized result can transiently exceed the
//     byte budget (and is then evicted by the next insert).
//   - Admission (CachePolicyOptions::admission_enabled): a doorkeeper in
//     the TinyLFU spirit — a key's *first* sighting only records it; the
//     result is returned to the caller but not cached. A second sighting
//     within the sliding window (now < seen + admission_window_micros)
//     admits the entry. One-hit-wonder long-tail keys therefore never
//     spend budget bytes, so hot keys stay resident (bench_cache's
//     long-tail section measures exactly this). The doorkeeper is bounded
//     (admission_max_tracked per shard, oldest sighting evicted first)
//     and deterministic, so the property harness can model it exactly.
//     TTL expiry re-seeds it: an entry erased by its deadline leaves a
//     sighting, so a still-hot key re-admits on its first recompute
//     (LRU eviction leaves none — budget victims must re-earn entry).
//   - Expiry: entries carry a deadline (insert time + ttl). OK-empty
//     results — negative answers, distinguishable since the api layer —
//     use the separate (typically much shorter) negative TTL. Expiry is
//     lazy (an expired entry found by a lookup is erased and the lookup
//     misses; the next GetOrCompute recomputes exactly once, stampede
//     coalescing intact) plus swept (SweepExpired erases every expired
//     entry and prunes out-of-window doorkeeper sightings). All time
//     comes from the injectable serve::Clock, so every behavior above is
//     testable with a FakeClock and zero sleeps.
//   - Stampede protection: concurrent GetOrCompute misses for one key
//     coalesce onto a single computation via a per-key in-flight
//     shared_future. The computing caller runs `compute` inline on its own
//     thread (never queued), so waiters can always make progress — safe
//     even when every waiter is a thread-pool worker.
//   - Invalidation: Clear drops committed entries (doorkeeper sightings
//     survive — they are metadata, not results); BumpEpoch is the
//     correctness barrier for context rebuilds. Internal keys are
//     epoch-prefixed, so post-bump lookups can never see pre-bump values
//     or join pre-bump in-flight computations; completed stale
//     computations are discarded at insert time. After BumpEpoch returns,
//     no value produced under an older epoch is ever served — regardless
//     of any entry's remaining TTL.
#ifndef OSUM_SERVE_RESULT_CACHE_H_
#define OSUM_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "search/search_context.h"
#include "serve/clock.h"
#include "serve/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace osum::serve {

/// One immutable cached answer: the ranked result list plus its estimated
/// heap footprint (what the byte budget charges). An empty result list is
/// a *negative* answer (OK, zero hits) and is subject to the negative TTL.
struct CachedResult {
  std::vector<search::QueryResult> results;
  size_t approx_bytes = 0;

  bool negative() const { return results.empty(); }
};

/// How results travel through the serving layer: shared, const, detached
/// from the cache's own lifetime bookkeeping.
using ResultPtr = std::shared_ptr<const CachedResult>;

/// Conservative heap-footprint estimate of a result list (QueryResult
/// shells + OS node arenas + children lists + selections), for
/// CachedResult::approx_bytes.
size_t ApproxResultBytes(const std::vector<search::QueryResult>& results);

/// Time- and skew-aware policy knobs. Defaults preserve the historical
/// behavior: admit everything, keep it forever.
struct CachePolicyOptions {
  /// Positive entries expire once now >= insert + ttl_micros (so an entry
  /// lives strictly less than the TTL). 0 = never expire.
  uint64_t ttl_micros = 0;
  /// Separate — typically much shorter — TTL for negative (OK-empty)
  /// entries: an empty answer goes stale the moment matching data is
  /// inserted, while positive answers merely get incomplete. 0 = never.
  uint64_t negative_ttl_micros = 0;
  /// The bypass knob: false (default) admits every computed result —
  /// the historical behavior. True enables the doorkeeper: a key is
  /// cached only on its second sighting within the sliding window.
  bool admission_enabled = false;
  /// A recorded sighting stops counting once now >= seen + window (it is
  /// then refreshed, not admitted). 0 follows the TTL convention —
  /// "no time limit": sightings never age out and the doorkeeper is
  /// bounded by admission_max_tracked alone. Default 10 minutes.
  uint64_t admission_window_micros = 600ull * 1'000'000;
  /// Per-shard bound on remembered sightings; oldest-recorded is evicted
  /// first. 0 = auto (8x the shard's entry budget, minimum 64).
  size_t admission_max_tracked = 0;
};

struct ResultCacheOptions {
  /// Rounded up to a power of two; minimum 1. Use 1 in tests that assert
  /// global LRU order.
  size_t num_shards = 8;
  /// Whole-cache entry cap, split evenly across shards (minimum 1 each).
  size_t max_entries = 1024;
  /// Whole-cache approximate-byte cap, split evenly across shards.
  size_t max_bytes = 64ull << 20;
  CachePolicyOptions policy;
  /// Time source for TTLs and the admission window; null uses the shared
  /// SystemClock. Tests inject a FakeClock here.
  std::shared_ptr<const Clock> clock;
};

class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});

  // Shards hold mutexes and in-flight futures; the cache is a fixture, not
  // a value.
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The serving hot path. Returns the cached value for `key` (refreshing
  /// its recency), joins an in-flight computation of the same key, or runs
  /// `compute` inline — publishing the result if the admission policy
  /// accepts it (a rejected result is still returned, just not cached).
  /// An entry found expired counts an expiry, is erased, and the call
  /// proceeds as a miss — coalescing still guarantees one recompute.
  /// `compute` may throw — the exception propagates to this caller and to
  /// every coalesced waiter, and nothing is cached.
  ResultPtr GetOrCompute(const std::string& key,
                         const std::function<CachedResult()>& compute);

  /// Pure lookup: the cached value (counts a hit, refreshes recency) or
  /// nullptr. An expired entry is erased (counting an expiry, not a miss).
  /// Counts no miss and never joins in-flight computations — the cheap
  /// first pass of the batched path.
  ResultPtr Lookup(const std::string& key);

  /// The sweep half of lazy-plus-sweep expiry: erases every expired entry
  /// (attributing positive/negative expiries) and prunes out-of-window
  /// doorkeeper sightings. Returns the number of entries erased. Call it
  /// from a maintenance tick; correctness never depends on it (lazy
  /// expiry already guarantees expired entries are unservable).
  size_t SweepExpired();

  /// Drops every committed entry (memory relief, not invalidation:
  /// computations already in flight may still publish afterwards, and
  /// doorkeeper sightings survive).
  void Clear();

  /// Invalidation barrier: advances the epoch and drops every committed
  /// entry. Once this returns, values produced under older epochs are
  /// unreachable (epoch-prefixed keys) and their late inserts are
  /// discarded. Returns the new epoch.
  uint64_t BumpEpoch();

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  CacheMetrics metrics() const;

 private:
  struct Entry {
    std::string key;  // epoch-prefixed internal key
    ResultPtr value;
    size_t bytes = 0;         // approx_bytes + key size
    uint64_t deadline = 0;    // expires once now >= deadline; 0 = never
  };
  using Lru = std::list<Entry>;

  /// One doorkeeper record: this key was computed-but-not-admitted at
  /// `seen_micros`. Recency-ordered like the LRU so the per-shard cap can
  /// evict the oldest sighting deterministically.
  struct Sighting {
    std::string key;  // epoch-prefixed internal key
    uint64_t seen_micros = 0;
  };
  using SightingList = std::list<Sighting>;

  struct Shard {
    util::Mutex mu;
    Lru lru GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<std::string_view, Lru::iterator> map GUARDED_BY(mu);
    std::unordered_map<std::string, std::shared_future<ResultPtr>> inflight
        GUARDED_BY(mu);
    size_t bytes GUARDED_BY(mu) = 0;
    SightingList sightings GUARDED_BY(mu);  // front = most recently recorded
    std::unordered_map<std::string_view, SightingList::iterator> sighting_map
        GUARDED_BY(mu);
  };

  std::string InternalKey(uint64_t epoch, const std::string& key) const;
  Shard& ShardFor(const std::string& internal_key);
  /// Evicts from the LRU tail until both per-shard budgets hold, never
  /// touching the front (most recent) entry.
  void EvictOverBudget(Shard* shard) REQUIRES(shard->mu);
  /// True when `it`'s entry has a deadline the clock reached; erases it
  /// and counts the expiry when so. Reads the clock only for entries that
  /// actually carry a deadline, so the no-TTL hit path costs no clock
  /// call. With admission enabled, the erased key gets a sighting — an
  /// expired hot key re-admits on its first recompute instead of being
  /// doorkeeper-rejected once per TTL period.
  bool EraseIfExpired(Shard* shard, Lru::iterator it) REQUIRES(shard->mu);
  /// The body of EraseIfExpired against a caller-supplied timestamp —
  /// SweepExpired reads the clock once per shard, not once per entry.
  bool EraseExpiredAt(Shard* shard, Lru::iterator it, uint64_t now)
      REQUIRES(shard->mu);
  /// Records (or refreshes and front-moves) a sighting of `ikey` at
  /// `now`, evicting the oldest past the cap.
  void RecordSighting(Shard* shard, const std::string& ikey, uint64_t now)
      REQUIRES(shard->mu);
  /// The doorkeeper decision for an insert of `ikey` at `now`: true
  /// admits (consuming the sighting), false records or refreshes a
  /// sighting and rejects.
  bool AdmitOrRecordSighting(Shard* shard, const std::string& ikey,
                             uint64_t now) REQUIRES(shard->mu);
  /// Entry deadline for a value inserted at `now` (0 = never expires).
  uint64_t DeadlineFor(const CachedResult& value, uint64_t now) const;

  const size_t num_shards_;
  const size_t max_entries_per_shard_;
  const size_t max_bytes_per_shard_;
  const CachePolicyOptions policy_;
  const size_t max_tracked_per_shard_;
  const std::shared_ptr<const Clock> clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> epoch_{0};

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> negative_hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> coalesced_waits_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> discarded_inserts_{0};
  std::atomic<uint64_t> admission_rejects_{0};
  std::atomic<uint64_t> ttl_expiries_{0};
  std::atomic<uint64_t> negative_ttl_expiries_{0};
};

}  // namespace osum::serve

#endif  // OSUM_SERVE_RESULT_CACHE_H_
