#include "serve/query_service.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/timer.h"

namespace osum::serve {
namespace {

/// An already-satisfied future, for the paths (cache hits, invalid
/// requests) SubmitBatchAsync answers without touching the pool.
std::future<api::QueryResponse> ReadyResponse(api::QueryResponse response) {
  std::promise<api::QueryResponse> promise;
  promise.set_value(std::move(response));
  return promise.get_future();
}

/// The zero-copy bridge from the cache's value type to the response's:
/// shares ownership of the CachedResult while exposing only its immutable
/// result list.
api::SharedResults AliasResults(const ResultPtr& cached) {
  return api::SharedResults(cached, &cached->results);
}

}  // namespace

void QueryService::LatencyRing::Add(double v, size_t window) {
  if (window == 0) return;
  if (samples.size() < window) {
    samples.push_back(v);
  } else {
    samples[next] = v;
  }
  next = (next + 1) % window;
}

util::Summary QueryService::LatencyRing::Snapshot() const {
  util::Summary s;
  for (double v : samples) s.Add(v);
  return s;
}

QueryService::PinnedContext::PinnedContext(QueryService* service)
    : service_(service) {
  util::MutexLock lock(service_->context_mu_);
  binding_ = service_->binding_.get();
  ++binding_->pins;
}

QueryService::PinnedContext::~PinnedContext() {
  util::MutexLock lock(service_->context_mu_);
  if (--binding_->pins == 0) service_->context_cv_.NotifyAll();
}

QueryService::QueryService(const search::SearchContext& context,
                           ServiceOptions options)
    : options_(options),
      clock_(options.cache.clock != nullptr
                 ? options.cache.clock
                 : std::shared_ptr<const Clock>(SystemClock::Instance())),
      binding_(new Binding{&context, 0}),
      cache_(options.cache),
      pool_(options.num_threads == 0 ? util::ThreadPool::HardwareThreads()
                                     : options.num_threads) {
  if (options_.partials.has_value()) {
    context.partials_memo().Configure(*options_.partials);
  }
}

bool QueryService::AdmitMiss(uint64_t deadline,
                             std::shared_ptr<MissTicket>* ticket_out) {
  util::MutexLock lock(pending_mu_);
  const size_t watermark = options_.overload.max_pending_misses;
  if (watermark != 0 && pending_misses_ >= watermark) {
    // Shed lowest-budget-first: the earliest absolute deadline goes.
    // Deadline-less work has infinite budget, so a finite-budget request
    // never displaces it — and when nothing pending carries a deadline,
    // the newcomer (finite or not, it is the youngest claim on a full
    // queue) is the victim.
    auto earliest = deadline_queue_.begin();
    if (earliest == deadline_queue_.end() ||
        (deadline != 0 && deadline <= earliest->first)) {
      ++sheds_at_admission_;
      return false;
    }
    earliest->second->shed = true;
    earliest->second->in_queue = false;
    deadline_queue_.erase(earliest);
    --pending_misses_;
    ++sheds_at_admission_;
  }
  auto ticket = std::make_shared<MissTicket>();
  ticket->deadline = deadline;
  if (deadline != 0) {
    ticket->it = deadline_queue_.emplace(deadline, ticket);
    ticket->in_queue = true;
  }
  ++pending_misses_;
  *ticket_out = std::move(ticket);
  return true;
}

QueryService::MissGate QueryService::BeginMiss(
    const std::shared_ptr<MissTicket>& ticket) {
  {
    util::MutexLock lock(pending_mu_);
    if (ticket->shed) {
      // A watermark victim: de-registered and counted by the shedder.
      return MissGate::kShedByWatermark;
    }
    if (ticket->in_queue) {
      deadline_queue_.erase(ticket->it);
      ticket->in_queue = false;
    }
    --pending_misses_;
  }
  if (ticket->deadline != 0 && clock_->NowMicros() >= ticket->deadline) {
    util::MutexLock lock(pending_mu_);
    ++sheds_at_dequeue_;
    return MissGate::kExpiredInQueue;
  }
  return MissGate::kProceed;
}

void QueryService::AbandonMiss(const std::shared_ptr<MissTicket>& ticket) {
  util::MutexLock lock(pending_mu_);
  if (ticket->shed) return;  // the shedder already de-registered it
  if (ticket->in_queue) {
    deadline_queue_.erase(ticket->it);
    ticket->in_queue = false;
  }
  --pending_misses_;
}

api::QueryResponse QueryService::ShedResponse(const char* why) {
  api::QueryStats stats;
  stats.epoch = cache_.epoch();
  return api::QueryResponse::Failure(api::Status::DeadlineExceeded(why),
                                     stats);
}

ResultPtr QueryService::ComputeCached(std::string_view keywords,
                                      const search::QueryOptions& options,
                                      const std::string& key,
                                      bool* computed_out) {
  util::WallTimer timer;
  bool computed = false;
  // GetOrCompute runs `compute` inline within this frame, so capturing the
  // caller's `keywords` view is safe — and keeps the hit path free of the
  // string copy it would never use.
  ResultPtr result = cache_.GetOrCompute(key, [&]() -> CachedResult {
    computed = true;
    // The context is pinned inside the compute callback, i.e. after
    // GetOrCompute captured its epoch. Together with RebindContext's
    // swap-then-bump order this makes a stale (old-context) result under a
    // current epoch impossible: an old pin implies the bump has not
    // happened yet, so the entry is wiped by the bump's clear. The pin
    // also keeps the context destroyable-safe: RebindContext does not
    // return (and so the caller cannot destroy the old context) until
    // every pin on it is released.
    PinnedContext ctx(this);
    CachedResult out;
    out.results = ctx->Query(keywords, options);
    out.approx_bytes = ApproxResultBytes(out.results);
    return out;
  });
  RecordLatency(/*hit=*/!computed, /*negative=*/result->negative(),
                timer.ElapsedMicros());
  if (computed_out != nullptr) *computed_out = computed;
  return result;
}

api::QueryResponse QueryService::ExecuteWithKey(
    const api::QueryRequest& request, const std::string& key) {
  util::WallTimer timer;
  api::QueryStats stats;
  bool computed = false;
  try {
    ResultPtr result =
        ComputeCached(request.keywords(), request.options(), key, &computed);
    stats.cache_hit = !computed;
    stats.negative = result->negative();
    stats.compute_micros = timer.ElapsedMicros();
    stats.epoch = cache_.epoch();
    return api::QueryResponse::Success(AliasResults(result), stats);
  } catch (const std::exception& e) {
    stats.compute_micros = timer.ElapsedMicros();
    stats.epoch = cache_.epoch();
    return api::QueryResponse::Failure(api::Status::BackendError(e.what()),
                                       stats);
  }
}

api::QueryResponse QueryService::Execute(const api::QueryRequest& request) {
  api::StatusOr<std::string> key = request.ValidatedKey();
  if (!key.ok()) {
    api::QueryStats stats;
    stats.epoch = cache_.epoch();
    return api::QueryResponse::Failure(key.status(), stats);
  }
  return ExecuteWithKey(request, *key);
}

std::future<api::QueryResponse> QueryService::SubmitAsync(
    api::QueryRequest request) {
  return pool_.SubmitWithFuture(
      [this, request = std::move(request)]() -> api::QueryResponse {
        return Execute(request);
      });
}

std::vector<std::future<api::QueryResponse>> QueryService::SubmitBatchAsync(
    std::vector<api::QueryRequest> requests) {
  std::vector<std::future<api::QueryResponse>> futures;
  futures.reserve(requests.size());
  for (api::QueryRequest& request : requests) {
    util::WallTimer timer;
    api::StatusOr<std::string> key = request.ValidatedKey();
    if (!key.ok()) {
      api::QueryStats stats;
      stats.epoch = cache_.epoch();
      futures.push_back(ReadyResponse(
          api::QueryResponse::Failure(key.status(), stats)));
      continue;
    }
    if (ResultPtr hit = cache_.Lookup(*key)) {
      // Answered at submission time: no pool hop, future already ready.
      double micros = timer.ElapsedMicros();
      RecordLatency(/*hit=*/true, /*negative=*/hit->negative(), micros);
      api::QueryStats stats;
      stats.cache_hit = true;
      stats.negative = hit->negative();
      stats.compute_micros = micros;
      stats.epoch = cache_.epoch();
      futures.push_back(ReadyResponse(
          api::QueryResponse::Success(AliasResults(hit), stats)));
      continue;
    }
    // Miss: compute on the pool. The canonical key was computed exactly
    // once above and travels with the task; duplicates among the misses
    // coalesce inside ComputeCached's GetOrCompute. ExecuteWithKey never
    // throws, so the future always resolves to a response. The miss rides
    // the same overload machinery as SubmitBatch: its relative budget is
    // stamped into an absolute deadline here, the watermark may shed it
    // (or a lower-budget pending miss) now, and the deadline is
    // re-checked at dequeue. SubmitWithFuture runs the task inline after
    // Stop(), so the ticket is always consumed.
    uint64_t deadline =
        request.deadline_micros() == 0
            ? 0
            : clock_->NowMicros() + request.deadline_micros();
    std::shared_ptr<MissTicket> ticket;
    if (!AdmitMiss(deadline, &ticket)) {
      futures.push_back(
          ReadyResponse(ShedResponse("shed at admission: pool over "
                                     "watermark, lowest budget first")));
      continue;
    }
    futures.push_back(pool_.SubmitWithFuture(
        [this, request = std::move(request), key = std::move(*key),
         ticket = std::move(ticket)]() -> api::QueryResponse {
          switch (BeginMiss(ticket)) {
            case MissGate::kShedByWatermark:
              return ShedResponse("shed while queued: pool over "
                                  "watermark, lowest budget first");
            case MissGate::kExpiredInQueue:
              return ShedResponse("deadline expired while queued");
            case MissGate::kProceed:
              break;
          }
          return ExecuteWithKey(request, key);
        }));
  }
  return futures;
}

void QueryService::SubmitBatch(
    std::vector<api::QueryRequest> requests,
    std::function<void(size_t, api::QueryResponse)> on_done) {
  // Relative budgets become absolute deadlines at entry; a front end that
  // wants queueing time before this call to count against the budget
  // stamps its own deadlines and uses the absolute overload directly.
  std::vector<uint64_t> deadlines(requests.size(), 0);
  uint64_t now = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].deadline_micros() != 0) {
      if (now == 0) now = clock_->NowMicros();
      deadlines[i] = now + requests[i].deadline_micros();
    }
  }
  SubmitBatch(std::move(requests), std::move(deadlines), std::move(on_done));
}

void QueryService::SubmitBatch(
    std::vector<api::QueryRequest> requests,
    std::vector<uint64_t> deadlines_micros,
    std::function<void(size_t, api::QueryResponse)> on_done) {
  for (size_t i = 0; i < requests.size(); ++i) {
    api::QueryRequest& request = requests[i];
    const uint64_t deadline =
        i < deadlines_micros.size() ? deadlines_micros[i] : 0;
    util::WallTimer timer;
    api::StatusOr<std::string> key = request.ValidatedKey();
    if (!key.ok()) {
      api::QueryStats stats;
      stats.epoch = cache_.epoch();
      on_done(i, api::QueryResponse::Failure(key.status(), stats));
      continue;
    }
    // Admission budget check, before the cache is even consulted: an
    // expired request gets kDeadlineExceeded for free — the contract is
    // "no time is spent on work nobody is waiting for", not "answer if
    // cheap".
    if (deadline != 0 && clock_->NowMicros() >= deadline) {
      {
        util::MutexLock lock(pending_mu_);
        ++sheds_at_admission_;
      }
      on_done(i, ShedResponse("deadline expired at admission"));
      continue;
    }
    if (ResultPtr hit = cache_.Lookup(*key)) {
      double micros = timer.ElapsedMicros();
      RecordLatency(/*hit=*/true, /*negative=*/hit->negative(), micros);
      api::QueryStats stats;
      stats.cache_hit = true;
      stats.negative = hit->negative();
      stats.compute_micros = micros;
      stats.epoch = cache_.epoch();
      on_done(i, api::QueryResponse::Success(AliasResults(hit), stats));
      continue;
    }
    // Miss: the pending-miss watermark may shed this request now (it has
    // the lowest budget of everything queued) or evict a lower-budget
    // pending miss to make room.
    std::shared_ptr<MissTicket> ticket;
    if (!AdmitMiss(deadline, &ticket)) {
      on_done(i, ShedResponse("shed at admission: pool over watermark, "
                              "lowest budget first"));
      continue;
    }
    // Compute on the pool, same shape as SubmitBatchAsync. ExecuteWithKey
    // never throws and on_done must not, so the task honors the pool's
    // no-throw contract. BeginMiss re-checks the budget at dequeue —
    // time queued behind a backed-up pool counts.
    bool submitted = pool_.Submit(
        [this, i, request = std::move(request), key = std::move(*key),
         ticket, on_done] {
          switch (BeginMiss(ticket)) {
            case MissGate::kShedByWatermark:
              on_done(i, ShedResponse("shed while queued: pool over "
                                      "watermark, lowest budget first"));
              return;
            case MissGate::kExpiredInQueue:
              on_done(i, ShedResponse("deadline expired while queued"));
              return;
            case MissGate::kProceed:
              break;
          }
          on_done(i, ExecuteWithKey(request, key));
        });
    if (!submitted) {
      // Pool already stopped (teardown): every request is still answered
      // exactly once — a dropped callback would wedge the front end's
      // drain accounting forever. The never-run task also never consumes
      // its ticket, so roll the registration back here.
      AbandonMiss(ticket);
      api::QueryStats stats;
      stats.epoch = cache_.epoch();
      on_done(i, api::QueryResponse::Failure(
                     api::Status::Internal("service shutting down"), stats));
    }
  }
}

std::vector<api::QueryResponse> QueryService::ExecuteBatch(
    std::vector<api::QueryRequest> requests) {
  std::vector<std::future<api::QueryResponse>> futures =
      SubmitBatchAsync(std::move(requests));
  std::vector<api::QueryResponse> responses;
  responses.reserve(futures.size());
  for (std::future<api::QueryResponse>& f : futures) {
    responses.push_back(f.get());
  }
  return responses;
}

ResultPtr QueryService::Query(std::string_view keywords,
                              const search::QueryOptions& options) {
  std::string key = api::CanonicalQueryKey(keywords, options);
  return ComputeCached(keywords, options, key, nullptr);
}

std::future<ResultPtr> QueryService::SubmitAsync(std::string keywords,
                                                 search::QueryOptions options) {
  return pool_.SubmitWithFuture(
      [this, keywords = std::move(keywords), options]() -> ResultPtr {
        return Query(keywords, options);
      });
}

void QueryService::Submit(std::string keywords, search::QueryOptions options,
                          std::function<void(ResultPtr)> callback) {
  pool_.Submit([this, keywords = std::move(keywords), options,
                callback = std::move(callback)] {
    // ThreadPool tasks must not throw (no try/catch in WorkerLoop), and
    // unlike SubmitAsync there is no future to carry a query exception —
    // deliver failure as a null result instead of terminating the process.
    ResultPtr result;
    try {
      result = Query(keywords, options);
    } catch (...) {
      result = nullptr;
    }
    callback(std::move(result));
  });
}

std::vector<ResultPtr> QueryService::QueryBatch(
    std::span<const std::string> queries,
    const search::QueryOptions& options) {
  std::vector<ResultPtr> out(queries.size());
  // The same fan-out shape as SubmitBatchAsync, at the ResultPtr level so
  // the historical contract (shared cache objects, real exceptions) is
  // preserved: hits answer inline, each miss becomes one pool future with
  // its canonical key computed exactly once and threaded through.
  std::vector<std::pair<size_t, std::future<ResultPtr>>> pending;
  for (size_t i = 0; i < queries.size(); ++i) {
    util::WallTimer timer;
    std::string key = api::CanonicalQueryKey(queries[i], options);
    out[i] = cache_.Lookup(key);
    if (out[i] != nullptr) {
      RecordLatency(/*hit=*/true, /*negative=*/out[i]->negative(),
                    timer.ElapsedMicros());
      continue;
    }
    // The span element outlives the gather loop below, so the task may
    // borrow the query string instead of copying it.
    pending.emplace_back(i, pool_.SubmitWithFuture(
                                [this, &query = queries[i], options,
                                 key = std::move(key)]() -> ResultPtr {
                                  return ComputeCached(query, options, key,
                                                       nullptr);
                                }));
  }
  // Gather every future (the remaining misses keep running even when one
  // fails), then rethrow the first failure in input order.
  std::exception_ptr first_error;
  for (auto& [index, future] : pending) {
    try {
      out[index] = future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

void QueryService::RebindContext(const search::SearchContext& context) {
  std::unique_ptr<Binding> old;
  {
    util::MutexLock lock(context_mu_);
    old = std::move(binding_);
    binding_.reset(new Binding{&context, 0});
  }
  // Swap first, then bump. A racing query that pinned the old binding
  // necessarily captured a pre-bump epoch, so its insert is either
  // rejected (epoch moved) or wiped by the bump's clear — after BumpEpoch
  // returns, stale results are unreachable (see result_cache.h).
  cache_.BumpEpoch();
  // Same discipline one tier down: flush the per-(subject, l) partials on
  // both sides of the swap. The old context's memo (it may be rebound
  // back, or still referenced elsewhere) holds synopses about to go stale
  // with its data; the new context's memo may hold partials from a life
  // before an earlier rebind. In-flight queries pinned to the old binding
  // captured pre-bump memo epochs, so their inserts are discarded.
  if (options_.partials.has_value()) {
    context.partials_memo().Configure(*options_.partials);
  }
  old->ctx->partials_memo().BumpEpoch();
  context.partials_memo().BumpEpoch();
  // Drain. No new pin can reach `old` (binding_ no longer points to it),
  // so wait for the in-flight ones to release; only once the count hits
  // zero is the documented "caller may now destroy the old context" safe.
  // Explicit predicate loop: `old->pins` is guarded by context_mu_ by
  // convention (retired bindings are only touched under it), and the loop
  // keeps that read inside the annotated critical section.
  util::MutexLock lock(context_mu_);
  while (old->pins != 0) context_cv_.Wait(context_mu_);
}

void QueryService::RecordLatency(bool hit, bool negative, double micros) {
  util::MutexLock lock(latency_mu_);
  ++queries_;
  all_latency_.Add(micros, options_.latency_window);
  (hit ? hit_latency_ : miss_latency_).Add(micros, options_.latency_window);
  // Negative hits are double-attributed (they are hits, and they are
  // negative): negative_hit_latency_us answers "how fast do we say no?".
  if (hit && negative) {
    negative_hit_latency_.Add(micros, options_.latency_window);
  }
}

Metrics QueryService::metrics() const {
  Metrics m;
  m.cache = cache_.metrics();
  {
    // Snapshot under context_mu_ so a concurrent rebind cannot swap the
    // binding mid-read; the memo's own (leaf) lock orders the counters.
    util::MutexLock lock(context_mu_);
    m.partials = binding_->ctx->partials_memo().metrics();
  }
  {
    util::MutexLock lock(pending_mu_);
    m.sheds_at_admission = sheds_at_admission_;
    m.sheds_at_dequeue = sheds_at_dequeue_;
    m.pending_misses = pending_misses_;
  }
  util::MutexLock lock(latency_mu_);
  m.queries = queries_;
  m.latency_us = all_latency_.Snapshot();
  m.hit_latency_us = hit_latency_.Snapshot();
  m.negative_hit_latency_us = negative_hit_latency_.Snapshot();
  m.miss_latency_us = miss_latency_.Snapshot();
  return m;
}

}  // namespace osum::serve
