#include "serve/query_service.h"

#include <algorithm>
#include <utility>

#include "util/timer.h"

namespace osum::serve {

void QueryService::LatencyRing::Add(double v, size_t window) {
  if (window == 0) return;
  if (samples.size() < window) {
    samples.push_back(v);
  } else {
    samples[next] = v;
  }
  next = (next + 1) % window;
}

util::Summary QueryService::LatencyRing::Snapshot() const {
  util::Summary s;
  for (double v : samples) s.Add(v);
  return s;
}

QueryService::QueryService(const search::SearchContext& context,
                           ServiceOptions options)
    : options_(options),
      context_(&context),
      cache_(options.cache),
      pool_(options.num_threads == 0 ? util::ThreadPool::HardwareThreads()
                                     : options.num_threads) {}

ResultPtr QueryService::Query(std::string_view keywords,
                              const search::QueryOptions& options) {
  util::WallTimer timer;
  std::string key = search::CanonicalQueryKey(keywords, options);
  bool computed = false;
  // GetOrCompute runs `compute` inline within this frame, so capturing the
  // caller's `keywords` view is safe — and keeps the hit path free of the
  // string copy it would never use.
  ResultPtr result = cache_.GetOrCompute(key, [&]() -> CachedResult {
    computed = true;
    // The pointer is loaded inside the compute callback, i.e. after
    // GetOrCompute captured its epoch. Together with RebindContext's
    // swap-then-bump order this makes a stale (old-context) result under a
    // current epoch impossible: an old pointer implies the bump has not
    // happened yet, so the entry is wiped by the bump's clear.
    const search::SearchContext* ctx =
        context_.load(std::memory_order_acquire);
    CachedResult out;
    out.results = ctx->Query(keywords, options);
    out.approx_bytes = ApproxResultBytes(out.results);
    return out;
  });
  RecordLatency(/*hit=*/!computed, timer.ElapsedMicros());
  return result;
}

std::future<ResultPtr> QueryService::SubmitAsync(std::string keywords,
                                                 search::QueryOptions options) {
  return pool_.SubmitWithFuture(
      [this, keywords = std::move(keywords), options]() -> ResultPtr {
        return Query(keywords, options);
      });
}

void QueryService::Submit(std::string keywords, search::QueryOptions options,
                          std::function<void(ResultPtr)> callback) {
  pool_.Submit([this, keywords = std::move(keywords), options,
                callback = std::move(callback)] {
    // ThreadPool tasks must not throw (no try/catch in WorkerLoop), and
    // unlike SubmitAsync there is no future to carry a query exception —
    // deliver failure as a null result instead of terminating the process.
    ResultPtr result;
    try {
      result = Query(keywords, options);
    } catch (...) {
      result = nullptr;
    }
    callback(std::move(result));
  });
}

std::vector<ResultPtr> QueryService::QueryBatch(
    std::span<const std::string> queries,
    const search::QueryOptions& options) {
  std::vector<ResultPtr> out(queries.size());
  std::vector<size_t> miss_indices;
  for (size_t i = 0; i < queries.size(); ++i) {
    util::WallTimer timer;
    std::string key = search::CanonicalQueryKey(queries[i], options);
    out[i] = cache_.Lookup(key);
    if (out[i] != nullptr) {
      RecordLatency(/*hit=*/true, timer.ElapsedMicros());
    } else {
      miss_indices.push_back(i);
    }
  }
  if (miss_indices.empty()) return out;
  // Duplicates among the misses coalesce inside GetOrCompute: one worker
  // computes, the rest wait on the in-flight future.
  util::ParallelFor(&pool_, miss_indices.size(), [&](size_t j) {
    size_t i = miss_indices[j];
    out[i] = Query(queries[i], options);
  });
  return out;
}

void QueryService::RebindContext(const search::SearchContext& context) {
  // Swap first, then bump. A racing query that still computes against the
  // old pointer necessarily captured a pre-bump epoch, so its insert is
  // either rejected (epoch moved) or wiped by the bump's clear — after
  // BumpEpoch returns, stale results are unreachable (see result_cache.h).
  context_.store(&context, std::memory_order_release);
  cache_.BumpEpoch();
}

void QueryService::RecordLatency(bool hit, double micros) {
  std::lock_guard<std::mutex> lock(latency_mu_);
  ++queries_;
  all_latency_.Add(micros, options_.latency_window);
  (hit ? hit_latency_ : miss_latency_).Add(micros, options_.latency_window);
}

Metrics QueryService::metrics() const {
  Metrics m;
  m.cache = cache_.metrics();
  std::lock_guard<std::mutex> lock(latency_mu_);
  m.queries = queries_;
  m.latency_us = all_latency_.Snapshot();
  m.hit_latency_us = hit_latency_.Snapshot();
  m.miss_latency_us = miss_latency_.Snapshot();
  return m;
}

}  // namespace osum::serve
