#include "serve/query_service.h"

#include <algorithm>
#include <utility>

#include "util/timer.h"

namespace osum::serve {

void QueryService::LatencyRing::Add(double v, size_t window) {
  if (window == 0) return;
  if (samples.size() < window) {
    samples.push_back(v);
  } else {
    samples[next] = v;
  }
  next = (next + 1) % window;
}

util::Summary QueryService::LatencyRing::Snapshot() const {
  util::Summary s;
  for (double v : samples) s.Add(v);
  return s;
}

QueryService::PinnedContext::PinnedContext(QueryService* service)
    : service_(service) {
  std::lock_guard<std::mutex> lock(service_->context_mu_);
  binding_ = service_->binding_.get();
  ++binding_->pins;
}

QueryService::PinnedContext::~PinnedContext() {
  std::lock_guard<std::mutex> lock(service_->context_mu_);
  if (--binding_->pins == 0) service_->context_cv_.notify_all();
}

QueryService::QueryService(const search::SearchContext& context,
                           ServiceOptions options)
    : options_(options),
      binding_(new Binding{&context, 0}),
      cache_(options.cache),
      pool_(options.num_threads == 0 ? util::ThreadPool::HardwareThreads()
                                     : options.num_threads) {}

ResultPtr QueryService::Query(std::string_view keywords,
                              const search::QueryOptions& options) {
  util::WallTimer timer;
  std::string key = search::CanonicalQueryKey(keywords, options);
  bool computed = false;
  // GetOrCompute runs `compute` inline within this frame, so capturing the
  // caller's `keywords` view is safe — and keeps the hit path free of the
  // string copy it would never use.
  ResultPtr result = cache_.GetOrCompute(key, [&]() -> CachedResult {
    computed = true;
    // The context is pinned inside the compute callback, i.e. after
    // GetOrCompute captured its epoch. Together with RebindContext's
    // swap-then-bump order this makes a stale (old-context) result under a
    // current epoch impossible: an old pin implies the bump has not
    // happened yet, so the entry is wiped by the bump's clear. The pin
    // also keeps the context destroyable-safe: RebindContext does not
    // return (and so the caller cannot destroy the old context) until
    // every pin on it is released.
    PinnedContext ctx(this);
    CachedResult out;
    out.results = ctx->Query(keywords, options);
    out.approx_bytes = ApproxResultBytes(out.results);
    return out;
  });
  RecordLatency(/*hit=*/!computed, timer.ElapsedMicros());
  return result;
}

std::future<ResultPtr> QueryService::SubmitAsync(std::string keywords,
                                                 search::QueryOptions options) {
  return pool_.SubmitWithFuture(
      [this, keywords = std::move(keywords), options]() -> ResultPtr {
        return Query(keywords, options);
      });
}

void QueryService::Submit(std::string keywords, search::QueryOptions options,
                          std::function<void(ResultPtr)> callback) {
  pool_.Submit([this, keywords = std::move(keywords), options,
                callback = std::move(callback)] {
    // ThreadPool tasks must not throw (no try/catch in WorkerLoop), and
    // unlike SubmitAsync there is no future to carry a query exception —
    // deliver failure as a null result instead of terminating the process.
    ResultPtr result;
    try {
      result = Query(keywords, options);
    } catch (...) {
      result = nullptr;
    }
    callback(std::move(result));
  });
}

std::vector<ResultPtr> QueryService::QueryBatch(
    std::span<const std::string> queries,
    const search::QueryOptions& options) {
  std::vector<ResultPtr> out(queries.size());
  std::vector<size_t> miss_indices;
  for (size_t i = 0; i < queries.size(); ++i) {
    util::WallTimer timer;
    std::string key = search::CanonicalQueryKey(queries[i], options);
    out[i] = cache_.Lookup(key);
    if (out[i] != nullptr) {
      RecordLatency(/*hit=*/true, timer.ElapsedMicros());
    } else {
      miss_indices.push_back(i);
    }
  }
  if (miss_indices.empty()) return out;
  // Duplicates among the misses coalesce inside GetOrCompute: one worker
  // computes, the rest wait on the in-flight future. Query can throw, but
  // ParallelFor's contract says fn must not (no cross-thread exception
  // channel) — capture the first failure and rethrow it after the fan-in.
  std::mutex error_mu;
  std::exception_ptr first_error;
  util::ParallelFor(&pool_, miss_indices.size(), [&](size_t j) {
    size_t i = miss_indices[j];
    try {
      out[i] = Query(queries[i], options);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  });
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

void QueryService::RebindContext(const search::SearchContext& context) {
  std::unique_ptr<Binding> old;
  {
    std::lock_guard<std::mutex> lock(context_mu_);
    old = std::move(binding_);
    binding_.reset(new Binding{&context, 0});
  }
  // Swap first, then bump. A racing query that pinned the old binding
  // necessarily captured a pre-bump epoch, so its insert is either
  // rejected (epoch moved) or wiped by the bump's clear — after BumpEpoch
  // returns, stale results are unreachable (see result_cache.h).
  cache_.BumpEpoch();
  // Drain. No new pin can reach `old` (binding_ no longer points to it),
  // so wait for the in-flight ones to release; only once the count hits
  // zero is the documented "caller may now destroy the old context" safe.
  std::unique_lock<std::mutex> lock(context_mu_);
  context_cv_.wait(lock, [&] { return old->pins == 0; });
}

void QueryService::RecordLatency(bool hit, double micros) {
  std::lock_guard<std::mutex> lock(latency_mu_);
  ++queries_;
  all_latency_.Add(micros, options_.latency_window);
  (hit ? hit_latency_ : miss_latency_).Add(micros, options_.latency_window);
}

Metrics QueryService::metrics() const {
  Metrics m;
  m.cache = cache_.metrics();
  std::lock_guard<std::mutex> lock(latency_mu_);
  m.queries = queries_;
  m.latency_us = all_latency_.Snapshot();
  m.hit_latency_us = hit_latency_.Snapshot();
  m.miss_latency_us = miss_latency_.Snapshot();
  return m;
}

}  // namespace osum::serve
