// Console table / CSV rendering used by the benchmark harnesses so every
// reproduced figure prints as a readable series (paper-style rows).
#ifndef OSUM_UTIL_TABLE_PRINTER_H_
#define OSUM_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace osum::util {

/// Accumulates rows of string cells and renders them as an aligned console
/// table or CSV. Used by the figure-reproduction benches.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row. Rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with 3 decimals.
  void AddRow(const std::string& label, const std::vector<double>& values);

  /// Renders an aligned, pipe-separated table.
  void Print(std::ostream& os) const;

  /// Renders CSV (no quoting needed for our content).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a boxed section heading, e.g. "== Figure 9(a): DBLP Author ==".
void PrintHeading(std::ostream& os, const std::string& title);

}  // namespace osum::util

#endif  // OSUM_UTIL_TABLE_PRINTER_H_
