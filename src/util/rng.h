// Deterministic pseudo-random number generation used across osum.
//
// All dataset generators, simulated evaluators and property tests derive
// their randomness from Rng so every experiment in the repository is
// reproducible from a single seed.
#ifndef OSUM_UTIL_RNG_H_
#define OSUM_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace osum::util {

/// A small, fast, deterministic PRNG (xoshiro256**).
///
/// We deliberately avoid std::mt19937 plus std::*_distribution because the
/// standard distributions are implementation-defined: the same seed would
/// produce different datasets under different standard libraries. Every
/// sampling routine below is implemented from scratch so that generated
/// databases are bit-identical across platforms.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances constructed with the same seed
  /// produce identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal variate (Box-Muller, deterministic).
  double NextGaussian();

  /// Log-normal variate with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma);

  /// True with probability p.
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextU64(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Creates a child generator with an independent stream; used to give
  /// each entity (author, evaluator, ...) its own reproducible stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Samples from a Zipf(n, s) distribution over {0, ..., n-1} using the
/// classic rejection-inversion method. Deterministic given the Rng.
///
/// Power-law skew is what makes some Object Summaries huge (the paper's
/// Christos Faloutsos OS has 1,309 tuples) while most stay small, so the
/// synthetic DBLP generator leans on this sampler heavily.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
};

}  // namespace osum::util

#endif  // OSUM_UTIL_RNG_H_
