#include "util/stats.h"

#include <cassert>
#include <cmath>

namespace osum::util {

double Summary::Mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Summary::Min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::Max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace osum::util
