// Clang thread-safety-analysis annotation macros (no-ops elsewhere).
//
// These macros turn locking contracts into compile-time checkable
// capabilities: a mutex declared CAPABILITY is something a thread can
// hold, GUARDED_BY ties a field to the capability that must be held to
// touch it, and REQUIRES/ACQUIRE/RELEASE describe what a function expects
// or does. Under Clang with -Wthread-safety (always on for this project's
// targets; promoted to -Werror=thread-safety by the OSUM_LINT lane, see
// scripts/lint.sh) a guarded field read without its lock, a lock-scope
// mistake, or a REQUIRES violation is a compile error. Under GCC every
// macro expands to nothing, so the annotated tree builds identically.
//
// Use the util::Mutex/util::CondVar/util::MutexLock wrappers
// (util/mutex.h) rather than raw std primitives in concurrent code — the
// std types carry no annotations, so the analysis cannot see them (and
// scripts/lint.sh greps them out of the migrated layers).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#ifndef OSUM_UTIL_THREAD_ANNOTATIONS_H_
#define OSUM_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define OSUM_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define OSUM_THREAD_ANNOTATION__(x)
#endif

/// Declares a class to be a capability (e.g. CAPABILITY("mutex")).
#define CAPABILITY(x) OSUM_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY OSUM_THREAD_ANNOTATION__(scoped_lockable)

/// Field/variable may only be accessed while holding the capability.
#define GUARDED_BY(x) OSUM_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding it.
#define PT_GUARDED_BY(x) OSUM_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the capabilities to be held on entry (and does not
/// release them).
#define REQUIRES(...) \
  OSUM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  OSUM_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capabilities and holds them on return.
#define ACQUIRE(...) \
  OSUM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  OSUM_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capabilities (which must be held on entry).
#define RELEASE(...) \
  OSUM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  OSUM_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  OSUM_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capabilities held (documents and
/// checks against self-deadlock on non-reentrant locks).
#define EXCLUDES(...) OSUM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function (runtime-)asserts the capability is held and tells the
/// analysis so for the rest of the calling scope — the bridge for
/// invariants a mutex does not model, e.g. util::ThreadRole's
/// "loop thread only" affinity.
#define ASSERT_CAPABILITY(x) \
  OSUM_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the capability that guards its class.
#define RETURN_CAPABILITY(x) OSUM_THREAD_ANNOTATION__(lock_returned(x))

/// Ordering hints for deadlock detection.
#define ACQUIRED_BEFORE(...) \
  OSUM_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  OSUM_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Escape hatch: body is not analyzed. Use only where the analysis cannot
/// follow a correct pattern, and say why at the use site.
#define NO_THREAD_SAFETY_ANALYSIS \
  OSUM_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // OSUM_UTIL_THREAD_ANNOTATIONS_H_
