#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <latch>
#include <utility>

namespace osum::util {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(std::max<size_t>(num_threads, 1));
  for (size_t i = 0; i < std::max<size_t>(num_threads, 1); ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Stop(); }

void ThreadPool::Stop() {
  MutexLock stop_lock(stop_mu_);
  {
    MutexLock lock(mu_);
    if (stop_) return;  // already stopped; stop_mu_ ordered us after the join
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    // Post-stop the workers may already have drained and exited; enqueueing
    // would drop the task on the floor without anyone noticing. Refuse
    // instead, and let the caller deliver its completion another way.
    if (stop_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return true;
}

size_t ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Explicit predicate loop (not the lambda overload) so the guarded
      // reads stay inside this annotated scope.
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = std::min(pool->size(), n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared by reference with the tasks; wait() below keeps the frame alive
  // until the last count_down.
  std::atomic<size_t> cursor{0};
  std::latch done(static_cast<ptrdiff_t>(workers));
  auto drain = [&cursor, &done, &fn, n] {
    for (size_t i = cursor.fetch_add(1, std::memory_order_relaxed); i < n;
         i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
    done.count_down();
  };
  for (size_t w = 0; w < workers; ++w) {
    // A stopped pool rejects the submission; run the share inline so the
    // latch still reaches zero (ParallelFor degrades to a serial loop).
    if (!pool->Submit(drain)) drain();
  }
  done.wait();
}

}  // namespace osum::util
