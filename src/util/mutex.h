// Annotated synchronization primitives for Clang thread-safety analysis.
//
// Thin, zero-overhead wrappers over std::mutex/std::condition_variable
// that carry the capability annotations from util/thread_annotations.h.
// All concurrent code in util/serve/net uses these instead of the raw std
// types so that every guarded field can say GUARDED_BY(mu_), every
// lock-requiring helper can say REQUIRES(mu_), and the OSUM_LINT lane
// (-Werror=thread-safety, see scripts/lint.sh) can reject undisciplined
// access at compile time.
//
// ThreadRole is the capability for invariants a mutex does not model:
// "this state is only touched by the thread currently playing role X"
// (e.g. net::Server's loop thread owns all connection state). It is a
// runtime-asserted, analysis-visible affinity check, with explicit
// ownership handoff at real synchronization points (thread spawn/join).
#ifndef OSUM_UTIL_MUTEX_H_
#define OSUM_UTIL_MUTEX_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/thread_annotations.h"

namespace osum::util {

/// std::mutex with capability annotations. Non-reentrant; prefer
/// MutexLock over manual Lock/Unlock pairs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock scope: the only way most call sites should hold a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to util::Mutex. Wait() releases and reacquires
/// the mutex, so the analysis-facing contract is REQUIRES(mu): held on
/// entry, held again on return — but any guarded state may have changed
/// across the wait, which is why callers loop on their predicate.
///
/// Note for annotated code: prefer an explicit
///   while (!condition) cv_.Wait(mu_);
/// loop over the predicate-lambda overload — the lambda is analyzed as a
/// separate unannotated function, so guarded reads inside it would need
/// their own annotations the language cannot express on a closure.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands ownership back without unlocking so the Mutex
    // capability state matches reality on return.
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  /// Convenience for unannotated contexts (tests): loops until pred().
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Returns false iff the deadline passed without a notification
  /// (callers still re-check their predicate either way).
  bool WaitUntil(Mutex& mu,
                 std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(lk, deadline);
    lk.release();
    return status == std::cv_status::no_timeout;
  }

  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Capability for single-threaded-ownership invariants ("loop thread
/// only"). The thread that constructs the role owns it; ownership moves
/// only via BindToCurrentThread(), which callers must invoke at a real
/// synchronization point (before a thread exists, inside the newly
/// spawned thread, or after joining it) — the atomic store orders the
/// handoff but does not create one.
///
/// AssertHeld() aborts (assert) if called off the owning thread, and via
/// ASSERT_CAPABILITY tells the analysis the role is held for the rest of
/// the scope, which is what lets methods marked REQUIRES(role_) be called
/// from loop-entry callbacks.
class CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() : owner_(std::this_thread::get_id()) {}
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void BindToCurrentThread() {
    owner_.store(std::this_thread::get_id(), std::memory_order_release);
  }

  void AssertHeld() const ASSERT_CAPABILITY(this) {
    assert(owner_.load(std::memory_order_acquire) ==
           std::this_thread::get_id());
  }

  bool HeldByCurrentThread() const {
    return owner_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

 private:
  std::atomic<std::thread::id> owner_;
};

}  // namespace osum::util

#endif  // OSUM_UTIL_MUTEX_H_
