// Small string helpers (tokenization, case folding, joining) shared by the
// inverted index, dataset generators and report formatters.
#ifndef OSUM_UTIL_STRING_UTIL_H_
#define OSUM_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace osum::util {

/// ASCII lower-casing (the datasets are ASCII by construction).
std::string ToLower(std::string_view s);

/// Splits `s` into alphanumeric tokens, lower-cased. Everything that is not
/// [A-Za-z0-9] acts as a separator. "Power-law Relationships" ->
/// {"power", "law", "relationships"}.
std::vector<std::string> TokenizeWords(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("12.50" -> "12.5", "3.00" -> "3").
std::string FormatDouble(double v, int digits = 3);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace osum::util

#endif  // OSUM_UTIL_STRING_UTIL_H_
