#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace osum::util {

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> TokenizeWords(std::string_view s) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  return s;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace osum::util
