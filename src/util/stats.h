// Access-path accounting and summary statistics.
//
// The paper's efficiency discussion (Section 5.3 and Figure 10f) reasons
// about the *number of access-path invocations* ("in the worst case we need
// up to n I/O accesses ... Avoidance Condition 2 still requires an I/O
// access even when it returns no results"). IoStats makes that observable:
// the relational engine bumps these counters on every logical SELECT, so
// benches and tests can assert the avoidance conditions actually save work.
#ifndef OSUM_UTIL_STATS_H_
#define OSUM_UTIL_STATS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace osum::util {

/// Counters for logical database work. Cheap to copy; diffable.
struct IoStats {
  /// Number of access-path invocations (each corresponds to one SQL
  /// statement in the paper's Algorithm 4/5, i.e. one "I/O access").
  uint64_t select_calls = 0;
  /// Number of tuples materialized by those calls.
  uint64_t tuples_read = 0;
  /// Number of index probes (hash lookups) performed.
  uint64_t index_probes = 0;

  IoStats operator-(const IoStats& o) const {
    return IoStats{select_calls - o.select_calls, tuples_read - o.tuples_read,
                   index_probes - o.index_probes};
  }
  void Reset() { *this = IoStats{}; }
};

/// Running summary (mean / min / max / percentiles) of a sample set.
class Summary {
 public:
  void Add(double v) { values_.push_back(v); }

  size_t count() const { return values_.size(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Percentile in [0, 100]; linear interpolation between order statistics.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

 private:
  std::vector<double> values_;
};

}  // namespace osum::util

#endif  // OSUM_UTIL_STATS_H_
