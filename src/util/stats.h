// Access-path accounting and summary statistics.
//
// The paper's efficiency discussion (Section 5.3 and Figure 10f) reasons
// about the *number of access-path invocations* ("in the worst case we need
// up to n I/O accesses ... Avoidance Condition 2 still requires an I/O
// access even when it returns no results"). IoStats makes that observable:
// the relational engine bumps these counters on every logical SELECT, so
// benches and tests can assert the avoidance conditions actually save work.
#ifndef OSUM_UTIL_STATS_H_
#define OSUM_UTIL_STATS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

namespace osum::util {

/// Counters for logical database work. Cheap to copy; diffable.
struct IoStats {
  /// Number of access-path invocations (each corresponds to one SQL
  /// statement in the paper's Algorithm 4/5, i.e. one "I/O access").
  uint64_t select_calls = 0;
  /// Number of tuples materialized by those calls.
  uint64_t tuples_read = 0;
  /// Number of index probes (hash lookups) performed.
  uint64_t index_probes = 0;

  IoStats operator-(const IoStats& o) const {
    return IoStats{select_calls - o.select_calls, tuples_read - o.tuples_read,
                   index_probes - o.index_probes};
  }
  void Reset() { *this = IoStats{}; }
};

/// Thread-safe IoStats twin for access paths shared by concurrent queries
/// (rel::Database, core::OsBackend). Writers bump the counters with relaxed
/// atomics — they are pure accounting, never used for synchronization.
/// Copy/assign snapshot the counters so owners (e.g. rel::Database) remain
/// movable; copying while writers are active yields a merely approximate
/// snapshot, same as reading the counters mid-run.
struct AtomicIoStats {
  std::atomic<uint64_t> select_calls{0};
  std::atomic<uint64_t> tuples_read{0};
  std::atomic<uint64_t> index_probes{0};

  AtomicIoStats() = default;
  AtomicIoStats(const AtomicIoStats& o) { *this = o; }
  AtomicIoStats& operator=(const AtomicIoStats& o) {
    select_calls.store(o.select_calls.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    tuples_read.store(o.tuples_read.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    index_probes.store(o.index_probes.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  /// One logical SELECT materializing `tuples` tuples via `probes` index
  /// probes — the single-call form keeps hot paths at three relaxed adds.
  void CountSelect(uint64_t tuples, uint64_t probes) {
    select_calls.fetch_add(1, std::memory_order_relaxed);
    tuples_read.fetch_add(tuples, std::memory_order_relaxed);
    index_probes.fetch_add(probes, std::memory_order_relaxed);
  }

  /// Plain-struct snapshot (for diffing with IoStats::operator-).
  IoStats Snapshot() const {
    return IoStats{select_calls.load(std::memory_order_relaxed),
                   tuples_read.load(std::memory_order_relaxed),
                   index_probes.load(std::memory_order_relaxed)};
  }

  void Reset() {
    select_calls.store(0, std::memory_order_relaxed);
    tuples_read.store(0, std::memory_order_relaxed);
    index_probes.store(0, std::memory_order_relaxed);
  }
};

/// Running summary (mean / min / max / percentiles) of a sample set.
class Summary {
 public:
  void Add(double v) { values_.push_back(v); }

  size_t count() const { return values_.size(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Percentile in [0, 100]; linear interpolation between order statistics.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

 private:
  std::vector<double> values_;
};

}  // namespace osum::util

#endif  // OSUM_UTIL_STATS_H_
