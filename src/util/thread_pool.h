// Fixed-size worker pool and fan-out/fan-in helpers.
//
// Built for the batched query path (search::SearchContext::QueryBatch):
// queries are embarrassingly parallel against shared immutable structures,
// so all that is needed is a FIFO pool and a dynamic-scheduling
// ParallelFor (joined via std::latch). Tasks must not throw — there is no
// cross-thread exception channel.
#ifndef OSUM_UTIL_THREAD_POOL_H_
#define OSUM_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace osum::util {

/// Fixed-size FIFO thread pool. Stop() (or destruction) drains
/// already-submitted tasks, then joins the workers; submission after the
/// pool stopped has defined, non-silent behavior (see Submit /
/// SubmitWithFuture).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues `task` for execution on some worker. `task` must not throw.
  /// Returns true when enqueued. After Stop() has begun the task is NOT
  /// enqueued (the workers may already be gone, so a late push would be
  /// silently dropped) — it is destroyed unrun and Submit returns false,
  /// so callers that must deliver a completion can do so themselves.
  bool Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Enqueues `fn` and returns a future for its result (the asynchronous
  /// submission path of serve::QueryService). Unlike Submit, `fn` may
  /// throw: the exception is captured in the future and rethrown by
  /// get(). Blocking on the future from a task running on this same pool
  /// is subject to the ParallelFor deadlock caveat below — the producer
  /// task must already be running, not queued behind the waiter.
  /// After Stop() the task runs INLINE on the calling thread instead: the
  /// returned future always resolves (a future that silently never
  /// becomes ready would deadlock its consumer).
  template <typename Fn>
  auto SubmitWithFuture(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::move(fn));
    std::future<Result> future = task->get_future();
    if (!Submit([task] { (*task)(); })) {
      (*task)();  // pool stopped: the packaged_task still captures throws
    }
    return future;
  }

  /// Stops accepting new work, drains every already-enqueued task, then
  /// joins the workers. Idempotent and safe to call concurrently (late
  /// callers block until the first call finishes joining). Must not be
  /// called from a task running on this pool (self-join). The destructor
  /// calls it.
  void Stop() EXCLUDES(stop_mu_, mu_);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0).
  static size_t HardwareThreads();

 private:
  void WorkerLoop() EXCLUDES(mu_);

  /// Serializes Stop() callers through the join phase, so "Stop returned"
  /// always means "workers joined" — even for the loser of a Stop race.
  /// Always taken before mu_.
  Mutex stop_mu_ ACQUIRED_BEFORE(mu_);
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  /// Immutable after the constructor returns (only Stop joins through it,
  /// serialized by stop_mu_); not guarded.
  std::vector<std::thread> workers_;
};

/// Runs fn(0), ..., fn(n-1) across the pool's workers with dynamic
/// scheduling (a shared atomic cursor, so uneven iteration costs balance
/// out) and blocks until every iteration has finished. `fn` must be safe to
/// invoke concurrently and must not throw. A pool of size <= 1 degrades to
/// a serial loop on the calling thread.
///
/// Must NOT be called from a task running on `pool` itself: the blocking
/// wait would occupy a worker while its sub-tasks sit behind it in the
/// FIFO queue, deadlocking once every worker waits this way. Nested
/// parallelism needs a second pool.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace osum::util

#endif  // OSUM_UTIL_THREAD_POOL_H_
