#include "util/table_printer.h"

#include <algorithm>

#include "util/string_util.h"

namespace osum::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v));
  AddRow(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(widths[c] - cell.size(), ' ')
         << (c + 1 < header_.size() ? " | " : " |");
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void PrintHeading(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace osum::util
