// Lightweight wall-clock timing used by the benchmark harnesses.
#ifndef OSUM_UTIL_TIMER_H_
#define OSUM_UTIL_TIMER_H_

#include <chrono>

namespace osum::util {

/// Wall-clock stopwatch with millisecond/microsecond readouts.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace osum::util

#endif  // OSUM_UTIL_TIMER_H_
