#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace osum::util {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextU64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection to remove
  // modulo bias.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    __uint128_t m = static_cast<__uint128_t>(r) * bound;
    if (static_cast<uint64_t>(m) >= threshold) {
      return static_cast<uint64_t>(m >> 64);
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
}

double ZipfSampler::H(double x) const {
  // Integral of 1/x^s; the s == 1 case degenerates to log.
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  // Rejection-inversion (Hormann & Derflinger). Average < 2 iterations.
  for (;;) {
    double u = h_x1_ + rng->NextDouble() * (h_n_ - h_x1_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (std::abs(static_cast<double>(k) - x) <= 0.5 ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s_)) {
      return k - 1;  // 0-based rank
    }
  }
}

}  // namespace osum::util
