// Wire codec for QueryRequest and QueryResponse: a versioned,
// endianness-stable binary format (the canonical cross-process form), a
// JSON form (for CLIs, logs and non-C++ consumers), and the deterministic
// text fingerprint the equivalence tests compare.
//
// Binary format v1 — all integers little-endian regardless of host,
// doubles as their IEEE-754 bit pattern in a little-endian u64, strings as
// u32 length + raw bytes:
//
//   header   magic "OSUM" | u16 version (1 or 2) | u8 kind (1=request,
//            2=response)
//   request  str keywords | u64 l | u64 max_results | u8 algorithm |
//            u8 use_prelim | u8 ranking
//            v2 appends: u64 deadline_micros (the relative time budget;
//            MUST be nonzero — a request without a deadline encodes as v1,
//            so every value has exactly one encoding)
//   response u8 status_code | str status_message |
//            u8 cache_hit | f64 compute_micros | u64 epoch |
//            u32 num_results | num_results * result
//   result   u32 relation | u64 tuple | f64 subject_importance |
//            u32 num_nodes | num_nodes * node |
//            f64 selection_importance | u32 num_selected |
//            num_selected * i32 node_id
//   node     i32 parent (-1 for the root) | i32 gds_node | u32 relation |
//            u64 tuple | i32 depth | f64 local_importance
//
// Nodes appear in the OsTree's BFS arena order (parent index < child
// index); children lists are reconstructed from the parent pointers, and
// each node's depth is verified against its parent's on decode.
//
// Guarantees (pinned by tests/api_codec_test.cc and the checked-in golden
// blob):
//   - Round-trip identity: Encode(Decode(bytes)) == bytes for any bytes
//     Encode produced, and Decode(Encode(x)) compares byte-identical to x
//     under DeterministicResponseText.
//   - Decode never crashes on hostile input: truncation, bad magic /
//     version / kind / enum values, and malformed trees all come back as
//     Status kCodecError.
//
// The JSON form mirrors the same fields and the same versioning rule
// ({"v":1,...}, or {"v":2,...,"deadline_micros":N} for deadline-carrying
// requests); doubles are
// printed with %.17g so they parse back bit-exact, and u64 fields share
// JSON's usual 2^53 integer precision limit — binary is the canonical
// format, JSON the interoperable one.
#ifndef OSUM_API_CODEC_H_
#define OSUM_API_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "api/query.h"
#include "api/status.h"

namespace osum::api {

/// Baseline version of the wire format; responses are always emitted at
/// v1 (the status-code byte is append-only, so new codes ride on v1).
/// Decoders reject versions they do not know.
inline constexpr uint16_t kWireVersion = 1;

/// Request revision carrying `deadline_micros`. Encoders pick the lowest
/// version expressing the request (v1 iff no deadline), so v1 consumers
/// keep working until a deadline actually appears on the wire.
inline constexpr uint16_t kWireVersionDeadline = 2;

// -- Binary (canonical) ----------------------------------------------------

/// Encodes at the lowest version that can express the request: v1 when
/// deadline_micros == 0 (byte-identical to the pre-deadline format), v2
/// otherwise.
std::string EncodeRequest(const QueryRequest& request);

/// Encodes at a specific version, for callers pinned to an old peer.
/// A request whose fields the version cannot carry is a typed
/// kCodecError — v1 cannot carry a deadline, and v2 requires one (each
/// value has exactly one canonical encoding).
StatusOr<std::string> EncodeRequestAt(const QueryRequest& request,
                                      uint16_t version);

StatusOr<QueryRequest> DecodeRequest(std::string_view bytes);

std::string EncodeResponse(const QueryResponse& response);
StatusOr<QueryResponse> DecodeResponse(std::string_view bytes);

// -- JSON ------------------------------------------------------------------

/// One-line canonical JSON document (fixed field order, %.17g doubles), so
/// ToJson(FromJson(doc)) reproduces doc byte-for-byte.
std::string RequestToJson(const QueryRequest& request);
StatusOr<QueryRequest> RequestFromJson(std::string_view json);

std::string ResponseToJson(const QueryResponse& response);
StatusOr<QueryResponse> ResponseFromJson(std::string_view json);

// -- Deterministic text ----------------------------------------------------

/// Exact fingerprint of a result list: every field of every node and
/// selection, doubles in hexfloat. Two lists fingerprint identically iff
/// they are byte-identical — the headline equivalence invariant of the
/// concurrency and serving test suites (promoted from the former
/// tests-only result serializer).
std::string DeterministicResultText(const ResultList& results);

/// Status line + result fingerprint. Deliberately excludes QueryStats
/// (timings and cache outcomes vary run to run); use it to compare what a
/// caller would observe, not how it was produced.
std::string DeterministicResponseText(const QueryResponse& response);

/// Lowercase hex of `bytes` (and back), for embedding binary wire blobs in
/// text: golden files, the CLI's `query --wire binary` output.
std::string ToHex(std::string_view bytes);
StatusOr<std::string> FromHex(std::string_view hex);

}  // namespace osum::api

#endif  // OSUM_API_CODEC_H_
