#include "api/codec.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "core/os_export.h"

namespace osum::api {
namespace {

// ---------------------------------------------------------------------------
// Binary primitives. Explicit byte shifts, not memcpy of host integers, so
// the format is identical on any endianness.
// ---------------------------------------------------------------------------

constexpr char kMagic[4] = {'O', 'S', 'U', 'M'};
constexpr uint8_t kKindRequest = 1;
constexpr uint8_t kKindResponse = 2;

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  for (int i = 0; i < 2; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked little-endian reader. The first failure latches: every
/// subsequent read returns zero values, and the caller checks ok() once at
/// the end (or wherever a count needs validating before use).
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  void Fail(std::string message) {
    if (error_.empty()) {
      error_ = std::move(message);
      error_ += " (offset " + std::to_string(pos_) + ")";
    }
  }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(bytes_[pos_++]);
  }
  uint16_t U16() { return ReadLe<uint16_t>(2); }
  uint32_t U32() { return ReadLe<uint32_t>(4); }
  uint64_t U64() { return ReadLe<uint64_t>(8); }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  double F64() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t len = U32();
    if (!Need(len)) return {};
    std::string s(bytes_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  /// Validates an element count against the bytes actually left: a count
  /// that could not possibly be backed by `min_bytes_each` payload is
  /// corrupt, and rejecting it here keeps hostile lengths from turning
  /// into huge allocations.
  bool CheckCount(uint64_t count, size_t min_bytes_each, const char* what) {
    if (!ok()) return false;
    if (count > remaining() / min_bytes_each) {
      Fail(std::string(what) + " count " + std::to_string(count) +
           " exceeds remaining payload");
      return false;
    }
    return true;
  }

 private:
  bool Need(size_t n) {
    if (!ok()) return false;
    if (remaining() < n) {
      Fail("truncated input: need " + std::to_string(n) + " more byte(s)");
      return false;
    }
    return true;
  }

  template <typename T>
  T ReadLe(size_t n) {
    if (!Need(n)) return 0;
    uint64_t v = 0;
    for (size_t i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += n;
    return static_cast<T>(v);
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  std::string error_;
};

void PutHeader(std::string* out, uint8_t kind, uint16_t version) {
  out->append(kMagic, sizeof(kMagic));
  PutU16(out, version);
  PutU8(out, kind);
}

/// Checks magic/version/kind; on success the reader sits at the payload
/// and *version holds the decoded version. `max_version` is the newest
/// revision the caller can interpret (responses stay v1; requests accept
/// v1 and v2).
Status ReadHeader(Reader* r, uint8_t want_kind, uint16_t max_version,
                  uint16_t* version_out) {
  char magic[4];
  for (char& c : magic) c = static_cast<char>(r->U8());
  if (!r->ok()) return Status::CodecError(r->error());
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::CodecError("bad magic: not an OSUM wire document");
  }
  uint16_t version = r->U16();
  if (r->ok() && (version < kWireVersion || version > max_version)) {
    return Status::CodecError("unsupported wire version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kWireVersion) +
                              (max_version > kWireVersion
                                   ? ".." + std::to_string(max_version)
                                   : "") +
                              ")");
  }
  uint8_t kind = r->U8();
  if (!r->ok()) return Status::CodecError(r->error());
  if (kind != want_kind) {
    return Status::CodecError(
        "wrong document kind " + std::to_string(kind) + " (expected " +
        std::to_string(want_kind) + ")");
  }
  *version_out = version;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Enum range checks (wire values are attacker-controlled).
// ---------------------------------------------------------------------------

StatusOr<core::SizeLAlgorithm> AlgorithmFromWire(uint64_t v) {
  if (v > static_cast<uint64_t>(core::SizeLAlgorithm::kBruteForce)) {
    return Status::CodecError("unknown algorithm id " + std::to_string(v));
  }
  return static_cast<core::SizeLAlgorithm>(v);
}

StatusOr<ResultRanking> RankingFromWire(uint64_t v) {
  if (v > static_cast<uint64_t>(ResultRanking::kSummaryImportance)) {
    return Status::CodecError("unknown ranking id " + std::to_string(v));
  }
  return static_cast<ResultRanking>(v);
}

StatusOr<StatusCode> StatusCodeFromWire(uint64_t v) {
  if (v > static_cast<uint64_t>(StatusCode::kDeadlineExceeded)) {
    return Status::CodecError("unknown status code " + std::to_string(v));
  }
  return static_cast<StatusCode>(v);
}

// ---------------------------------------------------------------------------
// Result payloads (shared between binary encode/decode).
// ---------------------------------------------------------------------------

void EncodeResult(std::string* out, const QueryResult& r) {
  PutU32(out, r.subject.relation);
  PutU64(out, r.subject.tuple);
  PutF64(out, r.subject_importance);
  PutU32(out, static_cast<uint32_t>(r.os.size()));
  for (size_t i = 0; i < r.os.size(); ++i) {
    const core::OsNode& n = r.os.node(static_cast<core::OsNodeId>(i));
    PutI32(out, n.parent);
    PutI32(out, n.gds_node);
    PutU32(out, n.relation);
    PutU64(out, n.tuple);
    PutI32(out, n.depth);
    PutF64(out, n.local_importance);
  }
  PutF64(out, r.selection.importance);
  PutU32(out, static_cast<uint32_t>(r.selection.nodes.size()));
  for (core::OsNodeId id : r.selection.nodes) PutI32(out, id);
}

// Per-element minimum encoded sizes, for Reader::CheckCount.
constexpr size_t kMinResultBytes = 4 + 8 + 8 + 4 + 8 + 4;  // empty os/sel
constexpr size_t kMinNodeBytes = 4 + 4 + 4 + 8 + 4 + 8;

bool DecodeResult(Reader* r, QueryResult* out) {
  out->subject.relation = r->U32();
  uint64_t subject_tuple = r->U64();
  if (r->ok() && subject_tuple > 0xFFFFFFFFull) {
    r->Fail("subject tuple id out of range");
    return false;
  }
  out->subject.tuple = static_cast<rel::TupleId>(subject_tuple);
  out->subject_importance = r->F64();
  uint32_t num_nodes = r->U32();
  if (!r->CheckCount(num_nodes, kMinNodeBytes, "os node")) return false;
  for (uint32_t i = 0; i < num_nodes; ++i) {
    int32_t parent = r->I32();
    int32_t gds_node = r->I32();
    uint32_t relation = r->U32();
    uint64_t tuple = r->U64();
    int32_t depth = r->I32();
    double importance = r->F64();
    if (!r->ok()) return false;
    if (tuple > 0xFFFFFFFFull) {
      r->Fail("os node tuple id out of range");
      return false;
    }
    // Rebuild through AddRoot/AddChild so the children lists and the BFS
    // invariant (parent index < child index) are restored exactly; the
    // encoded parent/depth must describe a well-formed arena.
    if (i == 0) {
      if (parent != core::kNoOsNode || depth != 0) {
        r->Fail("malformed os: node 0 must be the root");
        return false;
      }
      out->os.AddRoot(gds_node, relation, static_cast<rel::TupleId>(tuple),
                      importance);
    } else {
      if (parent < 0 || static_cast<uint32_t>(parent) >= i) {
        r->Fail("malformed os: node " + std::to_string(i) +
                " has parent " + std::to_string(parent));
        return false;
      }
      core::OsNodeId id =
          out->os.AddChild(parent, gds_node, relation,
                           static_cast<rel::TupleId>(tuple), importance);
      if (out->os.node(id).depth != depth) {
        r->Fail("malformed os: node " + std::to_string(i) +
                " encodes depth " + std::to_string(depth) +
                " but its parent implies " +
                std::to_string(out->os.node(id).depth));
        return false;
      }
    }
  }
  out->selection.importance = r->F64();
  uint32_t num_selected = r->U32();
  if (!r->CheckCount(num_selected, 4, "selection node")) return false;
  out->selection.nodes.reserve(num_selected);
  for (uint32_t i = 0; i < num_selected; ++i) {
    int32_t id = r->I32();
    if (!r->ok()) return false;
    if (id < 0 || static_cast<uint32_t>(id) >= num_nodes) {
      r->Fail("malformed selection: node id " + std::to_string(id) +
              " outside the os arena");
      return false;
    }
    out->selection.nodes.push_back(id);
  }
  return r->ok();
}

// ---------------------------------------------------------------------------
// JSON emission. One canonical, single-line form: fixed field order, %.17g
// doubles (parses back bit-exact for finite values; non-finite doubles are
// emitted as null and decode to NaN — binary is the canonical format).
// ---------------------------------------------------------------------------

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JsonString(const std::string& s) {
  return "\"" + core::JsonEscape(s) + "\"";
}

void AppendResultJson(std::string* out, const QueryResult& r) {
  *out += "{\"subject\":{\"relation\":" + std::to_string(r.subject.relation) +
          ",\"tuple\":" + std::to_string(r.subject.tuple) + "}";
  *out += ",\"importance\":" + JsonDouble(r.subject_importance);
  *out += ",\"os\":[";
  for (size_t i = 0; i < r.os.size(); ++i) {
    const core::OsNode& n = r.os.node(static_cast<core::OsNodeId>(i));
    if (i > 0) *out += ",";
    *out += "[" + std::to_string(n.parent) + "," +
            std::to_string(n.gds_node) + "," + std::to_string(n.relation) +
            "," + std::to_string(n.tuple) + "," + std::to_string(n.depth) +
            "," + JsonDouble(n.local_importance) + "]";
  }
  *out += "],\"selection\":{\"importance\":" +
          JsonDouble(r.selection.importance) + ",\"nodes\":[";
  for (size_t i = 0; i < r.selection.nodes.size(); ++i) {
    if (i > 0) *out += ",";
    *out += std::to_string(r.selection.nodes[i]);
  }
  *out += "]}}";
}

// ---------------------------------------------------------------------------
// JSON parsing: a minimal recursive-descent parser for the documents this
// codec emits (and hand-written equivalents). Depth-limited; every failure
// is a typed kCodecError, never a crash.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> fields;   // kObject

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue v;
    if (!ParseValue(&v, 0)) return Status::CodecError(Error());
    SkipSpace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after JSON document");
      return Status::CodecError(Error());
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::string Error() const {
    return error_ + " (offset " + std::to_string(pos_) + ")";
  }
  void Fail(std::string message) {
    if (error_.empty()) error_ = std::move(message);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    Fail(std::string("expected '") + c + "'");
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    Fail("unrecognized literal");
    return false;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      Fail("nesting too deep");
      return false;
    }
    SkipSpace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return false;
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return ConsumeLiteral("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return ConsumeLiteral("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->fields.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        Fail("unterminated object");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->items.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        Fail("unterminated array");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      Fail("expected string");
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return false;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else {
              Fail("bad \\u escape");
              return false;
            }
          }
          // UTF-8 encode the BMP codepoint (surrogate pairs are not
          // emitted by this codec; lone surrogates encode their raw value).
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          Fail("unknown escape");
          return false;
      }
    }
    Fail("unterminated string");
    return false;
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected value");
      return false;
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      Fail("malformed number");
      return false;
    }
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

// Checked double -> integer conversions. strtod happily produces values
// (1e300, inf) whose conversion to an integer type is undefined behavior,
// so every numeric field must pass through one of these — the codec's
// "hostile input decodes to kCodecError, never a crash" guarantee depends
// on it.

bool JsonToU64(double d, uint64_t* out) {
  // 2^64 exactly; d must be strictly below it (and finite, integral, >= 0).
  if (!std::isfinite(d) || d < 0 || d != std::floor(d) ||
      d >= 18446744073709551616.0) {
    return false;
  }
  *out = static_cast<uint64_t>(d);
  return true;
}

bool JsonToU32(double d, uint32_t* out) {
  uint64_t v = 0;
  if (!JsonToU64(d, &v) || v > 0xFFFFFFFFull) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

bool JsonToI32(double d, int32_t* out) {
  if (!std::isfinite(d) || d != std::floor(d) || d < -2147483648.0 ||
      d > 2147483647.0) {
    return false;
  }
  *out = static_cast<int32_t>(d);
  return true;
}

// Typed field extraction: each getter fails (kCodecError through the bool
// return) when the field is missing or has the wrong JSON type.

bool GetNumber(const JsonValue& obj, std::string_view key, double* out,
               std::string* err) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) {
    // A non-finite double is emitted as null; surface it as NaN rather
    // than a decode failure so JSON stays total over encoder outputs.
    if (v != nullptr && v->type == JsonValue::Type::kNull) {
      *out = std::nan("");
      return true;
    }
    *err = "missing or non-numeric field \"" + std::string(key) + "\"";
    return false;
  }
  *out = v->number;
  return true;
}

bool GetU64(const JsonValue& obj, std::string_view key, uint64_t* out,
            std::string* err) {
  double d = 0.0;
  if (!GetNumber(obj, key, &d, err)) return false;
  if (!JsonToU64(d, out)) {
    *err = "field \"" + std::string(key) +
           "\" is not a non-negative integer in range";
    return false;
  }
  return true;
}

bool GetBool(const JsonValue& obj, std::string_view key, bool* out,
             std::string* err) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kBool) {
    *err = "missing or non-boolean field \"" + std::string(key) + "\"";
    return false;
  }
  *out = v->boolean;
  return true;
}

bool GetString(const JsonValue& obj, std::string_view key, std::string* out,
               std::string* err) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kString) {
    *err = "missing or non-string field \"" + std::string(key) + "\"";
    return false;
  }
  *out = v->str;
  return true;
}

const JsonValue* GetTyped(const JsonValue& obj, std::string_view key,
                          JsonValue::Type type, const char* what,
                          std::string* err) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != type) {
    *err = std::string("missing or mistyped field \"") + std::string(key) +
           "\" (expected " + what + ")";
    return nullptr;
  }
  return v;
}

/// Checks the {"v":N,"kind":...} envelope shared by both document kinds;
/// on success *version_out holds the document's version (<= max_version).
Status CheckJsonEnvelope(const JsonValue& doc, std::string_view kind,
                         uint64_t max_version, uint64_t* version_out) {
  std::string err;
  uint64_t v = 0;
  if (!GetU64(doc, "v", &v, &err)) return Status::CodecError(err);
  if (v < kWireVersion || v > max_version) {
    return Status::CodecError("unsupported wire version " +
                              std::to_string(v));
  }
  *version_out = v;
  std::string k;
  if (!GetString(doc, "kind", &k, &err)) return Status::CodecError(err);
  if (k != kind) {
    return Status::CodecError("wrong document kind \"" + k + "\" (expected \"" +
                              std::string(kind) + "\")");
  }
  return Status::Ok();
}

StatusOr<QueryResult> ResultFromJson(const JsonValue& v) {
  std::string err;
  if (v.type != JsonValue::Type::kObject) {
    return Status::CodecError("result entries must be objects");
  }
  QueryResult r;
  const JsonValue* subject = GetTyped(v, "subject", JsonValue::Type::kObject,
                                      "object", &err);
  if (subject == nullptr) return Status::CodecError(err);
  uint64_t relation = 0, tuple = 0;
  if (!GetU64(*subject, "relation", &relation, &err) ||
      !GetU64(*subject, "tuple", &tuple, &err) ||
      relation > 0xFFFFFFFFull || tuple > 0xFFFFFFFFull) {
    return Status::CodecError(err.empty() ? "subject id out of range" : err);
  }
  r.subject.relation = static_cast<rel::RelationId>(relation);
  r.subject.tuple = static_cast<rel::TupleId>(tuple);
  if (!GetNumber(v, "importance", &r.subject_importance, &err)) {
    return Status::CodecError(err);
  }

  const JsonValue* os = GetTyped(v, "os", JsonValue::Type::kArray, "array",
                                 &err);
  if (os == nullptr) return Status::CodecError(err);
  for (size_t i = 0; i < os->items.size(); ++i) {
    const JsonValue& node = os->items[i];
    if (node.type != JsonValue::Type::kArray || node.items.size() != 6) {
      return Status::CodecError("os nodes must be 6-element arrays");
    }
    for (size_t f = 0; f < 5; ++f) {
      if (node.items[f].type != JsonValue::Type::kNumber) {
        return Status::CodecError("os node fields must be numbers");
      }
    }
    double importance = node.items[5].type == JsonValue::Type::kNull
                            ? std::nan("")
                            : node.items[5].number;
    if (node.items[5].type != JsonValue::Type::kNumber &&
        node.items[5].type != JsonValue::Type::kNull) {
      return Status::CodecError("os node fields must be numbers");
    }
    int32_t parent = 0, gds_node = 0, depth = 0;
    uint32_t relation_id = 0, tuple_id = 0;
    if (!JsonToI32(node.items[0].number, &parent) ||
        !JsonToI32(node.items[1].number, &gds_node) ||
        !JsonToU32(node.items[2].number, &relation_id) ||
        !JsonToU32(node.items[3].number, &tuple_id) ||
        !JsonToI32(node.items[4].number, &depth)) {
      return Status::CodecError("os node field out of range");
    }
    if (i == 0) {
      if (parent != core::kNoOsNode || depth != 0) {
        return Status::CodecError("malformed os: node 0 must be the root");
      }
      r.os.AddRoot(gds_node, relation_id, static_cast<rel::TupleId>(tuple_id),
                   importance);
    } else {
      if (parent < 0 || static_cast<size_t>(parent) >= i) {
        return Status::CodecError("malformed os: node " + std::to_string(i) +
                                  " has parent " + std::to_string(parent));
      }
      core::OsNodeId id =
          r.os.AddChild(parent, gds_node, relation_id,
                        static_cast<rel::TupleId>(tuple_id), importance);
      if (r.os.node(id).depth != depth) {
        return Status::CodecError("malformed os: inconsistent depth at node " +
                                  std::to_string(i));
      }
    }
  }

  const JsonValue* selection = GetTyped(v, "selection",
                                        JsonValue::Type::kObject, "object",
                                        &err);
  if (selection == nullptr) return Status::CodecError(err);
  if (!GetNumber(*selection, "importance", &r.selection.importance, &err)) {
    return Status::CodecError(err);
  }
  const JsonValue* nodes = GetTyped(*selection, "nodes",
                                    JsonValue::Type::kArray, "array", &err);
  if (nodes == nullptr) return Status::CodecError(err);
  for (const JsonValue& id : nodes->items) {
    if (id.type != JsonValue::Type::kNumber) {
      return Status::CodecError("selection node ids must be numbers");
    }
    int32_t node_id = 0;
    if (!JsonToI32(id.number, &node_id)) {
      return Status::CodecError("selection node id out of range");
    }
    if (node_id < 0 || static_cast<size_t>(node_id) >= r.os.size()) {
      return Status::CodecError("malformed selection: node id " +
                                std::to_string(node_id) +
                                " outside the os arena");
    }
    r.selection.nodes.push_back(node_id);
  }
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// Binary entry points
// ---------------------------------------------------------------------------

std::string EncodeRequest(const QueryRequest& request) {
  uint16_t version = request.deadline_micros() == 0 ? kWireVersion
                                                    : kWireVersionDeadline;
  StatusOr<std::string> bytes = EncodeRequestAt(request, version);
  // Unreachable: the auto-picked version always carries the request.
  return bytes.ok() ? *std::move(bytes) : std::string();
}

StatusOr<std::string> EncodeRequestAt(const QueryRequest& request,
                                      uint16_t version) {
  if (version != kWireVersion && version != kWireVersionDeadline) {
    return Status::CodecError("cannot encode request at unknown wire version " +
                              std::to_string(version));
  }
  // Version <-> deadline is strict both ways so every request value has
  // exactly one encoding (the canonical-decode invariant the hostile
  // sweeps rely on). Asking v1 to carry a deadline is a typed error, not
  // a silent truncation.
  if (version == kWireVersion && request.deadline_micros() != 0) {
    return Status::CodecError(
        "deadline_micros requires wire v2 (v1 cannot carry a deadline)");
  }
  if (version == kWireVersionDeadline && request.deadline_micros() == 0) {
    return Status::CodecError(
        "wire v2 requires a nonzero deadline_micros (deadline-less "
        "requests encode as v1)");
  }
  std::string out;
  PutHeader(&out, kKindRequest, version);
  PutStr(&out, request.keywords());
  const QueryOptions& o = request.options();
  PutU64(&out, o.l);
  PutU64(&out, o.max_results);
  PutU8(&out, static_cast<uint8_t>(o.algorithm));
  PutU8(&out, o.use_prelim ? 1 : 0);
  PutU8(&out, static_cast<uint8_t>(o.ranking));
  if (version == kWireVersionDeadline) {
    PutU64(&out, request.deadline_micros());
  }
  return out;
}

StatusOr<QueryRequest> DecodeRequest(std::string_view bytes) {
  Reader r(bytes);
  uint16_t version = 0;
  Status header = ReadHeader(&r, kKindRequest, kWireVersionDeadline, &version);
  if (!header.ok()) return header;
  std::string keywords = r.Str();
  QueryOptions o;
  o.l = r.U64();
  o.max_results = r.U64();
  uint8_t algorithm = r.U8();
  uint8_t use_prelim = r.U8();
  uint8_t ranking = r.U8();
  uint64_t deadline_micros = 0;
  if (version >= kWireVersionDeadline) {
    deadline_micros = r.U64();
    if (r.ok() && deadline_micros == 0) {
      // A v2 document without a deadline has a v1 encoding; accepting it
      // here would give one value two wire forms.
      return Status::CodecError("v2 request with zero deadline_micros");
    }
  }
  if (!r.ok()) return Status::CodecError(r.error());
  if (!r.AtEnd()) return Status::CodecError("trailing bytes after request");
  StatusOr<core::SizeLAlgorithm> alg = AlgorithmFromWire(algorithm);
  if (!alg.ok()) return alg.status();
  StatusOr<ResultRanking> rank = RankingFromWire(ranking);
  if (!rank.ok()) return rank.status();
  // Bools are strictly 0/1 on the wire: accepting any nonzero byte would
  // make decoding non-canonical (Encode(Decode(bytes)) != bytes), which
  // the hostile-mutation sweep in api_codec_test checks for.
  if (use_prelim > 1) {
    return Status::CodecError("use_prelim byte is not 0/1");
  }
  o.algorithm = *alg;
  o.use_prelim = use_prelim != 0;
  o.ranking = *rank;
  return QueryRequest(std::move(keywords), o)
      .WithDeadlineMicros(deadline_micros);
}

std::string EncodeResponse(const QueryResponse& response) {
  std::string out;
  PutHeader(&out, kKindResponse, kWireVersion);
  PutU8(&out, static_cast<uint8_t>(response.status.code()));
  PutStr(&out, response.status.message());
  PutU8(&out, response.stats.cache_hit ? 1 : 0);
  PutF64(&out, response.stats.compute_micros);
  PutU64(&out, response.stats.epoch);
  const ResultList& results = response.result_list();
  PutU32(&out, static_cast<uint32_t>(results.size()));
  for (const QueryResult& r : results) EncodeResult(&out, r);
  return out;
}

StatusOr<QueryResponse> DecodeResponse(std::string_view bytes) {
  Reader r(bytes);
  uint16_t version = 0;
  Status header = ReadHeader(&r, kKindResponse, kWireVersion, &version);
  if (!header.ok()) return header;
  uint8_t code = r.U8();
  std::string message = r.Str();
  QueryResponse out;
  uint8_t cache_hit = r.U8();
  if (r.ok() && cache_hit > 1) {
    // Strict 0/1 like the request's use_prelim: keeps decoding canonical.
    return Status::CodecError("cache_hit byte is not 0/1");
  }
  out.stats.cache_hit = cache_hit != 0;
  out.stats.compute_micros = r.F64();
  out.stats.epoch = r.U64();
  uint32_t num_results = r.U32();
  if (!r.CheckCount(num_results, kMinResultBytes, "result")) {
    return Status::CodecError(r.error());
  }
  auto results = std::make_shared<ResultList>();
  results->reserve(num_results);
  for (uint32_t i = 0; i < num_results; ++i) {
    QueryResult result;
    if (!DecodeResult(&r, &result)) return Status::CodecError(r.error());
    results->push_back(std::move(result));
  }
  if (!r.ok()) return Status::CodecError(r.error());
  if (!r.AtEnd()) return Status::CodecError("trailing bytes after response");
  StatusOr<StatusCode> status_code = StatusCodeFromWire(code);
  if (!status_code.ok()) return status_code.status();
  out.status = Status(*status_code, std::move(message));
  if (!out.status.ok() && !results->empty()) {
    // QueryResponse documents "results are empty whenever !ok()"; bytes
    // that claim both a failure and results violate the invariant and
    // must not be re-materialized as a value that no encoder produces.
    return Status::CodecError("non-OK status with non-empty results");
  }
  out.results = std::move(results);
  return out;
}

// ---------------------------------------------------------------------------
// JSON entry points
// ---------------------------------------------------------------------------

std::string RequestToJson(const QueryRequest& request) {
  const QueryOptions& o = request.options();
  // Same versioning rule as the binary form: v1 iff no deadline, so
  // pre-deadline documents stay byte-identical.
  uint16_t version = request.deadline_micros() == 0 ? kWireVersion
                                                    : kWireVersionDeadline;
  std::string out = "{\"v\":" + std::to_string(version) +
                    ",\"kind\":\"query_request\"";
  out += ",\"keywords\":" + JsonString(request.keywords());
  out += ",\"l\":" + std::to_string(o.l);
  out += ",\"max_results\":" + std::to_string(o.max_results);
  out += ",\"algorithm\":" + std::to_string(static_cast<int>(o.algorithm));
  out += std::string(",\"use_prelim\":") + (o.use_prelim ? "true" : "false");
  out += ",\"ranking\":" + std::to_string(static_cast<int>(o.ranking));
  if (version == kWireVersionDeadline) {
    out += ",\"deadline_micros\":" + std::to_string(request.deadline_micros());
  }
  out += "}";
  return out;
}

StatusOr<QueryRequest> RequestFromJson(std::string_view json) {
  StatusOr<JsonValue> parsed = JsonParser(json).Parse();
  if (!parsed.ok()) return parsed.status();
  const JsonValue& doc = *parsed;
  uint64_t version = 0;
  Status envelope = CheckJsonEnvelope(doc, "query_request",
                                      kWireVersionDeadline, &version);
  if (!envelope.ok()) return envelope;

  std::string err;
  std::string keywords;
  uint64_t l = 0, max_results = 0, algorithm = 0, ranking = 0;
  bool use_prelim = false;
  if (!GetString(doc, "keywords", &keywords, &err) ||
      !GetU64(doc, "l", &l, &err) ||
      !GetU64(doc, "max_results", &max_results, &err) ||
      !GetU64(doc, "algorithm", &algorithm, &err) ||
      !GetBool(doc, "use_prelim", &use_prelim, &err) ||
      !GetU64(doc, "ranking", &ranking, &err)) {
    return Status::CodecError(err);
  }
  uint64_t deadline_micros = 0;
  if (version >= kWireVersionDeadline) {
    if (!GetU64(doc, "deadline_micros", &deadline_micros, &err)) {
      return Status::CodecError(err);
    }
    if (deadline_micros == 0) {
      return Status::CodecError("v2 request with zero deadline_micros");
    }
  } else if (doc.Find("deadline_micros") != nullptr) {
    // v1 documents cannot carry a deadline; silently dropping the field
    // would be the JSON twin of the binary truncation bug.
    return Status::CodecError(
        "deadline_micros requires wire v2 (v1 cannot carry a deadline)");
  }
  StatusOr<core::SizeLAlgorithm> alg = AlgorithmFromWire(algorithm);
  if (!alg.ok()) return alg.status();
  StatusOr<ResultRanking> rank = RankingFromWire(ranking);
  if (!rank.ok()) return rank.status();
  QueryOptions o;
  o.l = static_cast<size_t>(l);
  o.max_results = static_cast<size_t>(max_results);
  o.algorithm = *alg;
  o.use_prelim = use_prelim;
  o.ranking = *rank;
  return QueryRequest(std::move(keywords), o)
      .WithDeadlineMicros(deadline_micros);
}

std::string ResponseToJson(const QueryResponse& response) {
  std::string out = "{\"v\":" + std::to_string(kWireVersion) +
                    ",\"kind\":\"query_response\"";
  out += ",\"status\":{\"code\":" +
         std::to_string(static_cast<int>(response.status.code())) +
         ",\"message\":" + JsonString(response.status.message()) + "}";
  out += ",\"stats\":{\"cache_hit\":";
  out += response.stats.cache_hit ? "true" : "false";
  out += ",\"compute_us\":" + JsonDouble(response.stats.compute_micros);
  out += ",\"epoch\":" + std::to_string(response.stats.epoch) + "}";
  out += ",\"results\":[";
  const ResultList& results = response.result_list();
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) out += ",";
    AppendResultJson(&out, results[i]);
  }
  out += "]}";
  return out;
}

StatusOr<QueryResponse> ResponseFromJson(std::string_view json) {
  StatusOr<JsonValue> parsed = JsonParser(json).Parse();
  if (!parsed.ok()) return parsed.status();
  const JsonValue& doc = *parsed;
  uint64_t version = 0;
  Status envelope = CheckJsonEnvelope(doc, "query_response", kWireVersion,
                                      &version);
  if (!envelope.ok()) return envelope;

  std::string err;
  const JsonValue* status = GetTyped(doc, "status", JsonValue::Type::kObject,
                                     "object", &err);
  if (status == nullptr) return Status::CodecError(err);
  uint64_t code = 0;
  std::string message;
  if (!GetU64(*status, "code", &code, &err) ||
      !GetString(*status, "message", &message, &err)) {
    return Status::CodecError(err);
  }
  StatusOr<StatusCode> status_code = StatusCodeFromWire(code);
  if (!status_code.ok()) return status_code.status();

  QueryResponse out;
  out.status = Status(*status_code, std::move(message));
  const JsonValue* stats = GetTyped(doc, "stats", JsonValue::Type::kObject,
                                    "object", &err);
  if (stats == nullptr) return Status::CodecError(err);
  if (!GetBool(*stats, "cache_hit", &out.stats.cache_hit, &err) ||
      !GetNumber(*stats, "compute_us", &out.stats.compute_micros, &err) ||
      !GetU64(*stats, "epoch", &out.stats.epoch, &err)) {
    return Status::CodecError(err);
  }

  const JsonValue* results = GetTyped(doc, "results", JsonValue::Type::kArray,
                                      "array", &err);
  if (results == nullptr) return Status::CodecError(err);
  auto list = std::make_shared<ResultList>();
  list->reserve(results->items.size());
  for (const JsonValue& item : results->items) {
    StatusOr<QueryResult> result = ResultFromJson(item);
    if (!result.ok()) return result.status();
    list->push_back(std::move(result).value());
  }
  if (!out.status.ok() && !list->empty()) {
    // Same invariant as the binary decoder: a failure carries no results.
    return Status::CodecError("non-OK status with non-empty results");
  }
  out.results = std::move(list);
  return out;
}

// ---------------------------------------------------------------------------
// Deterministic text + hex
// ---------------------------------------------------------------------------

std::string DeterministicResultText(const ResultList& results) {
  std::ostringstream out;
  out << std::hexfloat;
  for (const QueryResult& r : results) {
    out << "subject " << r.subject.relation << ':' << r.subject.tuple << '@'
        << r.subject_importance << '\n';
    out << "os";
    for (size_t i = 0; i < r.os.size(); ++i) {
      const core::OsNode& n = r.os.node(static_cast<core::OsNodeId>(i));
      out << ' ' << n.parent << '/' << n.gds_node << '/' << n.relation << '/'
          << n.tuple << '/' << n.depth << '/' << n.local_importance;
    }
    out << "\nselection " << r.selection.importance;
    for (core::OsNodeId id : r.selection.nodes) out << ' ' << id;
    out << '\n';
  }
  return out.str();
}

std::string DeterministicResponseText(const QueryResponse& response) {
  std::string out = "status ";
  out += std::to_string(static_cast<int>(response.status.code()));
  if (!response.status.message().empty()) {
    out += ' ';
    out += response.status.message();
  }
  out += '\n';
  out += DeterministicResultText(response.result_list());
  return out;
}

std::string ToHex(std::string_view bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

StatusOr<std::string> FromHex(std::string_view hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0) {
    return Status::CodecError("hex input has odd length");
  }
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::CodecError("non-hex character at offset " +
                                std::to_string(i));
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace osum::api
