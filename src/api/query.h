// The canonical public contract of the paradigm: "keywords in, ranked
// size-l OSs out", as versioned value types.
//
// QueryRequest bundles the keyword string with every result-affecting knob
// (the former loose `(string_view, QueryOptions)` tuple), validates itself
// into typed Status errors, and canonicalizes itself into the cache key the
// serving layer shards on. QueryResponse pairs a Status with the ranked
// results and per-query metadata (cache hit/miss, compute time, cache
// epoch) — so a genuine empty answer (kOk, zero results) is distinguishable
// from a failure, the precondition for negative caching and for serving
// across processes (api/codec.h gives both types a wire form).
//
// Layering: this header also *defines* the result vocabulary (Hit,
// QueryOptions, QueryResult, ResultRanking) that used to live in
// search/search_context.h — the api layer sits below search so
// SizeLSearchEngine, SearchContext and serve::QueryService can all speak
// these types natively. `osum::search` keeps aliases for source compat.
#ifndef OSUM_API_QUERY_H_
#define OSUM_API_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/status.h"
#include "core/os_tree.h"
#include "core/size_l.h"

namespace osum::api {

/// A (relation, tuple) keyword hit — the data-subject tuple t_DS a result
/// is rooted at.
struct Hit {
  rel::RelationId relation = 0;
  rel::TupleId tuple = 0;

  bool operator==(const Hit& o) const {
    return relation == o.relation && tuple == o.tuple;
  }
};

/// How result OSs are ranked against each other.
enum class ResultRanking : uint8_t {
  /// By the global importance of t_DS (cheap; computed before OS
  /// generation, so max_results caps the work).
  kSubjectImportance = 0,
  /// By Im(S) of the computed size-l OS — the combined "size-l and top-k
  /// ranking of OSs" the paper poses as future work (Section 7). Requires
  /// computing every hit's size-l OS before truncating to max_results.
  kSummaryImportance = 1,
};

/// Query-time knobs. Prefer building a QueryRequest; this struct is the
/// raw knob set the engine's compute path consumes.
struct QueryOptions {
  /// l — the synopsis size. 0 means "return the complete OS".
  size_t l = 15;
  /// Maximum number of data subjects to report.
  size_t max_results = 10;
  core::SizeLAlgorithm algorithm = core::SizeLAlgorithm::kTopPath;
  /// Generate a prelim-l OS (Algorithm 4) instead of the complete OS.
  bool use_prelim = true;
  ResultRanking ranking = ResultRanking::kSubjectImportance;

  /// Canonical serialization of every result-affecting knob, for result
  /// caching (serve::ResultCache): two QueryOptions produce byte-identical
  /// query output on the same context iff their fragments compare equal.
  /// New knobs MUST be added here or cached results go stale silently.
  std::string CacheKeyFragment() const;
};

/// Full cache identity of one (keywords, options) query against a frozen
/// context: the normalized keyword *set* (tokenized exactly like
/// InvertedIndex::SearchQuery, then sorted and deduplicated — AND semantics
/// make order and multiplicity irrelevant) joined with the options
/// fragment. "Christos  Faloutsos" and "faloutsos christos" share one key.
std::string CanonicalQueryKey(std::string_view keywords,
                              const QueryOptions& options);

/// One ranked answer: the data subject, its (partial) OS and the size-l
/// selection over it.
struct QueryResult {
  Hit subject;                    // the t_DS tuple
  double subject_importance = 0;  // global importance (ranking key)
  core::OsTree os;                // the OS the size-l was computed on
  core::Selection selection;      // the size-l OS
};

/// A ranked result list, and the shared-immutable form responses carry —
/// a cache hit hands every caller the same list without copying it.
using ResultList = std::vector<QueryResult>;
using SharedResults = std::shared_ptr<const ResultList>;

/// Guard against absurd synopsis sizes: l feeds an int32 generation depth
/// and an O(n*l)–O(n*l^2) selection pass, so a runaway l is a
/// denial-of-service, not a bigger summary. (The paper's sweeps stop at
/// l=50; this cap is three orders of magnitude above them.)
inline constexpr size_t kMaxSynopsisL = 65536;

/// One keyword query, as a value: keywords + knobs, with a fluent builder
///
///   api::QueryRequest("christos faloutsos").WithL(10).WithMaxResults(3)
///
/// Validation (`Validate` / `ValidatedKey`) is where the old silent
/// failure modes become typed errors: an empty keyword *set* (nothing
/// tokenizes) is kInvalidArgument, not an empty answer.
class QueryRequest {
 public:
  QueryRequest() = default;
  explicit QueryRequest(std::string keywords)
      : keywords_(std::move(keywords)) {}
  QueryRequest(std::string keywords, QueryOptions options)
      : keywords_(std::move(keywords)), options_(options) {}

  QueryRequest& WithKeywords(std::string keywords) {
    keywords_ = std::move(keywords);
    return *this;
  }
  QueryRequest& WithOptions(const QueryOptions& options) {
    options_ = options;
    return *this;
  }
  QueryRequest& WithL(size_t l) {
    options_.l = l;
    return *this;
  }
  QueryRequest& WithMaxResults(size_t max_results) {
    options_.max_results = max_results;
    return *this;
  }
  QueryRequest& WithAlgorithm(core::SizeLAlgorithm algorithm) {
    options_.algorithm = algorithm;
    return *this;
  }
  QueryRequest& WithPrelim(bool use_prelim) {
    options_.use_prelim = use_prelim;
    return *this;
  }
  QueryRequest& WithRanking(ResultRanking ranking) {
    options_.ranking = ranking;
    return *this;
  }
  QueryRequest& WithDeadlineMicros(uint64_t deadline_micros) {
    deadline_micros_ = deadline_micros;
    return *this;
  }

  const std::string& keywords() const { return keywords_; }
  const QueryOptions& options() const { return options_; }
  /// Relative time budget in microseconds; 0 means "no deadline". The
  /// serving layer converts it to an absolute deadline at admission and
  /// sheds the request (kDeadlineExceeded, no backend compute) once the
  /// budget is spent. Deliberately NOT part of the cache key: the deadline
  /// bounds *when* an answer is useful, never *what* the answer is, so two
  /// requests differing only in budget share one cached result.
  uint64_t deadline_micros() const { return deadline_micros_; }

  /// kOk, or kInvalidArgument naming the offending field: empty keyword
  /// set, max_results == 0, l > kMaxSynopsisL.
  Status Validate() const;

  /// Validate + CanonicalQueryKey in one tokenization pass — the serving
  /// hot path calls this once and threads the key through.
  StatusOr<std::string> ValidatedKey() const;

  /// CanonicalQueryKey(keywords, options); see ValidatedKey for the
  /// validated single-pass variant.
  std::string CacheKey() const { return CanonicalQueryKey(keywords_, options_); }

 private:
  std::string keywords_;
  QueryOptions options_;
  uint64_t deadline_micros_ = 0;  // 0 = no deadline
};

/// Per-query serving metadata carried on every response.
struct QueryStats {
  /// True when the results came from serve::ResultCache (including
  /// coalesced waits on an in-flight computation).
  bool cache_hit = false;
  /// True when the answer is negative (OK, zero results) — with cache_hit
  /// it distinguishes a negative-cache hit from a positive one. Serving-
  /// local observability, deliberately NOT part of the v1 wire format
  /// (it is derivable from status + results on the receiving side).
  bool negative = false;
  /// Wall time spent producing this response at the answering boundary
  /// (full compute on a miss, lookup cost on a hit).
  double compute_micros = 0.0;
  /// Cache invalidation epoch the results were served under (0 outside the
  /// serving layer).
  uint64_t epoch = 0;
};

/// What comes back: a Status, the ranked results (shared + immutable, so a
/// cache hit is zero-copy), and the serving metadata. `results()` is empty
/// whenever `!ok()`; an OK response with zero results is a genuine
/// negative answer.
struct QueryResponse {
  Status status;
  SharedResults results;  // may be null on failure; use result_list()
  QueryStats stats;

  static QueryResponse Success(SharedResults results, QueryStats stats);
  static QueryResponse Failure(Status status, QueryStats stats = {});

  bool ok() const { return status.ok(); }
  /// The ranked results; an empty list when results is null (failures).
  const ResultList& result_list() const;
};

}  // namespace osum::api

#endif  // OSUM_API_QUERY_H_
