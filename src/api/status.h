// Typed errors for the public query API.
//
// The query path used to report failure two incompatible ways: exceptions
// (backend faults) and silently-empty result lists (bad requests, no
// hits). Status makes the three outcomes distinct and wire-encodable:
//   - kOk + results        a genuine answer (possibly empty — "no data
//                          subject matches" is an answer, not an error)
//   - kInvalidArgument     the request itself is malformed (empty keyword
//                          set, max_results == 0, l over the cap)
//   - kBackendError        the join back end failed mid-query
//   - kCodecError          wire bytes/JSON could not be decoded
//   - kInternal            anything that indicates a bug in this library
//   - kDeadlineExceeded    the request's time budget expired before an
//                          answer could be produced (shed before compute,
//                          or a client-side receive timeout)
// StatusOr<T> carries either a value or a non-OK Status, for operations
// (codec decode) whose failure is an expected input condition.
#ifndef OSUM_API_STATUS_H_
#define OSUM_API_STATUS_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace osum::api {

/// Stable error taxonomy of the query API. Values are part of the v1 wire
/// format — append only, never renumber.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kBackendError = 2,
  kCodecError = 3,
  kInternal = 4,
  kDeadlineExceeded = 5,
};

/// Short stable identifier ("ok", "invalid_argument", ...) used by the
/// CLI, logs and the JSON wire form's documentation.
const char* StatusCodeName(StatusCode code);

/// A status code plus a human-readable message (empty for kOk).
class Status {
 public:
  /// Default is success, so `return {};` reads naturally.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status BackendError(std::string message) {
    return Status(StatusCode::kBackendError, std::move(message));
  }
  static Status CodecError(std::string message) {
    return Status(StatusCode::kCodecError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>", for logs and CLI output.
  std::string ToString() const;

  bool operator==(const Status& o) const {
    return code_ == o.code_ && message_ == o.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a T or a non-OK Status. Like absl::StatusOr, minus the
/// ceremony: value access on an error is an assert (debug) / UB (release),
/// so callers must branch on ok() first.
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value or from a non-OK status, so `return Decode(...)`
  /// and `return Status::CodecError(...)` both work.
  StatusOr(T value) : value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr needs a value or a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  /// kOk when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // kOk iff value_ holds
  std::optional<T> value_;
};

}  // namespace osum::api

#endif  // OSUM_API_STATUS_H_
