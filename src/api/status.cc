#include "api/status.h"

namespace osum::api {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kBackendError:
      return "backend_error";
    case StatusCode::kCodecError:
      return "codec_error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace osum::api
