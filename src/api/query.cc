#include "api/query.h"

#include <algorithm>

#include "util/string_util.h"

namespace osum::api {
namespace {

/// Sorted + deduplicated token set, tokenized exactly like
/// InvertedIndex::SearchQuery so the canonical key and the index agree on
/// what "the same query" means.
std::vector<std::string> NormalizedTokens(std::string_view keywords) {
  std::vector<std::string> tokens = util::TokenizeWords(keywords);
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

std::string KeyFromTokens(const std::vector<std::string>& tokens,
                          const QueryOptions& options) {
  // 0x1f/0x1e cannot appear in tokens ([a-z0-9] only), so the key is
  // collision-free between keyword sets and against the options fragment.
  std::string key = util::Join(tokens, "\x1f");
  key += '\x1e';
  key += options.CacheKeyFragment();
  return key;
}

/// Structural checks shared by Validate and ValidatedKey (everything
/// except the tokenization-dependent empty-keyword-set check).
Status ValidateOptions(const QueryOptions& options) {
  if (options.max_results == 0) {
    return Status::InvalidArgument("max_results must be positive");
  }
  if (options.l > kMaxSynopsisL) {
    return Status::InvalidArgument(
        "l=" + std::to_string(options.l) + " exceeds the synopsis cap of " +
        std::to_string(kMaxSynopsisL) + " (use l=0 for the complete OS)");
  }
  return Status::Ok();
}

}  // namespace

std::string QueryOptions::CacheKeyFragment() const {
  std::string out;
  out += "l=" + std::to_string(l);
  out += ";max=" + std::to_string(max_results);
  out += ";alg=" + std::to_string(static_cast<int>(algorithm));
  out += ";prelim=" + std::to_string(use_prelim ? 1 : 0);
  out += ";rank=" + std::to_string(static_cast<int>(ranking));
  return out;
}

std::string CanonicalQueryKey(std::string_view keywords,
                              const QueryOptions& options) {
  return KeyFromTokens(NormalizedTokens(keywords), options);
}

Status QueryRequest::Validate() const {
  Status s = ValidateOptions(options_);
  if (!s.ok()) return s;
  if (NormalizedTokens(keywords_).empty()) {
    return Status::InvalidArgument(
        "empty keyword set: no alphanumeric token in \"" + keywords_ + "\"");
  }
  return Status::Ok();
}

StatusOr<std::string> QueryRequest::ValidatedKey() const {
  Status s = ValidateOptions(options_);
  if (!s.ok()) return s;
  std::vector<std::string> tokens = NormalizedTokens(keywords_);
  if (tokens.empty()) {
    return Status::InvalidArgument(
        "empty keyword set: no alphanumeric token in \"" + keywords_ + "\"");
  }
  return KeyFromTokens(tokens, options_);
}

QueryResponse QueryResponse::Success(SharedResults results,
                                     QueryStats stats) {
  QueryResponse r;
  r.results = std::move(results);
  r.stats = stats;
  return r;
}

QueryResponse QueryResponse::Failure(Status status, QueryStats stats) {
  QueryResponse r;
  r.status = std::move(status);
  r.stats = stats;
  return r;
}

const ResultList& QueryResponse::result_list() const {
  static const ResultList kEmpty;
  return results == nullptr ? kEmpty : *results;
}

}  // namespace osum::api
