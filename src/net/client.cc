#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "api/codec.h"

namespace osum::net {
namespace {

api::Status Errno(const char* what) {
  return api::Status::BackendError(std::string(what) + ": " +
                                   std::strerror(errno));
}

uint32_t ReadLe32(const unsigned char* b) {
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

}  // namespace

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

api::StatusOr<Client> Client::Connect(const std::string& host, uint16_t port,
                                      int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return api::Status::BackendError("bad host address: " + host);
  }
  // Connect non-blocking and poll with the timeout: a plain blocking
  // connect() to a blackholed address waits on the kernel's SYN-retry
  // schedule (minutes), which is exactly the hang timeout_ms exists to
  // prevent.
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    api::Status status = Errno("fcntl");
    ::close(fd);
    return status;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      api::Status status = Errno("connect");
      ::close(fd);
      return status;
    }
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    for (;;) {
      int rc = ::poll(&p, 1, timeout_ms > 0 ? timeout_ms : -1);
      if (rc < 0 && errno == EINTR) continue;
      if (rc == 0) {
        ::close(fd);
        return api::Status::DeadlineExceeded("connect timed out");
      }
      if (rc < 0) {
        api::Status status = Errno("poll");
        ::close(fd);
        return status;
      }
      break;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
        err != 0) {
      if (err != 0) errno = err;
      api::Status status = Errno("connect");
      ::close(fd);
      return status;
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {  // back to blocking I/O
    api::Status status = Errno("fcntl");
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    // Both directions: SO_RCVTIMEO bounds a server that never answers,
    // SO_SNDTIMEO bounds one that never drains (send() blocks once the
    // peer's receive window and our send buffer fill).
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  return Client(fd);
}

api::Status Client::Send(const api::QueryRequest& request) {
  return SendPayload(api::EncodeRequest(request));
}

api::Status Client::SendPayload(std::string_view payload) {
  return SendBytes(EncodeFrame(payload));
}

api::Status Client::SendBytes(std::string_view bytes) {
  if (fd_ < 0) return api::Status::BackendError("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO fired: the server stopped draining and TCP pushed
        // the backlog all the way back to us.
        return api::Status::DeadlineExceeded("send timed out");
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return {};
}

api::StatusOr<api::QueryResponse> Client::Receive() {
  if (fd_ < 0) return api::Status::BackendError("not connected");
  auto read_fully = [this](char* out, size_t want) -> api::Status {
    size_t got = 0;
    while (got < want) {
      ssize_t n = ::recv(fd_, out + got, want - got, 0);
      if (n == 0) {
        return api::Status::BackendError("connection closed by server");
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // SO_RCVTIMEO fired. Distinct from "connection closed" above:
          // a timeout means the budget ran out with the server possibly
          // still working, not that the backend failed.
          return api::Status::DeadlineExceeded("receive timed out");
        }
        return Errno("recv");
      }
      got += static_cast<size_t>(n);
    }
    return {};
  };
  unsigned char prefix[4];
  if (api::Status s = read_fully(reinterpret_cast<char*>(prefix), 4); !s.ok())
    return s;
  uint32_t len = ReadLe32(prefix);
  if (len > kDefaultMaxFrameBytes) {
    return api::Status::CodecError("oversized response frame");
  }
  std::string payload(len, '\0');
  if (api::Status s = read_fully(payload.data(), len); !s.ok()) return s;
  return api::DecodeResponse(payload);
}

void Client::CloseWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace osum::net
