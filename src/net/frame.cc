#include "net/frame.h"

namespace osum::net {
namespace {

uint32_t ReadLe32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  std::string out;
  out.reserve(4 + payload.size());
  uint32_t len = static_cast<uint32_t>(payload.size());
  out.push_back(static_cast<char>(len & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.append(payload);
  return out;
}

bool FrameReassembler::Feed(std::string_view bytes) {
  if (poisoned_) return false;
  buffer_.append(bytes);
  // Validate the length prefix as soon as it is complete, not only when
  // the whole frame has arrived: a hostile 4GB prefix must poison the
  // stream immediately instead of making us buffer toward it.
  if (buffered_bytes() >= 4 &&
      ReadLe32(buffer_.data() + consumed_) > max_frame_bytes_) {
    poisoned_ = true;
    buffer_.clear();
    consumed_ = 0;
    return false;
  }
  return true;
}

bool FrameReassembler::HasCompleteFrame() const {
  if (poisoned_ || buffered_bytes() < 4) return false;
  uint32_t len = ReadLe32(buffer_.data() + consumed_);
  // An oversized prefix counts as "Next() has work": calling it poisons
  // the stream, which the caller must observe to drop the connection.
  if (len > max_frame_bytes_) return true;
  return buffered_bytes() >= 4 + static_cast<size_t>(len);
}

std::optional<std::string> FrameReassembler::Next() {
  if (poisoned_ || buffered_bytes() < 4) return std::nullopt;
  uint32_t len = ReadLe32(buffer_.data() + consumed_);
  if (len > max_frame_bytes_) {  // only reachable via a shrunken limit
    poisoned_ = true;
    buffer_.clear();
    consumed_ = 0;
    return std::nullopt;
  }
  if (buffered_bytes() < 4 + static_cast<size_t>(len)) return std::nullopt;
  std::string payload = buffer_.substr(consumed_ + 4, len);
  consumed_ += 4 + static_cast<size_t>(len);
  // Compact lazily: one erase per ~half-buffer of consumed frames instead
  // of one memmove per frame.
  if (consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  // Re-check the next prefix so a poisonous length queued behind a valid
  // frame is caught on this call, mirroring Feed.
  if (buffered_bytes() >= 4 &&
      ReadLe32(buffer_.data() + consumed_) > max_frame_bytes_) {
    poisoned_ = true;
    buffer_.clear();
    consumed_ = 0;
  }
  return payload;
}

}  // namespace osum::net
