// A minimal epoll event loop for the TCP front end.
//
// Single-threaded by design: one thread calls Run(), and every fd
// callback, posted task and connection object is touched only from that
// thread. The two cross-thread entry points — Post() (used by pool
// workers to hand completed responses back to the loop) and Stop() — are
// internally synchronized and wake the loop through an eventfd.
//
// Level-triggered epoll: callbacks may leave data unread/unwritten and
// simply get called again, which keeps the per-event work bounded (and
// fair across connections) without edge-trigger bookkeeping.
#ifndef OSUM_NET_EVENT_LOOP_H_
#define OSUM_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace osum::net {

class EventLoop {
 public:
  /// Invoked with the ready epoll event mask (EPOLLIN | EPOLLOUT | ...).
  using FdCallback = std::function<void(uint32_t)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when epoll/eventfd creation failed at construction; a dead
  /// loop refuses Add and Run.
  bool ok() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  /// Registers `fd` with the interest set `events`. Loop thread only
  /// (or before Run starts).
  bool Add(int fd, uint32_t events, FdCallback callback);

  /// Changes the interest set of a registered fd. Loop thread only.
  bool Modify(int fd, uint32_t events);

  /// Unregisters `fd` and forgets its callback; the fd is NOT closed
  /// (pair with DeferClose so a number freed mid-dispatch cannot be
  /// reused by an accept in the same batch). Loop thread only.
  void Remove(int fd);

  /// Closes `fd` after the current dispatch batch completes (immediately
  /// when the loop is not running). Loop thread only.
  void DeferClose(int fd);

  /// Enqueues `fn` to run on the loop thread after the current dispatch
  /// batch. Thread-safe; wakes a blocked Run(). Tasks posted after Stop()
  /// may never run.
  void Post(std::function<void()> fn);

  /// Dispatches events until Stop(). Must be called by exactly one
  /// thread.
  void Run();

  /// Makes Run() return after the batch in flight. Thread-safe,
  /// idempotent.
  void Stop();

 private:
  /// Entry guard for the loop-thread-only methods: before Run() starts,
  /// rebinding the role to the caller is legal (setup is externally
  /// synchronized); once the loop runs, an off-thread caller trips the
  /// assert. Tells the analysis role_ is held for the rest of the scope.
  void AssertLoopThread() ASSERT_CAPABILITY(role_);

  void RunPosted() EXCLUDES(posted_mu_);

  /// The "loop thread only" contract above, as a checkable capability:
  /// the loop-thread-only methods assert it (see AssertLoopThread in the
  /// .cc), and the analysis ties the fields below to it. Before Run()
  /// starts (and after it returns) the role is free to rebind — that is
  /// what lets the owning thread Add() during setup and the destructor
  /// run anywhere sane.
  util::ThreadRole role_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Post/Stop wake a blocked epoll_wait
  std::atomic<bool> stop_{false};

  // Loop-thread-only state.
  std::unordered_map<int, FdCallback> callbacks_ GUARDED_BY(role_);
  std::vector<int> deferred_close_ GUARDED_BY(role_);
  /// Atomic because the pre-Run role handoff reads it from whichever
  /// thread calls Add/DeferClose during setup.
  std::atomic<bool> running_{false};

  util::Mutex posted_mu_;
  std::vector<std::function<void()>> posted_ GUARDED_BY(posted_mu_);
};

}  // namespace osum::net

#endif  // OSUM_NET_EVENT_LOOP_H_
