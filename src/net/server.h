// The TCP front end: a non-blocking epoll server speaking length-prefixed
// api::codec binary-v1 frames, multiplexing pipelined requests onto
// serve::QueryService.
//
// Protocol. Each inbound frame (net/frame.h) carries one encoded
// QueryRequest; each outbound frame carries one encoded QueryResponse.
// Clients may pipeline: responses come back in request order per
// connection, whatever order the pool finishes them in. A well-framed
// payload that fails to decode is answered in-band with kCodecError (the
// stream stays in sync); a framing violation (length prefix over
// max_frame_bytes) closes the connection — there is no way to find the
// next frame boundary after one.
//
// Threading. One event-loop thread owns every connection object;
// QueryService workers compute responses and hand the encoded bytes back
// via EventLoop::Post through a mutex-guarded mailbox that Shutdown
// disconnects first, so a worker can never touch a dying loop.
//
// Backpressure. Responses queue per connection in request order. Once the
// queued bytes pass outbound_high_watermark the server stops reading that
// connection (pipelined requests stay in the kernel buffer and, via TCP
// flow control, at the sender) and resumes below half the watermark; a
// reader so slow the queue would pass outbound_hard_cap is disconnected
// instead of growing the heap without bound.
//
// Fairness. Decoded requests are dispatched round-robin across ready
// connections, one frame per connection per turn, with at most
// max_inflight_requests outstanding in the service at once. A pipelining
// firehose therefore queues in its own reassembler (and, via TCP, at the
// sender) while an interactive connection's single request goes straight
// through — one connection cannot monopolize the pool. Deadlines are
// stamped at dispatch (request.deadline_micros relative to the service
// clock), so time spent queued in the front end counts against the
// budget and expired work is shed (kDeadlineExceeded) without compute.
//
// Shutdown. Graceful drain, the same pin-counted idea as
// QueryService::RebindContext: stop accepting, stop reading, then wait
// until every accepted request — dispatched, or complete in a
// reassembler awaiting its round-robin turn — has been answered AND its
// response bytes fully written, and only then stop the loop. Requests
// still half-buffered in a reassembler are abandoned by design ("drain"
// means finish what was accepted, not read more). A peer that refuses to drain
// its socket forfeits after drain_timeout_ms and its undelivered
// responses are counted, not silently lost.
#ifndef OSUM_NET_SERVER_H_
#define OSUM_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/status.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "serve/query_service.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace osum::net {

struct ServerOptions {
  /// IPv4 dotted-quad to bind ("127.0.0.1" keeps the bench/test server
  /// off external interfaces; "0.0.0.0" serves them all).
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via Server::port().
  uint16_t port = 0;
  int listen_backlog = 128;
  /// Framing violation threshold (see net/frame.h).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Queued-response bytes per connection above which reads pause.
  size_t outbound_high_watermark = 1 << 20;
  /// Queued-response bytes per connection above which the peer is
  /// declared too slow and disconnected (the OOM guard).
  size_t outbound_hard_cap = 32u << 20;
  /// Graceful-drain budget for Shutdown(); afterwards remaining
  /// connections are closed and their undelivered responses counted.
  int drain_timeout_ms = 30'000;
  /// Server-wide cap on requests dispatched into the service but not yet
  /// answered. Beyond it, decoded-but-undispatched frames wait in their
  /// connection's reassembler and the round-robin resumes as responses
  /// complete — the window that makes per-connection fairness real
  /// (without it, one firehose could still fill the pool's queue).
  size_t max_inflight_requests = 256;
};

/// Monotonic server counters (a snapshot; see Server::stats).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  /// Complete frames received (whether or not their payload decoded).
  uint64_t frames_in = 0;
  /// Responses queued for delivery (every frame_in gets exactly one,
  /// unless its connection died first).
  uint64_t responses_out = 0;
  /// Well-framed payloads that failed DecodeRequest (answered in-band
  /// with kCodecError).
  uint64_t malformed_frames = 0;
  /// Connections dropped for an impossible length prefix.
  uint64_t framing_violations = 0;
  /// Connections dropped for passing outbound_hard_cap.
  uint64_t backpressure_closes = 0;
  /// Responses that could not be delivered (peer disconnected with work
  /// in flight, or forfeited at drain timeout). Includes complete frames
  /// never dispatched because their connection died first.
  uint64_t dropped_responses = 0;
  /// Responses whose status was kDeadlineExceeded — requests shed by the
  /// service (at admission or dequeue) because their budget expired.
  uint64_t responses_deadline_exceeded = 0;
  /// High-water mark of per-connection queued response bytes — the
  /// observable the backpressure tests bound.
  uint64_t max_queued_bytes = 0;
};

class Server {
 public:
  /// `service` must outlive the server. Call Start() to serve.
  explicit Server(serve::QueryService* service, ServerOptions options = {});
  ~Server();  // Shutdown() if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the event-loop thread. Non-OK when the
  /// socket cannot be set up (address in use, bad bind address, ...).
  api::Status Start();

  /// The bound port (resolves option port 0 to the kernel's pick).
  /// Locked: port_ is written by Start() on whatever thread calls it, and
  /// read here possibly from another — the annotation pass surfaced this
  /// as an unguarded cross-thread read.
  uint16_t port() const {
    util::MutexLock lock(lifecycle_mu_);
    return port_;
  }

  /// Graceful drain then stop; idempotent. Returns true when every
  /// in-flight request drained within drain_timeout_ms, false when
  /// remaining connections were forcibly closed.
  bool Shutdown();

  ServerStats stats() const;

 private:
  /// One queued response slot, in request order; bytes arrive when the
  /// service answers.
  struct Slot {
    bool ready = false;
    std::string bytes;  // already framed
  };

  /// Per-connection state; loop thread only.
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    FrameReassembler frames;
    /// Responses in request order; front is next on the wire.
    std::deque<Slot> slots;
    uint64_t first_slot_seq = 0;  // sequence number of slots.front()
    uint64_t next_slot_seq = 0;
    std::string outbound;  // framed bytes being written
    size_t outbound_offset = 0;
    /// Sum of undelivered response bytes (ready slots + outbound) — the
    /// quantity backpressure bounds.
    size_t queued_bytes = 0;
    uint32_t armed_events = 0;
    bool reads_paused = false;
    bool peer_closed_read = false;
    /// Whether this connection is queued in ready_ (avoids duplicates).
    bool in_ready = false;

    explicit Connection(size_t max_frame_bytes) : frames(max_frame_bytes) {}
  };

  /// The cross-thread hand-off point between pool workers and the loop.
  /// Workers Post() through it under its mutex; Shutdown nulls `loop`
  /// under the same mutex before stopping the loop, so a late completion
  /// can never touch a dying loop (its response is simply abandoned — the
  /// connection it was for is being force-closed anyway, which is where
  /// the drop is counted).
  struct Mailbox {
    util::Mutex mu;
    EventLoop* loop GUARDED_BY(mu) = nullptr;
  };

  /// Every method below marked REQUIRES(loop_role_) is "loop thread
  /// only": callable from loop callbacks (which assert the role on
  /// entry), from Start() before the loop thread exists, or from
  /// Shutdown() after joining it — the role rebinds at exactly those
  /// handoff points.
  void OnAccept() REQUIRES(loop_role_);
  void OnConnectionEvent(uint64_t id, uint32_t events)
      REQUIRES(loop_role_);
  void OnReadable(Connection* conn) REQUIRES(loop_role_);
  /// Queues `conn` at the back of the round-robin if it has a complete
  /// frame and is not queued already.
  void EnqueueReady(Connection* conn) REQUIRES(loop_role_);
  /// The fairness scheduler: takes ONE frame from each ready connection
  /// in turn, decoding and dispatching it into the service, until the
  /// inflight window fills, the ready queue empties, or the per-pump
  /// budget is spent (then it re-posts itself so socket events
  /// interleave).
  void PumpScheduler() REQUIRES(loop_role_);
  /// Posts a PumpScheduler continuation if one is not already pending.
  void SchedulePump() REQUIRES(loop_role_);
  /// Decodes and dispatches one frame payload for `conn`: malformed
  /// payloads are answered in-band immediately; valid requests get their
  /// deadline stamped against the service clock and enter the service as
  /// a single-request batch, counting against the inflight window.
  void DispatchFrame(Connection* conn, const std::string& payload)
      REQUIRES(loop_role_);
  void OnResponseReady(uint64_t id, uint64_t seq, std::string framed)
      REQUIRES(loop_role_);
  /// Fills the slot `seq` with its framed response bytes (idempotent;
  /// ignores sequences already delivered or never parsed).
  void DeliverResponse(Connection* conn, uint64_t seq, std::string framed)
      REQUIRES(loop_role_);
  /// Moves ready front slots into the write buffer, writes until EAGAIN,
  /// arms/disarms EPOLLOUT, applies backpressure. May close `conn`;
  /// returns false when it did.
  bool FlushConnection(Connection* conn) REQUIRES(loop_role_);
  /// Recomputes and applies the connection's epoll interest set.
  void UpdateInterest(Connection* conn) REQUIRES(loop_role_);
  void CloseConnection(uint64_t id) REQUIRES(loop_role_);
  void BeginDrain() REQUIRES(loop_role_);
  /// Signals Shutdown once draining and no connection holds undelivered
  /// work.
  void MaybeFinishDrain() REQUIRES(loop_role_) EXCLUDES(drain_mu_);
  bool HasPendingWork() const REQUIRES(loop_role_);

  serve::QueryService* const service_;
  const ServerOptions options_;

  /// "One loop thread owns every connection object", as a capability:
  /// held by the constructing thread, handed to the loop thread at the
  /// top of Start()'s spawn lambda, and reclaimed by Shutdown() right
  /// after joining it (each handoff sits on a real synchronization
  /// point). Server models its own role rather than borrowing
  /// EventLoop's so the REQUIRES expressions stay within this class.
  util::ThreadRole loop_role_;

  EventLoop loop_;
  std::thread loop_thread_;
  int listen_fd_ GUARDED_BY(loop_role_) = -1;
  uint16_t port_ GUARDED_BY(lifecycle_mu_) = 0;
  bool started_ GUARDED_BY(lifecycle_mu_) = false;
  bool stopped_ GUARDED_BY(lifecycle_mu_) = false;
  bool drain_ok_ GUARDED_BY(lifecycle_mu_) = true;
  /// Serializes Start/Shutdown/destructor; mutable so port() can lock it.
  mutable util::Mutex lifecycle_mu_;

  std::shared_ptr<Mailbox> mailbox_ = std::make_shared<Mailbox>();

  // Loop-thread-only connection table.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_
      GUARDED_BY(loop_role_);
  uint64_t next_connection_id_ GUARDED_BY(loop_role_) = 1;

  // Fairness state; loop thread only. ready_ holds ids (not pointers) so
  // a connection closed while queued is skipped harmlessly.
  std::deque<uint64_t> ready_ GUARDED_BY(loop_role_);
  size_t inflight_requests_ GUARDED_BY(loop_role_) = 0;
  bool pump_scheduled_ GUARDED_BY(loop_role_) = false;

  std::atomic<bool> draining_{false};
  util::Mutex drain_mu_;
  util::CondVar drain_cv_;
  bool drain_idle_ GUARDED_BY(drain_mu_) = false;

  // Counters live as atomics so stats() needs no lock against the loop.
  struct {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> frames_in{0};
    std::atomic<uint64_t> responses_out{0};
    std::atomic<uint64_t> malformed_frames{0};
    std::atomic<uint64_t> framing_violations{0};
    std::atomic<uint64_t> backpressure_closes{0};
    std::atomic<uint64_t> dropped_responses{0};
    std::atomic<uint64_t> responses_deadline_exceeded{0};
    std::atomic<uint64_t> max_queued_bytes{0};
  } stats_;
};

}  // namespace osum::net

#endif  // OSUM_NET_SERVER_H_
