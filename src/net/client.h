// A small blocking client for the TCP front end — the counterpart the
// load generator (bench/bench_net.cc), the CLI `connect` command and the
// net test suite drive the server with.
//
// One Client is one TCP connection. Send*/Receive are plain blocking
// calls; pipelining is just "Send k times, then Receive k times" —
// responses come back in request order (server guarantee). A Client is
// single-threaded per direction: one thread may Send while another
// Receives (the load generator does exactly that), but neither side
// supports two concurrent callers.
//
// Lock-discipline note (see util/thread_annotations.h): Client owns no
// mutexes — the send and receive halves touch disjoint state and the
// per-direction exclusivity above is the caller's contract — so there is
// nothing here for the thread-safety analysis to annotate.
#ifndef OSUM_NET_CLIENT_H_
#define OSUM_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "api/query.h"
#include "api/status.h"
#include "net/frame.h"

namespace osum::net {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// IPv4 connect. `timeout_ms` bounds the connect itself (non-blocking
  /// connect + poll — a blackholed address fails with kDeadlineExceeded
  /// instead of hanging on the kernel's SYN retries) and every subsequent
  /// Receive (SO_RCVTIMEO) and Send* (SO_SNDTIMEO), so a dead, mute or
  /// non-draining server fails the call instead of hanging a test lane;
  /// 0 means wait forever.
  static api::StatusOr<Client> Connect(const std::string& host, uint16_t port,
                                       int timeout_ms = 10'000);

  bool connected() const { return fd_ >= 0; }

  /// Frames and sends one encoded QueryRequest.
  api::Status Send(const api::QueryRequest& request);

  /// Frames and sends an arbitrary payload — hostile-input tests use this
  /// to put a well-framed non-request on the wire.
  api::Status SendPayload(std::string_view payload);

  /// Sends raw bytes with no framing at all (for violating the framing
  /// layer itself: oversized prefixes, split writes).
  api::Status SendBytes(std::string_view bytes);

  /// Blocks for the next response frame and decodes it. Connection close
  /// comes back as kBackendError; a receive timeout as kDeadlineExceeded
  /// (the budget ran out — the server may still be working); an
  /// undecodable or oversized frame as kCodecError.
  api::StatusOr<api::QueryResponse> Receive();

  /// Half-close: tells the server this client is done sending (the server
  /// answers what it already received, flushes, then closes).
  void CloseWrite();

  void Close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace osum::net

#endif  // OSUM_NET_CLIENT_H_
