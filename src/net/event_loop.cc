#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace osum::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (ok()) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      ::close(wake_fd_);
      wake_fd_ = -1;
    }
  }
}

EventLoop::~EventLoop() {
  AssertLoopThread();  // Run() has returned; the destroying thread owns us
  for (int fd : deferred_close_) ::close(fd);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::AssertLoopThread() {
  if (!running_.load(std::memory_order_acquire)) {
    role_.BindToCurrentThread();
  }
  role_.AssertHeld();
}

bool EventLoop::Add(int fd, uint32_t events, FdCallback callback) {
  AssertLoopThread();
  if (!ok()) return false;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  callbacks_[fd] = std::move(callback);
  return true;
}

bool EventLoop::Modify(int fd, uint32_t events) {
  AssertLoopThread();
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::Remove(int fd) {
  AssertLoopThread();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::DeferClose(int fd) {
  AssertLoopThread();
  if (running_.load(std::memory_order_relaxed)) {
    deferred_close_.push_back(fd);
  } else {
    ::close(fd);
  }
}

void EventLoop::Post(std::function<void()> fn) {
  {
    util::MutexLock lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    // A full eventfd counter (EAGAIN) already guarantees a pending wake.
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void EventLoop::RunPosted() {
  std::vector<std::function<void()>> batch;
  {
    util::MutexLock lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::Run() {
  if (!ok()) return;
  // The calling thread takes the loop role for the duration of Run();
  // thereafter every loop-thread-only entry point asserts it.
  role_.BindToCurrentThread();
  AssertLoopThread();
  running_.store(true, std::memory_order_release);
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself is broken; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // A callback earlier in this batch may have Remove()d this fd;
      // DeferClose keeps the number un-reusable until the batch ends, so
      // a hit here really is stale and skipping is correct.
      auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      // Copy before invoking: the callback may Remove(fd) — erasing the
      // map entry we are executing — or Add() and rehash the map.
      FdCallback callback = it->second;
      callback(events[i].events);
    }
    RunPosted();
    for (int fd : deferred_close_) ::close(fd);
    deferred_close_.clear();
  }
  // One final drain so work posted just before Stop() is not stranded.
  RunPosted();
  for (int fd : deferred_close_) ::close(fd);
  deferred_close_.clear();
  running_.store(false, std::memory_order_release);
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

}  // namespace osum::net
