#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "api/codec.h"

namespace osum::net {
namespace {

api::Status Errno(const char* what) {
  return api::Status::Internal(std::string(what) + ": " +
                               std::strerror(errno));
}

}  // namespace

Server::Server(serve::QueryService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

Server::~Server() { Shutdown(); }

api::Status Server::Start() {
  util::MutexLock lifecycle(lifecycle_mu_);
  if (started_) return api::Status::Internal("server already started");
  if (!loop_.ok()) return api::Status::Internal("event loop setup failed");
  // No loop thread exists yet (started_ was false, lifecycle_mu_ held):
  // the caller takes the loop role for the setup phase and hands it to
  // the loop thread at spawn below.
  loop_role_.BindToCurrentThread();
  loop_role_.AssertHeld();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return api::Status::Internal("bad bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, options_.listen_backlog) != 0) {
    api::Status status = Errno("bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    api::Status status = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);

  if (!loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) {
        loop_role_.AssertHeld();  // loop callbacks run on the loop thread
        OnAccept();
      })) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return api::Status::Internal("epoll registration failed");
  }
  {
    util::MutexLock lock(mailbox_->mu);
    mailbox_->loop = &loop_;
  }
  loop_thread_ = std::thread([this] {
    // Role handoff: the spawned thread IS the loop thread from here until
    // Run() returns (std::thread construction synchronizes-with this).
    loop_role_.BindToCurrentThread();
    loop_.Run();
  });
  started_ = true;
  return {};
}

bool Server::Shutdown() {
  util::MutexLock lifecycle(lifecycle_mu_);
  if (!started_ || stopped_) return drain_ok_;
  draining_.store(true, std::memory_order_release);
  loop_.Post([this] {
    loop_role_.AssertHeld();  // posted tasks run on the loop thread
    BeginDrain();
  });
  {
    // Explicit deadline loop (the predicate overload would hide the
    // guarded drain_idle_ read inside an unannotated lambda). WaitUntil
    // returning false = deadline passed; re-check the predicate once more
    // either way, per the usual condvar contract.
    util::MutexLock lock(drain_mu_);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.drain_timeout_ms);
    while (!drain_idle_) {
      if (!drain_cv_.WaitUntil(drain_mu_, deadline)) break;
    }
    drain_ok_ = drain_idle_;
  }
  // Detach late pool completions from the loop before stopping it: any
  // worker inside the mailbox right now finishes its Post first (mutex),
  // any worker arriving later sees loop == nullptr and abandons the
  // response — for a connection this shutdown is about to force-close.
  {
    util::MutexLock lock(mailbox_->mu);
    mailbox_->loop = nullptr;
  }
  loop_.Stop();
  loop_thread_.join();
  // The loop thread is gone (join synchronizes-with its exit); reclaim
  // the loop role — its state is ours to finalize.
  loop_role_.BindToCurrentThread();
  loop_role_.AssertHeld();
  for (auto& [id, conn] : connections_) {
    uint64_t undispatched = 0;
    while (conn->frames.HasCompleteFrame() && conn->frames.Next()) {
      ++undispatched;
    }
    stats_.dropped_responses.fetch_add(
        undispatched + conn->slots.size() +
            (conn->outbound_offset < conn->outbound.size() ? 1 : 0),
        std::memory_order_relaxed);
    ::close(conn->fd);
    stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  stopped_ = true;
  return drain_ok_;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted =
      stats_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_closed =
      stats_.connections_closed.load(std::memory_order_relaxed);
  s.frames_in = stats_.frames_in.load(std::memory_order_relaxed);
  s.responses_out = stats_.responses_out.load(std::memory_order_relaxed);
  s.malformed_frames =
      stats_.malformed_frames.load(std::memory_order_relaxed);
  s.framing_violations =
      stats_.framing_violations.load(std::memory_order_relaxed);
  s.backpressure_closes =
      stats_.backpressure_closes.load(std::memory_order_relaxed);
  s.dropped_responses =
      stats_.dropped_responses.load(std::memory_order_relaxed);
  s.responses_deadline_exceeded =
      stats_.responses_deadline_exceeded.load(std::memory_order_relaxed);
  s.max_queued_bytes =
      stats_.max_queued_bytes.load(std::memory_order_relaxed);
  return s;
}

void Server::OnAccept() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or a transient accept error: wait for the next event
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);  // raced BeginDrain; refuse new work
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t id = next_connection_id_++;
    auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
    conn->id = id;
    conn->fd = fd;
    conn->armed_events = EPOLLIN;
    if (!loop_.Add(fd, EPOLLIN,
                   [this, id](uint32_t events) {
                     loop_role_.AssertHeld();
                     OnConnectionEvent(id, events);
                   })) {
      ::close(fd);
      continue;
    }
    connections_[id] = std::move(conn);
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::OnConnectionEvent(uint64_t id, uint32_t events) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  if (events & (EPOLLERR | EPOLLHUP)) {
    CloseConnection(id);
    return;
  }
  if (events & EPOLLIN) {
    OnReadable(conn);
    // OnReadable may have closed the connection (framing violation, read
    // error); EPOLLOUT for a dead connection is stale.
    it = connections_.find(id);
    if (it == connections_.end()) return;
    conn = it->second.get();
  }
  if (events & EPOLLOUT) FlushConnection(conn);
}

void Server::OnReadable(Connection* conn) {
  const uint64_t id = conn->id;
  // Bounded per event: level-triggered epoll re-delivers EPOLLIN while
  // bytes remain, so a firehose connection cannot starve the others.
  char buf[64 * 1024];
  for (int chunk = 0; chunk < 4; ++chunk) {
    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      if (!conn->frames.Feed(
              std::string_view(buf, static_cast<size_t>(n)))) {
        stats_.framing_violations.fetch_add(1, std::memory_order_relaxed);
        CloseConnection(id);
        return;
      }
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {  // peer finished sending; answer what we have, then close
      conn->peer_closed_read = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(id);
    return;
  }

  // Frames stay queued in the reassembler; the scheduler takes one per
  // connection per turn so a firehose cannot buy the whole pool with one
  // read event.
  EnqueueReady(conn);
  PumpScheduler();
  // PumpScheduler may have closed this connection (framing violation
  // surfaced by Next, or a flush failure).
  auto it = connections_.find(id);
  if (it != connections_.end()) FlushConnection(it->second.get());
}

void Server::EnqueueReady(Connection* conn) {
  if (conn->in_ready || !conn->frames.HasCompleteFrame()) return;
  conn->in_ready = true;
  ready_.push_back(conn->id);
}

void Server::SchedulePump() {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  loop_.Post([this] {
    loop_role_.AssertHeld();
    pump_scheduled_ = false;
    PumpScheduler();
  });
}

void Server::PumpScheduler() {
  // Per-call budget: yield back to the loop between bursts so reads and
  // writes interleave with dispatch even under a standing backlog.
  constexpr int kPumpBudget = 64;
  int budget = kPumpBudget;
  while (budget > 0 && !ready_.empty() &&
         inflight_requests_ < options_.max_inflight_requests) {
    uint64_t id = ready_.front();
    ready_.pop_front();
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;  // closed while queued
    Connection* conn = it->second.get();
    conn->in_ready = false;
    std::optional<std::string> payload = conn->frames.Next();
    if (conn->frames.poisoned()) {
      // A poisonous prefix queued behind valid frames surfaces here.
      stats_.framing_violations.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(id);
      continue;
    }
    if (!payload) continue;
    --budget;
    DispatchFrame(conn, *payload);
    // DispatchFrame answers hits/malformed inline (via the mailbox or
    // directly), which never erases the connection — but flushing might.
    EnqueueReady(conn);
    FlushConnection(conn);
  }
  if (!ready_.empty() &&
      inflight_requests_ < options_.max_inflight_requests) {
    SchedulePump();  // budget spent with runnable work left
  }
}

void Server::DispatchFrame(Connection* conn, const std::string& payload) {
  stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
  uint64_t seq = conn->next_slot_seq++;
  conn->slots.emplace_back();
  api::StatusOr<api::QueryRequest> decoded = api::DecodeRequest(payload);
  if (!decoded.ok()) {
    // Framing is intact, so the stream stays in sync: answer in-band.
    stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
    DeliverResponse(conn, seq,
                    EncodeFrame(api::EncodeResponse(
                        api::QueryResponse::Failure(decoded.status(),
                                                    api::QueryStats()))));
    return;
  }
  // The deadline becomes absolute here, at dispatch: time a request spent
  // waiting for its round-robin turn is already gone from its budget.
  uint64_t deadline = 0;
  if (decoded->deadline_micros() != 0) {
    deadline = service_->clock()->NowMicros() + decoded->deadline_micros();
  }
  ++inflight_requests_;
  const uint64_t id = conn->id;
  std::vector<api::QueryRequest> batch;
  batch.push_back(*std::move(decoded));
  // Hits answer inline on this (loop) thread, misses on the pool; every
  // answer funnels through the mailbox back to the loop, which alone
  // touches the connection.
  std::shared_ptr<Mailbox> mailbox = mailbox_;
  service_->SubmitBatch(
      std::move(batch), {deadline},
      [this, id, seq, mailbox](size_t, api::QueryResponse response) {
        if (response.status.code() == api::StatusCode::kDeadlineExceeded) {
          stats_.responses_deadline_exceeded.fetch_add(
              1, std::memory_order_relaxed);
        }
        // Encoding happens here — on a worker for misses — keeping the
        // loop thread out of the expensive part.
        std::string framed = EncodeFrame(api::EncodeResponse(response));
        util::MutexLock lock(mailbox->mu);
        if (mailbox->loop == nullptr) return;  // shutdown won the race
        mailbox->loop->Post(
            [this, id, seq, framed = std::move(framed)]() mutable {
              loop_role_.AssertHeld();
              OnResponseReady(id, seq, std::move(framed));
            });
      });
}

void Server::OnResponseReady(uint64_t id, uint64_t seq, std::string framed) {
  // The window slot frees whether or not the connection survived — the
  // request it covered is answered either way.
  if (inflight_requests_ > 0) --inflight_requests_;
  auto it = connections_.find(id);
  if (it != connections_.end()) {
    Connection* conn = it->second.get();
    DeliverResponse(conn, seq, std::move(framed));
    FlushConnection(conn);
  }  // else: peer left; drop counted at close
  PumpScheduler();  // a slot opened; resume the round-robin
}

void Server::DeliverResponse(Connection* conn, uint64_t seq,
                             std::string framed) {
  if (seq < conn->first_slot_seq) return;
  size_t index = static_cast<size_t>(seq - conn->first_slot_seq);
  if (index >= conn->slots.size()) return;
  Slot& slot = conn->slots[index];
  if (slot.ready) return;
  slot.ready = true;
  slot.bytes = std::move(framed);
  conn->queued_bytes += slot.bytes.size();
  stats_.responses_out.fetch_add(1, std::memory_order_relaxed);
  uint64_t queued = conn->queued_bytes;
  uint64_t seen = stats_.max_queued_bytes.load(std::memory_order_relaxed);
  while (queued > seen && !stats_.max_queued_bytes.compare_exchange_weak(
                              seen, queued, std::memory_order_relaxed)) {
  }
}

bool Server::FlushConnection(Connection* conn) {
  for (;;) {
    if (conn->outbound_offset >= conn->outbound.size()) {
      conn->outbound.clear();
      conn->outbound_offset = 0;
      // One response in the write buffer at a time keeps "undelivered
      // responses" countable when a connection dies mid-flush.
      if (!conn->slots.empty() && conn->slots.front().ready) {
        conn->outbound = std::move(conn->slots.front().bytes);
        conn->slots.pop_front();
        ++conn->first_slot_seq;
      } else {
        break;
      }
    }
    ssize_t n = ::write(conn->fd, conn->outbound.data() + conn->outbound_offset,
                        conn->outbound.size() - conn->outbound_offset);
    if (n > 0) {
      conn->outbound_offset += static_cast<size_t>(n);
      conn->queued_bytes -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConnection(conn->id);  // EPIPE, ECONNRESET, ...
    return false;
  }

  if (conn->queued_bytes > options_.outbound_hard_cap) {
    // The peer is not draining its socket and responses keep landing:
    // disconnecting is the only bound on memory.
    stats_.backpressure_closes.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn->id);
    return false;
  }
  if (!conn->reads_paused &&
      conn->queued_bytes > options_.outbound_high_watermark) {
    conn->reads_paused = true;  // stop parsing new requests; TCP pushes back
  } else if (conn->reads_paused &&
             conn->queued_bytes < options_.outbound_high_watermark / 2) {
    conn->reads_paused = false;
  }
  if (conn->peer_closed_read && conn->slots.empty() &&
      !conn->frames.HasCompleteFrame() &&
      conn->outbound_offset >= conn->outbound.size()) {
    // Peer done sending, we are done answering — and nothing complete is
    // still waiting for its round-robin turn (a half-closed peer may have
    // pipelined its whole burst before CloseWrite; each of those frames
    // is an accepted request that must be answered before we hang up).
    CloseConnection(conn->id);
    return false;
  }
  UpdateInterest(conn);
  MaybeFinishDrain();
  return true;
}

void Server::UpdateInterest(Connection* conn) {
  uint32_t want = 0;
  if (!conn->reads_paused && !conn->peer_closed_read &&
      !draining_.load(std::memory_order_acquire)) {
    want |= EPOLLIN;
  }
  if (conn->outbound_offset < conn->outbound.size()) want |= EPOLLOUT;
  if (want != conn->armed_events && loop_.Modify(conn->fd, want)) {
    conn->armed_events = want;
  }
}

void Server::CloseConnection(uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  // Complete frames never dispatched die with the connection; drain them
  // into the drop count so frames_in-level accounting still reconciles
  // (they were never frames_in, but they were accepted bytes).
  uint64_t undispatched = 0;
  while (conn->frames.HasCompleteFrame() && conn->frames.Next()) {
    ++undispatched;
  }
  stats_.dropped_responses.fetch_add(
      undispatched + conn->slots.size() +
          (conn->outbound_offset < conn->outbound.size() ? 1 : 0),
      std::memory_order_relaxed);
  loop_.Remove(conn->fd);
  loop_.DeferClose(conn->fd);
  connections_.erase(it);
  stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  MaybeFinishDrain();
}

void Server::BeginDrain() {
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    loop_.DeferClose(listen_fd_);
    listen_fd_ = -1;
  }
  // draining_ is already set, so UpdateInterest drops every EPOLLIN:
  // nothing new is read, in-flight answers keep flushing. Complete frames
  // already received still get dispatched — they were accepted.
  for (auto& [id, conn] : connections_) {
    UpdateInterest(conn.get());
    EnqueueReady(conn.get());
  }
  PumpScheduler();
  MaybeFinishDrain();
}

bool Server::HasPendingWork() const {
  for (const auto& [id, conn] : connections_) {
    if (!conn->slots.empty()) return true;
    if (conn->outbound_offset < conn->outbound.size()) return true;
    if (conn->frames.HasCompleteFrame()) return true;
  }
  return false;
}

void Server::MaybeFinishDrain() {
  if (!draining_.load(std::memory_order_acquire)) return;
  if (HasPendingWork()) return;
  {
    util::MutexLock lock(drain_mu_);
    drain_idle_ = true;
  }
  drain_cv_.NotifyAll();
}

}  // namespace osum::net
