// Length-prefixed framing for api::codec documents on a TCP stream.
//
// One frame is a u32 little-endian payload length followed by exactly that
// many payload bytes; the payload is one api::codec binary-v1 document
// (request or response — the codec header inside the payload carries the
// magic and kind). The prefix itself has no magic, so there is no way to
// resynchronize a stream after a framing violation: the only safe reaction
// to an impossible length is dropping the connection. A *well-framed*
// payload that fails to decode is different — framing is intact, so the
// server answers it in-band with kCodecError and the stream continues.
#ifndef OSUM_NET_FRAME_H_
#define OSUM_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace osum::net {

/// Default ceiling for one frame payload. Requests are tiny; responses
/// carry result trees, so the ceiling is generous — anything larger is a
/// corrupt or hostile length prefix, not a real document.
inline constexpr size_t kDefaultMaxFrameBytes = 16 * 1024 * 1024;

/// u32 LE length prefix + payload bytes.
std::string EncodeFrame(std::string_view payload);

/// Incremental per-connection frame reassembly. Feed() accepts arbitrary
/// chunks — any split the kernel produces, down to one byte at a time,
/// including inside the length prefix — and Next() yields complete
/// payloads in arrival order. A length prefix above max_frame_bytes
/// poisons the reassembler permanently (Feed returns false, Next returns
/// nothing): the connection must be dropped.
class FrameReassembler {
 public:
  explicit FrameReassembler(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends stream bytes. Returns false once poisoned (the bytes are
  /// discarded — nothing after a framing violation is trustworthy).
  bool Feed(std::string_view bytes);

  /// Pops the next complete frame payload, or nullopt when more bytes are
  /// needed (or the stream is poisoned).
  std::optional<std::string> Next();

  /// True when Next() would make progress: a complete frame is buffered,
  /// or the pending prefix is a framing violation Next() must surface.
  /// Lets a scheduler keep per-connection backlogs queued here and take
  /// one frame at a time without the pop-and-push-back dance.
  bool HasCompleteFrame() const;

  bool poisoned() const { return poisoned_; }

  /// Bytes buffered but not yet returned by Next() — bounded by one
  /// maximum frame plus one read chunk as long as the caller drains
  /// Next() after every Feed.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  const size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // compaction offset into buffer_
  bool poisoned_ = false;
};

}  // namespace osum::net

#endif  // OSUM_NET_FRAME_H_
