// The global-importance score settings evaluated in Section 6: two
// authority transfer graphs (G_A1 = the tuned rates of Figure 13, G_A2 =
// the degenerate variant) crossed with three damping factors d1=0.85,
// d2=0.10, d3=0.99.
#ifndef OSUM_DATASETS_SETTINGS_H_
#define OSUM_DATASETS_SETTINGS_H_

#include <array>
#include <string>

namespace osum::datasets {

/// One (G_A, d) combination.
struct ScoreSetting {
  const char* name;
  int ga;          // 1 or 2
  double damping;  // d
};

/// The four settings plotted in Figures 8 and 9(f): GA1-d1 (default),
/// GA1-d2, GA1-d3, GA2-d1.
inline constexpr std::array<ScoreSetting, 4> kScoreSettings = {{
    {"GA1-d1", 1, 0.85},
    {"GA1-d2", 1, 0.10},
    {"GA1-d3", 1, 0.99},
    {"GA2-d1", 2, 0.85},
}};

/// The paper's default setting (G_A1, d=0.85).
inline constexpr ScoreSetting kDefaultSetting = kScoreSettings[0];

}  // namespace osum::datasets

#endif  // OSUM_DATASETS_SETTINGS_H_
