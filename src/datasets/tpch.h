// TPC-H-shaped synthetic database (Figure 11 schema) — a from-scratch
// `dbgen` equivalent, scaled down by default.
//
// The paper runs ValueRank on TPC-H SF=1 (8,661,245 tuples). We reproduce
// the schema — Region, Nation, Customer, Supplier, Part, Partsupp, Orders,
// Lineitem — with the same cardinality ratios and log-normal monetary
// values, sized so the full pipeline stays laptop-fast. Unlike DBLP there
// are no junction relations: Partsupp appears as a real node in the
// Customer G_DS (Figure 12), so it is modeled as an entity relation.
#ifndef OSUM_DATASETS_TPCH_H_
#define OSUM_DATASETS_TPCH_H_

#include <cstdint>

#include "gds/gds.h"
#include "graph/data_graph.h"
#include "graph/link_types.h"
#include "importance/authority_graph.h"
#include "importance/object_rank.h"
#include "relational/database.h"

namespace osum::datasets {

/// Generator knobs. Defaults yield ~120k tuples with the paper's per-DS OS
/// sizes (Customer OSs around 176 tuples, Supplier OSs around 1340).
struct TpchConfig {
  uint64_t seed = 7;
  size_t num_customers = 1200;
  size_t num_suppliers = 80;
  size_t num_parts = 1600;
  size_t partsupp_per_part = 4;   // TPC-H fixed ratio
  double mean_orders_per_customer = 17.0;
  double mean_lineitems_per_order = 4.7;
  double scale = 1.0;  // multiplies customers/suppliers/parts
};

/// A generated TPC-H instance plus derived artifacts and handles.
struct Tpch {
  rel::Database db;
  graph::LinkSchema links;
  graph::DataGraph data_graph;

  rel::RelationId region = 0;
  rel::RelationId nation = 0;
  rel::RelationId customer = 0;
  rel::RelationId supplier = 0;
  rel::RelationId part = 0;
  rel::RelationId partsupp = 0;
  rel::RelationId orders = 0;
  rel::RelationId lineitem = 0;

  graph::LinkTypeId link_nation_region = 0;  // a = Region, b = Nation
  graph::LinkTypeId link_cust_nation = 0;    // a = Nation, b = Customer
  graph::LinkTypeId link_supp_nation = 0;    // a = Nation, b = Supplier
  graph::LinkTypeId link_ps_part = 0;        // a = Part, b = Partsupp
  graph::LinkTypeId link_ps_supp = 0;        // a = Supplier, b = Partsupp
  graph::LinkTypeId link_order_cust = 0;     // a = Customer, b = Orders
  graph::LinkTypeId link_li_order = 0;       // a = Orders, b = Lineitem
  graph::LinkTypeId link_li_ps = 0;          // a = Partsupp, b = Lineitem

  rel::ColumnId col_order_totalprice = 0;
  rel::ColumnId col_li_extendedprice = 0;
  rel::ColumnId col_ps_supplycost = 0;
  rel::ColumnId col_part_retailprice = 0;
};

/// Generates the database, link schema and data graph (no importance yet).
Tpch BuildTpch(const TpchConfig& config = {});

/// The ValueRank G_A of Figure 13b: monetary columns steer both the
/// authority split (0.5*f(TotalPrice)-style edges) and the base vector
/// (the S_i = w*f(value) node annotations).
importance::AuthorityGraph TpchGa1(const Tpch& tpch);

/// G_A2 for TPC-H: same rates with values neglected — a plain ObjectRank
/// G_A (Section 6: "GA2 ... for the TPC-H neglects values").
importance::AuthorityGraph TpchGa2(const Tpch& tpch);

/// Runs ValueRank/ObjectRank with (ga, damping) and annotates everything.
importance::ObjectRankResult ApplyTpchScores(Tpch* tpch, int ga,
                                             double damping);

/// Customer G_DS (Figure 12, published affinities): Customer -> Nation
/// (0.97) -> Region (0.91) / Supplier (0.52); Customer -> Order (0.95) ->
/// Lineitem (0.87) -> Partsupp (0.77) -> Parts (0.65) / Supplier (0.65).
/// theta = 0.7 (the paper's default) keeps Customer, Nation, Region,
/// Order, Lineitem, Partsupp — exactly the Section 2.1 enumeration.
gds::Gds TpchCustomerGds(const Tpch& tpch, double theta = 0.7);

/// Supplier G_DS (Section 6; Supplier OSs are the largest at ~1341
/// tuples): Supplier -> Nation (0.97) -> Region (0.91); Supplier ->
/// Partsupp (0.95) -> Parts (0.80) / Lineitem (0.85) -> Order (0.75).
gds::Gds TpchSupplierGds(const Tpch& tpch, double theta = 0.7);

}  // namespace osum::datasets

#endif  // OSUM_DATASETS_TPCH_H_
