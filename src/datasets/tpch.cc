#include "datasets/tpch.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

#include "util/rng.h"

namespace osum::datasets {

namespace {

using rel::Column;
using rel::Schema;
using rel::Value;
using rel::ValueType;

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",       "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",        "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",       "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",        "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES"};

// dbgen assigns nations to regions in this fixed pattern (nation i ->
// region i % 5 is not the real mapping; we use the real TPC-H one).
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "HOUSEHOLD", "MACHINERY"};

const char* kPartAdjectives[] = {"small", "large", "polished", "burnished",
                                 "anodized", "plated", "brushed", "floral"};
const char* kPartMaterials[] = {"tin", "nickel", "brass", "steel", "copper"};
const char* kPartShapes[] = {"widget", "sprocket", "gear", "valve", "casing",
                             "fitting", "bracket", "spindle"};

size_t SampleCount(util::Rng* rng, double mean, size_t cap) {
  assert(mean >= 1.0);
  double p = (mean - 1.0) / mean;
  size_t count = 1;
  while (count < cap && rng->NextBernoulli(p)) ++count;
  return count;
}

}  // namespace

Tpch BuildTpch(const TpchConfig& config) {
  Tpch t;
  util::Rng rng(config.seed);

  const size_t num_customers = std::max<size_t>(
      8, static_cast<size_t>(static_cast<double>(config.num_customers) *
                             config.scale));
  const size_t num_suppliers = std::max<size_t>(
      4, static_cast<size_t>(static_cast<double>(config.num_suppliers) *
                             config.scale));
  const size_t num_parts = std::max<size_t>(
      8, static_cast<size_t>(static_cast<double>(config.num_parts) *
                             config.scale));

  // ---- Schema (Figure 11).
  Schema region_schema({{"name", ValueType::kString, true}});
  Schema nation_schema({{"name", ValueType::kString, true},
                        {"region_id", ValueType::kInt, false}});
  Schema customer_schema({{"name", ValueType::kString, true},
                          {"mktsegment", ValueType::kString, true},
                          {"acctbal", ValueType::kDouble, true},
                          {"nation_id", ValueType::kInt, false}});
  Schema supplier_schema({{"name", ValueType::kString, true},
                          {"acctbal", ValueType::kDouble, true},
                          {"nation_id", ValueType::kInt, false}});
  Schema part_schema({{"name", ValueType::kString, true},
                      {"retailprice", ValueType::kDouble, true}});
  Schema partsupp_schema({{"part_id", ValueType::kInt, false},
                          {"supplier_id", ValueType::kInt, false},
                          {"availqty", ValueType::kInt, true},
                          {"supplycost", ValueType::kDouble, true}});
  Schema orders_schema({{"customer_id", ValueType::kInt, false},
                        {"orderyear", ValueType::kInt, true},
                        {"totalprice", ValueType::kDouble, true}});
  Schema lineitem_schema({{"order_id", ValueType::kInt, false},
                          {"partsupp_id", ValueType::kInt, false},
                          {"quantity", ValueType::kInt, true},
                          {"extendedprice", ValueType::kDouble, true}});

  t.region = t.db.AddRelation("Region", region_schema);
  t.nation = t.db.AddRelation("Nation", nation_schema);
  t.customer = t.db.AddRelation("Customer", customer_schema);
  t.supplier = t.db.AddRelation("Supplier", supplier_schema);
  t.part = t.db.AddRelation("Parts", part_schema);
  t.partsupp = t.db.AddRelation("Partsupp", partsupp_schema);
  t.orders = t.db.AddRelation("Order", orders_schema);
  t.lineitem = t.db.AddRelation("Lineitem", lineitem_schema);

  t.db.AddForeignKey("nation_region", t.nation,
                     nation_schema.GetColumn("region_id"), t.region);
  t.db.AddForeignKey("customer_nation", t.customer,
                     customer_schema.GetColumn("nation_id"), t.nation);
  t.db.AddForeignKey("supplier_nation", t.supplier,
                     supplier_schema.GetColumn("nation_id"), t.nation);
  t.db.AddForeignKey("partsupp_part", t.partsupp,
                     partsupp_schema.GetColumn("part_id"), t.part);
  t.db.AddForeignKey("partsupp_supplier", t.partsupp,
                     partsupp_schema.GetColumn("supplier_id"), t.supplier);
  t.db.AddForeignKey("order_customer", t.orders,
                     orders_schema.GetColumn("customer_id"), t.customer);
  t.db.AddForeignKey("lineitem_order", t.lineitem,
                     lineitem_schema.GetColumn("order_id"), t.orders);
  t.db.AddForeignKey("lineitem_partsupp", t.lineitem,
                     lineitem_schema.GetColumn("partsupp_id"), t.partsupp);

  t.col_order_totalprice = orders_schema.GetColumn("totalprice");
  t.col_li_extendedprice = lineitem_schema.GetColumn("extendedprice");
  t.col_ps_supplycost = partsupp_schema.GetColumn("supplycost");
  t.col_part_retailprice = part_schema.GetColumn("retailprice");

  rel::Relation& regions = t.db.relation(t.region);
  rel::Relation& nations = t.db.relation(t.nation);
  rel::Relation& customers = t.db.relation(t.customer);
  rel::Relation& suppliers = t.db.relation(t.supplier);
  rel::Relation& parts = t.db.relation(t.part);
  rel::Relation& partsupps = t.db.relation(t.partsupp);
  rel::Relation& orders = t.db.relation(t.orders);
  rel::Relation& lineitems = t.db.relation(t.lineitem);

  // ---- Reference data.
  for (const char* r : kRegions) regions.Append({Value{std::string(r)}});
  for (size_t n = 0; n < std::size(kNations); ++n) {
    nations.Append({Value{std::string(kNations[n])},
                    Value{static_cast<int64_t>(kNationRegion[n])}});
  }

  // ---- Customers / Suppliers.
  for (size_t c = 0; c < num_customers; ++c) {
    customers.Append({Value{"Customer#" + std::to_string(c)},
                      Value{std::string(kSegments[rng.NextU64(5)])},
                      Value{rng.NextDouble(-999.99, 9999.99)},
                      Value{static_cast<int64_t>(
                          rng.NextU64(std::size(kNations)))}});
  }
  for (size_t s = 0; s < num_suppliers; ++s) {
    suppliers.Append({Value{"Supplier#" + std::to_string(s)},
                      Value{rng.NextDouble(-999.99, 9999.99)},
                      Value{static_cast<int64_t>(
                          rng.NextU64(std::size(kNations)))}});
  }

  // ---- Parts and Partsupp (each part supplied by `partsupp_per_part`
  // distinct suppliers, as in dbgen).
  for (size_t p = 0; p < num_parts; ++p) {
    std::string name = kPartAdjectives[rng.NextU64(std::size(kPartAdjectives))];
    name += " ";
    name += kPartMaterials[rng.NextU64(std::size(kPartMaterials))];
    name += " ";
    name += kPartShapes[rng.NextU64(std::size(kPartShapes))];
    name += " #" + std::to_string(p);
    parts.Append({Value{std::move(name)},
                  Value{rng.NextDouble(900.0, 2100.0)}});
  }
  for (size_t p = 0; p < num_parts; ++p) {
    size_t k = std::min(config.partsupp_per_part, num_suppliers);
    size_t start = rng.NextU64(num_suppliers);
    size_t stride = std::max<size_t>(1, num_suppliers / k);  // k*stride <= n
    for (size_t i = 0; i < k; ++i) {
      size_t s = (start + i * stride) % num_suppliers;
      partsupps.Append({Value{static_cast<int64_t>(p)},
                        Value{static_cast<int64_t>(s)},
                        Value{static_cast<int64_t>(rng.NextInt(1, 9999))},
                        Value{rng.NextDouble(1.0, 1000.0)}});
    }
  }

  // ---- Orders and Lineitems; monetary values log-normal so ValueRank has
  // real skew to exploit.
  for (size_t c = 0; c < num_customers; ++c) {
    size_t norders = SampleCount(&rng, config.mean_orders_per_customer, 60);
    for (size_t o = 0; o < norders; ++o) {
      rel::TupleId oid = orders.Append(
          {Value{static_cast<int64_t>(c)},
           Value{static_cast<int64_t>(rng.NextInt(1992, 1998))},
           Value{0.0}});  // patched below from lineitem sum
      size_t nli = SampleCount(&rng, config.mean_lineitems_per_order, 7);
      double total = 0.0;
      for (size_t i = 0; i < nli; ++i) {
        int64_t qty = rng.NextInt(1, 50);
        double price = rng.NextLogNormal(/*mu=*/7.0, /*sigma=*/0.8);
        total += price;
        lineitems.Append({Value{static_cast<int64_t>(oid)},
                          Value{static_cast<int64_t>(
                              rng.NextU64(partsupps.num_tuples()))},
                          Value{qty}, Value{price}});
      }
      // Backfill totalprice now that the lineitems are known.
      orders.SetValue(oid, t.col_order_totalprice, Value{total});
    }
  }

  t.db.BuildIndexes();
  t.links = graph::LinkSchema::Build(t.db);
  t.link_nation_region = t.links.GetLink("nation_region");
  t.link_cust_nation = t.links.GetLink("customer_nation");
  t.link_supp_nation = t.links.GetLink("supplier_nation");
  t.link_ps_part = t.links.GetLink("partsupp_part");
  t.link_ps_supp = t.links.GetLink("partsupp_supplier");
  t.link_order_cust = t.links.GetLink("order_customer");
  t.link_li_order = t.links.GetLink("lineitem_order");
  t.link_li_ps = t.links.GetLink("lineitem_partsupp");
  t.data_graph = graph::DataGraph::Build(t.db, t.links);
  return t;
}

importance::AuthorityGraph TpchGa1(const Tpch& t) {
  using rel::FkDirection;
  importance::AuthorityGraph ga(t.links.num_links());
  // Edge rates follow Figure 13b: small 0.1-0.3 rates, with the
  // high-signal edges value-scaled (0.5*f(TotalPrice) etc.). The value
  // column always belongs to the *target* relation of the directed edge.
  ga.SetRate(t.link_order_cust, FkDirection::kForward,
             {0.5, t.col_order_totalprice});             // Customer->Orders
  ga.SetRate(t.link_order_cust, FkDirection::kBackward, {0.3, std::nullopt});
  ga.SetRate(t.link_li_order, FkDirection::kForward,
             {0.1, t.col_li_extendedprice});             // Orders->Lineitem
  ga.SetRate(t.link_li_order, FkDirection::kBackward, {0.2, std::nullopt});
  ga.SetRate(t.link_li_ps, FkDirection::kForward, {0.1, std::nullopt});
  ga.SetRate(t.link_li_ps, FkDirection::kBackward, {0.1, std::nullopt});
  ga.SetRate(t.link_ps_part, FkDirection::kForward,
             {0.5, t.col_ps_supplycost});                // Part->Partsupp
  ga.SetRate(t.link_ps_part, FkDirection::kBackward, {0.1, std::nullopt});
  ga.SetRate(t.link_ps_supp, FkDirection::kForward,
             {0.5, t.col_ps_supplycost});                // Supplier->Partsupp
  ga.SetRate(t.link_ps_supp, FkDirection::kBackward, {0.1, std::nullopt});
  ga.SetRate(t.link_cust_nation, FkDirection::kForward, {0.1, std::nullopt});
  ga.SetRate(t.link_cust_nation, FkDirection::kBackward, {0.2, std::nullopt});
  ga.SetRate(t.link_supp_nation, FkDirection::kForward, {0.1, std::nullopt});
  ga.SetRate(t.link_supp_nation, FkDirection::kBackward, {0.2, std::nullopt});
  ga.SetRate(t.link_nation_region, FkDirection::kForward,
             {0.1, std::nullopt});
  ga.SetRate(t.link_nation_region, FkDirection::kBackward,
             {0.3, std::nullopt});
  // Node value sources (the S_i annotations of Figure 13b).
  ga.SetBaseValueBias(t.orders, t.col_order_totalprice, 0.5);
  ga.SetBaseValueBias(t.lineitem, t.col_li_extendedprice, 0.1);
  ga.SetBaseValueBias(t.partsupp, t.col_ps_supplycost, 0.2);
  ga.SetBaseValueBias(t.part, t.col_part_retailprice, 0.1);
  return ga;
}

importance::AuthorityGraph TpchGa2(const Tpch& t) {
  using rel::FkDirection;
  importance::AuthorityGraph ga(t.links.num_links());
  auto plain = [&](graph::LinkTypeId lt, double fwd, double bwd) {
    ga.SetRate(lt, FkDirection::kForward, {fwd, std::nullopt});
    ga.SetRate(lt, FkDirection::kBackward, {bwd, std::nullopt});
  };
  plain(t.link_order_cust, 0.5, 0.3);
  plain(t.link_li_order, 0.1, 0.2);
  plain(t.link_li_ps, 0.1, 0.1);
  plain(t.link_ps_part, 0.5, 0.1);
  plain(t.link_ps_supp, 0.5, 0.1);
  plain(t.link_cust_nation, 0.1, 0.2);
  plain(t.link_supp_nation, 0.1, 0.2);
  plain(t.link_nation_region, 0.1, 0.3);
  return ga;
}

importance::ObjectRankResult ApplyTpchScores(Tpch* tpch, int ga,
                                             double damping) {
  importance::AuthorityGraph authority =
      ga == 1 ? TpchGa1(*tpch) : TpchGa2(*tpch);
  importance::ObjectRankOptions options;
  options.damping = damping;
  return importance::RankAndAnnotate(&tpch->db, tpch->links,
                                     &tpch->data_graph, authority, options);
}

gds::Gds TpchCustomerGds(const Tpch& t, double theta) {
  using rel::FkDirection;
  gds::GdsBuilder b(t.db, t.links, t.customer, "Customer");
  // Figure 12 affinities.
  if (0.97 >= theta) {
    auto nation = b.AddChild(gds::kGdsRoot, "Nation", t.link_cust_nation,
                             FkDirection::kBackward, 0.97);
    if (0.91 >= theta) {
      b.AddChild(nation, "Region", t.link_nation_region,
                 FkDirection::kBackward, 0.91);
    }
    if (0.52 >= theta) {
      b.AddChild(nation, "Supplier", t.link_supp_nation,
                 FkDirection::kForward, 0.52);
    }
  }
  if (0.95 >= theta) {
    auto order = b.AddChild(gds::kGdsRoot, "Order", t.link_order_cust,
                            FkDirection::kForward, 0.95);
    if (0.87 >= theta) {
      auto li = b.AddChild(order, "Lineitem", t.link_li_order,
                           FkDirection::kForward, 0.87);
      if (0.77 >= theta) {
        auto ps = b.AddChild(li, "Partsupp", t.link_li_ps,
                             FkDirection::kBackward, 0.77);
        if (0.65 >= theta) {
          b.AddChild(ps, "Parts", t.link_ps_part, FkDirection::kBackward,
                     0.65);
          b.AddChild(ps, "Supplier", t.link_ps_supp, FkDirection::kBackward,
                     0.65);
        }
      }
    }
  }
  gds::Gds gds = b.Build();
  if (t.db.relation(t.customer).has_importance()) {
    gds.AnnotateStatistics(t.db);
  }
  return gds;
}

gds::Gds TpchSupplierGds(const Tpch& t, double theta) {
  using rel::FkDirection;
  gds::GdsBuilder b(t.db, t.links, t.supplier, "Supplier");
  if (0.97 >= theta) {
    auto nation = b.AddChild(gds::kGdsRoot, "Nation", t.link_supp_nation,
                             FkDirection::kBackward, 0.97);
    if (0.91 >= theta) {
      b.AddChild(nation, "Region", t.link_nation_region,
                 FkDirection::kBackward, 0.91);
    }
  }
  if (0.95 >= theta) {
    auto ps = b.AddChild(gds::kGdsRoot, "Partsupp", t.link_ps_supp,
                         FkDirection::kForward, 0.95);
    if (0.80 >= theta) {
      b.AddChild(ps, "Parts", t.link_ps_part, FkDirection::kBackward, 0.80);
    }
    if (0.85 >= theta) {
      auto li = b.AddChild(ps, "Lineitem", t.link_li_ps,
                           FkDirection::kForward, 0.85);
      if (0.75 >= theta) {
        b.AddChild(li, "Order", t.link_li_order, FkDirection::kBackward,
                   0.75);
      }
    }
  }
  gds::Gds gds = b.Build();
  if (t.db.relation(t.supplier).has_importance()) {
    gds.AnnotateStatistics(t.db);
  }
  return gds;
}

}  // namespace osum::datasets
