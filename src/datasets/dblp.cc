#include "datasets/dblp.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace osum::datasets {

namespace {

using rel::Column;
using rel::Schema;
using rel::Value;
using rel::ValueType;

const char* kFirstNames[] = {
    "Alice",  "Bruno",   "Carla",  "Daniel", "Elena",  "Felix",  "Georgia",
    "Hiro",   "Ingrid",  "Jorge",  "Katja",  "Liang",  "Maria",  "Nikos",
    "Olga",   "Pavel",   "Qing",   "Rashid", "Sofia",  "Tomas",  "Uma",
    "Victor", "Wei",     "Xenia",  "Yannis", "Zoe",    "Amir",   "Beatriz",
    "Chen",   "Dimitra", "Emil",   "Fatima", "Gustav", "Helena", "Ivan",
    "Jana",   "Kostas",  "Lucia",  "Marco",  "Nadia",
};

const char* kLastNames[] = {
    "Papadias",   "Agrawal",   "Roussel",   "Sellinger", "Metaxas",
    "Bhagwat",    "Tanaka",    "Kimura",    "Novak",     "Kowalski",
    "Fernandez",  "Garcia",    "Mueller",   "Schmidt",   "Johansson",
    "Lindqvist",  "Ivanov",    "Petrov",    "Rossi",     "Bianchi",
    "Nguyen",     "Tran",      "Kim",       "Park",      "Chen",
    "Wang",       "Li",        "Zhang",     "Gupta",     "Sharma",
    "Haddad",     "Nasser",    "Okafor",    "Mensah",    "Silva",
    "Santos",     "Dimitriou", "Economou",  "Vlachos",   "Stamatakis",
};

const char* kTitleTopics[] = {
    "Power-law Relationships",  "Similarity Search",
    "Keyword Search",           "Object Summaries",
    "Query Optimization",       "Spatial Indexing",
    "Stream Processing",        "Graph Mining",
    "Declustering",             "Multicast Protocols",
    "Image Databases",          "Top-k Aggregation",
    "Authority Ranking",        "Schema Extraction",
    "View Maintenance",         "Data Cleaning",
    "Caching Strategies",       "Transaction Scheduling",
    "Histogram Estimation",     "Join Processing",
    "Recommendation Models",    "Sensor Fusion",
    "Character Animation",      "Network Topology",
};

const char* kTitleDomains[] = {
    "the Internet",          "Sequence Databases",  "Relational Databases",
    "XML Repositories",      "Multimedia Archives", "Road Networks",
    "Social Graphs",         "Sensor Networks",     "Data Warehouses",
    "Peer-to-Peer Systems",  "Scientific Workflows", "Time Series",
    "Moving Objects",        "Trading Systems",     "Web Archives",
    "Digital Libraries",
};

const char* kTitlePrefixes[] = {
    "On",           "Efficient",     "Effective", "Scalable",
    "Incremental",  "Distributed",   "Adaptive",  "Robust",
    "Approximate",  "Parallel",      "Fast",      "Optimal",
};

const char* kConferenceNames[] = {
    "SIGMOD", "VLDB",     "ICDE",     "PODS",    "KDD",     "SIGCOMM",
    "SIGIR",  "WWW",      "CIKM",     "EDBT",    "ICDT",    "SSTD",
    "DASFAA", "SIGGRAPH", "INFOCOM",  "SODA",    "STOC",    "FOCS",
    "PDIS",   "NGC",
};

// Draws a small positive count with the given mean: 1 + Binomial-ish tail,
// implemented as repeated Bernoulli halving for determinism and a long-ish
// tail. Capped at `cap`.
size_t SampleCount(util::Rng* rng, double mean, size_t cap) {
  assert(mean >= 1.0);
  // Geometric-like: each extra unit appears with probability p such that
  // the expectation matches approximately: E = 1 + p/(1-p) => p = (m-1)/m.
  double p = (mean - 1.0) / mean;
  size_t count = 1;
  while (count < cap && rng->NextBernoulli(p)) ++count;
  return count;
}

}  // namespace

Dblp BuildDblp(const DblpConfig& config) {
  Dblp d;
  util::Rng rng(config.seed);

  const size_t num_authors =
      std::max<size_t>(4, static_cast<size_t>(
                              static_cast<double>(config.num_authors) *
                              config.scale));
  const size_t num_papers =
      std::max<size_t>(8, static_cast<size_t>(
                              static_cast<double>(config.num_papers) *
                              config.scale));
  const size_t num_conferences = std::max<size_t>(2, config.num_conferences);

  // ---- Schema (Figure 1). FK columns are hidden from rendering.
  Schema author_schema({{"name", ValueType::kString, true}});
  Schema conf_schema({{"name", ValueType::kString, true}});
  Schema year_schema({{"year", ValueType::kInt, true},
                      {"conference_id", ValueType::kInt, false}});
  Schema paper_schema({{"title", ValueType::kString, true},
                       {"year_id", ValueType::kInt, false}});
  Schema writes_schema({{"author_id", ValueType::kInt, false},
                        {"paper_id", ValueType::kInt, false}});
  Schema cites_schema({{"citing_id", ValueType::kInt, false},
                       {"cited_id", ValueType::kInt, false}});

  d.author = d.db.AddRelation("Author", author_schema);
  d.paper = d.db.AddRelation("Paper", paper_schema);
  d.year = d.db.AddRelation("Year", year_schema);
  d.conference = d.db.AddRelation("Conference", conf_schema);
  d.writes = d.db.AddRelation("Writes", writes_schema, /*is_junction=*/true);
  d.cites = d.db.AddRelation("Cites", cites_schema, /*is_junction=*/true);

  rel::ForeignKeyId fk_paper_year = d.db.AddForeignKey(
      "paper_year", d.paper, paper_schema.GetColumn("year_id"), d.year);
  rel::ForeignKeyId fk_year_conf = d.db.AddForeignKey(
      "year_conference", d.year, year_schema.GetColumn("conference_id"),
      d.conference);
  // Junction FK order defines link orientation: Writes = (Author, Paper),
  // Cites = (citing Paper, cited Paper).
  d.db.AddForeignKey("writes_author", d.writes,
                     writes_schema.GetColumn("author_id"), d.author);
  d.db.AddForeignKey("writes_paper", d.writes,
                     writes_schema.GetColumn("paper_id"), d.paper);
  d.db.AddForeignKey("cites_citing", d.cites,
                     cites_schema.GetColumn("citing_id"), d.paper);
  d.db.AddForeignKey("cites_cited", d.cites,
                     cites_schema.GetColumn("cited_id"), d.paper);
  (void)fk_paper_year;
  (void)fk_year_conf;

  rel::Relation& authors = d.db.relation(d.author);
  rel::Relation& papers = d.db.relation(d.paper);
  rel::Relation& years = d.db.relation(d.year);
  rel::Relation& conferences = d.db.relation(d.conference);
  rel::Relation& writes = d.db.relation(d.writes);
  rel::Relation& cites = d.db.relation(d.cites);

  // ---- Authors. The first three are the paper's running example; author
  // rank doubles as productivity rank (Zipf), so Christos is automatically
  // the most prolific — his OS is the paper's 1,309-tuple example.
  authors.Append({Value{std::string("Christos Faloutsos")}});
  authors.Append({Value{std::string("Michalis Faloutsos")}});
  authors.Append({Value{std::string("Petros Faloutsos")}});
  const size_t nf = std::size(kFirstNames);
  const size_t nl = std::size(kLastNames);
  for (size_t i = 3; i < num_authors; ++i) {
    std::string name = kFirstNames[rng.NextU64(nf)];
    name += " ";
    name += kLastNames[rng.NextU64(nl)];
    if (i >= nf * nl / 4) {  // keep some natural duplicates, then uniquify
      name += " " + std::to_string(i);
    }
    authors.Append({Value{std::move(name)}});
  }

  // ---- Conferences and Years (one Year tuple per conference x year).
  for (size_t c = 0; c < num_conferences; ++c) {
    std::string name = c < std::size(kConferenceNames)
                           ? kConferenceNames[c]
                           : "Conf-" + std::to_string(c);
    conferences.Append({Value{std::move(name)}});
  }
  std::vector<std::vector<rel::TupleId>> years_of_conf(num_conferences);
  for (size_t c = 0; c < num_conferences; ++c) {
    int first =
        static_cast<int>(rng.NextInt(config.min_year, config.min_year + 10));
    for (int y = first; y <= config.max_year; ++y) {
      rel::TupleId t = years.Append(
          {Value{static_cast<int64_t>(y)},
           Value{static_cast<int64_t>(c)}});
      years_of_conf[c].push_back(t);
    }
  }

  // ---- Papers: Zipf over conferences; uniform year within the venue.
  util::ZipfSampler conf_sampler(num_conferences, config.conference_zipf);
  const size_t ntp = std::size(kTitleTopics);
  const size_t ntd = std::size(kTitleDomains);
  const size_t npr = std::size(kTitlePrefixes);
  for (size_t p = 0; p < num_papers; ++p) {
    size_t c = conf_sampler.Sample(&rng);
    const auto& ys = years_of_conf[c];
    rel::TupleId year_id = ys[rng.NextU64(ys.size())];
    std::string title = kTitlePrefixes[rng.NextU64(npr)];
    title += " ";
    title += kTitleTopics[rng.NextU64(ntp)];
    title += " in ";
    title += kTitleDomains[rng.NextU64(ntd)];
    title += " (" + std::to_string(p) + ")";
    papers.Append({Value{std::move(title)},
                   Value{static_cast<int64_t>(year_id)}});
  }

  // ---- Authorship: Zipf over authors (rank = author id).
  util::ZipfSampler author_sampler(num_authors, config.author_zipf);
  for (size_t p = 0; p < num_papers; ++p) {
    size_t k = SampleCount(&rng, config.mean_authors_per_paper, 8);
    std::unordered_set<uint64_t> picked;
    while (picked.size() < k) {
      picked.insert(author_sampler.Sample(&rng));
      if (picked.size() >= num_authors) break;
    }
    for (uint64_t a : picked) {
      writes.Append({Value{static_cast<int64_t>(a)},
                     Value{static_cast<int64_t>(p)}});
    }
  }

  // ---- Citations: preferential attachment via Zipf over paper rank; only
  // earlier papers can be cited (ids double as publication order), so the
  // citation graph is acyclic like the real one.
  util::ZipfSampler cite_sampler(num_papers, config.citation_zipf);
  for (size_t p = 1; p < num_papers; ++p) {
    size_t k = SampleCount(&rng, config.mean_citations_per_paper, 40) - 1;
    std::unordered_set<uint64_t> picked;
    for (size_t attempt = 0; attempt < 4 * k && picked.size() < k;
         ++attempt) {
      uint64_t target = cite_sampler.Sample(&rng) % p;  // strictly earlier
      picked.insert(target);
    }
    for (uint64_t target : picked) {
      cites.Append({Value{static_cast<int64_t>(p)},
                    Value{static_cast<int64_t>(target)}});
    }
  }

  d.db.BuildIndexes();
  d.links = graph::LinkSchema::Build(d.db);
  d.link_writes = d.links.GetLink("Writes");
  d.link_cites = d.links.GetLink("Cites");
  d.link_paper_year = d.links.GetLink("paper_year");
  d.link_year_conf = d.links.GetLink("year_conference");
  d.data_graph = graph::DataGraph::Build(d.db, d.links);
  return d;
}

importance::AuthorityGraph DblpGa1(const Dblp& dblp) {
  using rel::FkDirection;
  importance::AuthorityGraph ga(dblp.links.num_links());
  // Citations: being cited confers authority (0.7 towards the cited paper,
  // nothing back). Link orientation: forward = citing -> cited.
  ga.SetRate(dblp.link_cites, FkDirection::kForward, {0.7, std::nullopt});
  ga.SetRate(dblp.link_cites, FkDirection::kBackward, {0.0, std::nullopt});
  // Paper -> Author 0.3 (authors gain from their papers); Author -> Paper
  // 0.1. Writes orientation: forward = Author -> Paper.
  ga.SetRate(dblp.link_writes, FkDirection::kForward, {0.1, std::nullopt});
  ga.SetRate(dblp.link_writes, FkDirection::kBackward, {0.3, std::nullopt});
  // paper_year: a = Year, b = Paper. Paper -> Year 0.3, Year -> Paper 0.2.
  ga.SetRate(dblp.link_paper_year, FkDirection::kForward, {0.2, std::nullopt});
  ga.SetRate(dblp.link_paper_year, FkDirection::kBackward,
             {0.3, std::nullopt});
  // year_conference: a = Conference, b = Year. Year -> Conference 0.3,
  // Conference -> Year 0.2.
  ga.SetRate(dblp.link_year_conf, FkDirection::kForward, {0.2, std::nullopt});
  ga.SetRate(dblp.link_year_conf, FkDirection::kBackward,
             {0.3, std::nullopt});
  return ga;
}

importance::AuthorityGraph DblpGa2(const Dblp& dblp) {
  using rel::FkDirection;
  importance::AuthorityGraph ga(dblp.links.num_links());
  for (const graph::LinkType& lt : dblp.links.links()) {
    ga.SetRate(lt.id, FkDirection::kForward, {0.3, std::nullopt});
    ga.SetRate(lt.id, FkDirection::kBackward, {0.3, std::nullopt});
  }
  return ga;
}

importance::ObjectRankResult ApplyDblpScores(Dblp* dblp, int ga,
                                             double damping) {
  importance::AuthorityGraph authority =
      ga == 1 ? DblpGa1(*dblp) : DblpGa2(*dblp);
  importance::ObjectRankOptions options;
  options.damping = damping;
  return importance::RankAndAnnotate(&dblp->db, dblp->links,
                                     &dblp->data_graph, authority, options);
}

gds::Gds DblpAuthorGds(const Dblp& dblp, double theta) {
  using rel::FkDirection;
  gds::GdsBuilder b(dblp.db, dblp.links, dblp.author, "Author");
  // Affinities as annotated on Figure 2.
  if (0.92 >= theta) {
    auto paper = b.AddChild(gds::kGdsRoot, "Paper", dblp.link_writes,
                            FkDirection::kForward, 0.92);
    if (0.82 >= theta) {
      b.AddChild(paper, "Co-Author", dblp.link_writes, FkDirection::kBackward,
                 0.82);
    }
    if (0.83 >= theta) {
      auto year = b.AddChild(paper, "Year", dblp.link_paper_year,
                             FkDirection::kBackward, 0.83);
      if (0.78 >= theta) {
        b.AddChild(year, "Conference", dblp.link_year_conf,
                   FkDirection::kBackward, 0.78);
      }
    }
    if (0.77 >= theta) {
      b.AddChild(paper, "PaperCites", dblp.link_cites, FkDirection::kForward,
                 0.77);
      b.AddChild(paper, "PaperCitedBy", dblp.link_cites,
                 FkDirection::kBackward, 0.77);
    }
  }
  gds::Gds gds = b.Build();
  if (dblp.db.relation(dblp.author).has_importance()) {
    gds.AnnotateStatistics(dblp.db);
  }
  return gds;
}

gds::Gds DblpPaperGds(const Dblp& dblp, double theta) {
  using rel::FkDirection;
  gds::GdsBuilder b(dblp.db, dblp.links, dblp.paper, "Paper");
  // Section 6.2: Paper -> (Author, PaperCitedBy, PaperCites,
  // Year -> Conference). Affinities follow the Figure 2 style.
  if (0.90 >= theta) {
    b.AddChild(gds::kGdsRoot, "Author", dblp.link_writes,
               FkDirection::kBackward, 0.90);
  }
  if (0.77 >= theta) {
    b.AddChild(gds::kGdsRoot, "PaperCites", dblp.link_cites,
               FkDirection::kForward, 0.77);
    b.AddChild(gds::kGdsRoot, "PaperCitedBy", dblp.link_cites,
               FkDirection::kBackward, 0.77);
  }
  if (0.83 >= theta) {
    auto year = b.AddChild(gds::kGdsRoot, "Year", dblp.link_paper_year,
                           FkDirection::kBackward, 0.83);
    if (0.78 >= theta) {
      b.AddChild(year, "Conference", dblp.link_year_conf,
                 FkDirection::kBackward, 0.78);
    }
  }
  gds::Gds gds = b.Build();
  if (dblp.db.relation(dblp.paper).has_importance()) {
    gds.AnnotateStatistics(dblp.db);
  }
  return gds;
}

}  // namespace osum::datasets
