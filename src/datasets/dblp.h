// Synthetic DBLP-shaped bibliographic database (Figure 1 schema).
//
// The paper evaluates on a real DBLP snapshot (2,959,511 tuples). We
// generate a statistically similar database from scratch (see DESIGN.md,
// "Substitutions"): identical schema — Author, Paper, Year (one tuple per
// conference+year), Conference, plus Writes and Cites junction relations —
// with power-law co-authorship and citation skew, so a handful of prolific
// authors have OSs of 1,000+ tuples (the paper's Christos Faloutsos OS has
// 1,309) while the median OS stays small. The three Faloutsos brothers of
// the paper's running example are seeded as the most prolific authors so
// every example in the paper can be replayed verbatim.
#ifndef OSUM_DATASETS_DBLP_H_
#define OSUM_DATASETS_DBLP_H_

#include <cstdint>
#include <string>

#include "gds/gds.h"
#include "graph/data_graph.h"
#include "graph/link_types.h"
#include "importance/authority_graph.h"
#include "importance/object_rank.h"
#include "relational/database.h"

namespace osum::datasets {

/// Generator knobs. Defaults build a ~120k-tuple database in well under a
/// second; `scale` multiplies the entity counts for paper-scale runs.
struct DblpConfig {
  uint64_t seed = 42;
  size_t num_authors = 2000;
  size_t num_papers = 8000;
  size_t num_conferences = 40;
  int min_year = 1980;
  int max_year = 2011;
  /// Zipf skew of author productivity (paper slots assigned by rank).
  double author_zipf = 0.5;
  /// Zipf skew of conference popularity.
  double conference_zipf = 0.6;
  /// Zipf skew of citation targets (preferential attachment).
  double citation_zipf = 0.7;
  /// Mean authors per paper (>= 1; capped at 8).
  double mean_authors_per_paper = 2.5;
  /// Mean outgoing citations per paper.
  double mean_citations_per_paper = 6.0;
  /// Uniform multiplier on num_authors / num_papers.
  double scale = 1.0;
};

/// A generated DBLP instance plus the derived graph artifacts and handy
/// relation ids. Move-only (owns the database).
struct Dblp {
  rel::Database db;
  graph::LinkSchema links;
  graph::DataGraph data_graph;

  rel::RelationId author = 0;
  rel::RelationId paper = 0;
  rel::RelationId year = 0;
  rel::RelationId conference = 0;
  rel::RelationId writes = 0;  // junction Author-Paper
  rel::RelationId cites = 0;   // junction Paper-Paper (fk_a = citing side)

  graph::LinkTypeId link_writes = 0;
  graph::LinkTypeId link_cites = 0;
  graph::LinkTypeId link_paper_year = 0;  // a = Year, b = Paper
  graph::LinkTypeId link_year_conf = 0;   // a = Conference, b = Year
};

/// Generates the database, foreign keys, link schema and data graph.
/// Importance is NOT annotated yet — apply a score setting first.
Dblp BuildDblp(const DblpConfig& config = {});

/// The paper's tuned DBLP authority transfer graph (Figure 13a): citations
/// transfer 0.7 forward and 0 backward, Paper->Author 0.3, Author->Paper
/// 0.1, Paper<->Year 0.3/0.2, Year<->Conference 0.3/0.2.
importance::AuthorityGraph DblpGa1(const Dblp& dblp);

/// The degenerate G_A2: a common transfer rate of 0.3 on every edge.
importance::AuthorityGraph DblpGa2(const Dblp& dblp);

/// Runs global ObjectRank with (ga, damping) and annotates all relations
/// and access paths. Returns iteration metadata.
importance::ObjectRankResult ApplyDblpScores(Dblp* dblp, int ga,
                                             double damping);

/// The Author G_DS of Figure 2, with the paper's published affinities
/// (Paper 0.92, Co-Author 0.82, Year 0.83, Conference 0.78,
/// PaperCites/PaperCitedBy 0.77). Nodes with affinity below `theta` are
/// omitted. Statistics (max/mmax) are annotated iff importance is present.
gds::Gds DblpAuthorGds(const Dblp& dblp, double theta = 0.7);

/// The Paper G_DS of Section 6.2: Paper -> (Author, PaperCitedBy,
/// PaperCites, Year -> Conference).
gds::Gds DblpPaperGds(const Dblp& dblp, double theta = 0.7);

}  // namespace osum::datasets

#endif  // OSUM_DATASETS_DBLP_H_
