#include "gds/affinity.h"

#include <cassert>
#include <cmath>
#include <deque>

namespace osum::gds {

namespace {

// Average fan-out of traversing (link, dir): how many tuples one parent
// tuple joins to, on average.
double AvgFanout(const rel::Database& db, const graph::LinkType& lt,
                 rel::FkDirection dir) {
  if (!lt.via_junction) {
    // Forward (parent -> children) fans out; backward is M:1.
    if (dir == rel::FkDirection::kBackward) return 1.0;
    return db.GetFkStats(lt.fk_a).avg_fanout;
  }
  // Junction: fan-out ~= junction tuples per source tuple.
  return db.GetFkStats(dir == rel::FkDirection::kForward ? lt.fk_a : lt.fk_b)
      .avg_fanout;
}

}  // namespace

double EdgeAffinityFactor(const rel::Database& db,
                          const graph::LinkSchema& links,
                          rel::RelationId parent_rel, graph::LinkTypeId link,
                          rel::FkDirection dir,
                          const AffinityWeights& weights) {
  const graph::LinkType& lt = links.link(link);
  rel::RelationId source = dir == rel::FkDirection::kForward ? lt.a : lt.b;
  rel::RelationId target = dir == rel::FkDirection::kForward ? lt.b : lt.a;
  assert(source == parent_rel);
  (void)source;
  (void)parent_rel;

  double m_dist = weights.distance_decay;

  double degree = static_cast<double>(links.LinksOf(target).size());
  double m_conn = 1.0 / (1.0 + std::log2(std::max(1.0, degree)));

  double fanout = AvgFanout(db, lt, dir);
  double m_card = 1.0 / (1.0 + std::log10(std::max(1.0, fanout)));

  return m_dist * weights.distance + m_conn * weights.connectivity +
         m_card * weights.cardinality;
}

Gds BuildGdsAuto(const rel::Database& db, const graph::LinkSchema& links,
                 rel::RelationId root, std::string root_label,
                 const GdsAutoOptions& options) {
  assert(db.indexes_built());
  GdsBuilder builder(db, links, root, std::move(root_label));

  struct Pending {
    GdsNodeId id;
    rel::RelationId relation;
    double affinity;
    int depth;
    // Incoming edge, to label Co-style replicas.
    bool has_incoming = false;
    graph::LinkTypeId in_link = 0;
    rel::FkDirection in_dir = rel::FkDirection::kForward;
  };
  std::deque<Pending> queue;
  queue.push_back(Pending{kGdsRoot, root, 1.0, 0});

  while (!queue.empty()) {
    Pending cur = queue.front();
    queue.pop_front();
    if (cur.depth >= options.max_depth) continue;

    for (graph::LinkTypeId lid : links.LinksOf(cur.relation)) {
      const graph::LinkType& lt = links.link(lid);
      for (rel::FkDirection dir :
           {rel::FkDirection::kForward, rel::FkDirection::kBackward}) {
        rel::RelationId source =
            dir == rel::FkDirection::kForward ? lt.a : lt.b;
        if (source != cur.relation) continue;
        rel::RelationId target =
            dir == rel::FkDirection::kForward ? lt.b : lt.a;

        double factor =
            EdgeAffinityFactor(db, links, cur.relation, lid, dir,
                               options.weights);
        double affinity = factor * cur.affinity;
        if (affinity < options.theta) continue;

        // Label: replicas of the reverse edge get the "Co-" prefix the
        // paper uses for Co-Author; self M:N links use their role names.
        std::string label;
        bool reverses_incoming = cur.has_incoming && cur.in_link == lid &&
                                 cur.in_dir == rel::Reverse(dir);
        if (lt.a == lt.b && lt.via_junction) {
          label = graph::RoleName(lt, dir);
        } else if (reverses_incoming) {
          label = "Co-" + db.relation(target).name();
        } else {
          label = db.relation(target).name();
        }

        GdsNodeId child = builder.AddChild(cur.id, label, lid, dir, affinity);
        queue.push_back(Pending{child, target, affinity, cur.depth + 1, true,
                                lid, dir});
      }
    }
  }
  return builder.Build();
}

}  // namespace osum::gds
