// The Data Subject Schema Graph (G_DS) — Section 2.1 of the paper.
//
// A G_DS is a "treealization" of the database schema rooted at the data
// subject relation R_DS: R_DS becomes the root, neighboring relations become
// child nodes, and looped or many-to-many relationships are *replicated*
// (the DBLP Author G_DS contains Paper with children Co-Author, Year,
// PaperCites and PaperCitedBy — Co-Author being the Author relation reached
// again through the authorship relationship). Each node carries:
//   * affinity Af(R_i) to the root (Equation 1, or expert-provided),
//   * max(R_i): the maximum local importance any tuple of this node can
//     have (= relation-wide max global importance x affinity), and
//   * mmax(R_i): the maximum max(R_j) over strict descendants (0 at leaves)
// — the statistics behind prelim-l's avoidance conditions (Section 5.3).
#ifndef OSUM_GDS_GDS_H_
#define OSUM_GDS_GDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/link_types.h"
#include "relational/database.h"

namespace osum::gds {

/// Index of a node within a Gds.
using GdsNodeId = int32_t;

inline constexpr GdsNodeId kGdsRoot = 0;
inline constexpr GdsNodeId kNoGdsNode = -1;

/// One relation-role node of the G_DS tree.
struct GdsNode {
  GdsNodeId id = 0;
  GdsNodeId parent = kNoGdsNode;
  rel::RelationId relation = 0;
  /// Label shown in rendered OSs ("Paper", "Co-Author", "PaperCites", ...).
  std::string label;
  /// How tuples of this node are reached from the parent node's tuples.
  /// Undefined for the root.
  graph::LinkTypeId via_link = 0;
  rel::FkDirection via_dir = rel::FkDirection::kForward;
  /// True when this node traverses the reverse of its parent's incoming
  /// edge (Paper -> Co-Author reverses Author -> Paper). OS generation then
  /// excludes the grandparent tuple from the join result so a paper's
  /// "Co-Author(s)" list does not repeat the root author (cf. Example 4).
  bool exclude_origin = false;
  /// Af(R_i): affinity of this node to the root (Equation 1).
  double affinity = 1.0;
  /// max(R_i): upper bound on the local importance of this node's tuples.
  double max_ri = 0.0;
  /// mmax(R_i): max over strict descendants' max(R_j); 0 for leaves.
  double mmax_ri = 0.0;
  int depth = 0;
  std::vector<GdsNodeId> children;
};

/// The G_DS tree. Node 0 is the root (the R_DS relation itself,
/// affinity 1).
class Gds {
 public:
  size_t size() const { return nodes_.size(); }
  const GdsNode& node(GdsNodeId id) const { return nodes_[id]; }
  const GdsNode& root() const { return nodes_[kGdsRoot]; }
  rel::RelationId root_relation() const { return nodes_[kGdsRoot].relation; }

  /// Recomputes max(R_i)/mmax(R_i) from current importance annotations.
  /// Call after (re-)running ObjectRank/ValueRank.
  void AnnotateStatistics(const rel::Database& db);
  bool annotated() const { return annotated_; }

  /// Maximum node depth in the tree.
  int MaxDepth() const;

  /// Debug/inspection rendering: one line per node, indented, with
  /// (affinity, max, mmax) — the format of the paper's Figure 2.
  std::string ToString(const rel::Database& db) const;

 private:
  friend class GdsBuilder;
  std::vector<GdsNode> nodes_;
  bool annotated_ = false;
};

/// Constructs G_DS trees node by node. Used directly for expert-defined
/// G_DSs (the paper's Figures 2 and 12, whose affinities we reproduce
/// verbatim) and by BuildGdsAuto for the Equation-1-driven path.
class GdsBuilder {
 public:
  /// Starts a G_DS rooted at `root_relation` (affinity 1, depth 0).
  GdsBuilder(const rel::Database& db, const graph::LinkSchema& links,
             rel::RelationId root_relation, std::string root_label);

  /// Adds a child node under `parent` reached via (`link`, `dir`) with the
  /// given affinity. The child relation and exclude_origin flag are
  /// derived. Aborts if (link, dir) does not emanate from the parent's
  /// relation.
  GdsNodeId AddChild(GdsNodeId parent, std::string label,
                     graph::LinkTypeId link, rel::FkDirection dir,
                     double affinity);

  /// Convenience overload using link-name lookup.
  GdsNodeId AddChild(GdsNodeId parent, std::string label,
                     const std::string& link_name, rel::FkDirection dir,
                     double affinity);

  /// Finalizes and returns the tree (builder becomes empty).
  Gds Build();

  const rel::Database& db() const { return db_; }
  const graph::LinkSchema& links() const { return links_; }

 private:
  const rel::Database& db_;
  const graph::LinkSchema& links_;
  Gds gds_;
};

}  // namespace osum::gds

#endif  // OSUM_GDS_GDS_H_
