// Affinity computation (Equation 1) and automatic G_DS construction.
//
// Af(R_i) = (sum_j m_j * w_j) * Af(R_parent)
//
// The paper defines the metric set in its precursor work [8]: distance and
// connectivity properties on both the database schema and the data graph.
// We implement three concrete metrics, each in [0, 1]:
//   * distance decay  m_dist : a constant per-hop decay (distance shows up
//     as the depth of the multiplication chain);
//   * schema connectivity m_conn : 1 / (1 + log2(deg(R_i))) — relations
//     hanging off many relationships are less specific to any one subject;
//   * reverse cardinality m_card : 1 / (1 + log10(avg fan-out)) — edges
//     that explode (all Papers of a Year) carry less affinity than M:1 or
//     small fan-out edges.
// Defaults are tuned so the DBLP/TPC-H G_DSs computed automatically match
// the shape of the paper's expert-annotated Figures 2 and 12; the published
// affinity values themselves are installed by the dataset presets via
// GdsBuilder (Section 6: "alternatively an expert can define G_DSs and
// affinity manually").
#ifndef OSUM_GDS_AFFINITY_H_
#define OSUM_GDS_AFFINITY_H_

#include <string>

#include "gds/gds.h"
#include "graph/link_types.h"
#include "relational/database.h"

namespace osum::gds {

/// Weights of the affinity metrics; they should sum to 1 so the per-hop
/// factor stays in [0, 1].
struct AffinityWeights {
  double distance = 0.5;
  double connectivity = 0.2;
  double cardinality = 0.3;
  /// The constant distance-decay metric value.
  double distance_decay = 0.95;
};

/// Options for automatic G_DS construction.
struct GdsAutoOptions {
  /// Affinity threshold θ: nodes with Af < θ are pruned (G_DS(θ)).
  double theta = 0.7;
  /// Hard depth cap; replication of looped/M:N relationships makes the
  /// unrestricted treealization infinite.
  int max_depth = 4;
  AffinityWeights weights;
};

/// The per-hop affinity factor sum_j m_j w_j for traversing (link, dir) out
/// of `parent_rel`. Multiply by the parent's affinity to get Equation 1.
double EdgeAffinityFactor(const rel::Database& db,
                          const graph::LinkSchema& links,
                          rel::RelationId parent_rel, graph::LinkTypeId link,
                          rel::FkDirection dir,
                          const AffinityWeights& weights);

/// Builds a G_DS rooted at `root` by breadth-first treealization, pruning
/// with θ and the depth cap. Requires Database::BuildIndexes() (cardinality
/// statistics come from the FK indexes).
Gds BuildGdsAuto(const rel::Database& db, const graph::LinkSchema& links,
                 rel::RelationId root, std::string root_label,
                 const GdsAutoOptions& options = {});

}  // namespace osum::gds

#endif  // OSUM_GDS_AFFINITY_H_
