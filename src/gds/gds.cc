#include "gds/gds.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "util/string_util.h"

namespace osum::gds {

void Gds::AnnotateStatistics(const rel::Database& db) {
  // max(R_i) = relation-wide maximum global importance x affinity: a global
  // statistic maintained independently of queries (Section 5.3).
  for (GdsNode& n : nodes_) {
    const rel::Relation& r = db.relation(n.relation);
    assert(r.has_importance() &&
           "run ObjectRank/ValueRank before AnnotateStatistics");
    n.max_ri = r.max_importance() * n.affinity;
  }
  // mmax(R_i): bottom-up max over strict descendants.
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    GdsNode& n = *it;
    n.mmax_ri = 0.0;
    for (GdsNodeId c : n.children) {
      n.mmax_ri = std::max(n.mmax_ri, std::max(nodes_[c].max_ri,
                                               nodes_[c].mmax_ri));
    }
  }
  annotated_ = true;
}

int Gds::MaxDepth() const {
  int depth = 0;
  for (const GdsNode& n : nodes_) depth = std::max(depth, n.depth);
  return depth;
}

std::string Gds::ToString(const rel::Database& db) const {
  std::string out;
  std::function<void(GdsNodeId)> emit = [&](GdsNodeId id) {
    const GdsNode& n = nodes_[id];
    out += std::string(static_cast<size_t>(n.depth) * 2, ' ');
    out += n.label;
    out += " [" + db.relation(n.relation).name() + "]";
    out += " (" + util::FormatDouble(n.affinity, 2) + ")";
    if (annotated_) {
      out += " " + util::FormatDouble(n.max_ri, 3) + ", " +
             util::FormatDouble(n.mmax_ri, 3);
    }
    out += "\n";
    for (GdsNodeId c : n.children) emit(c);
  };
  if (!nodes_.empty()) emit(kGdsRoot);
  return out;
}

GdsBuilder::GdsBuilder(const rel::Database& db,
                       const graph::LinkSchema& links,
                       rel::RelationId root_relation, std::string root_label)
    : db_(db), links_(links) {
  GdsNode root;
  root.id = kGdsRoot;
  root.parent = kNoGdsNode;
  root.relation = root_relation;
  root.label = std::move(root_label);
  root.affinity = 1.0;
  root.depth = 0;
  gds_.nodes_.push_back(std::move(root));
}

GdsNodeId GdsBuilder::AddChild(GdsNodeId parent, std::string label,
                               graph::LinkTypeId link, rel::FkDirection dir,
                               double affinity) {
  assert(parent >= 0 && static_cast<size_t>(parent) < gds_.nodes_.size());
  const GdsNode& p = gds_.nodes_[parent];
  const graph::LinkType& lt = links_.link(link);
  rel::RelationId source =
      dir == rel::FkDirection::kForward ? lt.a : lt.b;
  if (source != p.relation) {
    std::fprintf(stderr,
                 "GdsBuilder: link '%s' (%s) does not emanate from relation "
                 "'%s'\n",
                 lt.name.c_str(),
                 dir == rel::FkDirection::kForward ? "forward" : "backward",
                 db_.relation(p.relation).name().c_str());
    std::abort();
  }
  GdsNode n;
  n.id = static_cast<GdsNodeId>(gds_.nodes_.size());
  n.parent = parent;
  n.relation = dir == rel::FkDirection::kForward ? lt.b : lt.a;
  n.label = std::move(label);
  n.via_link = link;
  n.via_dir = dir;
  // Reversing the parent's incoming edge re-reaches the set that contains
  // the grandparent tuple (Author -> Paper -> Co-Author); flag it so OS
  // generation can drop that tuple.
  n.exclude_origin = p.parent != kNoGdsNode && p.via_link == link &&
                     p.via_dir == rel::Reverse(dir);
  n.affinity = affinity;
  n.depth = p.depth + 1;
  gds_.nodes_[parent].children.push_back(n.id);
  gds_.nodes_.push_back(n);
  return gds_.nodes_.back().id;
}

GdsNodeId GdsBuilder::AddChild(GdsNodeId parent, std::string label,
                               const std::string& link_name,
                               rel::FkDirection dir, double affinity) {
  return AddChild(parent, std::move(label), links_.GetLink(link_name), dir,
                  affinity);
}

Gds GdsBuilder::Build() { return std::move(gds_); }

}  // namespace osum::gds
