// TCP front-end load generator: drives an in-process net::Server over real
// loopback sockets with the blocking net::Client and reports
//   1. ping_pong: closed-loop round-trip latency on one connection over a
//      warm cache (p50/p95/p99 us) — the pure transport+framing overhead
//      on top of a served hit.
//   2. open_loop: C connections, each with a sender thread following a
//      seeded open-loop arrival schedule (exponential gaps at a fixed
//      target rate; a late sender sends immediately but latency is
//      measured from the *scheduled* arrival, so queueing delay is not
//      omitted) and a receiver thread recording per-response latency into
//      util::Summary. Reports achieved QPS and the latency histogram.
//   3. wire: a seeded hostile sweep — well-framed garbage payloads
//      interleaved with valid requests on one connection; every garbage
//      frame must come back as an in-band kCodecError and every valid
//      request must still succeed, all counted.
//   4. overload: a dedicated server with a FakeClock and a gated backend —
//      the single worker parks on a deadline-less blocker while
//      tight-deadline misses pile into the pending queue past the
//      watermark (lowest-budget-first admission sheds), the clock jumps
//      past the tight budgets (dequeue sheds), and a generous-deadline
//      request rides it all out and completes. Every shed count is decided
//      by the deterministic shedding logic against a frozen clock, not by
//      machine timing.
//
// The request/response counts (requests_sent, responses_ok,
// malformed_rejects, the overload section's sheds_at_admission /
// sheds_at_dequeue / responses_deadline_exceeded, and the server's own
// frames_in/responses_out) are
// machine-independent: the same on every box, so bench/baselines/
// bench_net.json gates them strictly under OSUM_PERF_LANE while the
// timing rows stay report-only. The bench FAILS (exit 1) if any response
// goes missing, any valid request fails, or any garbage frame is not
// rejected — it is an end-to-end acceptance harness as much as a bench.
//
// Flags: --json <path> (bench::JsonReport rows), --tiny (CI smoke sizes).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/codec.h"
#include "api/query.h"
#include "bench_common.h"
#include "core/os_backend.h"
#include "net/client.h"
#include "net/server.h"
#include "search/engine.h"
#include "serve/clock.h"
#include "serve/query_service.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace osum {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A small warm query mix: distinct keywords with real results, all
/// pre-warmed through the wire so every measured request is a cache hit —
/// the bench measures the serving path, not OS generation.
std::vector<api::QueryRequest> WarmMix() {
  std::vector<api::QueryRequest> mix;
  for (const char* q : {"faloutsos", "databases", "mining", "graphs"}) {
    mix.push_back(api::QueryRequest(q).WithL(12).WithMaxResults(4));
  }
  return mix;
}

struct PingPongResult {
  util::Summary rtt_us;
  uint64_t sent = 0;
  uint64_t ok = 0;
};

PingPongResult RunPingPong(uint16_t port,
                           const std::vector<api::QueryRequest>& mix,
                           size_t rounds) {
  PingPongResult result;
  api::StatusOr<net::Client> client = net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "ping_pong connect: %s\n",
                 client.status().ToString().c_str());
    return result;
  }
  for (size_t i = 0; i < rounds; ++i) {
    const api::QueryRequest& request = mix[i % mix.size()];
    Clock::time_point start = Clock::now();
    if (!client->Send(request).ok()) break;
    ++result.sent;
    api::StatusOr<api::QueryResponse> response = client->Receive();
    if (!response.ok() || !response->ok()) break;
    ++result.ok;
    if (i >= mix.size()) {  // first pass over the mix is cache warmup
      result.rtt_us.Add(SecondsSince(start) * 1e6);
    }
  }
  return result;
}

struct OpenLoopResult {
  util::Summary latency_us;
  uint64_t sent = 0;
  uint64_t ok = 0;
  double wall_s = 0;
};

/// One open-loop connection: precomputed arrival offsets, a sender that
/// follows them, a receiver that timestamps responses. Results come back
/// in request order (server guarantee), so response i pairs with
/// schedule[i] with no correlation id on the wire.
void RunConnection(uint16_t port, const std::vector<api::QueryRequest>& mix,
                   const std::vector<double>& schedule_s,
                   Clock::time_point epoch, OpenLoopResult* out,
                   std::mutex* out_mu) {
  api::StatusOr<net::Client> client =
      net::Client::Connect("127.0.0.1", port, /*timeout_ms=*/120'000);
  if (!client.ok()) {
    std::fprintf(stderr, "open_loop connect: %s\n",
                 client.status().ToString().c_str());
    return;
  }
  uint64_t sent = 0;
  std::thread sender([&] {
    for (size_t i = 0; i < schedule_s.size(); ++i) {
      double now = SecondsSince(epoch);
      if (now < schedule_s[i]) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(schedule_s[i] - now));
      }
      if (!client->Send(mix[i % mix.size()]).ok()) return;
      ++sent;
    }
  });
  std::vector<double> latencies;
  latencies.reserve(schedule_s.size());
  uint64_t ok = 0;
  for (size_t i = 0; i < schedule_s.size(); ++i) {
    api::StatusOr<api::QueryResponse> response = client->Receive();
    if (!response.ok()) break;
    if (response->ok()) ++ok;
    latencies.push_back((SecondsSince(epoch) - schedule_s[i]) * 1e6);
  }
  sender.join();
  std::lock_guard<std::mutex> lock(*out_mu);
  for (double v : latencies) out->latency_us.Add(v);
  out->sent += sent;
  out->ok += ok;
}

OpenLoopResult RunOpenLoop(uint16_t port,
                           const std::vector<api::QueryRequest>& mix,
                           size_t connections, size_t requests_per_connection,
                           double target_qps_per_connection) {
  // Seeded exponential inter-arrival gaps: the schedule (and therefore the
  // request counts) is identical on every machine; only the timings vary.
  std::vector<std::vector<double>> schedules(connections);
  util::Rng rng(0x5E4FCADEull);
  for (size_t c = 0; c < connections; ++c) {
    double t = 0;
    schedules[c].reserve(requests_per_connection);
    for (size_t i = 0; i < requests_per_connection; ++i) {
      double u = (static_cast<double>(rng.NextU64(1'000'000'000)) + 1.0) /
                 1'000'000'001.0;
      t += -std::log(u) / target_qps_per_connection;
      schedules[c].push_back(t);
    }
  }

  OpenLoopResult result;
  std::mutex result_mu;
  Clock::time_point epoch = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back(RunConnection, port, std::cref(mix),
                         std::cref(schedules[c]), epoch, &result, &result_mu);
  }
  for (std::thread& t : threads) t.join();
  result.wall_s = SecondsSince(epoch);
  return result;
}

struct WireResult {
  uint64_t garbage_sent = 0;
  uint64_t malformed_rejects = 0;
  uint64_t valid_sent = 0;
  uint64_t valid_ok = 0;
};

/// Seeded hostile sweep through the framing layer: every 3rd frame is
/// well-framed garbage (random bytes, random length 0..96), the rest are
/// valid requests. The stream must stay in sync: garbage answered in-band
/// with kCodecError, valid requests still served.
WireResult RunWireSweep(uint16_t port,
                        const std::vector<api::QueryRequest>& mix,
                        size_t frames) {
  WireResult result;
  api::StatusOr<net::Client> client = net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "wire connect: %s\n",
                 client.status().ToString().c_str());
    return result;
  }
  util::Rng rng(0xBADF8A3E5ull);
  std::vector<bool> is_garbage;
  is_garbage.reserve(frames);
  for (size_t i = 0; i < frames; ++i) {
    bool garbage = (i % 3) == 2;
    is_garbage.push_back(garbage);
    if (garbage) {
      std::string payload(rng.NextU64(97), '\0');
      for (char& ch : payload) {
        ch = static_cast<char>(rng.NextU64(256));
      }
      if (!client->SendPayload(payload).ok()) return result;
      ++result.garbage_sent;
    } else {
      if (!client->Send(mix[i % mix.size()]).ok()) return result;
      ++result.valid_sent;
    }
  }
  for (size_t i = 0; i < frames; ++i) {
    api::StatusOr<api::QueryResponse> response = client->Receive();
    if (!response.ok()) {
      std::fprintf(stderr, "wire receive %zu: %s\n", i,
                   response.status().ToString().c_str());
      return result;
    }
    if (is_garbage[i]) {
      if (response->status.code() == api::StatusCode::kCodecError) {
        ++result.malformed_rejects;
      }
    } else if (response->ok()) {
      ++result.valid_ok;
    }
  }
  return result;
}

/// Delegating back end whose join calls park on a gate — the lever that
/// keeps the overload section's single worker deterministically busy while
/// tight-deadline requests queue up behind it (same idiom as the net and
/// serve test suites).
class GatedBackend : public core::OsBackend {
 public:
  explicit GatedBackend(core::OsBackend* inner) : inner_(inner) {}

  const char* name() const override { return "gated"; }

  void Fetch(graph::LinkTypeId link, rel::FkDirection dir,
             rel::TupleId parent_tuple,
             std::vector<rel::TupleId>* out) override {
    Enter();
    inner_->Fetch(link, dir, parent_tuple, out);
  }
  void FetchTop(graph::LinkTypeId link, rel::FkDirection dir,
                rel::TupleId parent_tuple, size_t limit,
                double min_importance,
                std::vector<rel::TupleId>* out) override {
    Enter();
    inner_->FetchTop(link, dir, parent_tuple, limit, min_importance, out);
  }

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gate_closed_ = true;
  }
  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gate_closed_ = false;
    }
    cv_.notify_all();
  }
  void WaitUntilBlocked() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return waiting_ > 0; });
  }

 private:
  void Enter() {
    std::unique_lock<std::mutex> lock(mu_);
    if (!gate_closed_) return;
    ++waiting_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return !gate_closed_; });
    --waiting_;
  }

  core::OsBackend* inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool gate_closed_ = false;
  int waiting_ = 0;
};

struct OverloadResult {
  uint64_t sheds_at_admission = 0;
  uint64_t sheds_at_dequeue = 0;
  uint64_t responses_deadline_exceeded = 0;
  uint64_t responses_ok = 0;
  bool drained = false;
  uint64_t dropped = 0;
  bool infra_ok = false;  // sends/receives all succeeded at the wire level
};

/// The overload section. Every count below is decided by the service's
/// deterministic shedding logic against a frozen FakeClock, so the rows
/// gate strictly across machines:
///   - `watermark` tights with strictly increasing (still-tight) budgets
///     fill the pending queue; each later arrival displaces the
///     earliest-deadline victim, and the generous request displaces one
///     more -> sheds_at_admission = tights - watermark + 1.
///   - the clock jumps past every tight budget; the queued survivors are
///     shed when the worker dequeues them -> sheds_at_dequeue =
///     watermark - 1.
///   - the deadline-less blocker and the generous request both complete.
OverloadResult RunOverload(search::SearchContext& context, GatedBackend* gate,
                           size_t watermark, size_t tights) {
  OverloadResult result;
  auto clock = std::make_shared<serve::FakeClock>();
  serve::ServiceOptions service_options;
  service_options.num_threads = 1;  // one worker: the pool the blocker parks
  service_options.cache.num_shards = 2;
  service_options.cache.clock = clock;
  service_options.overload.max_pending_misses = watermark;
  serve::QueryService service(context, service_options);
  net::Server server(&service);
  if (!server.Start().ok()) return result;
  api::StatusOr<net::Client> client =
      net::Client::Connect("127.0.0.1", server.port(), /*timeout_ms=*/60'000);
  if (!client.ok()) {
    std::fprintf(stderr, "overload connect: %s\n",
                 client.status().ToString().c_str());
    return result;
  }

  // Park the worker on a deadline-less miss, then pipeline the tights
  // (distinct cache keys, deadlines strictly increasing so the watermark
  // victim is always the earliest arrival — no tie-breaks) and one
  // generous request that must survive the clock jump.
  gate->CloseGate();
  if (!client->Send(api::QueryRequest("faloutsos").WithL(10)).ok()) {
    return result;
  }
  gate->WaitUntilBlocked();
  for (size_t i = 0; i < tights; ++i) {
    if (!client
             ->Send(api::QueryRequest("databases")
                        .WithL(8)
                        .WithMaxResults(1 + i)
                        .WithDeadlineMicros(1'000 + 10 * i))
             .ok()) {
      return result;
    }
  }
  if (!client
           ->Send(api::QueryRequest("mining").WithL(8).WithDeadlineMicros(
               60'000'000))
           .ok()) {
    return result;
  }
  // Admission decisions happen on the server's loop thread; wait for the
  // whole burst to be admitted-or-shed before burning the budgets.
  const uint64_t expected_admission_sheds =
      static_cast<uint64_t>(tights - watermark + 1);
  for (int i = 0;
       i < 12'000 && service.metrics().sheds_at_admission <
                         expected_admission_sheds;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  clock->AdvanceMicros(1'000'000);  // > every tight budget, << the generous
  gate->OpenGate();

  for (size_t i = 0; i < tights + 2; ++i) {
    api::StatusOr<api::QueryResponse> response = client->Receive();
    if (!response.ok()) {
      std::fprintf(stderr, "overload receive %zu: %s\n", i,
                   response.status().ToString().c_str());
      return result;
    }
    if (response->ok()) {
      ++result.responses_ok;
    } else if (response->status.code() ==
               api::StatusCode::kDeadlineExceeded) {
      ++result.responses_deadline_exceeded;
    }
  }
  client->Close();
  result.drained = server.Shutdown();
  net::ServerStats stats = server.stats();
  result.dropped = stats.dropped_responses;
  serve::Metrics metrics = service.metrics();
  result.sheds_at_admission = metrics.sheds_at_admission;
  result.sheds_at_dequeue = metrics.sheds_at_dequeue;
  result.infra_ok = true;
  return result;
}

}  // namespace
}  // namespace osum

int main(int argc, char** argv) {
  using namespace osum;
  bench::JsonReport json =
      bench::JsonReport::FromArgs(argc, argv, "bench_net");
  bool tiny = bench::TinyFromArgs(argc, argv);

  datasets::DblpConfig config;
  config.num_authors = tiny ? 100 : 500;
  config.num_papers = tiny ? 400 : 2000;
  config.num_conferences = tiny ? 8 : 15;
  datasets::Dblp d = datasets::BuildDblp(config);
  datasets::ApplyDblpScores(&d, 1, 0.85);
  core::DataGraphBackend backend(d.db, d.links, d.data_graph);
  std::vector<search::SearchContext::Subject> subjects;
  subjects.push_back({d.author, datasets::DblpAuthorGds(d)});
  subjects.push_back({d.paper, datasets::DblpPaperGds(d)});
  search::SearchContext ctx =
      search::SearchContext::Build(d.db, &backend, std::move(subjects));

  serve::ServiceOptions service_options;
  service_options.num_threads = 4;
  serve::QueryService service(ctx, service_options);
  net::Server server(&service);  // port 0: the OS picks a free port
  if (api::Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "server start: %s\n", status.ToString().c_str());
    return 1;
  }

  std::vector<api::QueryRequest> mix = WarmMix();
  const size_t ping_rounds = tiny ? 64 : 1000;
  const size_t connections = tiny ? 2 : 4;
  const size_t per_connection = tiny ? 100 : 1500;
  const double rate_per_connection = tiny ? 1000.0 : 2500.0;
  const size_t wire_frames = tiny ? 48 : 600;

  // 1. Closed-loop RTT (also warms the cache on its first pass).
  PingPongResult ping = RunPingPong(server.port(), mix, ping_rounds);
  util::PrintHeading(std::cout, "ping_pong (1 connection, " +
                                    std::to_string(ping_rounds) +
                                    " closed-loop round trips, warm cache)");
  util::TablePrinter ping_table({"metric", "value"});
  ping_table.AddRow({"rtt p50 us",
                     util::FormatDouble(ping.rtt_us.Percentile(50.0), 1)});
  ping_table.AddRow({"rtt p95 us",
                     util::FormatDouble(ping.rtt_us.Percentile(95.0), 1)});
  ping_table.AddRow({"rtt p99 us",
                     util::FormatDouble(ping.rtt_us.Percentile(99.0), 1)});
  ping_table.Print(std::cout);
  json.Add("ping_pong", "rtt", "p50_us", ping.rtt_us.Percentile(50.0));
  json.Add("ping_pong", "rtt", "p99_us", ping.rtt_us.Percentile(99.0));
  json.Add("ping_pong", "count", "requests_sent",
           static_cast<double>(ping.sent));
  json.Add("ping_pong", "count", "responses_ok",
           static_cast<double>(ping.ok));

  // 2. Open-loop multi-connection load.
  OpenLoopResult open = RunOpenLoop(server.port(), mix, connections,
                                    per_connection, rate_per_connection);
  double achieved_qps =
      static_cast<double>(open.ok) / std::max(open.wall_s, 1e-9);
  util::PrintHeading(
      std::cout,
      "open_loop (" + std::to_string(connections) + " connections x " +
          std::to_string(per_connection) + " requests, offered " +
          util::FormatDouble(rate_per_connection * connections, 0) + " qps)");
  util::TablePrinter open_table({"metric", "value"});
  open_table.AddRow({"achieved qps", util::FormatDouble(achieved_qps, 0)});
  open_table.AddRow({"latency p50 us",
                     util::FormatDouble(open.latency_us.Percentile(50.0), 1)});
  open_table.AddRow({"latency p95 us",
                     util::FormatDouble(open.latency_us.Percentile(95.0), 1)});
  open_table.AddRow({"latency p99 us",
                     util::FormatDouble(open.latency_us.Percentile(99.0), 1)});
  open_table.Print(std::cout);
  json.Add("open_loop", "served", "achieved_qps", achieved_qps);
  json.Add("open_loop", "latency", "p50_us",
           open.latency_us.Percentile(50.0));
  json.Add("open_loop", "latency", "p99_us",
           open.latency_us.Percentile(99.0));
  json.Add("open_loop", "count", "requests_sent",
           static_cast<double>(open.sent));
  json.Add("open_loop", "count", "responses_ok",
           static_cast<double>(open.ok));

  // 3. Hostile wire sweep.
  WireResult wire = RunWireSweep(server.port(), mix, wire_frames);
  util::PrintHeading(std::cout, "wire (seeded hostile sweep, " +
                                    std::to_string(wire_frames) + " frames)");
  std::printf("garbage frames: %llu sent, %llu rejected in-band; valid: "
              "%llu sent, %llu ok\n",
              static_cast<unsigned long long>(wire.garbage_sent),
              static_cast<unsigned long long>(wire.malformed_rejects),
              static_cast<unsigned long long>(wire.valid_sent),
              static_cast<unsigned long long>(wire.valid_ok));
  json.Add("wire", "count", "garbage_sent",
           static_cast<double>(wire.garbage_sent));
  json.Add("wire", "count", "malformed_rejects",
           static_cast<double>(wire.malformed_rejects));
  json.Add("wire", "count", "valid_ok",
           static_cast<double>(wire.valid_ok));

  // 4. Deterministic overload section (own server, FakeClock, gated pool).
  const size_t overload_watermark = tiny ? 4 : 8;
  const size_t overload_tights = tiny ? 16 : 32;
  GatedBackend gate(&backend);
  std::vector<search::SearchContext::Subject> overload_subjects;
  overload_subjects.push_back({d.author, datasets::DblpAuthorGds(d)});
  overload_subjects.push_back({d.paper, datasets::DblpPaperGds(d)});
  search::SearchContext overload_ctx = search::SearchContext::Build(
      d.db, &gate, std::move(overload_subjects));
  OverloadResult overload =
      RunOverload(overload_ctx, &gate, overload_watermark, overload_tights);
  util::PrintHeading(
      std::cout, "overload (" + std::to_string(overload_tights) +
                     " tight-deadline misses vs watermark " +
                     std::to_string(overload_watermark) +
                     ", frozen clock, 1 worker)");
  util::TablePrinter overload_table({"metric", "value"});
  overload_table.AddRow({"sheds at admission",
                         std::to_string(overload.sheds_at_admission)});
  overload_table.AddRow({"sheds at dequeue",
                         std::to_string(overload.sheds_at_dequeue)});
  overload_table.AddRow(
      {"responses deadline_exceeded",
       std::to_string(overload.responses_deadline_exceeded)});
  overload_table.AddRow({"responses ok",
                         std::to_string(overload.responses_ok)});
  overload_table.Print(std::cout);
  json.Add("overload", "count", "sheds_at_admission",
           static_cast<double>(overload.sheds_at_admission));
  json.Add("overload", "count", "sheds_at_dequeue",
           static_cast<double>(overload.sheds_at_dequeue));
  json.Add("overload", "count", "responses_deadline_exceeded",
           static_cast<double>(overload.responses_deadline_exceeded));
  json.Add("overload", "count", "responses_ok",
           static_cast<double>(overload.responses_ok));

  bool drained = server.Shutdown();
  net::ServerStats stats = server.stats();
  json.Add("server", "count", "frames_in",
           static_cast<double>(stats.frames_in));
  json.Add("server", "count", "responses_out",
           static_cast<double>(stats.responses_out));
  json.Add("server", "count", "malformed_frames",
           static_cast<double>(stats.malformed_frames));
  json.Add("server", "count", "dropped_responses",
           static_cast<double>(stats.dropped_responses));
  if (!json.Write()) return 1;

  // Acceptance gates: the bench doubles as the end-to-end harness, so a
  // lost response, a failed valid request, an unrejected garbage frame or
  // a dirty drain all fail the run.
  const uint64_t expected =
      ping_rounds + connections * per_connection;
  uint64_t total_ok = ping.ok + open.ok + wire.valid_ok;
  uint64_t total_sent = ping.sent + open.sent + wire.valid_sent;
  if (ping.ok != ping_rounds || open.ok != connections * per_connection) {
    std::printf("FAIL: %llu/%llu valid responses received\n",
                static_cast<unsigned long long>(total_ok),
                static_cast<unsigned long long>(expected + wire.valid_sent));
    return 1;
  }
  if (wire.malformed_rejects != wire.garbage_sent ||
      wire.valid_ok != wire.valid_sent) {
    std::printf("FAIL: wire sweep: %llu/%llu garbage rejected, %llu/%llu "
                "valid ok\n",
                static_cast<unsigned long long>(wire.malformed_rejects),
                static_cast<unsigned long long>(wire.garbage_sent),
                static_cast<unsigned long long>(wire.valid_ok),
                static_cast<unsigned long long>(wire.valid_sent));
    return 1;
  }
  if (!drained || stats.dropped_responses != 0) {
    std::printf("FAIL: shutdown did not drain cleanly (%llu dropped)\n",
                static_cast<unsigned long long>(stats.dropped_responses));
    return 1;
  }
  // Overload section: every count is fixed by the deterministic shedding
  // logic — tights-watermark+1 admission sheds (each later tight and the
  // generous request displace the earliest-deadline victim), watermark-1
  // dequeue sheds (the queued survivors after the clock jump), and exactly
  // the blocker plus the generous request complete.
  const uint64_t want_admission =
      static_cast<uint64_t>(overload_tights - overload_watermark + 1);
  const uint64_t want_dequeue =
      static_cast<uint64_t>(overload_watermark - 1);
  if (!overload.infra_ok || !overload.drained || overload.dropped != 0 ||
      overload.sheds_at_admission != want_admission ||
      overload.sheds_at_dequeue != want_dequeue ||
      overload.responses_deadline_exceeded !=
          static_cast<uint64_t>(overload_tights) ||
      overload.responses_ok != 2) {
    std::printf(
        "FAIL: overload section: admission %llu/%llu, dequeue %llu/%llu, "
        "deadline_exceeded %llu/%llu, ok %llu/2, drained=%d, dropped=%llu\n",
        static_cast<unsigned long long>(overload.sheds_at_admission),
        static_cast<unsigned long long>(want_admission),
        static_cast<unsigned long long>(overload.sheds_at_dequeue),
        static_cast<unsigned long long>(want_dequeue),
        static_cast<unsigned long long>(overload.responses_deadline_exceeded),
        static_cast<unsigned long long>(overload_tights),
        static_cast<unsigned long long>(overload.responses_ok),
        overload.drained ? 1 : 0,
        static_cast<unsigned long long>(overload.dropped));
    return 1;
  }
  std::printf("PASS: %llu/%llu responses delivered, %llu/%llu garbage "
              "frames rejected, clean drain\n",
              static_cast<unsigned long long>(total_ok),
              static_cast<unsigned long long>(total_sent),
              static_cast<unsigned long long>(wire.malformed_rejects),
              static_cast<unsigned long long>(wire.garbage_sent));
  return 0;
}
